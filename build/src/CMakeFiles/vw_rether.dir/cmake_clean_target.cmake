file(REMOVE_RECURSE
  "libvw_rether.a"
)
