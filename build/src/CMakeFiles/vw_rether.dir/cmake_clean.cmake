file(REMOVE_RECURSE
  "CMakeFiles/vw_rether.dir/vwire/rether/rether_frame.cpp.o"
  "CMakeFiles/vw_rether.dir/vwire/rether/rether_frame.cpp.o.d"
  "CMakeFiles/vw_rether.dir/vwire/rether/rether_layer.cpp.o"
  "CMakeFiles/vw_rether.dir/vwire/rether/rether_layer.cpp.o.d"
  "CMakeFiles/vw_rether.dir/vwire/rether/ring.cpp.o"
  "CMakeFiles/vw_rether.dir/vwire/rether/ring.cpp.o.d"
  "libvw_rether.a"
  "libvw_rether.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_rether.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
