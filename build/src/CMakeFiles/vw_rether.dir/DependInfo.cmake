
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vwire/rether/rether_frame.cpp" "src/CMakeFiles/vw_rether.dir/vwire/rether/rether_frame.cpp.o" "gcc" "src/CMakeFiles/vw_rether.dir/vwire/rether/rether_frame.cpp.o.d"
  "/root/repo/src/vwire/rether/rether_layer.cpp" "src/CMakeFiles/vw_rether.dir/vwire/rether/rether_layer.cpp.o" "gcc" "src/CMakeFiles/vw_rether.dir/vwire/rether/rether_layer.cpp.o.d"
  "/root/repo/src/vwire/rether/ring.cpp" "src/CMakeFiles/vw_rether.dir/vwire/rether/ring.cpp.o" "gcc" "src/CMakeFiles/vw_rether.dir/vwire/rether/ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vw_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
