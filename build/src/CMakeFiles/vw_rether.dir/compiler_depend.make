# Empty compiler generated dependencies file for vw_rether.
# This may be replaced when dependencies are built.
