# Empty dependencies file for vw_host.
# This may be replaced when dependencies are built.
