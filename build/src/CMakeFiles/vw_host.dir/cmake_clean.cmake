file(REMOVE_RECURSE
  "CMakeFiles/vw_host.dir/vwire/host/ip_layer.cpp.o"
  "CMakeFiles/vw_host.dir/vwire/host/ip_layer.cpp.o.d"
  "CMakeFiles/vw_host.dir/vwire/host/layer.cpp.o"
  "CMakeFiles/vw_host.dir/vwire/host/layer.cpp.o.d"
  "CMakeFiles/vw_host.dir/vwire/host/nic.cpp.o"
  "CMakeFiles/vw_host.dir/vwire/host/nic.cpp.o.d"
  "CMakeFiles/vw_host.dir/vwire/host/node.cpp.o"
  "CMakeFiles/vw_host.dir/vwire/host/node.cpp.o.d"
  "libvw_host.a"
  "libvw_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
