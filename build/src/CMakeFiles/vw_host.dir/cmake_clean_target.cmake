file(REMOVE_RECURSE
  "libvw_host.a"
)
