file(REMOVE_RECURSE
  "libvw_rll.a"
)
