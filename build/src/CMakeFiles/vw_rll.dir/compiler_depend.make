# Empty compiler generated dependencies file for vw_rll.
# This may be replaced when dependencies are built.
