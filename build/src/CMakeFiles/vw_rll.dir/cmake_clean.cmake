file(REMOVE_RECURSE
  "CMakeFiles/vw_rll.dir/vwire/rll/rll_header.cpp.o"
  "CMakeFiles/vw_rll.dir/vwire/rll/rll_header.cpp.o.d"
  "CMakeFiles/vw_rll.dir/vwire/rll/rll_layer.cpp.o"
  "CMakeFiles/vw_rll.dir/vwire/rll/rll_layer.cpp.o.d"
  "libvw_rll.a"
  "libvw_rll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_rll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
