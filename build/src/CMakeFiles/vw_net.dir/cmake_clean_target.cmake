file(REMOVE_RECURSE
  "libvw_net.a"
)
