
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vwire/net/address.cpp" "src/CMakeFiles/vw_net.dir/vwire/net/address.cpp.o" "gcc" "src/CMakeFiles/vw_net.dir/vwire/net/address.cpp.o.d"
  "/root/repo/src/vwire/net/decode.cpp" "src/CMakeFiles/vw_net.dir/vwire/net/decode.cpp.o" "gcc" "src/CMakeFiles/vw_net.dir/vwire/net/decode.cpp.o.d"
  "/root/repo/src/vwire/net/ethernet.cpp" "src/CMakeFiles/vw_net.dir/vwire/net/ethernet.cpp.o" "gcc" "src/CMakeFiles/vw_net.dir/vwire/net/ethernet.cpp.o.d"
  "/root/repo/src/vwire/net/ipv4.cpp" "src/CMakeFiles/vw_net.dir/vwire/net/ipv4.cpp.o" "gcc" "src/CMakeFiles/vw_net.dir/vwire/net/ipv4.cpp.o.d"
  "/root/repo/src/vwire/net/packet.cpp" "src/CMakeFiles/vw_net.dir/vwire/net/packet.cpp.o" "gcc" "src/CMakeFiles/vw_net.dir/vwire/net/packet.cpp.o.d"
  "/root/repo/src/vwire/net/tcp_header.cpp" "src/CMakeFiles/vw_net.dir/vwire/net/tcp_header.cpp.o" "gcc" "src/CMakeFiles/vw_net.dir/vwire/net/tcp_header.cpp.o.d"
  "/root/repo/src/vwire/net/udp_header.cpp" "src/CMakeFiles/vw_net.dir/vwire/net/udp_header.cpp.o" "gcc" "src/CMakeFiles/vw_net.dir/vwire/net/udp_header.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
