file(REMOVE_RECURSE
  "CMakeFiles/vw_net.dir/vwire/net/address.cpp.o"
  "CMakeFiles/vw_net.dir/vwire/net/address.cpp.o.d"
  "CMakeFiles/vw_net.dir/vwire/net/decode.cpp.o"
  "CMakeFiles/vw_net.dir/vwire/net/decode.cpp.o.d"
  "CMakeFiles/vw_net.dir/vwire/net/ethernet.cpp.o"
  "CMakeFiles/vw_net.dir/vwire/net/ethernet.cpp.o.d"
  "CMakeFiles/vw_net.dir/vwire/net/ipv4.cpp.o"
  "CMakeFiles/vw_net.dir/vwire/net/ipv4.cpp.o.d"
  "CMakeFiles/vw_net.dir/vwire/net/packet.cpp.o"
  "CMakeFiles/vw_net.dir/vwire/net/packet.cpp.o.d"
  "CMakeFiles/vw_net.dir/vwire/net/tcp_header.cpp.o"
  "CMakeFiles/vw_net.dir/vwire/net/tcp_header.cpp.o.d"
  "CMakeFiles/vw_net.dir/vwire/net/udp_header.cpp.o"
  "CMakeFiles/vw_net.dir/vwire/net/udp_header.cpp.o.d"
  "libvw_net.a"
  "libvw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
