
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vwire/util/bytes.cpp" "src/CMakeFiles/vw_util.dir/vwire/util/bytes.cpp.o" "gcc" "src/CMakeFiles/vw_util.dir/vwire/util/bytes.cpp.o.d"
  "/root/repo/src/vwire/util/checksum.cpp" "src/CMakeFiles/vw_util.dir/vwire/util/checksum.cpp.o" "gcc" "src/CMakeFiles/vw_util.dir/vwire/util/checksum.cpp.o.d"
  "/root/repo/src/vwire/util/hex.cpp" "src/CMakeFiles/vw_util.dir/vwire/util/hex.cpp.o" "gcc" "src/CMakeFiles/vw_util.dir/vwire/util/hex.cpp.o.d"
  "/root/repo/src/vwire/util/logging.cpp" "src/CMakeFiles/vw_util.dir/vwire/util/logging.cpp.o" "gcc" "src/CMakeFiles/vw_util.dir/vwire/util/logging.cpp.o.d"
  "/root/repo/src/vwire/util/rng.cpp" "src/CMakeFiles/vw_util.dir/vwire/util/rng.cpp.o" "gcc" "src/CMakeFiles/vw_util.dir/vwire/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
