file(REMOVE_RECURSE
  "CMakeFiles/vw_util.dir/vwire/util/bytes.cpp.o"
  "CMakeFiles/vw_util.dir/vwire/util/bytes.cpp.o.d"
  "CMakeFiles/vw_util.dir/vwire/util/checksum.cpp.o"
  "CMakeFiles/vw_util.dir/vwire/util/checksum.cpp.o.d"
  "CMakeFiles/vw_util.dir/vwire/util/hex.cpp.o"
  "CMakeFiles/vw_util.dir/vwire/util/hex.cpp.o.d"
  "CMakeFiles/vw_util.dir/vwire/util/logging.cpp.o"
  "CMakeFiles/vw_util.dir/vwire/util/logging.cpp.o.d"
  "CMakeFiles/vw_util.dir/vwire/util/rng.cpp.o"
  "CMakeFiles/vw_util.dir/vwire/util/rng.cpp.o.d"
  "libvw_util.a"
  "libvw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
