
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vwire/sim/event_queue.cpp" "src/CMakeFiles/vw_sim.dir/vwire/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/vw_sim.dir/vwire/sim/event_queue.cpp.o.d"
  "/root/repo/src/vwire/sim/simulator.cpp" "src/CMakeFiles/vw_sim.dir/vwire/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/vw_sim.dir/vwire/sim/simulator.cpp.o.d"
  "/root/repo/src/vwire/sim/timer.cpp" "src/CMakeFiles/vw_sim.dir/vwire/sim/timer.cpp.o" "gcc" "src/CMakeFiles/vw_sim.dir/vwire/sim/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
