file(REMOVE_RECURSE
  "CMakeFiles/vw_sim.dir/vwire/sim/event_queue.cpp.o"
  "CMakeFiles/vw_sim.dir/vwire/sim/event_queue.cpp.o.d"
  "CMakeFiles/vw_sim.dir/vwire/sim/simulator.cpp.o"
  "CMakeFiles/vw_sim.dir/vwire/sim/simulator.cpp.o.d"
  "CMakeFiles/vw_sim.dir/vwire/sim/timer.cpp.o"
  "CMakeFiles/vw_sim.dir/vwire/sim/timer.cpp.o.d"
  "libvw_sim.a"
  "libvw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
