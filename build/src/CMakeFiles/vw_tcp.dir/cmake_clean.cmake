file(REMOVE_RECURSE
  "CMakeFiles/vw_tcp.dir/vwire/tcp/apps.cpp.o"
  "CMakeFiles/vw_tcp.dir/vwire/tcp/apps.cpp.o.d"
  "CMakeFiles/vw_tcp.dir/vwire/tcp/congestion.cpp.o"
  "CMakeFiles/vw_tcp.dir/vwire/tcp/congestion.cpp.o.d"
  "CMakeFiles/vw_tcp.dir/vwire/tcp/tcp_connection.cpp.o"
  "CMakeFiles/vw_tcp.dir/vwire/tcp/tcp_connection.cpp.o.d"
  "CMakeFiles/vw_tcp.dir/vwire/tcp/tcp_layer.cpp.o"
  "CMakeFiles/vw_tcp.dir/vwire/tcp/tcp_layer.cpp.o.d"
  "libvw_tcp.a"
  "libvw_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
