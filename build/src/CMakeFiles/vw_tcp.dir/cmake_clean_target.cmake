file(REMOVE_RECURSE
  "libvw_tcp.a"
)
