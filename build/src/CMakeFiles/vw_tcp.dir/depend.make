# Empty dependencies file for vw_tcp.
# This may be replaced when dependencies are built.
