file(REMOVE_RECURSE
  "libvw_core.a"
)
