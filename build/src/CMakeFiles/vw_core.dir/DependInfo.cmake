
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vwire/core/analysis/offline.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/analysis/offline.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/analysis/offline.cpp.o.d"
  "/root/repo/src/vwire/core/api/scenario_runner.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/api/scenario_runner.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/api/scenario_runner.cpp.o.d"
  "/root/repo/src/vwire/core/api/testbed.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/api/testbed.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/api/testbed.cpp.o.d"
  "/root/repo/src/vwire/core/control/agent.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/control/agent.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/control/agent.cpp.o.d"
  "/root/repo/src/vwire/core/control/controller.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/control/controller.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/control/controller.cpp.o.d"
  "/root/repo/src/vwire/core/control/messages.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/control/messages.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/control/messages.cpp.o.d"
  "/root/repo/src/vwire/core/engine/actions.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/engine/actions.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/engine/actions.cpp.o.d"
  "/root/repo/src/vwire/core/engine/classifier.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/engine/classifier.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/engine/classifier.cpp.o.d"
  "/root/repo/src/vwire/core/engine/engine.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/engine/engine.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/engine/engine.cpp.o.d"
  "/root/repo/src/vwire/core/fsl/ast.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/fsl/ast.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/fsl/ast.cpp.o.d"
  "/root/repo/src/vwire/core/fsl/compiler.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/fsl/compiler.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/fsl/compiler.cpp.o.d"
  "/root/repo/src/vwire/core/fsl/diagnostics.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/fsl/diagnostics.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/fsl/diagnostics.cpp.o.d"
  "/root/repo/src/vwire/core/fsl/lexer.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/fsl/lexer.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/fsl/lexer.cpp.o.d"
  "/root/repo/src/vwire/core/fsl/parser.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/fsl/parser.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/fsl/parser.cpp.o.d"
  "/root/repo/src/vwire/core/gen/script_gen.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/gen/script_gen.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/gen/script_gen.cpp.o.d"
  "/root/repo/src/vwire/core/tables/serialize.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/tables/serialize.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/tables/serialize.cpp.o.d"
  "/root/repo/src/vwire/core/tables/tables.cpp" "src/CMakeFiles/vw_core.dir/vwire/core/tables/tables.cpp.o" "gcc" "src/CMakeFiles/vw_core.dir/vwire/core/tables/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vw_rll.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_rether.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
