# Empty compiler generated dependencies file for vw_core.
# This may be replaced when dependencies are built.
