# Empty compiler generated dependencies file for vw_phy.
# This may be replaced when dependencies are built.
