file(REMOVE_RECURSE
  "CMakeFiles/vw_phy.dir/vwire/phy/bit_error.cpp.o"
  "CMakeFiles/vw_phy.dir/vwire/phy/bit_error.cpp.o.d"
  "CMakeFiles/vw_phy.dir/vwire/phy/medium.cpp.o"
  "CMakeFiles/vw_phy.dir/vwire/phy/medium.cpp.o.d"
  "CMakeFiles/vw_phy.dir/vwire/phy/shared_bus.cpp.o"
  "CMakeFiles/vw_phy.dir/vwire/phy/shared_bus.cpp.o.d"
  "CMakeFiles/vw_phy.dir/vwire/phy/switched_lan.cpp.o"
  "CMakeFiles/vw_phy.dir/vwire/phy/switched_lan.cpp.o.d"
  "libvw_phy.a"
  "libvw_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
