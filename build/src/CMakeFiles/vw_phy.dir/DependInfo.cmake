
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vwire/phy/bit_error.cpp" "src/CMakeFiles/vw_phy.dir/vwire/phy/bit_error.cpp.o" "gcc" "src/CMakeFiles/vw_phy.dir/vwire/phy/bit_error.cpp.o.d"
  "/root/repo/src/vwire/phy/medium.cpp" "src/CMakeFiles/vw_phy.dir/vwire/phy/medium.cpp.o" "gcc" "src/CMakeFiles/vw_phy.dir/vwire/phy/medium.cpp.o.d"
  "/root/repo/src/vwire/phy/shared_bus.cpp" "src/CMakeFiles/vw_phy.dir/vwire/phy/shared_bus.cpp.o" "gcc" "src/CMakeFiles/vw_phy.dir/vwire/phy/shared_bus.cpp.o.d"
  "/root/repo/src/vwire/phy/switched_lan.cpp" "src/CMakeFiles/vw_phy.dir/vwire/phy/switched_lan.cpp.o" "gcc" "src/CMakeFiles/vw_phy.dir/vwire/phy/switched_lan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
