file(REMOVE_RECURSE
  "libvw_phy.a"
)
