
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vwire/trace/pcap.cpp" "src/CMakeFiles/vw_trace.dir/vwire/trace/pcap.cpp.o" "gcc" "src/CMakeFiles/vw_trace.dir/vwire/trace/pcap.cpp.o.d"
  "/root/repo/src/vwire/trace/summary.cpp" "src/CMakeFiles/vw_trace.dir/vwire/trace/summary.cpp.o" "gcc" "src/CMakeFiles/vw_trace.dir/vwire/trace/summary.cpp.o.d"
  "/root/repo/src/vwire/trace/trace.cpp" "src/CMakeFiles/vw_trace.dir/vwire/trace/trace.cpp.o" "gcc" "src/CMakeFiles/vw_trace.dir/vwire/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vw_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
