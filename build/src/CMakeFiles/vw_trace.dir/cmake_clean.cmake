file(REMOVE_RECURSE
  "CMakeFiles/vw_trace.dir/vwire/trace/pcap.cpp.o"
  "CMakeFiles/vw_trace.dir/vwire/trace/pcap.cpp.o.d"
  "CMakeFiles/vw_trace.dir/vwire/trace/summary.cpp.o"
  "CMakeFiles/vw_trace.dir/vwire/trace/summary.cpp.o.d"
  "CMakeFiles/vw_trace.dir/vwire/trace/trace.cpp.o"
  "CMakeFiles/vw_trace.dir/vwire/trace/trace.cpp.o.d"
  "libvw_trace.a"
  "libvw_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
