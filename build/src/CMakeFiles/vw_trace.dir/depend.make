# Empty dependencies file for vw_trace.
# This may be replaced when dependencies are built.
