file(REMOVE_RECURSE
  "libvw_trace.a"
)
