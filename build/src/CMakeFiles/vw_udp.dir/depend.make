# Empty dependencies file for vw_udp.
# This may be replaced when dependencies are built.
