file(REMOVE_RECURSE
  "CMakeFiles/vw_udp.dir/vwire/udp/echo.cpp.o"
  "CMakeFiles/vw_udp.dir/vwire/udp/echo.cpp.o.d"
  "CMakeFiles/vw_udp.dir/vwire/udp/udp_layer.cpp.o"
  "CMakeFiles/vw_udp.dir/vwire/udp/udp_layer.cpp.o.d"
  "libvw_udp.a"
  "libvw_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
