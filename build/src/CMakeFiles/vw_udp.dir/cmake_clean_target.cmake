file(REMOVE_RECURSE
  "libvw_udp.a"
)
