# Empty dependencies file for bench_ablation_rether_rt.
# This may be replaced when dependencies are built.
