
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_rether_rt.cpp" "bench/CMakeFiles/bench_ablation_rether_rt.dir/bench_ablation_rether_rt.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_rether_rt.dir/bench_ablation_rether_rt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_rll.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_rether.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
