file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rether_rt.dir/bench_ablation_rether_rt.cpp.o"
  "CMakeFiles/bench_ablation_rether_rt.dir/bench_ablation_rether_rt.cpp.o.d"
  "bench_ablation_rether_rt"
  "bench_ablation_rether_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rether_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
