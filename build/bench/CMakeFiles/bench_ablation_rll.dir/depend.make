# Empty dependencies file for bench_ablation_rll.
# This may be replaced when dependencies are built.
