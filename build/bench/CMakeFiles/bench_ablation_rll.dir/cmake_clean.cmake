file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rll.dir/bench_ablation_rll.cpp.o"
  "CMakeFiles/bench_ablation_rll.dir/bench_ablation_rll.cpp.o.d"
  "bench_ablation_rll"
  "bench_ablation_rll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
