# Empty dependencies file for bench_fig5_tcp_scenario.
# This may be replaced when dependencies are built.
