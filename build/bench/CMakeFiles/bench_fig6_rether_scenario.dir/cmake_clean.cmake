file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rether_scenario.dir/bench_fig6_rether_scenario.cpp.o"
  "CMakeFiles/bench_fig6_rether_scenario.dir/bench_fig6_rether_scenario.cpp.o.d"
  "bench_fig6_rether_scenario"
  "bench_fig6_rether_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rether_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
