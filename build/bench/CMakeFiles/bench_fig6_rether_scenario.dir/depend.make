# Empty dependencies file for bench_fig6_rether_scenario.
# This may be replaced when dependencies are built.
