file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_fsl.dir/bench_micro_fsl.cpp.o"
  "CMakeFiles/bench_micro_fsl.dir/bench_micro_fsl.cpp.o.d"
  "bench_micro_fsl"
  "bench_micro_fsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
