# Empty compiler generated dependencies file for bench_micro_fsl.
# This may be replaced when dependencies are built.
