# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/rll_test[1]_include.cmake")
include("/root/repo/build/tests/udp_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/rether_test[1]_include.cmake")
include("/root/repo/build/tests/fsl_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
