file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/distributed_rules_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/distributed_rules_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/fault_matrix_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/fault_matrix_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/paper_scenarios_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/paper_scenarios_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/scenario_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/scenario_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/tcp_fault_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/tcp_fault_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/var_filter_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/var_filter_test.cpp.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
