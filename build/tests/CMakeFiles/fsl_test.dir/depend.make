# Empty dependencies file for fsl_test.
# This may be replaced when dependencies are built.
