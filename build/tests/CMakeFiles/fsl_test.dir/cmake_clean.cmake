file(REMOVE_RECURSE
  "CMakeFiles/fsl_test.dir/fsl/compiler_test.cpp.o"
  "CMakeFiles/fsl_test.dir/fsl/compiler_test.cpp.o.d"
  "CMakeFiles/fsl_test.dir/fsl/lexer_test.cpp.o"
  "CMakeFiles/fsl_test.dir/fsl/lexer_test.cpp.o.d"
  "CMakeFiles/fsl_test.dir/fsl/paper_listings_test.cpp.o"
  "CMakeFiles/fsl_test.dir/fsl/paper_listings_test.cpp.o.d"
  "CMakeFiles/fsl_test.dir/fsl/parser_test.cpp.o"
  "CMakeFiles/fsl_test.dir/fsl/parser_test.cpp.o.d"
  "CMakeFiles/fsl_test.dir/fsl/serialize_test.cpp.o"
  "CMakeFiles/fsl_test.dir/fsl/serialize_test.cpp.o.d"
  "fsl_test"
  "fsl_test.pdb"
  "fsl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
