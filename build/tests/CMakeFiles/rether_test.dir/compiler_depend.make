# Empty compiler generated dependencies file for rether_test.
# This may be replaced when dependencies are built.
