file(REMOVE_RECURSE
  "CMakeFiles/rether_test.dir/rether/rether_frame_test.cpp.o"
  "CMakeFiles/rether_test.dir/rether/rether_frame_test.cpp.o.d"
  "CMakeFiles/rether_test.dir/rether/rether_test.cpp.o"
  "CMakeFiles/rether_test.dir/rether/rether_test.cpp.o.d"
  "CMakeFiles/rether_test.dir/rether/ring_test.cpp.o"
  "CMakeFiles/rether_test.dir/rether/ring_test.cpp.o.d"
  "rether_test"
  "rether_test.pdb"
  "rether_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rether_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
