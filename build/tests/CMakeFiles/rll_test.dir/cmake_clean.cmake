file(REMOVE_RECURSE
  "CMakeFiles/rll_test.dir/rll/rll_property_test.cpp.o"
  "CMakeFiles/rll_test.dir/rll/rll_property_test.cpp.o.d"
  "CMakeFiles/rll_test.dir/rll/rll_test.cpp.o"
  "CMakeFiles/rll_test.dir/rll/rll_test.cpp.o.d"
  "rll_test"
  "rll_test.pdb"
  "rll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
