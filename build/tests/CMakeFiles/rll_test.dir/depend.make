# Empty dependencies file for rll_test.
# This may be replaced when dependencies are built.
