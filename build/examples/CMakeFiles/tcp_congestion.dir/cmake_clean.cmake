file(REMOVE_RECURSE
  "CMakeFiles/tcp_congestion.dir/tcp_congestion.cpp.o"
  "CMakeFiles/tcp_congestion.dir/tcp_congestion.cpp.o.d"
  "tcp_congestion"
  "tcp_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
