# Empty compiler generated dependencies file for tcp_congestion.
# This may be replaced when dependencies are built.
