# Empty compiler generated dependencies file for rether_failover.
# This may be replaced when dependencies are built.
