file(REMOVE_RECURSE
  "CMakeFiles/rether_failover.dir/rether_failover.cpp.o"
  "CMakeFiles/rether_failover.dir/rether_failover.cpp.o.d"
  "rether_failover"
  "rether_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rether_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
