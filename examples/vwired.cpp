// vwired — fault injection as a service (DESIGN.md §11, ISSUE 7).
//
//   vwired --socket /tmp/vwired.sock [--checkpoint-dir DIR] [--runners N]
//          [--max-active-per-tenant N] [--max-queue-depth N]
//          [--max-trials N] [--no-resume]
//
// Long-running daemon: accepts chaos-campaign submissions over a local
// unix socket (line-delimited JSON, see vwired_client), schedules them
// under per-tenant quotas, journals every completed trial to the
// checkpoint directory, and on SIGTERM/SIGINT drains gracefully —
// in-flight trials finish and are journaled, queued campaigns checkpoint,
// and the process exits 0.  A restarted instance with the same
// --checkpoint-dir resumes interrupted campaigns; determinism makes their
// final summaries byte-identical to uninterrupted runs.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "vwire/service/daemon.hpp"

using namespace vwire;
using namespace vwire::service;

namespace {

// The handler may only touch async-signal-safe state; Daemon exposes
// exactly one such entry point.
Daemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  DaemonConfig cfg;
  cfg.socket_path = "/tmp/vwired.sock";
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(a, "--socket")) cfg.socket_path = next();
    else if (!std::strcmp(a, "--checkpoint-dir")) cfg.scheduler.checkpoint_dir = next();
    else if (!std::strcmp(a, "--runners")) cfg.scheduler.runners = std::strtoul(next(), nullptr, 10);
    else if (!std::strcmp(a, "--max-active-per-tenant")) cfg.scheduler.quota.max_active_per_tenant = std::strtoul(next(), nullptr, 10);
    else if (!std::strcmp(a, "--max-queue-depth")) cfg.scheduler.quota.max_queue_depth = std::strtoul(next(), nullptr, 10);
    else if (!std::strcmp(a, "--max-trials")) cfg.scheduler.quota.max_trials_per_campaign = std::strtoul(next(), nullptr, 10);
    else if (!std::strcmp(a, "--no-resume")) cfg.resume = false;
    else {
      std::fprintf(stderr,
                   "usage: vwired [--socket PATH] [--checkpoint-dir DIR] "
                   "[--runners N]\n"
                   "              [--max-active-per-tenant N] "
                   "[--max-queue-depth N] [--max-trials N] [--no-resume]\n");
      return 2;
    }
  }

  Daemon daemon(cfg);
  if (!daemon.start()) return 1;
  g_daemon = &daemon;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("vwired: serving on %s (%zu runner(s), checkpoints %s)\n",
              daemon.socket_path().c_str(), cfg.scheduler.runners,
              cfg.scheduler.checkpoint_dir.empty()
                  ? "disabled"
                  : cfg.scheduler.checkpoint_dir.c_str());
  std::fflush(stdout);
  const int rc = daemon.serve();
  g_daemon = nullptr;
  std::printf("vwired: drained, exiting %d\n", rc);
  return rc;
}
