// quickstart — the smallest complete VirtualWire session.
//
// Two nodes run a UDP echo service.  A five-line FSL scenario drops the
// third request on the server's receive path and checks an invariant
// (replies can never outnumber requests).  No protocol code is instrumented;
// the script is the whole test.
//
// Expected output: the scenario PASSes, the client gets 4 of 5 replies, and
// the engine reports exactly one injected drop.
#include <cstdio>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/udp/echo.hpp"

using namespace vwire;

int main() {
  Testbed tb;
  tb.add_node("client");
  tb.add_node("server");

  udp::UdpLayer client_udp(tb.node("client"));
  udp::UdpLayer server_udp(tb.node("server"));
  udp::EchoServer server(server_udp, /*port=*/7);

  udp::EchoClient::Params cp;
  cp.server_ip = tb.node("server").ip();
  cp.server_port = 7;
  cp.local_port = 40000;
  cp.count = 5;
  cp.interval = millis(20);
  udp::EchoClient client(client_udp, cp);

  // The NODE_TABLE is generated from the live testbed, so the script can
  // never drift out of sync with it.
  std::string script =
      "FILTER_TABLE\n"
      "  udp_req: (12 2 0x0800), (23 1 0x11), (34 2 0x9c40), (36 2 0x0007)\n"
      "  udp_rsp: (12 2 0x0800), (23 1 0x11), (34 2 0x0007), (36 2 0x9c40)\n"
      "END\n" +
      tb.node_table_fsl() +
      "SCENARIO quickstart\n"
      "  REQ: (udp_req, client, server, RECV)\n"
      "  RSP: (udp_rsp, server, client, RECV)\n"
      "  (TRUE) >> ENABLE_CNTR(REQ); ENABLE_CNTR(RSP);\n"
      "  ((REQ = 3)) >> DROP udp_req, client, server, RECV;\n"
      "  ((RSP > REQ)) >> FLAG_ERROR;\n"
      "END\n";

  ScenarioRunner runner(tb);
  ScenarioSpec spec;
  spec.script = script;
  spec.workload = [&] { client.start(); };
  spec.options.deadline = seconds(2);
  auto result = runner.run(spec);

  std::printf("%s\n", result.summary().c_str());
  std::printf("client: sent=%u received=%u mean RTT=%.1f us\n", client.sent(),
              client.received(), client.mean_rtt().micros_f());
  for (const auto& [name, value] : result.counters) {
    std::printf("counter %-4s = %lld\n", name.c_str(),
                static_cast<long long>(value));
  }
  auto& server_engine = *tb.handles("server").engine;
  std::printf("server engine: %llu packets seen, %llu drops injected\n",
              static_cast<unsigned long long>(server_engine.stats().packets_seen),
              static_cast<unsigned long long>(server_engine.stats().drops));

  bool ok = result.passed() && client.received() == 4 &&
            server_engine.stats().drops == 1;
  std::printf("quickstart: %s\n", ok ? "OK" : "UNEXPECTED RESULT");
  return ok ? 0 : 1;
}
