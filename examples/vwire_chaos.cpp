// vwire_chaos — chaos-campaign driver (DESIGN.md §8, ISSUE 4).
//
// Modes:
//   vwire_chaos [--fixture fig7] [--trials 100] [--seed 1] [--workers 4]
//               [--keep-telemetry] [--state-faults] [--out summary.json]
//       Run a randomized campaign; exit 1 if any invariant fired.
//       --state-faults adds Byzantine soft-state corruptions (the
//       fixture's tolerated state_fault_kinds) to the generated space.
//   vwire_chaos --replay repro.json
//       Load a repro artifact and re-execute its schedule; exit 1 if the
//       violation does NOT reproduce (repros must stay honest).
//   vwire_chaos --smoke
//       CI gate: fixed-seed campaign must be clean, a trial must replay
//       with byte-identical telemetry, and a planted duplicate-delivery
//       bug must be caught and ddmin-minimized to <= 3 events.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "vwire/chaos/campaign.hpp"
#include "vwire/chaos/checkpoint.hpp"

using namespace vwire;
using namespace vwire::chaos;

namespace {

int run_campaign(CampaignConfig cfg, const std::string& out_path,
                 const std::string& repro_path,
                 const std::string& checkpoint_path) {
  // --checkpoint: journal completed trials as they finish and, when the
  // file already holds a matching journal, resume — only uncovered trials
  // re-run, and determinism makes the merged summary byte-identical to an
  // uninterrupted run's.
  std::vector<TrialResult> completed;
  std::unique_ptr<CheckpointWriter> writer;
  if (!checkpoint_path.empty()) {
    bool resume = false;
    if (std::ifstream(checkpoint_path).good()) {
      try {
        const Checkpoint ck = load_checkpoint(checkpoint_path);
        completed = restore_results(Campaign(cfg), ck);
        resume = true;
        std::printf("resuming from %s: %zu/%zu trials already done\n",
                    checkpoint_path.c_str(), completed.size(), cfg.trials);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "checkpoint %s unusable (%s); starting fresh\n",
                     checkpoint_path.c_str(), e.what());
      }
    }
    writer = std::make_unique<CheckpointWriter>(checkpoint_path,
                                                make_header(cfg), resume);
    if (!writer->ok()) {
      std::fprintf(stderr, "cannot write checkpoint %s; running without\n",
                   checkpoint_path.c_str());
    }
    cfg.on_trial = [&w = *writer](const TrialResult& r) { w.append(r); };
  }

  Campaign campaign(cfg);
  CampaignSummary s = campaign.run_from(std::move(completed));
  std::printf("%s\n", s.summary_line().c_str());
  for (u64 idx : s.failing_trials) {
    const TrialResult& r = s.results[idx];
    std::printf("  trial %llu (%zu events):\n",
                static_cast<unsigned long long>(idx), r.schedule.events.size());
    for (const Violation& v : r.violations) {
      std::printf("    %s: %s (x%llu)\n", v.invariant.c_str(),
                  v.detail.c_str(), static_cast<unsigned long long>(v.count));
    }
  }
  if (s.repro) {
    std::printf("  minimized repro: %zu -> %zu events (%zu timeline events, "
                "%llu evicted)\n",
                s.repro->original_events, s.repro->schedule.events.size(),
                s.repro->timeline.size(),
                static_cast<unsigned long long>(s.repro->timeline_dropped));
    if (!repro_path.empty()) {
      std::ofstream out(repro_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", repro_path.c_str());
        return 2;
      }
      out << s.repro->to_json() << '\n';
      std::printf("  repro artifact written to %s\n", repro_path.c_str());
    }
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << s.to_json() << '\n';
    std::printf("  summary written to %s\n", out_path.c_str());
  }
  return s.ok() ? 0 : 1;
}

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  ReproArtifact art;
  try {
    art = ReproArtifact::from_json(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad repro artifact: %s\n", e.what());
    return 2;
  }
  std::printf("repro: fixture=%s seed=%llu trial=%llu, %zu events "
              "(minimized from %zu)\n",
              art.fixture.c_str(),
              static_cast<unsigned long long>(art.schedule.campaign_seed),
              static_cast<unsigned long long>(art.schedule.trial_index),
              art.schedule.events.size(), art.original_events);
  if (!art.fsl.empty()) std::printf("generated FSL:\n%s", art.fsl.c_str());

  CampaignConfig cfg;
  cfg.fixture = art.fixture;
  cfg.seed = art.schedule.campaign_seed;
  Campaign campaign(cfg);
  TrialResult r;
  try {
    r = campaign.run_schedule(art.schedule);
  } catch (const std::exception& e) {
    std::printf("replay raised: %s\n", e.what());
    return 1;
  }
  if (r.ok()) {
    std::printf("replay: violation did NOT reproduce\n");
    return 1;
  }
  for (const Violation& v : r.violations) {
    std::printf("replay reproduces %s: %s (x%llu)\n", v.invariant.c_str(),
                v.detail.c_str(), static_cast<unsigned long long>(v.count));
  }
  return 0;
}

int fail(const char* what) {
  std::printf("SMOKE FAIL: %s\n", what);
  return 1;
}

int run_smoke() {
  // 1. Fixed-seed campaign over the Fig 7 TCP topology must be clean.
  CampaignConfig cfg;
  cfg.fixture = "fig7";
  cfg.seed = 42;
  cfg.trials = 25;
  cfg.minimize = false;
  Campaign campaign(cfg);
  CampaignSummary s = campaign.run();
  std::printf("[1/3] %s\n", s.summary_line().c_str());
  if (!s.ok()) {
    for (u64 idx : s.failing_trials) {
      for (const Violation& v : s.results[idx].violations) {
        std::printf("      trial %llu %s: %s\n",
                    static_cast<unsigned long long>(idx), v.invariant.c_str(),
                    v.detail.c_str());
      }
    }
    return fail("campaign reported violations");
  }

  // 2. Deterministic replay: the same (seed, index) twice, from scratch,
  //    must produce byte-identical telemetry.
  TrialResult a = campaign.run_trial(7);
  TrialResult b = campaign.run_trial(7);
  if (a.telemetry.empty()) return fail("trial produced no telemetry");
  if (a.telemetry != b.telemetry) return fail("replay telemetry differs");
  std::printf("[2/3] trial 7 replays byte-identically (%zu telemetry bytes, "
              "%zu events)\n",
              a.telemetry.size(), a.schedule.events.size());

  // 3. Planted bug: a schedule carrying the RLL duplicate-delivery knob
  //    among decoy events must be caught, and ddmin must strip the decoys.
  FaultSchedule bad;
  bad.campaign_seed = 42;
  bad.trial_index = 9001;  // outside the campaign range: clearly planted
  FaultEvent dup;
  dup.kind = FaultKind::kRllDupDeliver;
  dup.node = "node2";
  dup.at = millis(10);
  dup.until = millis(1000);  // span the transfer: the knob only bites while
                             // in-order data is actually being handed up
  FaultEvent decoy_cut;
  decoy_cut.kind = FaultKind::kLinkCut;
  decoy_cut.node = "node1";
  decoy_cut.at = millis(20);
  decoy_cut.until = millis(35);
  FaultEvent decoy_drop;
  decoy_drop.kind = FaultKind::kFslDrop;
  decoy_drop.pkt_lo = 5;
  decoy_drop.pkt_hi = 7;
  FaultEvent decoy_delay;
  decoy_delay.kind = FaultKind::kFslDelay;
  decoy_delay.pkt_lo = 11;
  decoy_delay.pkt_hi = 12;
  decoy_delay.delay = millis(3);
  bad.events = {decoy_cut, decoy_drop, dup, decoy_delay};

  TrialResult caught = campaign.run_schedule(bad);
  if (caught.ok()) return fail("planted duplicate delivery went undetected");
  bool saw_rll = false;
  for (const Violation& v : caught.violations) {
    if (v.invariant == "rll-exactly-once") saw_rll = true;
  }
  if (!saw_rll) return fail("violation was not rll-exactly-once");

  FaultSchedule minimized = minimize_schedule(
      bad, [&campaign](const FaultSchedule& cand) {
        try {
          return !campaign.run_schedule(cand).ok();
        } catch (const std::exception&) {
          return true;
        }
      });
  std::printf("[3/3] planted bug caught; ddmin %zu -> %zu events\n",
              bad.events.size(), minimized.events.size());
  if (minimized.events.size() > 3) return fail("minimization left > 3 events");
  bool kept_dup = false;
  for (const FaultEvent& e : minimized.events) {
    if (e.kind == FaultKind::kRllDupDeliver) kept_dup = true;
  }
  if (!kept_dup) return fail("minimized schedule lost the causal event");
  std::printf("SMOKE PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignConfig cfg;
  cfg.trials = 100;
  std::string out_path;
  std::string repro_path;
  std::string replay_path;
  std::string checkpoint_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(a, "--smoke")) smoke = true;
    else if (!std::strcmp(a, "--replay")) replay_path = next();
    else if (!std::strcmp(a, "--fixture")) cfg.fixture = next();
    else if (!std::strcmp(a, "--trials")) cfg.trials = std::strtoul(next(), nullptr, 10);
    else if (!std::strcmp(a, "--seed")) cfg.seed = std::strtoull(next(), nullptr, 10);
    else if (!std::strcmp(a, "--workers")) cfg.workers = std::strtoul(next(), nullptr, 10);
    else if (!std::strcmp(a, "--keep-telemetry")) cfg.keep_telemetry = true;
    else if (!std::strcmp(a, "--state-faults")) cfg.state_faults = true;
    else if (!std::strcmp(a, "--out")) out_path = next();
    else if (!std::strcmp(a, "--repro-out")) repro_path = next();
    else if (!std::strcmp(a, "--trial-timeout-ms")) cfg.trial_timeout_ms = std::strtoll(next(), nullptr, 10);
    else if (!std::strcmp(a, "--retries")) cfg.trial_retries = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    else if (!std::strcmp(a, "--minimize-budget-ms")) cfg.minimize_budget_ms = std::strtoll(next(), nullptr, 10);
    else if (!std::strcmp(a, "--no-minimize")) cfg.minimize = false;
    else if (!std::strcmp(a, "--checkpoint")) checkpoint_path = next();
    else if (!std::strcmp(a, "--campaign")) {}  // the default mode
    else {
      std::fprintf(stderr,
                   "usage: vwire_chaos [--fixture NAME] [--trials N] "
                   "[--seed S] [--workers W] [--keep-telemetry] "
                   "[--state-faults] [--out F] [--repro-out F]\n"
                   "                   [--trial-timeout-ms MS] [--retries N] "
                   "[--minimize-budget-ms MS] [--no-minimize] "
                   "[--checkpoint FILE]\n"
                   "       vwire_chaos --replay repro.json\n"
                   "       vwire_chaos --smoke\n");
      return 2;
    }
  }
  if (smoke) return run_smoke();
  if (!replay_path.empty()) return run_replay(replay_path);
  return run_campaign(std::move(cfg), out_path, repro_path, checkpoint_path);
}
