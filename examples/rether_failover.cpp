// rether_failover — reproduction of the paper's §6.2 / Fig 6 experiment:
// single-node-failure recovery in the Rether token-passing protocol, with
// distributed rule execution (the counter lives on node2, the FAIL action
// executes on node3, the STOP condition spans three nodes).
//
// Testbed: four nodes on a shared bus (Rether's natural medium), token
// ring order node1 → node2 → node3 → node4.  node1 streams TCP to node4;
// node2 and node3 carry no data.  After 1000 TCP data packets, the next
// token that reaches node2 triggers FAIL(node3).  node2 must then send the
// token to the dead node3 exactly 3 times (more is a protocol error),
// evict it, and the reconstructed ring node1→node2→node4 must complete a
// full round-robin within the scenario's 1-second inactivity window.
#include <cstdio>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/rether/rether_layer.hpp"
#include "vwire/tcp/apps.hpp"

using namespace vwire;

namespace {

const char* kFilters =
    "FILTER_TABLE\n"
    "  tr_token:     (12 2 0x9900), (14 2 0x0001)\n"
    "  tr_token_ack: (12 2 0x9900), (14 2 0x0010)\n"
    "  TCP_data:     (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)\n"
    "END\n";

const char* kScenario =
    "SCENARIO Test_Single_Node_Failure 1sec\n"
    "  CNT_DATA:    (TCP_data, node1, node4, RECV)\n"
    "  TokensTo2:   (tr_token, node1, node2, RECV)\n"
    "  TokensFrom2: (tr_token, node2, node3, SEND)\n"
    "  TokensTo4:   (tr_token, node2, node4, RECV)\n"
    "  TokensTo1:   (tr_token, node4, node1, RECV)\n"
    "  (TRUE) >> ENABLE_CNTR( CNT_DATA );\n"
    "  ((CNT_DATA > 1000)) >> ENABLE_CNTR( TokensTo2 );\n"
    "  ((TokensTo2 = 1)) >> FAIL( node3 );\n"
    "                ENABLE_CNTR( TokensFrom2 );\n"
    "                RESET_CNTR( TokensTo2 );\n"
    "  ((TokensFrom2 = 3)) >> ENABLE_CNTR( TokensTo4 );\n"
    "  ((TokensTo4 = 1)) >> ENABLE_CNTR( TokensTo1 );\n"
    "  /*** ANALYSIS SCRIPT ***/\n"
    "  ((TokensFrom2 > 3)) >> FLAG_ERROR;\n"
    "  ((TokensTo2 = 1) && (TokensTo4 = 1) && (TokensTo1 = 1)) >> STOP;\n"
    "END\n";

}  // namespace

int main() {
  TestbedConfig cfg;
  cfg.medium = TestbedConfig::MediumKind::kSharedBus;
  Testbed tb(cfg);
  const char* names[] = {"node1", "node2", "node3", "node4"};
  for (const char* n : names) tb.add_node(n);

  // Ring order matches the paper's round-robin: node1, node2, node3, node4.
  std::vector<net::MacAddress> ring;
  for (const char* n : names) ring.push_back(tb.node(n).mac());

  rether::RetherParams rp;  // 3 total token transmissions, 10 ms ack timeout
  std::vector<rether::RetherLayer*> rether_layers;
  for (const char* n : names) {
    auto layer = std::make_unique<rether::RetherLayer>(tb.simulator(), rp, ring);
    rether_layers.push_back(static_cast<rether::RetherLayer*>(
        &tb.node(n).add_layer(std::move(layer))));
  }

  tcp::TcpLayer tcp1(tb.node("node1"));
  tcp::TcpLayer tcp4(tb.node("node4"));
  tcp::BulkSink sink(tcp4, /*port=*/16384);
  tcp::BulkSender::Params sp;
  sp.dst_ip = tb.node("node4").ip();
  sp.dst_port = 16384;
  sp.src_port = 24576;
  sp.total_bytes = 0;  // stream until the scenario STOPs
  tcp::BulkSender sender(tcp1, sp);

  ScenarioRunner runner(tb);
  ScenarioSpec spec;
  spec.script = std::string(kFilters) + tb.node_table_fsl() + kScenario;
  spec.workload = [&] {
    for (std::size_t i = 0; i < rether_layers.size(); ++i) {
      rether_layers[i]->start(/*with_token=*/i == 0);
    }
    sender.start();
  };
  spec.options.deadline = seconds(60);
  auto result = runner.run(spec);

  std::printf("%s\n", result.summary().c_str());
  for (const char* n : {"CNT_DATA", "TokensTo2", "TokensFrom2", "TokensTo4",
                        "TokensTo1"}) {
    std::printf("counter %-12s = %lld\n", n,
                static_cast<long long>(result.counters[n]));
  }
  const auto& r2 = *rether_layers[1];
  std::printf("node2 rether: ring size %zu, evicted %llu, retransmits %llu\n",
              r2.ring().size(),
              static_cast<unsigned long long>(r2.stats().nodes_evicted),
              static_cast<unsigned long long>(r2.stats().token_retransmits));
  std::printf("sink received %llu bytes through the token ring\n",
              static_cast<unsigned long long>(sink.bytes_received()));

  bool ok = result.passed() && result.stopped &&
            result.counters["TokensFrom2"] == 3 &&
            r2.stats().nodes_evicted == 1 && r2.ring().size() == 3;
  std::printf("rether_failover: %s\n", ok ? "OK" : "UNEXPECTED RESULT");
  return ok ? 0 : 1;
}
