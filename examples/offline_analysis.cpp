// offline_analysis — the post-mortem workflow: capture a faulted live run,
// export the trace to pcap (openable in tcpdump/Wireshark), then re-run the
// analysis script OFFLINE over the recorded trace and compare verdicts with
// the live FAE.
//
// This closes the paper's §1 loop end-to-end: no manual trace inspection —
// the same compiled six tables interpret the capture.
#include <cstdio>
#include <sstream>

#include "vwire/core/analysis/offline.hpp"
#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/trace/pcap.hpp"
#include "vwire/udp/echo.hpp"

using namespace vwire;

namespace {

const char* kFilters =
    "FILTER_TABLE\n"
    "  udp_req: (12 2 0x0800), (23 1 0x11), (34 2 0x9c40), (36 2 0x0007)\n"
    "  udp_rsp: (12 2 0x0800), (23 1 0x11), (34 2 0x0007), (36 2 0x9c40)\n"
    "END\n";

const char* kScenario =
    "SCENARIO drop_and_audit\n"
    "  REQ: (udp_req, client, server, RECV)\n"
    "  RSP: (udp_rsp, server, client, RECV)\n"
    "  (TRUE) >> ENABLE_CNTR(REQ); ENABLE_CNTR(RSP);\n"
    "  ((REQ = 4)) >> DROP(udp_req, client, server, RECV);\n"
    "  ((RSP > REQ)) >> FLAG_ERROR;\n"
    "END\n";

}  // namespace

int main() {
  // ---- live run with fault injection, trace recording on ----------------
  Testbed tb;
  tb.add_node("client");
  tb.add_node("server");
  udp::UdpLayer cu(tb.node("client")), su(tb.node("server"));
  udp::EchoServer server(su, 7);
  udp::EchoClient::Params cp;
  cp.server_ip = tb.node("server").ip();
  cp.server_port = 7;
  cp.local_port = 40000;
  cp.count = 8;
  cp.interval = millis(10);
  udp::EchoClient client(cu, cp);

  std::string script = std::string(kFilters) + tb.node_table_fsl() + kScenario;
  ScenarioRunner runner(tb);
  ScenarioSpec spec;
  spec.script = script;
  spec.workload = [&] { client.start(); };
  spec.options.deadline = seconds(2);
  auto live = runner.run(spec);
  std::printf("live run:    %s\n", live.summary().c_str());
  std::printf("             REQ=%lld RSP=%lld, client received %u/8\n",
              static_cast<long long>(live.counters["REQ"]),
              static_cast<long long>(live.counters["RSP"]), client.received());

  // ---- export the capture to pcap ---------------------------------------
  const char* path = "offline_analysis.pcap";
  if (!trace::write_pcap_file(tb.trace(), path)) {
    std::printf("could not write %s\n", path);
    return 1;
  }
  std::printf("trace:       %zu records exported to %s\n", tb.trace().size(),
              path);

  // ---- offline replay of the same analysis script ------------------------
  core::OfflineAnalyzer analyzer(fsl::compile_script(script));
  auto offline = analyzer.analyze(tb.trace());
  std::printf("offline:     %s, REQ=%lld RSP=%lld, %llu fault activations "
              "the live FIE applied\n",
              offline.passed() ? "PASS" : "FAIL",
              static_cast<long long>(offline.counters["REQ"]),
              static_cast<long long>(offline.counters["RSP"]),
              static_cast<unsigned long long>(offline.would_have_fired_faults));

  bool agree = live.passed() == offline.passed() &&
               live.counters["REQ"] == offline.counters["REQ"] &&
               live.counters["RSP"] == offline.counters["RSP"];
  std::printf("offline_analysis: %s\n",
              agree ? "OK — offline verdict matches the live FAE"
                    : "MISMATCH between live and offline analysis");
  return agree ? 0 : 1;
}
