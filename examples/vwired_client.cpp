// vwired_client — command-line client for the vwired daemon.
//
//   vwired_client --socket /tmp/vwired.sock ping
//   vwired_client ... submit --tenant ci --fixture udp --trials 100
//                     [--seed S] [--workers N] [--state-faults]
//                     [--trial-timeout-ms MS] [--minimize-budget-ms MS]
//                     [--retries N] [--no-minimize]
//                     [--stop-on-violation] [--id-only]
//   vwired_client ... status  JOB
//   vwired_client ... wait    JOB [--poll-ms 200]
//   vwired_client ... watch   JOB
//   vwired_client ... summary JOB        (prints the campaign summary JSON)
//   vwired_client ... artifact JOB       (prints the repro artifact JSON)
//   vwired_client ... list [--tenant T]
//   vwired_client ... stats              (aligned table of service counters)
//   vwired_client ... metrics            (Prometheus text exposition)
//   vwired_client ... drain
//
// Exit codes: 0 success; 1 the job failed (wait); 2 usage/communication
// error; 4 the submit was shed (over-quota / draining — retry_after_ms is
// printed); 5 the job ended checkpointed (wait on a draining daemon).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>
#include <thread>

#include "vwire/obs/format.hpp"
#include "vwire/obs/json.hpp"
#include "vwire/util/types.hpp"

using namespace vwire;

namespace {

int g_fd = -1;
std::string g_inbuf;

bool connect_daemon(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long\n");
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  g_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (g_fd < 0 || ::connect(g_fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  return true;
}

bool send_line(const std::string& line) {
  std::string frame = line;
  frame.push_back('\n');
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(g_fd, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_line(std::string& out) {
  for (;;) {
    const std::size_t nl = g_inbuf.find('\n');
    if (nl != std::string::npos) {
      out = g_inbuf.substr(0, nl);
      g_inbuf.erase(0, nl + 1);
      return true;
    }
    char buf[4096];
    const ssize_t n = ::recv(g_fd, buf, sizeof buf, 0);
    if (n <= 0) return false;
    g_inbuf.append(buf, static_cast<std::size_t>(n));
  }
}

/// One request/response round trip; exits 2 on transport failure.
obs::JsonValue roundtrip(const std::string& req) {
  std::string line;
  if (!send_line(req) || !read_line(line)) {
    std::fprintf(stderr, "daemon connection lost\n");
    std::exit(2);
  }
  try {
    return obs::JsonValue::parse(line);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "unparseable response: %s\n", e.what());
    std::exit(2);
  }
}

/// Shared shed/error handling for responses that should be "ok".
/// Returns only when v["ok"] is true.
void require_ok(const obs::JsonValue& v) {
  if (v.boolean("ok")) return;
  const std::string code = v.str("error", "error");
  std::fprintf(stderr, "%s: %s\n", code.c_str(), v.str("detail").c_str());
  if (code == "over-quota" || code == "draining") {
    if (v.has("retry_after_ms") && v.num("retry_after_ms") >= 0) {
      std::printf("retry_after_ms=%lld\n",
                  static_cast<long long>(v.num("retry_after_ms")));
    }
    std::exit(4);
  }
  std::exit(2);
}

void print_job(const obs::JsonValue& v) {
  std::printf("%s tenant=%s state=%s %lld/%lld trials, %lld failing%s\n",
              v.str("job").c_str(), v.str("tenant").c_str(),
              v.str("state").c_str(),
              static_cast<long long>(v.num("completed")),
              static_cast<long long>(v.num("total")),
              static_cast<long long>(v.num("failures")),
              v.boolean("has_repro") ? " [repro available]" : "");
  if (!v.str("error").empty()) {
    std::printf("  error: %s\n", v.str("error").c_str());
  }
}

bool terminal_state(const std::string& s) {
  return s == "done" || s == "failed" || s == "checkpointed";
}

int state_exit_code(const std::string& s) {
  if (s == "done") return 0;
  if (s == "checkpointed") return 5;
  return 1;
}

std::string status_request(const std::string& job) {
  return "{\"v\":1,\"type\":\"status\",\"job\":\"" + job + "\"}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/vwired.sock";
  std::string cmd;
  std::string job;
  std::string tenant;
  std::string fixture = "fig7";
  std::string seed = "1";
  long trials = 25;
  long workers = 1;
  long trial_timeout_ms = 0;
  long minimize_budget_ms = 0;
  long retries = 0;
  long poll_ms = 200;
  bool state_faults = false;
  bool minimize = true;
  bool stop_on_violation = false;
  bool id_only = false;

  auto usage = [] {
    std::fprintf(stderr,
                 "usage: vwired_client [--socket PATH] "
                 "ping|submit|status|wait|watch|summary|artifact|list|stats|"
                 "metrics|drain [JOB] [options]\n");
    return 2;
  };

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(a, "--socket")) socket_path = next();
    else if (!std::strcmp(a, "--tenant")) tenant = next();
    else if (!std::strcmp(a, "--fixture")) fixture = next();
    else if (!std::strcmp(a, "--seed")) seed = next();
    else if (!std::strcmp(a, "--trials")) trials = std::strtol(next(), nullptr, 10);
    else if (!std::strcmp(a, "--workers")) workers = std::strtol(next(), nullptr, 10);
    else if (!std::strcmp(a, "--trial-timeout-ms")) trial_timeout_ms = std::strtol(next(), nullptr, 10);
    else if (!std::strcmp(a, "--minimize-budget-ms")) minimize_budget_ms = std::strtol(next(), nullptr, 10);
    else if (!std::strcmp(a, "--retries")) retries = std::strtol(next(), nullptr, 10);
    else if (!std::strcmp(a, "--poll-ms")) poll_ms = std::strtol(next(), nullptr, 10);
    else if (!std::strcmp(a, "--state-faults")) state_faults = true;
    else if (!std::strcmp(a, "--no-minimize")) minimize = false;
    else if (!std::strcmp(a, "--stop-on-violation")) stop_on_violation = true;
    else if (!std::strcmp(a, "--id-only")) id_only = true;
    else if (a[0] == '-') return usage();
    else if (cmd.empty()) cmd = a;
    else if (job.empty()) job = a;
    else return usage();
  }
  if (cmd.empty()) return usage();
  const bool needs_job = cmd == "status" || cmd == "wait" || cmd == "watch" ||
                         cmd == "summary" || cmd == "artifact";
  if (needs_job && job.empty()) {
    std::fprintf(stderr, "%s needs a JOB id\n", cmd.c_str());
    return 2;
  }
  if (!connect_daemon(socket_path)) return 2;

  if (cmd == "ping") {
    require_ok(roundtrip("{\"v\":1,\"type\":\"ping\"}"));
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "submit") {
    if (tenant.empty()) {
      std::fprintf(stderr, "submit needs --tenant\n");
      return 2;
    }
    std::string req = "{\"v\":1,\"type\":\"submit\",\"tenant\":\"" + tenant +
                      "\",\"fixture\":\"" + fixture + "\",\"seed\":\"" + seed +
                      "\",\"trials\":" + std::to_string(trials) +
                      ",\"workers\":" + std::to_string(workers) +
                      ",\"trial_timeout_ms\":" +
                      std::to_string(trial_timeout_ms) +
                      ",\"retries\":" + std::to_string(retries);
    if (minimize_budget_ms > 0) {
      req += ",\"minimize_budget_ms\":" + std::to_string(minimize_budget_ms);
    }
    if (state_faults) req += ",\"state_faults\":true";
    if (!minimize) req += ",\"minimize\":false";
    if (stop_on_violation) req += ",\"stop_on_violation\":true";
    req += '}';
    const obs::JsonValue v = roundtrip(req);
    require_ok(v);
    if (id_only) std::printf("%s\n", v.str("job").c_str());
    else std::printf("submitted %s (queued)\n", v.str("job").c_str());
    return 0;
  }
  if (cmd == "status") {
    const obs::JsonValue v = roundtrip(status_request(job));
    require_ok(v);
    print_job(v);
    return 0;
  }
  if (cmd == "wait") {
    for (;;) {
      const obs::JsonValue v = roundtrip(status_request(job));
      require_ok(v);
      const std::string state = v.str("state");
      if (terminal_state(state)) {
        print_job(v);
        return state_exit_code(state);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  }
  if (cmd == "watch") {
    const obs::JsonValue first =
        roundtrip("{\"v\":1,\"type\":\"watch\",\"job\":\"" + job + "\"}");
    require_ok(first);
    print_job(first);
    if (terminal_state(first.str("state"))) {
      return state_exit_code(first.str("state"));
    }
    std::string line;
    while (read_line(line)) {
      obs::JsonValue v;
      try {
        v = obs::JsonValue::parse(line);
      } catch (const std::exception&) {
        continue;
      }
      if (v.str("type") == "metrics_delta") {
        // Periodic registry deltas interleave with progress frames; print
        // the JSONL frame verbatim so the stream is machine-tailable.
        std::printf("%s\n", line.c_str());
        std::fflush(stdout);
        continue;
      }
      std::printf("%s %lld/%lld trials, %lld failing [%s]\n",
                  v.str("job").c_str(),
                  static_cast<long long>(v.num("completed")),
                  static_cast<long long>(v.num("total")),
                  static_cast<long long>(v.num("failures")),
                  v.str("state").c_str());
      std::fflush(stdout);
      if (terminal_state(v.str("state"))) {
        return state_exit_code(v.str("state"));
      }
    }
    std::fprintf(stderr, "daemon connection lost\n");
    return 2;
  }
  if (cmd == "summary" || cmd == "artifact") {
    const obs::JsonValue v = roundtrip("{\"v\":1,\"type\":\"" + cmd +
                                       "\",\"job\":\"" + job + "\"}");
    require_ok(v);
    std::printf("%s\n", v.str(cmd).c_str());
    return 0;
  }
  if (cmd == "list") {
    std::string req = "{\"v\":1,\"type\":\"list\"";
    if (!tenant.empty()) req += ",\"tenant\":\"" + tenant + "\"";
    req += '}';
    const obs::JsonValue v = roundtrip(req);
    require_ok(v);
    if (!v.has("jobs")) return 0;
    for (const obs::JsonValue& j : v.at("jobs").as_array()) print_job(j);
    return 0;
  }
  if (cmd == "stats") {
    const obs::JsonValue v = roundtrip("{\"v\":1,\"type\":\"stats\"}");
    // Render as a fixed-alignment dot-leader table (name-sorted), so a
    // watch -n loop over `stats` doesn't jitter as counters grow.
    std::vector<obs::Row> rows;
    for (const char* key :
         {"queued", "running", "done", "failed", "checkpointed"}) {
      rows.emplace_back(std::string("jobs.") + key,
                        std::to_string(static_cast<long long>(v.num(key))));
    }
    rows.emplace_back("draining", v.boolean("draining") ? "true" : "false");
    if (v.has("counters")) {
      for (const auto& [key, val] : v.at("counters").as_object()) {
        rows.emplace_back(
            key, std::to_string(static_cast<long long>(val.as_number())));
      }
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const obs::Row& a, const obs::Row& b) {
                       return a.first < b.first;
                     });
    std::printf("%s", obs::format_table("vwired stats", rows).c_str());
    return 0;
  }
  if (cmd == "metrics") {
    const obs::JsonValue v = roundtrip("{\"v\":1,\"type\":\"metrics\"}");
    require_ok(v);
    std::printf("%s", v.str("exposition").c_str());
    return 0;
  }
  if (cmd == "drain") {
    require_ok(roundtrip("{\"v\":1,\"type\":\"drain\"}"));
    std::printf("draining\n");
    return 0;
  }
  return usage();
}
