// tcp_congestion — reproduction of the paper's §6.1 / Fig 5 experiment:
// testing the slow-start → congestion-avoidance transition of a TCP
// implementation, with zero instrumentation of the TCP code.
//
// Testbed: two nodes, a TCP connection from node1:24576 (0x6000) to
// node2:16384 (0x4000), exactly the paper's port choices, so the Fig 2
// byte-offset filters apply verbatim.
//
// Fault injection: the first SYNACK is dropped on node1's receive path
// (script rule `(SYNACK > 0) && (SYNACK < 2) >> DROP ...`).  The SYN
// retransmission this provokes collapses the sender's congestion state to
// ssthresh = 2, cwnd = 1, so the slow-start→CA crossover happens after just
// two acks and the whole transition is observable in a short run.
//
// Analysis: the script mirrors the sender's window arithmetic purely from
// wire events — CWND/SSTHRESH/CanTx are script-side counters — and flags an
// error if the implementation ever sends more than its modelled allowance
// (`CanTx < 0`).  One deviation from the paper's listing, documented here:
// the paper's Fig 5 credits +1 sendable packet per slow-start ack, but a
// correct slow-start ack both slides (+1) and grows (+1) the window; we
// credit +2, and start CanTx at the initial cwnd of 1.  With the paper's
// literal +1 a *correct* TCP gets flagged, so the +2 is what their actual
// runs must have used.
#include <cstdio>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/tcp/apps.hpp"

using namespace vwire;

namespace {

// Fig 2's filter table (the four fixed-pattern entries; the VAR-based
// retransmission filters are exercised in tests/fsl and tests/engine).
// Order matters: TCP_synack must precede TCP_ack, since a SYNACK's flags
// (0x12) also satisfy the 0x10/0x10 ACK test and the first match wins.
const char* kFilters =
    "FILTER_TABLE\n"
    "  TCP_syn:    (34 2 0x6000), (36 2 0x4000), (47 1 0x02 0x02)\n"
    "  TCP_synack: (34 2 0x4000), (36 2 0x6000), (47 1 0x12 0x12)\n"
    "  TCP_data:   (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)\n"
    "  TCP_ack:    (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)\n"
    "END\n";

const char* kScenario =
    "SCENARIO TCP_SS_CA_algo\n"
    "  SYNACK:   (TCP_synack, node2, node1, RECV)\n"
    "  SA_ACK:   (TCP_data, node1, node2, SEND)\n"
    "  DATA:     (TCP_data, node1, node2, SEND)\n"
    "  ACK:      (TCP_ack, node2, node1, RECV)\n"
    "  TOT_ACK:  (TCP_ack, node2, node1, RECV)\n"
    "  CWND:     (node1)\n"
    "  CanTx:    (node1)\n"
    "  CCNT:     (node1)\n"
    "  SSTHRESH: (node1)\n"
    "  (TRUE) >> ENABLE_CNTR( SYNACK );\n"
    "            ENABLE_CNTR( SA_ACK );\n"
    "            ENABLE_CNTR( ACK );\n"
    "            ENABLE_CNTR( TOT_ACK );\n"
    "            ASSIGN_CNTR( CWND, 1 );\n"
    "            ASSIGN_CNTR( CanTx, 1 );\n"
    "            ENABLE_CNTR( CCNT );\n"
    "            ASSIGN_CNTR( SSTHRESH, 2 );\n"
    "  /* Fault injection: drop the first SYNACK at the receiver node */\n"
    "  ((SYNACK > 0) && (SYNACK < 2)) >>\n"
    "            DROP TCP_synack, node2, node1, RECV;\n"
    "  /*** ANALYSIS SCRIPT ***/\n"
    "  /* The ACK completing the handshake matches TCP_data */\n"
    "  ((SA_ACK = 1)) >> ENABLE_CNTR( DATA );\n"
    "            DISABLE_CNTR( SA_ACK );\n"
    "  ((DATA = 1)) >> RESET_CNTR( DATA );\n"
    "            DECR_CNTR( CanTx, 1 );\n"
    "  /* slow-start: an ack slides AND grows the window */\n"
    "  ((CWND <= SSTHRESH) && (ACK = 1)) >>\n"
    "            RESET_CNTR( ACK );\n"
    "            INCR_CNTR( CWND, 1 );\n"
    "            INCR_CNTR( CanTx, 2 );\n"
    "  /* congestion avoidance */\n"
    "  ((CWND > SSTHRESH) && (ACK = 1)) >>\n"
    "            RESET_CNTR( ACK );\n"
    "            INCR_CNTR( CanTx, 1 );\n"
    "            INCR_CNTR( CCNT, 1 );\n"
    "  ((CWND > SSTHRESH) && (CCNT > CWND)) >>\n"
    "            RESET_CNTR( CCNT );\n"
    "            INCR_CNTR( CWND, 1 );\n"
    "            INCR_CNTR( CanTx, 1 );\n"
    "  /* Number of data packets that can be sent out is never negative */\n"
    "  ((CanTx < 0)) >> FLAG_ERROR;\n"
    "  /* End the run after a healthy stretch of congestion avoidance */\n"
    "  ((TOT_ACK = 150)) >> STOP;\n"
    "END\n";

}  // namespace

int main() {
  Testbed tb;
  tb.add_node("node1");
  tb.add_node("node2");

  tcp::TcpLayer tcp1(tb.node("node1"));
  tcp::TcpLayer tcp2(tb.node("node2"));
  tcp::BulkSink sink(tcp2, /*port=*/16384);

  tcp::BulkSender::Params sp;
  sp.dst_ip = tb.node("node2").ip();
  sp.dst_port = 16384;
  sp.src_port = 24576;
  sp.total_bytes = 0;  // pump until the script STOPs the scenario
  tcp::BulkSender sender(tcp1, sp);

  ScenarioRunner runner(tb);
  ScenarioSpec spec;
  spec.script = std::string(kFilters) + tb.node_table_fsl() + kScenario;
  spec.workload = [&] { sender.start(); };
  spec.options.deadline = seconds(20);
  auto result = runner.run(spec);

  std::printf("%s\n", result.summary().c_str());
  std::printf("script-side model:  CWND=%lld SSTHRESH=%lld CanTx=%lld\n",
              static_cast<long long>(result.counters["CWND"]),
              static_cast<long long>(result.counters["SSTHRESH"]),
              static_cast<long long>(result.counters["CanTx"]));
  auto conn = sender.connection();
  std::printf("implementation:     cwnd=%u ssthresh=%u (%s), "
              "syn_retransmits=%llu\n",
              conn->congestion().cwnd(), conn->congestion().ssthresh(),
              conn->congestion().in_slow_start() ? "slow start"
                                                 : "congestion avoidance",
              static_cast<unsigned long long>(conn->stats().syn_retransmits));
  std::printf("sink received %llu bytes\n",
              static_cast<unsigned long long>(sink.bytes_received()));

  // The paper's verdict for Linux 2.4.17: the implementation switches to
  // congestion avoidance after crossing ssthresh — scenario PASSes, and the
  // script's model agrees with the implementation's window.
  bool ok = result.passed() && result.stopped &&
            conn->stats().syn_retransmits == 1 &&
            conn->congestion().ssthresh() == 2 &&
            !conn->congestion().in_slow_start() &&
            result.counters["CWND"] ==
                static_cast<i64>(conn->congestion().cwnd());
  std::printf("tcp_congestion: %s\n", ok ? "OK" : "UNEXPECTED RESULT");
  return ok ? 0 : 1;
}
