// telemetry_report — the unified-telemetry walkthrough (DESIGN.md §7).
//
// Runs the paper's §6.1 TCP congestion scenario (first SYNACK dropped, the
// script mirrors the sender's window arithmetic) with full telemetry on,
// exports the machine-readable ScenarioReport, then demonstrates the three
// consumption paths:
//
//   1. `explain(rule_id)` — rule-firing provenance: why did the DROP rule
//      fire, with which counter values?
//   2. the JSONL event stream — round-tripped through the offline loader
//      (parse_report_jsonl) and pretty-printed, the artifact two runs of a
//      scenario can be diffed by (EXPERIMENTS.md).
//   3. the metrics registry — per-layer tables formatted with the same
//      obs::format_table helper ScenarioResult::summary() uses.
#include <cstdio>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/obs/format.hpp"
#include "vwire/tcp/apps.hpp"

using namespace vwire;

namespace {

const char* kFilters =
    "FILTER_TABLE\n"
    "  TCP_syn:    (34 2 0x6000), (36 2 0x4000), (47 1 0x02 0x02)\n"
    "  TCP_synack: (34 2 0x4000), (36 2 0x6000), (47 1 0x12 0x12)\n"
    "  TCP_data:   (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)\n"
    "  TCP_ack:    (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)\n"
    "END\n";

// Condensed §6.1 script: init (rule 0), the SYNACK drop (rule 1), and a
// stop after a healthy run of acks (rule 2).
const char* kScenario =
    "SCENARIO TCP_synack_drop\n"
    "  SYNACK:   (TCP_synack, node2, node1, RECV)\n"
    "  TOT_ACK:  (TCP_ack, node2, node1, RECV)\n"
    "  (TRUE) >> ENABLE_CNTR( SYNACK );\n"
    "            ENABLE_CNTR( TOT_ACK );\n"
    "  ((SYNACK > 0) && (SYNACK < 2)) >>\n"
    "            DROP TCP_synack, node2, node1, RECV;\n"
    "  ((TOT_ACK = 100)) >> STOP;\n"
    "END\n";

void print_firing(const obs::FiringRecord& r,
                  const std::vector<std::string>& counter_names) {
  std::printf("  t=%.6fs node=%s rule=%u action=%u kind=%s depth=%u",
              r.at.seconds(), r.node_name.c_str(), r.rule, r.action,
              r.kind_name, r.cascade_depth);
  if (r.packet_uid != 0) {
    std::printf(" pkt=%llu", static_cast<unsigned long long>(r.packet_uid));
  }
  for (u8 i = 0; i < r.n_counters; ++i) {
    const auto& c = r.counters[i];
    const char* name = c.id < counter_names.size()
                           ? counter_names[c.id].c_str()
                           : "?";
    std::printf(" %s=%lld", name, static_cast<long long>(c.value));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Testbed tb;  // TestbedConfig::telemetry defaults to true
  tb.add_node("node1");
  tb.add_node("node2");

  tcp::TcpLayer tcp1(tb.node("node1"));
  tcp::TcpLayer tcp2(tb.node("node2"));
  tcp::BulkSink sink(tcp2, /*port=*/16384);

  tcp::BulkSender::Params sp;
  sp.dst_ip = tb.node("node2").ip();
  sp.dst_port = 16384;
  sp.src_port = 24576;
  sp.total_bytes = 0;  // pump until the script STOPs the scenario
  tcp::BulkSender sender(tcp1, sp);

  ScenarioRunner runner(tb);
  ScenarioSpec spec;
  spec.script = std::string(kFilters) + tb.node_table_fsl() + kScenario;
  spec.workload = [&] { sender.start(); };
  spec.options.deadline = seconds(20);
  spec.telemetry.jsonl_path = "telemetry_report.jsonl";
  spec.telemetry.csv_path = "telemetry_report.csv";
  auto result = runner.run(spec);
  std::printf("%s\n", result.summary().c_str());

  // 1. Provenance: the DROP rule is the scenario's second condition (the
  // (TRUE) init rule is condition 0).
  constexpr u16 kDropRule = 1;
  auto drops = result.explain(kDropRule);
  std::printf("\nexplain(rule %u) — %zu firing(s):\n", kDropRule,
              drops.size());
  for (const auto& r : drops) print_firing(r, result.counter_names);

  // 2. The exported JSONL, round-tripped through the offline loader.
  obs::ScenarioReport loaded;
  try {
    loaded = obs::load_report("telemetry_report.jsonl");
  } catch (const std::exception& e) {
    std::printf("report load failed: %s\n", e.what());
    return 1;
  }
  std::printf("\ntelemetry_report.jsonl: scenario '%s' seed=%llu passed=%s — "
              "%zu metrics, %zu firings, %zu link events, %zu annotations\n",
              loaded.meta.scenario.c_str(),
              static_cast<unsigned long long>(loaded.meta.seed),
              loaded.meta.passed ? "yes" : "no", loaded.metrics.size(),
              loaded.firings.size(), loaded.link_events.size(),
              loaded.annotations.size());

  // 3. A registry excerpt, formatted with the shared helper.
  std::vector<obs::Row> rows;
  for (const auto& s : loaded.metrics) {
    if (s.kind == obs::MetricKind::kHistogram) {
      if (s.hist.count == 0) continue;
      rows.emplace_back(s.name + " p50/p99",
                        std::to_string(s.hist.p50) + " / " +
                            std::to_string(s.hist.p99));
    } else if (s.value != 0 && s.name.find("engine.") == 0) {
      rows.emplace_back(s.name, std::to_string(static_cast<u64>(s.value)));
    }
  }
  std::printf("\n%s", obs::format_table("engine metrics + histograms", rows)
                          .c_str());

  bool ok = result.passed() && result.stopped && drops.size() == 1 &&
            loaded.firings.size() == result.firings.size() &&
            loaded.meta.passed == result.passed();
  std::printf("\ntelemetry_report: %s\n", ok ? "OK" : "UNEXPECTED RESULT");
  return ok ? 0 : 1;
}
