// vwire-lint: static analysis for FSL scripts and serialized table sets.
//
// Usage:
//   vwire-lint [--json] [--werror] [--scenario NAME] [--verify] script.fsl
//   vwire-lint -                 # read the script from stdin
//   vwire-lint --tables file.bin # structural checks on a serialized
//                                # TableSet (duplicate names, shared MACs)
//
// --verify additionally model-checks the compiled scenario (fsl::mc,
// DESIGN.md §13) and merges its fsl-verify-* findings into the report;
// with --json a second line carries the full "fsl_verify" document
// (verdicts, fire bounds, witness traces).  --verify-replay goes one step
// further: every witness trace is replayed twice through a real Testbed
// and the predicted firing must occur byte-identically, else exit 1.
//
// Exit codes: 0 = clean (or warnings without --werror), 1 = lint/verify
// errors (or warnings with --werror, or a witness replay mismatch),
// 2 = usage / I-O failure.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "vwire/core/analysis/verify_replay.hpp"
#include "vwire/core/fsl/compiler.hpp"
#include "vwire/core/fsl/lint.hpp"
#include "vwire/core/fsl/verify.hpp"
#include "vwire/core/tables/tables.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vwire-lint [--json] [--werror] [--scenario NAME] "
               "[--verify | --verify-replay] <script.fsl | ->\n"
               "       vwire-lint [--json] [--werror] [--verify] "
               "--tables <tables.bin>\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out, bool binary) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    out = ss.str();
    return true;
  }
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  bool tables_mode = false;
  bool verify = false;
  bool verify_replay = false;
  std::string scenario;
  std::string input;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--tables") {
      tables_mode = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--verify-replay") {
      verify = true;
      verify_replay = true;
    } else if (arg == "--scenario") {
      if (++i >= argc) return usage();
      scenario = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();
  if (verify_replay && tables_mode) return usage();  // replay needs the script

  std::string blob;
  if (!read_file(input, blob, tables_mode)) {
    std::fprintf(stderr, "vwire-lint: cannot read '%s'\n", input.c_str());
    return 2;
  }

  std::vector<vwire::fsl::Diagnostic> diags;
  vwire::core::TableSet tables;
  bool have_tables = false;
  std::string source;  // empty in tables mode: no carets to render
  if (tables_mode) {
    try {
      tables = vwire::core::deserialize_tables(
          vwire::BytesView{reinterpret_cast<const vwire::u8*>(blob.data()),
                           blob.size()});
      diags = vwire::fsl::lint_tables(tables);
      have_tables = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "vwire-lint: malformed table set: %s\n", e.what());
      return 2;
    }
  } else {
    source = blob;
    vwire::fsl::CompileOptions opts;
    opts.scenario = scenario;
    opts.lint = true;
    vwire::fsl::CompileResult result = vwire::fsl::check_script(source, opts);
    diags = std::move(result.diagnostics);
    if (result.ok()) {
      tables = std::move(result.tables);
      have_tables = true;
    }
  }

  // Model-check the compiled scenario and fold its findings into the
  // report.  Skipped when compilation already failed — there are no
  // trustworthy tables to explore.
  std::string verify_json;
  bool replay_failed = false;
  if (verify && have_tables) {
    const vwire::fsl::mc::VerifyResult vr = vwire::fsl::mc::verify_tables(tables);
    diags.insert(diags.end(), vr.diagnostics.begin(), vr.diagnostics.end());
    vwire::fsl::sort_diagnostics(diags);
    if (json) verify_json = vr.to_json(tables);
    if (verify_replay) {
      auto replay = [&](const char* what, std::size_t id,
                        const vwire::fsl::mc::Witness& w) {
        const vwire::core::ReplayOutcome out =
            vwire::core::replay_witness(source, scenario, w);
        if (!json) {
          if (out.error.empty()) {
            std::fprintf(stdout,
                         "replay %s %zu: fired=%s x%u deterministic=%s\n",
                         what, id, out.fired ? "yes" : "no",
                         out.observed_firings,
                         out.deterministic ? "yes" : "no");
          } else {
            std::fprintf(stdout, "replay %s %zu: error: %s\n", what, id,
                         out.error.c_str());
          }
        }
        if (!out.ok()) replay_failed = true;
      };
      for (const vwire::fsl::mc::RuleVerdict& rv : vr.rules) {
        if (rv.witness) replay("rule", rv.rule, *rv.witness);
      }
      if (vr.stop_witness) {
        replay("stop-rule", vr.stop_witness->rule, *vr.stop_witness);
      }
    }
  }

  const std::string filename = input == "-" ? "<stdin>" : input;
  if (json) {
    std::fputs(vwire::fsl::diagnostics_to_json(diags).c_str(), stdout);
    std::fputc('\n', stdout);
    if (!verify_json.empty()) {
      std::fputs(verify_json.c_str(), stdout);
      std::fputc('\n', stdout);
    }
  } else {
    std::fputs(
        vwire::fsl::render_diagnostics(source, diags, filename).c_str(),
        stdout);
    std::size_t errors = vwire::fsl::count_errors(diags);
    std::fprintf(stdout, "%zu error(s), %zu warning(s)\n", errors,
                 diags.size() - errors);
  }

  if (replay_failed) return 1;
  if (vwire::fsl::has_errors(diags)) return 1;
  if (werror && !diags.empty()) return 1;
  return 0;
}
