// vwire-lint: static analysis for FSL scripts and serialized table sets.
//
// Usage:
//   vwire-lint [--json] [--werror] [--scenario NAME] script.fsl
//   vwire-lint -                 # read the script from stdin
//   vwire-lint --tables file.bin # structural checks on a serialized
//                                # TableSet (duplicate names, shared MACs)
//
// Exit codes: 0 = clean (or warnings without --werror), 1 = lint errors
// (or warnings with --werror), 2 = usage / I-O failure.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "vwire/core/fsl/compiler.hpp"
#include "vwire/core/fsl/lint.hpp"
#include "vwire/core/tables/tables.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vwire-lint [--json] [--werror] [--scenario NAME] "
               "<script.fsl | ->\n"
               "       vwire-lint [--json] [--werror] --tables <tables.bin>\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out, bool binary) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    out = ss.str();
    return true;
  }
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  bool tables_mode = false;
  std::string scenario;
  std::string input;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--tables") {
      tables_mode = true;
    } else if (arg == "--scenario") {
      if (++i >= argc) return usage();
      scenario = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();

  std::string blob;
  if (!read_file(input, blob, tables_mode)) {
    std::fprintf(stderr, "vwire-lint: cannot read '%s'\n", input.c_str());
    return 2;
  }

  std::vector<vwire::fsl::Diagnostic> diags;
  std::string source;  // empty in tables mode: no carets to render
  if (tables_mode) {
    try {
      vwire::core::TableSet t = vwire::core::deserialize_tables(
          vwire::BytesView{reinterpret_cast<const vwire::u8*>(blob.data()),
                           blob.size()});
      diags = vwire::fsl::lint_tables(t);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "vwire-lint: malformed table set: %s\n", e.what());
      return 2;
    }
  } else {
    source = blob;
    vwire::fsl::CompileOptions opts;
    opts.scenario = scenario;
    opts.lint = true;
    diags = vwire::fsl::check_script(source, opts).diagnostics;
  }

  const std::string filename = input == "-" ? "<stdin>" : input;
  if (json) {
    std::fputs(vwire::fsl::diagnostics_to_json(diags).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(
        vwire::fsl::render_diagnostics(source, diags, filename).c_str(),
        stdout);
    std::size_t errors = vwire::fsl::count_errors(diags);
    std::fprintf(stdout, "%zu error(s), %zu warning(s)\n", errors,
                 diags.size() - errors);
  }

  if (vwire::fsl::has_errors(diags)) return 1;
  if (werror && !diags.empty()) return 1;
  return 0;
}
