// vwire-trace — render a chaos repro's causal flight-recorder timeline
// (DESIGN.md §12).
//
// Modes:
//   vwire-trace repro.json
//       Summarize the timeline: per-span event counts, parent links, and
//       which spans a fault rule touched.  Accepts a repro artifact
//       (type "chaos_repro") or a campaign summary (type "chaos_campaign",
//       using its embedded repro).
//   vwire-trace repro.json --span 1234
//       ASCII timeline of one span and its child spans (retransmissions,
//       DUP twins): one line per event, relative timestamps, rule ids.
//   vwire-trace repro.json --chrome trace.json
//       Export the whole timeline as Chrome trace_event JSON — open in
//       chrome://tracing or Perfetto; each node becomes a thread lane.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "vwire/chaos/campaign.hpp"
#include "vwire/core/tables/tables.hpp"
#include "vwire/obs/flight.hpp"
#include "vwire/obs/json.hpp"

using namespace vwire;

namespace {

/// Loads the timeline out of either document type vwire_chaos writes.
chaos::ReproArtifact load_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const obs::JsonValue v = obs::JsonValue::parse(text);
  if (v.str("type") == "chaos_campaign") {
    if (!v.has("repro")) {
      throw std::runtime_error(
          "campaign summary has no repro (no trial failed, or --no-minimize)");
    }
    return chaos::ReproArtifact::from_value(v.at("repro"));
  }
  return chaos::ReproArtifact::from_value(v);
}

const char* detail_name(const obs::SpanEvent& e) {
  switch (e.kind) {
    case obs::SpanEventKind::kLinkDrop:
      return obs::to_string(static_cast<obs::DropCause>(e.detail));
    case obs::SpanEventKind::kFault:
    case obs::SpanEventKind::kFaultSkipped:
      return core::to_string(static_cast<core::ActionKind>(e.detail));
    case obs::SpanEventKind::kRllRetx:
      return e.detail != 0 ? "fast" : "rto";
    default:
      return "";
  }
}

void print_event(const obs::SpanEvent& e, i64 t0_ns) {
  char line[256];
  const double rel_ms = static_cast<double>(e.at_ns - t0_ns) / 1e6;
  int n = std::snprintf(line, sizeof line, "  t+%10.4fms  %-8s %-13s",
                        rel_ms, e.node.c_str(), obs::to_string(e.kind));
  const char* d = detail_name(e);
  if (d[0] != '\0') {
    n += std::snprintf(line + n, sizeof line - static_cast<size_t>(n), " %s",
                       d);
  }
  if (e.rule != 0xffff) {
    n += std::snprintf(line + n, sizeof line - static_cast<size_t>(n),
                       " rule=%u", e.rule);
  }
  if (e.value != 0) {
    n += std::snprintf(line + n, sizeof line - static_cast<size_t>(n),
                       " value=%" PRId64, e.value);
  }
  if (e.parent != 0) {
    std::snprintf(line + n, sizeof line - static_cast<size_t>(n),
                  " (child of span %" PRIu64 ")", e.parent);
  }
  std::printf("%s\n", line);
}

int render_span(const chaos::ReproArtifact& art, u64 span) {
  // The span's own events plus every child span's (parent == span) —
  // retransmissions and DUP twins are the causal continuation.
  std::vector<obs::SpanEvent> events;
  for (const obs::SpanEvent& e : art.timeline) {
    if (e.span == span || e.parent == span) events.push_back(e);
  }
  if (events.empty()) {
    std::fprintf(stderr, "span %" PRIu64 " has no recorded events\n", span);
    return 1;
  }
  const i64 t0 = events.front().at_ns;
  std::size_t children = 0;
  {
    std::vector<u64> seen;
    for (const obs::SpanEvent& e : events) {
      if (e.parent == span && e.span != span &&
          std::find(seen.begin(), seen.end(), e.span) == seen.end()) {
        seen.push_back(e.span);
      }
    }
    children = seen.size();
  }
  std::printf("span %" PRIu64 ": %zu events, %zu child span(s), origin %s\n",
              span, events.size(), children, events.front().node.c_str());
  u64 current = span;
  for (const obs::SpanEvent& e : events) {
    if (e.span != current) {
      current = e.span;
      if (e.span != span) {
        std::printf("  -- child span %" PRIu64 " --\n", e.span);
      }
    }
    print_event(e, t0);
  }
  return 0;
}

int render_summary(const chaos::ReproArtifact& art) {
  std::printf("repro: fixture=%s seed=%" PRIu64 " trial=%" PRIu64
              ", %zu schedule events\n",
              art.fixture.c_str(), art.schedule.campaign_seed,
              art.schedule.trial_index, art.schedule.events.size());
  for (const chaos::Violation& v : art.violations) {
    std::printf("violation %s: %s\n", v.invariant.c_str(), v.detail.c_str());
  }
  std::printf("timeline: %zu events (%" PRIu64 " evicted before snapshot)\n",
              art.timeline.size(), art.timeline_dropped);
  if (art.timeline.empty()) return 0;

  struct SpanInfo {
    std::size_t events{0};
    u64 parent{0};
    std::string origin_node;
    i64 first_ns{0};
    bool faulted{false};
  };
  std::map<u64, SpanInfo> spans;  // ordered: stable listing
  for (const obs::SpanEvent& e : art.timeline) {
    auto [it, fresh] = spans.try_emplace(e.span);
    SpanInfo& s = it->second;
    if (fresh) {
      s.origin_node = e.node;
      s.first_ns = e.at_ns;
      s.parent = e.parent;
    }
    ++s.events;
    if (e.kind == obs::SpanEventKind::kFault ||
        e.kind == obs::SpanEventKind::kLinkDrop) {
      s.faulted = true;
    }
  }
  std::printf("%zu span(s); those hit by a fault or link drop:\n",
              spans.size());
  std::size_t listed = 0;
  for (const auto& [id, s] : spans) {
    if (!s.faulted) continue;
    std::printf("  span %-8" PRIu64 " %-8s %3zu events%s%s\n", id,
                s.origin_node.c_str(), s.events,
                s.parent != 0 ? "  parent=" : "",
                s.parent != 0 ? std::to_string(s.parent).c_str() : "");
    ++listed;
  }
  if (listed == 0) std::printf("  (none)\n");
  std::printf("render one with: vwire-trace <file> --span <id>\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string chrome_path;
  u64 span = 0;
  bool have_span = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(a, "--span")) {
      span = std::strtoull(next(), nullptr, 10);
      have_span = true;
    } else if (!std::strcmp(a, "--chrome")) {
      chrome_path = next();
    } else if (a[0] == '-') {
      std::fprintf(stderr,
                   "usage: vwire-trace repro.json [--span ID] "
                   "[--chrome out.json]\n");
      return 2;
    } else if (path.empty()) {
      path = a;
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", a);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: vwire-trace repro.json [--span ID] "
                 "[--chrome out.json]\n");
    return 2;
  }

  chaos::ReproArtifact art;
  try {
    art = load_artifact(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vwire-trace: %s\n", e.what());
    return 2;
  }

  if (!chrome_path.empty()) {
    std::ofstream out(chrome_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", chrome_path.c_str());
      return 2;
    }
    out << obs::chrome_trace_json(art.timeline) << '\n';
    std::printf("chrome trace (%zu events) written to %s\n",
                art.timeline.size(), chrome_path.c_str());
    if (!have_span) return 0;
  }
  if (have_span) return render_span(art, span);
  return render_summary(art);
}
