// regression_suite — a battery of reusable fault-injection scenarios over a
// UDP echo service, one per fault primitive (Table II).  This is the
// paper's regression-testing story: the same scripts run unchanged against
// any implementation revision, and the suite prints a PASS/FAIL table with
// no human trace inspection.
#include <algorithm>
#include <cstdio>
#include <functional>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/udp/echo.hpp"

using namespace vwire;

namespace {

constexpr const char* kFilters =
    "FILTER_TABLE\n"
    "  udp_req: (12 2 0x0800), (23 1 0x11), (34 2 0x9c40), (36 2 0x0007)\n"
    "  udp_rsp: (12 2 0x0800), (23 1 0x11), (34 2 0x0007), (36 2 0x9c40)\n"
    "END\n";

struct Case {
  const char* name;
  const char* scenario;  ///< SCENARIO block
  u32 probes{8};
  Duration interval{millis(20)};
  /// Verdict beyond the script's own FLAG_ERRORs.
  std::function<bool(const control::ScenarioResult&, Testbed&,
                     udp::EchoClient&, udp::EchoServer&)>
      check;
};

bool run_case(const Case& c) {
  Testbed tb;
  tb.add_node("client");
  tb.add_node("server");
  udp::UdpLayer cu(tb.node("client"));
  udp::UdpLayer su(tb.node("server"));
  udp::EchoServer server(su, 7);
  udp::EchoClient::Params cp;
  cp.server_ip = tb.node("server").ip();
  cp.server_port = 7;
  cp.local_port = 40000;
  cp.count = c.probes;
  cp.interval = c.interval;
  udp::EchoClient client(cu, cp);

  ScenarioRunner runner(tb);
  ScenarioSpec spec;
  spec.script = std::string(kFilters) + tb.node_table_fsl() + c.scenario;
  spec.workload = [&] { client.start(); };
  spec.options.deadline = seconds(5);
  auto result = runner.run(spec);
  return c.check(result, tb, client, server);
}

}  // namespace

int main() {
  const Case cases[] = {
      {"baseline-invariant",
       // No fault; the response/request invariant must hold throughout.
       "SCENARIO baseline\n"
       "  REQ: (udp_req, client, server, RECV)\n"
       "  RSP: (udp_rsp, server, client, RECV)\n"
       "  (TRUE) >> ENABLE_CNTR(REQ); ENABLE_CNTR(RSP);\n"
       "  ((RSP > REQ)) >> FLAG_ERROR;\n"
       "END\n",
       8, millis(20),
       [](const auto& r, Testbed&, udp::EchoClient& cl, udp::EchoServer&) {
         return r.passed() && cl.received() == 8;
       }},

      {"drop-third-request",
       "SCENARIO drop3\n"
       "  REQ: (udp_req, client, server, RECV)\n"
       "  (TRUE) >> ENABLE_CNTR(REQ);\n"
       "  ((REQ = 3)) >> DROP udp_req, client, server, RECV;\n"
       "END\n",
       8, millis(20),
       [](const auto& r, Testbed& tb, udp::EchoClient& cl, udp::EchoServer&) {
         return r.passed() && cl.received() == 7 &&
                tb.handles("server").engine->stats().drops == 1;
       }},

      {"delay-second-request-50ms",
       "SCENARIO delay2\n"
       "  REQ: (udp_req, client, server, RECV)\n"
       "  (TRUE) >> ENABLE_CNTR(REQ);\n"
       "  ((REQ = 2)) >> DELAY(udp_req, client, server, RECV, 50ms);\n"
       "END\n",
       8, millis(20),
       [](const auto& r, Testbed&, udp::EchoClient& cl, udp::EchoServer&) {
         if (!r.passed() || cl.received() != 8) return false;
         auto max_rtt = *std::max_element(cl.rtts().begin(), cl.rtts().end(),
                                          [](Duration a, Duration b) {
                                            return a.ns < b.ns;
                                          });
         // One probe paid the 50 ms injection (jiffy-quantized).
         return max_rtt >= millis(50) && max_rtt < millis(80);
       }},

      {"duplicate-second-request",
       "SCENARIO dup2\n"
       "  REQ: (udp_req, client, server, RECV)\n"
       "  (TRUE) >> ENABLE_CNTR(REQ);\n"
       "  ((REQ = 2)) >> DUP(udp_req, client, server, RECV);\n"
       "END\n",
       8, millis(20),
       [](const auto& r, Testbed&, udp::EchoClient& cl, udp::EchoServer& sv) {
         // The duplicated request is echoed too: 9 echoes for 8 probes; the
         // client's duplicate-reply guard keeps received() at 8.
         return r.passed() && sv.echoed() == 9 && cl.received() == 8;
       }},

      {"reorder-three-requests",
       "SCENARIO reorder3\n"
       "  REQ: (udp_req, client, server, RECV)\n"
       "  (TRUE) >> ENABLE_CNTR(REQ);\n"
       "  ((REQ > 1)) >> REORDER(udp_req, client, server, RECV, 3, 3, 1, 2);\n"
       "END\n",
       8, millis(20),
       [](const auto& r, Testbed&, udp::EchoClient& cl, udp::EchoServer& sv) {
         return r.passed() && sv.echoed() == 8 && cl.received() == 8 &&
                cl.rtts().size() == 8;
       }},

      {"modify-corrupts-checksum",
       // Random payload perturbation without checksum fix-up: the server's
       // UDP layer must discard the datagram (paper §5.2: "The checksum in
       // such a case must be set correctly by the user").
       "SCENARIO modify4\n"
       "  REQ: (udp_req, client, server, RECV)\n"
       "  (TRUE) >> ENABLE_CNTR(REQ);\n"
       "  ((REQ = 4)) >> MODIFY(udp_req, client, server, RECV);\n"
       "END\n",
       8, millis(20),
       [](const auto& r, Testbed& tb, udp::EchoClient& cl, udp::EchoServer&) {
         (void)tb;
         return r.passed() && cl.received() == 7;
       }},

      {"stop-ends-scenario",
       "SCENARIO stop5\n"
       "  REQ: (udp_req, client, server, RECV)\n"
       "  (TRUE) >> ENABLE_CNTR(REQ);\n"
       "  ((REQ = 5)) >> STOP;\n"
       "END\n",
       8, millis(20),
       [](const auto& r, Testbed&, udp::EchoClient&, udp::EchoServer&) {
         return r.passed() && r.stopped;
       }},

      {"flag-error-fires-on-violation",
       // Deliberately impossible invariant: requests never reach the
       // server... which they do — the script must FAIL.  Verifies the
       // analysis side actually catches violations.
       "SCENARIO must_fail\n"
       "  REQ: (udp_req, client, server, RECV)\n"
       "  (TRUE) >> ENABLE_CNTR(REQ);\n"
       "  ((REQ > 0)) >> FLAG_ERROR;\n"
       "END\n",
       8, millis(20),
       [](const auto& r, Testbed&, udp::EchoClient&, udp::EchoServer&) {
         return !r.passed() && !r.errors.empty();
       }},
  };

  std::printf("%-32s %s\n", "scenario", "verdict");
  int failures = 0;
  for (const Case& c : cases) {
    bool ok = run_case(c);
    failures += ok ? 0 : 1;
    std::printf("%-32s %s\n", c.name, ok ? "PASS" : "FAIL");
  }
  std::printf("%d/%zu scenarios behaved as expected\n",
              static_cast<int>(std::size(cases)) - failures,
              std::size(cases));
  return failures == 0 ? 0 : 1;
}
