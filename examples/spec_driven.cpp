// spec_driven — the paper's §8 long-term goal, implemented: generate the
// fault-injection and analysis scripts directly from a protocol
// specification, "truly making the testing process completely automated".
//
// We describe a strict request/response protocol as a finite state machine,
// generate (a) a conformance-analysis scenario and (b) a drop-fault
// campaign with one scenario per transition, then run all of it against a
// retransmitting client and an echo server.  Nobody wrote a line of FSL.
#include <cstdio>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/core/gen/script_gen.hpp"
#include "vwire/sim/timer.hpp"
#include "vwire/udp/udp_layer.hpp"

using namespace vwire;

namespace {

constexpr const char* kFilters =
    "FILTER_TABLE\n"
    "  req: (12 2 0x0800), (23 1 0x11), (34 2 0x9c40), (36 2 0x0007)\n"
    "  rsp: (12 2 0x0800), (23 1 0x11), (34 2 0x0007), (36 2 0x9c40)\n"
    "END\n";

gen::ProtocolSpec make_spec(int rounds) {
  gen::ProtocolSpec spec;
  spec.name = "pingpong";
  spec.monitor_node = "server";
  spec.states = {"IDLE", "WAIT"};
  spec.initial_state = "IDLE";
  spec.accept_state = "IDLE";
  spec.accept_visits = rounds;
  spec.deadline = seconds(3);
  spec.transitions = {
      {"IDLE", "WAIT", {"req", "client", "server", net::Direction::kRecv}},
      {"WAIT", "IDLE", {"rsp", "server", "client", net::Direction::kSend}},
  };
  return spec;
}

struct Session {
  Testbed tb;
  std::unique_ptr<udp::UdpLayer> cu, su;

  Session() {
    tb.add_node("client");
    tb.add_node("server");
    cu = std::make_unique<udp::UdpLayer>(tb.node("client"));
    su = std::make_unique<udp::UdpLayer>(tb.node("server"));
    su->bind(7, [this](net::Ipv4Address src, u16 sport, BytesView payload) {
      su->send(src, sport, 7, payload);
    });
  }

  /// Ping-pong client with a 100 ms application retransmission timer —
  /// robust against a single drop anywhere.
  std::function<void()> robust_client(int rounds) {
    return [this, rounds] {
      auto send_req = std::make_shared<std::function<void()>>();
      *send_req = [this] {
        cu->send(tb.node("server").ip(), 7, 40000, Bytes(16, 0));
      };
      auto retry = std::make_shared<sim::Timer>(tb.simulator(),
                                                [send_req] { (*send_req)(); });
      auto remaining = std::make_shared<int>(rounds);
      cu->bind(40000, [this, remaining, send_req, retry](net::Ipv4Address,
                                                         u16, BytesView) {
        retry->cancel();
        if (--*remaining > 0) {
          (*send_req)();
          retry->start(millis(100));
        }
      });
      (*send_req)();
      retry->start(millis(100));
    };
  }

  control::ScenarioResult run(const std::string& scenario, int rounds) {
    ScenarioRunner runner(tb);
    ScenarioSpec s;
    s.script = std::string(kFilters) + tb.node_table_fsl() + scenario;
    s.workload = robust_client(rounds);
    s.options.deadline = seconds(10);
    return runner.run(s);
  }
};

}  // namespace

int main() {
  const int kRounds = 3;
  gen::ProtocolSpec spec = make_spec(kRounds);
  std::string problem = gen::validate(spec);
  if (!problem.empty()) {
    std::printf("spec invalid: %s\n", problem.c_str());
    return 1;
  }

  std::string analysis = gen::generate_analysis_scenario(spec);
  std::printf("=== generated conformance scenario ===\n%s\n", analysis.c_str());

  bool all_ok = true;
  {
    Session s;
    auto r = s.run(analysis, kRounds);
    std::printf("conformance run: %s\n", r.summary().c_str());
    all_ok = all_ok && r.passed() && r.stopped;
  }

  auto campaign = gen::generate_drop_campaign(spec);
  std::printf("\n=== generated drop campaign: %zu scenarios ===\n",
              campaign.size());
  for (const auto& g : campaign) {
    Session s;
    auto r = s.run(g.fsl, kRounds);
    std::printf("%-28s %s\n", g.name.c_str(), r.summary().c_str());
    all_ok = all_ok && r.passed() && r.stopped;
  }

  std::printf("\nspec_driven: %s\n",
              all_ok ? "OK — protocol survives every generated fault"
                     : "UNEXPECTED RESULT");
  return all_ok ? 0 : 1;
}
