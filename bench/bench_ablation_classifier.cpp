// Ablation: linear first-match scan (the paper's implementation) vs a
// first-tuple-indexed classifier.
//
// The paper calls out the linear scan as the source of Fig 8's growth and
// leaves indexing as an obvious improvement; this bench quantifies it —
// the indexed variant is O(#distinct first-tuple groups), flat in the
// number of same-shaped filters.
#include <benchmark/benchmark.h>

#include "vwire/core/engine/classifier.hpp"

using namespace vwire;

namespace {

core::FilterTable make_filters(int n) {
  core::FilterTable t;
  for (int i = 0; i < n; ++i) {
    core::FilterEntry e;
    e.name = "f" + std::to_string(i);
    // All entries share the first tuple's shape (offset 34, 2 bytes) but
    // differ in pattern — the indexable case.
    e.tuples.push_back({34, 2, 0xffff, static_cast<u64>(0x7000 + i),
                        core::kInvalidId});
    e.tuples.push_back({36, 2, 0xffff, 0x0007, core::kInvalidId});
    t.entries.push_back(std::move(e));
  }
  return t;
}

Bytes make_frame(u16 src_port) {
  Bytes frame(64, 0);
  write_u16(frame, 12, 0x0800);
  write_u16(frame, 34, src_port);
  write_u16(frame, 36, 0x0007);
  return frame;
}

void BM_Linear(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  core::Classifier cls(make_filters(n));
  core::VarStore vars(0);
  Bytes frame = make_frame(static_cast<u16>(0x7000 + n - 1));  // last entry
  for (auto _ : state) {
    auto r = cls.classify(frame, vars);
    benchmark::DoNotOptimize(r);
  }
}

void BM_Indexed(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  core::IndexedClassifier cls(make_filters(n));
  core::VarStore vars(0);
  Bytes frame = make_frame(static_cast<u16>(0x7000 + n - 1));
  for (auto _ : state) {
    auto r = cls.classify(frame, vars);
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

BENCHMARK(BM_Linear)->Arg(5)->Arg(25)->Arg(100)->Arg(400);
BENCHMARK(BM_Indexed)->Arg(5)->Arg(25)->Arg(100)->Arg(400);
