// Fig 6 / §6.2 reproduction as a reportable run: Rether single-node-failure
// detection and ring reconstruction, with the token-retransmission budget
// swept to show the analysis script catching a miscounting implementation.
//
// Paper's checks, all verified by the script alone:
//   * after FAIL(node3), node2 transmits the token to node3 exactly 3
//     times (`(TokensFrom2 > 3) >> FLAG_ERROR`);
//   * the reconstructed 3-node ring completes a full round-robin within
//     the 1-second inactivity window (`STOP`, else timeout = error).
#include <cstdio>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/rether/rether_layer.hpp"
#include "vwire/tcp/apps.hpp"

using namespace vwire;

namespace {

const char* kFilters =
    "FILTER_TABLE\n"
    "  tr_token:     (12 2 0x9900), (14 2 0x0001)\n"
    "  tr_token_ack: (12 2 0x9900), (14 2 0x0010)\n"
    "  TCP_data:     (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)\n"
    "END\n";

const char* kScenario =
    "SCENARIO Test_Single_Node_Failure 1sec\n"
    "  CNT_DATA:    (TCP_data, node1, node4, RECV)\n"
    "  TokensTo2:   (tr_token, node1, node2, RECV)\n"
    "  TokensFrom2: (tr_token, node2, node3, SEND)\n"
    "  TokensTo4:   (tr_token, node2, node4, RECV)\n"
    "  TokensTo1:   (tr_token, node4, node1, RECV)\n"
    "  (TRUE) >> ENABLE_CNTR( CNT_DATA );\n"
    "  ((CNT_DATA > 1000)) >> ENABLE_CNTR( TokensTo2 );\n"
    "  ((TokensTo2 = 1)) >> FAIL( node3 );\n"
    "                ENABLE_CNTR( TokensFrom2 );\n"
    "                RESET_CNTR( TokensTo2 );\n"
    "  ((TokensFrom2 = 3)) >> ENABLE_CNTR( TokensTo4 );\n"
    "  ((TokensTo4 = 1)) >> ENABLE_CNTR( TokensTo1 );\n"
    "  ((TokensFrom2 > 3)) >> FLAG_ERROR;\n"
    "  ((TokensTo2 = 1) && (TokensTo4 = 1) && (TokensTo1 = 1)) >> STOP;\n"
    "END\n";

struct RunResult {
  bool pass{false};
  bool stopped{false};
  i64 tokens_from2{0};
  std::size_t ring_size{0};
  u64 evicted{0};
  double ended_s{0};
};

/// `budget` = the implementation's total token transmissions before it
/// declares the successor dead.  The script expects 3: a faulty
/// implementation retrying more gets FLAG_ERROR'd; one retrying less never
/// matches `TokensFrom2 = 3`, TokensTo4 is never enabled and the scenario
/// times out — also an error.  This is the analysis script *catching bugs*.
RunResult run_once(u32 budget) {
  TestbedConfig cfg;
  cfg.medium = TestbedConfig::MediumKind::kSharedBus;
  Testbed tb(cfg);
  const char* names[] = {"node1", "node2", "node3", "node4"};
  for (const char* n : names) tb.add_node(n);

  std::vector<net::MacAddress> ring;
  for (const char* n : names) ring.push_back(tb.node(n).mac());

  rether::RetherParams rp;
  rp.token_max_transmissions = budget;
  std::vector<rether::RetherLayer*> layers;
  for (const char* n : names) {
    layers.push_back(static_cast<rether::RetherLayer*>(&tb.node(n).add_layer(
        std::make_unique<rether::RetherLayer>(tb.simulator(), rp, ring))));
  }

  tcp::TcpLayer tcp1(tb.node("node1"));
  tcp::TcpLayer tcp4(tb.node("node4"));
  tcp::BulkSink sink(tcp4, 16384);
  tcp::BulkSender::Params sp;
  sp.dst_ip = tb.node("node4").ip();
  sp.dst_port = 16384;
  sp.src_port = 24576;
  sp.total_bytes = 0;
  tcp::BulkSender sender(tcp1, sp);

  ScenarioRunner runner(tb);
  ScenarioSpec spec;
  spec.script = std::string(kFilters) + tb.node_table_fsl() + kScenario;
  spec.workload = [&] {
    for (std::size_t i = 0; i < layers.size(); ++i) {
      layers[i]->start(i == 0);
    }
    sender.start();
  };
  spec.options.deadline = seconds(60);
  auto result = runner.run(spec);

  RunResult out;
  out.pass = result.passed();
  out.stopped = result.stopped;
  out.tokens_from2 = result.counters["TokensFrom2"];
  out.ring_size = layers[1]->ring().size();
  out.evicted = layers[1]->stats().nodes_evicted;
  out.ended_s = result.ended_at.seconds();
  return out;
}

}  // namespace

int main() {
  std::printf("# Fig 6 / §6.2 — Rether token recovery after FAIL(node3)\n");
  std::printf("# script expects exactly 3 token transmissions to the dead "
              "node, then ring reconstruction within 1 s\n");
  std::printf("%-22s %-8s %-8s %-12s %-10s %-10s %-10s\n",
              "token tx budget", "verdict", "STOP?", "TokensFrom2",
              "ring size", "evicted", "ended (s)");
  bool ok = true;
  for (u32 budget : {2u, 3u, 5u}) {
    RunResult r = run_once(budget);
    const char* verdict = r.pass ? "PASS" : "FAIL";
    // Only the conforming implementation (budget 3) should pass.
    bool expected = budget == 3 ? (r.pass && r.stopped && r.tokens_from2 == 3)
                                : !r.pass;
    ok = ok && expected;
    std::printf("%-22u %-8s %-8s %-12lld %-10zu %-10llu %-10.3f %s\n", budget,
                verdict, r.stopped ? "yes" : "no",
                static_cast<long long>(r.tokens_from2), r.ring_size,
                static_cast<unsigned long long>(r.evicted), r.ended_s,
                expected ? "" : "<-- unexpected");
  }
  std::printf("# paper result: fault detected after 3 retransmissions, ring "
              "reconstructed, STOP before the 1 s timeout\n");
  std::printf("# our result:   %s\n",
              ok ? "conforming run PASSES; non-conforming budgets are "
                   "correctly flagged"
                 : "UNEXPECTED — see rows above");
  return ok ? 0 : 1;
}
