// Fig 7 reproduction: TCP throughput vs offered data pumping rate between
// two hosts on a 100 Mbps switched LAN, with and without the Fault
// Injection Layer (25 packet filters, 25 actions per matched packet, RLL
// on — the paper's heaviest configuration).
//
// Paper's findings to reproduce in shape:
//   * up to ~90 Mbps offered, throughput tracks the offered rate in both
//     configurations;
//   * past the knee, the VirtualWire configuration saturates below the
//     plain stack because the RLL acknowledges every frame ("the Reliable
//     Link Layer encapsulates both the TCP data and the TCP ack packets.
//     This generates ACKs at the RLL level in both directions"), but the
//     loss stays within 10 %.
#include <cstdio>

#include "bench_common.hpp"
#include "vwire/tcp/apps.hpp"

using namespace vwire;

namespace {

struct Fig7Result {
  double mbps{0};
  // RLL RTT percentiles (µs) from the telemetry registry; 0 when the
  // VirtualWire stack (and thus the RLL) is not installed.
  double rtt_p50_us{0}, rtt_p95_us{0}, rtt_p99_us{0};
};

Fig7Result run_tcp_mbps(bool with_virtualwire, double offered_mbps,
                        Duration warmup, Duration window) {
  TestbedConfig cfg;
  cfg.install_trace = false;
  cfg.install_engine = with_virtualwire;
  cfg.install_rll = with_virtualwire;
  if (with_virtualwire) cfg.rll = vwbench::paper_rll();

  Testbed tb(cfg);
  tb.add_node("node1");
  tb.add_node("node2");

  tcp::TcpLayer tcp1(tb.node("node1"));
  tcp::TcpLayer tcp2(tb.node("node2"));
  tcp::BulkSink sink(tcp2, 16384);

  tcp::BulkSender::Params sp;
  sp.dst_ip = tb.node("node2").ip();
  sp.dst_port = 16384;
  sp.src_port = 24576;
  sp.total_bytes = 0;
  sp.offered_rate_bps = offered_mbps * 1e6;
  sp.chunk = 16 * 1024;
  tcp::BulkSender sender(tcp1, sp);

  sim::Simulator& sim = tb.simulator();
  std::unique_ptr<control::Controller> ctrl;
  if (with_virtualwire) {
    std::string script =
        vwbench::filter_table(25, /*tcp=*/true) + tb.node_table_fsl() +
        vwbench::per_packet_actions_scenario("TCP_fwd", "TCP_rev", "node1",
                                             "node2", 25);
    ctrl = std::make_unique<control::Controller>(sim, tb.managed_nodes(),
                                                 "node1");
    control::RunOptions opts;
    opts.heartbeat_period = {};  // no liveness beacons in the measurement
    ctrl->arm(fsl::compile_script(script), opts);
  }
  sender.start();

  // Warm-up lets slow start converge; measure over the steady window.
  sim.run_until(sim.now() + warmup);
  u64 start_bytes = sink.bytes_received();
  sim.run_until(sim.now() + window);
  u64 delta = sink.bytes_received() - start_bytes;

  Fig7Result r;
  r.mbps = static_cast<double>(delta) * 8.0 / window.seconds() / 1e6;
  if (const obs::Histogram* h =
          tb.metrics().find_histogram("rll.node1.rtt_us")) {
    r.rtt_p50_us = static_cast<double>(h->percentile(50));
    r.rtt_p95_us = static_cast<double>(h->percentile(95));
    r.rtt_p99_us = static_cast<double>(h->percentile(99));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = vwbench::smoke_mode(argc, argv);
  const Duration warmup = smoke ? millis(200) : seconds(1);
  const Duration window = smoke ? millis(800) : seconds(3);
  const std::vector<double> sweep =
      smoke ? std::vector<double>{10, 50, 90, 100}
            : std::vector<double>{10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 100};

  std::printf("# Fig 7 — TCP throughput vs offered data pumping rate\n");
  std::printf("# 100 Mbps switched LAN; VirtualWire = 25 filters + 25\n");
  std::printf("# actions/packet + RLL (ack per frame, no piggybacking)\n");
  std::printf("%-14s %16s %18s %10s %12s %12s\n", "offered Mbps", "plain Mbps",
              "virtualwire Mbps", "loss %", "rll p95 us", "rll p99 us");

  vwbench::BenchJson out("fig7_throughput");
  out.meta("figure", "Fig 7 — TCP throughput vs offered rate");
  out.meta("smoke", smoke ? 1.0 : 0.0);
  out.meta("window_s", window.seconds());
  for (double offered : sweep) {
    Fig7Result plain = run_tcp_mbps(false, offered, warmup, window);
    Fig7Result vw = run_tcp_mbps(true, offered, warmup, window);
    double loss = plain.mbps > 0
                      ? (plain.mbps - vw.mbps) / plain.mbps * 100.0
                      : 0.0;
    std::printf("%-14.0f %16.2f %18.2f %9.2f%% %12.1f %12.1f\n", offered,
                plain.mbps, vw.mbps, loss, vw.rtt_p95_us, vw.rtt_p99_us);
    out.begin_row();
    out.field("offered_mbps", offered);
    out.field("plain_mbps", plain.mbps);
    out.field("virtualwire_mbps", vw.mbps);
    out.field("loss_pct", loss);
    out.field("rll_rtt_p50_us", vw.rtt_p50_us);
    out.field("rll_rtt_p95_us", vw.rtt_p95_us);
    out.field("rll_rtt_p99_us", vw.rtt_p99_us);
  }
  std::printf("# PASS criteria (paper): knee at/after ~90 Mbps offered and\n");
  std::printf("# VirtualWire saturation within 10%% of the plain stack.\n");
  if (!out.write("BENCH_fig7.json")) {
    std::fprintf(stderr, "failed to write BENCH_fig7.json\n");
    return 1;
  }
  std::printf("# wrote BENCH_fig7.json\n");
  return 0;
}
