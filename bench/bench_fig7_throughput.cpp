// Fig 7 reproduction: TCP throughput vs offered data pumping rate between
// two hosts on a 100 Mbps switched LAN, with and without the Fault
// Injection Layer (25 packet filters, 25 actions per matched packet, RLL
// on — the paper's heaviest configuration).
//
// Paper's findings to reproduce in shape:
//   * up to ~90 Mbps offered, throughput tracks the offered rate in both
//     configurations;
//   * past the knee, the VirtualWire configuration saturates below the
//     plain stack because the RLL acknowledges every frame ("the Reliable
//     Link Layer encapsulates both the TCP data and the TCP ack packets.
//     This generates ACKs at the RLL level in both directions"), but the
//     loss stays within 10 %.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <vector>

#include "bench_common.hpp"
#include "vwire/tcp/apps.hpp"

using namespace vwire;

namespace {

struct Fig7Result {
  double mbps{0};
  // RLL RTT percentiles (µs) from the telemetry registry; 0 when the
  // VirtualWire stack (and thus the RLL) is not installed.
  double rtt_p50_us{0}, rtt_p95_us{0}, rtt_p99_us{0};
  // Host-side cost of the measured window: payload bytes simulated per CPU
  // second.  Simulated throughput is identical whether tracing records or
  // not (recording has no scheduled cost), so host CPU is where the flight
  // recorder's overhead shows up — same methodology as fig8's budget.
  double bytes_per_cpu_s{0};
};

TestbedConfig fig7_config(bool with_virtualwire) {
  TestbedConfig cfg;
  cfg.install_trace = false;
  cfg.install_engine = with_virtualwire;
  cfg.install_rll = with_virtualwire;
  if (with_virtualwire) cfg.rll = vwbench::paper_rll();
  return cfg;
}

Fig7Result run_tcp_mbps(TestbedConfig cfg, bool with_virtualwire,
                        double offered_mbps, Duration warmup,
                        Duration window) {
  Testbed tb(cfg);
  tb.add_node("node1");
  tb.add_node("node2");

  tcp::TcpLayer tcp1(tb.node("node1"));
  tcp::TcpLayer tcp2(tb.node("node2"));
  tcp::BulkSink sink(tcp2, 16384);

  tcp::BulkSender::Params sp;
  sp.dst_ip = tb.node("node2").ip();
  sp.dst_port = 16384;
  sp.src_port = 24576;
  sp.total_bytes = 0;
  sp.offered_rate_bps = offered_mbps * 1e6;
  sp.chunk = 16 * 1024;
  tcp::BulkSender sender(tcp1, sp);

  sim::Simulator& sim = tb.simulator();
  std::unique_ptr<control::Controller> ctrl;
  if (with_virtualwire) {
    std::string script =
        vwbench::filter_table(25, /*tcp=*/true) + tb.node_table_fsl() +
        vwbench::per_packet_actions_scenario("TCP_fwd", "TCP_rev", "node1",
                                             "node2", 25);
    ctrl = std::make_unique<control::Controller>(sim, tb.managed_nodes(),
                                                 "node1");
    control::RunOptions opts;
    opts.heartbeat_period = {};  // no liveness beacons in the measurement
    ctrl->arm(fsl::compile_script(script), opts);
  }
  sender.start();

  // Warm-up lets slow start converge; measure over the steady window.
  sim.run_until(sim.now() + warmup);
  u64 start_bytes = sink.bytes_received();
  std::clock_t t0 = std::clock();
  sim.run_until(sim.now() + window);
  std::clock_t t1 = std::clock();
  u64 delta = sink.bytes_received() - start_bytes;
  double cpu_s = static_cast<double>(t1 - t0) / CLOCKS_PER_SEC;

  Fig7Result r;
  r.mbps = static_cast<double>(delta) * 8.0 / window.seconds() / 1e6;
  r.bytes_per_cpu_s = cpu_s > 0 ? static_cast<double>(delta) / cpu_s : 0.0;
  if (const obs::Histogram* h =
          tb.metrics().find_histogram("rll.node1.rtt_us")) {
    r.rtt_p50_us = static_cast<double>(h->percentile(50));
    r.rtt_p95_us = static_cast<double>(h->percentile(95));
    r.rtt_p99_us = static_cast<double>(h->percentile(99));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = vwbench::smoke_mode(argc, argv);
  const Duration warmup = smoke ? millis(200) : seconds(1);
  const Duration window = smoke ? millis(800) : seconds(3);
  const std::vector<double> sweep =
      smoke ? std::vector<double>{10, 50, 90, 100}
            : std::vector<double>{10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 100};

  std::printf("# Fig 7 — TCP throughput vs offered data pumping rate\n");
  std::printf("# 100 Mbps switched LAN; VirtualWire = 25 filters + 25\n");
  std::printf("# actions/packet + RLL (ack per frame, no piggybacking)\n");
  std::printf("%-14s %16s %18s %10s %12s %12s\n", "offered Mbps", "plain Mbps",
              "virtualwire Mbps", "loss %", "rll p95 us", "rll p99 us");

  vwbench::BenchJson out("fig7_throughput");
  out.meta("figure", "Fig 7 — TCP throughput vs offered rate");
  out.meta("smoke", smoke ? 1.0 : 0.0);
  out.meta("window_s", window.seconds());
  for (double offered : sweep) {
    Fig7Result plain =
        run_tcp_mbps(fig7_config(false), false, offered, warmup, window);
    Fig7Result vw =
        run_tcp_mbps(fig7_config(true), true, offered, warmup, window);
    double loss = plain.mbps > 0
                      ? (plain.mbps - vw.mbps) / plain.mbps * 100.0
                      : 0.0;
    std::printf("%-14.0f %16.2f %18.2f %9.2f%% %12.1f %12.1f\n", offered,
                plain.mbps, vw.mbps, loss, vw.rtt_p95_us, vw.rtt_p99_us);
    out.begin_row();
    out.field("offered_mbps", offered);
    out.field("plain_mbps", plain.mbps);
    out.field("virtualwire_mbps", vw.mbps);
    out.field("loss_pct", loss);
    out.field("rll_rtt_p50_us", vw.rtt_p50_us);
    out.field("rll_rtt_p95_us", vw.rtt_p95_us);
    out.field("rll_rtt_p99_us", vw.rtt_p99_us);
  }
  std::printf("# PASS criteria (paper): knee at/after ~90 Mbps offered and\n");
  std::printf("# VirtualWire saturation within 10%% of the plain stack.\n");

  // Tracing overhead (DESIGN.md §12): the sweep above already ran with the
  // flight recorder on (the default).  Here the heaviest configuration is
  // re-run with the span ring on vs off — simulated throughput is identical
  // either way (recording has no scheduled cost), so the budgeted number is
  // host CPU per simulated byte, best-of-N per arm like fig8's estimator.
  // A sampled arm (trace_sample_rate 0.1) is reported for information: it
  // is the knob for workloads where even the full-rate cost matters.
  {
    const double offered = 90.0;
    const int reps = smoke ? 7 : 5;
    std::vector<double> on, off, sampled;
    for (int r = 0; r < reps; ++r) {
      TestbedConfig trace_on = fig7_config(true);
      TestbedConfig trace_off = fig7_config(true);
      trace_off.flight_capacity = 0;
      TestbedConfig trace_sampled = fig7_config(true);
      trace_sampled.trace_sample_rate = 0.1;
      // Alternate arm order so machine drift biases both symmetrically.
      if ((r % 2) == 0) {
        on.push_back(run_tcp_mbps(trace_on, true, offered, warmup, window)
                         .bytes_per_cpu_s);
        off.push_back(run_tcp_mbps(trace_off, true, offered, warmup, window)
                          .bytes_per_cpu_s);
      } else {
        off.push_back(run_tcp_mbps(trace_off, true, offered, warmup, window)
                          .bytes_per_cpu_s);
        on.push_back(run_tcp_mbps(trace_on, true, offered, warmup, window)
                         .bytes_per_cpu_s);
      }
      sampled.push_back(
          run_tcp_mbps(trace_sampled, true, offered, warmup, window)
              .bytes_per_cpu_s);
    }
    auto best = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v.size() > 1 ? v[v.size() - 2] : v.back();
    };
    const double bps_on = best(on), bps_off = best(off);
    const double bps_sampled = best(sampled);
    const double trace_pct =
        bps_off > 0 ? (bps_off - bps_on) / bps_off * 100.0 : 0.0;
    const double sampled_pct =
        bps_off > 0 ? (bps_off - bps_sampled) / bps_off * 100.0 : 0.0;
    std::printf("# tracing overhead (flight recorder, sample rate 1.0): "
                "best %.0f B/cpu-s (on) vs %.0f B/cpu-s (off) = %.2f%% "
                "(budget 2%%) %s\n",
                bps_on, bps_off, trace_pct, trace_pct <= 2.0 ? "PASS" : "FAIL");
    std::printf("# tracing overhead at trace_sample_rate 0.1: %.2f%%\n",
                sampled_pct);
    out.meta("trace_bps_on", bps_on);
    out.meta("trace_bps_off", bps_off);
    out.meta("trace_overhead_pct", trace_pct);
    out.meta("trace_sampled_overhead_pct", sampled_pct);
  }
  if (!out.write("BENCH_fig7.json")) {
    std::fprintf(stderr, "failed to write BENCH_fig7.json\n");
    return 1;
  }
  std::printf("# wrote BENCH_fig7.json\n");
  return 0;
}
