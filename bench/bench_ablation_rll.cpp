// Ablation: what the Reliable Link Layer buys (paper §3.3).
//
// "VirtualWire implements a Reliable Link Layer to prevent MAC layer bit
//  errors from causing a packet drop when the FIE/FAE is unaware of the
//  packet loss."
//
// We sweep the medium's bit-error rate and stream UDP datagrams (no
// transport-level recovery) with RLL off and on.  Without RLL, corrupted
// frames are silently lost — uncontrolled noise a fault script cannot
// account for.  With RLL, delivery returns to 100 % at the cost of
// retransmissions.
#include <cstdio>

#include "bench_common.hpp"
#include "vwire/udp/udp_layer.hpp"

using namespace vwire;

namespace {

struct Outcome {
  u64 delivered{0};
  u64 rll_retransmits{0};
};

Outcome run(double ber, bool with_rll, u64 seed) {
  TestbedConfig cfg;
  cfg.install_engine = false;
  cfg.install_trace = false;
  cfg.install_rll = with_rll;
  cfg.rll = vwbench::paper_rll();
  cfg.link.bit_error_rate = ber;
  cfg.seed = seed;
  Testbed tb(cfg);
  tb.add_node("a");
  tb.add_node("b");
  udp::UdpLayer ua(tb.node("a"));
  udp::UdpLayer ub(tb.node("b"));
  u64 got = 0;
  ub.bind(9, [&](net::Ipv4Address, u16, BytesView) { ++got; });

  constexpr int kDatagrams = 2000;
  Bytes payload(512, 0x42);
  for (int i = 0; i < kDatagrams; ++i) {
    tb.simulator().after(micros(200) * i, [&ua, &tb, payload] {
      ua.send(tb.node("b").ip(), 9, 30000, payload);
    });
  }
  tb.simulator().run_until({seconds(2).ns});
  Outcome o;
  o.delivered = got;
  if (with_rll) {
    o.rll_retransmits = tb.handles("a").rll->stats().retransmits;
  }
  return o;
}

}  // namespace

int main() {
  std::printf("# RLL ablation — 2000 UDP datagrams (512 B) across a link "
              "with bit errors\n");
  std::printf("%-12s %18s %18s %16s\n", "BER", "no-RLL delivered",
              "RLL delivered", "RLL retransmits");
  for (double ber : {0.0, 1e-8, 1e-7, 1e-6, 5e-6}) {
    Outcome off = run(ber, false, 7);
    Outcome on = run(ber, true, 7);
    std::printf("%-12g %12llu/2000 %12llu/2000 %16llu\n", ber,
                static_cast<unsigned long long>(off.delivered),
                static_cast<unsigned long long>(on.delivered),
                static_cast<unsigned long long>(on.rll_retransmits));
  }
  std::printf("# expectation: the no-RLL column decays with BER; the RLL "
              "column stays at 2000.\n");
  return 0;
}
