// Ablation: what the Reliable Link Layer buys (paper §3.3).
//
// "VirtualWire implements a Reliable Link Layer to prevent MAC layer bit
//  errors from causing a packet drop when the FIE/FAE is unaware of the
//  packet loss."
//
// We sweep the medium's bit-error rate and stream UDP datagrams (no
// transport-level recovery) with RLL off and on.  Without RLL, corrupted
// frames are silently lost — uncontrolled noise a fault script cannot
// account for.  With RLL, delivery returns to 100 % at the cost of
// retransmissions.
#include <cstdio>

#include "bench_common.hpp"
#include "vwire/udp/udp_layer.hpp"

using namespace vwire;

namespace {

struct Outcome {
  u64 delivered{0};
  u64 rll_retransmits{0};
  u64 rll_link_down{0};
  u64 rll_link_up{0};
};

Outcome run(double ber, bool with_rll, u64 seed, bool flaky_link = false) {
  TestbedConfig cfg;
  cfg.install_engine = false;
  cfg.install_trace = false;
  cfg.install_rll = with_rll;
  cfg.rll = vwbench::paper_rll();
  cfg.link.bit_error_rate = ber;
  cfg.seed = seed;
  Testbed tb(cfg);
  tb.add_node("a");
  tb.add_node("b");
  udp::UdpLayer ua(tb.node("a"));
  udp::UdpLayer ub(tb.node("b"));
  u64 got = 0;
  ub.bind(9, [&](net::Ipv4Address, u16, BytesView) { ++got; });

  if (flaky_link) {
    // 50ms up / 50ms down square wave on the receiver's port: the adaptive
    // RLL must carry the stream across the outages via RTO backoff (the
    // down phase is far shorter than its retry budget).
    phy::LinkFaultState flap;
    flap.flap.up = millis(50);
    flap.flap.down = millis(50);
    flap.flap.origin = TimePoint{0};
    tb.medium().set_link_fault(tb.node("b").nic().port(), flap);
  }

  constexpr int kDatagrams = 2000;
  Bytes payload(512, 0x42);
  for (int i = 0; i < kDatagrams; ++i) {
    tb.simulator().after(micros(200) * i, [&ua, &tb, payload] {
      ua.send(tb.node("b").ip(), 9, 30000, payload);
    });
  }
  tb.simulator().run_until({seconds(flaky_link ? 5 : 2).ns});
  Outcome o;
  o.delivered = got;
  if (with_rll) {
    const rll::RllStats& s = tb.handles("a").rll->stats();
    o.rll_retransmits = s.retransmits;
    o.rll_link_down = s.peers_aborted;
    o.rll_link_up = s.peers_recovered;
  }
  return o;
}

}  // namespace

int main() {
  std::printf("# RLL ablation — 2000 UDP datagrams (512 B) across a link "
              "with bit errors\n");
  std::printf("%-12s %18s %18s %16s\n", "BER", "no-RLL delivered",
              "RLL delivered", "RLL retransmits");
  for (double ber : {0.0, 1e-8, 1e-7, 1e-6, 5e-6}) {
    Outcome off = run(ber, false, 7);
    Outcome on = run(ber, true, 7);
    std::printf("%-12g %12llu/2000 %12llu/2000 %16llu\n", ber,
                static_cast<unsigned long long>(off.delivered),
                static_cast<unsigned long long>(on.delivered),
                static_cast<unsigned long long>(on.rll_retransmits));
  }
  std::printf("# expectation: the no-RLL column decays with BER; the RLL "
              "column stays at 2000.\n");

  // Link-fault ablation: same stream across a flapping link (50ms up /
  // 50ms down).  Without RLL roughly every other datagram dies; the
  // adaptive RLL rides out each outage with backed-off retransmissions
  // (and, if an outage outlasted its retry budget, visible link-down /
  // link-up transitions instead of silent loss).
  Outcome foff = run(0.0, false, 7, /*flaky_link=*/true);
  Outcome fon = run(0.0, true, 7, /*flaky_link=*/true);
  std::printf("\n# RLL under link flap (50ms up / 50ms down, no bit errors)\n");
  std::printf("%-12s %18s %18s %16s %12s\n", "fault", "no-RLL delivered",
              "RLL delivered", "RLL retransmits", "down/up");
  std::printf("%-12s %12llu/2000 %12llu/2000 %16llu %6llu/%llu\n", "flap",
              static_cast<unsigned long long>(foff.delivered),
              static_cast<unsigned long long>(fon.delivered),
              static_cast<unsigned long long>(fon.rll_retransmits),
              static_cast<unsigned long long>(fon.rll_link_down),
              static_cast<unsigned long long>(fon.rll_link_up));
  std::printf("# expectation: no-RLL delivers roughly half; RLL restores "
              "(nearly) all 2000.\n");
  return 0;
}
