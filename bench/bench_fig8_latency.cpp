// Fig 8 reproduction: extra protocol-processing latency added by the Fault
// Injection Layer, measured as % increase in UDP echo round-trip time
// between two hosts, sweeping the number of packet type definitions 1..25.
//
// Paper's three configurations:
//   (i)   N packet matching rules
//   (ii)  N rules, each matched packet triggering 25 actions
//   (iii) (ii) with the Reliable Link Layer turned on
//
// Paper's findings to reproduce in shape: latency grows linearly with the
// number of filters (linear search), each added mechanism costs more
// ((iii) > (ii) > (i)), and the worst case stays in the single-digit
// percent range ("around 7%").
//
// Beyond the figure, this bench reports the telemetry subsystem itself:
// RTT p50/p95/p99 from the echo client's log-linear histogram (not just
// means), a JSONL report of the heaviest run (BENCH_fig8_telemetry.jsonl),
// and the *host CPU* overhead of telemetry — registry counters, histogram
// records and rule-firing provenance — as a steady-state packets per
// CPU-second ratio between a telemetry-on and telemetry-off run of the
// same scenario (script compile + arming excluded: one-time costs are not
// per-packet overhead).  Simulated time is unaffected by telemetry
// (recording has no scheduled cost), so overhead only shows up in host
// time.  The budgeted number (≤2%) is the standing tax on the heaviest
// classify configuration; the per-record provenance cost is priced
// separately under the (ii) fault storm, where it scales with scripted
// firings, not traffic.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <vector>

#include "bench_common.hpp"
#include "vwire/udp/echo.hpp"

using namespace vwire;

namespace {

struct EchoSetup {
  Testbed tb;
  std::unique_ptr<udp::UdpLayer> client_udp, server_udp;
  std::unique_ptr<udp::EchoServer> server;
  std::unique_ptr<udp::EchoClient> client;

  explicit EchoSetup(TestbedConfig cfg, int probes) : tb(std::move(cfg)) {
    tb.add_node("client");
    tb.add_node("server");
    client_udp = std::make_unique<udp::UdpLayer>(tb.node("client"));
    server_udp = std::make_unique<udp::UdpLayer>(tb.node("server"));
    server = std::make_unique<udp::EchoServer>(*server_udp, 7);
    udp::EchoClient::Params cp;
    cp.server_ip = tb.node("server").ip();
    cp.server_port = 7;
    cp.local_port = 40000;
    cp.payload_size = 64;
    cp.count = probes;
    cp.interval = millis(1);
    client = std::make_unique<udp::EchoClient>(*client_udp, cp);
  }

  void arm(const std::string& script) {
    if (script.empty()) return;
    core::TableSet tables = fsl::compile_script(script);
    control::Controller ctrl(tb.simulator(), tb.managed_nodes(), "client");
    control::RunOptions opts;
    opts.heartbeat_period = {};  // no liveness beacons in the measurement
    ctrl.arm(tables, opts);
  }

  void drive(Duration window) {
    client->start();
    tb.simulator().run_until(tb.simulator().now() + window);
  }

  void run(const std::string& script, Duration window) {
    arm(script);
    drive(window);
  }

  u64 packets_seen() {
    u64 n = 0;
    for (const char* name : {"client", "server"}) {
      const NodeHandles& h = tb.handles(name);
      if (h.engine != nullptr) n += h.engine->stats().packets_seen;
    }
    return n;
  }
};

struct EchoResult {
  double mean_us{0}, p50_us{0}, p95_us{0}, p99_us{0};
};

EchoResult run_echo(TestbedConfig cfg, const std::string& script, int probes,
                    Duration window) {
  EchoSetup s(std::move(cfg), probes);
  s.run(script, window);
  const obs::Histogram& h = s.client->rtt_histogram();
  return {s.client->mean_rtt().micros_f(),
          static_cast<double>(h.percentile(50)),
          static_cast<double>(h.percentile(95)),
          static_cast<double>(h.percentile(99))};
}

/// One overhead arm: run a scenario and measure host *CPU* time over the
/// steady-state drive only — compiling and arming the script happen outside
/// the timed window (one-time costs, e.g. allocating the provenance rings,
/// are not per-packet overhead), and process CPU time rather than wall
/// time, so other tenants of a shared machine don't leak into the ratio.
/// Returns engine packets processed per CPU second (best proxy for the
/// telemetry hot-path cost; simulated time is identical either way).
double run_packets_per_sec(TestbedConfig cfg, const std::string& script,
                           int probes, Duration window,
                           const char* report_path) {
  EchoSetup s(std::move(cfg), probes);
  s.arm(script);
  std::clock_t t0 = std::clock();
  s.drive(window);
  std::clock_t t1 = std::clock();
  double cpu_s = static_cast<double>(t1 - t0) / CLOCKS_PER_SEC;
  if (report_path != nullptr) {
    obs::ScenarioReport report = make_report(s.tb, nullptr);
    report.meta.scenario = "fig8_heaviest";
    if (!report.write_jsonl(report_path)) {
      std::fprintf(stderr, "failed to write %s\n", report_path);
    }
  }
  return cpu_s > 0 ? static_cast<double>(s.packets_seen()) / cpu_s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = vwbench::smoke_mode(argc, argv);
  const int probes = smoke ? 100 : 400;
  const Duration window = smoke ? seconds(1) : seconds(2);
  const std::vector<int> sweep =
      smoke ? std::vector<int>{1, 25} : std::vector<int>{1, 5, 10, 15, 20, 25};

  // Baseline: no VirtualWire layer at all.
  TestbedConfig base_cfg;
  base_cfg.install_engine = false;
  base_cfg.install_rll = false;
  base_cfg.install_trace = false;
  EchoResult base = run_echo(base_cfg, "", probes, window);

  std::printf("# Fig 8 — %% increase in UDP round-trip latency vs number of\n");
  std::printf("# packet type definitions (paper: linear growth, (iii) ~7%% max)\n");
  std::printf("# baseline RTT (no VirtualWire): mean %.2f us, p50 %.2f, "
              "p95 %.2f, p99 %.2f us\n",
              base.mean_us, base.p50_us, base.p95_us, base.p99_us);
  std::printf("%-8s %10s %8s %12s %8s %12s %8s %10s %10s\n", "filters",
              "(i) us", "%", "(ii) us", "%", "(iii) us", "%", "iii p95", "iii p99");

  vwbench::BenchJson out("fig8_latency");
  out.meta("figure", "Fig 8 — % RTT increase vs number of packet types");
  out.meta("smoke", smoke ? 1.0 : 0.0);
  out.meta("baseline_us", base.mean_us);
  out.meta("baseline_p50_us", base.p50_us);
  out.meta("baseline_p95_us", base.p95_us);
  out.meta("baseline_p99_us", base.p99_us);

  std::string last_script_i;   // heaviest classify-only config, reused below
  std::string last_script_ii;  // heaviest fault-storm config, reused below
  for (int n : sweep) {
    TestbedConfig cfg_i;  // engine only, no RLL
    cfg_i.install_rll = false;
    cfg_i.install_trace = false;
    std::string node_table;
    {
      // Build the node table from a throwaway testbed with the same
      // deterministic addressing.
      Testbed t(cfg_i);
      t.add_node("client");
      t.add_node("server");
      node_table = t.node_table_fsl();
    }
    std::string filters = vwbench::filter_table(n, /*tcp=*/false);
    std::string script_i =
        filters + node_table + vwbench::classify_only_scenario();
    std::string script_ii =
        filters + node_table +
        vwbench::per_packet_actions_scenario("udp_req", "udp_rsp", "client",
                                             "server", 25);
    last_script_i = script_i;
    last_script_ii = script_ii;

    EchoResult r_i = run_echo(cfg_i, script_i, probes, window);
    EchoResult r_ii = run_echo(cfg_i, script_ii, probes, window);

    TestbedConfig cfg_iii = cfg_i;  // + paper-faithful RLL
    cfg_iii.install_rll = true;
    cfg_iii.rll = vwbench::paper_rll();
    EchoResult r_iii = run_echo(cfg_iii, script_ii, probes, window);

    auto pct = [&](double us) {
      return (us - base.mean_us) / base.mean_us * 100.0;
    };
    std::printf(
        "%-8d %10.2f %7.2f%% %12.2f %7.2f%% %12.2f %7.2f%% %10.2f %10.2f\n",
        n, r_i.mean_us, pct(r_i.mean_us), r_ii.mean_us, pct(r_ii.mean_us),
        r_iii.mean_us, pct(r_iii.mean_us), r_iii.p95_us, r_iii.p99_us);
    out.begin_row();
    out.field("filters", n);
    out.field("i_us", r_i.mean_us);
    out.field("i_pct", pct(r_i.mean_us));
    out.field("ii_us", r_ii.mean_us);
    out.field("ii_pct", pct(r_ii.mean_us));
    out.field("iii_us", r_iii.mean_us);
    out.field("iii_pct", pct(r_iii.mean_us));
    out.field("iii_p50_us", r_iii.p50_us);
    out.field("iii_p95_us", r_iii.p95_us);
    out.field("iii_p99_us", r_iii.p99_us);
  }

  // Telemetry wall-clock overhead, telemetry on vs off, best-of-3 per arm
  // to shed scheduler noise.  Two measurements:
  //
  //  * The budgeted number runs the heaviest *standing* configuration
  //    (25 filters, RLL on, no scripted faults): registry views, per-packet
  //    histogram records, and the armed-but-idle provenance ring.  This is
  //    the tax every scenario pays regardless of script behaviour, and it
  //    must stay under 2%.
  //  * The fault-storm number runs configuration (ii) — 25 counter actions
  //    per matched packet, ~12 provenance records per engine-seen packet.
  //    It prices the per-record provenance cost, which scales with scripted
  //    action firings rather than with traffic, so it is reported for
  //    information, not budgeted against.
  //  * The tracing number isolates the causal flight recorder (DESIGN.md
  //    §12): telemetry on in both arms, span ring at its default capacity
  //    and sample rate 1.0 vs disabled.  Budgeted at ≤2% — the recorder is
  //    a seqlock ring write per NIC/fault/ARQ event, and the budget keeps
  //    it cheap enough to leave on in every chaos campaign.
  TestbedConfig cfg_heavy;
  cfg_heavy.install_rll = true;
  cfg_heavy.rll = vwbench::paper_rll();
  cfg_heavy.install_trace = false;
  // Even CPU-time samples on a shared machine carry slow outliers (cache
  // thrash from neighbours inflates CPU time by up to 2×), but noise only
  // ever *slows* a run — so each arm takes the best of N interleaved
  // samples (>100 ms of CPU time each), the standard min-time estimator:
  // the fastest observation is the closest to the true cost.
  const int ov_probes = smoke ? 10000 : 20000;
  const Duration ov_window = millis(ov_probes + 200);
  std::vector<double> ov_on, ov_off, st_on, st_off, tr_on, tr_off;
  const int reps = smoke ? 21 : 15;
  for (int r = 0; r < reps; ++r) {
    TestbedConfig on = cfg_heavy;
    on.telemetry = true;
    TestbedConfig off = cfg_heavy;
    off.telemetry = false;
    // Tracing arms isolate the flight recorder (DESIGN.md §12): both keep
    // telemetry on, only the per-node span ring differs.  trace_on is the
    // default configuration every traced scenario runs with.
    TestbedConfig trace_on = on;
    TestbedConfig trace_off = on;
    trace_off.flight_capacity = 0;
    // Alternate which arm goes first so monotonic machine drift (thermal,
    // frequency scaling) biases both arms symmetrically.
    const bool on_first = (r % 2) == 0;
    const char* report = r == 0 ? "BENCH_fig8_telemetry.jsonl" : nullptr;
    for (int leg = 0; leg < 2; ++leg) {
      if ((leg == 0) == on_first) {
        ov_on.push_back(run_packets_per_sec(on, last_script_i, ov_probes,
                                            ov_window, nullptr));
        st_on.push_back(run_packets_per_sec(on, last_script_ii, ov_probes,
                                            ov_window, report));
        tr_on.push_back(run_packets_per_sec(trace_on, last_script_i,
                                            ov_probes, ov_window, nullptr));
      } else {
        ov_off.push_back(run_packets_per_sec(off, last_script_i, ov_probes,
                                             ov_window, nullptr));
        st_off.push_back(run_packets_per_sec(off, last_script_ii, ov_probes,
                                             ov_window, nullptr));
        tr_off.push_back(run_packets_per_sec(trace_off, last_script_i,
                                             ov_probes, ov_window, nullptr));
      }
    }
  }
  // Second-best rather than best: the maximum of ~20 samples is itself a
  // noisy order statistic (one lucky cache-warm run skews the ratio); the
  // runner-up keeps the slow-outlier immunity without the extreme-value
  // variance.
  auto best = [](std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v.size() > 1 ? v[v.size() - 2] : v.back();
  };
  double pps_on = best(ov_on), pps_off = best(ov_off);
  double storm_on = best(st_on), storm_off = best(st_off);
  double trace_pps_on = best(tr_on), trace_pps_off = best(tr_off);
  double overhead_pct =
      pps_off > 0 ? (pps_off - pps_on) / pps_off * 100.0 : 0.0;
  double storm_pct =
      storm_off > 0 ? (storm_off - storm_on) / storm_off * 100.0 : 0.0;
  double trace_pct = trace_pps_off > 0
                         ? (trace_pps_off - trace_pps_on) / trace_pps_off * 100.0
                         : 0.0;
  std::printf("# telemetry overhead: best %.0f pkt/cpu-s (on) vs %.0f "
              "pkt/cpu-s (off) = %.2f%% (budget 2%%)\n",
              pps_on, pps_off, overhead_pct);
  std::printf("# provenance under fault storm (ii, ~12 records/pkt): "
              "best %.0f pkt/cpu-s (on) vs %.0f pkt/cpu-s (off) = %.2f%%\n",
              storm_on, storm_off, storm_pct);
  std::printf("# tracing overhead (flight recorder, sample rate 1.0): "
              "best %.0f pkt/cpu-s (on) vs %.0f pkt/cpu-s (off) = %.2f%% "
              "(budget 2%%) %s\n",
              trace_pps_on, trace_pps_off, trace_pct,
              trace_pct <= 2.0 ? "PASS" : "FAIL");
  std::printf("# wrote BENCH_fig8_telemetry.jsonl\n");
  out.meta("telemetry_pps_on", pps_on);
  out.meta("telemetry_pps_off", pps_off);
  out.meta("telemetry_overhead_pct", overhead_pct);
  out.meta("storm_pps_on", storm_on);
  out.meta("storm_pps_off", storm_off);
  out.meta("storm_overhead_pct", storm_pct);
  out.meta("trace_pps_on", trace_pps_on);
  out.meta("trace_pps_off", trace_pps_off);
  out.meta("trace_overhead_pct", trace_pct);

  if (!out.write("BENCH_fig8.json")) {
    std::fprintf(stderr, "failed to write BENCH_fig8.json\n");
    return 1;
  }
  std::printf("# wrote BENCH_fig8.json\n");
  return 0;
}
