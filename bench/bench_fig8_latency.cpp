// Fig 8 reproduction: extra protocol-processing latency added by the Fault
// Injection Layer, measured as % increase in UDP echo round-trip time
// between two hosts, sweeping the number of packet type definitions 1..25.
//
// Paper's three configurations:
//   (i)   N packet matching rules
//   (ii)  N rules, each matched packet triggering 25 actions
//   (iii) (ii) with the Reliable Link Layer turned on
//
// Paper's findings to reproduce in shape: latency grows linearly with the
// number of filters (linear search), each added mechanism costs more
// ((iii) > (ii) > (i)), and the worst case stays in the single-digit
// percent range ("around 7%").
#include <cstdio>

#include "bench_common.hpp"
#include "vwire/udp/echo.hpp"

using namespace vwire;

namespace {

struct EchoSetup {
  Testbed tb;
  std::unique_ptr<udp::UdpLayer> client_udp, server_udp;
  std::unique_ptr<udp::EchoServer> server;
  std::unique_ptr<udp::EchoClient> client;

  explicit EchoSetup(TestbedConfig cfg, int probes) : tb(std::move(cfg)) {
    tb.add_node("client");
    tb.add_node("server");
    client_udp = std::make_unique<udp::UdpLayer>(tb.node("client"));
    server_udp = std::make_unique<udp::UdpLayer>(tb.node("server"));
    server = std::make_unique<udp::EchoServer>(*server_udp, 7);
    udp::EchoClient::Params cp;
    cp.server_ip = tb.node("server").ip();
    cp.server_port = 7;
    cp.local_port = 40000;
    cp.payload_size = 64;
    cp.count = probes;
    cp.interval = millis(1);
    client = std::make_unique<udp::EchoClient>(*client_udp, cp);
  }
};

double run_echo_rtt_us(TestbedConfig cfg, const std::string& script,
                       int probes, Duration window) {
  EchoSetup s(std::move(cfg), probes);
  if (!script.empty()) {
    core::TableSet tables = fsl::compile_script(script);
    control::Controller ctrl(s.tb.simulator(), s.tb.managed_nodes(),
                             "client");
    control::RunOptions opts;
    opts.heartbeat_period = {};  // no liveness beacons in the measurement
    ctrl.arm(tables, opts);
    s.client->start();
    s.tb.simulator().run_until(s.tb.simulator().now() + window);
  } else {
    s.client->start();
    s.tb.simulator().run_until({window.ns});
  }
  return s.client->mean_rtt().micros_f();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = vwbench::smoke_mode(argc, argv);
  const int probes = smoke ? 100 : 400;
  const Duration window = smoke ? seconds(1) : seconds(2);
  const std::vector<int> sweep =
      smoke ? std::vector<int>{1, 25} : std::vector<int>{1, 5, 10, 15, 20, 25};

  // Baseline: no VirtualWire layer at all.
  TestbedConfig base_cfg;
  base_cfg.install_engine = false;
  base_cfg.install_rll = false;
  base_cfg.install_trace = false;
  double base_us = run_echo_rtt_us(base_cfg, "", probes, window);

  std::printf("# Fig 8 — %% increase in UDP round-trip latency vs number of\n");
  std::printf("# packet type definitions (paper: linear growth, (iii) ~7%% max)\n");
  std::printf("# baseline RTT (no VirtualWire): %.2f us\n", base_us);
  std::printf("%-8s %10s %8s %12s %8s %12s %8s\n", "filters", "(i) us", "%",
              "(ii) us", "%", "(iii) us", "%");

  vwbench::BenchJson out("fig8_latency");
  out.meta("figure", "Fig 8 — % RTT increase vs number of packet types");
  out.meta("smoke", smoke ? 1.0 : 0.0);
  out.meta("baseline_us", base_us);
  for (int n : sweep) {
    TestbedConfig cfg_i;  // engine only, no RLL
    cfg_i.install_rll = false;
    cfg_i.install_trace = false;
    std::string node_table;
    {
      // Build the node table from a throwaway testbed with the same
      // deterministic addressing.
      Testbed t(cfg_i);
      t.add_node("client");
      t.add_node("server");
      node_table = t.node_table_fsl();
    }
    std::string filters = vwbench::filter_table(n, /*tcp=*/false);
    std::string script_i =
        filters + node_table + vwbench::classify_only_scenario();
    std::string script_ii =
        filters + node_table +
        vwbench::per_packet_actions_scenario("udp_req", "udp_rsp", "client",
                                             "server", 25);

    double us_i = run_echo_rtt_us(cfg_i, script_i, probes, window);
    double us_ii = run_echo_rtt_us(cfg_i, script_ii, probes, window);

    TestbedConfig cfg_iii = cfg_i;  // + paper-faithful RLL
    cfg_iii.install_rll = true;
    cfg_iii.rll = vwbench::paper_rll();
    double us_iii = run_echo_rtt_us(cfg_iii, script_ii, probes, window);

    auto pct = [&](double us) { return (us - base_us) / base_us * 100.0; };
    std::printf("%-8d %10.2f %7.2f%% %12.2f %7.2f%% %12.2f %7.2f%%\n", n,
                us_i, pct(us_i), us_ii, pct(us_ii), us_iii, pct(us_iii));
    out.begin_row();
    out.field("filters", n);
    out.field("i_us", us_i);
    out.field("i_pct", pct(us_i));
    out.field("ii_us", us_ii);
    out.field("ii_pct", pct(us_ii));
    out.field("iii_us", us_iii);
    out.field("iii_pct", pct(us_iii));
  }
  if (!out.write("BENCH_fig8.json")) {
    std::fprintf(stderr, "failed to write BENCH_fig8.json\n");
    return 1;
  }
  std::printf("# wrote BENCH_fig8.json\n");
  return 0;
}
