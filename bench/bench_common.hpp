// Shared scaffolding for the figure-reproduction benches.
//
// Calibration (DESIGN.md §5): the engine charges per-packet processing as
// latency — cost_base 150 ns + 30 ns per filter tuple compared + 50 ns per
// action executed — standing in for the paper's Pentium-4 CPU.  The RLL
// used for Fig 7/8 is the paper-faithful variant (standalone ack per data
// frame, no piggybacking).  Absolute values are calibrated so the *shape*
// of Fig 7/8 reproduces: linear growth in #filters, curve ordering
// (filters) < (+actions) < (+RLL), ≤ ~7-10 % in the measured range.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/util/hex.hpp"

namespace vwbench {

/// Minimal machine-readable bench output (no external JSON dependency):
/// one object — {"bench": ..., "meta": {...}, "rows": [{...}, ...]} — so CI
/// and plotting scripts can diff figure data across commits instead of
/// scraping stdout tables.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void meta(const std::string& key, const std::string& v) {
    meta_.emplace_back(key, quote(v));
  }
  void meta(const std::string& key, double v) { meta_.emplace_back(key, num(v)); }

  void begin_row() { rows_.emplace_back(); }
  void field(const std::string& key, double v) {
    rows_.back().emplace_back(key, num(v));
  }
  void field(const std::string& key, const std::string& v) {
    rows_.back().emplace_back(key, quote(v));
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n  \"bench\": %s,\n", quote(bench_).c_str());
    std::fprintf(f, "  \"meta\": {");
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      std::fprintf(f, "%s%s: %s", i ? ", " : "", quote(meta_[i].first).c_str(),
                   meta_[i].second.c_str());
    }
    std::fprintf(f, "},\n  \"rows\": [\n");
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s%s: %s", i ? ", " : "",
                     quote(rows_[r][i].first).c_str(),
                     rows_[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }
  static std::string num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
  }

  std::string bench_;
  Fields meta_;
  std::vector<Fields> rows_;
};

/// True when the bench was invoked with `--smoke`: CI runs a scaled-down
/// sweep that exercises the full code path in seconds, not minutes.
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

/// RLL configured like the paper's: every data frame acked immediately
/// with a standalone ack frame.
inline vwire::rll::RllParams paper_rll() {
  vwire::rll::RllParams p;
  p.piggyback = false;
  p.ack_every = 1;
  return p;
}

/// `total` filter entries; all but the last two are decoys that fail on
/// their first tuple, so a matching packet pays the full linear scan the
/// paper measures ("searches linearly through the packet type
/// definitions", §7).  The last two match UDP request/response or TCP
/// data/ack depending on `tcp`.
inline std::string filter_table(int total, bool tcp) {
  std::string out = "FILTER_TABLE\n";
  for (int i = 0; i < total - 2; ++i) {
    // Decoy: impossible source port, two more tuples never reached.
    out += "  decoy" + std::to_string(i) + ": (34 2 " +
           vwire::to_hex(0x7100 + i, 4) + "), (36 2 0x0001), (47 1 0x3f)\n";
  }
  if (tcp) {
    out +=
        "  TCP_fwd: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)\n"
        "  TCP_rev: (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)\n";
  } else {
    out +=
        "  udp_req: (34 2 0x9c40), (36 2 0x0007), (23 1 0x11)\n"
        "  udp_rsp: (34 2 0x0007), (36 2 0x9c40), (23 1 0x11)\n";
  }
  out += "END\n";
  return out;
}

/// A scenario firing `actions_per_packet` counter actions on every matched
/// packet at both receive sides — the paper's "25 actions ... triggered for
/// each packet".  The RESET re-arms the edge so the rule fires per packet.
inline std::string per_packet_actions_scenario(const std::string& fwd_type,
                                               const std::string& rev_type,
                                               const std::string& src,
                                               const std::string& dst,
                                               int actions_per_packet) {
  std::string out = "SCENARIO per_packet_load\n";
  out += "  FWD: (" + fwd_type + ", " + src + ", " + dst + ", RECV)\n";
  out += "  REV: (" + rev_type + ", " + dst + ", " + src + ", RECV)\n";
  out += "  XF: (" + dst + ")\n";
  out += "  XR: (" + src + ")\n";
  out += "  (TRUE) >> ENABLE_CNTR(FWD); ENABLE_CNTR(REV); "
         "ENABLE_CNTR(XF); ENABLE_CNTR(XR);\n";
  auto rule = [&](const char* cnt, const char* x) {
    std::string r = "  ((" + std::string(cnt) + " > 0)) >> RESET_CNTR(" +
                    cnt + ");";
    for (int i = 0; i < actions_per_packet - 1; ++i) {
      r += " INCR_CNTR(" + std::string(x) + ", 1);";
    }
    return r + "\n";
  };
  out += rule("FWD", "XF");
  out += rule("REV", "XR");
  out += "END\n";
  return out;
}

/// An empty scenario: filters classify (and cost), nothing else happens.
inline std::string classify_only_scenario() {
  return "SCENARIO classify_only\nEND\n";
}

}  // namespace vwbench
