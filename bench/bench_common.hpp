// Shared scaffolding for the figure-reproduction benches.
//
// Calibration (DESIGN.md §5): the engine charges per-packet processing as
// latency — cost_base 150 ns + 30 ns per filter tuple compared + 50 ns per
// action executed — standing in for the paper's Pentium-4 CPU.  The RLL
// used for Fig 7/8 is the paper-faithful variant (standalone ack per data
// frame, no piggybacking).  Absolute values are calibrated so the *shape*
// of Fig 7/8 reproduces: linear growth in #filters, curve ordering
// (filters) < (+actions) < (+RLL), ≤ ~7-10 % in the measured range.
#pragma once

#include <string>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/util/hex.hpp"

namespace vwbench {

/// RLL configured like the paper's: every data frame acked immediately
/// with a standalone ack frame.
inline vwire::rll::RllParams paper_rll() {
  vwire::rll::RllParams p;
  p.piggyback = false;
  p.ack_every = 1;
  return p;
}

/// `total` filter entries; all but the last two are decoys that fail on
/// their first tuple, so a matching packet pays the full linear scan the
/// paper measures ("searches linearly through the packet type
/// definitions", §7).  The last two match UDP request/response or TCP
/// data/ack depending on `tcp`.
inline std::string filter_table(int total, bool tcp) {
  std::string out = "FILTER_TABLE\n";
  for (int i = 0; i < total - 2; ++i) {
    // Decoy: impossible source port, two more tuples never reached.
    out += "  decoy" + std::to_string(i) + ": (34 2 " +
           vwire::to_hex(0x7100 + i, 4) + "), (36 2 0x0001), (47 1 0x3f)\n";
  }
  if (tcp) {
    out +=
        "  TCP_fwd: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)\n"
        "  TCP_rev: (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)\n";
  } else {
    out +=
        "  udp_req: (34 2 0x9c40), (36 2 0x0007), (23 1 0x11)\n"
        "  udp_rsp: (34 2 0x0007), (36 2 0x9c40), (23 1 0x11)\n";
  }
  out += "END\n";
  return out;
}

/// A scenario firing `actions_per_packet` counter actions on every matched
/// packet at both receive sides — the paper's "25 actions ... triggered for
/// each packet".  The RESET re-arms the edge so the rule fires per packet.
inline std::string per_packet_actions_scenario(const std::string& fwd_type,
                                               const std::string& rev_type,
                                               const std::string& src,
                                               const std::string& dst,
                                               int actions_per_packet) {
  std::string out = "SCENARIO per_packet_load\n";
  out += "  FWD: (" + fwd_type + ", " + src + ", " + dst + ", RECV)\n";
  out += "  REV: (" + rev_type + ", " + dst + ", " + src + ", RECV)\n";
  out += "  XF: (" + dst + ")\n";
  out += "  XR: (" + src + ")\n";
  out += "  (TRUE) >> ENABLE_CNTR(FWD); ENABLE_CNTR(REV); "
         "ENABLE_CNTR(XF); ENABLE_CNTR(XR);\n";
  auto rule = [&](const char* cnt, const char* x) {
    std::string r = "  ((" + std::string(cnt) + " > 0)) >> RESET_CNTR(" +
                    cnt + ");";
    for (int i = 0; i < actions_per_packet - 1; ++i) {
      r += " INCR_CNTR(" + std::string(x) + ", 1);";
    }
    return r + "\n";
  };
  out += rule("FWD", "XF");
  out += rule("REV", "XR");
  out += "END\n";
  return out;
}

/// An empty scenario: filters classify (and cost), nothing else happens.
inline std::string classify_only_scenario() {
  return "SCENARIO classify_only\nEND\n";
}

}  // namespace vwbench
