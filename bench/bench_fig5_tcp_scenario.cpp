// Fig 5 / §6.1 reproduction as a reportable run: the TCP
// slow-start→congestion-avoidance scenario, printing the row the paper
// reports (the implementation's verdict) plus the script-side model trace.
//
// The paper's result for Linux 2.4.17: "The TCP implementation ... behaved
// correctly by switching to congestion avoidance algorithm."  Here the
// implementation under test is src/vwire/tcp; the scenario PASSes when the
// wire-visible window behaviour matches the script's model at every ack.
#include <cstdio>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/tcp/apps.hpp"

using namespace vwire;

namespace {

const char* kFilters =
    "FILTER_TABLE\n"
    "  TCP_syn:    (34 2 0x6000), (36 2 0x4000), (47 1 0x02 0x02)\n"
    "  TCP_synack: (34 2 0x4000), (36 2 0x6000), (47 1 0x12 0x12)\n"
    "  TCP_data:   (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)\n"
    "  TCP_ack:    (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)\n"
    "END\n";

std::string scenario(int stop_after_acks) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "  ((TOT_ACK = %d)) >> STOP;\n",
                stop_after_acks);
  return std::string(
             "SCENARIO TCP_SS_CA_algo\n"
             "  SYNACK:   (TCP_synack, node2, node1, RECV)\n"
             "  SA_ACK:   (TCP_data, node1, node2, SEND)\n"
             "  DATA:     (TCP_data, node1, node2, SEND)\n"
             "  ACK:      (TCP_ack, node2, node1, RECV)\n"
             "  TOT_ACK:  (TCP_ack, node2, node1, RECV)\n"
             "  CWND:     (node1)\n"
             "  CanTx:    (node1)\n"
             "  CCNT:     (node1)\n"
             "  SSTHRESH: (node1)\n"
             "  (TRUE) >> ENABLE_CNTR(SYNACK); ENABLE_CNTR(SA_ACK);\n"
             "            ENABLE_CNTR(ACK); ENABLE_CNTR(TOT_ACK);\n"
             "            ASSIGN_CNTR(CWND, 1); ASSIGN_CNTR(CanTx, 1);\n"
             "            ENABLE_CNTR(CCNT); ASSIGN_CNTR(SSTHRESH, 2);\n"
             "  ((SYNACK > 0) && (SYNACK < 2)) >>\n"
             "            DROP TCP_synack, node2, node1, RECV;\n"
             "  ((SA_ACK = 1)) >> ENABLE_CNTR(DATA); DISABLE_CNTR(SA_ACK);\n"
             "  ((DATA = 1)) >> RESET_CNTR(DATA); DECR_CNTR(CanTx, 1);\n"
             "  ((CWND <= SSTHRESH) && (ACK = 1)) >> RESET_CNTR(ACK);\n"
             "            INCR_CNTR(CWND, 1); INCR_CNTR(CanTx, 2);\n"
             "  ((CWND > SSTHRESH) && (ACK = 1)) >> RESET_CNTR(ACK);\n"
             "            INCR_CNTR(CanTx, 1); INCR_CNTR(CCNT, 1);\n"
             "  ((CWND > SSTHRESH) && (CCNT > CWND)) >> RESET_CNTR(CCNT);\n"
             "            INCR_CNTR(CWND, 1); INCR_CNTR(CanTx, 1);\n"
             "  ((CanTx < 0)) >> FLAG_ERROR;\n") +
         buf + "END\n";
}

struct RunResult {
  bool pass{false};
  i64 cwnd_model{0};
  u32 cwnd_impl{0};
  u32 ssthresh_impl{0};
  bool in_ca{false};
  u64 syn_rexmit{0};
};

RunResult run_once(int stop_after_acks) {
  Testbed tb;
  tb.add_node("node1");
  tb.add_node("node2");
  tcp::TcpLayer tcp1(tb.node("node1"));
  tcp::TcpLayer tcp2(tb.node("node2"));
  tcp::BulkSink sink(tcp2, 16384);
  tcp::BulkSender::Params sp;
  sp.dst_ip = tb.node("node2").ip();
  sp.dst_port = 16384;
  sp.src_port = 24576;
  sp.total_bytes = 0;
  tcp::BulkSender sender(tcp1, sp);

  ScenarioRunner runner(tb);
  ScenarioSpec spec;
  spec.script = std::string(kFilters) + tb.node_table_fsl() +
                scenario(stop_after_acks);
  spec.workload = [&] { sender.start(); };
  spec.options.deadline = seconds(30);
  auto result = runner.run(spec);

  RunResult out;
  auto conn = sender.connection();
  out.pass = result.passed() && result.stopped;
  out.cwnd_model = result.counters["CWND"];
  out.cwnd_impl = conn->congestion().cwnd();
  out.ssthresh_impl = conn->congestion().ssthresh();
  out.in_ca = !conn->congestion().in_slow_start();
  out.syn_rexmit = conn->stats().syn_retransmits;
  return out;
}

}  // namespace

int main() {
  std::printf("# Fig 5 / §6.1 — TCP slow-start → congestion-avoidance "
              "transition\n");
  std::printf("# Fault: first SYNACK dropped at node1 → SYN retransmission "
              "→ ssthresh=2, cwnd=1\n");
  std::printf("%-12s %-8s %-12s %-10s %-10s %-6s %-10s\n", "acks", "verdict",
              "model CWND", "impl cwnd", "ssthresh", "CA?", "syn rexmit");
  bool all = true;
  for (int acks : {20, 50, 100, 150, 300}) {
    RunResult r = run_once(acks);
    bool ok = r.pass && r.cwnd_model == static_cast<i64>(r.cwnd_impl) &&
              r.ssthresh_impl == 2 && r.in_ca && r.syn_rexmit == 1;
    all = all && ok;
    std::printf("%-12d %-8s %-12lld %-10u %-10u %-6s %-10llu\n", acks,
                r.pass ? "PASS" : "FAIL", static_cast<long long>(r.cwnd_model),
                r.cwnd_impl, r.ssthresh_impl, r.in_ca ? "yes" : "no",
                static_cast<unsigned long long>(r.syn_rexmit));
  }
  std::printf("# paper result: Linux 2.4.17 'behaved correctly by switching "
              "to congestion avoidance'\n");
  std::printf("# our result:   %s\n",
              all ? "implementation PASSES at every checkpoint"
                  : "MISMATCH — see rows above");
  return all ? 0 : 1;
}
