// Ablation: Rether's real-time reservation (the protocol's reason to
// exist — software bandwidth guarantees on shared Ethernet).
//
// A 3-node ring carries a paced real-time stream from n2 while n2 ITSELF
// also pushes bulk best-effort traffic (token round-robin already isolates
// nodes from each other, so the interesting contention is a node's own
// mixed workload).  Without a reservation the RT frames queue FIFO behind
// the node's best-effort backlog and their inter-arrival gaps balloon;
// with one they bypass the backlog and keep their cadence.
#include <cstdio>

#include "vwire/core/api/testbed.hpp"
#include "vwire/rether/rether_layer.hpp"
#include "vwire/udp/udp_layer.hpp"

using namespace vwire;

namespace {

struct Outcome {
  int rt_delivered{0};
  int be_delivered{0};
  double max_rt_gap_ms{0};  ///< worst inter-arrival gap of the RT stream
};

Outcome run(bool with_reservation, double flood_rate_fps) {
  TestbedConfig cfg;
  cfg.medium = TestbedConfig::MediumKind::kSharedBus;
  cfg.install_engine = false;
  cfg.install_rll = false;
  cfg.install_trace = false;
  Testbed tb(cfg);
  const char* names[] = {"n1", "n2", "n3"};
  std::vector<net::MacAddress> ring;
  for (const char* n : names) {
    tb.add_node(n);
    ring.push_back(tb.node(n).mac());
  }
  rether::RetherParams rp;
  rp.hold_quantum_frames = 2;
  rp.target_cycle = millis(3);
  std::vector<rether::RetherLayer*> layers;
  for (const char* n : names) {
    layers.push_back(static_cast<rether::RetherLayer*>(&tb.node(n).add_layer(
        std::make_unique<rether::RetherLayer>(tb.simulator(), rp, ring))));
  }
  udp::UdpLayer u1(tb.node("n1")), u2(tb.node("n2")), u3(tb.node("n3"));

  Outcome o;
  TimePoint last_rt{.ns = -1};
  u3.bind(9, [&](net::Ipv4Address, u16 sport, BytesView) {
    if (sport == 50001) {
      ++o.rt_delivered;
      if (last_rt.ns >= 0) {
        o.max_rt_gap_ms =
            std::max(o.max_rt_gap_ms, (tb.simulator().now() - last_rt).millis_f());
      }
      last_rt = tb.simulator().now();
    } else {
      ++o.be_delivered;
    }
  });
  layers[1]->set_rt_classifier([](const net::Packet& pkt) {
    return pkt.size() > 36 && read_u16(pkt.view(), 34) == 50001;
  });

  for (std::size_t i = 0; i < layers.size(); ++i) layers[i]->start(i == 0);
  tb.simulator().run_until({millis(5).ns});
  if (with_reservation) {
    layers[1]->request_reservation(2);
    tb.simulator().run_until({millis(25).ns});
  }

  // Bulk best-effort flood from n2 itself for 300 ms; the RT stream
  // (also from n2) must share the node's token holds with it.
  const Duration window = millis(300);
  int flood_frames = static_cast<int>(flood_rate_fps * window.seconds());
  for (int i = 0; i < flood_frames; ++i) {
    tb.simulator().after(seconds_f(i / flood_rate_fps), [&] {
      u2.send(tb.node("n3").ip(), 9, 50000, Bytes(1400, 0));
    });
  }
  (void)u1;
  const int rt_frames = static_cast<int>(window.ns / millis(2).ns);
  for (int i = 0; i < rt_frames; ++i) {
    tb.simulator().after(millis(2) * i, [&] {
      u2.send(tb.node("n3").ip(), 9, 50001, Bytes(700, 1));
    });
  }
  tb.simulator().run_until(tb.simulator().now() + window + millis(100));
  for (auto* l : layers) l->stop();
  return o;
}

}  // namespace

int main() {
  std::printf("# Rether RT reservation ablation — 150 RT frames offered at\n");
  std::printf("# 500 f/s from n2 while n2 also floods best-effort bulk\n");
  std::printf("%-16s %-18s %14s %14s %16s\n", "flood (f/s)", "reservation",
              "RT delivered", "BE delivered", "max RT gap ms");
  for (double flood : {1000.0, 3000.0, 6000.0}) {
    for (bool rsv : {false, true}) {
      Outcome o = run(rsv, flood);
      std::printf("%-16.0f %-18s %11d/150 %14d %16.2f\n", flood,
                  rsv ? "2 frames/cycle" : "none", o.rt_delivered,
                  o.be_delivered, o.max_rt_gap_ms);
    }
  }
  std::printf("# expectation: with the reservation the RT stream keeps its\n");
  std::printf("# ~3 ms cycle cadence at every flood rate; without it the RT\n");
  std::printf("# frames queue behind the bulk backlog and gaps balloon.\n");
  return 0;
}
