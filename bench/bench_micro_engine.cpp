// Microbenchmark: real wall-clock cost of the packet classifier on this
// machine, swept over the number of packet type definitions.
//
// The paper's Fig 8 curve is linear because "the current VirtualWire
// implementation searches linearly through the packet type definitions for
// the exact match" (§7).  This bench shows the same linearity holds for
// this implementation's real CPU cost, independent of the simulated-cost
// model used by bench_fig8_latency.
#include <benchmark/benchmark.h>

#include "vwire/core/engine/classifier.hpp"
#include "vwire/net/tcp_header.hpp"

using namespace vwire;

namespace {

core::FilterTable make_filters(int n) {
  core::FilterTable t;
  for (int i = 0; i < n - 1; ++i) {
    core::FilterEntry e;
    e.name = "decoy" + std::to_string(i);
    e.tuples.push_back({34, 2, 0xffff, static_cast<u64>(0x7100 + i),
                        core::kInvalidId});
    e.tuples.push_back({36, 2, 0xffff, 0x0001, core::kInvalidId});
    t.entries.push_back(std::move(e));
  }
  core::FilterEntry match;
  match.name = "tcp_data";
  match.tuples.push_back({34, 2, 0xffff, 0x6000, core::kInvalidId});
  match.tuples.push_back({36, 2, 0xffff, 0x4000, core::kInvalidId});
  match.tuples.push_back({47, 1, 0x10, 0x10, core::kInvalidId});
  t.entries.push_back(std::move(match));
  return t;
}

Bytes make_tcp_frame() {
  Bytes l4(net::TcpHeader::kSize + 512);
  net::TcpHeader h;
  h.src_port = 0x6000;
  h.dst_port = 0x4000;
  h.flags = net::tcp_flags::kAck;
  net::Ipv4Address src(0x0a000001), dst(0x0a000002);
  h.write(l4, 0, BytesView(l4).subspan(net::TcpHeader::kSize), src, dst);
  Bytes ip_l4(net::Ipv4Header::kSize + l4.size());
  net::Ipv4Header ip;
  ip.total_length = static_cast<u16>(ip_l4.size());
  ip.protocol = 6;
  ip.src = src;
  ip.dst = dst;
  ip.write(ip_l4, 0);
  std::copy(l4.begin(), l4.end(), ip_l4.begin() + net::Ipv4Header::kSize);
  return net::make_frame(net::MacAddress::from_index(1),
                         net::MacAddress::from_index(0),
                         static_cast<u16>(net::EtherType::kIpv4), ip_l4);
}

void BM_ClassifyLinear(benchmark::State& state) {
  auto table = make_filters(static_cast<int>(state.range(0)));
  core::Classifier cls(table);
  core::VarStore vars(0);
  Bytes frame = make_tcp_frame();
  for (auto _ : state) {
    auto r = cls.classify(frame, vars);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ClassifyMiss(benchmark::State& state) {
  // Worst case: the frame matches nothing and every entry is scanned.
  auto table = make_filters(static_cast<int>(state.range(0)));
  core::Classifier cls(table);
  core::VarStore vars(0);
  Bytes frame = make_tcp_frame();
  write_u16(frame, 34, 0x1234);  // break the port match
  for (auto _ : state) {
    auto r = cls.classify(frame, vars);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_ClassifyLinear)->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100);
BENCHMARK(BM_ClassifyMiss)->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100);
