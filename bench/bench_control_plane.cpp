// Control-plane cost: what distributed rules pay (paper §5.2).
//
// A rule whose counter, term and action live on one node fires with zero
// control traffic.  A rule spanning nodes ("a counter on one node ... can
// trigger an action on another node") needs counter-update / term-status
// messages on the wire, so the action fires one control-message flight
// time after the triggering packet.  This bench measures both.
#include <cstdio>

#include "bench_common.hpp"
#include "vwire/udp/udp_layer.hpp"

using namespace vwire;

namespace {

struct Outcome {
  u64 control_frames{0};   ///< control messages that crossed the wire
  double action_delay_us{-1.0};  ///< trigger packet → FAIL visible
};

Outcome run(bool remote_action) {
  TestbedConfig cfg;
  cfg.install_trace = false;
  Testbed tb(cfg);
  tb.add_node("a");
  tb.add_node("b");
  tb.add_node("c");
  udp::UdpLayer ua(tb.node("a"));
  udp::UdpLayer ub(tb.node("b"));
  ub.bind(9, [](net::Ipv4Address, u16, BytesView) {});

  // Counter lives at b (RECV side).  Local: FAIL(b).  Remote: FAIL(c) —
  // the condition must be evaluated on c, fed by b's term status.
  std::string scenario =
      std::string("SCENARIO ctl\n"
                  "  REQ: (udp_req, a, b, RECV)\n"
                  "  (TRUE) >> ENABLE_CNTR(REQ);\n"
                  "  ((REQ = 10)) >> FAIL(") +
      (remote_action ? "c" : "b") + ");\nEND\n";
  std::string script =
      "FILTER_TABLE\n"
      "  udp_req: (12 2 0x0800), (23 1 0x11), (34 2 0x9c40), (36 2 0x0009)\n"
      "END\n" +
      tb.node_table_fsl() + scenario;

  control::Controller ctrl(tb.simulator(), tb.managed_nodes(), "a");
  control::RunOptions opts;
  opts.heartbeat_period = {};  // no liveness beacons in the measurement
  ctrl.arm(fsl::compile_script(script), opts);

  u64 ctl_before = tb.handles("a").agent->stats().rx_messages +
                   tb.handles("b").agent->stats().rx_messages +
                   tb.handles("c").agent->stats().rx_messages;

  Bytes payload(64, 0);
  TimePoint trigger_seen{};
  host::Node& target = tb.node(remote_action ? "c" : "b");
  for (int i = 0; i < 10; ++i) {
    tb.simulator().after(millis(1) * i, [&, i] {
      ua.send(tb.node("b").ip(), 9, 40000, payload);
      if (i == 9) trigger_seen = tb.simulator().now();
    });
  }
  // Watch for the FAIL taking effect.
  Outcome o;
  sim::Simulator& sim = tb.simulator();
  while (sim.now() < TimePoint{seconds(1).ns}) {
    sim.run_until(sim.now() + micros(5));
    if (target.failed()) {
      o.action_delay_us = (sim.now() - trigger_seen).micros_f();
      break;
    }
  }
  u64 ctl_after = tb.handles("a").agent->stats().rx_messages +
                  tb.handles("b").agent->stats().rx_messages +
                  tb.handles("c").agent->stats().rx_messages;
  o.control_frames = ctl_after - ctl_before;
  return o;
}

}  // namespace

int main() {
  std::printf("# Control-plane cost of rule distribution (paper §5.2)\n");
  std::printf("%-24s %18s %24s\n", "rule placement", "control frames",
              "trigger→action (us)");
  Outcome local = run(false);
  Outcome remote = run(true);
  std::printf("%-24s %18llu %24.1f\n", "counter+action local",
              static_cast<unsigned long long>(local.control_frames),
              local.action_delay_us);
  std::printf("%-24s %18llu %24.1f\n", "action on remote node",
              static_cast<unsigned long long>(remote.control_frames),
              remote.action_delay_us);
  std::printf("# expectation: the local rule fires with no control frames "
              "and negligible delay;\n");
  std::printf("# the remote rule pays one term-status flight "
              "(~wire latency).\n");
  return 0;
}
