// Microbenchmark: FSL front-end speed — tokenize, parse, and full compile
// of the paper's two published scripts.  The front-end runs once per test
// case on the control node (paper §5.1), so this is not hot-path, but it
// bounds regression-suite startup cost.
#include <benchmark/benchmark.h>

#include "vwire/core/fsl/compiler.hpp"
#include "vwire/core/fsl/parser.hpp"

namespace {

const char* kFig5 = R"(
FILTER_TABLE
  TCP_syn:    (34 2 0x6000), (36 2 0x4000), (47 1 0x02 0x02)
  TCP_synack: (34 2 0x4000), (36 2 0x6000), (47 1 0x12 0x12)
  TCP_data:   (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
  TCP_ack:    (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)
END
NODE_TABLE
  node1 00:46:61:af:fe:23 192.168.1.1
  node2 00:23:31:df:af:12 192.168.1.2
END
SCENARIO TCP_SS_CA_algo
  SYNACK:   (TCP_synack, node2, node1, RECV)
  SA_ACK:   (TCP_data, node1, node2, SEND)
  DATA:     (TCP_data, node1, node2, SEND)
  ACK:      (TCP_ack, node2, node1, RECV)
  CWND:     (node1)
  CanTx:    (node1)
  CCNT:     (node1)
  SSTHRESH: (node1)
  (TRUE) >> ENABLE_CNTR(SYNACK); ENABLE_CNTR(SA_ACK); ENABLE_CNTR(ACK);
            ASSIGN_CNTR(CWND, 1); ASSIGN_CNTR(CanTx, 1);
            ENABLE_CNTR(CCNT); ASSIGN_CNTR(SSTHRESH, 2);
  ((SYNACK > 0) && (SYNACK < 2)) >> DROP TCP_synack, node2, node1, RECV;
  ((SA_ACK = 1)) >> ENABLE_CNTR(DATA); DISABLE_CNTR(SA_ACK);
  ((DATA = 1)) >> RESET_CNTR(DATA); DECR_CNTR(CanTx, 1);
  ((CWND <= SSTHRESH) && (ACK = 1)) >> RESET_CNTR(ACK);
            INCR_CNTR(CWND, 1); INCR_CNTR(CanTx, 2);
  ((CWND > SSTHRESH) && (ACK = 1)) >> RESET_CNTR(ACK);
            INCR_CNTR(CanTx, 1); INCR_CNTR(CCNT, 1);
  ((CWND > SSTHRESH) && (CCNT > CWND)) >> RESET_CNTR(CCNT);
            INCR_CNTR(CWND, 1); INCR_CNTR(CanTx, 1);
  ((CanTx < 0)) >> FLAG_ERROR;
END
)";

const char* kFig6 = R"(
FILTER_TABLE
  tr_token:     (12 2 0x9900), (14 2 0x0001)
  tr_token_ack: (12 2 0x9900), (14 2 0x0010)
  TCP_data:     (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END
NODE_TABLE
  node1 02:00:00:00:00:00 10.0.0.1
  node2 02:00:00:00:00:01 10.0.0.2
  node3 02:00:00:00:00:02 10.0.0.3
  node4 02:00:00:00:00:03 10.0.0.4
END
SCENARIO Test_Single_Node_Failure 1sec
  CNT_DATA:    (TCP_data, node1, node4, RECV)
  TokensTo2:   (tr_token, node1, node2, RECV)
  TokensFrom2: (tr_token, node2, node3, SEND)
  TokensTo4:   (tr_token, node2, node4, RECV)
  TokensTo1:   (tr_token, node4, node1, RECV)
  (TRUE) >> ENABLE_CNTR(CNT_DATA);
  ((CNT_DATA > 1000)) >> ENABLE_CNTR(TokensTo2);
  ((TokensTo2 = 1)) >> FAIL(node3); ENABLE_CNTR(TokensFrom2);
            RESET_CNTR(TokensTo2);
  ((TokensFrom2 = 3)) >> ENABLE_CNTR(TokensTo4);
  ((TokensTo4 = 1)) >> ENABLE_CNTR(TokensTo1);
  ((TokensFrom2 > 3)) >> FLAG_ERROR;
  ((TokensTo2 = 1) && (TokensTo4 = 1) && (TokensTo1 = 1)) >> STOP;
END
)";

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    auto toks = vwire::fsl::tokenize(kFig5);
    benchmark::DoNotOptimize(toks);
  }
}

void BM_ParseFig5(benchmark::State& state) {
  for (auto _ : state) {
    auto ast = vwire::fsl::parse_script(kFig5);
    benchmark::DoNotOptimize(ast);
  }
}

void BM_CompileFig5(benchmark::State& state) {
  for (auto _ : state) {
    auto tables = vwire::fsl::compile_script(kFig5);
    benchmark::DoNotOptimize(tables);
  }
}

void BM_CompileFig6(benchmark::State& state) {
  for (auto _ : state) {
    auto tables = vwire::fsl::compile_script(kFig6);
    benchmark::DoNotOptimize(tables);
  }
}

void BM_SerializeRoundTrip(benchmark::State& state) {
  auto tables = vwire::fsl::compile_script(kFig6);
  for (auto _ : state) {
    auto bytes = vwire::core::serialize(tables);
    auto back = vwire::core::deserialize_tables(bytes);
    benchmark::DoNotOptimize(back);
  }
}

}  // namespace

BENCHMARK(BM_Tokenize);
BENCHMARK(BM_ParseFig5);
BENCHMARK(BM_CompileFig5);
BENCHMARK(BM_CompileFig6);
BENCHMARK(BM_SerializeRoundTrip);
