#include "vwire/service/quota.hpp"

#include <algorithm>

namespace vwire::service {

Admission AdmissionController::admit(const std::string& tenant,
                                     std::size_t trials,
                                     std::size_t tenant_active,
                                     std::size_t queued_total,
                                     std::size_t backlog_trials,
                                     bool draining) const {
  Admission a;
  if (draining) {
    a.admitted = false;
    a.code = "draining";
    a.detail = "daemon is draining; submit to the next instance";
    a.retry_after_ms = retry_after_hint(backlog_trials);
    return a;
  }
  if (trials > cfg_.max_trials_per_campaign) {
    // A permanently-too-big request: no retry hint, resubmitting the same
    // campaign later will never help.
    a.admitted = false;
    a.code = "over-quota";
    a.detail = "campaign requests " + std::to_string(trials) +
               " trials; per-campaign cap is " +
               std::to_string(cfg_.max_trials_per_campaign);
    a.retry_after_ms = -1;
    return a;
  }
  if (tenant_active >= cfg_.max_active_per_tenant) {
    a.admitted = false;
    a.code = "over-quota";
    a.detail = "tenant '" + tenant + "' already has " +
               std::to_string(tenant_active) +
               " active campaign(s); per-tenant cap is " +
               std::to_string(cfg_.max_active_per_tenant);
    a.retry_after_ms = retry_after_hint(backlog_trials);
    return a;
  }
  if (queued_total >= cfg_.max_queue_depth) {
    a.admitted = false;
    a.code = "over-quota";
    a.detail = "queue is full (" + std::to_string(queued_total) + "/" +
               std::to_string(cfg_.max_queue_depth) + " campaigns waiting)";
    a.retry_after_ms = retry_after_hint(backlog_trials);
    return a;
  }
  return a;
}

void AdmissionController::observe_trial_ms(double ms) {
  if (ms < 0) return;
  constexpr double kAlpha = 0.2;
  ewma_trial_ms_ = (1.0 - kAlpha) * ewma_trial_ms_ + kAlpha * ms;
}

i64 AdmissionController::retry_after_hint(std::size_t backlog_trials) const {
  const double est =
      ewma_trial_ms_ * static_cast<double>(std::max<std::size_t>(
                           backlog_trials, 1));
  return static_cast<i64>(std::clamp(est, 100.0, 60'000.0));
}

}  // namespace vwire::service
