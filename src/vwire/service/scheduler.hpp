// Campaign scheduler for vwired (DESIGN.md §11): a bounded multi-tenant
// job queue in front of the chaos engine.
//
// Submits pass admission control (service/quota.hpp) and join a FIFO
// served by a fixed pool of runner threads — one campaign per runner at a
// time, so a tenant's 100k-trial soak cannot starve the daemon of
// threads, only of queue position.  Every completed trial is journaled to
// `<checkpoint_dir>/<job>.journal` (chaos/checkpoint.hpp) as it finishes,
// which buys two things at once: crash recovery (resume_from_dir() after
// a restart re-runs only uncovered trials) and graceful drain
// (begin_drain() lets in-flight trials finish, checkpoints the rest, and
// a later instance picks the jobs back up byte-identically).
//
// Thread model: one mutex guards the queue, the job table, admission
// bookkeeping and the metrics registry.  Campaign trials run outside the
// lock; the per-trial hook re-enters it briefly to bump progress.  The
// progress hook the daemon installs is invoked *without* the lock held.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "vwire/chaos/campaign.hpp"
#include "vwire/obs/metrics.hpp"
#include "vwire/service/quota.hpp"

namespace vwire::service {

enum class JobState {
  kQueued,
  kRunning,
  kDone,          ///< ran to completion (possibly with failing trials)
  kFailed,        ///< infrastructure error (bad fixture, harness threw)
  kCheckpointed,  ///< drained mid-run; journal covers completed trials
};
const char* to_string(JobState s);

/// Point-in-time view of one job, safe to hand across threads.
struct JobSnapshot {
  std::string id;
  std::string tenant;
  JobState state{JobState::kQueued};
  u64 completed{0};  ///< trials finished (journaled + restored)
  u64 total{0};
  u64 failures{0};   ///< trials with violations so far
  bool has_repro{false};
  std::string error;  ///< kFailed detail
};

struct SchedulerConfig {
  QuotaConfig quota;
  std::size_t runners{2};
  /// Journal directory; empty disables checkpointing (jobs still run,
  /// they just cannot survive a restart).
  std::string checkpoint_dir;
};

struct SubmitOutcome {
  Admission admission;
  std::string job_id;  ///< set iff admission.admitted
};

class CampaignScheduler {
 public:
  explicit CampaignScheduler(SchedulerConfig cfg);
  ~CampaignScheduler();  ///< begin_drain() + join()

  CampaignScheduler(const CampaignScheduler&) = delete;
  CampaignScheduler& operator=(const CampaignScheduler&) = delete;

  /// Admission-checked enqueue.  The campaign's fixture name is validated
  /// here (unknown fixture → rejected as bad-request-shaped failure via
  /// Admission{code="bad-request"}) so a runner thread never throws on a
  /// typo.
  SubmitOutcome submit(const std::string& tenant,
                       chaos::CampaignConfig campaign);

  std::optional<JobSnapshot> status(const std::string& id) const;
  /// All jobs, oldest first; non-empty `tenant` filters.
  std::vector<JobSnapshot> list(const std::string& tenant = "") const;

  /// Full campaign-summary JSON; nullopt until the job is kDone.
  std::optional<std::string> summary_json(const std::string& id) const;
  /// Minimized repro artifact JSON; nullopt unless the job finished with
  /// one.
  std::optional<std::string> artifact_json(const std::string& id) const;

  /// Invoked (lock NOT held) after every completed trial and on every
  /// job-state transition.  At most one hook; installing replaces.
  using ProgressHook = std::function<void(const JobSnapshot&)>;
  void set_progress_hook(ProgressHook hook);

  /// Graceful drain, non-blocking: stop admitting, checkpoint queued jobs
  /// without running them, and flip the cancel flag campaigns poll — each
  /// runner finishes its in-flight trial, journals it, and parks the job
  /// as kCheckpointed.  Call join() afterwards to wait.
  void begin_drain();
  bool draining() const;
  /// No job queued or running.
  bool idle() const;
  /// Waits for all runner threads to exit (valid only after begin_drain()).
  void join();

  /// Scans checkpoint_dir for *.journal files and re-enqueues every job
  /// whose journal is readable, bypassing admission (they were admitted
  /// once already).  Fully-journaled jobs finalize instantly.  Returns
  /// the number of jobs resumed; unreadable journals are skipped.
  std::size_t resume_from_dir();

  /// {"v":1,"type":"stats",...} — queue occupancy plus every service.*
  /// counter (per-tenant submitted/shed/trials).
  std::string stats_json() const;

  /// Point-in-time registry snapshot plus synthesized queue-state gauges
  /// (service.jobs.queued/running/done/failed/checkpointed and
  /// service.draining), name-sorted — the source for both the Prometheus
  /// `metrics` verb and the watch stream's metrics_delta frames.
  std::vector<obs::MetricsRegistry::Sample> metrics_samples() const;

  /// Prometheus text exposition of metrics_samples() (obs/prometheus.hpp).
  std::string metrics_exposition() const;

  const SchedulerConfig& config() const { return cfg_; }

 private:
  struct Job {
    std::string id;
    std::string tenant;
    chaos::CampaignConfig campaign;
    JobState state{JobState::kQueued};
    u64 completed{0};
    u64 total{0};
    u64 failures{0};
    bool resumed{false};  ///< journal already exists; open it for append
    std::vector<chaos::TrialResult> restored;
    std::string summary;   ///< CampaignSummary::to_json() once kDone
    std::string artifact;  ///< ReproArtifact::to_json() when present
    std::string error;
  };

  JobSnapshot snapshot_locked(const Job& j) const;
  std::string journal_path(const std::string& id) const;
  void runner_loop();
  void run_job(const std::string& id);

  SchedulerConfig cfg_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Job> jobs_;
  std::deque<std::string> queue_;
  std::size_t running_{0};
  u64 next_id_{1};
  ProgressHook hook_;
  obs::MetricsRegistry metrics_;

  std::atomic<bool> drain_{false};
  bool shutdown_{false};
  std::vector<std::thread> runners_;
  bool joined_{false};
};

}  // namespace vwire::service
