#include "vwire/service/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <system_error>

#include "vwire/obs/json.hpp"

namespace vwire::service {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string render_snapshot(const JobSnapshot& s) {
  std::string out = "\"job\":\"";
  out += obs::json_escape(s.id);
  out += "\",\"tenant\":\"";
  out += obs::json_escape(s.tenant);
  out += "\",\"state\":\"";
  out += to_string(s.state);
  out += "\",\"completed\":" + std::to_string(s.completed);
  out += ",\"total\":" + std::to_string(s.total);
  out += ",\"failures\":" + std::to_string(s.failures);
  out += ",\"has_repro\":";
  out += s.has_repro ? "true" : "false";
  if (!s.error.empty()) {
    out += ",\"error\":\"";
    out += obs::json_escape(s.error);
    out += '"';
  }
  return out;
}

}  // namespace

Daemon::Daemon(DaemonConfig cfg)
    : cfg_(std::move(cfg)), sched_(cfg_.scheduler) {}

Daemon::~Daemon() {
  // Quiesce the runners before closing the self-pipe their progress hook
  // writes to (sched_ is destroyed after this body runs).
  sched_.begin_drain();
  sched_.join();
  sched_.set_progress_hook(nullptr);
  for (Client& c : clients_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(cfg_.socket_path.c_str());
  }
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

bool Daemon::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "vwired: socket path '%s' is too long (max %zu)\n",
                 cfg_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
    return false;
  }
  std::memcpy(addr.sun_path, cfg_.socket_path.c_str(),
              cfg_.socket_path.size() + 1);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    std::perror("vwired: pipe");
    return false;
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("vwired: socket");
    return false;
  }
  ::unlink(cfg_.socket_path.c_str());  // stale socket from a dead instance
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    // std::strerror is not thread-safe (concurrency-mt-unsafe); the
    // error_code route allocates but never races.
    std::fprintf(stderr, "vwired: bind %s: %s\n", cfg_.socket_path.c_str(),
                 std::error_code(errno, std::system_category())
                     .message()
                     .c_str());
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    std::perror("vwired: listen");
    return false;
  }
  set_nonblocking(listen_fd_);

  sched_.set_progress_hook([this](const JobSnapshot& s) {
    {
      const std::scoped_lock lock(ev_mu_);
      events_.push_back(s);
    }
    const char b = 'p';
    [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
  });

  if (cfg_.resume) {
    const std::size_t n = sched_.resume_from_dir();
    if (n > 0) {
      std::printf("vwired: resumed %zu checkpointed campaign(s)\n", n);
    }
  }
  return true;
}

void Daemon::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_relaxed);
  const char b = 's';
  [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
}

void Daemon::enqueue(Client& c, std::string_view frame) {
  c.out.append(frame);
  c.out.push_back('\n');
}

void Daemon::close_client(Client& c) {
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
}

void Daemon::handle_line(Client& c, std::string_view line) {
  if (line.empty()) return;
  Request req;
  try {
    req = parse_request(line);
  } catch (const ProtocolError& e) {
    enqueue(c, build_error(e.code(), e.what()));
    return;
  }
  switch (req.type) {
    case Request::Type::kPing:
      enqueue(c, build_ok("\"type\":\"pong\""));
      return;
    case Request::Type::kSubmit: {
      const SubmitOutcome out = sched_.submit(req.tenant, req.campaign);
      if (!out.admission.admitted) {
        enqueue(c, build_error(out.admission.code, out.admission.detail,
                               out.admission.retry_after_ms));
        return;
      }
      enqueue(c, build_ok("\"job\":\"" + obs::json_escape(out.job_id) +
                          "\",\"state\":\"queued\""));
      return;
    }
    case Request::Type::kStatus: {
      const std::optional<JobSnapshot> s = sched_.status(req.job);
      if (!s) {
        enqueue(c, build_error("not-found", "no job '" + req.job + "'"));
        return;
      }
      enqueue(c, build_ok(render_snapshot(*s)));
      return;
    }
    case Request::Type::kList: {
      std::string fields = "\"jobs\":[";
      bool first = true;
      for (const JobSnapshot& s : sched_.list(req.tenant)) {
        if (!first) fields += ',';
        first = false;
        fields += '{' + render_snapshot(s) + '}';
      }
      fields += ']';
      enqueue(c, build_ok(fields));
      return;
    }
    case Request::Type::kSummary: {
      const std::optional<std::string> j = sched_.summary_json(req.job);
      if (!j) {
        enqueue(c, build_error("not-found",
                               "job '" + req.job +
                                   "' is unknown or not finished"));
        return;
      }
      // The summary is a multi-line document; the wire is one-frame-per-
      // line, so it travels as an escaped string field.
      enqueue(c, build_ok("\"job\":\"" + obs::json_escape(req.job) +
                          "\",\"summary\":\"" + obs::json_escape(*j) + "\""));
      return;
    }
    case Request::Type::kArtifact: {
      const std::optional<std::string> a = sched_.artifact_json(req.job);
      if (!a) {
        enqueue(c, build_error("not-found",
                               "no repro artifact for job '" + req.job + "'"));
        return;
      }
      enqueue(c, build_ok("\"job\":\"" + obs::json_escape(req.job) +
                          "\",\"artifact\":\"" + obs::json_escape(*a) + "\""));
      return;
    }
    case Request::Type::kWatch: {
      const std::optional<JobSnapshot> s = sched_.status(req.job);
      if (!s) {
        enqueue(c, build_error("not-found", "no job '" + req.job + "'"));
        return;
      }
      c.watch_job = req.job;
      enqueue(c, build_ok(render_snapshot(*s)));
      return;
    }
    case Request::Type::kStats:
      enqueue(c, sched_.stats_json());
      return;
    case Request::Type::kMetrics:
      // The exposition is multi-line text; the wire is one-frame-per-line,
      // so it travels escaped (the client unescapes before printing).
      enqueue(c, build_ok("\"type\":\"metrics\",\"exposition\":\"" +
                          obs::json_escape(sched_.metrics_exposition()) +
                          "\""));
      return;
    case Request::Type::kDrain:
      sched_.begin_drain();
      drain_started_ = true;
      enqueue(c, build_ok("\"draining\":true"));
      return;
  }
  enqueue(c, build_error("unknown-type", "unhandled request type"));
}

void Daemon::pump_progress() {
  std::deque<JobSnapshot> batch;
  {
    const std::scoped_lock lock(ev_mu_);
    batch.swap(events_);
  }
  for (const JobSnapshot& s : batch) {
    for (Client& c : clients_) {
      if (c.fd < 0 || c.watch_job != s.id) continue;
      enqueue(c, build_progress(s.id, s.completed, s.total, s.failures,
                                to_string(s.state)));
      // Terminal event: the stream is over; unsubscribe server-side so a
      // later job reusing nothing keeps this connection usable for
      // request/response traffic again.
      if (s.state != JobState::kQueued && s.state != JobState::kRunning) {
        c.watch_job.clear();
        c.last_metrics.clear();  // a later watch starts its deltas fresh
      }
    }
  }
}

void Daemon::pump_metrics_deltas() {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point now = Clock::now();
  if (now - last_delta_ < std::chrono::milliseconds(250)) return;
  bool any_watch = false;
  for (const Client& c : clients_) {
    if (c.fd >= 0 && !c.watch_job.empty()) {
      any_watch = true;
      break;
    }
  }
  if (!any_watch) return;  // don't touch the scheduler lock for nobody
  last_delta_ = now;

  // One snapshot serves every watcher; histograms stream their count (the
  // scheduler registry is counters/gauges today, but stay future-proof).
  const std::vector<obs::MetricsRegistry::Sample> samples =
      sched_.metrics_samples();
  for (Client& c : clients_) {
    if (c.fd < 0 || c.watch_job.empty()) continue;
    std::vector<std::pair<std::string, double>> changed;
    for (const obs::MetricsRegistry::Sample& s : samples) {
      const double v = s.kind == obs::MetricKind::kHistogram
                           ? static_cast<double>(s.hist.count)
                           : s.value;
      auto it = c.last_metrics.find(s.name);
      if (it != c.last_metrics.end() && it->second == v) continue;
      c.last_metrics[s.name] = v;
      changed.emplace_back(s.name, v);
    }
    // Emit even when nothing moved: the stream is the liveness signal a
    // dashboard hangs its staleness alarm on.
    enqueue(c, build_metrics_delta(changed));
  }
}

int Daemon::serve() {
  std::vector<pollfd> pfds;
  for (;;) {
    // Drain completion: every runner idle, every journal flushed.  Give
    // clients one last chance to read buffered responses, then leave.
    if (drain_started_ && sched_.idle()) {
      sched_.begin_drain();  // idempotent; covers the SIGTERM path
      sched_.join();
      pump_progress();
      // Best-effort flush of remaining output (bounded, non-blocking).
      for (Client& c : clients_) {
        if (c.fd < 0 || c.out.empty()) continue;
        const ssize_t n =
            ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
        (void)n;
        close_client(c);
      }
      return 0;
    }

    pfds.clear();
    pfds.push_back({wake_r_, POLLIN, 0});
    if (!drain_started_) pfds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t client_base = pfds.size();
    for (Client& c : clients_) {
      if (c.fd < 0) continue;
      short ev = POLLIN;
      if (!c.out.empty()) ev |= POLLOUT;
      pfds.push_back({c.fd, ev, 0});
    }

    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      std::perror("vwired: poll");
      return 1;
    }

    // Self-pipe: progress events and/or a shutdown request.
    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_r_, buf, sizeof buf) > 0) {
      }
    }
    if (shutdown_requested_.load(std::memory_order_relaxed) &&
        !drain_started_) {
      std::printf("vwired: draining (finishing in-flight trials, "
                  "checkpointing the rest)\n");
      sched_.begin_drain();
      drain_started_ = true;
    }
    pump_progress();
    pump_metrics_deltas();

    // New connections.
    if (!drain_started_) {
      for (std::size_t i = 1; i < client_base; ++i) {
        if (!(pfds[i].revents & POLLIN)) continue;
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking(fd);
          Client c;
          c.fd = fd;
          clients_.push_back(std::move(c));
        }
      }
    }

    // Client I/O.  pfds[client_base..] maps onto the live clients in
    // order; clients_ may have grown via accept, those have no revents
    // yet.
    std::size_t pi = client_base;
    for (Client& c : clients_) {
      if (c.fd < 0) continue;
      if (pi >= pfds.size()) break;  // accepted this round
      const short re = pfds[pi].revents;
      const int fd_at_poll = pfds[pi].fd;
      ++pi;
      if (fd_at_poll != c.fd) continue;  // defensive: list shifted
      if (re & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP with readable data still pending is read below next
        // round on Linux; for a control socket, dropping the remainder
        // on hangup is acceptable.
        close_client(c);
        continue;
      }
      if (re & POLLIN) {
        char buf[4096];
        for (;;) {
          const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
          if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            if (c.in.size() > (1 << 20)) break;  // be fair to other clients
            continue;
          }
          if (n == 0) {
            close_client(c);
          }
          break;  // n < 0: EAGAIN (or error: next poll reports it)
        }
        if (c.fd < 0) continue;
        // Frame extraction with oversize discipline.
        std::size_t start = 0;
        for (;;) {
          const std::size_t nl = c.in.find('\n', start);
          if (nl == std::string::npos) break;
          if (c.discarding) {
            c.discarding = false;  // the bad frame's tail ends here
          } else {
            handle_line(c, std::string_view(c.in).substr(start, nl - start));
          }
          start = nl + 1;
        }
        c.in.erase(0, start);
        if (!c.discarding && c.in.size() > kMaxFrameBytes) {
          enqueue(c, build_error("oversized-frame",
                                 "frame exceeds " +
                                     std::to_string(kMaxFrameBytes) +
                                     " bytes; discarding to next newline"));
          c.in.clear();
          c.discarding = true;
        } else if (c.discarding) {
          c.in.clear();
        }
      }
      if (c.fd >= 0 && !c.out.empty()) {
        const ssize_t n =
            ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
          c.out.erase(0, static_cast<std::size_t>(n));
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          close_client(c);
        }
      }
    }
    clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                  [](const Client& c) { return c.fd < 0; }),
                   clients_.end());
  }
}

}  // namespace vwire::service
