// Admission control for vwired (DESIGN.md §11): per-tenant quotas and
// global backpressure, decided *before* a campaign touches a runner.
//
// The controller is pure bookkeeping — it owns no jobs and no threads; the
// scheduler feeds it the current occupancy and it answers admit/shed.  A
// shed response always carries a retry_after_ms hint derived from an EWMA
// of observed per-trial wall-clock cost: the client learns roughly when
// capacity frees up instead of hammering the socket in a tight loop.
#pragma once

#include <cstddef>
#include <string>

#include "vwire/util/types.hpp"

namespace vwire::service {

struct QuotaConfig {
  /// Max campaigns a single tenant may have queued+running at once.
  std::size_t max_active_per_tenant{2};
  /// Max campaigns queued (not yet running) across all tenants.
  std::size_t max_queue_depth{16};
  /// Largest campaign a single submit may request.
  std::size_t max_trials_per_campaign{100000};
};

/// Verdict on one submit.  When !admitted, `code`/`detail` match the wire
/// protocol's error vocabulary and retry_after_ms is the backoff hint.
struct Admission {
  bool admitted{true};
  std::string code;
  std::string detail;
  i64 retry_after_ms{0};
};

class AdmissionController {
 public:
  explicit AdmissionController(QuotaConfig cfg) : cfg_(cfg) {}

  /// `tenant_active` = this tenant's queued+running jobs right now;
  /// `queued_total` = global queue occupancy; `backlog_trials` = trials
  /// not yet executed across all admitted jobs (sizes the retry hint).
  Admission admit(const std::string& tenant, std::size_t trials,
                  std::size_t tenant_active, std::size_t queued_total,
                  std::size_t backlog_trials, bool draining) const;

  /// Feed one completed trial's wall-clock cost into the EWMA.
  void observe_trial_ms(double ms);

  /// Estimated milliseconds until `backlog_trials` more trials have
  /// drained, clamped to [100ms, 60s] so the hint is always actionable.
  i64 retry_after_hint(std::size_t backlog_trials) const;

  const QuotaConfig& config() const { return cfg_; }

 private:
  QuotaConfig cfg_;
  /// Starts at a plausible per-trial cost so the very first shed already
  /// has a sane hint; alpha 0.2 tracks drift without jitter.
  double ewma_trial_ms_{20.0};
};

}  // namespace vwire::service
