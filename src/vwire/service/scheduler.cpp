#include "vwire/service/scheduler.hpp"

#include <dirent.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>

#include "vwire/chaos/checkpoint.hpp"
#include "vwire/obs/json.hpp"
#include "vwire/obs/prometheus.hpp"

namespace vwire::service {

namespace {

using WallClock = std::chrono::steady_clock;

/// Campaign knobs that live outside the checkpoint header's identity
/// fields travel in its free-form meta, so resume_from_dir() can rebuild
/// the exact CampaignConfig the job was admitted with.
std::map<std::string, std::string> journal_meta(
    const chaos::CampaignConfig& c, const std::string& tenant,
    const std::string& job) {
  return {
      {"tenant", tenant},
      {"job", job},
      {"workers", std::to_string(c.workers)},
      {"minimize", c.minimize ? "1" : "0"},
      {"stop_on_violation", c.stop_on_violation ? "1" : "0"},
      {"trial_timeout_ms", std::to_string(c.trial_timeout_ms)},
      {"retries", std::to_string(c.trial_retries)},
      {"minimize_budget_ms", std::to_string(c.minimize_budget_ms)},
  };
}

i64 meta_i64(const std::map<std::string, std::string>& meta,
             const std::string& key, i64 fallback) {
  auto it = meta.find(key);
  if (it == meta.end() || it->second.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return fallback;
  return static_cast<i64>(v);
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCheckpointed: return "checkpointed";
  }
  return "?";
}

CampaignScheduler::CampaignScheduler(SchedulerConfig cfg)
    : cfg_(std::move(cfg)), admission_(cfg_.quota) {
  if (cfg_.runners == 0) cfg_.runners = 1;
  runners_.reserve(cfg_.runners);
  for (std::size_t i = 0; i < cfg_.runners; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
}

CampaignScheduler::~CampaignScheduler() {
  {
    const std::scoped_lock lock(mu_);
    shutdown_ = true;
  }
  drain_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
  join();
}

JobSnapshot CampaignScheduler::snapshot_locked(const Job& j) const {
  JobSnapshot s;
  s.id = j.id;
  s.tenant = j.tenant;
  s.state = j.state;
  s.completed = j.completed;
  s.total = j.total;
  s.failures = j.failures;
  s.has_repro = !j.artifact.empty();
  s.error = j.error;
  return s;
}

std::string CampaignScheduler::journal_path(const std::string& id) const {
  return cfg_.checkpoint_dir + "/" + id + ".journal";
}

SubmitOutcome CampaignScheduler::submit(const std::string& tenant,
                                        chaos::CampaignConfig campaign) {
  SubmitOutcome out;

  // Fixture typos must bounce at the front door, not throw in a runner.
  const std::vector<std::string> known = chaos::harness_names();
  if (std::find(known.begin(), known.end(), campaign.fixture) == known.end()) {
    out.admission.admitted = false;
    out.admission.code = "bad-request";
    out.admission.detail = "unknown fixture '" + campaign.fixture + "'";
    out.admission.retry_after_ms = -1;
    const std::scoped_lock lock(mu_);
    ++metrics_.counter("service.shed." + tenant);
    return out;
  }

  const std::scoped_lock lock(mu_);
  std::size_t tenant_active = 0;
  std::size_t backlog_trials = 0;
  for (const auto& [id, j] : jobs_) {
    if (j.state == JobState::kQueued || j.state == JobState::kRunning) {
      if (j.tenant == tenant) ++tenant_active;
      backlog_trials += j.total > j.completed
                            ? static_cast<std::size_t>(j.total - j.completed)
                            : 0;
    }
  }
  out.admission = admission_.admit(tenant, campaign.trials, tenant_active,
                                   queue_.size(), backlog_trials,
                                   drain_.load(std::memory_order_relaxed));
  if (!out.admission.admitted) {
    ++metrics_.counter("service.shed." + tenant);
    return out;
  }

  Job j;
  j.id = "job-" + std::to_string(next_id_++);
  j.tenant = tenant;
  j.campaign = std::move(campaign);
  j.total = static_cast<u64>(j.campaign.trials);
  out.job_id = j.id;
  queue_.push_back(j.id);
  jobs_.emplace(j.id, std::move(j));
  ++metrics_.counter("service.submitted." + tenant);
  cv_.notify_one();
  return out;
}

std::optional<JobSnapshot> CampaignScheduler::status(
    const std::string& id) const {
  const std::scoped_lock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot_locked(it->second);
}

std::vector<JobSnapshot> CampaignScheduler::list(
    const std::string& tenant) const {
  const std::scoped_lock lock(mu_);
  std::vector<JobSnapshot> out;
  for (const auto& [id, j] : jobs_) {
    if (!tenant.empty() && j.tenant != tenant) continue;
    out.push_back(snapshot_locked(j));
  }
  // jobs_ is keyed by id string; order by numeric suffix (submission
  // order) instead of lexicographic ("job-10" < "job-9").
  std::sort(out.begin(), out.end(),
            [](const JobSnapshot& a, const JobSnapshot& b) {
              return a.id.size() != b.id.size() ? a.id.size() < b.id.size()
                                                : a.id < b.id;
            });
  return out;
}

std::optional<std::string> CampaignScheduler::summary_json(
    const std::string& id) const {
  const std::scoped_lock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.summary.empty()) return std::nullopt;
  return it->second.summary;
}

std::optional<std::string> CampaignScheduler::artifact_json(
    const std::string& id) const {
  const std::scoped_lock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.artifact.empty()) return std::nullopt;
  return it->second.artifact;
}

void CampaignScheduler::set_progress_hook(ProgressHook hook) {
  const std::scoped_lock lock(mu_);
  hook_ = std::move(hook);
}

void CampaignScheduler::begin_drain() {
  std::vector<JobSnapshot> parked;
  ProgressHook hook;
  {
    const std::scoped_lock lock(mu_);
    drain_.store(true, std::memory_order_relaxed);
    // Queued jobs never start: park them as checkpointed.  Their journal
    // (header only, when fresh) is enough for resume_from_dir() to
    // re-admit them from trial zero.
    for (const std::string& id : queue_) {
      Job& j = jobs_.at(id);
      j.state = JobState::kCheckpointed;
      if (!cfg_.checkpoint_dir.empty() && !j.resumed) {
        chaos::CheckpointWriter w(
            journal_path(id),
            chaos::make_header(j.campaign, journal_meta(j.campaign, j.tenant,
                                                        j.id)));
      }
      parked.push_back(snapshot_locked(j));
    }
    queue_.clear();
    hook = hook_;
  }
  cv_.notify_all();
  if (hook) {
    for (const JobSnapshot& s : parked) hook(s);
  }
}

bool CampaignScheduler::draining() const {
  return drain_.load(std::memory_order_relaxed);
}

bool CampaignScheduler::idle() const {
  const std::scoped_lock lock(mu_);
  return queue_.empty() && running_ == 0;
}

void CampaignScheduler::join() {
  {
    const std::scoped_lock lock(mu_);
    if (joined_) return;
    joined_ = true;
  }
  for (std::thread& t : runners_) {
    if (t.joinable()) t.join();
  }
}

void CampaignScheduler::runner_loop() {
  for (;;) {
    std::string id;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return shutdown_ || drain_.load(std::memory_order_relaxed) ||
               !queue_.empty();
      });
      if (queue_.empty() || shutdown_) return;
      id = queue_.front();
      queue_.pop_front();
      jobs_.at(id).state = JobState::kRunning;
      ++running_;
    }
    run_job(id);
    {
      const std::scoped_lock lock(mu_);
      --running_;
    }
  }
}

void CampaignScheduler::run_job(const std::string& id) {
  chaos::CampaignConfig cfg;
  std::vector<chaos::TrialResult> restored;
  bool resumed = false;
  std::string tenant;
  {
    const std::scoped_lock lock(mu_);
    Job& j = jobs_.at(id);
    cfg = j.campaign;
    restored = std::move(j.restored);
    j.restored.clear();
    resumed = j.resumed;
    tenant = j.tenant;
  }

  std::unique_ptr<chaos::CheckpointWriter> writer;
  if (!cfg_.checkpoint_dir.empty()) {
    writer = std::make_unique<chaos::CheckpointWriter>(
        journal_path(id), chaos::make_header(cfg, journal_meta(cfg, tenant, id)),
        resumed);
  }

  const WallClock::time_point start = WallClock::now();
  u64 ran_here = 0;  // hook is serialized by the campaign; no atomics needed
  cfg.cancel = &drain_;
  cfg.on_trial = [&](const chaos::TrialResult& r) {
    if (writer) writer->append(r);
    ++ran_here;
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(WallClock::now() - start)
            .count();
    JobSnapshot snap;
    ProgressHook hook;
    {
      const std::scoped_lock lock(mu_);
      Job& j = jobs_.at(id);
      ++j.completed;
      if (!r.ok()) ++j.failures;
      admission_.observe_trial_ms(elapsed_ms / static_cast<double>(ran_here));
      ++metrics_.counter("service.trials." + tenant);
      snap = snapshot_locked(j);
      hook = hook_;
    }
    if (hook) hook(snap);
  };

  JobSnapshot final_snap;
  ProgressHook final_hook;
  try {
    chaos::Campaign campaign(cfg);
    chaos::CampaignSummary s = campaign.run_from(std::move(restored));
    const std::scoped_lock lock(mu_);
    Job& j = jobs_.at(id);
    j.completed = static_cast<u64>(s.trials_run);
    j.failures = static_cast<u64>(s.failing_trials.size());
    if (drain_.load(std::memory_order_relaxed) &&
        s.trials_run < s.trials_requested) {
      j.state = JobState::kCheckpointed;
    } else {
      j.state = JobState::kDone;
      j.summary = s.to_json();
      if (s.repro) j.artifact = s.repro->to_json();
    }
    final_snap = snapshot_locked(j);
    final_hook = hook_;
  } catch (const std::exception& e) {
    const std::scoped_lock lock(mu_);
    Job& j = jobs_.at(id);
    j.state = JobState::kFailed;
    j.error = e.what();
    final_snap = snapshot_locked(j);
    final_hook = hook_;
  } catch (...) {
    const std::scoped_lock lock(mu_);
    Job& j = jobs_.at(id);
    j.state = JobState::kFailed;
    j.error = "non-standard exception escaped the campaign";
    final_snap = snapshot_locked(j);
    final_hook = hook_;
  }
  if (final_hook) final_hook(final_snap);
}

std::size_t CampaignScheduler::resume_from_dir() {
  if (cfg_.checkpoint_dir.empty()) return 0;
  DIR* dir = ::opendir(cfg_.checkpoint_dir.c_str());
  if (dir == nullptr) return 0;
  std::vector<std::string> files;
  while (dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    constexpr std::string_view kExt = ".journal";
    if (name.size() > kExt.size() &&
        name.compare(name.size() - kExt.size(), kExt.size(), kExt) == 0) {
      files.push_back(name);
    }
  }
  ::closedir(dir);
  std::sort(files.begin(), files.end());

  std::size_t resumed = 0;
  for (const std::string& file : files) {
    chaos::Checkpoint ck;
    try {
      ck = chaos::load_checkpoint(cfg_.checkpoint_dir + "/" + file);
    } catch (const std::exception&) {
      continue;  // damaged header: not resumable, leave for inspection
    }
    chaos::CampaignConfig cfg;
    cfg.fixture = ck.header.fixture;
    cfg.seed = ck.header.seed;
    cfg.trials = ck.header.trials;
    cfg.state_faults = ck.header.state_faults;
    cfg.keep_telemetry = false;
    const auto& meta = ck.header.meta;
    cfg.workers = static_cast<std::size_t>(
        std::clamp<i64>(meta_i64(meta, "workers", 1), 1, 8));
    cfg.minimize = meta_i64(meta, "minimize", 1) != 0;
    cfg.stop_on_violation = meta_i64(meta, "stop_on_violation", 0) != 0;
    cfg.trial_timeout_ms = meta_i64(meta, "trial_timeout_ms", 0);
    cfg.trial_retries =
        static_cast<u32>(std::max<i64>(0, meta_i64(meta, "retries", 0)));
    cfg.minimize_budget_ms = meta_i64(meta, "minimize_budget_ms", 0);

    std::vector<chaos::TrialResult> restored;
    try {
      restored = chaos::restore_results(chaos::Campaign(cfg), ck);
    } catch (const std::exception&) {
      continue;  // identity mismatch: someone else's journal
    }

    Job j;
    auto tenant_it = meta.find("tenant");
    auto job_it = meta.find("job");
    j.tenant = tenant_it != meta.end() && !tenant_it->second.empty()
                   ? tenant_it->second
                   : "recovered";
    j.id = job_it != meta.end() && !job_it->second.empty()
               ? job_it->second
               : file.substr(0, file.size() - 8);
    j.campaign = cfg;
    j.total = static_cast<u64>(cfg.trials);
    j.completed = static_cast<u64>(restored.size());
    for (const chaos::TrialResult& r : restored) {
      if (!r.ok()) ++j.failures;
    }
    j.resumed = true;
    j.restored = std::move(restored);

    const std::scoped_lock lock(mu_);
    if (jobs_.count(j.id) != 0) continue;
    // Keep fresh ids clear of recovered ones.
    if (j.id.rfind("job-", 0) == 0) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long n =
          std::strtoull(j.id.c_str() + 4, &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0' && n >= next_id_) {
        next_id_ = n + 1;
      }
    }
    queue_.push_back(j.id);
    jobs_.emplace(j.id, std::move(j));
    ++resumed;
    cv_.notify_one();
  }
  return resumed;
}

std::string CampaignScheduler::stats_json() const {
  const std::scoped_lock lock(mu_);
  std::size_t by_state[5] = {};
  for (const auto& [id, j] : jobs_) {
    by_state[static_cast<std::size_t>(j.state)]++;
  }
  std::string out = "{\"v\":1,\"type\":\"stats\",\"draining\":";
  out += drain_.load(std::memory_order_relaxed) ? "true" : "false";
  out += ",\"queued\":" + std::to_string(by_state[0]);
  out += ",\"running\":" + std::to_string(by_state[1]);
  out += ",\"done\":" + std::to_string(by_state[2]);
  out += ",\"failed\":" + std::to_string(by_state[3]);
  out += ",\"checkpointed\":" + std::to_string(by_state[4]);
  out += ",\"counters\":{";
  bool first = true;
  for (const obs::MetricsRegistry::Sample& s : metrics_.snapshot()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += obs::json_escape(s.name);
    out += "\":" + std::to_string(static_cast<u64>(s.value));
  }
  out += "}}";
  return out;
}

std::vector<obs::MetricsRegistry::Sample>
CampaignScheduler::metrics_samples() const {
  const std::scoped_lock lock(mu_);
  std::size_t by_state[5] = {};
  for (const auto& [id, j] : jobs_) {
    by_state[static_cast<std::size_t>(j.state)]++;
  }
  std::vector<obs::MetricsRegistry::Sample> out = metrics_.snapshot();
  auto gauge = [&out](const char* name, double v) {
    obs::MetricsRegistry::Sample s;
    s.name = name;
    s.kind = obs::MetricKind::kGauge;
    s.value = v;
    out.push_back(std::move(s));
  };
  gauge("service.draining",
        drain_.load(std::memory_order_relaxed) ? 1.0 : 0.0);
  gauge("service.jobs.checkpointed", static_cast<double>(by_state[4]));
  gauge("service.jobs.done", static_cast<double>(by_state[2]));
  gauge("service.jobs.failed", static_cast<double>(by_state[3]));
  gauge("service.jobs.queued", static_cast<double>(by_state[0]));
  gauge("service.jobs.running", static_cast<double>(by_state[1]));
  // Keep the whole listing name-sorted: the registry snapshot already is
  // (std::map), and the gauges above were appended in sorted order but all
  // sort before/after different registry names — one stable sort settles it.
  std::stable_sort(out.begin(), out.end(),
                   [](const obs::MetricsRegistry::Sample& a,
                      const obs::MetricsRegistry::Sample& b) {
                     return a.name < b.name;
                   });
  return out;
}

std::string CampaignScheduler::metrics_exposition() const {
  return obs::prometheus_exposition(metrics_samples());
}

}  // namespace vwire::service
