// vwired wire protocol (DESIGN.md §11): line-delimited JSON over a local
// stream socket.  Every request and every response is exactly one line,
// one JSON object, carrying a schema version `"v":1` — a daemon that sees
// a frame it cannot honor answers a structured error and keeps serving;
// it never disconnects a client for a malformed frame and never trusts
// one byte of it.
//
// This layer is deliberately socket-free: parse_request() maps a raw line
// to a typed Request (or throws ProtocolError with a machine-readable
// code), and the build_* helpers render responses.  The daemon is a thin
// event loop around it, and the fuzz tests hammer this function directly.
//
// Requests (tenant/job fields where applicable):
//   {"v":1,"type":"ping"}
//   {"v":1,"type":"submit","tenant":"ci","fixture":"udp","trials":100,
//    "seed":"42", ...campaign knobs...}
//   {"v":1,"type":"status","job":"job-3"}
//   {"v":1,"type":"list","tenant":"ci"}          (tenant optional)
//   {"v":1,"type":"summary","job":"job-3"}
//   {"v":1,"type":"artifact","job":"job-3"}
//   {"v":1,"type":"watch","job":"job-3"}
//   {"v":1,"type":"stats"}
//   {"v":1,"type":"metrics"}
//   {"v":1,"type":"drain"}
//
// A watching connection additionally receives periodic
// {"v":1,"type":"metrics_delta","changed":{...}} frames (DESIGN.md §12)
// while its job is live — the registry values that moved since the
// client's previous frame.
//
// Error responses: {"v":1,"ok":false,"error":"<code>","detail":"...",
// ["retry_after_ms":N]} with codes bad-request | unknown-type | not-found
// | over-quota | draining | oversized-frame.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "vwire/chaos/campaign.hpp"

namespace vwire::service {

inline constexpr int kProtocolVersion = 1;

/// Hard per-frame byte ceiling, both directions.  A client that streams an
/// unterminated line past this is answered with an oversized-frame error
/// and its input is discarded up to the next newline.
inline constexpr std::size_t kMaxFrameBytes = 64 * 1024;

/// Machine-readable request rejection.  `code` is one of the error codes
/// documented above; what() carries the human detail.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& detail)
      : std::runtime_error(detail), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

struct Request {
  enum class Type {
    kPing,
    kSubmit,
    kStatus,
    kList,
    kSummary,
    kArtifact,
    kWatch,
    kStats,
    kMetrics,
    kDrain,
  };

  Type type{Type::kPing};
  std::string tenant;  ///< submit (required); list (optional filter)
  std::string job;     ///< status / summary / artifact / watch
  /// submit only; populated from the request's campaign knobs with
  /// service-safe defaults (telemetry retention off, workers clamped).
  chaos::CampaignConfig campaign;
};

/// Parses one request line.  Throws ProtocolError — never anything else —
/// on any malformed, oversized, unversioned or unknown-typed frame.
/// Unknown *fields* are ignored (tolerant reader), so old daemons accept
/// newer clients' frames as long as the fields they do understand check
/// out.  64-bit seeds are accepted as JSON strings or numbers.
Request parse_request(std::string_view line);

const char* to_string(Request::Type t);

// --- response builders (all return one line, no trailing newline) -------

/// {"v":1,"ok":false,"error":code,"detail":...[,"retry_after_ms":N]}
std::string build_error(const std::string& code, const std::string& detail,
                        i64 retry_after_ms = -1);

/// {"v":1,"ok":true,...fields...} — `fields` is pre-rendered JSON members
/// ("\"k\":v,...", possibly empty).
std::string build_ok(const std::string& fields);

/// One watch-stream progress event (not an "ok" frame: these interleave
/// with request/response traffic on a watching connection).
std::string build_progress(const std::string& job, u64 completed, u64 total,
                           u64 failures, const std::string& state);

/// One watch-stream metrics-delta event: the registry entries whose value
/// changed since the subscriber's previous frame.  `changed` may be empty
/// (a heartbeat tick); values render with full double precision.
std::string build_metrics_delta(
    const std::vector<std::pair<std::string, double>>& changed);

}  // namespace vwire::service
