// vwired daemon (DESIGN.md §11): the event loop that puts the campaign
// scheduler behind a local socket.
//
// Single-threaded poll() loop over an AF_UNIX stream socket speaking the
// line-delimited protocol (service/protocol.hpp).  Campaigns run on the
// scheduler's runner threads; the loop only parses frames, renders
// responses and relays progress events — so a wedged campaign can never
// stop the daemon from answering status requests (that is what the
// per-trial watchdog is for).
//
// Two cross-thread signals funnel through one self-pipe, the only
// mechanism that is both poll()-able and async-signal-safe:
//   - request_shutdown() (called from the SIGTERM handler) writes a byte;
//     the loop sees it and starts a graceful drain — in-flight trials
//     finish and are journaled, queued campaigns checkpoint, watch
//     streams get their final events, and serve() returns 0.
//   - the scheduler's progress hook (runner threads) queues a JobSnapshot
//     and writes a byte; the loop wakes and fans the event out to
//     watching clients.
//
// Robustness contract with clients: a malformed frame gets a structured
// error, never a disconnect; an unterminated frame beyond kMaxFrameBytes
// gets an oversized-frame error and input is discarded up to the next
// newline; a client that disappears mid-write is reaped silently.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "vwire/service/protocol.hpp"
#include "vwire/service/scheduler.hpp"

namespace vwire::service {

struct DaemonConfig {
  std::string socket_path;
  SchedulerConfig scheduler;
  /// Scan scheduler.checkpoint_dir at start() and re-enqueue interrupted
  /// jobs before accepting connections.
  bool resume{true};
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig cfg);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket, arms the self-pipe and installs the progress hook.
  /// Returns false (with the reason on stderr) when the path cannot be
  /// bound — too long for sockaddr_un, or the directory is missing.
  bool start();

  /// Runs the event loop until a drain (SIGTERM or a "drain" request)
  /// completes.  Returns 0 on a clean drained exit, 1 on a loop-level
  /// I/O failure.
  int serve();

  /// Async-signal-safe drain trigger — the SIGTERM handler calls this.
  void request_shutdown();

  CampaignScheduler& scheduler() { return sched_; }
  const std::string& socket_path() const { return cfg_.socket_path; }

 private:
  struct Client {
    int fd{-1};
    std::string in;
    std::string out;
    std::string watch_job;  ///< non-empty: progress-stream subscriber
    bool discarding{false};  ///< dropping an oversized frame's tail
    /// Last metrics values this watcher was sent; metrics_delta frames
    /// carry only entries that moved since (first frame = everything).
    std::map<std::string, double> last_metrics;
  };

  void handle_line(Client& c, std::string_view line);
  void enqueue(Client& c, std::string_view frame);  ///< frame + '\n'
  void pump_progress();
  void pump_metrics_deltas();
  void close_client(Client& c);

  DaemonConfig cfg_;
  CampaignScheduler sched_;
  int listen_fd_{-1};
  int wake_r_{-1};
  int wake_w_{-1};
  std::vector<Client> clients_;
  bool drain_started_{false};
  /// Watch-stream metrics cadence (the poll timeout is the clock).
  std::chrono::steady_clock::time_point last_delta_{};

  std::atomic<bool> shutdown_requested_{false};
  std::mutex ev_mu_;
  std::deque<JobSnapshot> events_;
};

}  // namespace vwire::service
