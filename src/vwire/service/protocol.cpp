#include "vwire/service/protocol.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "vwire/obs/json.hpp"

namespace vwire::service {

namespace {

u64 read_seed(const obs::JsonValue& v, const char* key, u64 fallback) {
  if (!v.has(key)) return fallback;
  const obs::JsonValue& f = v.at(key);
  if (f.type() == obs::JsonValue::Type::kNumber) {
    const double d = f.as_number();
    if (d < 0 || d != d || d > 9.007199254740992e15) {
      throw ProtocolError("bad-request",
                          std::string(key) + " out of lossless integer range "
                          "(send 64-bit seeds as strings)");
    }
    return static_cast<u64>(d);
  }
  if (f.type() == obs::JsonValue::Type::kString) {
    const std::string& s = f.as_string();
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
      throw ProtocolError("bad-request",
                          std::string(key) + " is not an unsigned integer");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      throw ProtocolError("bad-request",
                          std::string(key) + " does not fit in 64 bits");
    }
    return static_cast<u64>(parsed);
  }
  throw ProtocolError("bad-request",
                      std::string(key) + " must be a string or integer");
}

i64 read_nonneg(const obs::JsonValue& v, const char* key, i64 fallback,
                i64 cap) {
  if (!v.has(key)) return fallback;
  const obs::JsonValue& f = v.at(key);
  if (f.type() != obs::JsonValue::Type::kNumber) {
    throw ProtocolError("bad-request", std::string(key) + " must be a number");
  }
  const double d = f.as_number();
  if (d < 0 || d != d) {
    throw ProtocolError("bad-request",
                        std::string(key) + " must be non-negative");
  }
  // Clamp in the double domain: casting an out-of-range double to i64 is
  // undefined behavior, and these values arrive off the wire.
  if (d >= static_cast<double>(cap)) return cap;
  return static_cast<i64>(d);
}

std::string read_job(const obs::JsonValue& v) {
  const std::string job = v.str("job");
  if (job.empty()) {
    throw ProtocolError("bad-request", "request needs a \"job\" id");
  }
  return job;
}

}  // namespace

const char* to_string(Request::Type t) {
  switch (t) {
    case Request::Type::kPing: return "ping";
    case Request::Type::kSubmit: return "submit";
    case Request::Type::kStatus: return "status";
    case Request::Type::kList: return "list";
    case Request::Type::kSummary: return "summary";
    case Request::Type::kArtifact: return "artifact";
    case Request::Type::kWatch: return "watch";
    case Request::Type::kStats: return "stats";
    case Request::Type::kMetrics: return "metrics";
    case Request::Type::kDrain: return "drain";
  }
  return "?";
}

Request parse_request(std::string_view line) {
  if (line.size() > kMaxFrameBytes) {
    throw ProtocolError("oversized-frame",
                        "frame exceeds " + std::to_string(kMaxFrameBytes) +
                            " bytes");
  }
  obs::JsonValue v;
  try {
    v = obs::JsonValue::parse(line);
  } catch (const std::exception& e) {
    throw ProtocolError("bad-request", e.what());
  }
  if (v.type() != obs::JsonValue::Type::kObject) {
    throw ProtocolError("bad-request", "frame is not a JSON object");
  }
  if (v.num("v", 0) != kProtocolVersion) {
    throw ProtocolError("bad-request",
                        "unsupported protocol version (this daemon speaks "
                        "\"v\":1)");
  }
  const std::string type = v.str("type");
  if (type.empty()) {
    throw ProtocolError("bad-request", "frame has no \"type\"");
  }

  Request req;
  if (type == "ping") {
    req.type = Request::Type::kPing;
  } else if (type == "submit") {
    req.type = Request::Type::kSubmit;
    req.tenant = v.str("tenant");
    if (req.tenant.empty()) {
      throw ProtocolError("bad-request", "submit requires a \"tenant\"");
    }
    chaos::CampaignConfig& c = req.campaign;
    c.fixture = v.str("fixture", "fig7");
    c.seed = read_seed(v, "seed", 1);
    const i64 trials = read_nonneg(v, "trials", 25, 10'000'000);
    if (trials < 1) {
      throw ProtocolError("bad-request", "trials must be >= 1");
    }
    c.trials = static_cast<std::size_t>(trials);
    // Service-side safety rails: a submitted campaign never retains
    // telemetry in memory and never hogs more than a few threads.
    c.workers = static_cast<std::size_t>(
        std::clamp<i64>(read_nonneg(v, "workers", 1, 8), 1, 8));
    c.keep_telemetry = false;
    c.state_faults = v.boolean("state_faults");
    c.minimize = v.boolean("minimize", true);
    c.stop_on_violation = v.boolean("stop_on_violation");
    c.trial_timeout_ms = read_nonneg(v, "trial_timeout_ms", 0, 3'600'000);
    c.trial_retries = static_cast<u32>(read_nonneg(v, "retries", 0, 16));
    c.minimize_budget_ms =
        read_nonneg(v, "minimize_budget_ms", 0, 3'600'000);
  } else if (type == "status") {
    req.type = Request::Type::kStatus;
    req.job = read_job(v);
  } else if (type == "list") {
    req.type = Request::Type::kList;
    req.tenant = v.str("tenant");
  } else if (type == "summary") {
    req.type = Request::Type::kSummary;
    req.job = read_job(v);
  } else if (type == "artifact") {
    req.type = Request::Type::kArtifact;
    req.job = read_job(v);
  } else if (type == "watch") {
    req.type = Request::Type::kWatch;
    req.job = read_job(v);
  } else if (type == "stats") {
    req.type = Request::Type::kStats;
  } else if (type == "metrics") {
    req.type = Request::Type::kMetrics;
  } else if (type == "drain") {
    req.type = Request::Type::kDrain;
  } else {
    throw ProtocolError("unknown-type",
                        "unknown request type '" + type + "'");
  }
  return req;
}

std::string build_error(const std::string& code, const std::string& detail,
                        i64 retry_after_ms) {
  std::string out = "{\"v\":1,\"ok\":false,\"error\":\"";
  out += obs::json_escape(code);
  out += "\",\"detail\":\"";
  out += obs::json_escape(detail);
  out += '"';
  if (retry_after_ms >= 0) {
    char buf[48];
    std::snprintf(buf, sizeof buf, ",\"retry_after_ms\":%" PRId64,
                  retry_after_ms);
    out += buf;
  }
  out += '}';
  return out;
}

std::string build_ok(const std::string& fields) {
  std::string out = "{\"v\":1,\"ok\":true";
  if (!fields.empty()) {
    out += ',';
    out += fields;
  }
  out += '}';
  return out;
}

std::string build_progress(const std::string& job, u64 completed, u64 total,
                           u64 failures, const std::string& state) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                ",\"completed\":%" PRIu64 ",\"total\":%" PRIu64
                ",\"failures\":%" PRIu64,
                completed, total, failures);
  std::string out = "{\"v\":1,\"type\":\"progress\",\"job\":\"";
  out += obs::json_escape(job);
  out += '"';
  out += buf;
  out += ",\"state\":\"";
  out += obs::json_escape(state);
  out += "\"}";
  return out;
}

std::string build_metrics_delta(
    const std::vector<std::pair<std::string, double>>& changed) {
  std::string out = "{\"v\":1,\"type\":\"metrics_delta\",\"changed\":{";
  char buf[48];
  bool first = true;
  for (const auto& [name, value] : changed) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += obs::json_escape(name);
    out += "\":";
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace vwire::service
