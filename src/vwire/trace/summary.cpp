#include <cstdio>

#include "vwire/net/decode.hpp"
#include "vwire/net/tcp_header.hpp"
#include "vwire/trace/trace.hpp"

namespace vwire::trace {

std::string format_record(const TraceRecord& rec) {
  char head[96];
  std::snprintf(head, sizeof head, "%12.6f %-8s %-4s ", rec.at.seconds(),
                rec.node.c_str(), net::to_string(rec.dir));
  return head + net::summarize(rec.frame);
}

TraceBuffer::Predicate tcp_frames(u8 flags_set, u16 src_port, u16 dst_port) {
  return [=](const TraceRecord& r) {
    auto d = net::decode(r.frame);
    if (!d || !d->tcp) return false;
    if ((d->tcp->flags & flags_set) != flags_set) return false;
    if (src_port != 0 && d->tcp->src_port != src_port) return false;
    if (dst_port != 0 && d->tcp->dst_port != dst_port) return false;
    return true;
  };
}

TraceBuffer::Predicate ethertype_frames(u16 ethertype) {
  return [=](const TraceRecord& r) {
    return net::frame_ethertype(r.frame) == ethertype;
  };
}

}  // namespace vwire::trace
