// Packet trace capture.
//
// The paper's motivation (§1) includes replacing "collecting tcpdump traces
// and inspecting them manually".  TraceBuffer is the testbed-wide capture:
// TapLayer instances inserted into node stacks record every frame with a
// timestamp, capturing node and direction.  The FAE works on live packets;
// the trace is for humans, tests and offline queries.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "vwire/host/layer.hpp"
#include "vwire/net/packet.hpp"

namespace vwire::trace {

struct TraceRecord {
  TimePoint at;
  std::string node;
  net::Direction dir;
  u64 uid;
  Bytes frame;
};

/// A non-packet event worth showing alongside the capture: link faults
/// applied or cleared, RLL link-down/link-up transitions, node crashes.
struct TraceAnnotation {
  TimePoint at;
  std::string node;
  std::string text;
};

class TraceBuffer {
 public:
  /// Caps memory; older records are discarded first when full.
  explicit TraceBuffer(std::size_t max_records = 1'000'000)
      : max_records_(max_records) {}

  void record(TimePoint at, std::string_view node, net::Direction dir,
              const net::Packet& pkt);

  /// Records a non-packet event (fault injected, RLL link transition) so
  /// dumps interleave them with the capture.
  void annotate(TimePoint at, std::string_view node, std::string_view text);

  const std::vector<TraceRecord>& records() const { return records_; }
  const std::vector<TraceAnnotation>& annotations() const {
    return annotations_;
  }
  std::size_t size() const { return records_.size(); }
  u64 total_recorded() const { return total_; }
  /// Records lost to cap eviction; total_recorded() == size() + dropped().
  u64 dropped() const { return dropped_; }
  /// Annotations refused because the buffer was at its cap.
  u64 annotations_dropped() const { return annotations_dropped_; }
  void clear();

  using Predicate = std::function<bool(const TraceRecord&)>;
  std::vector<const TraceRecord*> select(const Predicate& pred) const;
  std::size_t count(const Predicate& pred) const;

  /// Formats every record as one summary line ("time node dir decoded").
  std::string dump() const;

 private:
  std::size_t max_records_;
  std::vector<TraceRecord> records_;
  std::vector<TraceAnnotation> annotations_;
  u64 total_{0};
  u64 dropped_{0};
  u64 annotations_dropped_{0};
};

/// Transparent capture layer; inserts anywhere in a node's chain.
class TapLayer final : public host::Layer {
 public:
  explicit TapLayer(TraceBuffer& buffer) : buffer_(buffer) {}

  std::string_view name() const override { return "tap"; }

  void send_down(net::Packet pkt) override;
  void receive_up(net::Packet pkt) override;

 private:
  TraceBuffer& buffer_;
};

/// Formats a single record as a one-line summary.
std::string format_record(const TraceRecord& rec);

// ---- common predicates used by tests and examples ----

/// Matches TCP frames with all `flags_set` bits set between the given ports
/// (0 = any port).
TraceBuffer::Predicate tcp_frames(u8 flags_set, u16 src_port = 0,
                                  u16 dst_port = 0);

/// Matches frames of a given ethertype.
TraceBuffer::Predicate ethertype_frames(u16 ethertype);

}  // namespace vwire::trace
