#include "vwire/trace/trace.hpp"

#include <cstdio>

#include "vwire/host/node.hpp"
#include "vwire/net/decode.hpp"

namespace vwire::trace {

void TraceBuffer::record(TimePoint at, std::string_view node,
                         net::Direction dir, const net::Packet& pkt) {
  ++total_;
  if (max_records_ == 0) {  // capture disabled: everything is a drop
    ++dropped_;
    return;
  }
  if (records_.size() >= max_records_) {
    // Evict the oldest tenth in one move instead of one-at-a-time — but
    // never more than the buffer holds, and count every eviction.
    std::size_t evict = std::min(records_.size(), max_records_ / 10 + 1);
    dropped_ += evict;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(evict));
  }
  records_.push_back(
      TraceRecord{at, std::string(node), dir, pkt.uid(), pkt.bytes()});
}

void TraceBuffer::annotate(TimePoint at, std::string_view node,
                           std::string_view text) {
  if (annotations_.size() >= max_records_) {  // same memory cap idea
    ++annotations_dropped_;
    return;
  }
  annotations_.push_back(TraceAnnotation{at, std::string(node),
                                         std::string(text)});
}

void TraceBuffer::clear() {
  records_.clear();
  annotations_.clear();
  total_ = 0;
  dropped_ = 0;
  annotations_dropped_ = 0;
}

std::vector<const TraceRecord*> TraceBuffer::select(
    const Predicate& pred) const {
  std::vector<const TraceRecord*> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(&r);
  }
  return out;
}

std::size_t TraceBuffer::count(const Predicate& pred) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (pred(r)) ++n;
  }
  return n;
}

std::string TraceBuffer::dump() const {
  std::string out;
  std::size_t ai = 0;
  auto emit_annotation = [&](const TraceAnnotation& a) {
    char head[96];
    std::snprintf(head, sizeof head, "%12.6f %-8s ---- ", a.at.seconds(),
                  a.node.c_str());
    out += head;
    out += a.text;
    out.push_back('\n');
  };
  for (const auto& r : records_) {
    while (ai < annotations_.size() && annotations_[ai].at <= r.at) {
      emit_annotation(annotations_[ai++]);
    }
    out += format_record(r);
    out.push_back('\n');
  }
  while (ai < annotations_.size()) emit_annotation(annotations_[ai++]);
  return out;
}

void TapLayer::send_down(net::Packet pkt) {
  buffer_.record(node_->simulator().now(), node_->name(),
                 net::Direction::kSend, pkt);
  pass_down(std::move(pkt));
}

void TapLayer::receive_up(net::Packet pkt) {
  buffer_.record(node_->simulator().now(), node_->name(),
                 net::Direction::kRecv, pkt);
  pass_up(std::move(pkt));
}

}  // namespace vwire::trace
