#include "vwire/trace/trace.hpp"

#include "vwire/host/node.hpp"
#include "vwire/net/decode.hpp"

namespace vwire::trace {

void TraceBuffer::record(TimePoint at, std::string_view node,
                         net::Direction dir, const net::Packet& pkt) {
  ++total_;
  if (records_.size() >= max_records_) {
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(
                                          max_records_ / 10 + 1));
  }
  records_.push_back(
      TraceRecord{at, std::string(node), dir, pkt.uid(), pkt.bytes()});
}

void TraceBuffer::clear() {
  records_.clear();
  total_ = 0;
}

std::vector<const TraceRecord*> TraceBuffer::select(
    const Predicate& pred) const {
  std::vector<const TraceRecord*> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(&r);
  }
  return out;
}

std::size_t TraceBuffer::count(const Predicate& pred) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (pred(r)) ++n;
  }
  return n;
}

std::string TraceBuffer::dump() const {
  std::string out;
  for (const auto& r : records_) {
    out += format_record(r);
    out.push_back('\n');
  }
  return out;
}

void TapLayer::send_down(net::Packet pkt) {
  buffer_.record(node_->simulator().now(), node_->name(),
                 net::Direction::kSend, pkt);
  pass_down(std::move(pkt));
}

void TapLayer::receive_up(net::Packet pkt) {
  buffer_.record(node_->simulator().now(), node_->name(),
                 net::Direction::kRecv, pkt);
  pass_up(std::move(pkt));
}

}  // namespace vwire::trace
