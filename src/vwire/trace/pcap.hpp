// Classic pcap (libpcap 2.4) export/import for traces.
//
// Lets a recorded testbed trace be opened in standard tooling (tcpdump,
// Wireshark) — the bridge between VirtualWire's automated analysis and the
// manual workflows the paper replaces.  Timestamps are simulated time.
#pragma once

#include <iosfwd>
#include <string>

#include "vwire/trace/trace.hpp"

namespace vwire::trace {

/// Writes `buffer` as a pcap stream (linktype Ethernet, µs resolution).
void write_pcap(const TraceBuffer& buffer, std::ostream& out);

/// Convenience: writes to a file; returns false on I/O failure.
bool write_pcap_file(const TraceBuffer& buffer, const std::string& path);

/// Reads a pcap stream back into records (node name and direction are not
/// representable in pcap and come back empty/kSend).  Throws
/// std::invalid_argument on malformed input.
std::vector<TraceRecord> read_pcap(std::istream& in);

}  // namespace vwire::trace
