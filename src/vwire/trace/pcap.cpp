#include "vwire/trace/pcap.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace vwire::trace {

namespace {

constexpr u32 kMagic = 0xa1b2c3d4;  // µs-resolution, writer byte order
constexpr u32 kLinkTypeEthernet = 1;

void put_u16(std::ostream& out, u16 v) {
  out.put(static_cast<char>(v & 0xff));
  out.put(static_cast<char>(v >> 8));
}

void put_u32(std::ostream& out, u32 v) {
  put_u16(out, static_cast<u16>(v & 0xffff));
  put_u16(out, static_cast<u16>(v >> 16));
}

u16 get_u16(std::istream& in) {
  int lo = in.get(), hi = in.get();
  if (hi == EOF) throw std::invalid_argument("pcap: truncated");
  return static_cast<u16>(lo | (hi << 8));
}

u32 get_u32(std::istream& in) {
  u32 lo = get_u16(in);
  u32 hi = get_u16(in);
  return lo | (hi << 16);
}

}  // namespace

void write_pcap(const TraceBuffer& buffer, std::ostream& out) {
  put_u32(out, kMagic);
  put_u16(out, 2);   // version major
  put_u16(out, 4);   // version minor
  put_u32(out, 0);   // thiszone
  put_u32(out, 0);   // sigfigs
  put_u32(out, 65535);  // snaplen
  put_u32(out, kLinkTypeEthernet);
  for (const TraceRecord& r : buffer.records()) {
    i64 usecs = r.at.ns / 1000;
    put_u32(out, static_cast<u32>(usecs / 1'000'000));
    put_u32(out, static_cast<u32>(usecs % 1'000'000));
    put_u32(out, static_cast<u32>(r.frame.size()));
    put_u32(out, static_cast<u32>(r.frame.size()));
    out.write(reinterpret_cast<const char*>(r.frame.data()),
              static_cast<std::streamsize>(r.frame.size()));
  }
}

bool write_pcap_file(const TraceBuffer& buffer, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_pcap(buffer, out);
  return static_cast<bool>(out);
}

std::vector<TraceRecord> read_pcap(std::istream& in) {
  if (get_u32(in) != kMagic) {
    throw std::invalid_argument("pcap: bad magic (or foreign byte order)");
  }
  get_u16(in);  // version major
  get_u16(in);  // version minor
  get_u32(in);  // thiszone
  get_u32(in);  // sigfigs
  get_u32(in);  // snaplen
  if (get_u32(in) != kLinkTypeEthernet) {
    throw std::invalid_argument("pcap: not an Ethernet capture");
  }
  std::vector<TraceRecord> out;
  while (in.peek() != EOF) {
    u32 sec = get_u32(in);
    u32 usec = get_u32(in);
    u32 incl = get_u32(in);
    u32 orig = get_u32(in);
    if (incl != orig || incl > 1 << 20) {
      throw std::invalid_argument("pcap: unsupported truncated packet");
    }
    TraceRecord r;
    r.at = TimePoint{(static_cast<i64>(sec) * 1'000'000 + usec) * 1000};
    r.dir = net::Direction::kSend;
    r.frame.resize(incl);
    in.read(reinterpret_cast<char*>(r.frame.data()), incl);
    if (in.gcount() != static_cast<std::streamsize>(incl)) {
      throw std::invalid_argument("pcap: truncated packet body");
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace vwire::trace
