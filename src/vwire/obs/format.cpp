#include "vwire/obs/format.hpp"

#include <algorithm>

namespace vwire::obs {

std::string format_kv(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& r : rows) {
    if (!out.empty()) out += ' ';
    out += r.first;
    out += '=';
    out += r.second;
  }
  return out;
}

std::string format_table(const std::string& title,
                         const std::vector<Row>& rows) {
  std::size_t w = 0;
  for (const Row& r : rows) w = std::max(w, r.first.size());
  std::string out = title;
  out += '\n';
  for (const Row& r : rows) {
    out += "  ";
    out += r.first;
    out.append(w - r.first.size() + 2, ' ');
    out += r.second;
    out += '\n';
  }
  return out;
}

}  // namespace vwire::obs
