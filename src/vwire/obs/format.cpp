#include "vwire/obs/format.hpp"

#include <algorithm>

namespace vwire::obs {

std::string format_kv(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& r : rows) {
    if (!out.empty()) out += ' ';
    out += r.first;
    out += '=';
    out += r.second;
  }
  return out;
}

std::string format_table(const std::string& title,
                         const std::vector<Row>& rows) {
  // Dot-leader layout with values right-aligned against the widest value,
  // so successive dumps of the same table (a watch loop, `vwired_client
  // stats`) keep every column fixed even as counters grow digits.  Both
  // widths come from the row set itself, so an over-wide value can never
  // push its own row out of line — it just gets fewer leader dots (min 2).
  std::size_t name_w = 0;
  std::size_t val_w = 0;
  for (const Row& r : rows) {
    name_w = std::max(name_w, r.first.size());
    val_w = std::max(val_w, r.second.size());
  }
  std::string out = title;
  out += '\n';
  for (const Row& r : rows) {
    out += "  ";
    out += r.first;
    out += ' ';
    out.append(name_w - r.first.size() + 2 + (val_w - r.second.size()), '.');
    out += ' ';
    out += r.second;
    out += '\n';
  }
  return out;
}

}  // namespace vwire::obs
