#include "vwire/obs/prometheus.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace vwire::obs {

std::string prometheus_name(const std::string& dotted) {
  std::string out = "vwire_";
  out.reserve(out.size() + dotted.size());
  for (char c : dotted) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    out += ok ? c : '_';
  }
  return out;
}

namespace {

void append_scalar(std::string& out, const std::string& name,
                   const char* type, double value) {
  char buf[192];
  out += "# TYPE " + name + " " + type + "\n";
  // %.17g round-trips doubles; integral values (the common case — every
  // scalar in the registry is a u64/i64 view) print without a fraction.
  std::snprintf(buf, sizeof buf, "%s %.17g\n", name.c_str(), value);
  out += buf;
}

void append_histogram(std::string& out, const std::string& name,
                      const HistogramSnapshot& h) {
  char buf[192];
  out += "# TYPE " + name + " summary\n";
  const struct { const char* q; i64 v; } quantiles[] = {
      {"0.5", h.p50}, {"0.9", h.p90}, {"0.95", h.p95}, {"0.99", h.p99}};
  for (const auto& q : quantiles) {
    std::snprintf(buf, sizeof buf, "%s{quantile=\"%s\"} %" PRId64 "\n",
                  name.c_str(), q.q, q.v);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "%s_count %" PRIu64 "\n", name.c_str(),
                h.count);
  out += buf;
  std::snprintf(buf, sizeof buf, "%s_sum %.17g\n", name.c_str(),
                h.mean * static_cast<double>(h.count));
  out += buf;
}

}  // namespace

std::string prometheus_exposition(
    const std::vector<MetricsRegistry::Sample>& samples) {
  std::string out;
  out.reserve(samples.size() * 96);
  out += "# HELP vwire VirtualWire metrics registry snapshot\n";
  for (const MetricsRegistry::Sample& s : samples) {
    const std::string name = prometheus_name(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        append_scalar(out, name, "counter", s.value);
        break;
      case MetricKind::kGauge:
        append_scalar(out, name, "gauge", s.value);
        break;
      case MetricKind::kHistogram:
        append_histogram(out, name, s.hist);
        break;
    }
  }
  return out;
}

}  // namespace vwire::obs
