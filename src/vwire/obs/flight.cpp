#include "vwire/obs/flight.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <optional>
#include <stdexcept>

#include "vwire/obs/json.hpp"

namespace vwire::obs {

const char* to_string(SpanEventKind k) {
  switch (k) {
    case SpanEventKind::kNicTx:        return "nic_tx";
    case SpanEventKind::kNicRx:        return "nic_rx";
    case SpanEventKind::kLinkDrop:     return "link_drop";
    case SpanEventKind::kLinkDelay:    return "link_delay";
    case SpanEventKind::kFault:        return "fault";
    case SpanEventKind::kFaultSkipped: return "fault_skipped";
    case SpanEventKind::kRllRetx:      return "rll_retx";
    case SpanEventKind::kRllDupRx:     return "rll_dup_rx";
    case SpanEventKind::kCrash:        return "crash";
    case SpanEventKind::kRecover:      return "recover";
  }
  return "?";
}

const char* to_string(DropCause c) {
  switch (c) {
    case DropCause::kNone:     return "none";
    case DropCause::kPortDown: return "port_down";
    case DropCause::kQueue:    return "queue_overflow";
    case DropCause::kBitError: return "bit_error";
    case DropCause::kCut:      return "link_cut";
    case DropCause::kFlap:     return "link_flap";
    case DropCause::kLoss:     return "link_loss";
  }
  return "?";
}

namespace {

std::optional<SpanEventKind> span_kind_from(const std::string& name) {
  for (SpanEventKind k :
       {SpanEventKind::kNicTx, SpanEventKind::kNicRx, SpanEventKind::kLinkDrop,
        SpanEventKind::kLinkDelay, SpanEventKind::kFault,
        SpanEventKind::kFaultSkipped, SpanEventKind::kRllRetx,
        SpanEventKind::kRllDupRx, SpanEventKind::kCrash,
        SpanEventKind::kRecover}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

}  // namespace

void FlightRecorder::reset(std::size_t capacity, double sample_rate) {
  capacity_ = sample_rate > 0 ? capacity : 0;
  mask_ = capacity_ != 0 && (capacity_ & (capacity_ - 1)) == 0
              ? capacity_ - 1
              : 0;
  slots_ = capacity_ ? std::make_unique<Slot[]>(capacity_) : nullptr;
  sample_threshold_ =
      sample_rate >= 1.0
          ? 0x01000000u  // above any 24-bit hash: every span wins
          : static_cast<u32>(sample_rate * 16777216.0);
  claim_.store(0, std::memory_order_release);
}

std::vector<SpanEvent> FlightRecorder::collect() const {
  std::vector<SpanEvent> out;
  if (capacity_ == 0) return out;
  const u64 end = claim_.load(std::memory_order_acquire);
  const u64 begin = end > capacity_ ? end - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (u64 i = begin; i < end; ++i) {
    const Slot& s = slots_[slot_index(i)];
    const u64 s1 = s.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1)) continue;  // unwritten or mid-write
    u64 w[5];
    for (int j = 0; j < 5; ++j) w[j] = s.w[j].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;  // overwritten
    if (s1 / 2 - 1 != i) continue;  // slot already holds a newer lap
    SpanEvent e;
    e.at_ns = static_cast<i64>(w[0]);
    e.span = w[1];
    e.parent = w[2];
    e.kind = static_cast<SpanEventKind>(w[3] & 0xff);
    e.detail = static_cast<u8>((w[3] >> 8) & 0xff);
    e.rule = static_cast<u16>((w[3] >> 16) & 0xffff);
    e.value = static_cast<i64>(w[4]);
    out.push_back(std::move(e));
  }
  return out;
}

std::string timeline_json(const std::vector<SpanEvent>& events) {
  std::string out = "[";
  char buf[256];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    if (i) out += ',';
    std::snprintf(buf, sizeof buf,
                  "\n  {\"at_ns\":%" PRId64 ",\"node\":\"%s\",\"span\":%" PRIu64
                  ",\"parent\":%" PRIu64 ",\"kind\":\"%s\",\"rule\":%u,"
                  "\"detail\":%u,\"value\":%" PRId64 "}",
                  e.at_ns, json_escape(e.node).c_str(), e.span, e.parent,
                  to_string(e.kind), static_cast<unsigned>(e.rule),
                  static_cast<unsigned>(e.detail), e.value);
    out += buf;
  }
  out += events.empty() ? "]" : "\n]";
  return out;
}

std::vector<SpanEvent> timeline_from_value(const JsonValue& v) {
  if (v.type() != JsonValue::Type::kArray) {
    throw std::runtime_error("timeline: expected a JSON array");
  }
  std::vector<SpanEvent> out;
  out.reserve(v.as_array().size());
  for (const JsonValue& ev : v.as_array()) {
    SpanEvent e;
    e.at_ns = ev.integer("at_ns");
    e.node = ev.str("node");
    e.span = ev.uint("span");      // lossless: span ids are full u64s
    e.parent = ev.uint("parent");
    const std::string kind = ev.str("kind");
    std::optional<SpanEventKind> k = span_kind_from(kind);
    if (!k) throw std::runtime_error("timeline: unknown kind '" + kind + "'");
    e.kind = *k;
    e.rule = static_cast<u16>(ev.uint("rule", 0xffff));
    e.detail = static_cast<u8>(ev.uint("detail"));
    e.value = ev.integer("value");
    out.push_back(std::move(e));
  }
  return out;
}

std::string chrome_trace_json(const std::vector<SpanEvent>& events) {
  // One trace "thread" per node, in first-appearance order, so lanes in
  // the Chrome/Perfetto UI line up with the simulated topology.
  std::map<std::string, int> tids;
  for (const SpanEvent& e : events) {
    tids.emplace(e.node, static_cast<int>(tids.size()) + 1);
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[384];
  bool first = true;
  for (const auto& [node, tid] : tids) {
    std::snprintf(buf, sizeof buf,
                  "%s\n  {\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", tid, json_escape(node).c_str());
    out += buf;
    first = false;
  }
  for (const SpanEvent& e : events) {
    std::snprintf(
        buf, sizeof buf,
        "%s\n  {\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
        "\"name\":\"%s\",\"cat\":\"vwire\",\"args\":{\"span\":\"%" PRIu64
        "\",\"parent\":\"%" PRIu64 "\",\"rule\":%u,\"detail\":\"%s\","
        "\"value\":%" PRId64 "}}",
        first ? "" : ",", tids[e.node],
        static_cast<double>(e.at_ns) / 1000.0, to_string(e.kind), e.span,
        e.parent, static_cast<unsigned>(e.rule),
        e.kind == SpanEventKind::kLinkDrop
            ? to_string(static_cast<DropCause>(e.detail))
            : "",
        e.value);
    out += buf;
    first = false;
  }
  out += "\n]}";
  return out;
}

}  // namespace vwire::obs
