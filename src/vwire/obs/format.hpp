// Shared text formatting for stats structs and metric tables.
//
// Components describe their stats once via an ADL-visible
//   void for_each_field(const Stats&, Fn&& fn)   // fn(const char*, const u64&)
// overload next to the struct; formatting and registry exposure both consume
// that single enumeration, so there is exactly one list of field names per
// struct instead of three hand-rolled stringifiers.
#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "vwire/util/types.hpp"

namespace vwire::obs {

using Row = std::pair<std::string, std::string>;

/// "k1=v1 k2=v2 …" on one line (the ScenarioResult::summary() style).
std::string format_kv(const std::vector<Row>& rows);

/// Aligned two-column table with a title line, for human dumps:
///   title
///     name ...... value
/// Dot leaders run to a fixed column and values right-align against the
/// widest one, so repeated dumps never jitter as counters gain digits.
std::string format_table(const std::string& title,
                         const std::vector<Row>& rows);

/// Rows for any struct with a for_each_field() enumeration, name-sorted
/// (stable) so the dump order is a property of the names, not of struct
/// declaration order.
template <class Stats>
std::vector<Row> stat_rows(const Stats& s) {
  std::vector<Row> rows;
  for_each_field(s, [&](const char* name, const u64& v) {
    rows.emplace_back(name, std::to_string(v));
  });
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.first < b.first; });
  return rows;
}

template <class Stats>
std::string stats_table(const std::string& title, const Stats& s) {
  return format_table(title, stat_rows(s));
}

template <class Stats>
std::string stats_kv(const Stats& s) {
  return format_kv(stat_rows(s));
}

}  // namespace vwire::obs
