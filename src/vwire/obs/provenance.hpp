// Rule-firing provenance (DESIGN.md §7).
//
// Every action the FIE/FAE executes appends one FiringRecord to a per-node
// ring buffer: when it fired, which rule (condition) and action, the counter
// and term values *at evaluation time*, the matched filter and packet for
// packet faults, the applied-vs-requested delay for DELAY quantization, and
// the cascade depth of the triggering update.  The ring overwrites oldest
// records so the hot path never allocates or grows; the Controller collects
// all rings when the scenario ends and `ScenarioResult::explain(rule_id)`
// answers "why did rule N fire, and with what state?".
#pragma once

#include <string>
#include <vector>

#include "vwire/util/types.hpp"

namespace vwire::obs {

/// One executed action with the engine state that produced it.  POD-ish on
/// purpose: appending must be a few stores (the fig7 configuration fires 25
/// actions per matched packet).
struct FiringRecord {
  static constexpr std::size_t kMaxCounters = 6;
  static constexpr std::size_t kMaxTerms = 4;
  static constexpr u16 kNone = 0xffff;

  struct CounterSnap {
    u16 id{kNone};
    i64 value{0};
  };
  struct TermSnap {
    u16 id{kNone};
    bool state{false};
  };

  TimePoint at{};             ///< sim time the action executed
  u16 node{kNone};            ///< executing node (table index)
  u16 rule{kNone};            ///< condition id that fired (script order)
  u16 action{kNone};          ///< action table index
  u16 filter{kNone};          ///< matched filter for packet faults
  u8 kind{0};                 ///< core::ActionKind of the action
  const char* kind_name{""};  ///< static name for kind (core::to_string)
  u16 cascade_depth{0};       ///< counter/term cascade depth at evaluation
  u64 packet_uid{0};          ///< packet the fault applied to (0 = none)
  i64 value{0};               ///< outcome: applied delay ns / assigned value…
  i64 value2{0};              ///< DELAY: requested (pre-quantization) ns

  u8 n_counters{0};
  u8 n_terms{0};
  CounterSnap counters[kMaxCounters];
  TermSnap terms[kMaxTerms];

  /// Filled in at collection time (the engine only knows table indices).
  std::string node_name;
};

/// Fixed-capacity overwrite-oldest ring of FiringRecords.  capacity 0
/// disables recording entirely (append becomes a no-op).
class ProvenanceRing {
 public:
  explicit ProvenanceRing(std::size_t capacity = 0) { reset(capacity); }

  void reset(std::size_t capacity) {
    buf_.assign(capacity, FiringRecord{});
    head_ = 0;
    total_ = 0;
  }

  bool enabled() const { return !buf_.empty(); }
  std::size_t capacity() const { return buf_.size(); }
  u64 total() const { return total_; }
  std::size_t size() const {
    return total_ < buf_.size() ? static_cast<std::size_t>(total_)
                                : buf_.size();
  }
  u64 dropped() const { return total_ - size(); }

  void append(const FiringRecord& r) {
    if (buf_.empty()) return;
    claim() = r;
  }

  /// Hot-path append: advances the ring and returns the slot to fill in
  /// place, avoiding a temporary record + copy.  Precondition: enabled().
  /// The slot holds the previous lap's field values — callers must
  /// overwrite every field they rely on (fill_record does).
  FiringRecord& claim() {
    FiringRecord& slot = buf_[head_];
    if (++head_ == buf_.size()) head_ = 0;
    ++total_;
    return slot;
  }

  /// Records oldest → newest.
  std::vector<FiringRecord> collect() const;

  void clear() {
    head_ = 0;
    total_ = 0;
  }

 private:
  std::vector<FiringRecord> buf_;
  std::size_t head_{0};
  u64 total_{0};
};

}  // namespace vwire::obs
