// Prometheus-style text exposition of a MetricsRegistry snapshot.
//
// Serves the vwired `metrics` verb (DESIGN.md §12): dotted registry names
// become legal Prometheus metric names (dots → underscores, prefixed
// "vwire_"), counters/gauges emit one sample each, and histograms emit a
// quantile-labelled summary plus _count/_sum.  Output is name-sorted and
// deterministic — the registry's std::map ordering carries through — so CI
// can regex-validate it and diffs between scrapes are meaningful.
#pragma once

#include <string>
#include <vector>

#include "vwire/obs/metrics.hpp"

namespace vwire::obs {

/// Renders `samples` (from MetricsRegistry::snapshot()) as text exposition
/// format: `# HELP`/`# TYPE` headers, one `name value` line per scalar,
/// `name{quantile="0.5"} v` lines plus `_count`/`_sum` per histogram.
std::string prometheus_exposition(
    const std::vector<MetricsRegistry::Sample>& samples);

/// Legal Prometheus metric name for a dotted registry name:
/// "rll.n0.rtt_us" → "vwire_rll_n0_rtt_us" ([a-zA-Z_:][a-zA-Z0-9_:]*).
std::string prometheus_name(const std::string& dotted);

}  // namespace vwire::obs
