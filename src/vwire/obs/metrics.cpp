#include "vwire/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace vwire::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------
//
// Bucket layout: values < 16 land in group 0 exactly (index == value).
// Larger values are grouped by bit width; within a group the top four bits
// below the leading bit pick one of 16 linear sub-buckets.  A bucket in
// group g therefore spans 2^(g-1) values starting at
//   low = (1 << (g+3)) | (sub << (g-1))
// which bounds relative error at 1/32 per half-bucket (~6% worst case for
// the midpoint estimate).  record()/bucket_index() live in the header:
// they run once per packet on the engine hot path.

i64 Histogram::bucket_midpoint(std::size_t index) {
  if (index < kSubBuckets) return static_cast<i64>(index);
  const std::size_t group = index / kSubBuckets;
  const std::size_t sub = index % kSubBuckets;
  const unsigned shift = static_cast<unsigned>(group - 1);
  const u64 low = (u64{1} << (group + 3)) | (static_cast<u64>(sub) << shift);
  const u64 width = u64{1} << shift;
  return static_cast<i64>(low + width / 2);
}

i64 Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const u64 target = std::max<u64>(
      1, static_cast<u64>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  u64 seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_;
  s.min = min();
  s.max = max();
  s.mean = mean();
  s.p50 = percentile(50);
  s.p90 = percentile(90);
  s.p95 = percentile(95);
  s.p99 = percentile(99);
  return s;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::clear() { *this = Histogram{}; }

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

u64& MetricsRegistry::counter(const std::string& name) {
  Entry& e = entries_[name];
  if (!e.own_counter) {
    e = Entry{};
    e.kind = MetricKind::kCounter;
    e.own_counter = std::make_unique<u64>(0);
    e.counter = e.own_counter.get();
  }
  return *e.own_counter;
}

i64& MetricsRegistry::gauge(const std::string& name) {
  Entry& e = entries_[name];
  if (!e.own_gauge) {
    e = Entry{};
    e.kind = MetricKind::kGauge;
    e.own_gauge = std::make_unique<i64>(0);
    e.gauge = e.own_gauge.get();
  }
  return *e.own_gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Entry& e = entries_[name];
  if (!e.own_hist) {
    e = Entry{};
    e.kind = MetricKind::kHistogram;
    e.own_hist = std::make_unique<Histogram>();
    e.hist = e.own_hist.get();
  }
  return *e.own_hist;
}

void MetricsRegistry::expose_counter(const std::string& name, const u64* src) {
  Entry& e = entries_[name];
  e = Entry{};
  e.kind = MetricKind::kCounter;
  e.counter = src;
}

void MetricsRegistry::expose_gauge(const std::string& name, const i64* src) {
  Entry& e = entries_[name];
  e = Entry{};
  e.kind = MetricKind::kGauge;
  e.gauge = src;
}

void MetricsRegistry::expose_histogram(const std::string& name,
                                       const Histogram* src) {
  Entry& e = entries_[name];
  e = Entry{};
  e.kind = MetricKind::kHistogram;
  e.hist = src;
}

void MetricsRegistry::unregister_prefix(std::string_view prefix) {
  for (auto it = entries_.lower_bound(prefix); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = entries_.erase(it);
  }
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    Sample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        if (e.counter) s.value = static_cast<double>(*e.counter);
        break;
      case MetricKind::kGauge:
        if (e.gauge) s.value = static_cast<double>(*e.gauge);
        break;
      case MetricKind::kHistogram:
        if (e.hist) {
          s.hist = e.hist->snapshot();
          s.value = static_cast<double>(s.hist.count);
        }
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

double MetricsRegistry::value(std::string_view name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return 0;
  const Entry& e = it->second;
  if (e.kind == MetricKind::kCounter && e.counter)
    return static_cast<double>(*e.counter);
  if (e.kind == MetricKind::kGauge && e.gauge)
    return static_cast<double>(*e.gauge);
  if (e.kind == MetricKind::kHistogram && e.hist)
    return static_cast<double>(e.hist->count());
  return 0;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != MetricKind::kHistogram)
    return nullptr;
  return it->second.hist;
}

}  // namespace vwire::obs
