// Unified telemetry: the metrics registry (DESIGN.md §7).
//
// Every layer of the stack registers its counters, gauges and latency
// distributions here under a dotted `layer.node.metric` name
// (e.g. "rll.node1.rtt_us", "engine.server.drops", "phy.medium.queue_depth").
// The registry replaces nothing on the hot path: components keep their POD
// stats structs and the registry holds *views* (raw pointers) into them, so
// the existing `stats()` accessors stay authoritative and a snapshot reads
// live values.  Components without a natural struct field (histograms) own
// registry-allocated slots instead.
//
// Lifetime rule: a component that exposes views into its own storage must
// call unregister_prefix() from its destructor if the registry can outlive
// it (user-constructed layers like TcpLayer / EchoClient).  Layers owned by
// the Testbed are destroyed before its registry and need not bother.
#pragma once

#include <map>
#include <memory>
#include <algorithm>
#include <bit>
#include <string>
#include <string_view>
#include <vector>

#include "vwire/util/types.hpp"

namespace vwire::obs {

/// Derived view of a histogram at snapshot time.
struct HistogramSnapshot {
  u64 count{0};
  i64 min{0};
  i64 max{0};
  double mean{0};
  i64 p50{0};
  i64 p90{0};
  i64 p95{0};
  i64 p99{0};
};

/// Log-linear histogram of non-negative integer samples (negative values
/// clamp to 0).  Each power-of-two magnitude is split into 16 linear
/// sub-buckets, bounding the relative quantile error at ~6% while keeping
/// record() to a handful of bit operations — suitable for per-packet
/// hot-path use (sim-time latencies, queue depths, RTO samples).
class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 16;  // 4 sub-bucket bits
  static constexpr std::size_t kGroups = 60;      // magnitudes 2^4..2^62
  static constexpr std::size_t kBuckets = kSubBuckets * kGroups;

  /// Header-inline: called once per packet on the engine hot path; a
  /// cross-TU call here is measurable in the telemetry overhead budget.
  void record(i64 value) {
    const u64 v = value > 0 ? static_cast<u64>(value) : 0;
    if (count_ == 0) {
      min_ = max_ = static_cast<i64>(v);
    } else {
      min_ = std::min(min_, static_cast<i64>(v));
      max_ = std::max(max_, static_cast<i64>(v));
    }
    ++buckets_[bucket_index(v)];
    ++count_;
    sum_ += static_cast<i64>(v);
  }

  u64 count() const { return count_; }
  i64 sum() const { return sum_; }
  i64 min() const { return count_ ? min_ : 0; }
  i64 max() const { return count_ ? max_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at percentile `p` in [0, 100]; 0 when empty.  Returns the
  /// midpoint of the bucket holding the target rank, clamped to the
  /// observed [min, max].
  i64 percentile(double p) const;

  HistogramSnapshot snapshot() const;
  void merge(const Histogram& other);
  void clear();

 private:
  // Sub-bucket split: top 4 bits below the leading bit index the linear
  // sub-bucket, bounding relative error at 1/32 per half-bucket.
  static std::size_t bucket_index(u64 v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const unsigned bw = static_cast<unsigned>(std::bit_width(v));  // >= 5
    const unsigned group = bw - 4;
    const unsigned shift = bw - 5;
    const std::size_t sub = static_cast<std::size_t>((v >> shift) & 0xF);
    std::size_t idx = static_cast<std::size_t>(group) * kSubBuckets + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }
  static i64 bucket_midpoint(std::size_t index);

  u64 buckets_[kBuckets] = {};
  u64 count_{0};
  i64 sum_{0};
  i64 min_{0};
  i64 max_{0};
};

enum class MetricKind : u8 { kCounter, kGauge, kHistogram };
const char* to_string(MetricKind k);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- owned metrics (registry-allocated, stable storage) ---------------
  u64& counter(const std::string& name);
  i64& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // --- exposed views (caller-owned storage, read live at snapshot) ------
  void expose_counter(const std::string& name, const u64* src);
  void expose_gauge(const std::string& name, const i64* src);
  void expose_histogram(const std::string& name, const Histogram* src);

  /// Drops every metric whose name starts with `prefix` (owned slots are
  /// freed; views are forgotten).  Used by components whose storage dies
  /// before the registry.
  void unregister_prefix(std::string_view prefix);

  std::size_t size() const { return entries_.size(); }

  /// One metric's value at snapshot time.
  struct Sample {
    std::string name;
    MetricKind kind{MetricKind::kCounter};
    double value{0};          ///< counters/gauges
    HistogramSnapshot hist;   ///< histograms
  };

  /// All metrics, name-sorted.
  std::vector<Sample> snapshot() const;

  /// Scalar value of a counter/gauge (0 when absent).
  double value(std::string_view name) const;
  /// The named histogram, owned or exposed; nullptr when absent.
  const Histogram* find_histogram(std::string_view name) const;

 private:
  struct Entry {
    MetricKind kind{MetricKind::kCounter};
    const u64* counter{nullptr};
    const i64* gauge{nullptr};
    const Histogram* hist{nullptr};
    // Owned storage (when the registry allocated the slot).
    std::unique_ptr<u64> own_counter;
    std::unique_ptr<i64> own_gauge;
    std::unique_ptr<Histogram> own_hist;
  };

  std::map<std::string, Entry, std::less<>> entries_;  // sorted ⇒ sorted snapshots
};

/// Registers every field of a stats struct as a counter view under
/// `prefix.field`.  Works for any struct with an ADL-visible
/// `for_each_field(const S&, fn)` enumerating `(const char*, const u64&)`
/// pairs — the same enumeration obs::stat_rows() uses for formatting, so
/// field names exist in exactly one place per struct.
template <class Stats>
void expose_stats(MetricsRegistry& reg, const std::string& prefix,
                  const Stats& s) {
  for_each_field(s, [&](const char* name, const u64& v) {
    reg.expose_counter(prefix + "." + name, &v);
  });
}

}  // namespace vwire::obs
