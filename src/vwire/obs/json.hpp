// Minimal JSON value model + parser for the offline report loader.
//
// Scope: exactly what parse_report_jsonl() needs — objects, arrays,
// strings with \uXXXX escapes, numbers, bools, null.  Numbers keep both a
// double and the raw source token, so 64-bit integers above 2^53 (campaign
// seeds, packet uids, span ids) survive a parse/serialize round trip
// losslessly via as_i64()/as_u64().  Parse errors throw std::runtime_error
// with a byte offset.  Not a general-purpose JSON library and not meant to
// become one.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vwire::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  /// Lossless integer reads.  A number parses exactly when its raw token is
  /// a plain integer in range (no '.', exponent, or overflow); otherwise
  /// these fall back to converting the double — identical to the old
  /// behaviour for small or fractional values, lossless above 2^53.
  long long as_i64() const;
  unsigned long long as_u64() const;
  const std::string& as_string() const { return str_; }
  const std::vector<JsonValue>& as_array() const { return arr_; }
  const std::map<std::string, JsonValue>& as_object() const { return obj_; }

  bool has(const std::string& key) const { return obj_.count(key) != 0; }
  /// Object member access; throws when absent.
  const JsonValue& at(const std::string& key) const;

  // Convenience typed lookups with defaults (missing key → fallback).
  double num(const std::string& key, double fallback = 0) const;
  long long integer(const std::string& key, long long fallback = 0) const;
  unsigned long long uint(const std::string& key,
                          unsigned long long fallback = 0) const;
  std::string str(const std::string& key, std::string fallback = "") const;
  bool boolean(const std::string& key, bool fallback = false) const;

  /// Parses one JSON document; trailing non-whitespace is an error.
  static JsonValue parse(std::string_view text);

 private:
  friend class JsonParser;
  Type type_{Type::kNull};
  bool bool_{false};
  double num_{0};
  /// For kString this is the decoded string; for kNumber it is the raw
  /// source token (e.g. "9007199254740995"), the side channel behind
  /// as_i64()/as_u64().
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

/// Escapes a string for embedding in a JSON document (adds no quotes).
std::string json_escape(std::string_view s);

}  // namespace vwire::obs
