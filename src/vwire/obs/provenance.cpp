#include "vwire/obs/provenance.hpp"

namespace vwire::obs {

std::vector<FiringRecord> ProvenanceRing::collect() const {
  std::vector<FiringRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest record: when the ring has wrapped, it sits at head_ (the slot
  // about to be overwritten next); before wrapping, slot 0.
  const std::size_t start = total_ > buf_.size() ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(buf_[(start + i) % buf_.size()]);
  }
  return out;
}

}  // namespace vwire::obs
