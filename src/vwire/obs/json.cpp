#include "vwire/obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>

namespace vwire::obs {

const JsonValue& JsonValue::at(const std::string& key) const {
  auto it = obj_.find(key);
  if (it == obj_.end())
    throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

namespace {

/// Exact integer read from a number's raw token; falls back to the double
/// when the token isn't a plain in-range integer (fraction, exponent,
/// overflow — the double is the best available value there anyway).
template <typename Int>
Int token_to_int(const std::string& token, double num) {
  Int exact{};
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), exact);
  if (ec == std::errc{} && ptr == token.data() + token.size()) return exact;
  // Saturate out-of-range doubles: casting them is undefined behaviour
  // (e.g. a negative value read through as_u64()).  The negated comparison
  // also routes NaN to the minimum.
  if (!(num >= static_cast<double>(std::numeric_limits<Int>::min()))) {
    return std::numeric_limits<Int>::min();
  }
  if (num >= static_cast<double>(std::numeric_limits<Int>::max())) {
    return std::numeric_limits<Int>::max();
  }
  return static_cast<Int>(num);
}

}  // namespace

long long JsonValue::as_i64() const {
  return token_to_int<long long>(str_, num_);
}

unsigned long long JsonValue::as_u64() const {
  return token_to_int<unsigned long long>(str_, num_);
}

double JsonValue::num(const std::string& key, double fallback) const {
  auto it = obj_.find(key);
  return it != obj_.end() && it->second.type_ == Type::kNumber
             ? it->second.num_
             : fallback;
}

long long JsonValue::integer(const std::string& key,
                             long long fallback) const {
  auto it = obj_.find(key);
  return it != obj_.end() && it->second.type_ == Type::kNumber
             ? it->second.as_i64()
             : fallback;
}

unsigned long long JsonValue::uint(const std::string& key,
                                   unsigned long long fallback) const {
  auto it = obj_.find(key);
  return it != obj_.end() && it->second.type_ == Type::kNumber
             ? it->second.as_u64()
             : fallback;
}

std::string JsonValue::str(const std::string& key,
                           std::string fallback) const {
  auto it = obj_.find(key);
  return it != obj_.end() && it->second.type_ == Type::kString
             ? it->second.str_
             : std::move(fallback);
}

bool JsonValue::boolean(const std::string& key, bool fallback) const {
  auto it = obj_.find(key);
  return it != obj_.end() && it->second.type_ == Type::kBool
             ? it->second.bool_
             : fallback;
}

/// Implementation detail of JsonValue::parse (named, not anonymous, so the
/// friend declaration in json.hpp reaches it).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue parse_value() {
    // Depth guard: the parser recurses per nesting level, so an adversarial
    // "[[[[..." document (the service daemon parses untrusted frames) would
    // otherwise overflow the stack.  64 levels is far beyond any document
    // this codebase emits.
    if (depth_ >= 64) fail("nesting too deep");
    ++depth_;
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"': v = parse_string(); break;
      case 't': case 'f': v = parse_bool(); break;
      case 'n': v = parse_null(); break;
      default: v = parse_number(); break;
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.obj_.emplace(key.str_, parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.arr_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    JsonValue v;
    v.type_ = JsonValue::Type::kString;
    expect('"');
    while (true) {
      char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c == '\\') {
        char e = peek();
        ++pos_;
        switch (e) {
          case '"': v.str_ += '"'; break;
          case '\\': v.str_ += '\\'; break;
          case '/': v.str_ += '/'; break;
          case 'b': v.str_ += '\b'; break;
          case 'f': v.str_ += '\f'; break;
          case 'n': v.str_ += '\n'; break;
          case 'r': v.str_ += '\r'; break;
          case 't': v.str_ += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // UTF-8 encode (no surrogate-pair support; report strings are
            // node names and metric names, plain ASCII in practice).
            if (cp < 0x80) {
              v.str_ += static_cast<char>(cp);
            } else if (cp < 0x800) {
              v.str_ += static_cast<char>(0xC0 | (cp >> 6));
              v.str_ += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              v.str_ += static_cast<char>(0xE0 | (cp >> 12));
              v.str_ += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              v.str_ += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        v.str_ += c;
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.type_ = JsonValue::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.bool_ = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.bool_ = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.substr(pos_, 4) != "null") fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E'))
      ++end;
    double d = 0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + pos_, text_.data() + end, d);
    if (ec != std::errc{} || ptr == text_.data() + pos_) fail("bad number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.num_ = d;
    // Keep the raw token: integers above 2^53 are not representable as
    // doubles, and seeds/uids round-trip through as_i64()/as_u64().
    v.str_.assign(text_.data() + pos_,
                  static_cast<std::size_t>(ptr - (text_.data() + pos_)));
    pos_ = static_cast<std::size_t>(ptr - text_.data());
    return v;
  }

  std::string_view text_;
  std::size_t pos_{0};
  int depth_{0};
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace vwire::obs
