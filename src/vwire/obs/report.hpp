// Machine-readable scenario export (DESIGN.md §7).
//
// A ScenarioReport is the offline artifact of one run: every registry
// metric, every collected FiringRecord, the link-fault timeline, trace
// annotations and flagged errors, serialized as JSONL — one schema-versioned
// JSON object per line, `{"v":1,"type":...}` — plus an optional per-node
// metrics CSV.  parse_report_jsonl() is the matching loader: it rejects
// unknown event types and schema versions, so two reports can be diffed or
// post-processed by scripts with confidence (see EXPERIMENTS.md).
//
// This module depends only on vw_util; the glue that fills a report from a
// live Testbed/ScenarioResult lives in the api layer (make_report()).
#pragma once

#include <string>
#include <vector>

#include "vwire/obs/metrics.hpp"
#include "vwire/obs/provenance.hpp"

namespace vwire::obs {

/// Bumped on any backwards-incompatible event change; the loader refuses
/// other versions.
inline constexpr int kReportSchemaVersion = 1;

/// The known `type` values, in emission order.  The loader fails on
/// anything else — an unknown type means a writer/reader skew.
inline constexpr const char* kEventTypes[] = {
    "meta", "metric", "firing", "link_event", "annotation", "error",
};

struct ReportMeta {
  std::string scenario;
  std::string tool{"vwire"};
  u64 seed{0};
  TimePoint ended_at{};
  bool passed{false};
  std::vector<std::string> nodes;
};

struct LinkEventOut {
  TimePoint at{};
  std::string node;
  std::string description;
};

struct AnnotationEvent {
  TimePoint at{};
  std::string node;
  std::string text;
};

struct ErrorEvent {
  TimePoint at{};
  std::string node;
  u16 rule{0xffff};
};

struct ScenarioReport {
  ReportMeta meta;
  std::vector<MetricsRegistry::Sample> metrics;
  std::vector<FiringRecord> firings;
  u64 firings_dropped{0};  ///< ring overwrites across all nodes
  std::vector<LinkEventOut> link_events;
  std::vector<AnnotationEvent> annotations;
  std::vector<ErrorEvent> errors;

  /// Counter-id → script name, for readable firing snapshots.
  std::vector<std::string> counter_names;

  std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

  /// Per-node metric matrix: one row per `layer.node.metric` name, columns
  /// name,kind,value,count,min,max,mean,p50,p90,p95,p99.
  std::string to_csv() const;
  bool write_csv(const std::string& path) const;
};

/// Loads a JSONL report back into memory.  Throws std::runtime_error on
/// malformed JSON, wrong schema version, or an unknown event type.
ScenarioReport parse_report_jsonl(const std::string& text);

/// Convenience: read + parse a file; throws on I/O failure too.
ScenarioReport load_report(const std::string& path);

}  // namespace vwire::obs
