#include "vwire/obs/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "vwire/obs/json.hpp"

namespace vwire::obs {

namespace {

bool known_type(const std::string& t) {
  for (const char* k : kEventTypes)
    if (t == k) return true;
  return false;
}

void append_num(std::string& out, const char* key, double v) {
  char buf[64];
  // Integers (the common case: times, counts) print without a fraction so
  // jq and diff see stable text.
  if (v == static_cast<double>(static_cast<i64>(v))) {
    std::snprintf(buf, sizeof buf, "\"%s\":%" PRId64, key,
                  static_cast<i64>(v));
  } else {
    std::snprintf(buf, sizeof buf, "\"%s\":%.6g", key, v);
  }
  out += buf;
}

void append_str(std::string& out, const char* key, std::string_view v) {
  out += '"';
  out += key;
  out += "\":\"";
  out += json_escape(v);
  out += '"';
}

std::string hist_json(const HistogramSnapshot& h) {
  std::string out = "{";
  append_num(out, "count", static_cast<double>(h.count));
  out += ',';
  append_num(out, "min", static_cast<double>(h.min));
  out += ',';
  append_num(out, "max", static_cast<double>(h.max));
  out += ',';
  append_num(out, "mean", h.mean);
  out += ',';
  append_num(out, "p50", static_cast<double>(h.p50));
  out += ',';
  append_num(out, "p90", static_cast<double>(h.p90));
  out += ',';
  append_num(out, "p95", static_cast<double>(h.p95));
  out += ',';
  append_num(out, "p99", static_cast<double>(h.p99));
  out += '}';
  return out;
}

/// Maps a parsed action-kind string back to static storage (kind_name is a
/// `const char*`).  The vocabulary mirrors core::to_string(ActionKind) —
/// duplicated here because obs deliberately does not depend on core — and
/// unknown kinds intern to "" rather than failing: the kind is descriptive,
/// not load-bearing.
const char* intern_kind(const std::string& k) {
  static constexpr const char* kKinds[] = {
      "DROP",        "DELAY",       "REORDER",      "DUP",
      "MODIFY",      "FAIL",        "STOP",         "FLAG_ERROR",
      "ASSIGN_CNTR", "ENABLE_CNTR", "DISABLE_CNTR", "INCR_CNTR",
      "DECR_CNTR",   "RESET_CNTR",  "SET_CURTIME",  "ELAPSED_TIME"};
  for (const char* s : kKinds) {
    if (k == s) return s;
  }
  return "";
}

// Saturating double → integer conversions for loader fields.  A fuzzed or
// hand-edited report can carry any JSON number (NaN, 1e999, -5) where the
// writer emits a bounded integer; a raw static_cast of an out-of-range
// double is UB, so clamp instead.  The `!(v >= lo)` form is also the NaN
// check.
i64 to_i64(double v) {
  if (!(v >= -9223372036854775808.0)) return std::numeric_limits<i64>::min();
  if (v >= 9223372036854775808.0) return std::numeric_limits<i64>::max();
  return static_cast<i64>(v);
}

u64 to_u64(double v) {
  if (!(v >= 0.0)) return 0;
  if (v >= 18446744073709551616.0) return std::numeric_limits<u64>::max();
  return static_cast<u64>(v);
}

u16 to_u16(double v) {
  if (!(v >= 0.0)) return 0;
  if (v >= 65535.0) return 0xffff;
  return static_cast<u16>(v);
}

HistogramSnapshot hist_from_json(const JsonValue& v) {
  HistogramSnapshot h;
  h.count = to_u64(v.num("count"));
  h.min = to_i64(v.num("min"));
  h.max = to_i64(v.num("max"));
  h.mean = v.num("mean");
  h.p50 = to_i64(v.num("p50"));
  h.p90 = to_i64(v.num("p90"));
  h.p95 = to_i64(v.num("p95"));
  h.p99 = to_i64(v.num("p99"));
  return h;
}

}  // namespace

std::string ScenarioReport::to_jsonl() const {
  std::string out;

  // meta — always the first line.
  out += "{\"v\":1,\"type\":\"meta\",";
  append_str(out, "scenario", meta.scenario);
  out += ',';
  append_str(out, "tool", meta.tool);
  out += ',';
  append_num(out, "seed", static_cast<double>(meta.seed));
  out += ',';
  append_num(out, "ended_at_ns", static_cast<double>(meta.ended_at.ns));
  out += ",\"passed\":";
  out += meta.passed ? "true" : "false";
  out += ",\"nodes\":[";
  for (std::size_t i = 0; i < meta.nodes.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(meta.nodes[i]);
    out += '"';
  }
  out += "],";
  append_num(out, "firings_dropped", static_cast<double>(firings_dropped));
  out += "}\n";

  for (const auto& m : metrics) {
    out += "{\"v\":1,\"type\":\"metric\",";
    append_str(out, "name", m.name);
    out += ',';
    append_str(out, "kind", to_string(m.kind));
    out += ',';
    append_num(out, "value", m.value);
    if (m.kind == MetricKind::kHistogram) {
      out += ",\"hist\":";
      out += hist_json(m.hist);
    }
    out += "}\n";
  }

  auto counter_name = [&](u16 id) -> std::string {
    if (id < counter_names.size()) return counter_names[id];
    return "c" + std::to_string(id);
  };

  for (const auto& f : firings) {
    out += "{\"v\":1,\"type\":\"firing\",";
    append_num(out, "at_ns", static_cast<double>(f.at.ns));
    out += ',';
    append_str(out, "node", f.node_name);
    out += ',';
    append_num(out, "rule", f.rule);
    out += ',';
    append_num(out, "action", f.action);
    out += ',';
    append_str(out, "kind", f.kind_name ? f.kind_name : "");
    out += ',';
    append_num(out, "depth", f.cascade_depth);
    if (f.filter != FiringRecord::kNone) {
      out += ',';
      append_num(out, "filter", f.filter);
    }
    if (f.packet_uid) {
      out += ',';
      append_num(out, "packet_uid", static_cast<double>(f.packet_uid));
    }
    out += ',';
    append_num(out, "value", static_cast<double>(f.value));
    out += ',';
    append_num(out, "value2", static_cast<double>(f.value2));
    // Snapshot entries are keyed by name and emitted key-sorted, matching
    // the loader's (std::map) iteration order, so a loaded report
    // re-serializes to identical text and two reports diff cleanly.
    std::vector<std::pair<std::string, i64>> cs;
    for (u8 i = 0; i < f.n_counters; ++i) {
      cs.emplace_back(counter_name(f.counters[i].id), f.counters[i].value);
    }
    std::sort(cs.begin(), cs.end());
    out += ",\"counters\":{";
    for (std::size_t i = 0; i < cs.size(); ++i) {
      if (i) out += ',';
      out += '"';
      out += json_escape(cs[i].first);
      out += "\":";
      out += std::to_string(cs[i].second);
    }
    std::vector<std::pair<std::string, bool>> ts;
    for (u8 i = 0; i < f.n_terms; ++i) {
      ts.emplace_back("t" + std::to_string(f.terms[i].id), f.terms[i].state);
    }
    std::sort(ts.begin(), ts.end());
    out += "},\"terms\":{";
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (i) out += ',';
      out += '"';
      out += ts[i].first;
      out += "\":";
      out += ts[i].second ? "true" : "false";
    }
    out += "}}\n";
  }

  for (const auto& e : link_events) {
    out += "{\"v\":1,\"type\":\"link_event\",";
    append_num(out, "at_ns", static_cast<double>(e.at.ns));
    out += ',';
    append_str(out, "node", e.node);
    out += ',';
    append_str(out, "description", e.description);
    out += "}\n";
  }

  for (const auto& a : annotations) {
    out += "{\"v\":1,\"type\":\"annotation\",";
    append_num(out, "at_ns", static_cast<double>(a.at.ns));
    out += ',';
    append_str(out, "node", a.node);
    out += ',';
    append_str(out, "text", a.text);
    out += "}\n";
  }

  for (const auto& e : errors) {
    out += "{\"v\":1,\"type\":\"error\",";
    append_num(out, "at_ns", static_cast<double>(e.at.ns));
    out += ',';
    append_str(out, "node", e.node);
    out += ',';
    append_num(out, "rule", e.rule);
    out += "}\n";
  }

  return out;
}

bool ScenarioReport::write_jsonl(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << to_jsonl();
  return static_cast<bool>(f);
}

std::string ScenarioReport::to_csv() const {
  std::string out =
      "name,kind,value,count,min,max,mean,p50,p90,p95,p99\n";
  char buf[256];
  for (const auto& m : metrics) {
    if (m.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof buf,
                    "%s,%s,%.6g,%" PRIu64 ",%" PRId64 ",%" PRId64
                    ",%.6g,%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64 "\n",
                    m.name.c_str(), to_string(m.kind), m.value, m.hist.count,
                    m.hist.min, m.hist.max, m.hist.mean, m.hist.p50,
                    m.hist.p90, m.hist.p95, m.hist.p99);
    } else {
      std::snprintf(buf, sizeof buf, "%s,%s,%.6g,,,,,,,,\n", m.name.c_str(),
                    to_string(m.kind), m.value);
    }
    out += buf;
  }
  return out;
}

bool ScenarioReport::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

ScenarioReport parse_report_jsonl(const std::string& text) {
  ScenarioReport rep;
  bool saw_meta = false;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v = JsonValue::parse(line);
    const double ver = v.num("v", -1);
    if (ver != static_cast<double>(kReportSchemaVersion)) {
      throw std::runtime_error("report: line " + std::to_string(lineno) +
                               ": unsupported schema version " +
                               std::to_string(to_i64(ver)));
    }
    const std::string type = v.str("type");
    if (!known_type(type)) {
      throw std::runtime_error("report: line " + std::to_string(lineno) +
                               ": unknown event type '" + type + "'");
    }
    if (type == "meta") {
      saw_meta = true;
      rep.meta.scenario = v.str("scenario");
      rep.meta.tool = v.str("tool");
      rep.meta.seed = v.uint("seed");  // raw-token read: lossless above 2^53
      rep.meta.ended_at = {to_i64(v.num("ended_at_ns"))};
      rep.meta.passed = v.boolean("passed");
      rep.firings_dropped = to_u64(v.num("firings_dropped"));
      if (v.has("nodes")) {
        for (const auto& n : v.at("nodes").as_array())
          rep.meta.nodes.push_back(n.as_string());
      }
    } else if (type == "metric") {
      MetricsRegistry::Sample s;
      s.name = v.str("name");
      const std::string kind = v.str("kind");
      s.kind = kind == "histogram" ? MetricKind::kHistogram
               : kind == "gauge"   ? MetricKind::kGauge
                                   : MetricKind::kCounter;
      s.value = v.num("value");
      if (v.has("hist")) s.hist = hist_from_json(v.at("hist"));
      rep.metrics.push_back(std::move(s));
    } else if (type == "firing") {
      FiringRecord f;
      f.at = {to_i64(v.num("at_ns"))};
      f.node_name = v.str("node");
      f.rule = to_u16(v.num("rule", FiringRecord::kNone));
      f.action = to_u16(v.num("action", FiringRecord::kNone));
      f.filter = to_u16(v.num("filter", FiringRecord::kNone));
      f.kind_name = intern_kind(v.str("kind"));
      f.cascade_depth = to_u16(v.num("depth"));
      f.packet_uid = v.uint("packet_uid");  // uids can exceed 2^53
      f.value = to_i64(v.num("value"));
      f.value2 = to_i64(v.num("value2"));
      // Snapshots come back keyed by name.  Rebuild the counter id space
      // in order of first appearance (filling rep.counter_names) so the
      // loaded report re-serializes to the same text.
      if (v.has("counters")) {
        for (const auto& [name, val] : v.at("counters").as_object()) {
          if (f.n_counters >= FiringRecord::kMaxCounters) break;
          u16 id = 0;
          while (id < rep.counter_names.size() &&
                 rep.counter_names[id] != name) {
            ++id;
          }
          if (id == rep.counter_names.size()) rep.counter_names.push_back(name);
          f.counters[f.n_counters].id = id;
          f.counters[f.n_counters].value = to_i64(val.as_number());
          ++f.n_counters;
        }
      }
      if (v.has("terms")) {
        for (const auto& [name, val] : v.at("terms").as_object()) {
          if (f.n_terms >= FiringRecord::kMaxTerms) break;
          // Keys are "t<id>"; recover the id for faithful re-serialization.
          // A fuzzed key may be empty or not of that shape — fall back to 0
          // rather than reading past the string.
          u16 term_id = 0;
          if (name.size() > 1 && name[0] == 't') {
            term_id = static_cast<u16>(
                std::strtoul(name.c_str() + 1, nullptr, 10) & 0xffffu);
          }
          f.terms[f.n_terms].id = term_id;
          f.terms[f.n_terms].state = val.as_bool();
          ++f.n_terms;
        }
      }
      rep.firings.push_back(std::move(f));
    } else if (type == "link_event") {
      rep.link_events.push_back(
          {{to_i64(v.num("at_ns"))}, v.str("node"), v.str("description")});
    } else if (type == "annotation") {
      rep.annotations.push_back(
          {{to_i64(v.num("at_ns"))}, v.str("node"), v.str("text")});
    } else {  // error
      rep.errors.push_back(
          {{to_i64(v.num("at_ns"))}, v.str("node"), to_u16(v.num("rule"))});
    }
  }
  if (!saw_meta) throw std::runtime_error("report: no meta event");
  return rep;
}

ScenarioReport load_report(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("report: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_report_jsonl(ss.str());
}

}  // namespace vwire::obs
