// Causal packet-lifecycle tracing (DESIGN.md §12).
//
// Every net::Packet carries a span id assigned at origin; clones (DUP
// twins, RLL retransmissions, encapsulation rewrites) record the source
// span as their parent, so the full causal history of a frame — who sent
// it, which queue delayed it, which FSL rule dropped or duplicated it,
// which retransmission resurrected it — is a chain of SpanEvents.  Each
// node owns one bounded FlightRecorder; layers append events as packets
// traverse them and the chaos harness snapshots all recorders into the
// repro artifact when an invariant trips.
//
// The ring is lock-free (seqlock-per-slot over a fetch_add claim counter)
// so a recorder can be drained by another thread — vwired streams live
// telemetry while campaign runners record — without a mutex on the
// per-packet hot path.  Like TraceBuffer/ProvenanceRing, it drops oldest
// with explicit eviction accounting: total() == size() + dropped().
#pragma once

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "vwire/util/types.hpp"

namespace vwire::obs {

class JsonValue;

/// What happened to a span at one instant.
enum class SpanEventKind : u8 {
  kNicTx = 0,        ///< frame handed to the wire by a NIC
  kNicRx = 1,        ///< frame delivered to a NIC
  kLinkDrop = 2,     ///< medium dropped the frame (detail = DropCause)
  kLinkDelay = 3,    ///< link fault added latency (value = extra ns)
  kFault = 4,        ///< FSL fault fired (rule = condition id)
  kFaultSkipped = 5, ///< RATE/PROB modifier suppressed a match (rule id)
  kRllRetx = 6,      ///< RLL retransmission (parent = original frame's span)
  kRllDupRx = 7,     ///< RLL received an already-delivered duplicate
  kCrash = 8,        ///< node crashed (span 0)
  kRecover = 9,      ///< node recovered (span 0)
};
const char* to_string(SpanEventKind k);

/// Why the medium dropped a frame (SpanEventKind::kLinkDrop detail).
enum class DropCause : u8 {
  kNone = 0,
  kPortDown = 1,  ///< destination port administratively down (FAIL)
  kQueue = 2,     ///< transmit queue overflow
  kBitError = 3,  ///< corrupted by the bit-error model
  kCut = 4,       ///< scheduled link cut
  kFlap = 5,      ///< flap cycle's down phase
  kLoss = 6,      ///< scheduled probabilistic loss
};
const char* to_string(DropCause c);

/// One recorded instant in a span's life.  `node` is empty inside the ring
/// (the recorder is per-node) and stamped at collection time.
struct SpanEvent {
  i64 at_ns{0};
  u64 span{0};
  u64 parent{0};           ///< originating span (0 = origin frame)
  SpanEventKind kind{SpanEventKind::kNicTx};
  u16 rule{0xffff};        ///< FSL condition id for kFault/kFaultSkipped
  u8 detail{0};            ///< kind-specific code (DropCause, ActionKind)
  i64 value{0};            ///< kind-specific magnitude (delay ns, …)
  std::string node;
};

/// Bounded lock-free ring of SpanEvents, overwrite-oldest.
///
/// Writer protocol (per slot): claim an index with one fetch_add, mark the
/// slot's sequence word odd, publish the payload through relaxed atomic
/// words, then store the even sequence encoding the claim index with
/// release order.  collect() re-checks the sequence word around its reads
/// and discards slots caught mid-write, so a torn lap is never observed.
/// capacity 0 (or sample_rate <= 0) disables recording entirely.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 0, double sample_rate = 1.0) {
    reset(capacity, sample_rate);
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Re-arms the ring (not thread-safe; call between runs).
  void reset(std::size_t capacity, double sample_rate);

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }

  /// Events ever offered to an enabled ring (sampled-out spans excluded).
  u64 total() const { return claim_.load(std::memory_order_acquire); }
  std::size_t size() const {
    const u64 t = total();
    return t < capacity_ ? static_cast<std::size_t>(t) : capacity_;
  }
  /// Events lost to overwrite: total() == size() + dropped().
  u64 dropped() const {
    const u64 t = total();
    return t > capacity_ ? t - capacity_ : 0;
  }

  /// Deterministic per-span sampling lottery (the trace_sample_rate knob):
  /// a span is either fully recorded or fully invisible on this recorder,
  /// decided by a multiplicative hash of its id — no RNG state, so replays
  /// sample identically.
  bool sampled(u64 span) const {
    if (span == 0) return true;  // control-plane events are never sampled out
    return static_cast<u32>((span * 0x9E3779B97F4A7C15ull) >> 40) <
           sample_threshold_;
  }

  /// Hot path: a handful of relaxed atomic stores plus one fetch_add.
  /// Callers should gate on a null-pointer check, not enabled(), when the
  /// recorder itself may be absent.
  void record(i64 at_ns, u64 span, u64 parent, SpanEventKind kind,
              u16 rule = 0xffff, u8 detail = 0, i64 value = 0) {
    if (capacity_ == 0 || !sampled(span)) return;
    const u64 idx = claim_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[slot_index(idx)];
    s.seq.store(2 * idx + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.w[0].store(static_cast<u64>(at_ns), std::memory_order_relaxed);
    s.w[1].store(span, std::memory_order_relaxed);
    s.w[2].store(parent, std::memory_order_relaxed);
    s.w[3].store(static_cast<u64>(kind) | (static_cast<u64>(detail) << 8) |
                     (static_cast<u64>(rule) << 16),
                 std::memory_order_relaxed);
    s.w[4].store(static_cast<u64>(value), std::memory_order_relaxed);
    s.seq.store(2 * idx + 2, std::memory_order_release);
  }

  /// Stable events oldest → newest.  Safe concurrently with writers; slots
  /// caught mid-write are skipped (they are being overwritten, i.e. they
  /// hold evicted history anyway).
  std::vector<SpanEvent> collect() const;

  void clear() { claim_.store(0, std::memory_order_release); }

 private:
  struct Slot {
    std::atomic<u64> seq{0};  ///< 0 = never written; odd = write in flight
    std::atomic<u64> w[5];
  };

  /// Power-of-two capacities (the default) wrap with a mask instead of an
  /// integer divide — the divide is the single biggest instruction on the
  /// record() hot path.
  std::size_t slot_index(u64 idx) const {
    return mask_ != 0 ? static_cast<std::size_t>(idx & mask_)
                      : static_cast<std::size_t>(idx % capacity_);
  }

  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_{0};
  u64 mask_{0};              ///< capacity-1 when capacity is a power of two
  u32 sample_threshold_{0};  ///< 24-bit compare point for sampled()
  std::atomic<u64> claim_{0};
};

/// JSON array of events (one compact object per event), the form embedded
/// in chaos repro artifacts: [{"at_ns":..,"node":"..","span":..,...},..].
std::string timeline_json(const std::vector<SpanEvent>& events);

/// Parses timeline_json() output back (a JSON *array* value).  Throws
/// std::runtime_error on malformed input; unknown kinds are rejected.
std::vector<SpanEvent> timeline_from_value(const JsonValue& v);

/// Chrome trace_event export (chrome://tracing / Perfetto "JSON Array
/// Format" with metadata): {"displayTimeUnit":"ms","traceEvents":[...]}.
/// Each SpanEvent becomes an instant event on its node's thread lane.
std::string chrome_trace_json(const std::vector<SpanEvent>& events);

}  // namespace vwire::obs
