// IPv4 header (20 bytes, no options) with real checksum handling.
#pragma once

#include "vwire/net/address.hpp"

namespace vwire::net {

enum class IpProto : u8 {
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;

  u8 tos{0};
  u16 total_length{0};  ///< header + payload, bytes
  u16 identification{0};
  u8 ttl{64};
  u8 protocol{0};
  u16 checksum{0};  ///< filled by write() when compute_checksum
  Ipv4Address src;
  Ipv4Address dst;

  /// Serializes at `off`; computes and stores the header checksum unless
  /// `compute_checksum` is false (used by tests that need bad checksums).
  void write(BytesSpan out, std::size_t off = 0, bool compute_checksum = true);

  static std::optional<Ipv4Header> read(BytesView in, std::size_t off = 0);

  /// True if the stored checksum matches the header bytes.
  static bool verify_checksum(BytesView in, std::size_t off = 0);
};

/// Sum of the TCP/UDP pseudo-header fields (src, dst, proto, length).
u32 pseudo_header_sum(const Ipv4Address& src, const Ipv4Address& dst,
                      IpProto proto, u16 length);

}  // namespace vwire::net
