// Ethernet II framing.
//
// Frames on the simulated wire carry the standard 14-byte header, so the
// paper's filter offsets hold: ethertype at offset 12 (Rether's filter
// `(12 2 0x9900)`), IPv4 header at 14, TCP ports at 34/36, TCP flags at 47.
#pragma once

#include "vwire/net/address.hpp"

namespace vwire::net {

/// Ethertypes seen on the VirtualWire testbed wire.
enum class EtherType : u16 {
  kIpv4 = 0x0800,
  kRether = 0x9900,     // the paper's Rether protocol identifier (Fig 6)
  kVwControl = 0x88B5,  // VirtualWire control plane (experimental range)
  kRll = 0x88B6,        // Reliable Link Layer encapsulation
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst;
  MacAddress src;
  u16 ethertype{0};

  /// Serializes into `out` at `off`; `out` must have 14 bytes of room.
  void write(BytesSpan out, std::size_t off = 0) const;

  /// Parses from `in` at `off`; nullopt if fewer than 14 bytes remain.
  static std::optional<EthernetHeader> read(BytesView in, std::size_t off = 0);
};

/// Builds a complete frame: header + payload.
Bytes make_frame(const MacAddress& dst, const MacAddress& src, u16 ethertype,
                 BytesView payload);

/// The ethertype field of a raw frame (0 if truncated).
u16 frame_ethertype(BytesView frame);

}  // namespace vwire::net
