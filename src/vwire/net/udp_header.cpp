#include "vwire/net/udp_header.hpp"

#include "vwire/util/checksum.hpp"

namespace vwire::net {

void UdpHeader::write(BytesSpan out, std::size_t off, BytesView payload,
                      const Ipv4Address& src, const Ipv4Address& dst) {
  length = static_cast<u16>(kSize + payload.size());
  write_u16(out, off + 0, src_port);
  write_u16(out, off + 2, dst_port);
  write_u16(out, off + 4, length);
  write_u16(out, off + 6, 0);
  u32 acc = pseudo_header_sum(src, dst, IpProto::kUdp, length);
  acc = checksum_partial(BytesView(out).subspan(off, kSize), acc);
  acc = checksum_partial(payload, acc);
  checksum = checksum_finish(acc);
  if (checksum == 0) checksum = 0xffff;  // RFC 768: 0 means "no checksum"
  write_u16(out, off + 6, checksum);
}

std::optional<UdpHeader> UdpHeader::read(BytesView in, std::size_t off) {
  if (in.size() < off + kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = read_u16(in, off + 0);
  h.dst_port = read_u16(in, off + 2);
  h.length = read_u16(in, off + 4);
  h.checksum = read_u16(in, off + 6);
  return h;
}

bool UdpHeader::verify_checksum(BytesView in, std::size_t off,
                                std::size_t dgram_len, const Ipv4Address& src,
                                const Ipv4Address& dst) {
  if (in.size() < off + dgram_len || dgram_len < kSize) return false;
  if (read_u16(in, off + 6) == 0) return true;  // checksum disabled
  u32 acc = pseudo_header_sum(src, dst, IpProto::kUdp, static_cast<u16>(dgram_len));
  acc = checksum_partial(in.subspan(off, dgram_len), acc);
  u16 result = checksum_finish(acc);
  // A transmitted 0 is sent as 0xffff; sum including it yields 0 or 0xffff.
  return result == 0 || result == 0xffff;
}

}  // namespace vwire::net
