// UDP header (8 bytes) with real checksum handling.
#pragma once

#include "vwire/net/ipv4.hpp"

namespace vwire::net {

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  u16 src_port{0};
  u16 dst_port{0};
  u16 length{0};  ///< header + payload
  u16 checksum{0};

  /// Serializes at `off`, computing the checksum over pseudo-header +
  /// header + payload.
  void write(BytesSpan out, std::size_t off, BytesView payload,
             const Ipv4Address& src, const Ipv4Address& dst);

  static std::optional<UdpHeader> read(BytesView in, std::size_t off = 0);

  static bool verify_checksum(BytesView in, std::size_t off, std::size_t dgram_len,
                              const Ipv4Address& src, const Ipv4Address& dst);
};

}  // namespace vwire::net
