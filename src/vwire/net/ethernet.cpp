#include "vwire/net/ethernet.hpp"

#include <algorithm>

namespace vwire::net {

void EthernetHeader::write(BytesSpan out, std::size_t off) const {
  std::copy(dst.bytes().begin(), dst.bytes().end(), out.begin() + off);
  std::copy(src.bytes().begin(), src.bytes().end(), out.begin() + off + 6);
  write_u16(out, off + 12, ethertype);
}

std::optional<EthernetHeader> EthernetHeader::read(BytesView in,
                                                   std::size_t off) {
  if (in.size() < off + kSize) return std::nullopt;
  EthernetHeader h;
  std::array<u8, 6> d{}, s{};
  std::copy_n(in.begin() + off, 6, d.begin());
  std::copy_n(in.begin() + off + 6, 6, s.begin());
  h.dst = MacAddress(d);
  h.src = MacAddress(s);
  h.ethertype = read_u16(in, off + 12);
  return h;
}

Bytes make_frame(const MacAddress& dst, const MacAddress& src, u16 ethertype,
                 BytesView payload) {
  Bytes frame(EthernetHeader::kSize + payload.size());
  EthernetHeader{dst, src, ethertype}.write(frame);
  std::copy(payload.begin(), payload.end(),
            frame.begin() + EthernetHeader::kSize);
  return frame;
}

u16 frame_ethertype(BytesView frame) {
  if (frame.size() < EthernetHeader::kSize) return 0;
  return read_u16(frame, 12);
}

}  // namespace vwire::net
