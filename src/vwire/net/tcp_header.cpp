#include "vwire/net/tcp_header.hpp"

#include "vwire/util/checksum.hpp"

namespace vwire::net {

void TcpHeader::write_raw(BytesSpan out, std::size_t off) const {
  write_u16(out, off + 0, src_port);
  write_u16(out, off + 2, dst_port);
  write_u32(out, off + 4, seq);
  write_u32(out, off + 8, ack);
  write_u8(out, off + 12, 0x50);  // data offset 5 words, no options
  write_u8(out, off + 13, flags);
  write_u16(out, off + 14, window);
  write_u16(out, off + 16, checksum);
  write_u16(out, off + 18, 0);  // urgent pointer unused
}

void TcpHeader::write(BytesSpan out, std::size_t off, BytesView payload,
                      const Ipv4Address& src, const Ipv4Address& dst) {
  checksum = 0;
  write_raw(out, off);
  u16 seg_len = static_cast<u16>(kSize + payload.size());
  u32 acc = pseudo_header_sum(src, dst, IpProto::kTcp, seg_len);
  acc = checksum_partial(BytesView(out).subspan(off, kSize), acc);
  acc = checksum_partial(payload, acc);
  checksum = checksum_finish(acc);
  write_u16(out, off + 16, checksum);
}

std::optional<TcpHeader> TcpHeader::read(BytesView in, std::size_t off) {
  if (in.size() < off + kSize) return std::nullopt;
  TcpHeader h;
  h.src_port = read_u16(in, off + 0);
  h.dst_port = read_u16(in, off + 2);
  h.seq = read_u32(in, off + 4);
  h.ack = read_u32(in, off + 8);
  h.flags = read_u8(in, off + 13);
  h.window = read_u16(in, off + 14);
  h.checksum = read_u16(in, off + 16);
  return h;
}

bool TcpHeader::verify_checksum(BytesView in, std::size_t off,
                                std::size_t seg_len, const Ipv4Address& src,
                                const Ipv4Address& dst) {
  if (in.size() < off + seg_len || seg_len < kSize) return false;
  u32 acc = pseudo_header_sum(src, dst, IpProto::kTcp, static_cast<u16>(seg_len));
  acc = checksum_partial(in.subspan(off, seg_len), acc);
  return checksum_finish(acc) == 0;
}

std::string TcpHeader::flags_string() const {
  std::string s;
  if (flags & tcp_flags::kSyn) s += "S";
  if (flags & tcp_flags::kFin) s += "F";
  if (flags & tcp_flags::kRst) s += "R";
  if (flags & tcp_flags::kPsh) s += "P";
  if (flags & tcp_flags::kAck) s += ".";
  if (flags & tcp_flags::kUrg) s += "U";
  return s.empty() ? "-" : s;
}

}  // namespace vwire::net
