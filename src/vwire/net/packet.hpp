// Packet — an owning raw Ethernet frame plus testbed metadata.
//
// The frame bytes are authoritative: every layer (IP, TCP, Rether, the
// FIE/FAE classifier) reads and writes the same byte buffer, so a MODIFY
// fault that flips a byte is visible to everything downstream exactly as it
// would be on a real wire.
#pragma once

#include <memory>

#include "vwire/net/ethernet.hpp"

namespace vwire::net {

/// Direction of a packet relative to the node whose stack it traverses.
enum class Direction : u8 {
  kSend = 0,  ///< leaving this node (driver-bound)
  kRecv = 1,  ///< arriving at this node (IP-bound)
};

const char* to_string(Direction d);

class Packet {
 public:
  Packet() = default;
  explicit Packet(Bytes frame);

  /// Unique id assigned at construction; survives copies so that DUP
  /// produces a distinguishable twin (the copy gets a fresh uid).
  u64 uid() const { return uid_; }

  /// Causal-trace span id (DESIGN.md §12).  Equals uid() at origin; a
  /// clone() (DUP twin, RLL retransmission) keeps its own fresh span but
  /// records the source span as parent, so flight-recorder timelines can
  /// chain a delivered frame back to the transmission that forged it.
  u64 span() const { return span_; }
  u64 parent_span() const { return parent_span_; }

  /// Marks this packet as causally derived from `origin` (header
  /// encapsulation/decapsulation, where the bytes change but the intent is
  /// the same frame).
  void derive_from(const Packet& origin) { parent_span_ = origin.span_; }

  const Bytes& bytes() const { return frame_; }
  Bytes& mutable_bytes() { return frame_; }
  std::size_t size() const { return frame_.size(); }

  BytesView view() const { return frame_; }

  /// Ethernet header accessors on the raw bytes.
  std::optional<EthernetHeader> ethernet() const {
    return EthernetHeader::read(frame_);
  }
  u16 ethertype() const { return frame_ethertype(frame_); }

  /// Payload view past the Ethernet header (empty if truncated).
  BytesView l3_payload() const;

  /// Deep copy with a fresh uid (the DUP primitive).
  Packet clone() const;

  /// Deep copy representing the *same* transmission at another point on the
  /// wire (switch egress, shared-bus fan-out): fresh uid for ownership, but
  /// the span identity is preserved so a delivered frame's kNicRx lands on
  /// the span its kNicTx opened.  clone() is for causally-new frames (DUP
  /// twins, retransmissions); wire_copy() is for the frame in flight.
  Packet wire_copy() const;

  /// Restarts the uid stream (thread-local).  A fresh Testbed calls this so
  /// packet uids are a deterministic function of the run, not of whatever
  /// ran earlier in the process — chaos replay compares telemetry
  /// byte-for-byte and uids appear in firing provenance.
  static void reset_uid_counter();

  /// Timestamp of initial transmission, stamped by the sending NIC;
  /// used by traces and by latency measurement.
  TimePoint created_at{};

 private:
  static u64 next_uid();
  Bytes frame_;
  u64 uid_{0};
  u64 span_{0};
  u64 parent_span_{0};
};

}  // namespace vwire::net
