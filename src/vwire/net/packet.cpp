#include "vwire/net/packet.hpp"

namespace vwire::net {

const char* to_string(Direction d) {
  return d == Direction::kSend ? "SEND" : "RECV";
}

Packet::Packet(Bytes frame) : frame_(std::move(frame)), uid_(next_uid()) {}

BytesView Packet::l3_payload() const {
  if (frame_.size() <= EthernetHeader::kSize) return {};
  return BytesView(frame_).subspan(EthernetHeader::kSize);
}

Packet Packet::clone() const {
  Packet copy(frame_);
  copy.created_at = created_at;
  return copy;
}

namespace {
thread_local u64 uid_counter = 0;
}  // namespace

u64 Packet::next_uid() { return ++uid_counter; }

void Packet::reset_uid_counter() { uid_counter = 0; }

}  // namespace vwire::net
