#include "vwire/net/packet.hpp"

namespace vwire::net {

const char* to_string(Direction d) {
  return d == Direction::kSend ? "SEND" : "RECV";
}

Packet::Packet(Bytes frame)
    : frame_(std::move(frame)), uid_(next_uid()), span_(uid_) {}

BytesView Packet::l3_payload() const {
  if (frame_.size() <= EthernetHeader::kSize) return {};
  return BytesView(frame_).subspan(EthernetHeader::kSize);
}

Packet Packet::clone() const {
  Packet copy(frame_);
  copy.created_at = created_at;
  copy.parent_span_ = span_;  // the twin is causally a child of this frame
  return copy;
}

Packet Packet::wire_copy() const {
  Packet copy(frame_);
  copy.created_at = created_at;
  copy.span_ = span_;  // same transmission, same span
  copy.parent_span_ = parent_span_;
  return copy;
}

namespace {
thread_local u64 uid_counter = 0;
}  // namespace

u64 Packet::next_uid() { return ++uid_counter; }

void Packet::reset_uid_counter() { uid_counter = 0; }

}  // namespace vwire::net
