// Frame decoding: structured view + tcpdump-style one-line summaries.
//
// This is the analysis half of the paper's motivation — instead of
// "collecting tcpdump traces and inspecting them manually" (§1), traces are
// decoded automatically; the FAE uses the raw bytes, humans use these
// summaries.
#pragma once

#include "vwire/net/packet.hpp"
#include "vwire/net/tcp_header.hpp"
#include "vwire/net/udp_header.hpp"

namespace vwire::net {

struct DecodedFrame {
  EthernetHeader eth;
  std::optional<Ipv4Header> ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::size_t l4_payload_len{0};
  bool ip_checksum_ok{true};
  bool l4_checksum_ok{true};
  bool truncated{false};
};

/// Decodes as far as the bytes allow; nullopt if not even an Ethernet
/// header is present.
std::optional<DecodedFrame> decode(BytesView frame);

/// One-line human-readable summary, e.g.
/// "ip 10.0.0.1:24576 > 10.0.0.2:16384 tcp S seq=100 ack=0 len=0".
std::string summarize(BytesView frame);

}  // namespace vwire::net
