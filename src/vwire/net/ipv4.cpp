#include "vwire/net/ipv4.hpp"

#include "vwire/util/checksum.hpp"

namespace vwire::net {

void Ipv4Header::write(BytesSpan out, std::size_t off, bool compute_checksum) {
  write_u8(out, off + 0, 0x45);  // version 4, IHL 5
  write_u8(out, off + 1, tos);
  write_u16(out, off + 2, total_length);
  write_u16(out, off + 4, identification);
  write_u16(out, off + 6, 0x4000);  // DF, no fragmentation on the testbed
  write_u8(out, off + 8, ttl);
  write_u8(out, off + 9, protocol);
  write_u16(out, off + 10, 0);
  write_u32(out, off + 12, src.value());
  write_u32(out, off + 16, dst.value());
  if (compute_checksum) {
    checksum = internet_checksum(BytesView(out).subspan(off, kSize));
    write_u16(out, off + 10, checksum);
  } else {
    write_u16(out, off + 10, checksum);
  }
}

std::optional<Ipv4Header> Ipv4Header::read(BytesView in, std::size_t off) {
  if (in.size() < off + kSize) return std::nullopt;
  if ((read_u8(in, off) >> 4) != 4) return std::nullopt;
  Ipv4Header h;
  h.tos = read_u8(in, off + 1);
  h.total_length = read_u16(in, off + 2);
  h.identification = read_u16(in, off + 4);
  h.ttl = read_u8(in, off + 8);
  h.protocol = read_u8(in, off + 9);
  h.checksum = read_u16(in, off + 10);
  h.src = Ipv4Address(read_u32(in, off + 12));
  h.dst = Ipv4Address(read_u32(in, off + 16));
  return h;
}

bool Ipv4Header::verify_checksum(BytesView in, std::size_t off) {
  if (in.size() < off + kSize) return false;
  // Summing the header including its stored checksum yields 0 when valid.
  return internet_checksum(in.subspan(off, kSize)) == 0;
}

u32 pseudo_header_sum(const Ipv4Address& src, const Ipv4Address& dst,
                      IpProto proto, u16 length) {
  u32 acc = 0;
  acc += src.value() >> 16;
  acc += src.value() & 0xffff;
  acc += dst.value() >> 16;
  acc += dst.value() & 0xffff;
  acc += static_cast<u32>(proto);
  acc += length;
  return acc;
}

}  // namespace vwire::net
