#include "vwire/net/address.hpp"

#include <cstdio>

#include "vwire/util/hex.hpp"

namespace vwire::net {

std::optional<MacAddress> MacAddress::parse(std::string_view s) {
  std::array<u8, 6> b{};
  std::size_t pos = 0;
  for (int i = 0; i < 6; ++i) {
    if (i > 0) {
      if (pos >= s.size() || s[pos] != ':') return std::nullopt;
      ++pos;
    }
    if (pos + 2 > s.size()) return std::nullopt;
    auto v = parse_hex(s.substr(pos, 2));
    if (!v) return std::nullopt;
    b[static_cast<std::size_t>(i)] = static_cast<u8>(*v);
    pos += 2;
  }
  if (pos != s.size()) return std::nullopt;
  return MacAddress(b);
}

MacAddress MacAddress::broadcast() {
  return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
}

MacAddress MacAddress::from_index(u32 index) {
  // 0x02 = locally administered, unicast.
  return MacAddress({0x02, 0x00, 0x00,
                     static_cast<u8>(index >> 16),
                     static_cast<u8>(index >> 8),
                     static_cast<u8>(index)});
}

bool MacAddress::is_broadcast() const {
  for (auto b : bytes_) {
    if (b != 0xff) return false;
  }
  return true;
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view s) {
  u32 value = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= s.size() || s[pos] != '.') return std::nullopt;
      ++pos;
    }
    std::size_t start = pos;
    u32 octet = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      octet = octet * 10 + static_cast<u32>(s[pos] - '0');
      if (octet > 255) return std::nullopt;
      ++pos;
    }
    if (pos == start || pos - start > 3) return std::nullopt;
    value = (value << 8) | octet;
  }
  if (pos != s.size()) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace vwire::net
