// Link-layer and network-layer addresses.
//
// The FSL NODE_TABLE maps a node name to its MAC and IPv4 address (paper
// Fig 2); both types parse the textual forms used there and serialize to the
// exact wire layouts the filter offsets assume.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "vwire/util/bytes.hpp"

namespace vwire::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<u8, 6> b) : bytes_(b) {}

  /// Parses "aa:bb:cc:dd:ee:ff"; nullopt on malformed input.
  static std::optional<MacAddress> parse(std::string_view s);

  /// ff:ff:ff:ff:ff:ff
  static MacAddress broadcast();

  /// A locally-administered unicast address derived from a small host index,
  /// used by testbed auto-configuration.
  static MacAddress from_index(u32 index);

  const std::array<u8, 6>& bytes() const { return bytes_; }
  bool is_broadcast() const;
  std::string to_string() const;

  friend bool operator==(const MacAddress&, const MacAddress&) = default;

 private:
  std::array<u8, 6> bytes_{};
};

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(u32 v) : value_(v) {}

  /// Parses dotted-quad "192.168.1.1"; nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view s);

  u32 value() const { return value_; }
  std::string to_string() const;

  friend bool operator==(const Ipv4Address&, const Ipv4Address&) = default;

 private:
  u32 value_{0};
};

}  // namespace vwire::net

namespace std {
template <>
struct hash<vwire::net::MacAddress> {
  size_t operator()(const vwire::net::MacAddress& m) const {
    size_t h = 1469598103934665603ull;
    for (auto b : m.bytes()) h = (h ^ b) * 1099511628211ull;
    return h;
  }
};
template <>
struct hash<vwire::net::Ipv4Address> {
  size_t operator()(const vwire::net::Ipv4Address& a) const {
    return std::hash<vwire::u32>{}(a.value());
  }
};
}  // namespace std
