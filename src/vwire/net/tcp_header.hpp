// TCP header (20 bytes, no options).
//
// Layout matters to the reproduction: in an Ethernet+IPv4 frame the source
// port lands at byte 34, destination port at 36, sequence number at 38,
// acknowledgement at 42 and the flags byte at 47 — exactly the offsets the
// paper's Fig 2 filter table uses.
#pragma once

#include "vwire/net/ipv4.hpp"

namespace vwire::net {

namespace tcp_flags {
inline constexpr u8 kFin = 0x01;
inline constexpr u8 kSyn = 0x02;
inline constexpr u8 kRst = 0x04;
inline constexpr u8 kPsh = 0x08;
inline constexpr u8 kAck = 0x10;
inline constexpr u8 kUrg = 0x20;
}  // namespace tcp_flags

struct TcpHeader {
  static constexpr std::size_t kSize = 20;

  u16 src_port{0};
  u16 dst_port{0};
  u32 seq{0};
  u32 ack{0};
  u8 flags{0};
  u16 window{0};
  u16 checksum{0};

  /// Serializes at `off` and, when src/dst are given, computes the real
  /// checksum over pseudo-header + header + `payload`.
  void write(BytesSpan out, std::size_t off, BytesView payload,
             const Ipv4Address& src, const Ipv4Address& dst);

  /// Serialization without checksum computation (checksum field as-is).
  void write_raw(BytesSpan out, std::size_t off = 0) const;

  static std::optional<TcpHeader> read(BytesView in, std::size_t off = 0);

  /// Verifies the transport checksum of a TCP segment (`in` spans header
  /// plus payload of `seg_len` bytes starting at `off`).
  static bool verify_checksum(BytesView in, std::size_t off, std::size_t seg_len,
                              const Ipv4Address& src, const Ipv4Address& dst);

  std::string flags_string() const;
};

}  // namespace vwire::net
