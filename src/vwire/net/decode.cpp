#include "vwire/net/decode.hpp"

#include <sstream>

#include "vwire/util/hex.hpp"

namespace vwire::net {

std::optional<DecodedFrame> decode(BytesView frame) {
  auto eth = EthernetHeader::read(frame);
  if (!eth) return std::nullopt;
  DecodedFrame d;
  d.eth = *eth;
  if (eth->ethertype != static_cast<u16>(EtherType::kIpv4)) return d;

  constexpr std::size_t ip_off = EthernetHeader::kSize;
  auto ip = Ipv4Header::read(frame, ip_off);
  if (!ip) {
    d.truncated = true;
    return d;
  }
  d.ip = *ip;
  d.ip_checksum_ok = Ipv4Header::verify_checksum(frame, ip_off);

  const std::size_t l4_off = ip_off + Ipv4Header::kSize;
  if (ip->total_length < Ipv4Header::kSize ||
      frame.size() < ip_off + ip->total_length) {
    d.truncated = true;
    return d;
  }
  const std::size_t l4_len = ip->total_length - Ipv4Header::kSize;

  if (ip->protocol == static_cast<u8>(IpProto::kTcp)) {
    auto tcp = TcpHeader::read(frame, l4_off);
    if (!tcp || l4_len < TcpHeader::kSize) {
      d.truncated = true;
      return d;
    }
    d.tcp = *tcp;
    d.l4_payload_len = l4_len - TcpHeader::kSize;
    d.l4_checksum_ok =
        TcpHeader::verify_checksum(frame, l4_off, l4_len, ip->src, ip->dst);
  } else if (ip->protocol == static_cast<u8>(IpProto::kUdp)) {
    auto udp = UdpHeader::read(frame, l4_off);
    if (!udp || l4_len < UdpHeader::kSize) {
      d.truncated = true;
      return d;
    }
    d.udp = *udp;
    d.l4_payload_len = l4_len - UdpHeader::kSize;
    d.l4_checksum_ok =
        UdpHeader::verify_checksum(frame, l4_off, l4_len, ip->src, ip->dst);
  }
  return d;
}

std::string summarize(BytesView frame) {
  auto d = decode(frame);
  if (!d) return "short-frame len=" + std::to_string(frame.size());

  std::ostringstream os;
  if (!d->ip) {
    os << d->eth.src.to_string() << " > " << d->eth.dst.to_string()
       << " ethertype " << to_hex(d->eth.ethertype, 4) << " len "
       << frame.size();
    return os.str();
  }
  if (d->tcp) {
    os << "ip " << d->ip->src.to_string() << ":" << d->tcp->src_port << " > "
       << d->ip->dst.to_string() << ":" << d->tcp->dst_port << " tcp "
       << d->tcp->flags_string() << " seq=" << d->tcp->seq
       << " ack=" << d->tcp->ack << " win=" << d->tcp->window
       << " len=" << d->l4_payload_len;
  } else if (d->udp) {
    os << "ip " << d->ip->src.to_string() << ":" << d->udp->src_port << " > "
       << d->ip->dst.to_string() << ":" << d->udp->dst_port << " udp len="
       << d->l4_payload_len;
  } else {
    os << "ip " << d->ip->src.to_string() << " > " << d->ip->dst.to_string()
       << " proto " << static_cast<int>(d->ip->protocol);
  }
  if (!d->ip_checksum_ok) os << " [bad ip csum]";
  if (!d->l4_checksum_ok) os << " [bad l4 csum]";
  if (d->truncated) os << " [truncated]";
  return os.str();
}

}  // namespace vwire::net
