// The simulation kernel: a clock plus the event queue.
//
// Every component in a testbed holds a Simulator& and schedules work through
// it.  The run loop advances virtual time to each event; nothing in the
// system reads wall-clock time, which is what makes scenario runs exactly
// reproducible (DESIGN.md §6.1).
#pragma once

#include "vwire/sim/event_queue.hpp"

namespace vwire::sim {

class Simulator {
 public:
  TimePoint now() const { return now_; }

  /// Schedules `fn` after `delay` from now.  Negative delays clamp to now.
  EventId after(Duration delay, EventFn fn);

  /// Schedules `fn` at an absolute time (clamped to now if in the past).
  EventId at(TimePoint t, EventFn fn);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs events with time <= deadline; leaves later events queued.
  /// Advances the clock to `deadline` even if the queue drains early.
  void run_until(TimePoint deadline);

  /// Runs at most one event; returns false if the queue was empty.
  bool step();

  /// Makes `run()`/`run_until()` return after the current event completes.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::size_t pending_events() const { return queue_.size(); }

  /// Monotone count of executed events, useful for progress diagnostics
  /// and runaway detection in tests.
  u64 executed_events() const { return executed_; }

 private:
  EventQueue queue_;
  TimePoint now_{};
  bool stopped_{false};
  u64 executed_{0};
};

}  // namespace vwire::sim
