// Restartable one-shot timer.
//
// TCP retransmission, RLL acknowledgement, Rether token-ack and the DELAY
// fault primitive all follow the same pattern: arm, maybe re-arm, maybe
// cancel, fire once.  Timer wraps that pattern and guarantees a cancelled or
// re-armed timer never fires stale (the generation counter makes superseded
// schedules no-ops even if the event survives in the queue).
//
// The paper notes the Linux soft-timer granularity is one jiffy (10 ms) and
// that DELAY can be no finer (§5.2); `quantize_up` reproduces that rounding.
#pragma once

#include "vwire/sim/simulator.hpp"

namespace vwire::sim {

/// Rounds `d` up to a whole number of `tick`s (the paper's jiffy behaviour).
Duration quantize_up(Duration d, Duration tick);

/// The Linux 2.4 jiffy the paper's DELAY primitive is quantized to.
inline constexpr Duration kJiffy = millis(10);

class Timer {
 public:
  Timer(Simulator& sim, EventFn on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer `delay` from now; a pending schedule is superseded.
  void start(Duration delay);

  /// Stops the timer; a stopped timer never fires.
  void cancel();

  bool armed() const { return armed_; }

  /// Absolute expiry time; only meaningful while armed().
  TimePoint deadline() const { return deadline_; }

 private:
  Simulator& sim_;
  EventFn on_fire_;
  EventId event_{kNoEvent};
  u64 generation_{0};
  TimePoint deadline_{};
  bool armed_{false};
};

}  // namespace vwire::sim
