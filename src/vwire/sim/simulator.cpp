#include "vwire/sim/simulator.hpp"

namespace vwire::sim {

EventId Simulator::after(Duration delay, EventFn fn) {
  if (delay.ns < 0) delay.ns = 0;
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::at(TimePoint t, EventFn fn) {
  if (t < now_) t = now_;
  return queue_.schedule(t, std::move(fn));
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // Advance the clock BEFORE executing: the callback must observe its own
    // scheduled time through now().
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed_;
  }
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed_;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  queue_.pop_and_run();
  ++executed_;
  return true;
}

}  // namespace vwire::sim
