#include "vwire/sim/event_queue.hpp"

#include "vwire/util/assert.hpp"

namespace vwire::sim {

EventId EventQueue::schedule(TimePoint at, EventFn fn) {
  EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kNoEvent) return;
  // Ignore ids that already fired or were already cancelled.
  if (pending_.erase(id) == 0) return;
  cancelled_.insert(id);
  --live_count_;
}

void EventQueue::skim() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() {
  skim();
  VWIRE_ASSERT(!heap_.empty(), "next_time on empty queue");
  return heap_.top().at;
}

TimePoint EventQueue::pop_and_run() {
  skim();
  VWIRE_ASSERT(!heap_.empty(), "pop_and_run on empty queue");
  // Copy the entry out before popping: running the callback may schedule
  // new events and mutate the heap.
  Entry top = heap_.top();
  heap_.pop();
  pending_.erase(top.id);
  --live_count_;
  top.fn();
  return top.at;
}

}  // namespace vwire::sim
