// Deterministic discrete-event queue.
//
// Events at equal timestamps fire in insertion order (a strictly increasing
// sequence number breaks ties), so a scenario run is a pure function of its
// inputs and seeds.  Cancellation is lazy: cancelled entries stay in the heap
// and are skipped on pop, which keeps cancel O(1) — the RLL and TCP
// retransmit timers cancel far more often than they fire.
#pragma once

#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "vwire/util/types.hpp"

namespace vwire::sim {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event.  Value 0 is "no event".
using EventId = u64;
inline constexpr EventId kNoEvent = 0;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`; returns a cancellable id.
  EventId schedule(TimePoint at, EventFn fn);

  /// Cancels a pending event; harmless if already fired or cancelled.
  void cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; queue must be non-empty.
  TimePoint next_time();

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Queue must be non-empty.
  TimePoint pop_and_run();

 private:
  struct Entry {
    TimePoint at;
    u64 seq;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the top of the heap.
  void skim();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;    // scheduled and not yet fired/cancelled
  std::unordered_set<EventId> cancelled_;  // cancelled but still in heap_
  std::size_t live_count_{0};
  u64 next_seq_{1};
  EventId next_id_{1};
};

}  // namespace vwire::sim
