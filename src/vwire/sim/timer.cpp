#include "vwire/sim/timer.hpp"

namespace vwire::sim {

Duration quantize_up(Duration d, Duration tick) {
  if (tick.ns <= 0 || d.ns <= 0) return d;
  i64 ticks = (d.ns + tick.ns - 1) / tick.ns;
  return {ticks * tick.ns};
}

void Timer::start(Duration delay) {
  cancel();
  armed_ = true;
  deadline_ = sim_.now() + delay;
  u64 gen = ++generation_;
  event_ = sim_.after(delay, [this, gen] {
    if (gen != generation_ || !armed_) return;
    armed_ = false;
    event_ = kNoEvent;
    on_fire_();
  });
}

void Timer::cancel() {
  ++generation_;
  armed_ = false;
  if (event_ != kNoEvent) {
    sim_.cancel(event_);
    event_ = kNoEvent;
  }
}

}  // namespace vwire::sim
