// UDP echo applications — the workload of the paper's Fig 8 latency
// experiment ("an echo connection using UDP between the 2 test machines").
#pragma once

#include <vector>

#include "vwire/obs/metrics.hpp"
#include "vwire/sim/timer.hpp"
#include "vwire/udp/udp_layer.hpp"

namespace vwire::udp {

/// Echoes every datagram straight back to its sender.
class EchoServer {
 public:
  EchoServer(UdpLayer& udp, u16 port);

  u64 echoed() const { return echoed_; }

 private:
  UdpLayer& udp_;
  u16 port_;
  u64 echoed_{0};
};

/// Sends `count` probes of `payload_size` bytes at a fixed interval and
/// records each round-trip time.  Lost probes simply never complete.
class EchoClient {
 public:
  struct Params {
    net::Ipv4Address server_ip;
    u16 server_port{7};
    u16 local_port{30000};
    std::size_t payload_size{64};
    u32 count{100};
    Duration interval{millis(5)};
  };

  EchoClient(UdpLayer& udp, Params params);

  /// Begins probing; RTTs accumulate as replies arrive.
  void start();

  const std::vector<Duration>& rtts() const { return rtts_; }
  u32 sent() const { return sent_; }
  u32 received() const { return static_cast<u32>(rtts_.size()); }
  bool done() const { return sent_ == params_.count; }

  Duration mean_rtt() const;

  /// Round-trip times as a log-linear histogram (µs) — the Fig 8 bench
  /// reads p50/p95/p99 from here.
  const obs::Histogram& rtt_histogram() const { return rtt_hist_; }

 private:
  void send_probe();
  void on_reply(BytesView payload);

  UdpLayer& udp_;
  Params params_;
  sim::Timer send_timer_;
  std::vector<Duration> rtts_;
  std::vector<TimePoint> sent_at_;
  obs::Histogram rtt_hist_;
  u32 sent_{0};
};

}  // namespace vwire::udp
