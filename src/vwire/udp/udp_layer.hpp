// Minimal UDP on top of the simulated IPv4 stack.
//
// Mirrors the kernel socket surface closely enough for the paper's
// evaluation workloads: the Fig 8 latency experiment is a UDP echo between
// two hosts.
#pragma once

#include <functional>
#include <unordered_map>

#include "vwire/host/node.hpp"
#include "vwire/net/udp_header.hpp"

namespace vwire::udp {

struct UdpStats {
  u64 tx_datagrams{0};
  u64 rx_datagrams{0};
  u64 rx_bad_checksum{0};
  u64 rx_no_socket{0};
};

class UdpLayer {
 public:
  /// Registers with the node's IP layer for protocol 17.
  explicit UdpLayer(host::Node& node);

  using Handler = std::function<void(net::Ipv4Address src_ip, u16 src_port,
                                     BytesView payload)>;

  /// Binds a local port; datagrams for it invoke `handler`.  Rebinding an
  /// occupied port replaces the handler.
  void bind(u16 port, Handler handler);
  void unbind(u16 port);

  void send(net::Ipv4Address dst_ip, u16 dst_port, u16 src_port,
            BytesView payload);

  const UdpStats& stats() const { return stats_; }
  host::Node& node() { return node_; }

 private:
  void on_ip(const net::Ipv4Header& ip, BytesView l4);

  host::Node& node_;
  std::unordered_map<u16, Handler> sockets_;
  UdpStats stats_;
};

}  // namespace vwire::udp
