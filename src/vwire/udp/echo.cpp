#include "vwire/udp/echo.hpp"

#include "vwire/util/assert.hpp"

namespace vwire::udp {

EchoServer::EchoServer(UdpLayer& udp, u16 port) : udp_(udp), port_(port) {
  udp_.bind(port_, [this](net::Ipv4Address src_ip, u16 src_port,
                          BytesView payload) {
    ++echoed_;
    udp_.send(src_ip, src_port, port_, payload);
  });
}

EchoClient::EchoClient(UdpLayer& udp, Params params)
    : udp_(udp),
      params_(params),
      send_timer_(udp.node().simulator(), [this] { send_probe(); }) {
  VWIRE_ASSERT(params_.payload_size >= 4, "probe payload carries a u32 id");
  udp_.bind(params_.local_port,
            [this](net::Ipv4Address, u16, BytesView payload) {
              on_reply(payload);
            });
}

void EchoClient::start() {
  // -1 = "not sent / already answered"; 0 is a legitimate send time.
  sent_at_.assign(params_.count, TimePoint{.ns = -1});
  send_probe();
}

void EchoClient::send_probe() {
  if (sent_ >= params_.count) return;
  Bytes payload(params_.payload_size, 0);
  write_u32(payload, 0, sent_);
  sent_at_[sent_] = udp_.node().simulator().now();
  udp_.send(params_.server_ip, params_.server_port, params_.local_port,
            payload);
  ++sent_;
  if (sent_ < params_.count) send_timer_.start(params_.interval);
}

void EchoClient::on_reply(BytesView payload) {
  if (payload.size() < 4) return;
  u32 id = read_u32(payload, 0);
  if (id >= sent_at_.size() || sent_at_[id].ns < 0) return;
  Duration rtt = udp_.node().simulator().now() - sent_at_[id];
  rtts_.push_back(rtt);
  rtt_hist_.record(static_cast<u64>(rtt.ns / 1000));
  sent_at_[id] = TimePoint{.ns = -1};  // guard against duplicates (DUP)
}

Duration EchoClient::mean_rtt() const {
  if (rtts_.empty()) return {};
  i64 total = 0;
  for (auto r : rtts_) total += r.ns;
  return {total / static_cast<i64>(rtts_.size())};
}

}  // namespace vwire::udp
