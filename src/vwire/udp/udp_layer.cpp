#include "vwire/udp/udp_layer.hpp"

namespace vwire::udp {

UdpLayer::UdpLayer(host::Node& node) : node_(node) {
  node_.ip_layer().register_protocol(
      net::IpProto::kUdp,
      [this](const net::Ipv4Header& ip, BytesView l4) { on_ip(ip, l4); });
}

void UdpLayer::bind(u16 port, Handler handler) {
  sockets_[port] = std::move(handler);
}

void UdpLayer::unbind(u16 port) { sockets_.erase(port); }

void UdpLayer::send(net::Ipv4Address dst_ip, u16 dst_port, u16 src_port,
                    BytesView payload) {
  Bytes l4(net::UdpHeader::kSize + payload.size());
  std::copy(payload.begin(), payload.end(),
            l4.begin() + net::UdpHeader::kSize);
  net::UdpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.write(l4, 0, payload, node_.ip(), dst_ip);
  ++stats_.tx_datagrams;
  node_.ip_layer().send(dst_ip, net::IpProto::kUdp, std::move(l4));
}

void UdpLayer::on_ip(const net::Ipv4Header& ip, BytesView l4) {
  auto h = net::UdpHeader::read(l4);
  if (!h || h->length > l4.size() || h->length < net::UdpHeader::kSize) {
    ++stats_.rx_bad_checksum;
    return;
  }
  if (!net::UdpHeader::verify_checksum(l4, 0, h->length, ip.src, ip.dst)) {
    // A MODIFY fault that corrupts the payload lands here: the datagram is
    // discarded exactly as a real stack would.
    ++stats_.rx_bad_checksum;
    return;
  }
  auto it = sockets_.find(h->dst_port);
  if (it == sockets_.end()) {
    ++stats_.rx_no_socket;
    return;
  }
  ++stats_.rx_datagrams;
  it->second(ip.src, h->src_port,
             l4.subspan(net::UdpHeader::kSize, h->length - net::UdpHeader::kSize));
}

}  // namespace vwire::udp
