// Physical medium abstraction.
//
// This module replaces the paper's physical testbed (100 Mbps switch /
// shared Ethernet segment between Pentium-4 hosts).  A Medium connects NICs
// (MediumClient attachment points), charges serialization + propagation
// delay for every frame, bounds queues (overload drops), and can corrupt
// frames with a bit-error model — the uncontrolled loss the Reliable Link
// Layer exists to hide (paper §3.3).
//
// Beyond the static LinkParams, every port carries a *mutable* LinkFaultState
// so scenarios can fault the link itself at runtime: partition (cut), timed
// flap cycles, asymmetric loss, extra latency/jitter, and a bandwidth
// throttle.  These are first-class schedulable fault primitives (see
// ScenarioSpec::link_faults), one layer below the node-crash primitives.
#pragma once

#include "vwire/net/packet.hpp"
#include "vwire/obs/flight.hpp"
#include "vwire/obs/metrics.hpp"
#include "vwire/phy/bit_error.hpp"
#include "vwire/sim/simulator.hpp"

namespace vwire::phy {

/// Port index on a medium.
using PortId = u32;
inline constexpr PortId kInvalidPort = 0xffffffffu;

/// A NIC's view of the medium: it receives frames via deliver().
class MediumClient {
 public:
  virtual ~MediumClient() = default;

  /// A frame has arrived at this attachment point.
  virtual void medium_deliver(net::Packet pkt) = 0;

  /// The MAC address frames are addressed to (switch forwarding key).
  virtual net::MacAddress medium_mac() const = 0;
};

struct LinkParams {
  double bandwidth_bps{100e6};          ///< the paper's 100 Mbps testbed
  Duration propagation{micros(5)};      ///< one-way propagation per hop
  std::size_t queue_limit{128};         ///< frames per port queue
  double bit_error_rate{0.0};           ///< per-bit corruption probability
  std::size_t min_frame_bytes{64};      ///< Ethernet minimum frame size
};

/// One direction of a port's fault state: `tx` applies to frames leaving
/// the attached host, `rx` to frames arriving at it — so a loss rate or
/// delay set on only one facet models an asymmetric degradation.
struct LinkFaultDir {
  bool cut{false};            ///< hard partition: every frame dropped
  double loss_rate{0.0};      ///< per-frame drop probability [0,1]
  Duration extra_latency{};   ///< fixed extra one-way delay
  Duration jitter{};          ///< extra uniform random delay in [0, jitter]
};

/// Timed flap: a deterministic square wave computed from the simulation
/// clock (no timers to leak).  The link is healthy for `up`, cut for
/// `down`, repeating from `origin`.  Inactive while down == 0.
struct LinkFlap {
  Duration up{};
  Duration down{};
  TimePoint origin{};

  bool active() const { return down.ns > 0; }
  /// True when the flap's square wave has the link in its cut phase.
  bool down_at(TimePoint now) const {
    if (!active()) return false;
    i64 period = up.ns + down.ns;
    i64 phase = (now - origin).ns % period;
    if (phase < 0) phase += period;
    return phase >= up.ns;
  }
};

/// The full mutable fault state of one port's link.
struct LinkFaultState {
  LinkFaultDir tx, rx;
  LinkFlap flap;
  /// When > 0, caps this port's link rate below LinkParams::bandwidth_bps
  /// (a bandwidth bottleneck), both directions.
  double bandwidth_bps{0.0};

  bool any() const {
    return tx.cut || rx.cut || tx.loss_rate > 0 || rx.loss_rate > 0 ||
           tx.extra_latency.ns > 0 || rx.extra_latency.ns > 0 ||
           tx.jitter.ns > 0 || rx.jitter.ns > 0 || flap.active() ||
           bandwidth_bps > 0;
  }
};

struct MediumStats {
  u64 frames_offered{0};
  u64 frames_delivered{0};
  u64 frames_dropped_error{0};  ///< corrupted by bit errors (silent loss)
  u64 frames_dropped_queue{0};  ///< queue overflow under overload
  u64 frames_dropped_down{0};   ///< destination port down (FAIL'ed node)
  u64 frames_dropped_cut{0};    ///< scheduled link cut (partition)
  u64 frames_dropped_flap{0};   ///< flap cycle's down phase
  u64 frames_dropped_loss{0};   ///< scheduled probabilistic loss
  u64 frames_delayed_fault{0};  ///< frames given extra latency/jitter
  u64 bytes_delivered{0};
  u64 collisions{0};            ///< shared-bus deferrals
};

/// Single source of field names for formatting and registry exposure.
template <class Fn>
void for_each_field(const MediumStats& s, Fn&& fn) {
  fn("frames_offered", s.frames_offered);
  fn("frames_delivered", s.frames_delivered);
  fn("frames_dropped_error", s.frames_dropped_error);
  fn("frames_dropped_queue", s.frames_dropped_queue);
  fn("frames_dropped_down", s.frames_dropped_down);
  fn("frames_dropped_cut", s.frames_dropped_cut);
  fn("frames_dropped_flap", s.frames_dropped_flap);
  fn("frames_dropped_loss", s.frames_dropped_loss);
  fn("frames_delayed_fault", s.frames_delayed_fault);
  fn("bytes_delivered", s.bytes_delivered);
  fn("collisions", s.collisions);
}

class Medium {
 public:
  explicit Medium(sim::Simulator& sim, LinkParams params, u64 seed = 1);
  virtual ~Medium() = default;

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Attaches a client; the returned port is used for transmit().
  PortId attach(MediumClient* client);

  /// Number of attached ports; valid PortIds are [0, port_count()).
  std::size_t port_count() const { return ports_.size(); }

  /// Administratively downs/ups a port (the FAIL primitive downs the
  /// failed node's port; a down port neither sends nor receives).
  void set_port_up(PortId port, bool up);
  bool port_up(PortId port) const;

  /// Runtime link-fault state: replaces, reads or clears the whole fault
  /// record of a port.  Takes effect on the next frame touching the port.
  /// These are scheduling-time entry points (callers pass user-supplied
  /// port indices), so an out-of-range port throws std::invalid_argument
  /// rather than aborting mid-run.
  void set_link_fault(PortId port, const LinkFaultState& fault);
  const LinkFaultState& link_fault(PortId port) const;
  void clear_link_fault(PortId port);

  /// True if the port's link is partitioned right now in `tx` or `rx`
  /// direction respectively — by an explicit cut or a flap's down phase.
  bool link_cut_tx(PortId port) const;
  bool link_cut_rx(PortId port) const;

  /// Hands a frame to the medium for transmission from `port`.
  virtual void transmit(PortId port, net::Packet pkt) = 0;

  /// Re-derives every RNG stream in this medium (bit errors, fault
  /// lotteries, subclass extras) from one master seed via SplitMix64, so a
  /// scenario's single seed pins all phy randomness.
  virtual void reseed(u64 seed);
  u64 seed() const { return seed_; }

  const MediumStats& stats() const { return stats_; }
  const LinkParams& params() const { return params_; }

  /// Registers this medium's stats (counter views) and a transmit queue-
  /// depth histogram under `prefix` (convention: "phy.medium").
  void bind_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    obs::expose_stats(reg, prefix, stats_);
    queue_hist_ = &reg.histogram(prefix + ".queue_depth");
  }

  /// Attaches the flight recorder of the node behind `port`, so frames the
  /// medium kills or delays leave span events attributed to that node's
  /// link.  Null detaches; the pointer must outlive the medium's use.
  void set_port_flight(PortId port, obs::FlightRecorder* flight);
  sim::Simulator& simulator() { return sim_; }

  /// Wire time to serialize a frame of `bytes` (padded to the minimum
  /// frame size, as a real MAC would).
  Duration serialization_time(std::size_t bytes) const;

  /// Same, at the port's effective rate (bandwidth throttle if faulted).
  Duration serialization_time_on(PortId port, std::size_t bytes) const;

 protected:
  struct Port {
    MediumClient* client{nullptr};
    bool up{true};
    // Transmit-side accounting: when the port's queue drains, and how many
    // frames are waiting (for the queue-limit drop decision).
    TimePoint busy_until{};
    std::size_t queued{0};
    LinkFaultState fault;
    obs::FlightRecorder* flight{nullptr};  ///< owning node's trace recorder
  };

  /// Runs the bit-error lottery; true means the frame would fail its FCS
  /// check and a real NIC would discard it silently.
  bool corrupts_frame(std::size_t bytes);

  /// Transmit-side fault gate: true if the frame dies to a cut, flap-down
  /// phase or loss lottery on its way out of `port` (the drop is counted
  /// and the span event recorded here).
  bool tx_fault_drop(PortId port, const net::Packet& pkt);

  /// Extra transmit-side delay (fixed latency + jitter draw) for `port`,
  /// counted and span-recorded when non-zero.
  Duration tx_fault_delay(PortId port, const net::Packet& pkt);

  /// Single accounting point for every frame the medium kills: bumps the
  /// matching MediumStats counter and records a kLinkDrop span event on the
  /// port's flight recorder.
  void note_drop(PortId port, const net::Packet& pkt, obs::DropCause cause);

  /// Records a transmit-queue occupancy sample (subclasses call this right
  /// after enqueueing a frame).
  void note_queue_depth(std::size_t depth) {
    if (queue_hist_ != nullptr) queue_hist_->record(static_cast<u64>(depth));
  }

  /// Final hop: hands the frame to the destination port's client (unless
  /// the port is down, partitioned, or loses the rx lottery).  Rx-side
  /// latency/jitter reschedules the hand-off — jitter may reorder frames,
  /// which is exactly the hazard the adaptive RLL must survive.
  void deliver_to_port(PortId port, net::Packet pkt);

  sim::Simulator& sim_;
  LinkParams params_;
  BitErrorModel bit_errors_;
  Rng fault_rng_;
  std::vector<Port> ports_;
  MediumStats stats_;
  u64 seed_{0};
  obs::Histogram* queue_hist_{nullptr};  ///< tx queue depth at enqueue

 private:
  /// Drop decision shared by the tx and rx facets: which fault (if any)
  /// kills the frame.  Pure decision — accounting happens in note_drop(),
  /// keyed by the returned cause, so every drop site tells the same story
  /// to stats and to the flight recorder.
  obs::DropCause dir_fault_check(const LinkFaultDir& dir, bool flap_down);
  Duration dir_fault_delay(const LinkFaultDir& dir);

  void finish_delivery(PortId port, net::Packet pkt);
};

}  // namespace vwire::phy
