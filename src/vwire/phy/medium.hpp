// Physical medium abstraction.
//
// This module replaces the paper's physical testbed (100 Mbps switch /
// shared Ethernet segment between Pentium-4 hosts).  A Medium connects NICs
// (MediumClient attachment points), charges serialization + propagation
// delay for every frame, bounds queues (overload drops), and can corrupt
// frames with a bit-error model — the uncontrolled loss the Reliable Link
// Layer exists to hide (paper §3.3).
#pragma once

#include "vwire/net/packet.hpp"
#include "vwire/phy/bit_error.hpp"
#include "vwire/sim/simulator.hpp"

namespace vwire::phy {

/// Port index on a medium.
using PortId = u32;
inline constexpr PortId kInvalidPort = 0xffffffffu;

/// A NIC's view of the medium: it receives frames via deliver().
class MediumClient {
 public:
  virtual ~MediumClient() = default;

  /// A frame has arrived at this attachment point.
  virtual void medium_deliver(net::Packet pkt) = 0;

  /// The MAC address frames are addressed to (switch forwarding key).
  virtual net::MacAddress medium_mac() const = 0;
};

struct LinkParams {
  double bandwidth_bps{100e6};          ///< the paper's 100 Mbps testbed
  Duration propagation{micros(5)};      ///< one-way propagation per hop
  std::size_t queue_limit{128};         ///< frames per port queue
  double bit_error_rate{0.0};           ///< per-bit corruption probability
  std::size_t min_frame_bytes{64};      ///< Ethernet minimum frame size
};

struct MediumStats {
  u64 frames_offered{0};
  u64 frames_delivered{0};
  u64 frames_dropped_error{0};  ///< corrupted by bit errors (silent loss)
  u64 frames_dropped_queue{0};  ///< queue overflow under overload
  u64 frames_dropped_down{0};   ///< destination port down (FAIL'ed node)
  u64 bytes_delivered{0};
  u64 collisions{0};            ///< shared-bus deferrals
};

class Medium {
 public:
  explicit Medium(sim::Simulator& sim, LinkParams params, u64 seed = 1);
  virtual ~Medium() = default;

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Attaches a client; the returned port is used for transmit().
  PortId attach(MediumClient* client);

  /// Administratively downs/ups a port (the FAIL primitive downs the
  /// failed node's port; a down port neither sends nor receives).
  void set_port_up(PortId port, bool up);
  bool port_up(PortId port) const;

  /// Hands a frame to the medium for transmission from `port`.
  virtual void transmit(PortId port, net::Packet pkt) = 0;

  const MediumStats& stats() const { return stats_; }
  const LinkParams& params() const { return params_; }
  sim::Simulator& simulator() { return sim_; }

  /// Wire time to serialize a frame of `bytes` (padded to the minimum
  /// frame size, as a real MAC would).
  Duration serialization_time(std::size_t bytes) const;

 protected:
  struct Port {
    MediumClient* client{nullptr};
    bool up{true};
    // Transmit-side accounting: when the port's queue drains, and how many
    // frames are waiting (for the queue-limit drop decision).
    TimePoint busy_until{};
    std::size_t queued{0};
  };

  /// Runs the bit-error lottery; true means the frame would fail its FCS
  /// check and a real NIC would discard it silently.
  bool corrupts_frame(std::size_t bytes);

  /// Final hop: hands the frame to the destination port's client (unless
  /// the port is down or the frame was corrupted).
  void deliver_to_port(PortId port, net::Packet pkt);

  sim::Simulator& sim_;
  LinkParams params_;
  BitErrorModel bit_errors_;
  std::vector<Port> ports_;
  MediumStats stats_;
};

}  // namespace vwire::phy
