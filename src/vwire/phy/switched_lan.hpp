// Store-and-forward switched LAN (the paper's "100 Mbps switch" testbed).
//
// Each frame crosses two hops: sender → switch (ingress link) and switch →
// destination (egress link).  Every hop charges serialization at the link
// rate plus propagation; each direction of each link has its own capacity,
// i.e. the switch is full duplex.  Per-port FIFO queues with a frame limit
// model output buffering: overload drops, which is how offered load beyond
// line rate manifests (Fig 7's saturation region).
#pragma once

#include "vwire/phy/medium.hpp"

namespace vwire::phy {

class SwitchedLan final : public Medium {
 public:
  SwitchedLan(sim::Simulator& sim, LinkParams params, u64 seed = 1);

  void transmit(PortId port, net::Packet pkt) override;

 private:
  /// Queues a frame taking `ser` wire time on a transmit leg described by
  /// (busy_until, queued) and returns the completion time, or nullopt if
  /// the queue is full.
  std::optional<TimePoint> enqueue_leg(TimePoint& busy_until,
                                       std::size_t& queued, Duration ser);

  /// Frame has fully arrived at the switch; forward out the egress leg.
  void switch_forward(PortId ingress, net::Packet pkt);

  /// Looks up the destination port for a MAC; kInvalidPort when unknown.
  PortId lookup(const net::MacAddress& dst) const;

  struct Leg {
    TimePoint busy_until{};
    std::size_t queued{0};
  };
  std::vector<Leg> egress_;  // switch → node, indexed by port
};

}  // namespace vwire::phy
