#include "vwire/phy/shared_bus.hpp"

namespace vwire::phy {

SharedBus::SharedBus(sim::Simulator& sim, LinkParams params, u64 seed)
    : Medium(sim, params, seed), backoff_rng_(seed ^ 0xb5bab5ba) {
  SharedBus::reseed(seed);
}

void SharedBus::reseed(u64 seed) {
  Medium::reseed(seed);
  backoff_rng_ = Rng::derive(seed, "phy.backoff");
}

void SharedBus::transmit(PortId port, net::Packet pkt) {
  ++stats_.frames_offered;
  if (!port_up(port)) {
    note_drop(port, pkt, obs::DropCause::kPortDown);
    return;
  }
  if (tx_fault_drop(port, pkt)) return;
  if (channel_queued_ >= params_.queue_limit) {
    note_drop(port, pkt, obs::DropCause::kQueue);
    return;
  }

  TimePoint start = sim_.now();
  if (channel_busy_until_ > start) {
    // Channel sensed busy: defer, with a randomized backoff after it frees.
    ++stats_.collisions;
    start = channel_busy_until_ + kSlot * backoff_rng_.range(0, 3);
  }
  TimePoint done = start + serialization_time_on(port, pkt.size());
  channel_busy_until_ = done;
  ++channel_queued_;
  note_queue_depth(channel_queued_);

  TimePoint arrive = done + params_.propagation + tx_fault_delay(port, pkt);
  auto shared = std::make_shared<net::Packet>(std::move(pkt));
  sim_.at(arrive, [this, port, shared] {
    --channel_queued_;
    complete(port, std::move(*shared));
  });
}

void SharedBus::complete(PortId src_port, net::Packet pkt) {
  auto eth = pkt.ethernet();
  if (!eth) return;
  // On a bus every NIC physically sees the frame; delivery is filtered by
  // destination MAC (plus broadcast).  Each receiver runs its own
  // bit-error lottery — bus taps see independent noise.
  for (PortId p = 0; p < ports_.size(); ++p) {
    if (p == src_port) continue;
    bool mine = eth->dst.is_broadcast() ||
                ports_[p].client->medium_mac() == eth->dst;
    if (!mine) continue;
    if (corrupts_frame(pkt.size())) {
      note_drop(p, pkt, obs::DropCause::kBitError);
      continue;
    }
    deliver_to_port(p, pkt.wire_copy());
  }
}

}  // namespace vwire::phy
