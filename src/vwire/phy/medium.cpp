#include "vwire/phy/medium.hpp"

#include <stdexcept>

#include "vwire/util/assert.hpp"
#include "vwire/util/logging.hpp"

namespace vwire::phy {

Medium::Medium(sim::Simulator& sim, LinkParams params, u64 seed)
    : sim_(sim),
      params_(params),
      bit_errors_(params.bit_error_rate, seed),
      fault_rng_(seed) {
  Medium::reseed(seed);
}

void Medium::reseed(u64 seed) {
  // One master seed fans out to independent *named* streams, so the
  // bit-error lottery and the fault lotteries never share draws and a
  // campaign replay cannot drift if one stream's draw order changes.
  seed_ = seed;
  bit_errors_.reseed(derive_seed(seed, "phy.bit_error"));
  fault_rng_ = Rng::derive(seed, "phy.fault");
}

PortId Medium::attach(MediumClient* client) {
  VWIRE_ASSERT(client != nullptr, "attach null client");
  ports_.push_back(Port{client, true, {}, 0, {}, nullptr});
  return static_cast<PortId>(ports_.size() - 1);
}

void Medium::set_port_up(PortId port, bool up) {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  ports_[port].up = up;
}

bool Medium::port_up(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  return ports_[port].up;
}

namespace {

void check_port_arg(PortId port, std::size_t count) {
  if (port >= count) {
    throw std::invalid_argument("phy::Medium: port " + std::to_string(port) +
                                " out of range (have " +
                                std::to_string(count) + " ports)");
  }
}

}  // namespace

void Medium::set_link_fault(PortId port, const LinkFaultState& fault) {
  check_port_arg(port, ports_.size());
  ports_[port].fault = fault;
}

const LinkFaultState& Medium::link_fault(PortId port) const {
  check_port_arg(port, ports_.size());
  return ports_[port].fault;
}

void Medium::clear_link_fault(PortId port) {
  check_port_arg(port, ports_.size());
  ports_[port].fault = LinkFaultState{};
}

void Medium::set_port_flight(PortId port, obs::FlightRecorder* flight) {
  check_port_arg(port, ports_.size());
  ports_[port].flight = flight;
}

bool Medium::link_cut_tx(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  const LinkFaultState& f = ports_[port].fault;
  return f.tx.cut || f.flap.down_at(sim_.now());
}

bool Medium::link_cut_rx(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  const LinkFaultState& f = ports_[port].fault;
  return f.rx.cut || f.flap.down_at(sim_.now());
}

Duration Medium::serialization_time(std::size_t bytes) const {
  std::size_t wire_bytes = std::max(bytes, params_.min_frame_bytes);
  double secs = static_cast<double>(wire_bytes) * 8.0 / params_.bandwidth_bps;
  return seconds_f(secs);
}

Duration Medium::serialization_time_on(PortId port, std::size_t bytes) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  double bps = params_.bandwidth_bps;
  double throttle = ports_[port].fault.bandwidth_bps;
  if (throttle > 0 && throttle < bps) bps = throttle;
  std::size_t wire_bytes = std::max(bytes, params_.min_frame_bytes);
  return seconds_f(static_cast<double>(wire_bytes) * 8.0 / bps);
}

bool Medium::corrupts_frame(std::size_t bytes) {
  return bit_errors_.corrupt(bytes);
}

obs::DropCause Medium::dir_fault_check(const LinkFaultDir& dir,
                                       bool flap_down) {
  if (dir.cut) return obs::DropCause::kCut;
  if (flap_down) return obs::DropCause::kFlap;
  if (dir.loss_rate > 0 && fault_rng_.chance(dir.loss_rate)) {
    return obs::DropCause::kLoss;
  }
  return obs::DropCause::kNone;
}

void Medium::note_drop(PortId port, const net::Packet& pkt,
                       obs::DropCause cause) {
  switch (cause) {
    case obs::DropCause::kNone:     return;
    case obs::DropCause::kPortDown: ++stats_.frames_dropped_down; break;
    case obs::DropCause::kQueue:    ++stats_.frames_dropped_queue; break;
    case obs::DropCause::kBitError: ++stats_.frames_dropped_error; break;
    case obs::DropCause::kCut:      ++stats_.frames_dropped_cut; break;
    case obs::DropCause::kFlap:     ++stats_.frames_dropped_flap; break;
    case obs::DropCause::kLoss:     ++stats_.frames_dropped_loss; break;
  }
  if (obs::FlightRecorder* f = ports_[port].flight) {
    f->record(sim_.now().ns, pkt.span(), pkt.parent_span(),
              obs::SpanEventKind::kLinkDrop, 0xffff,
              static_cast<u8>(cause));
  }
}

Duration Medium::dir_fault_delay(const LinkFaultDir& dir) {
  Duration d = dir.extra_latency;
  if (dir.jitter.ns > 0) {
    d += Duration{fault_rng_.range(0, dir.jitter.ns)};
  }
  if (d.ns > 0) ++stats_.frames_delayed_fault;
  return d;
}

bool Medium::tx_fault_drop(PortId port, const net::Packet& pkt) {
  const LinkFaultState& f = ports_[port].fault;
  const obs::DropCause cause =
      dir_fault_check(f.tx, f.flap.down_at(sim_.now()));
  if (cause == obs::DropCause::kNone) return false;
  note_drop(port, pkt, cause);
  return true;
}

Duration Medium::tx_fault_delay(PortId port, const net::Packet& pkt) {
  const Duration d = dir_fault_delay(ports_[port].fault.tx);
  if (d.ns > 0) {
    if (obs::FlightRecorder* f = ports_[port].flight) {
      f->record(sim_.now().ns, pkt.span(), pkt.parent_span(),
                obs::SpanEventKind::kLinkDelay, 0xffff, 0, d.ns);
    }
  }
  return d;
}

void Medium::deliver_to_port(PortId port, net::Packet pkt) {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  Port& p = ports_[port];
  if (!p.up) {
    note_drop(port, pkt, obs::DropCause::kPortDown);
    return;
  }
  const obs::DropCause cause =
      dir_fault_check(p.fault.rx, p.fault.flap.down_at(sim_.now()));
  if (cause != obs::DropCause::kNone) {
    note_drop(port, pkt, cause);
    return;
  }
  Duration extra = dir_fault_delay(p.fault.rx);
  if (extra.ns > 0) {
    if (obs::FlightRecorder* f = p.flight) {
      f->record(sim_.now().ns, pkt.span(), pkt.parent_span(),
                obs::SpanEventKind::kLinkDelay, 0xffff, 0, extra.ns);
    }
    auto shared = std::make_shared<net::Packet>(std::move(pkt));
    sim_.at(sim_.now() + extra,
            [this, port, shared] { finish_delivery(port, std::move(*shared)); });
    return;
  }
  finish_delivery(port, std::move(pkt));
}

void Medium::finish_delivery(PortId port, net::Packet pkt) {
  Port& p = ports_[port];
  if (!p.up) {
    // The port went down while the frame sat in the jitter delay.
    note_drop(port, pkt, obs::DropCause::kPortDown);
    return;
  }
  ++stats_.frames_delivered;
  stats_.bytes_delivered += pkt.size();
  p.client->medium_deliver(std::move(pkt));
}

}  // namespace vwire::phy
