#include "vwire/phy/medium.hpp"

#include "vwire/util/assert.hpp"
#include "vwire/util/logging.hpp"

namespace vwire::phy {

Medium::Medium(sim::Simulator& sim, LinkParams params, u64 seed)
    : sim_(sim), params_(params), bit_errors_(params.bit_error_rate, seed) {}

PortId Medium::attach(MediumClient* client) {
  VWIRE_ASSERT(client != nullptr, "attach null client");
  ports_.push_back(Port{client, true, {}, 0});
  return static_cast<PortId>(ports_.size() - 1);
}

void Medium::set_port_up(PortId port, bool up) {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  ports_[port].up = up;
}

bool Medium::port_up(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  return ports_[port].up;
}

Duration Medium::serialization_time(std::size_t bytes) const {
  std::size_t wire_bytes = std::max(bytes, params_.min_frame_bytes);
  double secs = static_cast<double>(wire_bytes) * 8.0 / params_.bandwidth_bps;
  return seconds_f(secs);
}

bool Medium::corrupts_frame(std::size_t bytes) {
  return bit_errors_.corrupt(bytes);
}

void Medium::deliver_to_port(PortId port, net::Packet pkt) {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  Port& p = ports_[port];
  if (!p.up) {
    ++stats_.frames_dropped_down;
    return;
  }
  ++stats_.frames_delivered;
  stats_.bytes_delivered += pkt.size();
  p.client->medium_deliver(std::move(pkt));
}

}  // namespace vwire::phy
