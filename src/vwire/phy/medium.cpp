#include "vwire/phy/medium.hpp"

#include "vwire/util/assert.hpp"
#include "vwire/util/logging.hpp"

namespace vwire::phy {

Medium::Medium(sim::Simulator& sim, LinkParams params, u64 seed)
    : sim_(sim),
      params_(params),
      bit_errors_(params.bit_error_rate, seed),
      fault_rng_(seed) {
  Medium::reseed(seed);
}

void Medium::reseed(u64 seed) {
  // One master seed fans out to independent streams via SplitMix64, so the
  // bit-error lottery and the fault lotteries never share draws.
  seed_ = seed;
  u64 s = seed;
  bit_errors_.reseed(splitmix64(s));
  fault_rng_ = Rng(splitmix64(s));
}

PortId Medium::attach(MediumClient* client) {
  VWIRE_ASSERT(client != nullptr, "attach null client");
  ports_.push_back(Port{client, true, {}, 0, {}});
  return static_cast<PortId>(ports_.size() - 1);
}

void Medium::set_port_up(PortId port, bool up) {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  ports_[port].up = up;
}

bool Medium::port_up(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  return ports_[port].up;
}

void Medium::set_link_fault(PortId port, const LinkFaultState& fault) {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  ports_[port].fault = fault;
}

const LinkFaultState& Medium::link_fault(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  return ports_[port].fault;
}

void Medium::clear_link_fault(PortId port) {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  ports_[port].fault = LinkFaultState{};
}

bool Medium::link_cut_tx(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  const LinkFaultState& f = ports_[port].fault;
  return f.tx.cut || f.flap.down_at(sim_.now());
}

bool Medium::link_cut_rx(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  const LinkFaultState& f = ports_[port].fault;
  return f.rx.cut || f.flap.down_at(sim_.now());
}

Duration Medium::serialization_time(std::size_t bytes) const {
  std::size_t wire_bytes = std::max(bytes, params_.min_frame_bytes);
  double secs = static_cast<double>(wire_bytes) * 8.0 / params_.bandwidth_bps;
  return seconds_f(secs);
}

Duration Medium::serialization_time_on(PortId port, std::size_t bytes) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  double bps = params_.bandwidth_bps;
  double throttle = ports_[port].fault.bandwidth_bps;
  if (throttle > 0 && throttle < bps) bps = throttle;
  std::size_t wire_bytes = std::max(bytes, params_.min_frame_bytes);
  return seconds_f(static_cast<double>(wire_bytes) * 8.0 / bps);
}

bool Medium::corrupts_frame(std::size_t bytes) {
  return bit_errors_.corrupt(bytes);
}

bool Medium::dir_fault_drop(const LinkFaultDir& dir, bool flap_down,
                            u64* cut_stat, u64* flap_stat, u64* loss_stat) {
  if (dir.cut) {
    ++*cut_stat;
    return true;
  }
  if (flap_down) {
    ++*flap_stat;
    return true;
  }
  if (dir.loss_rate > 0 && fault_rng_.chance(dir.loss_rate)) {
    ++*loss_stat;
    return true;
  }
  return false;
}

Duration Medium::dir_fault_delay(const LinkFaultDir& dir) {
  Duration d = dir.extra_latency;
  if (dir.jitter.ns > 0) {
    d += Duration{fault_rng_.range(0, dir.jitter.ns)};
  }
  if (d.ns > 0) ++stats_.frames_delayed_fault;
  return d;
}

bool Medium::tx_fault_drop(PortId port) {
  const LinkFaultState& f = ports_[port].fault;
  return dir_fault_drop(f.tx, f.flap.down_at(sim_.now()),
                        &stats_.frames_dropped_cut, &stats_.frames_dropped_flap,
                        &stats_.frames_dropped_loss);
}

Duration Medium::tx_fault_delay(PortId port) {
  return dir_fault_delay(ports_[port].fault.tx);
}

void Medium::deliver_to_port(PortId port, net::Packet pkt) {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  Port& p = ports_[port];
  if (!p.up) {
    ++stats_.frames_dropped_down;
    return;
  }
  if (dir_fault_drop(p.fault.rx, p.fault.flap.down_at(sim_.now()),
                     &stats_.frames_dropped_cut, &stats_.frames_dropped_flap,
                     &stats_.frames_dropped_loss)) {
    return;
  }
  Duration extra = dir_fault_delay(p.fault.rx);
  if (extra.ns > 0) {
    auto shared = std::make_shared<net::Packet>(std::move(pkt));
    sim_.at(sim_.now() + extra,
            [this, port, shared] { finish_delivery(port, std::move(*shared)); });
    return;
  }
  finish_delivery(port, std::move(pkt));
}

void Medium::finish_delivery(PortId port, net::Packet pkt) {
  Port& p = ports_[port];
  if (!p.up) {
    // The port went down while the frame sat in the jitter delay.
    ++stats_.frames_dropped_down;
    return;
  }
  ++stats_.frames_delivered;
  stats_.bytes_delivered += pkt.size();
  p.client->medium_deliver(std::move(pkt));
}

}  // namespace vwire::phy
