#include "vwire/phy/medium.hpp"

#include <stdexcept>

#include "vwire/util/assert.hpp"
#include "vwire/util/logging.hpp"

namespace vwire::phy {

Medium::Medium(sim::Simulator& sim, LinkParams params, u64 seed)
    : sim_(sim),
      params_(params),
      bit_errors_(params.bit_error_rate, seed),
      fault_rng_(seed) {
  Medium::reseed(seed);
}

void Medium::reseed(u64 seed) {
  // One master seed fans out to independent *named* streams, so the
  // bit-error lottery and the fault lotteries never share draws and a
  // campaign replay cannot drift if one stream's draw order changes.
  seed_ = seed;
  bit_errors_.reseed(derive_seed(seed, "phy.bit_error"));
  fault_rng_ = Rng::derive(seed, "phy.fault");
}

PortId Medium::attach(MediumClient* client) {
  VWIRE_ASSERT(client != nullptr, "attach null client");
  ports_.push_back(Port{client, true, {}, 0, {}});
  return static_cast<PortId>(ports_.size() - 1);
}

void Medium::set_port_up(PortId port, bool up) {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  ports_[port].up = up;
}

bool Medium::port_up(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  return ports_[port].up;
}

namespace {

void check_port_arg(PortId port, std::size_t count) {
  if (port >= count) {
    throw std::invalid_argument("phy::Medium: port " + std::to_string(port) +
                                " out of range (have " +
                                std::to_string(count) + " ports)");
  }
}

}  // namespace

void Medium::set_link_fault(PortId port, const LinkFaultState& fault) {
  check_port_arg(port, ports_.size());
  ports_[port].fault = fault;
}

const LinkFaultState& Medium::link_fault(PortId port) const {
  check_port_arg(port, ports_.size());
  return ports_[port].fault;
}

void Medium::clear_link_fault(PortId port) {
  check_port_arg(port, ports_.size());
  ports_[port].fault = LinkFaultState{};
}

bool Medium::link_cut_tx(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  const LinkFaultState& f = ports_[port].fault;
  return f.tx.cut || f.flap.down_at(sim_.now());
}

bool Medium::link_cut_rx(PortId port) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  const LinkFaultState& f = ports_[port].fault;
  return f.rx.cut || f.flap.down_at(sim_.now());
}

Duration Medium::serialization_time(std::size_t bytes) const {
  std::size_t wire_bytes = std::max(bytes, params_.min_frame_bytes);
  double secs = static_cast<double>(wire_bytes) * 8.0 / params_.bandwidth_bps;
  return seconds_f(secs);
}

Duration Medium::serialization_time_on(PortId port, std::size_t bytes) const {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  double bps = params_.bandwidth_bps;
  double throttle = ports_[port].fault.bandwidth_bps;
  if (throttle > 0 && throttle < bps) bps = throttle;
  std::size_t wire_bytes = std::max(bytes, params_.min_frame_bytes);
  return seconds_f(static_cast<double>(wire_bytes) * 8.0 / bps);
}

bool Medium::corrupts_frame(std::size_t bytes) {
  return bit_errors_.corrupt(bytes);
}

bool Medium::dir_fault_drop(const LinkFaultDir& dir, bool flap_down,
                            u64* cut_stat, u64* flap_stat, u64* loss_stat) {
  if (dir.cut) {
    ++*cut_stat;
    return true;
  }
  if (flap_down) {
    ++*flap_stat;
    return true;
  }
  if (dir.loss_rate > 0 && fault_rng_.chance(dir.loss_rate)) {
    ++*loss_stat;
    return true;
  }
  return false;
}

Duration Medium::dir_fault_delay(const LinkFaultDir& dir) {
  Duration d = dir.extra_latency;
  if (dir.jitter.ns > 0) {
    d += Duration{fault_rng_.range(0, dir.jitter.ns)};
  }
  if (d.ns > 0) ++stats_.frames_delayed_fault;
  return d;
}

bool Medium::tx_fault_drop(PortId port) {
  const LinkFaultState& f = ports_[port].fault;
  return dir_fault_drop(f.tx, f.flap.down_at(sim_.now()),
                        &stats_.frames_dropped_cut, &stats_.frames_dropped_flap,
                        &stats_.frames_dropped_loss);
}

Duration Medium::tx_fault_delay(PortId port) {
  return dir_fault_delay(ports_[port].fault.tx);
}

void Medium::deliver_to_port(PortId port, net::Packet pkt) {
  VWIRE_ASSERT(port < ports_.size(), "bad port id");
  Port& p = ports_[port];
  if (!p.up) {
    ++stats_.frames_dropped_down;
    return;
  }
  if (dir_fault_drop(p.fault.rx, p.fault.flap.down_at(sim_.now()),
                     &stats_.frames_dropped_cut, &stats_.frames_dropped_flap,
                     &stats_.frames_dropped_loss)) {
    return;
  }
  Duration extra = dir_fault_delay(p.fault.rx);
  if (extra.ns > 0) {
    auto shared = std::make_shared<net::Packet>(std::move(pkt));
    sim_.at(sim_.now() + extra,
            [this, port, shared] { finish_delivery(port, std::move(*shared)); });
    return;
  }
  finish_delivery(port, std::move(pkt));
}

void Medium::finish_delivery(PortId port, net::Packet pkt) {
  Port& p = ports_[port];
  if (!p.up) {
    // The port went down while the frame sat in the jitter delay.
    ++stats_.frames_dropped_down;
    return;
  }
  ++stats_.frames_delivered;
  stats_.bytes_delivered += pkt.size();
  p.client->medium_deliver(std::move(pkt));
}

}  // namespace vwire::phy
