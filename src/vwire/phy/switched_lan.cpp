#include "vwire/phy/switched_lan.hpp"

#include "vwire/util/logging.hpp"

namespace vwire::phy {

SwitchedLan::SwitchedLan(sim::Simulator& sim, LinkParams params, u64 seed)
    : Medium(sim, params, seed) {}

std::optional<TimePoint> SwitchedLan::enqueue_leg(TimePoint& busy_until,
                                                  std::size_t& queued,
                                                  Duration ser) {
  if (queued >= params_.queue_limit) return std::nullopt;
  TimePoint start = std::max(sim_.now(), busy_until);
  TimePoint done = start + ser;
  busy_until = done;
  ++queued;
  note_queue_depth(queued);
  return done;
}

PortId SwitchedLan::lookup(const net::MacAddress& dst) const {
  for (PortId p = 0; p < ports_.size(); ++p) {
    if (ports_[p].client->medium_mac() == dst) return p;
  }
  return kInvalidPort;
}

void SwitchedLan::transmit(PortId port, net::Packet pkt) {
  ++stats_.frames_offered;
  if (!port_up(port)) {
    note_drop(port, pkt, obs::DropCause::kPortDown);
    return;
  }
  if (tx_fault_drop(port, pkt)) return;
  Port& in = ports_[port];
  auto done = enqueue_leg(in.busy_until, in.queued,
                          serialization_time_on(port, pkt.size()));
  if (!done) {
    note_drop(port, pkt, obs::DropCause::kQueue);
    return;
  }
  // Frame fully received by the switch after serialization + propagation,
  // plus any scheduled tx-side latency/jitter on the host's link.
  TimePoint at_switch = *done + params_.propagation + tx_fault_delay(port, pkt);
  auto shared = std::make_shared<net::Packet>(std::move(pkt));
  sim_.at(at_switch, [this, port, shared] {
    --ports_[port].queued;
    switch_forward(port, std::move(*shared));
  });
}

void SwitchedLan::switch_forward(PortId ingress, net::Packet pkt) {
  auto eth = pkt.ethernet();
  if (!eth) return;

  if (egress_.size() < ports_.size()) egress_.resize(ports_.size());

  auto send_out = [this, ingress, &pkt](PortId out) {
    if (out == ingress) return;
    Leg& leg = egress_[out];
    // The switch→node leg runs at the destination link's effective rate
    // (a throttled port bottlenecks both directions of its link).
    auto done = enqueue_leg(leg.busy_until, leg.queued,
                            serialization_time_on(out, pkt.size()));
    if (!done) {
      note_drop(out, pkt, obs::DropCause::kQueue);
      return;
    }
    TimePoint arrive = *done + params_.propagation;
    bool corrupted = corrupts_frame(pkt.size());
    auto shared = std::make_shared<net::Packet>(pkt.wire_copy());
    sim_.at(arrive, [this, out, corrupted, shared] {
      --egress_[out].queued;
      if (corrupted) {
        note_drop(out, *shared, obs::DropCause::kBitError);
        return;
      }
      deliver_to_port(out, std::move(*shared));
    });
  };

  if (eth->dst.is_broadcast()) {
    for (PortId p = 0; p < ports_.size(); ++p) send_out(p);
    return;
  }
  PortId out = lookup(eth->dst);
  if (out == kInvalidPort) {
    // Unknown unicast floods, like a real learning switch pre-learning.
    for (PortId p = 0; p < ports_.size(); ++p) send_out(p);
    return;
  }
  send_out(out);
}

}  // namespace vwire::phy
