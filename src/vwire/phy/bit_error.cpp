#include "vwire/phy/bit_error.hpp"

#include <cmath>

namespace vwire::phy {

BitErrorModel::BitErrorModel(double ber, u64 seed) : ber_(ber), rng_(seed) {}

void BitErrorModel::reseed(u64 seed) { rng_ = Rng(seed); }

bool BitErrorModel::corrupt(std::size_t bytes) {
  if (ber_ <= 0.0) return false;
  double bits = static_cast<double>(bytes) * 8.0;
  // P(at least one bit flips) = 1 - (1-ber)^bits, computed in log space to
  // stay accurate for tiny error rates.
  double p_ok = std::exp(bits * std::log1p(-ber_));
  return rng_.chance(1.0 - p_ok);
}

}  // namespace vwire::phy
