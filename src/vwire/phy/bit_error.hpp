// Per-frame bit-error lottery.
//
// A frame of n bits survives with probability (1-ber)^n.  A corrupted frame
// is treated the way a real NIC treats a bad-FCS frame: silently discarded.
// These silent losses are precisely the "faults VirtualWire cannot account
// for" that the paper's Reliable Link Layer masks (§3.3).
#pragma once

#include "vwire/util/rng.hpp"

namespace vwire::phy {

class BitErrorModel {
 public:
  BitErrorModel(double ber, u64 seed);

  /// True if a frame of `bytes` octets gets corrupted in transit.
  bool corrupt(std::size_t bytes);

  /// Restarts the lottery's random stream from `seed` (same BER).
  void reseed(u64 seed);

  double ber() const { return ber_; }

 private:
  double ber_;
  Rng rng_;
};

}  // namespace vwire::phy
