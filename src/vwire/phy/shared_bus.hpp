// Half-duplex shared Ethernet segment (single collision domain).
//
// Rether was designed to regulate access to exactly this kind of medium: a
// shared bus where simultaneous transmitters collide.  All attached NICs
// share one channel; a frame occupies the channel for its serialization
// time, contending transmitters defer (counted as collisions) and pay a
// CSMA/CD-style randomized backoff before their slot.
#pragma once

#include "vwire/phy/medium.hpp"

namespace vwire::phy {

class SharedBus final : public Medium {
 public:
  SharedBus(sim::Simulator& sim, LinkParams params, u64 seed = 1);

  void transmit(PortId port, net::Packet pkt) override;
  void reseed(u64 seed) override;

 private:
  void complete(PortId src_port, net::Packet pkt);

  TimePoint channel_busy_until_{};
  std::size_t channel_queued_{0};
  Rng backoff_rng_;

  /// 512-bit times at 10 Mbps in classic Ethernet; kept independent of the
  /// configured rate as a plain contention penalty.
  static constexpr Duration kSlot = micros(51);
};

}  // namespace vwire::phy
