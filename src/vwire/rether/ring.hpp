// Versioned token-ring membership with per-member real-time reservations.
//
// The ring is an ordered list of MAC addresses; the token visits members in
// list order, wrapping around.  Every mutation (eviction of a dead node,
// admission of a joiner, a reservation change) bumps the version; nodes
// adopt whichever ring carries the highest version they have seen, so a
// reconstruction spreads with the next token pass.
#pragma once

#include <vector>

#include "vwire/net/address.hpp"

namespace vwire::rether {

class Ring {
 public:
  Ring() = default;
  Ring(std::vector<net::MacAddress> members, u32 version)
      : members_(std::move(members)),
        quotas_(members_.size(), 0),
        version_(version) {}

  const std::vector<net::MacAddress>& members() const { return members_; }
  const std::vector<u16>& quotas() const { return quotas_; }
  u32 version() const { return version_; }
  std::size_t size() const { return members_.size(); }
  bool contains(const net::MacAddress& mac) const;

  /// The member after `mac` in token order; `mac` itself when it is the
  /// only member; nullopt when `mac` is not in the ring.
  std::optional<net::MacAddress> successor_of(const net::MacAddress& mac) const;

  /// Removes a member (no-op when absent); bumps the version on change.
  void remove(const net::MacAddress& mac);

  /// Appends a member with no reservation (no-op when present); bumps the
  /// version on change.
  void add(const net::MacAddress& mac);

  /// Member's real-time reservation in frames per cycle (0 = best effort).
  u16 quota_of(const net::MacAddress& mac) const;
  /// Sets a member's reservation; bumps the version on change.  No-op for
  /// non-members.
  void set_quota(const net::MacAddress& mac, u16 frames);
  /// Sum of all reservations.
  u32 total_quota() const;

  /// Adopts `other` if it is strictly newer; returns true on adoption.
  bool adopt_if_newer(const std::vector<net::MacAddress>& other,
                      const std::vector<u16>& other_quotas, u32 version);

  /// The lowest MAC in the ring — tiebreaker for token regeneration.
  std::optional<net::MacAddress> lowest() const;

 private:
  std::vector<net::MacAddress> members_;
  std::vector<u16> quotas_;
  u32 version_{0};
};

}  // namespace vwire::rether
