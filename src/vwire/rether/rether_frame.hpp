// Rether wire format.
//
// Rether control frames are raw Ethernet frames with ethertype 0x9900 (the
// paper's Fig 6 filter: `tr_token: (12 2 0x9900), (14 2 0x0001)`), so the
// opcode lands at frame offset 14 where the paper's filters match it.
//
// Layout after the Ethernet header:
//   [opcode:2][token_seq:4][ring_version:4][member_count:2]
//   ([6B MAC][rt_quota:2])*count
//
// The token carries the current ring membership, its version, and each
// member's real-time reservation (frames per cycle); a node that evicts a
// dead member or admits a reservation bumps the version and the next token
// pass propagates the new state (paper §6.2; Rether's bandwidth guarantee
// per Venkatramani & Chiueh).
#pragma once

#include <vector>

#include "vwire/net/packet.hpp"

namespace vwire::rether {

enum class RetherOp : u16 {
  kToken = 0x0001,     // matches the paper's tr_token filter
  kTokenAck = 0x0010,  // matches the paper's tr_token_ack filter
  kJoinReq = 0x0020,
  kJoinAck = 0x0021,
};

struct RetherFrame {
  RetherOp op{RetherOp::kToken};
  u32 token_seq{0};
  u32 ring_version{0};
  std::vector<net::MacAddress> ring;  ///< token / join-ack only
  /// Per-member RT reservation (frames/cycle), parallel to `ring`; zero =
  /// best-effort only.  Sized to `ring` on the wire.
  std::vector<u16> rt_quota;

  /// Builds a complete Ethernet frame carrying this Rether message.
  net::Packet build(const net::MacAddress& dst,
                    const net::MacAddress& src) const;

  /// Parses an ethertype-0x9900 frame; nullopt on malformed bytes.
  static std::optional<RetherFrame> parse(BytesView frame);
};

}  // namespace vwire::rether
