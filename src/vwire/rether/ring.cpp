#include "vwire/rether/ring.hpp"

#include <algorithm>

namespace vwire::rether {

namespace {

std::ptrdiff_t index_of(const std::vector<net::MacAddress>& v,
                        const net::MacAddress& mac) {
  auto it = std::find(v.begin(), v.end(), mac);
  return it == v.end() ? -1 : it - v.begin();
}

}  // namespace

bool Ring::contains(const net::MacAddress& mac) const {
  return index_of(members_, mac) >= 0;
}

std::optional<net::MacAddress> Ring::successor_of(
    const net::MacAddress& mac) const {
  std::ptrdiff_t i = index_of(members_, mac);
  if (i < 0) return std::nullopt;
  return members_[static_cast<std::size_t>(i + 1) % members_.size()];
}

void Ring::remove(const net::MacAddress& mac) {
  std::ptrdiff_t i = index_of(members_, mac);
  if (i < 0) return;
  members_.erase(members_.begin() + i);
  quotas_.erase(quotas_.begin() + i);
  ++version_;
}

void Ring::add(const net::MacAddress& mac) {
  if (contains(mac)) return;
  members_.push_back(mac);
  quotas_.push_back(0);
  ++version_;
}

u16 Ring::quota_of(const net::MacAddress& mac) const {
  std::ptrdiff_t i = index_of(members_, mac);
  return i < 0 ? 0 : quotas_[static_cast<std::size_t>(i)];
}

void Ring::set_quota(const net::MacAddress& mac, u16 frames) {
  std::ptrdiff_t i = index_of(members_, mac);
  if (i < 0 || quotas_[static_cast<std::size_t>(i)] == frames) return;
  quotas_[static_cast<std::size_t>(i)] = frames;
  ++version_;
}

u32 Ring::total_quota() const {
  u32 total = 0;
  for (u16 q : quotas_) total += q;
  return total;
}

bool Ring::adopt_if_newer(const std::vector<net::MacAddress>& other,
                          const std::vector<u16>& other_quotas, u32 version) {
  if (version <= version_) return false;
  members_ = other;
  quotas_ = other_quotas;
  quotas_.resize(members_.size(), 0);
  version_ = version;
  return true;
}

std::optional<net::MacAddress> Ring::lowest() const {
  if (members_.empty()) return std::nullopt;
  return *std::min_element(
      members_.begin(), members_.end(),
      [](const net::MacAddress& a, const net::MacAddress& b) {
        return a.bytes() < b.bytes();
      });
}

}  // namespace vwire::rether
