#include "vwire/rether/rether_layer.hpp"

#include "vwire/util/logging.hpp"

namespace vwire::rether {

RetherLayer::RetherLayer(sim::Simulator& sim, RetherParams params,
                         std::vector<net::MacAddress> initial_ring)
    : sim_(sim),
      params_(params),
      ring_(std::move(initial_ring), /*version=*/1),
      ack_timer_(sim, [this] { on_ack_timeout(); }),
      hold_timer_(sim, [this] { pass_token(); }),
      watchdog_(sim, [this] { on_watchdog(); }) {}

void RetherLayer::start(bool with_token) {
  started_ = true;
  if (with_token) {
    token_seq_ = 1;
    highest_seq_seen_ = 1;
    hold_token();
  } else {
    kick_watchdog();
  }
}

void RetherLayer::stop() {
  started_ = false;
  ack_timer_.cancel();
  hold_timer_.cancel();
  watchdog_.cancel();
}

void RetherLayer::kick_watchdog() {
  if (started_ && params_.watchdog) watchdog_.start(params_.regen_timeout);
}

void RetherLayer::inject_forged_token(u32 seq_ahead) {
  if (!started_) return;
  // Adopt the forged sequence exactly as handle_token would have, then act
  // as a legitimate holder: the forgery propagates through normal passes,
  // which is what makes the resulting split brain a protocol-level event
  // rather than a one-instant glitch.
  token_seq_ = highest_seq_seen_ + seq_ahead;
  highest_seq_seen_ = token_seq_;
  if (!holding_) hold_token();
}

// ---------------------------------------------------------------------------
// Data path

void RetherLayer::send_down(net::Packet pkt) {
  if (!started_) {
    pass_down(std::move(pkt));  // protocol not running: unregulated
    return;
  }
  // RT classification only takes effect under an admitted reservation;
  // otherwise reserved-class traffic competes as best effort.
  bool rt = rt_classifier_ && rt_classifier_(pkt) &&
            ring_.quota_of(node_->mac()) > 0;
  if (holding_ && queue_.empty() && rt_queue_.empty()) {
    ++stats_.data_sent;
    if (rt) ++stats_.rt_sent;
    pass_down(std::move(pkt));
    return;
  }
  std::deque<net::Packet>& q = rt ? rt_queue_ : queue_;
  if (q.size() >= params_.queue_limit) {
    ++stats_.data_dropped_queue;
    return;
  }
  ++stats_.data_queued;
  q.push_back(std::move(pkt));
}

void RetherLayer::request_reservation(u16 frames) {
  pending_reservation_ = frames;
  reservation_state_ = ReservationState::kPending;
}

void RetherLayer::resolve_pending_reservation() {
  if (reservation_state_ != ReservationState::kPending) return;
  // Admission control against the target cycle: the other members' quotas
  // plus ours, plus fixed per-hop overhead, must fit the cycle.
  u32 others = ring_.total_quota() - ring_.quota_of(node_->mac());
  i64 estimated =
      static_cast<i64>(others + pending_reservation_) *
          params_.rt_frame_time.ns +
      static_cast<i64>(ring_.size()) * params_.per_hop_overhead.ns;
  if (estimated <= params_.target_cycle.ns) {
    ring_.set_quota(node_->mac(), pending_reservation_);
    reservation_state_ = pending_reservation_ == 0
                             ? ReservationState::kNone
                             : ReservationState::kAdmitted;
    ++stats_.reservations_admitted;
    VWIRE_INFO() << node_->name() << ": rether reservation of "
                 << pending_reservation_ << " frames/cycle admitted";
  } else {
    reservation_state_ = ReservationState::kRejected;
    ++stats_.reservations_rejected;
    VWIRE_INFO() << node_->name() << ": rether reservation of "
                 << pending_reservation_ << " frames/cycle REJECTED";
  }
}

void RetherLayer::receive_up(net::Packet pkt) {
  if (pkt.ethertype() != static_cast<u16>(net::EtherType::kRether)) {
    pass_up(std::move(pkt));
    return;
  }
  if (node_ != nullptr && node_->failed()) return;  // crashed: silent
  auto eth = pkt.ethernet();
  auto f = RetherFrame::parse(pkt.view());
  if (!eth || !f) return;
  kick_watchdog();
  switch (f->op) {
    case RetherOp::kToken:
      handle_token(eth->src, *f);
      break;
    case RetherOp::kTokenAck:
      handle_ack(eth->src, *f);
      break;
    case RetherOp::kJoinReq:
      handle_join_req(eth->src);
      break;
    case RetherOp::kJoinAck:
      handle_join_ack(*f);
      break;
  }
}

// ---------------------------------------------------------------------------
// Token handling

void RetherLayer::handle_token(const net::MacAddress& from,
                               const RetherFrame& f) {
  if (f.token_seq < highest_seq_seen_) {
    // A strictly older token is a duplicate from a partitioned holder:
    // drop it unacknowledged so its sender's retransmissions dry up.
    ++stats_.stale_tokens_dropped;
    return;
  }
  ring_.adopt_if_newer(f.ring, f.rt_quota, f.ring_version);
  ++stats_.tokens_received;
  highest_seq_seen_ = std::max(highest_seq_seen_, f.token_seq);
  token_seq_ = f.token_seq;

  // Acknowledge to the previous holder.
  RetherFrame ack;
  ack.op = RetherOp::kTokenAck;
  ack.token_seq = f.token_seq;
  ack.ring_version = ring_.version();
  ++stats_.acks_sent;
  pass_down(ack.build(from, node_->mac()));

  if (holding_) return;  // duplicate delivery of the token we already hold
  hold_token();
}

void RetherLayer::hold_token() {
  holding_ = true;
  awaiting_ack_from_.reset();
  ack_timer_.cancel();
  // Cycle-time measurement feeds best-effort shedding and admission.
  TimePoint now = sim_.now();
  last_cycle_ = last_hold_.ns >= 0 ? now - last_hold_ : Duration{0};
  last_hold_ = now;
  resolve_pending_reservation();
  drain_quantum();
}

void RetherLayer::drain_quantum() {
  std::size_t sent = 0;
  // Reserved traffic first: the guaranteed share is sent every hold.
  u16 quota = ring_.quota_of(node_->mac());
  while (!rt_queue_.empty() && sent < quota) {
    ++stats_.data_sent;
    ++stats_.rt_sent;
    pass_down(std::move(rt_queue_.front()));
    rt_queue_.pop_front();
    ++sent;
  }
  // Best effort only while the cycle is on schedule — when the ring runs
  // behind its target cycle, best effort is shed to protect the
  // reservations (Rether's core guarantee).
  std::size_t be_budget = params_.hold_quantum_frames;
  if (ring_.total_quota() > 0 && last_cycle_.ns > params_.target_cycle.ns) {
    be_budget = 0;
    if (!queue_.empty()) ++stats_.be_shed_holds;
  }
  std::size_t be_sent = 0;
  // A released reservation may strand frames in the RT queue; they drain
  // at best-effort priority ahead of the regular queue.
  while (quota == 0 && !rt_queue_.empty() && be_sent < be_budget) {
    ++stats_.data_sent;
    pass_down(std::move(rt_queue_.front()));
    rt_queue_.pop_front();
    ++be_sent;
    ++sent;
  }
  while (!queue_.empty() && be_sent < be_budget) {
    ++stats_.data_sent;
    pass_down(std::move(queue_.front()));
    queue_.pop_front();
    ++be_sent;
    ++sent;
  }
  if (ring_.size() <= 1) {
    // Alone in the ring: keep the token, poll the queue periodically.
    hold_timer_.start(params_.idle_hold);
    return;
  }
  if (sent == 0) {
    // Nothing to send: hold briefly so an idle ring doesn't spin at wire
    // speed, then pass on.
    hold_timer_.start(params_.idle_hold);
  } else {
    pass_token();
  }
}

void RetherLayer::pass_token() {
  if (!holding_) return;
  if (ring_.size() <= 1) {
    drain_quantum();
    return;
  }
  auto succ = ring_.successor_of(node_->mac());
  if (!succ) {
    // We were evicted (falsely suspected): wait to be re-admitted.
    holding_ = false;
    return;
  }
  ++token_seq_;
  highest_seq_seen_ = std::max(highest_seq_seen_, token_seq_);
  transmissions_ = 0;
  awaiting_ack_from_ = *succ;
  holding_ = false;
  send_token_to(*succ);
}

void RetherLayer::send_token_to(const net::MacAddress& dst) {
  RetherFrame tok;
  tok.op = RetherOp::kToken;
  tok.token_seq = token_seq_;
  tok.ring_version = ring_.version();
  tok.ring = ring_.members();
  tok.rt_quota = ring_.quotas();
  ++transmissions_;
  ++stats_.token_sends;
  if (transmissions_ == 1) {
    ++stats_.tokens_passed;
  } else {
    ++stats_.token_retransmits;
  }
  pass_down(tok.build(dst, node_->mac()));
  ack_timer_.start(params_.token_ack_timeout);
}

void RetherLayer::handle_ack(const net::MacAddress& from,
                             const RetherFrame& f) {
  if (!awaiting_ack_from_ || !(from == *awaiting_ack_from_) ||
      f.token_seq != token_seq_) {
    return;  // stale ack
  }
  ++stats_.acks_received;
  awaiting_ack_from_.reset();
  ack_timer_.cancel();
}

void RetherLayer::on_ack_timeout() {
  if (!awaiting_ack_from_) return;
  if (transmissions_ < params_.token_max_transmissions) {
    send_token_to(*awaiting_ack_from_);
    return;
  }
  evict_successor_and_retry();
}

void RetherLayer::evict_successor_and_retry() {
  // The paper §6.2: "the fault detection mechanism should be able to
  // reconstruct the ring by detecting that there is no token-ack ... —
  // the successor is declared dead and removed".
  net::MacAddress dead = *awaiting_ack_from_;
  awaiting_ack_from_.reset();
  ++stats_.nodes_evicted;
  ring_.remove(dead);
  VWIRE_INFO() << node_->name() << ": rether evicted "
               << dead.to_string() << ", ring size " << ring_.size();
  holding_ = true;  // we still own the token
  if (ring_.size() <= 1) {
    drain_quantum();
    return;
  }
  auto succ = ring_.successor_of(node_->mac());
  if (!succ) {
    holding_ = false;
    return;
  }
  ++token_seq_;
  highest_seq_seen_ = std::max(highest_seq_seen_, token_seq_);
  transmissions_ = 0;
  awaiting_ack_from_ = *succ;
  holding_ = false;
  send_token_to(*succ);
}

// ---------------------------------------------------------------------------
// Token-loss watchdog

void RetherLayer::on_watchdog() {
  if (!started_ || node_->failed()) return;
  kick_watchdog();
  if (holding_ || awaiting_ack_from_) return;
  // Silence for a full regeneration window: if we are the lowest surviving
  // member, mint a replacement token.  The big sequence jump dominates any
  // stale token still wandering the network.
  auto low = ring_.lowest();
  if (!low || !(*low == node_->mac())) return;
  ++stats_.tokens_regenerated;
  token_seq_ = highest_seq_seen_ + 1000;
  highest_seq_seen_ = token_seq_;
  VWIRE_INFO() << node_->name() << ": rether regenerated token seq "
               << token_seq_;
  hold_token();
}

// ---------------------------------------------------------------------------
// Join (extension)

void RetherLayer::request_join() {
  RetherFrame req;
  req.op = RetherOp::kJoinReq;
  pass_down(req.build(net::MacAddress::broadcast(), node_->mac()));
}

void RetherLayer::handle_join_req(const net::MacAddress& from) {
  if (!holding_) return;  // only the token holder admits members
  if (!ring_.contains(from)) {
    ring_.add(from);
    ++stats_.joins_admitted;
  }
  RetherFrame ack;
  ack.op = RetherOp::kJoinAck;
  ack.ring_version = ring_.version();
  ack.ring = ring_.members();
  ack.rt_quota = ring_.quotas();
  pass_down(ack.build(from, node_->mac()));
}

void RetherLayer::handle_join_ack(const RetherFrame& f) {
  ring_.adopt_if_newer(f.ring, f.rt_quota, f.ring_version);
}

}  // namespace vwire::rether
