// Rether — the software token-passing real-time Ethernet protocol (paper
// §1, §6.2; Venkatramani & Chiueh, SIGCOMM '95).
//
// Implemented, like the original and like the VirtualWire engine itself, as
// a layer between the device driver and the IP stack.  In best-effort mode
// the token visits ring members round-robin; a member transmits queued
// frames only while holding the token.
//
// Fault handling reproduced from the paper's test scenario:
//  * every token pass is acknowledged (tr_token_ack);
//  * an unacknowledged token is retransmitted until the configured
//    transmission budget (3 sends in the Fig 6 script) is exhausted, after
//    which the successor is evicted and the ring reconstructed;
//  * each token carries the versioned membership, so survivors adopt the
//    reconstructed ring on the next pass;
//  * a silence watchdog regenerates a lost token at the lowest-MAC member,
//    covering the "no token" half of the single-token invariant; stale
//    (lower-sequence) tokens are discarded, covering the "multiple tokens"
//    half.
#pragma once

#include <deque>

#include "vwire/host/node.hpp"
#include "vwire/rether/rether_frame.hpp"
#include "vwire/rether/ring.hpp"
#include "vwire/sim/timer.hpp"

namespace vwire::rether {

struct RetherParams {
  Duration token_ack_timeout{millis(10)};
  /// Total transmissions of one token to one successor before eviction.
  /// The Fig 6 analysis script checks for exactly 3.
  u32 token_max_transmissions{3};
  std::size_t hold_quantum_frames{10};  ///< best-effort frames per hold
  Duration idle_hold{micros(200)};      ///< pass delay when queue is empty
  Duration regen_timeout{millis(500)};  ///< silence before regeneration
  std::size_t queue_limit{512};
  bool watchdog{true};  ///< enable the token-regeneration watchdog

  // --- real-time mode (Rether's bandwidth guarantee) ---
  /// Target token-cycle duration; reservations are admitted against it and
  /// best-effort transmission is shed when the cycle runs behind.
  Duration target_cycle{millis(10)};
  /// Admission-control budget per reserved frame (wire time of a
  /// full-sized frame plus handling).
  Duration rt_frame_time{micros(130)};
  /// Admission-control budget per ring member per cycle (token pass,
  /// ack, idle hold).
  Duration per_hop_overhead{micros(250)};
};

/// Outcome of request_reservation(), resolved the next time this node
/// holds the token (admission needs the ring-wide view the token carries).
enum class ReservationState : u8 { kNone, kPending, kAdmitted, kRejected };

struct RetherStats {
  u64 tokens_received{0};
  u64 tokens_passed{0};     ///< distinct successful first transmissions
  u64 token_sends{0};       ///< includes retransmissions
  u64 token_retransmits{0};
  u64 acks_sent{0};
  u64 acks_received{0};
  u64 nodes_evicted{0};
  u64 tokens_regenerated{0};
  u64 stale_tokens_dropped{0};
  u64 data_sent{0};
  u64 data_queued{0};
  u64 data_dropped_queue{0};
  u64 joins_admitted{0};
  // Real-time mode.
  u64 rt_sent{0};          ///< frames sent under a reservation
  u64 be_shed_holds{0};    ///< holds where best-effort was suppressed
  u64 reservations_admitted{0};
  u64 reservations_rejected{0};
};

class RetherLayer final : public host::Layer {
 public:
  RetherLayer(sim::Simulator& sim, RetherParams params,
              std::vector<net::MacAddress> initial_ring);

  std::string_view name() const override { return "rether"; }

  /// Regulated data path: frames queue until this node holds the token.
  void send_down(net::Packet pkt) override;
  /// Consumes ethertype-0x9900 frames; everything else passes up.
  void receive_up(net::Packet pkt) override;

  /// Starts the protocol.  `with_token` on exactly one node injects the
  /// initial token.
  void start(bool with_token);
  /// Stops timers (ends a simulation cleanly).
  void stop();

  bool holding_token() const { return holding_; }
  /// Sequence number of the token this node last held or passed.  With
  /// holding_token(), lets observers distinguish the operational token
  /// (maximum sequence) from a stale one a partitioned/evicted member is
  /// still clutching — the protocol tolerates stale holders (their sends
  /// are dropped unacknowledged), so only duplicate *live* tokens violate
  /// ring uniqueness.
  u32 token_seq() const { return token_seq_; }
  const Ring& ring() const { return ring_; }
  const RetherStats& stats() const { return stats_; }
  std::size_t queue_depth() const { return queue_.size(); }

  /// A node outside the ring can request admission (extension).
  void request_join();

  /// Byzantine fault-injection hook (chaos kStateFault, DESIGN.md §10):
  /// this node starts holding a forged token whose sequence is `seq_ahead`
  /// beyond the highest it has seen — as if a corrupted token frame slipped
  /// past the stale-sequence filter.  seq_ahead = 0 duplicates the current
  /// operational sequence, so two live holders exist (the split brain the
  /// single-token probe catches).  Never call outside fault injection.
  void inject_forged_token(u32 seq_ahead);

  // --- real-time mode --------------------------------------------------
  /// Frames matching this predicate use the reserved (guaranteed) queue;
  /// everything else is best effort.  Unset = everything is best effort.
  void set_rt_classifier(std::function<bool(const net::Packet&)> fn) {
    rt_classifier_ = std::move(fn);
  }

  /// Requests a reservation of `frames` guaranteed frames per token cycle.
  /// Resolved (admitted/rejected against the target cycle time) the next
  /// time this node holds the token; 0 releases the reservation.
  void request_reservation(u16 frames);
  ReservationState reservation_state() const { return reservation_state_; }
  std::size_t rt_queue_depth() const { return rt_queue_.size(); }

 private:
  void hold_token();
  void drain_quantum();
  void resolve_pending_reservation();
  void pass_token();
  void send_token_to(const net::MacAddress& dst);
  void on_ack_timeout();
  void evict_successor_and_retry();
  void on_watchdog();
  void kick_watchdog();
  void handle_token(const net::MacAddress& from, const RetherFrame& f);
  void handle_ack(const net::MacAddress& from, const RetherFrame& f);
  void handle_join_req(const net::MacAddress& from);
  void handle_join_ack(const RetherFrame& f);

  sim::Simulator& sim_;
  RetherParams params_;
  RetherStats stats_;
  Ring ring_;

  bool started_{false};
  bool holding_{false};
  u32 token_seq_{0};       ///< sequence of the token we hold / last saw
  u32 highest_seq_seen_{0};

  // Pass-in-progress state.
  std::optional<net::MacAddress> awaiting_ack_from_;
  u32 transmissions_{0};
  sim::Timer ack_timer_;
  sim::Timer hold_timer_;   ///< idle-hold delay before passing
  sim::Timer watchdog_;

  std::deque<net::Packet> queue_;     ///< best-effort
  std::deque<net::Packet> rt_queue_;  ///< reserved traffic

  std::function<bool(const net::Packet&)> rt_classifier_;
  ReservationState reservation_state_{ReservationState::kNone};
  u16 pending_reservation_{0};
  TimePoint last_hold_{.ns = -1};  ///< cycle-time measurement
  Duration last_cycle_{};          ///< duration of the previous cycle
};

}  // namespace vwire::rether
