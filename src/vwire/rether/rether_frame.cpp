#include "vwire/rether/rether_frame.hpp"

#include <algorithm>

namespace vwire::rether {

net::Packet RetherFrame::build(const net::MacAddress& dst,
                               const net::MacAddress& src) const {
  Bytes payload(2 + 4 + 4 + 2 + 8 * ring.size());
  write_u16(payload, 0, static_cast<u16>(op));
  write_u32(payload, 2, token_seq);
  write_u32(payload, 6, ring_version);
  write_u16(payload, 10, static_cast<u16>(ring.size()));
  std::size_t off = 12;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    std::copy(ring[i].bytes().begin(), ring[i].bytes().end(),
              payload.begin() + static_cast<std::ptrdiff_t>(off));
    off += 6;
    write_u16(payload, off, i < rt_quota.size() ? rt_quota[i] : 0);
    off += 2;
  }
  return net::Packet(net::make_frame(
      dst, src, static_cast<u16>(net::EtherType::kRether), payload));
}

std::optional<RetherFrame> RetherFrame::parse(BytesView frame) {
  if (net::frame_ethertype(frame) != static_cast<u16>(net::EtherType::kRether)) {
    return std::nullopt;
  }
  BytesView p = frame.subspan(net::EthernetHeader::kSize);
  if (p.size() < 12) return std::nullopt;
  RetherFrame f;
  u16 op = read_u16(p, 0);
  switch (op) {
    case static_cast<u16>(RetherOp::kToken):
    case static_cast<u16>(RetherOp::kTokenAck):
    case static_cast<u16>(RetherOp::kJoinReq):
    case static_cast<u16>(RetherOp::kJoinAck):
      f.op = static_cast<RetherOp>(op);
      break;
    default:
      return std::nullopt;
  }
  f.token_seq = read_u32(p, 2);
  f.ring_version = read_u32(p, 6);
  u16 count = read_u16(p, 10);
  if (p.size() < 12 + 8u * count) return std::nullopt;
  f.ring.reserve(count);
  f.rt_quota.reserve(count);
  for (u16 i = 0; i < count; ++i) {
    std::array<u8, 6> mac{};
    std::copy_n(p.begin() + 12 + 8 * i, 6, mac.begin());
    f.ring.emplace_back(mac);
    f.rt_quota.push_back(read_u16(p, 12 + 8 * i + 6));
  }
  return f;
}

}  // namespace vwire::rether
