#include "vwire/core/tables/tables.hpp"

namespace vwire::core {

FilterId FilterTable::find(std::string_view name) const {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].name == name) return static_cast<FilterId>(i);
  }
  return kInvalidId;
}

NodeId NodeTable::find(std::string_view name) const {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].name == name) return static_cast<NodeId>(i);
  }
  return kInvalidId;
}

NodeId NodeTable::find_mac(const net::MacAddress& mac) const {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].mac == mac) return static_cast<NodeId>(i);
  }
  return kInvalidId;
}

CounterId CounterTable::find(std::string_view name) const {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].name == name) return static_cast<CounterId>(i);
  }
  return kInvalidId;
}

CondId TableSet::owning_cond(ActionId id) const {
  if (id >= actions.entries.size()) return kInvalidId;
  const CondId back = actions.entries[id].cond;
  if (back != kInvalidId && back < conditions.entries.size()) return back;
  for (std::size_t c = 0; c < conditions.entries.size(); ++c) {
    for (ActionId a : conditions.entries[c].actions) {
      if (a == id) return static_cast<CondId>(c);
    }
  }
  return kInvalidId;
}

const char* to_string(RelOp op) {
  switch (op) {
    case RelOp::kGt: return ">";
    case RelOp::kLt: return "<";
    case RelOp::kGe: return ">=";
    case RelOp::kLe: return "<=";
    case RelOp::kEq: return "=";
    case RelOp::kNe: return "!=";
  }
  return "?";
}

bool eval_rel(RelOp op, i64 lhs, i64 rhs) {
  switch (op) {
    case RelOp::kGt: return lhs > rhs;
    case RelOp::kLt: return lhs < rhs;
    case RelOp::kGe: return lhs >= rhs;
    case RelOp::kLe: return lhs <= rhs;
    case RelOp::kEq: return lhs == rhs;
    case RelOp::kNe: return lhs != rhs;
  }
  return false;
}

const char* to_string(ActionKind k) {
  switch (k) {
    case ActionKind::kDrop: return "DROP";
    case ActionKind::kDelay: return "DELAY";
    case ActionKind::kReorder: return "REORDER";
    case ActionKind::kDup: return "DUP";
    case ActionKind::kModify: return "MODIFY";
    case ActionKind::kFail: return "FAIL";
    case ActionKind::kStop: return "STOP";
    case ActionKind::kFlagError: return "FLAG_ERROR";
    case ActionKind::kAssignCntr: return "ASSIGN_CNTR";
    case ActionKind::kEnableCntr: return "ENABLE_CNTR";
    case ActionKind::kDisableCntr: return "DISABLE_CNTR";
    case ActionKind::kIncrCntr: return "INCR_CNTR";
    case ActionKind::kDecrCntr: return "DECR_CNTR";
    case ActionKind::kResetCntr: return "RESET_CNTR";
    case ActionKind::kSetCurtime: return "SET_CURTIME";
    case ActionKind::kElapsedTime: return "ELAPSED_TIME";
  }
  return "?";
}

bool is_packet_fault(ActionKind k) {
  switch (k) {
    case ActionKind::kDrop:
    case ActionKind::kDelay:
    case ActionKind::kReorder:
    case ActionKind::kDup:
    case ActionKind::kModify:
      return true;
    default:
      return false;
  }
}

}  // namespace vwire::core
