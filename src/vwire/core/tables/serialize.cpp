// Binary wire format for the table bundle.
//
// The control node "initializes the test nodes with the relevant data
// structures" (paper §3.2); faithfully, the tables travel over the
// simulated network as the payload of the control plane's INIT message, so
// every engine works from a deserialized copy, never from shared memory.
#include <cstring>
#include <stdexcept>

#include "vwire/core/tables/tables.hpp"

namespace vwire::core {

namespace {

constexpr u32 kMagic = 0x56575442;  // "VWTB"
// v2: ActionEntry grew the RATE/PROB fault-modifier fields.
// v3: rule provenance — CondEntry carries its source position, ActionEntry
//     carries the owning condition plus its own source position.  The
//     reader still accepts v2 (provenance defaults to "unknown" and the
//     action→condition back-references are reconstructed from the
//     condition table).
constexpr u16 kMinVersion = 2;
constexpr u16 kVersion = 3;

void put_ids(ByteWriter& w, const std::vector<u16>& v) {
  w.u16v(static_cast<u16>(v.size()));
  for (u16 x : v) w.u16v(x);
}

std::vector<u16> get_ids(ByteReader& r) {
  u16 n = r.u16v();
  std::vector<u16> v(n);
  for (auto& x : v) x = r.u16v();
  return v;
}

void put_mac(ByteWriter& w, const net::MacAddress& m) {
  w.raw(BytesView(m.bytes().data(), 6));
}

net::MacAddress get_mac(ByteReader& r) {
  Bytes b = r.raw(6);
  std::array<u8, 6> a{};
  std::copy(b.begin(), b.end(), a.begin());
  return net::MacAddress(a);
}

}  // namespace

Bytes serialize(const TableSet& t) {
  ByteWriter w;
  w.u32v(kMagic);
  w.u16v(kVersion);
  w.str(t.scenario_name);
  w.u64v(static_cast<u64>(t.inactivity_timeout.ns));

  // Filter table.
  w.u16v(static_cast<u16>(t.filters.var_names.size()));
  for (const auto& v : t.filters.var_names) w.str(v);
  w.u16v(static_cast<u16>(t.filters.entries.size()));
  for (const auto& e : t.filters.entries) {
    w.str(e.name);
    w.u16v(static_cast<u16>(e.tuples.size()));
    for (const auto& tp : e.tuples) {
      w.u16v(tp.offset);
      w.u16v(tp.length);
      w.u64v(tp.mask);
      w.u64v(tp.pattern);
      w.u16v(tp.var);
    }
  }

  // Node table.
  w.u16v(static_cast<u16>(t.nodes.entries.size()));
  for (const auto& n : t.nodes.entries) {
    w.str(n.name);
    put_mac(w, n.mac);
    w.u32v(n.ip.value());
  }

  // Counter table.
  w.u16v(static_cast<u16>(t.counters.entries.size()));
  for (const auto& c : t.counters.entries) {
    w.str(c.name);
    w.u8v(static_cast<u8>(c.kind));
    w.u16v(c.filter);
    w.u16v(c.src_node);
    w.u16v(c.dst_node);
    w.u8v(static_cast<u8>(c.dir));
    w.u16v(c.home);
    put_ids(w, c.terms);
    put_ids(w, c.notify_nodes);
  }

  // Term table.
  w.u16v(static_cast<u16>(t.terms.entries.size()));
  for (const auto& e : t.terms.entries) {
    auto put_operand = [&w](const Operand& o) {
      w.u8v(o.is_counter ? 1 : 0);
      w.u16v(o.counter);
      w.u64v(static_cast<u64>(o.constant));
    };
    put_operand(e.lhs);
    w.u8v(static_cast<u8>(e.op));
    put_operand(e.rhs);
    w.u16v(e.eval_node);
    put_ids(w, e.conds);
    put_ids(w, e.notify_nodes);
  }

  // Condition table.
  w.u16v(static_cast<u16>(t.conditions.entries.size()));
  for (const auto& c : t.conditions.entries) {
    w.u16v(static_cast<u16>(c.postfix.size()));
    for (const auto& in : c.postfix) {
      w.u8v(static_cast<u8>(in.op));
      w.u16v(in.term);
    }
    put_ids(w, c.actions);
    put_ids(w, c.eval_nodes);
    w.u32v(c.src_line);
    w.u32v(c.src_col);
  }

  // Action table.
  w.u16v(static_cast<u16>(t.actions.entries.size()));
  for (const auto& a : t.actions.entries) {
    w.u8v(static_cast<u8>(a.kind));
    w.u16v(a.exec_node);
    w.u16v(a.filter);
    w.u16v(a.src_node);
    w.u16v(a.dst_node);
    w.u8v(static_cast<u8>(a.dir));
    w.u64v(static_cast<u64>(a.delay.ns));
    w.u16v(a.reorder_count);
    put_ids(w, a.reorder_order);
    w.u16v(static_cast<u16>(a.modify_bytes.size()));
    for (const auto& m : a.modify_bytes) {
      w.u16v(m.offset);
      w.u8v(m.mask);
      w.u8v(m.value);
    }
    w.u16v(a.fail_node);
    w.u16v(a.counter);
    w.u64v(static_cast<u64>(a.value));
    w.u32v(a.rate_n);
    u64 prob_bits = 0;
    std::memcpy(&prob_bits, &a.prob, sizeof prob_bits);
    w.u64v(prob_bits);
    w.u16v(a.cond);
    w.u32v(a.src_line);
    w.u32v(a.src_col);
  }
  return w.take();
}

TableSet deserialize_tables(BytesView bytes) {
  ByteReader r(bytes);
  if (r.u32v() != kMagic) throw std::invalid_argument("bad table magic");
  const u16 version = r.u16v();
  if (version < kMinVersion || version > kVersion) {
    throw std::invalid_argument("bad table version");
  }
  TableSet t;
  t.scenario_name = r.str();
  t.inactivity_timeout = Duration{static_cast<i64>(r.u64v())};

  u16 nvars = r.u16v();
  for (u16 i = 0; i < nvars; ++i) t.filters.var_names.push_back(r.str());
  u16 nfilters = r.u16v();
  for (u16 i = 0; i < nfilters; ++i) {
    FilterEntry e;
    e.name = r.str();
    u16 ntuples = r.u16v();
    for (u16 j = 0; j < ntuples; ++j) {
      FilterTuple tp;
      tp.offset = r.u16v();
      tp.length = r.u16v();
      tp.mask = r.u64v();
      tp.pattern = r.u64v();
      tp.var = r.u16v();
      e.tuples.push_back(tp);
    }
    t.filters.entries.push_back(std::move(e));
  }

  u16 nnodes = r.u16v();
  for (u16 i = 0; i < nnodes; ++i) {
    NodeEntry n;
    n.name = r.str();
    n.mac = get_mac(r);
    n.ip = net::Ipv4Address(r.u32v());
    t.nodes.entries.push_back(std::move(n));
  }

  u16 ncounters = r.u16v();
  for (u16 i = 0; i < ncounters; ++i) {
    CounterEntry c;
    c.name = r.str();
    c.kind = static_cast<CounterKind>(r.u8v());
    c.filter = r.u16v();
    c.src_node = r.u16v();
    c.dst_node = r.u16v();
    c.dir = static_cast<net::Direction>(r.u8v());
    c.home = r.u16v();
    c.terms = get_ids(r);
    c.notify_nodes = get_ids(r);
    t.counters.entries.push_back(std::move(c));
  }

  u16 nterms = r.u16v();
  for (u16 i = 0; i < nterms; ++i) {
    TermEntry e;
    auto get_operand = [&r] {
      Operand o;
      o.is_counter = r.u8v() != 0;
      o.counter = r.u16v();
      o.constant = static_cast<i64>(r.u64v());
      return o;
    };
    e.lhs = get_operand();
    e.op = static_cast<RelOp>(r.u8v());
    e.rhs = get_operand();
    e.eval_node = r.u16v();
    e.conds = get_ids(r);
    e.notify_nodes = get_ids(r);
    t.terms.entries.push_back(std::move(e));
  }

  u16 nconds = r.u16v();
  for (u16 i = 0; i < nconds; ++i) {
    CondEntry c;
    u16 nin = r.u16v();
    for (u16 j = 0; j < nin; ++j) {
      CondInstr in;
      in.op = static_cast<BoolOp>(r.u8v());
      in.term = r.u16v();
      c.postfix.push_back(in);
    }
    c.actions = get_ids(r);
    c.eval_nodes = get_ids(r);
    if (version >= 3) {
      c.src_line = r.u32v();
      c.src_col = r.u32v();
    }
    t.conditions.entries.push_back(std::move(c));
  }

  u16 nactions = r.u16v();
  for (u16 i = 0; i < nactions; ++i) {
    ActionEntry a;
    a.kind = static_cast<ActionKind>(r.u8v());
    a.exec_node = r.u16v();
    a.filter = r.u16v();
    a.src_node = r.u16v();
    a.dst_node = r.u16v();
    a.dir = static_cast<net::Direction>(r.u8v());
    a.delay = Duration{static_cast<i64>(r.u64v())};
    a.reorder_count = r.u16v();
    a.reorder_order = get_ids(r);
    u16 nmod = r.u16v();
    for (u16 j = 0; j < nmod; ++j) {
      ModifyByte m;
      m.offset = r.u16v();
      m.mask = r.u8v();
      m.value = r.u8v();
      a.modify_bytes.push_back(m);
    }
    a.fail_node = r.u16v();
    a.counter = r.u16v();
    a.value = static_cast<i64>(r.u64v());
    a.rate_n = r.u32v();
    const u64 prob_bits = r.u64v();
    std::memcpy(&a.prob, &prob_bits, sizeof a.prob);
    if (version >= 3) {
      a.cond = r.u16v();
      a.src_line = r.u32v();
      a.src_col = r.u32v();
    }
    t.actions.entries.push_back(std::move(a));
  }
  if (version < 3) {
    // Reconstruct the action → owning-condition back-references a v2
    // producer never wrote, so TableSet::owning_cond stays O(1) for
    // consumers regardless of the input version.
    for (std::size_t c = 0; c < t.conditions.entries.size(); ++c) {
      for (ActionId id : t.conditions.entries[c].actions) {
        if (id < t.actions.entries.size()) {
          t.actions.entries[id].cond = static_cast<CondId>(c);
        }
      }
    }
  }
  return t;
}

}  // namespace vwire::core
