// The six tables of VirtualWire (paper §5.1, Fig 3).
//
// "The interpreter parses the script to generate a set of six tables which
//  are used to initialize each FIE and FAE involved in the test scenario."
//
//   filter table    — packet classification by raw byte patterns
//   node table      — name → (MAC, IP)
//   counter table   — event/local counters + dependency fan-out
//   term table      — relational expressions over counters
//   condition table — boolean expressions over terms + triggered actions
//   action table    — faults and counter manipulations, each bound to the
//                     node that executes it
//
// Dependency lists ({term_id, condition_id} pairs per counter, notify-node
// lists) are precomputed by the FSL compiler, exactly as the paper
// describes, so the run-time engine only chases indices.
#pragma once

#include <string>
#include <vector>

#include "vwire/net/address.hpp"
#include "vwire/net/packet.hpp"

namespace vwire::core {

using NodeId = u16;
using FilterId = u16;
using CounterId = u16;
using TermId = u16;
using CondId = u16;
using ActionId = u16;
using VarId = u16;
inline constexpr u16 kInvalidId = 0xffff;

// ---------------------------------------------------------------------------
// Filter table

/// One matching tuple: "(offset length [mask] pattern)" — paper Fig 2.
/// A tuple either compares masked bytes against a fixed pattern or binds /
/// compares a run-time variable (paper: "unless there is a variable in the
/// filter table which is defined at run time").
struct FilterTuple {
  u16 offset{0};
  u16 length{0};  ///< 1..8 bytes, big-endian extraction
  u64 mask{~0ull};
  u64 pattern{0};
  VarId var{kInvalidId};  ///< != kInvalidId: variable tuple

  bool is_var() const { return var != kInvalidId; }
};

struct FilterEntry {
  std::string name;
  std::vector<FilterTuple> tuples;  ///< logical AND (paper §4)
};

struct FilterTable {
  std::vector<FilterEntry> entries;  ///< priority = order (paper §6.1)
  std::vector<std::string> var_names;

  FilterId find(std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Node table

struct NodeEntry {
  std::string name;
  net::MacAddress mac;
  net::Ipv4Address ip;
};

struct NodeTable {
  std::vector<NodeEntry> entries;

  NodeId find(std::string_view name) const;
  NodeId find_mac(const net::MacAddress& mac) const;
};

// ---------------------------------------------------------------------------
// Counter table

enum class CounterKind : u8 {
  kEvent,  ///< counts send/receive events of a packet type
  kLocal,  ///< a script variable on one node, driven only by actions
};

struct CounterEntry {
  std::string name;
  CounterKind kind{CounterKind::kLocal};

  // Event counters: which packets, between which nodes, on which side.
  FilterId filter{kInvalidId};
  NodeId src_node{kInvalidId};
  NodeId dst_node{kInvalidId};
  net::Direction dir{net::Direction::kRecv};

  /// Where the counter value lives: SEND events count at the source node,
  /// RECV events at the destination; local counters at their declared node.
  NodeId home{kInvalidId};

  // Compiler-filled dependency fan-out (paper Fig 3: "pairs of {term_id,
  // condition_id} that are dependent on the counter's value, as well as the
  // nodes which need to be reached").
  std::vector<TermId> terms;
  std::vector<NodeId> notify_nodes;  ///< remote nodes mirroring this value
};

struct CounterTable {
  std::vector<CounterEntry> entries;
  CounterId find(std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Term table

enum class RelOp : u8 { kGt, kLt, kGe, kLe, kEq, kNe };

const char* to_string(RelOp op);
bool eval_rel(RelOp op, i64 lhs, i64 rhs);

struct Operand {
  bool is_counter{false};
  CounterId counter{kInvalidId};
  i64 constant{0};
};

struct TermEntry {
  Operand lhs;
  RelOp op{RelOp::kEq};
  Operand rhs;

  /// Node that evaluates and owns this term's state (home of the lhs
  /// counter after normalization).
  NodeId eval_node{kInvalidId};

  std::vector<CondId> conds;         ///< conditions referencing this term
  std::vector<NodeId> notify_nodes;  ///< nodes needing the term's status
};

struct TermTable {
  std::vector<TermEntry> entries;
};

// ---------------------------------------------------------------------------
// Condition table

/// Conditions are stored as postfix programs over term states.
enum class BoolOp : u8 { kTerm, kAnd, kOr, kNot, kTrue };

struct CondInstr {
  BoolOp op{BoolOp::kTrue};
  TermId term{kInvalidId};
};

struct CondEntry {
  std::vector<CondInstr> postfix;
  std::vector<ActionId> actions;    ///< in script order
  std::vector<NodeId> eval_nodes;   ///< where dependent actions live

  // Rule provenance (table format v3): source position of the rule this
  // condition was compiled from.  Makes the rule-id ↔ table-entry mapping
  // queryable without the AST — verifier diagnostics and witness traces
  // point back into the script.  0 = unknown (legacy v2 tables).
  u32 src_line{0};
  u32 src_col{0};
};

struct ConditionTable {
  std::vector<CondEntry> entries;
};

// ---------------------------------------------------------------------------
// Action table

enum class ActionKind : u8 {
  // Fault injection (Table II).
  kDrop,
  kDelay,
  kReorder,
  kDup,
  kModify,
  kFail,
  kStop,
  kFlagError,
  // Counter manipulation (Table I).
  kAssignCntr,
  kEnableCntr,
  kDisableCntr,
  kIncrCntr,
  kDecrCntr,
  kResetCntr,
  kSetCurtime,
  kElapsedTime,
};

const char* to_string(ActionKind k);
bool is_packet_fault(ActionKind k);  ///< DROP/DELAY/REORDER/DUP/MODIFY

/// Explicit byte rewrite for MODIFY: out[offset] =
/// (out[offset] & ~mask) | (value & mask).
struct ModifyByte {
  u16 offset{0};
  u8 mask{0xff};
  u8 value{0};
};

struct ActionEntry {
  ActionKind kind{ActionKind::kStop};
  NodeId exec_node{kInvalidId};

  // Packet-fault parameters: which packets the fault applies to.
  FilterId filter{kInvalidId};
  NodeId src_node{kInvalidId};
  NodeId dst_node{kInvalidId};
  net::Direction dir{net::Direction::kRecv};

  Duration delay{};                      ///< DELAY
  u16 reorder_count{0};                  ///< REORDER window size
  std::vector<u16> reorder_order;        ///< 1-based release order
  std::vector<ModifyByte> modify_bytes;  ///< empty ⇒ random perturbation

  NodeId fail_node{kInvalidId};  ///< FAIL target

  CounterId counter{kInvalidId};  ///< counter primitives
  i64 value{0};                   ///< ASSIGN/INCR/DECR amount

  // Fault modifiers (packet faults only).  rate_n == 0 means no RATE
  // modifier; rate_n == N fires on every Nth matching packet.  prob < 1.0
  // fires per match with that probability, drawn from a per-action RNG
  // stream the engine derives from the scenario's effective seed.
  u32 rate_n{0};
  double prob{1.0};

  // Rule provenance (table format v3): the owning condition (the rule this
  // action belongs to) and the action's own source position.  kInvalidId /
  // 0 on legacy v2 tables until `TableSet::owning_cond` reconstructs the
  // back-reference from the condition table.
  CondId cond{kInvalidId};
  u32 src_line{0};
  u32 src_col{0};
};

struct ActionTable {
  std::vector<ActionEntry> entries;
};

// ---------------------------------------------------------------------------
// The bundle shipped to every node (paper: "all FIEs and FAEs are sent the
// entire set of tables").

struct TableSet {
  std::string scenario_name;
  Duration inactivity_timeout{};  ///< 0 = none declared
  FilterTable filters;
  NodeTable nodes;
  CounterTable counters;
  TermTable terms;
  ConditionTable conditions;
  ActionTable actions;

  /// The condition (rule) owning action `id`: the v3 back-reference when
  /// present, otherwise a scan of the condition table (legacy v2 input).
  /// kInvalidId when the action is orphaned or `id` is out of range.
  CondId owning_cond(ActionId id) const;
};

/// Wire (de)serialization for the control plane's INIT message.
Bytes serialize(const TableSet& tables);
TableSet deserialize_tables(BytesView bytes);  ///< throws on malformed input

}  // namespace vwire::core
