// The Fault Injection Engine / Fault Analysis Engine (paper §3.3, §5.2).
//
// One EngineLayer per node implements both the FIE and the FAE — the paper
// notes they share the same mechanism ("the basic mechanism of flagging
// errors is based on the same idea of counting events").  Inserted between
// the driver (plus RLL and control agent) and the IP stack, it runs the
// control flow of Fig 4(b) for every packet:
//
//   classify → update counters → evaluate terms → evaluate conditions →
//   trigger actions (faults consume/divert the packet, counter updates
//   release it)
//
// Distributed state (paper §5.2): counters mirror to the nodes that
// evaluate terms over them; term status mirrors to the nodes that evaluate
// dependent conditions; conditions are evaluated at the nodes where their
// actions execute.  All mirroring rides the control plane, so it takes
// real (simulated) wire time — exactly the deployment the paper describes.
#pragma once

#include <deque>
#include <functional>

#include "vwire/core/control/agent.hpp"
#include "vwire/core/control/messages.hpp"
#include "vwire/core/engine/classifier.hpp"
#include "vwire/obs/metrics.hpp"
#include "vwire/obs/provenance.hpp"
#include "vwire/sim/timer.hpp"

namespace vwire::core {

struct EngineParams {
  /// Simulated per-packet processing charges; see DESIGN.md §5
  /// (calibration).  These stand in for the Pentium-4 CPU time the paper
  /// measures in Fig 8 and scale linearly with classification work.
  Duration cost_base{nanos(150)};
  Duration cost_per_tuple{nanos(30)};
  Duration cost_per_action{nanos(50)};
  bool charge_costs{true};

  /// The DELAY primitive quantizes upward to this tick — the paper's
  /// "granularity of delay can be no less than a jiffy, i.e. 10 ms".
  Duration delay_quantum{sim::kJiffy};

  u64 seed{0x7ee1};  ///< randomness for MODIFY's default perturbation
  u32 max_cascade_depth{64};

  /// FiringRecords kept per node (overwrite-oldest); 0 disables rule-firing
  /// provenance entirely.
  std::size_t provenance_capacity{4096};
};

struct EngineStats {
  u64 packets_seen{0};
  u64 packets_matched{0};
  u64 counter_updates{0};
  u64 terms_evaluated{0};
  u64 conditions_evaluated{0};
  u64 actions_executed{0};
  u64 drops{0};
  u64 delays{0};
  u64 dups{0};
  u64 modifies{0};
  u64 reorders_held{0};
  u64 reorders_released{0};
  u64 control_tx{0};
  u64 control_rx{0};
  u64 cascade_overflows{0};
};

/// Single source of field names for formatting and registry exposure
/// (obs::stat_rows / obs::expose_stats).
template <class Fn>
void for_each_field(const EngineStats& s, Fn&& fn) {
  fn("packets_seen", s.packets_seen);
  fn("packets_matched", s.packets_matched);
  fn("counter_updates", s.counter_updates);
  fn("terms_evaluated", s.terms_evaluated);
  fn("conditions_evaluated", s.conditions_evaluated);
  fn("actions_executed", s.actions_executed);
  fn("drops", s.drops);
  fn("delays", s.delays);
  fn("dups", s.dups);
  fn("modifies", s.modifies);
  fn("reorders_held", s.reorders_held);
  fn("reorders_released", s.reorders_released);
  fn("control_tx", s.control_tx);
  fn("control_rx", s.control_rx);
  fn("cascade_overflows", s.cascade_overflows);
}

struct ScenarioError {
  TimePoint at;
  NodeId node{kInvalidId};
  CondId cond{kInvalidId};
};

/// Shared run bookkeeping: engines report stops, errors and activity; the
/// runner polls it.  (In the paper these travel as control messages to the
/// control node — ours are sent too; the context is the runner's
/// authoritative, race-free copy.)
class ScenarioContext {
 public:
  void note_activity(TimePoint t) {
    if (t > last_activity_) last_activity_ = t;
  }
  TimePoint last_activity() const { return last_activity_; }

  void on_stop(NodeId node, TimePoint t) {
    if (!stopped_) {
      stopped_ = true;
      stop_node_ = node;
      stop_time_ = t;
    }
  }
  bool stopped() const { return stopped_; }
  NodeId stop_node() const { return stop_node_; }
  TimePoint stop_time() const { return stop_time_; }

  void on_error(ScenarioError e) { errors_.push_back(e); }
  const std::vector<ScenarioError>& errors() const { return errors_; }

  void reset() {
    last_activity_ = {};
    stopped_ = false;
    stop_node_ = kInvalidId;
    errors_.clear();
  }

 private:
  TimePoint last_activity_{};
  bool stopped_{false};
  NodeId stop_node_{kInvalidId};
  TimePoint stop_time_{};
  std::vector<ScenarioError> errors_;
};

class EngineLayer final : public host::Layer {
 public:
  EngineLayer(sim::Simulator& sim, EngineParams params = {});
  ~EngineLayer() override;

  std::string_view name() const override { return "vwire"; }

  // --- wiring (done by the Testbed / ScenarioRunner) ----------------------
  void set_control(control::ControlAgent* agent) { control_ = agent; }
  void set_context(ScenarioContext* ctx) { context_ = ctx; }
  const ScenarioContext* context() const { return context_; }
  /// Scenario epoch stamped onto every outbound control message so
  /// receivers can fence stale cross-scenario traffic (set by INIT).
  void set_epoch(u32 epoch) { epoch_ = epoch; }

  /// Seeds the RATE/PROB fault-modifier streams.  The ScenarioRunner passes
  /// the scenario's effective seed before arming; each modified action draws
  /// from its own derived child stream ("fsl.mod", (node << 32) | action),
  /// so adding an action never shifts another action's draws.
  void set_modifier_seed(u64 seed);

  /// Installs a table set (normally deserialized from an INIT message) and
  /// resolves this node's identity by MAC.  A node absent from the table
  /// becomes a transparent bystander.
  void load(TableSet tables);

  /// Begins the scenario: performs the initial condition sweep, so (TRUE)
  /// rules fire (the idiom the paper's Fig 5 uses for initialization).
  void start(NodeId controller_node);

  /// Clears all run-time state (between scenarios).
  void reset();
  bool loaded() const { return loaded_; }
  bool running() const { return running_; }

  // --- chain ----------------------------------------------------------------
  void send_down(net::Packet pkt) override;
  void receive_up(net::Packet pkt) override;

  /// Node crash: packets the engine holds (REORDER windows, cost-delayed
  /// releases) are lost with the node, exactly like frames sitting in a
  /// real NIC ring at power-off.
  void on_node_crash() override;

  // --- control-plane inputs ---------------------------------------------------
  void handle_control(const net::MacAddress& from, BytesView payload);

  // --- introspection (FAE reporting, tests) -----------------------------------
  i64 counter_value(CounterId id) const;
  bool counter_enabled(CounterId id) const;
  bool term_state(TermId id) const;
  bool condition_state(CondId id) const;
  const EngineStats& stats() const { return stats_; }
  const TableSet& tables() const { return tables_; }
  NodeId self() const { return self_; }

  /// Rule-firing provenance (one record per executed action; see
  /// obs/provenance.hpp).  The Controller collects this at run end.
  const obs::ProvenanceRing& provenance() const { return provenance_; }

  /// Registers this engine's stats (as counter views) and a processing-cost
  /// histogram under `prefix` (convention: "engine.<node>").
  void bind_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

 private:
  struct CounterState {
    i64 value{0};
    bool enabled{false};
  };

  /// How a fault disposed of the packet in flight.
  enum class Fate : u8 { kRelease, kConsumed, kDiverted };

  void process(net::Packet pkt, net::Direction dir);
  void release(net::Packet pkt, net::Direction dir, Duration cost);
  void release_now(net::Packet&& pkt, net::Direction dir);

  // Fig 4(b) cascade.  Rule firing is two-phase: condition evaluation
  // happens against the state of the triggering event and rising edges are
  // QUEUED; actions execute afterwards (drain_fired).  This matters when
  // one rule's action (e.g. RESET_CNTR) would immediately falsify a sibling
  // condition that was true at event time — the paper's Fig 6 script fires
  // FAIL+RESET and STOP off the same counter value.
  void set_counter(CounterId id, i64 value, int depth);
  void touch_counter(CounterId id, int depth);  ///< cascade after a change
  void eval_term(TermId id, int depth);
  void eval_condition(CondId id, int depth);
  void drain_fired();
  void fire_actions(CondId id, u16 depth);
  void exec_immediate(ActionId id, CondId cond, u16 depth);

  /// Fills a claimed ring slot for `action` of `cond`: stamps time/node/
  /// kind and snapshots the condition's counters and terms *before* the
  /// action mutates anything.  In-place on purpose — the paper's heaviest
  /// configuration fires 25 actions per matched packet, so no temporary
  /// FiringRecord (≈250 B + a std::string) is constructed or copied.
  /// Callers fill the outcome fields afterwards.
  void fill_record(obs::FiringRecord& r, CondId cond, ActionId action,
                   u16 depth) const;

  // Fault application; implemented in actions.cpp.
  Fate apply_faults(net::Packet& pkt, net::Direction dir, FilterId filter,
                    NodeId src, NodeId dst);
  Fate apply_one(const ActionEntry& a, ActionId id, net::Packet& pkt,
                 net::Direction dir);
  /// RATE/PROB gate: does this match fire the (active) fault?  Counts the
  /// match for RATE and draws from the action's stream for PROB.
  bool modifier_admits(const ActionEntry& e, ActionId id);
  void reseed_modifiers();

  void send_control(NodeId to, control::ControlMessage msg);

  bool is_transport_frame(const net::Packet& pkt) const;

  sim::Simulator& sim_;
  EngineParams params_;
  control::ControlAgent* control_{nullptr};
  ScenarioContext* context_{nullptr};

  TableSet tables_;
  std::unique_ptr<Classifier> classifier_;
  std::unique_ptr<VarStore> vars_;
  bool loaded_{false};
  bool running_{false};
  NodeId self_{kInvalidId};
  NodeId controller_{kInvalidId};
  u32 epoch_{0};
  /// Bumped by on_node_crash(); cost-delayed releases scheduled before the
  /// crash check it and drop themselves instead of resurrecting packets.
  u64 purge_gen_{0};

  std::vector<CounterState> counters_;
  std::vector<char> term_state_;
  std::vector<char> cond_state_;

  // Precomputed per-node indices.
  std::vector<std::vector<CounterId>> counters_by_filter_;  ///< home==self
  std::vector<ActionId> local_fault_actions_;  ///< packet faults, exec==self
  std::vector<CondId> action_cond_;            ///< owning condition per action
  // Counters/terms referenced by each condition, for provenance snapshots.
  std::vector<std::vector<CounterId>> cond_counters_;
  std::vector<std::vector<TermId>> cond_terms_;

  // REORDER buffers, keyed by action id.  A REORDER collects one window of
  // packets per rising edge of its condition, releases them in the scripted
  // permutation, and is done until the condition re-arms.
  std::unordered_map<ActionId, std::vector<net::Packet>> reorder_buf_;
  std::unordered_map<ActionId, net::Direction> reorder_dir_;
  std::unordered_map<ActionId, bool> reorder_done_;

  // Per-direction release ordering guard: costs are latency, never
  // reordering.
  TimePoint last_release_[2] = {};

  // Cost accounting for the packet currently being processed.
  std::size_t actions_this_packet_{0};

  // Two-phase rule firing (see above); each queued edge remembers the
  // cascade depth at which it rose, for provenance.
  std::deque<std::pair<CondId, u16>> fired_;
  bool draining_{false};

  // Fault-modifier state: per-action match counters (RATE) and RNG streams
  // (PROB), rebuilt from modifier_seed_ on load()/reset() so a re-armed
  // scenario replays identically.
  u64 modifier_seed_{0};
  std::vector<u64> mod_count_;
  std::vector<Rng> mod_rng_;

  Rng rng_;
  EngineStats stats_;
  obs::ProvenanceRing provenance_;
  obs::Histogram* proc_hist_{nullptr};  ///< per-packet processing cost (ns)
};

}  // namespace vwire::core
