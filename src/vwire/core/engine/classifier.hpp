// Packet classification against the filter table.
//
// "The priority of the filter rules is in descending order of occurrence.
//  If a match is found with one rule then there is no need to match the
//  subsequent rules." (paper §6.1)
//
// The default classifier searches linearly, which is exactly the cost the
// paper measures in Fig 8 ("the current VirtualWire implementation searches
// linearly through the packet type definitions").  `tuples_compared` feeds
// the simulated-cost model; bench_ablation_classifier compares this against
// the first-tuple-indexed variant.
#pragma once

#include <optional>
#include <unordered_map>

#include "vwire/core/tables/tables.hpp"
#include "vwire/util/rng.hpp"

namespace vwire::core {

/// Run-time store for VAR filter variables: a variable tuple matches
/// anything while unbound and binds on the first fully-matching packet;
/// once bound it matches only that value.
class VarStore {
 public:
  explicit VarStore(std::size_t count) : values_(count) {}

  bool bound(VarId v) const { return values_[v].has_value(); }
  u64 value(VarId v) const { return values_[v].value_or(0); }
  void bind(VarId v, u64 val) { values_[v] = val; }
  void reset() { std::fill(values_.begin(), values_.end(), std::nullopt); }
  std::size_t size() const { return values_.size(); }

 private:
  std::vector<std::optional<u64>> values_;
};

struct ClassifyResult {
  FilterId filter{kInvalidId};
  std::size_t tuples_compared{0};  ///< work done, for the cost model
};

/// Extracts `length` bytes big-endian at `offset`; nullopt when the frame
/// is too short.
std::optional<u64> extract_field(BytesView frame, u16 offset, u16 length);

class Classifier {
 public:
  explicit Classifier(const FilterTable& table);

  /// First-match classification with variable binding.
  /// Returns the matched filter (or kInvalidId) and the comparison count.
  ClassifyResult classify(BytesView frame, VarStore& vars) const;

  const FilterTable& table() const { return table_; }

  /// True if every tuple of `entry` matches; collects pending VAR bindings
  /// which the caller commits only on a full entry match.  Exposed for the
  /// indexed variant and for tests.
  bool entry_matches(const FilterEntry& entry, BytesView frame,
                     const VarStore& vars,
                     std::vector<std::pair<VarId, u64>>& bindings,
                     std::size_t& compared) const;

 private:
  FilterTable table_;
};

/// Ablation variant: buckets entries by their first tuple's
/// (offset, length, mask) and hashes the extracted value, falling back to a
/// short candidate list.  Semantics identical to Classifier for filter
/// tables whose entries all start with a discriminating first tuple.
class IndexedClassifier {
 public:
  explicit IndexedClassifier(const FilterTable& table);

  ClassifyResult classify(BytesView frame, VarStore& vars) const;

 private:
  struct Key {
    u16 offset;
    u16 length;
    u64 mask;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      u64 s = (static_cast<u64>(k.offset) << 48) ^
              (static_cast<u64>(k.length) << 40) ^ k.mask;
      return static_cast<std::size_t>(mix64(s));
    }
  };

  Classifier base_;
  // Group → (pattern value → filter ids in priority order).
  std::vector<std::pair<Key, std::unordered_map<u64, std::vector<FilterId>>>>
      groups_;
  std::vector<FilterId> unindexable_;  ///< var-first or empty entries
};

}  // namespace vwire::core
