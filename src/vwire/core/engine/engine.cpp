#include "vwire/core/engine/engine.hpp"

#include "vwire/util/logging.hpp"

namespace vwire::core {

EngineLayer::EngineLayer(sim::Simulator& sim, EngineParams params)
    : sim_(sim),
      params_(params),
      rng_(params.seed),
      provenance_(params.provenance_capacity) {}

void EngineLayer::bind_metrics(obs::MetricsRegistry& reg,
                               const std::string& prefix) {
  obs::expose_stats(reg, prefix, stats_);
  proc_hist_ = &reg.histogram(prefix + ".proc_ns");
}

EngineLayer::~EngineLayer() = default;

void EngineLayer::load(TableSet tables) {
  tables_ = std::move(tables);
  classifier_ = std::make_unique<Classifier>(tables_.filters);
  vars_ = std::make_unique<VarStore>(tables_.filters.var_names.size());
  counters_.assign(tables_.counters.entries.size(), {});
  term_state_.assign(tables_.terms.entries.size(), 0);
  cond_state_.assign(tables_.conditions.entries.size(), 0);

  self_ = node_ != nullptr ? tables_.nodes.find_mac(node_->mac()) : kInvalidId;

  counters_by_filter_.assign(tables_.filters.entries.size(), {});
  for (std::size_t c = 0; c < tables_.counters.entries.size(); ++c) {
    const CounterEntry& e = tables_.counters.entries[c];
    if (e.kind == CounterKind::kEvent && e.home == self_ &&
        e.filter != kInvalidId) {
      counters_by_filter_[e.filter].push_back(static_cast<CounterId>(c));
    }
  }

  action_cond_.assign(tables_.actions.entries.size(), kInvalidId);
  for (std::size_t a = 0; a < tables_.actions.entries.size(); ++a) {
    action_cond_[a] = tables_.owning_cond(static_cast<ActionId>(a));
  }
  local_fault_actions_.clear();
  for (std::size_t a = 0; a < tables_.actions.entries.size(); ++a) {
    const ActionEntry& e = tables_.actions.entries[a];
    if (is_packet_fault(e.kind) && e.exec_node == self_) {
      local_fault_actions_.push_back(static_cast<ActionId>(a));
    }
  }

  // What each condition depends on, for provenance snapshots: the terms in
  // its postfix, and every counter those terms compare.
  cond_counters_.assign(tables_.conditions.entries.size(), {});
  cond_terms_.assign(tables_.conditions.entries.size(), {});
  for (std::size_t c = 0; c < tables_.conditions.entries.size(); ++c) {
    auto add_unique = [](auto& vec, auto id) {
      for (auto v : vec)
        if (v == id) return;
      vec.push_back(id);
    };
    for (const CondInstr& in : tables_.conditions.entries[c].postfix) {
      if (in.op != BoolOp::kTerm) continue;
      add_unique(cond_terms_[c], in.term);
      const TermEntry& t = tables_.terms.entries[in.term];
      if (t.lhs.is_counter) add_unique(cond_counters_[c], t.lhs.counter);
      if (t.rhs.is_counter) add_unique(cond_counters_[c], t.rhs.counter);
    }
  }

  reorder_buf_.clear();
  reorder_dir_.clear();
  reseed_modifiers();
  // Fresh scenario, fresh provenance: the ring from a previous arm() must
  // not leak into this run's explain() output.
  provenance_.reset(params_.provenance_capacity);
  loaded_ = true;
  running_ = false;
}

void EngineLayer::set_modifier_seed(u64 seed) {
  modifier_seed_ = seed;
  if (loaded_) reseed_modifiers();
}

void EngineLayer::reseed_modifiers() {
  mod_count_.assign(tables_.actions.entries.size(), 0);
  mod_rng_.clear();
  mod_rng_.reserve(tables_.actions.entries.size());
  for (std::size_t a = 0; a < tables_.actions.entries.size(); ++a) {
    mod_rng_.push_back(Rng::derive(
        modifier_seed_, "fsl.mod",
        (static_cast<u64>(self_) << 32) | static_cast<u64>(a)));
  }
}

void EngineLayer::fill_record(obs::FiringRecord& r, CondId cond,
                              ActionId action, u16 depth) const {
  // The slot is reused across ring laps: overwrite every field read at
  // collection time (node_name is only ever set on collected copies).
  r.at = sim_.now();
  r.node = self_;
  r.rule = cond;
  r.action = action;
  const ActionEntry& e = tables_.actions.entries[action];
  r.kind = static_cast<u8>(e.kind);
  r.kind_name = to_string(e.kind);
  r.cascade_depth = depth;
  r.filter = obs::FiringRecord::kNone;
  r.packet_uid = 0;
  r.value = 0;
  r.value2 = 0;
  r.n_counters = 0;
  r.n_terms = 0;
  if (cond != kInvalidId) {
    for (CounterId c : cond_counters_[cond]) {
      if (r.n_counters >= obs::FiringRecord::kMaxCounters) break;
      r.counters[r.n_counters++] = {c, counters_[c].value};
    }
    for (TermId t : cond_terms_[cond]) {
      if (r.n_terms >= obs::FiringRecord::kMaxTerms) break;
      r.terms[r.n_terms++] = {t, term_state_[t] != 0};
    }
  }
}

void EngineLayer::start(NodeId controller_node) {
  if (!loaded_) return;
  controller_ = controller_node;
  running_ = true;
  // Initial sweep: conditions whose value is already true (notably TRUE
  // rules) fire their edge now, on every node that owns actions.
  for (std::size_t c = 0; c < tables_.conditions.entries.size(); ++c) {
    eval_condition(static_cast<CondId>(c), /*depth=*/0);
  }
  drain_fired();
}

void EngineLayer::reset() {
  std::fill(counters_.begin(), counters_.end(), CounterState{});
  std::fill(term_state_.begin(), term_state_.end(), 0);
  std::fill(cond_state_.begin(), cond_state_.end(), 0);
  if (vars_) vars_->reset();
  reorder_buf_.clear();
  reorder_dir_.clear();
  reseed_modifiers();
  provenance_.clear();
  running_ = false;
}

i64 EngineLayer::counter_value(CounterId id) const {
  return counters_[id].value;
}
bool EngineLayer::counter_enabled(CounterId id) const {
  return counters_[id].enabled;
}
bool EngineLayer::term_state(TermId id) const { return term_state_[id] != 0; }
bool EngineLayer::condition_state(CondId id) const {
  return cond_state_[id] != 0;
}

bool EngineLayer::is_transport_frame(const net::Packet& pkt) const {
  u16 et = pkt.ethertype();
  return et == static_cast<u16>(net::EtherType::kVwControl) ||
         et == static_cast<u16>(net::EtherType::kRll);
}

// ---------------------------------------------------------------------------
// Packet path

void EngineLayer::send_down(net::Packet pkt) {
  if (!running_ || self_ == kInvalidId || is_transport_frame(pkt)) {
    pass_down(std::move(pkt));
    return;
  }
  process(std::move(pkt), net::Direction::kSend);
}

void EngineLayer::receive_up(net::Packet pkt) {
  if (!running_ || self_ == kInvalidId || is_transport_frame(pkt)) {
    pass_up(std::move(pkt));
    return;
  }
  process(std::move(pkt), net::Direction::kRecv);
}

void EngineLayer::process(net::Packet pkt, net::Direction dir) {
  ++stats_.packets_seen;
  actions_this_packet_ = 0;

  ClassifyResult cls = classifier_->classify(pkt.view(), *vars_);

  NodeId src = kInvalidId, dst = kInvalidId;
  if (auto eth = pkt.ethernet()) {
    src = tables_.nodes.find_mac(eth->src);
    dst = tables_.nodes.find_mac(eth->dst);
  }

  if (cls.filter != kInvalidId) {
    ++stats_.packets_matched;
    // Event counters homed here that watch this packet type and flow.
    // Eligibility is SNAPSHOT before any update: a counter enabled by a
    // cascade this packet triggers must not count the packet itself (the
    // paper's Fig 5 script relies on this — the handshake ACK enables the
    // DATA counter without being counted as data).
    CounterId eligible[16];
    std::size_t n_eligible = 0;
    for (CounterId cid : counters_by_filter_[cls.filter]) {
      const CounterEntry& e = tables_.counters.entries[cid];
      if (!counters_[cid].enabled) continue;
      if (e.dir != dir) continue;
      if (e.src_node != src || e.dst_node != dst) continue;
      if (n_eligible < std::size(eligible)) eligible[n_eligible++] = cid;
    }
    for (std::size_t i = 0; i < n_eligible; ++i) {
      if (context_ != nullptr) context_->note_activity(sim_.now());
      set_counter(eligible[i], counters_[eligible[i]].value + 1, 0);
    }
    drain_fired();
  }

  Fate fate = apply_faults(pkt, dir, cls.filter, src, dst);

  Duration cost{};
  if (params_.charge_costs) {
    cost = params_.cost_base +
           Duration{static_cast<i64>(cls.tuples_compared) *
                    params_.cost_per_tuple.ns} +
           Duration{static_cast<i64>(actions_this_packet_) *
                    params_.cost_per_action.ns};
  }
  if (proc_hist_ != nullptr) proc_hist_->record(cost.ns);
  if (fate == Fate::kRelease) {
    release(std::move(pkt), dir, cost);
  }
  // kConsumed: nothing.  kDiverted: the fault owns re-injection.
}

void EngineLayer::release(net::Packet pkt, net::Direction dir, Duration cost) {
  if (cost.ns <= 0) {
    release_now(std::move(pkt), dir);
    return;
  }
  // Processing cost is latency only — packets of one direction never
  // overtake each other inside the engine.
  std::size_t d = static_cast<std::size_t>(dir);
  TimePoint at = std::max(sim_.now() + cost, last_release_[d]);
  last_release_[d] = at;
  auto shared = std::make_shared<net::Packet>(std::move(pkt));
  sim_.at(at, [this, shared, dir, gen = purge_gen_] {
    if (gen != purge_gen_) return;  // node crashed in the meantime
    release_now(std::move(*shared), dir);
  });
}

void EngineLayer::on_node_crash() {
  for (auto& [a, buf] : reorder_buf_) stats_.drops += buf.size();
  reorder_buf_.clear();
  reorder_dir_.clear();
  ++purge_gen_;
  last_release_[0] = last_release_[1] = {};
}

void EngineLayer::release_now(net::Packet&& pkt, net::Direction dir) {
  if (dir == net::Direction::kSend) {
    pass_down(std::move(pkt));
  } else {
    pass_up(std::move(pkt));
  }
}

// ---------------------------------------------------------------------------
// Fig 4(b) cascade

void EngineLayer::set_counter(CounterId id, i64 value, int depth) {
  if (depth > static_cast<int>(params_.max_cascade_depth)) {
    ++stats_.cascade_overflows;
    if (context_ != nullptr) {
      context_->on_error({sim_.now(), self_, kInvalidId});
    }
    VWIRE_ERROR() << "engine cascade depth exceeded (rule loop?)";
    return;
  }
  counters_[id].value = value;
  ++stats_.counter_updates;
  touch_counter(id, depth);
}

void EngineLayer::touch_counter(CounterId id, int depth) {
  const CounterEntry& e = tables_.counters.entries[id];
  // Mirror the new value to remote term-evaluating nodes (paper §5.2).
  for (NodeId n : e.notify_nodes) {
    send_control(n, control::make_counter_update(id, counters_[id].value));
  }
  // Re-evaluate local terms.
  for (TermId t : e.terms) {
    if (tables_.terms.entries[t].eval_node == self_) {
      eval_term(t, depth + 1);
    }
  }
}

void EngineLayer::eval_term(TermId id, int depth) {
  const TermEntry& e = tables_.terms.entries[id];
  auto value = [this](const Operand& o) {
    return o.is_counter ? counters_[o.counter].value : o.constant;
  };
  bool s = eval_rel(e.op, value(e.lhs), value(e.rhs));
  ++stats_.terms_evaluated;
  if (static_cast<bool>(term_state_[id]) == s) return;
  term_state_[id] = s ? 1 : 0;
  // Status change: tell remote condition evaluators (paper: "a term status
  // is conveyed only in case of a change in its status").
  for (NodeId n : e.notify_nodes) {
    send_control(n, control::make_term_status(id, s));
  }
  for (CondId c : e.conds) {
    const CondEntry& cond = tables_.conditions.entries[c];
    for (NodeId n : cond.eval_nodes) {
      if (n == self_) {
        eval_condition(c, depth + 1);
        break;
      }
    }
  }
}

void EngineLayer::eval_condition(CondId id, int depth) {
  const CondEntry& e = tables_.conditions.entries[id];
  // Only evaluate where one of the condition's actions lives.
  bool ours = false;
  for (NodeId n : e.eval_nodes) ours = ours || n == self_;
  if (!ours) return;

  ++stats_.conditions_evaluated;
  // Postfix evaluation over term states.
  bool stack[32];
  int sp = 0;
  for (const CondInstr& in : e.postfix) {
    switch (in.op) {
      case BoolOp::kTrue:
        stack[sp++] = true;
        break;
      case BoolOp::kTerm:
        stack[sp++] = term_state_[in.term] != 0;
        break;
      case BoolOp::kNot:
        stack[sp - 1] = !stack[sp - 1];
        break;
      case BoolOp::kAnd:
        --sp;
        stack[sp - 1] = stack[sp - 1] && stack[sp];
        break;
      case BoolOp::kOr:
        --sp;
        stack[sp - 1] = stack[sp - 1] || stack[sp];
        break;
    }
  }
  bool now = sp > 0 && stack[0];
  bool before = cond_state_[id] != 0;
  cond_state_[id] = now ? 1 : 0;
  if (now && !before) {
    // Rising edge: queue the rule (two-phase firing), remembering how deep
    // in the update cascade the edge rose.
    fired_.emplace_back(id, static_cast<u16>(depth));
    // A fresh edge re-arms any completed REORDER windows of this rule.
    for (ActionId a : e.actions) {
      if (tables_.actions.entries[a].kind == ActionKind::kReorder) {
        reorder_done_.erase(a);
      }
    }
  }
}

void EngineLayer::drain_fired() {
  if (draining_) return;  // the outermost drain owns the queue
  draining_ = true;
  std::size_t rounds = 0;
  while (!fired_.empty()) {
    if (++rounds > static_cast<std::size_t>(params_.max_cascade_depth) * 16) {
      ++stats_.cascade_overflows;
      if (context_ != nullptr) {
        context_->on_error({sim_.now(), self_, kInvalidId});
      }
      VWIRE_ERROR() << "engine rule-firing loop exceeded bound";
      fired_.clear();
      break;
    }
    auto [c, d] = fired_.front();
    fired_.pop_front();
    fire_actions(c, d);
  }
  draining_ = false;
}

void EngineLayer::fire_actions(CondId id, u16 fire_depth) {
  for (ActionId a : tables_.conditions.entries[id].actions) {
    const ActionEntry& e = tables_.actions.entries[a];
    if (e.exec_node != self_) continue;  // that node fires it itself
    if (is_packet_fault(e.kind)) continue;  // level-triggered on packets
    exec_immediate(a, id, fire_depth);
  }
}

void EngineLayer::exec_immediate(ActionId id, CondId cond, u16 fire_depth) {
  const int depth = 0;
  const ActionEntry& e = tables_.actions.entries[id];
  ++stats_.actions_executed;
  ++actions_this_packet_;
  if (provenance_.enabled()) {
    // Snapshot before executing: the record shows the state that made the
    // rule fire, not the state the action leaves behind.
    obs::FiringRecord& r = provenance_.claim();
    fill_record(r, cond, id, fire_depth);
    r.value = e.value;
  }
  switch (e.kind) {
    case ActionKind::kAssignCntr:
      counters_[e.counter].enabled = true;
      set_counter(e.counter, e.value, depth + 1);
      return;
    case ActionKind::kEnableCntr:
      counters_[e.counter].enabled = true;
      return;
    case ActionKind::kDisableCntr:
      counters_[e.counter].enabled = false;
      return;
    case ActionKind::kIncrCntr:
      set_counter(e.counter, counters_[e.counter].value + e.value, depth + 1);
      return;
    case ActionKind::kDecrCntr:
      set_counter(e.counter, counters_[e.counter].value - e.value, depth + 1);
      return;
    case ActionKind::kResetCntr:
      set_counter(e.counter, 0, depth + 1);
      return;
    case ActionKind::kSetCurtime:
      set_counter(e.counter, sim_.now().ns / 1'000'000, depth + 1);  // ms
      return;
    case ActionKind::kElapsedTime:
      set_counter(e.counter,
                  sim_.now().ns / 1'000'000 - counters_[e.counter].value,
                  depth + 1);
      return;
    case ActionKind::kFail:
      VWIRE_INFO() << "FAIL(" << tables_.nodes.entries[e.fail_node].name
                   << ") at " << sim_.now().seconds() << "s";
      if (node_ != nullptr) node_->fail();
      return;
    case ActionKind::kStop:
      if (context_ != nullptr) context_->on_stop(self_, sim_.now());
      if (controller_ != kInvalidId) {
        send_control(controller_, control::make_stopped(self_));
      }
      return;
    case ActionKind::kFlagError:
      VWIRE_WARN() << "FLAG_ERROR on node "
                   << (self_ < tables_.nodes.entries.size()
                           ? tables_.nodes.entries[self_].name
                           : "?")
                   << " (condition " << cond << ") at "
                   << sim_.now().seconds() << "s";
      if (context_ != nullptr) context_->on_error({sim_.now(), self_, cond});
      if (controller_ != kInvalidId) {
        send_control(controller_, control::make_error(self_, sim_.now(), cond));
      }
      return;
    default:
      return;  // packet faults handled on the packet path
  }
}

// ---------------------------------------------------------------------------
// Control plane

void EngineLayer::send_control(NodeId to, control::ControlMessage msg) {
  if (control_ == nullptr || to >= tables_.nodes.entries.size()) return;
  msg.epoch = epoch_;
  if (to == self_) {
    // Local shortcut: the paper's engine also consumes its own updates
    // without a wire hop (and without spending a sequence number — the
    // message never crosses the agent's fencing path).
    ++stats_.control_tx;
    handle_control(node_->mac(), control::encode(msg));
    return;
  }
  msg.seq = control_->next_seq();
  ++stats_.control_tx;
  control_->send_to(tables_.nodes.entries[to].mac, control::encode(msg));
}

void EngineLayer::handle_control(const net::MacAddress& /*from*/,
                                 BytesView payload) {
  auto msg = control::decode(payload);
  if (!msg) return;
  ++stats_.control_rx;
  switch (msg->type) {
    case control::MsgType::kCounterUpdate: {
      const auto& m = std::get<control::CounterUpdateMsg>(msg->body);
      if (m.counter >= counters_.size()) return;
      counters_[m.counter].value = m.value;
      if (context_ != nullptr) context_->note_activity(sim_.now());
      // Mirrored counters only drive local term evaluation; they are not
      // re-broadcast (their home does that).
      for (TermId t : tables_.counters.entries[m.counter].terms) {
        if (tables_.terms.entries[t].eval_node == self_) eval_term(t, 0);
      }
      drain_fired();
      return;
    }
    case control::MsgType::kTermStatus: {
      const auto& m = std::get<control::TermStatusMsg>(msg->body);
      if (m.term >= term_state_.size()) return;
      if (static_cast<bool>(term_state_[m.term]) == m.state) return;
      term_state_[m.term] = m.state ? 1 : 0;
      if (context_ != nullptr) context_->note_activity(sim_.now());
      for (CondId c : tables_.terms.entries[m.term].conds) {
        eval_condition(c, 0);
      }
      drain_fired();
      return;
    }
    default:
      return;  // kInit/kStart are routed by the runner, not here
  }
}

}  // namespace vwire::core
