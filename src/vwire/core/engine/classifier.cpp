#include "vwire/core/engine/classifier.hpp"

#include <algorithm>

namespace vwire::core {

std::optional<u64> extract_field(BytesView frame, u16 offset, u16 length) {
  if (frame.size() < static_cast<std::size_t>(offset) + length) {
    return std::nullopt;
  }
  u64 v = 0;
  for (u16 i = 0; i < length; ++i) {
    v = (v << 8) | frame[offset + i];
  }
  return v;
}

Classifier::Classifier(const FilterTable& table) : table_(table) {}

bool Classifier::entry_matches(const FilterEntry& entry, BytesView frame,
                               const VarStore& vars,
                               std::vector<std::pair<VarId, u64>>& bindings,
                               std::size_t& compared) const {
  for (const FilterTuple& t : entry.tuples) {
    ++compared;
    auto field = extract_field(frame, t.offset, t.length);
    if (!field) return false;
    u64 v = *field & t.mask;
    if (t.is_var()) {
      if (vars.bound(t.var)) {
        if (v != (vars.value(t.var) & t.mask)) return false;
      } else {
        // Check this packet hasn't already tentatively bound it to a
        // different value within the same entry.
        bool conflict = false;
        for (const auto& [var, val] : bindings) {
          if (var == t.var && val != v) conflict = true;
        }
        if (conflict) return false;
        bindings.emplace_back(t.var, v);
      }
    } else {
      if (v != (t.pattern & t.mask)) return false;
    }
  }
  return true;
}

ClassifyResult Classifier::classify(BytesView frame, VarStore& vars) const {
  ClassifyResult r;
  std::vector<std::pair<VarId, u64>> bindings;
  for (std::size_t i = 0; i < table_.entries.size(); ++i) {
    bindings.clear();
    if (entry_matches(table_.entries[i], frame, vars, bindings,
                      r.tuples_compared)) {
      for (const auto& [var, val] : bindings) vars.bind(var, val);
      r.filter = static_cast<FilterId>(i);
      return r;
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// IndexedClassifier

IndexedClassifier::IndexedClassifier(const FilterTable& table)
    : base_(table) {
  for (std::size_t i = 0; i < table.entries.size(); ++i) {
    const FilterEntry& e = table.entries[i];
    if (e.tuples.empty() || e.tuples.front().is_var()) {
      unindexable_.push_back(static_cast<FilterId>(i));
      continue;
    }
    const FilterTuple& t0 = e.tuples.front();
    Key key{t0.offset, t0.length, t0.mask};
    auto it = std::find_if(groups_.begin(), groups_.end(),
                           [&](const auto& g) { return g.first == key; });
    if (it == groups_.end()) {
      groups_.push_back({key, {}});
      it = groups_.end() - 1;
    }
    it->second[t0.pattern & t0.mask].push_back(static_cast<FilterId>(i));
  }
}

ClassifyResult IndexedClassifier::classify(BytesView frame,
                                           VarStore& vars) const {
  ClassifyResult r;
  std::vector<FilterId> candidates(unindexable_);
  for (const auto& [key, map] : groups_) {
    ++r.tuples_compared;  // one field extraction per group
    auto field = extract_field(frame, key.offset, key.length);
    if (!field) continue;
    auto it = map.find(*field & key.mask);
    if (it == map.end()) continue;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  }
  std::sort(candidates.begin(), candidates.end());  // priority order
  std::vector<std::pair<VarId, u64>> bindings;
  for (FilterId id : candidates) {
    bindings.clear();
    if (base_.entry_matches(base_.table().entries[id], frame, vars, bindings,
                            r.tuples_compared)) {
      for (const auto& [var, val] : bindings) vars.bind(var, val);
      r.filter = id;
      return r;
    }
  }
  return r;
}

}  // namespace vwire::core
