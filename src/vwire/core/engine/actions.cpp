// Packet-fault application — the injection half of the FIE (Table II).
//
// Fault actions are level-triggered: while the owning condition holds, every
// packet matching the action's (packet type, source, destination, direction)
// is subjected to the fault.  This matches the paper's Fig 5 usage, where
// `((SYNACK > 0) && (SYNACK < 2)) >> DROP ...` drops exactly the first
// SYNACK: the counter moving to 2 turns the condition off again.
#include "vwire/core/engine/engine.hpp"
#include "vwire/host/node.hpp"
#include "vwire/util/logging.hpp"

namespace vwire::core {

EngineLayer::Fate EngineLayer::apply_faults(net::Packet& pkt,
                                            net::Direction dir,
                                            FilterId filter, NodeId src,
                                            NodeId dst) {
  if (filter == kInvalidId) return Fate::kRelease;
  for (ActionId a : local_fault_actions_) {
    const ActionEntry& e = tables_.actions.entries[a];
    if (e.dir != dir || e.filter != filter) continue;
    if (e.src_node != src || e.dst_node != dst) continue;
    CondId cond = action_cond_[a];
    bool active = cond != kInvalidId && cond_state_[cond] != 0;
    if (e.kind == ActionKind::kReorder && !active) {
      // A reorder window that started collecting completes even if its
      // trigger condition has meanwhile gone false (e.g. an equality on
      // the very counter the captured packets increment).
      auto it = reorder_buf_.find(a);
      active = it != reorder_buf_.end() && !it->second.empty();
    }
    if (!active) continue;
    // RATE/PROB modifiers thin the fault stream.  The common unmodified
    // case short-circuits here (one compare, no counter, no draw) so the
    // steady-state packet path stays within its overhead budget.  A
    // suppressed match falls through to later actions in script order.
    if ((e.rate_n > 1 || e.prob < 1.0) && !modifier_admits(e, a)) {
      if (obs::FlightRecorder* f =
              node_ != nullptr ? node_->flight_recorder() : nullptr) {
        // The near-miss is causal evidence too: this packet matched the
        // rule but the RATE/PROB lottery let it live.
        f->record(sim_.now().ns, pkt.span(), pkt.parent_span(),
                  obs::SpanEventKind::kFaultSkipped, static_cast<u16>(cond),
                  static_cast<u8>(e.kind));
      }
      continue;
    }
    Fate fate = apply_one(e, a, pkt, dir);
    if (fate != Fate::kRelease) return fate;
    // MODIFY/DUP release the packet but stop further fault matching: one
    // fault per packet, in script order.
    return Fate::kRelease;
  }
  return Fate::kRelease;
}

bool EngineLayer::modifier_admits(const ActionEntry& e, ActionId id) {
  if (e.rate_n > 1) {
    // RATE(N) fires on exactly every Nth matching packet (the Nth, 2Nth,
    // ...), so a soak's fault count is deterministic, not statistical.
    if (++mod_count_[id] % e.rate_n != 0) return false;
  }
  if (e.prob < 1.0 && !mod_rng_[id].chance(e.prob)) return false;
  return true;
}

EngineLayer::Fate EngineLayer::apply_one(const ActionEntry& e, ActionId id,
                                         net::Packet& pkt,
                                         net::Direction dir) {
  ++stats_.actions_executed;
  ++actions_this_packet_;
  // Provenance: snapshot (counter/term state, matched filter, packet)
  // before the fault disposes of the packet; the cases below fill the
  // outcome fields (notably DELAY's applied-vs-requested quantization).
  // Records are filled in place in the claimed ring slot — this path runs
  // up to 25 times per matched packet in the Fig 7/8 configuration.
  const bool prov = provenance_.enabled();
  const u64 uid = pkt.uid();  // kReorder moves pkt before recording
  if (obs::FlightRecorder* f =
          node_ != nullptr ? node_->flight_recorder() : nullptr) {
    // Span annotation: which rule (condition id) fired which fault kind on
    // this frame.  Recorded before the cases below move/consume the packet.
    f->record(sim_.now().ns, pkt.span(), pkt.parent_span(),
              obs::SpanEventKind::kFault,
              static_cast<u16>(action_cond_[id]), static_cast<u8>(e.kind),
              e.kind == ActionKind::kDelay ? e.delay.ns : 0);
  }
  auto record = [&]() -> obs::FiringRecord& {
    obs::FiringRecord& r = provenance_.claim();
    fill_record(r, action_cond_[id], id, /*depth=*/0);
    r.filter = e.filter;
    r.packet_uid = uid;
    return r;
  };
  switch (e.kind) {
    case ActionKind::kDrop:
      ++stats_.drops;
      if (prov) record();
      VWIRE_DEBUG() << "DROP uid=" << pkt.uid() << " at "
                    << sim_.now().seconds() << "s";
      return Fate::kConsumed;

    case ActionKind::kDelay: {
      ++stats_.delays;
      // Jiffy quantization, as in the paper's Linux 2.4 implementation.
      Duration d = sim::quantize_up(e.delay, params_.delay_quantum);
      if (prov) {
        obs::FiringRecord& r = record();
        r.value = d.ns;         // applied (quantized)
        r.value2 = e.delay.ns;  // requested by the script
      }
      auto shared = std::make_shared<net::Packet>(std::move(pkt));
      sim_.after(d, [this, shared, dir] {
        release_now(std::move(*shared), dir);
      });
      return Fate::kDiverted;
    }

    case ActionKind::kDup: {
      ++stats_.dups;
      if (prov) record();
      // The twin follows the original immediately (fresh uid).
      net::Packet twin = pkt.clone();
      auto shared = std::make_shared<net::Packet>(std::move(twin));
      sim_.after({0}, [this, shared, dir] {
        release_now(std::move(*shared), dir);
      });
      return Fate::kRelease;
    }

    case ActionKind::kModify: {
      ++stats_.modifies;
      if (prov) {
        record().value = static_cast<i64>(e.modify_bytes.size());  // 0=random
      }
      Bytes& b = pkt.mutable_bytes();
      if (!e.modify_bytes.empty()) {
        // Explicit rewrite; the checksum is deliberately left to the script
        // author ("The checksum in such a case must be set correctly by the
        // user", paper §5.2).
        for (const ModifyByte& m : e.modify_bytes) {
          if (m.offset < b.size()) {
            b[m.offset] =
                static_cast<u8>((b[m.offset] & ~m.mask) | (m.value & m.mask));
          }
        }
      } else if (b.size() > net::EthernetHeader::kSize) {
        // Default: random perturbation of 1..4 payload bytes.
        int flips = static_cast<int>(rng_.range(1, 4));
        for (int i = 0; i < flips; ++i) {
          std::size_t off = net::EthernetHeader::kSize +
                            rng_.below(b.size() - net::EthernetHeader::kSize);
          u8 x = static_cast<u8>(rng_.range(1, 255));
          b[off] ^= x;
        }
      }
      return Fate::kRelease;
    }

    case ActionKind::kReorder: {
      if (reorder_done_[id]) return Fate::kRelease;  // window already served
      auto& buf = reorder_buf_[id];
      reorder_dir_[id] = dir;
      buf.push_back(std::move(pkt));
      ++stats_.reorders_held;
      if (prov) {
        obs::FiringRecord& r = record();
        r.value = static_cast<i64>(buf.size());  // window fill after this
        r.value2 = static_cast<i64>(e.reorder_count);
      }
      if (buf.size() < e.reorder_count) return Fate::kDiverted;
      // Window full: release in the scripted permutation "in burst when
      // the bottom half is scheduled next" — here, one event later.
      std::vector<net::Packet> window = std::move(buf);
      reorder_buf_.erase(id);
      reorder_done_[id] = true;
      auto shared =
          std::make_shared<std::vector<net::Packet>>(std::move(window));
      std::vector<u16> order = e.reorder_order;
      sim_.after({0}, [this, shared, order, dir] {
        for (u16 idx : order) {
          ++stats_.reorders_released;
          release_now(std::move((*shared)[idx - 1]), dir);
        }
      });
      return Fate::kDiverted;
    }

    default:
      return Fate::kRelease;
  }
}

}  // namespace vwire::core
