#include "vwire/core/fsl/parser.hpp"

#include <unordered_set>

namespace vwire::fsl {

namespace {

const std::unordered_set<std::string>& action_names() {
  static const std::unordered_set<std::string> names = {
      "DROP",        "DELAY",      "REORDER",      "DUP",
      "MODIFY",      "FAIL",       "STOP",         "FLAG_ERROR",
      "FLAG_ERR",    "ASSIGN_CNTR", "ENABLE_CNTR", "DISABLE_CNTR",
      "INCR_CNTR",   "DECR_CNTR",  "RESET_CNTR",   "SET_CURTIME",
      "ELAPSED_TIME"};
  return names;
}

/// Internal unwinding signal for accumulating mode: a syntax error has
/// been recorded and the parser should synchronize at the nearest recovery
/// point.  Never escapes parse_script.
struct Resync {};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks,
                  std::vector<Diagnostic>* diags = nullptr)
      : toks_(std::move(toks)), diags_(diags) {}

  AstScript run() {
    AstScript script;
    for (;;) {
      const Token& t = peek();
      if (t.kind == TokKind::kEof) return script;
      if (diags_ != nullptr && diags_->size() >= kMaxDiags) return script;
      try {
        if (t.kind != TokKind::kIdent) {
          fail(t, "expected a top-level section (VAR, FILTER_TABLE, "
                  "NODE_TABLE or SCENARIO)");
        }
        if (t.text == "VAR") {
          parse_vars(script);
        } else if (t.text == "FILTER_TABLE") {
          parse_filters(script);
        } else if (t.text == "NODE_TABLE") {
          parse_nodes(script);
        } else if (t.text == "SCENARIO") {
          parse_scenario(script);
        } else {
          fail(t, "unknown section '" + t.text + "'");
        }
      } catch (const Resync&) {
        sync_to_section();
      }
    }
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }

  const Token& advance() { return toks_[std::min(pos_++, toks_.size() - 1)]; }

  /// Throw-on-first mode raises ParseError; accumulating mode records the
  /// diagnostic and throws Resync so the nearest recovery loop can
  /// synchronize and continue.
  [[noreturn]] void fail(const Token& t, const std::string& msg) const {
    if (diags_ == nullptr) throw ParseError(t.loc, msg);
    if (diags_->size() < kMaxDiags) {
      diags_->push_back({t.loc, msg, Severity::kError, "syntax"});
    }
    throw Resync{};
  }

  bool at_section_start() const {
    return peek().kind == TokKind::kIdent &&
           (peek().text == "VAR" || peek().text == "FILTER_TABLE" ||
            peek().text == "NODE_TABLE" || peek().text == "SCENARIO");
  }

  /// Panic-mode recovery: skip to the next statement boundary — a ';'
  /// (consumed), or just before END / a section keyword / EOF.
  void sync_to_semi() {
    for (;;) {
      const Token& t = peek();
      if (t.kind == TokKind::kEof) return;
      if (t.kind == TokKind::kSemi) {
        advance();
        return;
      }
      if (at_keyword("END") || at_section_start()) return;
      advance();
    }
  }

  /// Coarser recovery for section-level damage: skip past the enclosing
  /// END (consumed) or stop at the next section keyword / EOF.
  void sync_to_section() {
    for (;;) {
      const Token& t = peek();
      if (t.kind == TokKind::kEof) return;
      if (at_keyword("END")) {
        advance();
        return;
      }
      if (at_section_start()) return;
      advance();
    }
  }

  const Token& expect(TokKind k, const char* what) {
    const Token& t = peek();
    if (t.kind != k) {
      fail(t, std::string("expected ") + what + ", found " +
                  to_string(t.kind) +
                  (t.text.empty() ? "" : " '" + t.text + "'"));
    }
    return advance();
  }

  bool accept(TokKind k) {
    if (peek().kind != k) return false;
    ++pos_;
    return true;
  }

  std::string expect_ident(const char* what) {
    return expect(TokKind::kIdent, what).text;
  }

  bool at_keyword(const char* kw) const {
    return peek().kind == TokKind::kIdent && peek().text == kw;
  }

  void expect_keyword(const char* kw) {
    if (!at_keyword(kw)) {
      fail(peek(), std::string("expected '") + kw + "'");
    }
    ++pos_;
  }

  // --- sections ----------------------------------------------------------

  void parse_vars(AstScript& script) {
    expect_keyword("VAR");
    script.vars.push_back(expect_ident("variable name"));
    while (accept(TokKind::kComma)) {
      script.vars.push_back(expect_ident("variable name"));
    }
    expect(TokKind::kSemi, "';' after VAR declaration");
  }

  /// Recovery inside FILTER_TABLE / NODE_TABLE: skip to the next entry
  /// (an identifier at the start of a line-shaped clause), END, a section
  /// keyword, or EOF — always making progress.
  void sync_table_entry() {
    if (peek().kind != TokKind::kEof && !at_keyword("END") &&
        !at_section_start()) {
      advance();
    }
    for (;;) {
      const Token& t = peek();
      if (t.kind == TokKind::kEof || at_keyword("END") || at_section_start()) {
        return;
      }
      if (t.kind == TokKind::kIdent &&
          (peek(1).kind == TokKind::kColon || peek(1).kind == TokKind::kMac)) {
        return;  // start of the next filter / node entry
      }
      advance();
    }
  }

  void parse_filters(AstScript& script) {
    expect_keyword("FILTER_TABLE");
    while (!at_keyword("END")) {
      if (peek().kind == TokKind::kEof || at_section_start()) {
        fail(peek(), "FILTER_TABLE is missing its END");
      }
      try {
        AstFilter f;
        f.loc = peek().loc;
        f.name = expect_ident("packet type name");
        expect(TokKind::kColon, "':' after packet type name");
        f.tuples.push_back(parse_filter_tuple());
        while (accept(TokKind::kComma)) {
          f.tuples.push_back(parse_filter_tuple());
        }
        script.filters.push_back(std::move(f));
      } catch (const Resync&) {
        sync_table_entry();
      }
    }
    expect_keyword("END");
  }

  AstFilterTuple parse_filter_tuple() {
    AstFilterTuple t;
    t.loc = peek().loc;
    expect(TokKind::kLParen, "'(' opening a filter tuple");
    t.offset = static_cast<u16>(expect(TokKind::kInt, "byte offset").value);
    t.length = static_cast<u16>(expect(TokKind::kInt, "byte count").value);
    // Remaining elements before ')': one of
    //   pattern | mask pattern | VAR-name
    std::vector<Token> rest;
    while (peek().kind != TokKind::kRParen) {
      const Token& tok = peek();
      if (tok.kind != TokKind::kInt && tok.kind != TokKind::kIdent) {
        fail(tok, "expected a pattern, mask or VAR name in filter tuple");
      }
      rest.push_back(advance());
    }
    expect(TokKind::kRParen, "')'");
    if (rest.size() == 1 && rest[0].kind == TokKind::kIdent) {
      t.var = rest[0].text;
    } else if (rest.size() == 1 && rest[0].kind == TokKind::kInt) {
      t.pattern = rest[0].value;
    } else if (rest.size() == 2 && rest[0].kind == TokKind::kInt &&
               rest[1].kind == TokKind::kInt) {
      t.mask = rest[0].value;
      t.pattern = rest[1].value;
    } else {
      fail(rest.empty() ? peek() : rest[0],
           "filter tuple must be (offset len pattern), "
           "(offset len mask pattern) or (offset len VAR)");
    }
    return t;
  }

  void parse_nodes(AstScript& script) {
    expect_keyword("NODE_TABLE");
    while (!at_keyword("END")) {
      if (peek().kind == TokKind::kEof || at_section_start()) {
        fail(peek(), "NODE_TABLE is missing its END");
      }
      try {
        AstNodeDef n;
        n.loc = peek().loc;
        n.name = expect_ident("node name");
        n.mac = expect(TokKind::kMac, "MAC address").text;
        n.ip = expect(TokKind::kIp, "IP address").text;
        script.nodes.push_back(std::move(n));
      } catch (const Resync&) {
        sync_table_entry();
      }
    }
    expect_keyword("END");
  }

  void parse_scenario(AstScript& script) {
    AstScenario sc;
    sc.loc = peek().loc;
    expect_keyword("SCENARIO");
    sc.name = expect_ident("scenario name");
    if (peek().kind == TokKind::kDuration) {
      sc.timeout = advance().duration;
    }
    for (;;) {
      if (at_keyword("END")) {
        advance();
        break;
      }
      if (peek().kind == TokKind::kEof || at_section_start()) {
        // Keep the partial scenario: its clean counters/rules still give
        // the lint passes something to check.
        try {
          fail(peek(), "SCENARIO '" + sc.name + "' is missing its END");
        } catch (const Resync&) {
          break;
        }
      }
      try {
        if (peek().kind == TokKind::kIdent &&
            peek(1).kind == TokKind::kColon) {
          sc.counters.push_back(parse_counter_decl());
        } else if (peek().kind == TokKind::kLParen) {
          sc.rules.push_back(parse_rule());
        } else {
          fail(peek(), "expected a counter declaration, a rule, or END");
        }
      } catch (const Resync&) {
        sync_to_semi();
      }
    }
    script.scenarios.push_back(std::move(sc));
  }

  AstCounterDecl parse_counter_decl() {
    AstCounterDecl d;
    d.loc = peek().loc;
    d.name = expect_ident("counter name");
    expect(TokKind::kColon, "':'");
    expect(TokKind::kLParen, "'('");
    std::string first = expect_ident("packet type or node name");
    if (accept(TokKind::kComma)) {
      d.is_local = false;
      d.pkt_type = std::move(first);
      d.src_node = expect_ident("source node");
      expect(TokKind::kComma, "','");
      d.dst_node = expect_ident("destination node");
      expect(TokKind::kComma, "','");
      std::string dir = expect_ident("SEND or RECV");
      if (dir == "SEND") {
        d.dir = net::Direction::kSend;
      } else if (dir == "RECV") {
        d.dir = net::Direction::kRecv;
      } else {
        fail(peek(), "direction must be SEND or RECV");
      }
    } else {
      d.is_local = true;
      d.node = std::move(first);
    }
    expect(TokKind::kRParen, "')'");
    return d;
  }

  // --- conditions ----------------------------------------------------------

  AstRule parse_rule() {
    AstRule r;
    r.loc = peek().loc;
    expect(TokKind::kLParen, "'(' opening a rule condition");
    r.cond = parse_or();
    expect(TokKind::kRParen, "')' closing the rule condition");
    expect(TokKind::kArrow, "'>>'");
    r.actions.push_back(parse_action());
    // Actions are ';'-separated; the list ends before the next rule,
    // counter declaration, or END.
    while (true) {
      if (peek().kind == TokKind::kSemi) advance();
      if (peek().kind == TokKind::kIdent &&
          action_names().count(peek().text) > 0) {
        r.actions.push_back(parse_action());
        continue;
      }
      break;
    }
    return r;
  }

  AstCond parse_or() {
    AstCond lhs = parse_and();
    while (peek().kind == TokKind::kOrOr) {
      SourceLoc loc = advance().loc;
      AstCond node;
      node.kind = AstCond::Kind::kOr;
      node.loc = loc;
      node.a = std::make_unique<AstCond>(std::move(lhs));
      node.b = std::make_unique<AstCond>(parse_and());
      lhs = std::move(node);
    }
    return lhs;
  }

  AstCond parse_and() {
    AstCond lhs = parse_unary();
    while (peek().kind == TokKind::kAndAnd) {
      SourceLoc loc = advance().loc;
      AstCond node;
      node.kind = AstCond::Kind::kAnd;
      node.loc = loc;
      node.a = std::make_unique<AstCond>(std::move(lhs));
      node.b = std::make_unique<AstCond>(parse_unary());
      lhs = std::move(node);
    }
    return lhs;
  }

  AstCond parse_unary() {
    if (peek().kind == TokKind::kNot) {
      SourceLoc loc = advance().loc;
      AstCond node;
      node.kind = AstCond::Kind::kNot;
      node.loc = loc;
      node.a = std::make_unique<AstCond>(parse_unary());
      return node;
    }
    return parse_primary();
  }

  AstCond parse_primary() {
    const Token& t = peek();
    if (t.kind == TokKind::kLParen) {
      advance();
      AstCond inner = parse_or();
      expect(TokKind::kRParen, "')'");
      return inner;
    }
    if (t.kind == TokKind::kIdent && t.text == "TRUE") {
      advance();
      AstCond node;
      node.kind = AstCond::Kind::kTrue;
      node.loc = t.loc;
      return node;
    }
    // A bare term: operand relop operand.
    AstCond node;
    node.kind = AstCond::Kind::kTerm;
    node.loc = t.loc;
    node.term.lhs = parse_operand();
    node.term.op = parse_relop();
    node.term.rhs = parse_operand();
    return node;
  }

  AstOperand parse_operand() {
    const Token& t = peek();
    AstOperand o;
    o.loc = t.loc;
    if (t.kind == TokKind::kInt) {
      o.is_int = true;
      o.value = static_cast<i64>(advance().value);
      return o;
    }
    if (t.kind == TokKind::kIdent) {
      o.name = advance().text;
      return o;
    }
    fail(t, "expected a counter name or integer");
  }

  core::RelOp parse_relop() {
    switch (peek().kind) {
      case TokKind::kGt: advance(); return core::RelOp::kGt;
      case TokKind::kLt: advance(); return core::RelOp::kLt;
      case TokKind::kGe: advance(); return core::RelOp::kGe;
      case TokKind::kLe: advance(); return core::RelOp::kLe;
      case TokKind::kEq: advance(); return core::RelOp::kEq;
      case TokKind::kNe: advance(); return core::RelOp::kNe;
      default:
        fail(peek(), "expected a relational operator (> < >= <= = !=)");
    }
  }

  // --- actions -------------------------------------------------------------

  /// RATE(n) / PROB(p) keyword at the current position?
  bool at_modifier() const {
    return peek().kind == TokKind::kIdent &&
           (peek().text == "RATE" || peek().text == "PROB") &&
           peek(1).kind == TokKind::kLParen;
  }

  AstAction parse_action() {
    AstAction a;
    a.loc = peek().loc;
    a.name = expect_ident("action name");
    if (action_names().count(a.name) == 0) {
      fail(toks_[pos_ - 1], "unknown action '" + a.name + "'");
    }
    if (accept(TokKind::kLParen)) {
      // Call form: NAME(arg, arg, ...).
      if (!accept(TokKind::kRParen)) {
        a.args.push_back(parse_arg());
        while (accept(TokKind::kComma)) a.args.push_back(parse_arg());
        expect(TokKind::kRParen, "')' closing the action arguments");
      }
    } else if (!at_modifier() && peek().kind != TokKind::kSemi &&
               peek().kind != TokKind::kEof) {
      // Bare form used in the paper: "DROP TCP_synack, node2, node1, RECV;"
      a.args.push_back(parse_arg());
      while (accept(TokKind::kComma)) a.args.push_back(parse_arg());
    }
    parse_modifier(a);
    return a;
  }

  /// Optional trailing fault modifier: "... RATE(3)" or "... PROB(0.25)".
  /// Syntax only — range and applicability checks live in the compiler
  /// ("modifier-range" / "modifier-conflict") and linter ("modifier-no-op").
  void parse_modifier(AstAction& a) {
    if (!at_modifier()) return;
    const Token& kw = advance();
    a.mod_loc = kw.loc;
    expect(TokKind::kLParen, "'(' after the modifier keyword");
    if (kw.text == "RATE") {
      a.mod = AstAction::ModKind::kRate;
      a.mod_rate =
          static_cast<u32>(expect(TokKind::kInt, "integer rate").value);
    } else {
      a.mod = AstAction::ModKind::kProb;
      const Token& t = peek();
      if (t.kind == TokKind::kFloat) {
        a.mod_prob = advance().real;
      } else if (t.kind == TokKind::kInt) {
        // PROB(1) is legal (always fire); PROB(0)/PROB(2) are range
        // errors the compiler reports with this location.
        a.mod_prob = static_cast<double>(advance().value);
      } else {
        fail(t, "expected a probability such as 0.25");
      }
    }
    expect(TokKind::kRParen, "')' closing the modifier");
    if (at_modifier()) {
      fail(peek(), "at most one RATE/PROB modifier per action");
    }
  }

  AstArg parse_arg() {
    const Token& t = peek();
    AstArg arg;
    arg.loc = t.loc;
    switch (t.kind) {
      case TokKind::kIdent:
        arg.kind = AstArg::Kind::kIdent;
        arg.ident = advance().text;
        return arg;
      case TokKind::kInt:
        arg.kind = AstArg::Kind::kInt;
        arg.value = static_cast<i64>(advance().value);
        return arg;
      case TokKind::kDuration:
        arg.kind = AstArg::Kind::kDuration;
        arg.duration = advance().duration;
        return arg;
      case TokKind::kLParen: {
        // Byte tuple, e.g. (47 1 0x04) in a MODIFY pattern.
        advance();
        arg.kind = AstArg::Kind::kTuple;
        while (peek().kind != TokKind::kRParen) {
          arg.tuple.push_back(expect(TokKind::kInt, "integer in tuple").value);
        }
        expect(TokKind::kRParen, "')'");
        return arg;
      }
      default:
        fail(t, "expected an action argument");
    }
  }

  std::vector<Token> toks_;
  std::vector<Diagnostic>* diags_;
  std::size_t pos_{0};

  static constexpr std::size_t kMaxDiags = 25;
};

}  // namespace

AstScript parse_script(std::string_view source) {
  return Parser(tokenize(source)).run();
}

AstScript parse_script(std::string_view source,
                       std::vector<Diagnostic>& diags) {
  std::vector<Token> toks = tokenize(source, diags);
  return Parser(std::move(toks), &diags).run();
}

}  // namespace vwire::fsl
