#include "vwire/core/fsl/diagnostics.hpp"

namespace vwire::fsl {

std::string format_diagnostic(const Diagnostic& d) {
  return std::to_string(d.loc.line) + ":" + std::to_string(d.loc.col) + ": " +
         d.message;
}

ParseError::ParseError(SourceLoc loc, std::string message)
    : std::runtime_error(format_diagnostic({loc, message})),
      diag_{loc, std::move(message)} {}

}  // namespace vwire::fsl
