#include "vwire/core/fsl/diagnostics.hpp"

#include <algorithm>
#include <cctype>

#include "vwire/obs/json.hpp"

namespace vwire::fsl {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string format_diagnostic(const Diagnostic& d) {
  return std::to_string(d.loc.line) + ":" + std::to_string(d.loc.col) + ": " +
         to_string(d.severity) + ": [" + d.rule + "] " + d.message;
}

bool has_errors(const std::vector<Diagnostic>& diags) {
  return count_errors(diags) > 0;
}

std::size_t count_errors(const std::vector<Diagnostic>& diags) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.line != b.loc.line) {
                       return a.loc.line < b.loc.line;
                     }
                     if (a.loc.col != b.loc.col) return a.loc.col < b.loc.col;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return static_cast<u8>(a.severity) <
                            static_cast<u8>(b.severity);
                   });
}

namespace {

/// The 1-based `line` of `source` (without its newline); empty when out of
/// range.
std::string_view source_line(std::string_view source, u32 line) {
  std::size_t start = 0;
  for (u32 l = 1; l < line; ++l) {
    std::size_t nl = source.find('\n', start);
    if (nl == std::string_view::npos) return {};
    start = nl + 1;
  }
  std::size_t end = source.find('\n', start);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(start, end - start);
}

/// Length of the token starting at 0-based `col0` of `text`, for sizing the
/// caret squiggle.  Identifiers/numbers extend over their word; anything
/// else gets a single caret.
std::size_t token_length(std::string_view text, std::size_t col0) {
  if (col0 >= text.size()) return 1;
  auto wordy = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == '.' || c == ':';
  };
  if (!wordy(text[col0])) return 1;
  std::size_t end = col0;
  while (end < text.size() && wordy(text[end])) ++end;
  return end - col0;
}

}  // namespace

std::string render_diagnostic(std::string_view source, const Diagnostic& d,
                              std::string_view filename) {
  std::string out;
  if (!filename.empty()) {
    out += filename;
    out += ':';
  }
  out += format_diagnostic(d);
  out += '\n';
  std::string_view line = source_line(source, d.loc.line);
  if (line.empty() || d.loc.col == 0) return out;
  out += "  ";
  out += line;
  out += "\n  ";
  const std::size_t col0 = d.loc.col - 1;
  for (std::size_t i = 0; i < col0 && i < line.size(); ++i) {
    out += line[i] == '\t' ? '\t' : ' ';
  }
  out += '^';
  const std::size_t len = token_length(line, col0);
  for (std::size_t i = 1; i < len; ++i) out += '~';
  out += '\n';
  return out;
}

std::string render_diagnostics(std::string_view source,
                               const std::vector<Diagnostic>& diags,
                               std::string_view filename) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += render_diagnostic(source, d, filename);
  }
  return out;
}

std::string diagnostics_to_json(const std::vector<Diagnostic>& diags) {
  std::size_t errors = 0, warnings = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
  }
  std::string out = "{\"v\":1,\"type\":\"fsl_diagnostics\",\"errors\":";
  out += std::to_string(errors);
  out += ",\"warnings\":";
  out += std::to_string(warnings);
  out += ",\"diagnostics\":[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i) out += ',';
    out += "\n {\"rule\":\"";
    out += obs::json_escape(d.rule);
    out += "\",\"severity\":\"";
    out += to_string(d.severity);
    out += "\",\"line\":";
    out += std::to_string(d.loc.line);
    out += ",\"col\":";
    out += std::to_string(d.loc.col);
    out += ",\"message\":\"";
    out += obs::json_escape(d.message);
    out += "\"}";
  }
  out += "\n]}";
  return out;
}

ParseError::ParseError(SourceLoc loc, std::string message)
    : ParseError(Diagnostic{loc, std::move(message)}) {}

ParseError::ParseError(Diagnostic diag)
    : std::runtime_error(format_diagnostic(diag)), diag_(std::move(diag)) {}

}  // namespace vwire::fsl
