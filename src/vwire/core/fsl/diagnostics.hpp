// Source locations, severities and multi-diagnostic output for the Fault
// Specification Language front-end and the `fslint` static analyzer.
//
// Every front-end stage (lexer, parser, compiler, lint passes) reports
// through the same `Diagnostic` record: a severity, a stable rule id (the
// machine-readable name of the check that fired — "syntax",
// "shadowed-filter", …), a 1-based source location and a human message.
// Callers choose between throw-on-first semantics (`ParseError`, the
// historical behavior) and accumulation (`std::vector<Diagnostic>`).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "vwire/util/types.hpp"

namespace vwire::fsl {

struct SourceLoc {
  u32 line{0};  ///< 1-based
  u32 col{0};   ///< 1-based
};

enum class Severity : u8 {
  kError,    ///< the script is wrong; ScenarioRunner refuses to arm
  kWarning,  ///< probably a mistake; the script still runs
  kNote,     ///< supplementary information attached to another diagnostic
};

const char* to_string(Severity s);

struct Diagnostic {
  SourceLoc loc;
  std::string message;
  Severity severity{Severity::kError};
  /// Stable machine-readable id of the originating check (DESIGN.md §9
  /// catalogues them).  Front-end stages use "syntax" / "semantic"; every
  /// lint pass has its own id ("shadowed-filter", "dead-symbol", …).
  std::string rule{"syntax"};
};

/// "line:col: severity: [rule] message" — the one-line form.
std::string format_diagnostic(const Diagnostic& d);

bool has_errors(const std::vector<Diagnostic>& diags);
std::size_t count_errors(const std::vector<Diagnostic>& diags);

/// Orders by (line, col, rule, severity) so presentation — and in
/// particular `--json` output diffed by golden tests — is deterministic
/// even when several stages (lint, verify) contribute diagnostics at the
/// same location.
void sort_diagnostics(std::vector<Diagnostic>& diags);

/// Renders one diagnostic with its source line and a `^~~~` caret under
/// the offending token:
///
///   script.fsl:3:7: error: [duplicate-name] duplicate packet type 'pkt'
///     pkt: (12 2 0x0800)
///     ^~~
std::string render_diagnostic(std::string_view source, const Diagnostic& d,
                              std::string_view filename = {});

/// All diagnostics, rendered in order, one block per diagnostic.
std::string render_diagnostics(std::string_view source,
                               const std::vector<Diagnostic>& diags,
                               std::string_view filename = {});

/// Machine-readable output (schema "fsl_diagnostics" v1):
/// {"v":1,"type":"fsl_diagnostics","errors":N,"warnings":N,
///  "diagnostics":[{"rule":…,"severity":…,"line":…,"col":…,"message":…}]}
std::string diagnostics_to_json(const std::vector<Diagnostic>& diags);

/// Thrown by the FSL lexer, parser and compiler on the first hard error
/// when the caller asked for throw semantics; `what()` carries
/// "line:col: severity: [rule] message".
class ParseError : public std::runtime_error {
 public:
  ParseError(SourceLoc loc, std::string message);
  explicit ParseError(Diagnostic diag);

  const Diagnostic& diagnostic() const { return diag_; }

 private:
  Diagnostic diag_;
};

}  // namespace vwire::fsl
