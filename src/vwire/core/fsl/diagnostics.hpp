// Source locations and compile errors for the Fault Specification Language.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "vwire/util/types.hpp"

namespace vwire::fsl {

struct SourceLoc {
  u32 line{0};  ///< 1-based
  u32 col{0};   ///< 1-based
};

struct Diagnostic {
  SourceLoc loc;
  std::string message;
};

std::string format_diagnostic(const Diagnostic& d);

/// Thrown by the FSL lexer, parser and compiler on the first hard error;
/// `what()` carries "line:col: message".
class ParseError : public std::runtime_error {
 public:
  ParseError(SourceLoc loc, std::string message);

  const Diagnostic& diagnostic() const { return diag_; }

 private:
  Diagnostic diag_;
};

}  // namespace vwire::fsl
