#include "vwire/core/fsl/compiler.hpp"

#include <algorithm>
#include <iterator>

#include "vwire/core/fsl/lint.hpp"
#include "vwire/core/fsl/parser.hpp"

namespace vwire::fsl {

namespace {

using core::ActionEntry;
using core::ActionKind;
using core::CondEntry;
using core::CondInstr;
using core::CounterEntry;
using core::CounterId;
using core::kInvalidId;
using core::NodeId;
using core::TableSet;
using core::TermEntry;
using core::TermId;

template <typename T>
void add_unique(std::vector<T>& v, T x) {
  if (std::find(v.begin(), v.end(), x) == v.end()) v.push_back(x);
}

core::RelOp flip(core::RelOp op) {
  switch (op) {
    case core::RelOp::kGt: return core::RelOp::kLt;
    case core::RelOp::kLt: return core::RelOp::kGt;
    case core::RelOp::kGe: return core::RelOp::kLe;
    case core::RelOp::kLe: return core::RelOp::kGe;
    default: return op;  // = and != are symmetric
  }
}

/// Internal unwinding signal for accumulating mode, mirroring the parser's:
/// a semantic error has been recorded and the current declaration should be
/// abandoned.  Never escapes compile_checked.
struct Resync {};

class Compiler {
 public:
  Compiler(const AstScript& script, const CompileOptions& opts,
           std::vector<Diagnostic>* diags = nullptr)
      : script_(script), opts_(opts), diags_(diags) {}

  TableSet run() {
    compile_filters();
    compile_nodes();
    try {
      const AstScenario& sc = pick_scenario();
      check_duplicate_scenarios();
      out_.scenario_name = sc.name;
      out_.inactivity_timeout = sc.timeout.value_or(Duration{});
      compile_counters(sc);
      for (const AstRule& rule : sc.rules) {
        try {
          compile_rule(rule);
        } catch (const Resync&) {
          // Rule abandoned; later rules may still compile.
        }
      }
      wire_dependencies();
    } catch (const Resync&) {
      // No usable scenario; the filter/node tables remain best-effort.
    }
    return std::move(out_);
  }

 private:
  /// Throw-on-first mode raises ParseError; accumulating mode records the
  /// diagnostic and throws Resync so the per-declaration loops can skip the
  /// broken entry and keep going.
  [[noreturn]] void fail(SourceLoc loc, const std::string& msg,
                         const char* rule = "semantic") const {
    if (diags_ == nullptr) throw ParseError(loc, msg);
    diags_->push_back({loc, msg, Severity::kError, rule});
    throw Resync{};
  }

  // --- filters and nodes ---------------------------------------------------

  void compile_filters() {
    out_.filters.var_names = script_.vars;
    for (std::size_t i = 0; i < script_.vars.size(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (script_.vars[i] != script_.vars[j]) continue;
        try {
          fail(SourceLoc{1, 1}, "duplicate VAR '" + script_.vars[i] + "'",
               "duplicate-name");
        } catch (const Resync&) {
        }
      }
    }
    for (const AstFilter& f : script_.filters) {
      try {
        compile_filter(f);
      } catch (const Resync&) {
        // Entry abandoned; keep checking the rest of the table.
      }
    }
  }

  void compile_filter(const AstFilter& f) {
    if (out_.filters.find(f.name) != kInvalidId) {
      fail(f.loc, "duplicate packet type '" + f.name + "'",
           "duplicate-name");
    }
    {
      core::FilterEntry e;
      e.name = f.name;
      for (const AstFilterTuple& t : f.tuples) {
        core::FilterTuple tp;
        if (t.length < 1 || t.length > 8) {
          fail(t.loc, "filter tuple length must be 1..8 bytes");
        }
        tp.offset = t.offset;
        tp.length = t.length;
        u64 cap = t.length >= 8 ? ~0ull : ((1ull << (8 * t.length)) - 1);
        tp.mask = t.mask.value_or(cap);
        if (tp.mask > cap) {
          fail(t.loc, "mask wider than the tuple's byte count");
        }
        if (!t.var.empty()) {
          auto it = std::find(script_.vars.begin(), script_.vars.end(), t.var);
          if (it == script_.vars.end()) {
            fail(t.loc, "unknown VAR '" + t.var + "' in filter tuple",
                 "unbound-variable");
          }
          tp.var = static_cast<u16>(it - script_.vars.begin());
        } else {
          tp.pattern = t.pattern.value_or(0);
          if (tp.pattern > cap) {
            fail(t.loc, "pattern wider than the tuple's byte count");
          }
        }
        e.tuples.push_back(tp);
      }
      out_.filters.entries.push_back(std::move(e));
    }
  }

  void compile_nodes() {
    for (const AstNodeDef& n : script_.nodes) {
      try {
        if (out_.nodes.find(n.name) != kInvalidId) {
          fail(n.loc, "duplicate node '" + n.name + "'", "duplicate-name");
        }
        auto mac = net::MacAddress::parse(n.mac);
        if (!mac) fail(n.loc, "malformed MAC address '" + n.mac + "'");
        auto ip = net::Ipv4Address::parse(n.ip);
        if (!ip) fail(n.loc, "malformed IP address '" + n.ip + "'");
        out_.nodes.entries.push_back({n.name, *mac, *ip});
      } catch (const Resync&) {
        // Entry abandoned; keep checking the rest of the table.
      }
    }
  }

  const AstScenario& pick_scenario() const {
    if (script_.scenarios.empty()) {
      fail(SourceLoc{1, 1}, "script contains no SCENARIO");
    }
    if (opts_.scenario.empty()) return script_.scenarios.front();
    for (const auto& sc : script_.scenarios) {
      if (sc.name == opts_.scenario) return sc;
    }
    fail(SourceLoc{1, 1}, "no scenario named '" + opts_.scenario + "'");
  }

  void check_duplicate_scenarios() {
    for (std::size_t i = 0; i < script_.scenarios.size(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (script_.scenarios[i].name != script_.scenarios[j].name) continue;
        try {
          fail(script_.scenarios[i].loc,
               "duplicate scenario '" + script_.scenarios[i].name + "'",
               "duplicate-name");
        } catch (const Resync&) {
        }
      }
    }
  }

  // --- name resolution helpers ----------------------------------------------

  NodeId node_ref(SourceLoc loc, const std::string& name) const {
    NodeId id = out_.nodes.find(name);
    if (id == kInvalidId) {
      fail(loc, "unknown node '" + name + "'", "unknown-name");
    }
    return id;
  }

  core::FilterId filter_ref(SourceLoc loc, const std::string& name) const {
    core::FilterId id = out_.filters.find(name);
    if (id == kInvalidId) {
      fail(loc, "unknown packet type '" + name + "'", "unknown-name");
    }
    return id;
  }

  CounterId counter_ref(SourceLoc loc, const std::string& name) const {
    CounterId id = out_.counters.find(name);
    if (id == kInvalidId) {
      fail(loc, "unknown counter '" + name + "'", "unknown-name");
    }
    return id;
  }

  // --- counters --------------------------------------------------------------

  void compile_counters(const AstScenario& sc) {
    for (const AstCounterDecl& d : sc.counters) {
      try {
        compile_counter(d);
      } catch (const Resync&) {
        // Declaration abandoned; keep checking the rest.
      }
    }
  }

  void compile_counter(const AstCounterDecl& d) {
    {
      if (out_.counters.find(d.name) != kInvalidId) {
        fail(d.loc, "duplicate counter '" + d.name + "'", "duplicate-name");
      }
      CounterEntry c;
      c.name = d.name;
      if (d.is_local) {
        c.kind = core::CounterKind::kLocal;
        c.home = node_ref(d.loc, d.node);
      } else {
        c.kind = core::CounterKind::kEvent;
        c.filter = filter_ref(d.loc, d.pkt_type);
        c.src_node = node_ref(d.loc, d.src_node);
        c.dst_node = node_ref(d.loc, d.dst_node);
        c.dir = d.dir;
        // SEND events are observable at the source, RECV at the destination.
        c.home = d.dir == net::Direction::kSend ? c.src_node : c.dst_node;
      }
      out_.counters.entries.push_back(std::move(c));
    }
  }

  // --- conditions -------------------------------------------------------------

  /// Emits (and dedupes) a term; returns its id.
  TermId term_ref(const AstTerm& ast, SourceLoc loc) {
    core::Operand lhs = operand(ast.lhs);
    core::Operand rhs = operand(ast.rhs);
    core::RelOp op = ast.op;
    if (!lhs.is_counter && rhs.is_counter) {
      std::swap(lhs, rhs);
      op = flip(op);
    }
    if (!lhs.is_counter) {
      fail(loc, "a term must reference at least one counter");
    }
    for (std::size_t i = 0; i < out_.terms.entries.size(); ++i) {
      const TermEntry& e = out_.terms.entries[i];
      if (e.op == op && e.lhs.is_counter == lhs.is_counter &&
          e.lhs.counter == lhs.counter && e.lhs.constant == lhs.constant &&
          e.rhs.is_counter == rhs.is_counter && e.rhs.counter == rhs.counter &&
          e.rhs.constant == rhs.constant) {
        return static_cast<TermId>(i);
      }
    }
    TermEntry e;
    e.lhs = lhs;
    e.op = op;
    e.rhs = rhs;
    e.eval_node = out_.counters.entries[lhs.counter].home;
    out_.terms.entries.push_back(e);
    return static_cast<TermId>(out_.terms.entries.size() - 1);
  }

  core::Operand operand(const AstOperand& o) {
    core::Operand out;
    if (o.is_int) {
      out.is_counter = false;
      out.constant = o.value;
    } else {
      out.is_counter = true;
      out.counter = counter_ref(o.loc, o.name);
    }
    return out;
  }

  void emit_postfix(const AstCond& c, std::vector<CondInstr>& out) {
    switch (c.kind) {
      case AstCond::Kind::kTrue:
        out.push_back({core::BoolOp::kTrue, kInvalidId});
        return;
      case AstCond::Kind::kTerm:
        out.push_back({core::BoolOp::kTerm, term_ref(c.term, c.loc)});
        return;
      case AstCond::Kind::kAnd:
        emit_postfix(*c.a, out);
        emit_postfix(*c.b, out);
        out.push_back({core::BoolOp::kAnd, kInvalidId});
        return;
      case AstCond::Kind::kOr:
        emit_postfix(*c.a, out);
        emit_postfix(*c.b, out);
        out.push_back({core::BoolOp::kOr, kInvalidId});
        return;
      case AstCond::Kind::kNot:
        emit_postfix(*c.a, out);
        out.push_back({core::BoolOp::kNot, kInvalidId});
        return;
    }
  }

  void compile_rule(const AstRule& rule) {
    CondEntry cond;
    cond.src_line = rule.loc.line;
    cond.src_col = rule.loc.col;
    emit_postfix(rule.cond, cond.postfix);

    // The anchor node hosts actions with no natural location (STOP,
    // FLAG_ERROR): the eval node of the condition's first term, or node 0
    // for a (TRUE) rule.
    NodeId anchor = 0;
    for (const CondInstr& in : cond.postfix) {
      if (in.op == core::BoolOp::kTerm) {
        anchor = out_.terms.entries[in.term].eval_node;
        break;
      }
    }

    // The condition this rule compiles into is about to be appended, so its
    // id is the current table size; actions carry it as a back-reference.
    const auto cond_id =
        static_cast<core::CondId>(out_.conditions.entries.size());
    for (const AstAction& a : rule.actions) {
      core::ActionId id = compile_action(a, anchor);
      cond.actions.push_back(id);
      out_.actions.entries[id].cond = cond_id;
      out_.actions.entries[id].src_line = a.loc.line;
      out_.actions.entries[id].src_col = a.loc.col;
      add_unique(cond.eval_nodes, out_.actions.entries[id].exec_node);
    }
    out_.conditions.entries.push_back(std::move(cond));
  }

  // --- actions ---------------------------------------------------------------

  const AstArg& arg(const AstAction& a, std::size_t i,
                    AstArg::Kind want, const char* what) const {
    if (i >= a.args.size()) {
      fail(a.loc, a.name + ": missing argument " + std::to_string(i + 1) +
                      " (" + what + ")");
    }
    const AstArg& g = a.args[i];
    if (g.kind != want) {
      fail(g.loc, a.name + ": argument " + std::to_string(i + 1) +
                      " must be " + what);
    }
    return g;
  }

  void check_argc(const AstAction& a, std::size_t lo, std::size_t hi) const {
    if (a.args.size() < lo || a.args.size() > hi) {
      fail(a.loc, a.name + ": expected " + std::to_string(lo) +
                      (hi == lo ? "" : ".." + std::to_string(hi)) +
                      " arguments, got " + std::to_string(a.args.size()));
    }
  }

  /// Parses the common (pkt_type, src, dst, SEND|RECV) prefix of faults.
  void fault_prefix(const AstAction& a, ActionEntry& e) {
    e.filter = filter_ref(a.loc, arg(a, 0, AstArg::Kind::kIdent,
                                     "a packet type").ident);
    e.src_node = node_ref(a.loc, arg(a, 1, AstArg::Kind::kIdent,
                                     "the source node").ident);
    e.dst_node = node_ref(a.loc, arg(a, 2, AstArg::Kind::kIdent,
                                     "the destination node").ident);
    const std::string& dir =
        arg(a, 3, AstArg::Kind::kIdent, "SEND or RECV").ident;
    if (dir == "SEND") {
      e.dir = net::Direction::kSend;
    } else if (dir == "RECV") {
      e.dir = net::Direction::kRecv;
    } else {
      fail(a.loc, a.name + ": direction must be SEND or RECV");
    }
    // Faults intercept packets where they are observable.
    e.exec_node = e.dir == net::Direction::kSend ? e.src_node : e.dst_node;
  }

  core::ActionId compile_action(const AstAction& a, NodeId anchor) {
    ActionEntry e;
    const std::string& n = a.name;

    if (n == "DROP" || n == "DUP") {
      check_argc(a, 4, 4);
      e.kind = n == "DROP" ? ActionKind::kDrop : ActionKind::kDup;
      fault_prefix(a, e);
    } else if (n == "DELAY") {
      check_argc(a, 5, 5);
      e.kind = ActionKind::kDelay;
      fault_prefix(a, e);
      const AstArg& d = a.args[4];
      if (d.kind == AstArg::Kind::kDuration) {
        e.delay = d.duration;
      } else if (d.kind == AstArg::Kind::kInt) {
        e.delay = millis(d.value);  // bare integers are milliseconds
      } else {
        fail(d.loc, "DELAY: duration must be e.g. 50ms or an integer (ms)");
      }
      if (e.delay.ns <= 0) fail(d.loc, "DELAY: duration must be positive");
    } else if (n == "REORDER") {
      e.kind = ActionKind::kReorder;
      if (a.args.size() < 5) {
        fail(a.loc, "REORDER: expected (pkt, src, dst, DIR, #pkts [, order...])");
      }
      fault_prefix(a, e);
      e.reorder_count = static_cast<u16>(
          arg(a, 4, AstArg::Kind::kInt, "the packet count").value);
      if (e.reorder_count < 2 || e.reorder_count > 64) {
        fail(a.loc, "REORDER: #pkts must be 2..64");
      }
      if (a.args.size() > 5) {
        for (std::size_t i = 5; i < a.args.size(); ++i) {
          e.reorder_order.push_back(static_cast<u16>(
              arg(a, i, AstArg::Kind::kInt, "an order index").value));
        }
      } else {
        // Default release order: reversed.
        for (u16 i = e.reorder_count; i >= 1; --i) e.reorder_order.push_back(i);
      }
      // Must be a permutation of 1..count.
      auto sorted = e.reorder_order;
      std::sort(sorted.begin(), sorted.end());
      bool perm = sorted.size() == e.reorder_count;
      for (u16 i = 0; perm && i < e.reorder_count; ++i) {
        perm = sorted[i] == i + 1;
      }
      if (!perm) {
        fail(a.loc, "REORDER: order must be a permutation of 1..#pkts");
      }
    } else if (n == "MODIFY") {
      e.kind = ActionKind::kModify;
      if (a.args.size() < 4) {
        fail(a.loc, "MODIFY: expected (pkt, src, dst, DIR [, (off len val)...])");
      }
      fault_prefix(a, e);
      for (std::size_t i = 4; i < a.args.size(); ++i) {
        const AstArg& t = arg(a, i, AstArg::Kind::kTuple, "a byte tuple");
        if (t.tuple.size() != 3 && t.tuple.size() != 4) {
          fail(t.loc, "MODIFY tuple must be (offset len value) or "
                      "(offset len mask value)");
        }
        u16 off = static_cast<u16>(t.tuple[0]);
        u16 len = static_cast<u16>(t.tuple[1]);
        if (len < 1 || len > 8) fail(t.loc, "MODIFY tuple length must be 1..8");
        u64 mask = t.tuple.size() == 4 ? t.tuple[2] : ~0ull;
        u64 value = t.tuple.back();
        // Expand into per-byte rewrites, big-endian like filters.
        for (u16 b = 0; b < len; ++b) {
          int shift = 8 * (len - 1 - b);
          u8 mb = static_cast<u8>(mask >> shift);
          if (mb == 0) continue;
          e.modify_bytes.push_back(
              {static_cast<u16>(off + b), mb, static_cast<u8>(value >> shift)});
        }
      }
    } else if (n == "FAIL") {
      check_argc(a, 1, 1);
      e.kind = ActionKind::kFail;
      e.fail_node = node_ref(a.loc, arg(a, 0, AstArg::Kind::kIdent,
                                        "the node to crash").ident);
      e.exec_node = e.fail_node;
    } else if (n == "STOP") {
      check_argc(a, 0, 0);
      e.kind = ActionKind::kStop;
      e.exec_node = anchor;
    } else if (n == "FLAG_ERROR" || n == "FLAG_ERR") {
      check_argc(a, 0, 0);
      e.kind = ActionKind::kFlagError;
      e.exec_node = anchor;
    } else {
      // Counter primitives.
      static const std::pair<const char*, ActionKind> kCounterOps[] = {
          {"ASSIGN_CNTR", ActionKind::kAssignCntr},
          {"ENABLE_CNTR", ActionKind::kEnableCntr},
          {"DISABLE_CNTR", ActionKind::kDisableCntr},
          {"INCR_CNTR", ActionKind::kIncrCntr},
          {"DECR_CNTR", ActionKind::kDecrCntr},
          {"RESET_CNTR", ActionKind::kResetCntr},
          {"SET_CURTIME", ActionKind::kSetCurtime},
          {"ELAPSED_TIME", ActionKind::kElapsedTime},
      };
      const ActionKind* kind = nullptr;
      for (const auto& [name, k] : kCounterOps) {
        if (n == name) {
          kind = &k;
          break;
        }
      }
      if (kind == nullptr) fail(a.loc, "unknown action '" + n + "'");
      e.kind = *kind;
      e.counter = counter_ref(a.loc, arg(a, 0, AstArg::Kind::kIdent,
                                         "a counter name").ident);
      e.exec_node = out_.counters.entries[e.counter].home;
      if (e.kind == ActionKind::kAssignCntr || e.kind == ActionKind::kIncrCntr ||
          e.kind == ActionKind::kDecrCntr) {
        check_argc(a, 1, 2);
        if (a.args.size() == 2) {
          e.value = arg(a, 1, AstArg::Kind::kInt, "an integer value").value;
        } else {
          // ASSIGN without a value zeroes; INCR/DECR default to 1.
          e.value = e.kind == ActionKind::kAssignCntr ? 0 : 1;
        }
      } else {
        check_argc(a, 1, 1);
      }
    }
    compile_modifier(a, e);
    out_.actions.entries.push_back(std::move(e));
    return static_cast<core::ActionId>(out_.actions.entries.size() - 1);
  }

  /// Validates and attaches a trailing RATE(n)/PROB(p) modifier.  Modifiers
  /// thin a per-packet fault stream, so they only make sense on packet
  /// faults; one-shot actions (FAIL, STOP, counter primitives) have no
  /// stream to thin.
  void compile_modifier(const AstAction& a, ActionEntry& e) {
    if (a.mod == AstAction::ModKind::kNone) return;
    if (!core::is_packet_fault(e.kind)) {
      fail(a.mod_loc,
           a.name + ": RATE/PROB modifiers apply only to packet faults "
                    "(DROP, DELAY, REORDER, DUP, MODIFY)",
           "modifier-conflict");
    }
    if (a.mod == AstAction::ModKind::kRate) {
      e.rate_n = a.mod_rate;
    } else {
      if (a.mod_prob <= 0.0 || a.mod_prob > 1.0) {
        fail(a.mod_loc, "PROB probability must be in (0, 1]",
             "modifier-range");
      }
      e.prob = a.mod_prob;
    }
  }

  // --- dependency wiring --------------------------------------------------------

  void wire_dependencies() {
    // counter → terms.
    for (std::size_t t = 0; t < out_.terms.entries.size(); ++t) {
      TermEntry& term = out_.terms.entries[t];
      add_unique(out_.counters.entries[term.lhs.counter].terms,
                 static_cast<TermId>(t));
      if (term.rhs.is_counter) {
        add_unique(out_.counters.entries[term.rhs.counter].terms,
                   static_cast<TermId>(t));
      }
    }
    // term → conditions.
    for (std::size_t c = 0; c < out_.conditions.entries.size(); ++c) {
      for (const CondInstr& in : out_.conditions.entries[c].postfix) {
        if (in.op == core::BoolOp::kTerm) {
          add_unique(out_.terms.entries[in.term].conds,
                     static_cast<core::CondId>(c));
        }
      }
    }
    // term → nodes that need its status (condition evaluation sites).
    for (TermEntry& term : out_.terms.entries) {
      for (core::CondId c : term.conds) {
        for (NodeId n : out_.conditions.entries[c].eval_nodes) {
          if (n != term.eval_node) add_unique(term.notify_nodes, n);
        }
      }
    }
    // counter → nodes that need its value (remote term operands).
    for (const TermEntry& term : out_.terms.entries) {
      auto wire_operand = [&](const core::Operand& o) {
        if (!o.is_counter) return;
        CounterEntry& cnt = out_.counters.entries[o.counter];
        if (cnt.home != term.eval_node) {
          add_unique(cnt.notify_nodes, term.eval_node);
        }
      };
      wire_operand(term.lhs);
      wire_operand(term.rhs);
    }
  }

  const AstScript& script_;
  const CompileOptions& opts_;
  std::vector<Diagnostic>* diags_;
  TableSet out_;
};

}  // namespace

core::TableSet compile(const AstScript& script, const CompileOptions& opts) {
  return Compiler(script, opts).run();
}

core::TableSet compile_script(std::string_view source,
                              const CompileOptions& opts) {
  AstScript ast = parse_script(source);
  return compile(ast, opts);
}

CompileResult compile_checked(const AstScript& script,
                              const CompileOptions& opts) {
  CompileResult r;
  r.tables = Compiler(script, opts, &r.diagnostics).run();
  if (opts.lint && !has_errors(r.diagnostics)) {
    std::vector<Diagnostic> lint = lint_script(script, r.tables);
    r.diagnostics.insert(r.diagnostics.end(),
                         std::make_move_iterator(lint.begin()),
                         std::make_move_iterator(lint.end()));
  }
  sort_diagnostics(r.diagnostics);
  return r;
}

CompileResult check_script(std::string_view source,
                           const CompileOptions& opts) {
  CompileResult r;
  AstScript ast = parse_script(source, r.diagnostics);
  CompileOptions copts = opts;
  // Lint on top of a broken parse would drown the real problem in
  // follow-on noise; semantic checking still runs for what did parse.
  copts.lint = opts.lint && !has_errors(r.diagnostics);
  CompileResult compiled = compile_checked(ast, copts);
  r.tables = std::move(compiled.tables);
  r.diagnostics.insert(r.diagnostics.end(),
                       std::make_move_iterator(compiled.diagnostics.begin()),
                       std::make_move_iterator(compiled.diagnostics.end()));
  sort_diagnostics(r.diagnostics);
  return r;
}

}  // namespace vwire::fsl
