#include "vwire/core/fsl/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "vwire/util/hex.hpp"

namespace vwire::fsl {

const char* to_string(TokKind k) {
  switch (k) {
    case TokKind::kIdent: return "identifier";
    case TokKind::kInt: return "integer";
    case TokKind::kFloat: return "real number";
    case TokKind::kMac: return "MAC address";
    case TokKind::kIp: return "IP address";
    case TokKind::kDuration: return "duration";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kComma: return "','";
    case TokKind::kSemi: return "';'";
    case TokKind::kColon: return "':'";
    case TokKind::kArrow: return "'>>'";
    case TokKind::kAndAnd: return "'&&'";
    case TokKind::kOrOr: return "'||'";
    case TokKind::kNot: return "'!'";
    case TokKind::kLt: return "'<'";
    case TokKind::kGt: return "'>'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGe: return "'>='";
    case TokKind::kEq: return "'='";
    case TokKind::kNe: return "'!='";
    case TokKind::kEof: return "end of script";
  }
  return "?";
}

namespace {

class Scanner {
 public:
  explicit Scanner(std::string_view src,
                   std::vector<Diagnostic>* diags = nullptr)
      : src_(src), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_space_and_comments();
      Token t = next();
      bool eof = t.kind == TokKind::kEof;
      out.push_back(std::move(t));
      if (eof) return out;
    }
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  SourceLoc loc() const { return {line_, col_}; }

  /// Throw-on-first mode raises; accumulating mode records and returns so
  /// the call site can recover.  A cap keeps a corrupt input from flooding
  /// the list with cascade noise.
  void report(SourceLoc at, const std::string& msg) {
    if (diags_ == nullptr) throw ParseError(at, msg);
    if (diags_->size() < kMaxDiags) {
      diags_->push_back({at, msg, Severity::kError, "syntax"});
    }
  }

  void fail(const std::string& msg) { report(loc(), msg); }

  void skip_space_and_comments() {
    for (;;) {
      while (pos_ < src_.size() && std::isspace(static_cast<u8>(peek()))) {
        advance();
      }
      if (peek() == '/' && peek(1) == '/') {
        while (pos_ < src_.size() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        SourceLoc start = loc();
        advance();
        advance();
        while (pos_ < src_.size() && !(peek() == '*' && peek(1) == '/')) {
          advance();
        }
        if (pos_ >= src_.size()) {
          report(start, "unterminated comment");
          return;
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  static bool is_hex_digit(char c) {
    return std::isxdigit(static_cast<u8>(c)) != 0;
  }

  /// aa:bb:cc:dd:ee:ff starting at the current position?
  bool looks_like_mac() const {
    for (int group = 0; group < 6; ++group) {
      std::size_t base = static_cast<std::size_t>(group) * 3;
      if (!is_hex_digit(peek(base)) || !is_hex_digit(peek(base + 1))) {
        return false;
      }
      if (group < 5 && peek(base + 2) != ':') return false;
    }
    // Must not be followed by more identifier-ish characters.
    char after = peek(17);
    return !(std::isalnum(static_cast<u8>(after)) || after == ':' ||
             after == '_');
  }

  Token make(TokKind k, std::string text = {}) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.loc = tok_loc_;
    return t;
  }

  Token lex_mac() {
    std::string text;
    for (int i = 0; i < 17; ++i) text.push_back(advance());
    return make(TokKind::kMac, std::move(text));
  }

  Token lex_number_or_ip_or_duration() {
    std::string digits;
    while (std::isdigit(static_cast<u8>(peek()))) digits.push_back(advance());

    if (peek() == '.') {
      // One dot followed by digits and then no further dot is a real
      // number (0.25 in PROB modifiers); a second dot makes it a
      // dotted-quad IP literal.  Look past the fraction to decide.
      std::size_t after_frac = 1;
      while (std::isdigit(static_cast<u8>(peek(after_frac)))) ++after_frac;
      if (after_frac > 1 && peek(after_frac) != '.') {
        std::string text = digits;
        text.push_back(advance());  // '.'
        while (std::isdigit(static_cast<u8>(peek()))) {
          text.push_back(advance());
        }
        Token t = make(TokKind::kFloat, text);
        t.real = std::strtod(text.c_str(), nullptr);
        return t;
      }
      // Dotted-quad IP literal.
      std::string text = digits;
      for (int group = 0; group < 3; ++group) {
        if (peek() != '.') {
          fail("malformed IP literal");
          return make(TokKind::kIp, std::move(text));
        }
        text.push_back(advance());
        if (!std::isdigit(static_cast<u8>(peek()))) {
          fail("malformed IP literal");
          return make(TokKind::kIp, std::move(text));
        }
        while (std::isdigit(static_cast<u8>(peek()))) {
          text.push_back(advance());
        }
      }
      return make(TokKind::kIp, std::move(text));
    }

    if (std::isalpha(static_cast<u8>(peek()))) {
      // Duration: 1sec / 500ms / 10us / 2min / 3s.
      std::string unit;
      while (std::isalpha(static_cast<u8>(peek()))) unit.push_back(advance());
      auto v = parse_dec(digits);
      if (!v) fail("bad number in duration");
      Token t = make(TokKind::kDuration, digits + unit);
      i64 n = v ? static_cast<i64>(*v) : 0;
      if (unit == "sec" || unit == "s") {
        t.duration = seconds(n);
      } else if (unit == "ms") {
        t.duration = millis(n);
      } else if (unit == "us") {
        t.duration = micros(n);
      } else if (unit == "min") {
        t.duration = seconds(n * 60);
      } else {
        fail("unknown duration unit '" + unit + "'");
      }
      return t;
    }

    auto v = parse_dec(digits);
    if (!v) fail("integer literal overflows");
    Token t = make(TokKind::kInt, std::move(digits));
    t.value = v.value_or(0);
    return t;
  }

  Token lex_hex() {
    std::string text = "0x";
    advance();  // 0
    advance();  // x
    while (is_hex_digit(peek())) text.push_back(advance());
    auto v = parse_hex(text);
    if (!v) fail("bad hex literal '" + text + "'");
    Token t = make(TokKind::kInt, std::move(text));
    t.value = v.value_or(0);
    t.is_hex = true;
    return t;
  }

  Token lex_ident() {
    std::string text;
    while (std::isalnum(static_cast<u8>(peek())) || peek() == '_') {
      text.push_back(advance());
    }
    return make(TokKind::kIdent, std::move(text));
  }

  Token next() {
    for (;;) {
      tok_loc_ = loc();
      if (pos_ >= src_.size()) return make(TokKind::kEof);

      if (looks_like_mac()) return lex_mac();
      char c = peek();
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) return lex_hex();
      if (std::isdigit(static_cast<u8>(c))) {
        return lex_number_or_ip_or_duration();
      }
      if (std::isalpha(static_cast<u8>(c)) || c == '_') return lex_ident();

      advance();
      switch (c) {
        case '(': return make(TokKind::kLParen);
        case ')': return make(TokKind::kRParen);
        case ',': return make(TokKind::kComma);
        case ';': return make(TokKind::kSemi);
        case ':': return make(TokKind::kColon);
        case '>':
          if (peek() == '>') {
            advance();
            return make(TokKind::kArrow);
          }
          if (peek() == '=') {
            advance();
            return make(TokKind::kGe);
          }
          return make(TokKind::kGt);
        case '<':
          if (peek() == '=') {
            advance();
            return make(TokKind::kLe);
          }
          return make(TokKind::kLt);
        case '=':
          if (peek() == '=') advance();  // '==' is an accepted spelling
          return make(TokKind::kEq);
        case '!':
          if (peek() == '=') {
            advance();
            return make(TokKind::kNe);
          }
          return make(TokKind::kNot);
        case '&':
          if (peek() == '&') {
            advance();
            return make(TokKind::kAndAnd);
          }
          // Recovery reads the intended '&&' so parsing can continue.
          report(tok_loc_, "stray '&' (did you mean '&&'?)");
          return make(TokKind::kAndAnd);
        case '|':
          if (peek() == '|') {
            advance();
            return make(TokKind::kOrOr);
          }
          report(tok_loc_, "stray '|' (did you mean '||'?)");
          return make(TokKind::kOrOr);
        default:
          report(tok_loc_, std::string("unexpected character '") + c + "'");
          skip_space_and_comments();  // drop the stray byte and rescan
      }
    }
  }

  std::string_view src_;
  std::vector<Diagnostic>* diags_;
  std::size_t pos_{0};
  u32 line_{1};
  u32 col_{1};
  SourceLoc tok_loc_;

  static constexpr std::size_t kMaxDiags = 100;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  return Scanner(source).run();
}

std::vector<Token> tokenize(std::string_view source,
                            std::vector<Diagnostic>& diags) {
  return Scanner(source, &diags).run();
}

}  // namespace vwire::fsl
