// fsl::mc — explicit-state scenario verification (DESIGN.md §13).
//
// fslint (lint.hpp) answers per-rule questions under a flow-insensitive
// interval abstraction: each counter gets one interval covering every value
// it could ever hold, so "can this condition be true for SOME valuation"
// is as far as it can see.  The model checker here answers the questions
// users actually ask of a *scenario*: can this fault ever fire, does the
// run always have a path to STOP, can two nodes' rules interleave into a
// livelock?  It explores the product automaton of all nodes' compiled
// condition/action tables:
//
//   state      = (counter valuations under a small-constant abstraction,
//                 enabled bits, per-condition truth, RATE modifier phases,
//                 failed nodes, stopped flag)
//   transition = one packet event per flow (filter, src, dst): the SEND
//                side counts/cascades/faults, then — unless a DROP consumed
//                the packet — the RECV side does, atomically
//
// Counter values live in a small-constant domain: exact in
// [-(K+1), K+1] where K bounds every constant a term compares against,
// TOP (> K+1) / BOT (< -(K+1)) beyond, and ANY for clock-valued counters
// (SET_CURTIME / ELAPSED_TIME).  Comparisons that the domain cannot decide
// (TOP vs a constant above K, anything vs ANY) fork the exploration over
// both outcomes, so reachability is an over-approximation: "unreachable"
// verdicts are proofs (modulo the soundness caveats in DESIGN.md §13),
// "reachable" verdicts come with a concrete witness trace that
// analysis/verify_replay.hpp confirms dynamically in a real Testbed.
//
// Rule catalogue (extends the lint catalogue; same diagnostic machinery):
//   fsl-verify-dead-rule          (error)   no action of the rule can ever
//                                           execute on any event sequence
//   fsl-verify-no-stop-path       (warning) the scenario has STOP actions
//                                           but no reachable one
//   fsl-verify-livelock           (warning) a reachable cycle in which
//                                           counter-coupled rules on ≥2
//                                           nodes keep re-firing each other
//   fsl-verify-infeasible-conflict (note)   a conflicting-actions pair
//                                           whose trigger is unreachable —
//                                           the syntactic conflict cannot
//                                           manifest
//   fsl-verify-state-cap          (note)    exploration hit the state cap;
//                                           unreachability verdicts were
//                                           suppressed
#pragma once

#include <optional>

#include "vwire/core/fsl/diagnostics.hpp"
#include "vwire/core/tables/tables.hpp"

namespace vwire::fsl::mc {

/// Fire-count bound sentinel: the rule can fire unboundedly often.
inline constexpr u64 kUnbounded = ~0ull;

/// One step of a witness trace: inject `count` consecutive packets that
/// classify as `filter`, from `src` to `dst`.
struct WitnessEvent {
  core::FilterId filter{core::kInvalidId};
  core::NodeId src{core::kInvalidId};
  core::NodeId dst{core::kInvalidId};
  u32 count{1};
};

/// A concrete event sequence predicted to make `rule` execute `action`.
/// Serializes in the chaos repro style (one event per line, names not
/// indices) so traces stay meaningful when tables are recompiled.
struct Witness {
  core::CondId rule{core::kInvalidId};
  core::ActionId action{core::kInvalidId};
  /// True when some step of the trace depends on a PROB draw or on a
  /// comparison the abstraction could not decide; replay may need luck.
  bool probabilistic{false};
  std::vector<WitnessEvent> events;

  std::string to_json(const core::TableSet& tables) const;
  /// Throws std::runtime_error on malformed input or unknown names.
  static Witness from_json(std::string_view text,
                           const core::TableSet& tables);
};

/// Per-rule verdict: reachability of each action plus the worst-case
/// number of times the rule can fire over any (finite prefix of a) run.
struct RuleVerdict {
  core::CondId rule{core::kInvalidId};
  u32 src_line{0};
  u32 src_col{0};
  /// Per-action (index into CondEntry::actions): can it ever execute?
  std::vector<bool> action_reachable;
  /// Witness for the first reachable action, when any.
  std::optional<Witness> witness;
  u64 fire_bound{0};  ///< kUnbounded when a reachable cycle fires the rule

  bool reachable() const {
    for (bool r : action_reachable) {
      if (r) return true;
    }
    return false;
  }
};

struct VerifyOptions {
  /// Exploration cap.  Hitting it makes the result incomplete: reachable
  /// verdicts (and witnesses) stand, unreachable verdicts are suppressed.
  std::size_t max_states{50000};
  /// Cap on the small-constant bound K.  Constants above it stay decidable
  /// against concrete values but force a fork against TOP/BOT.
  i64 max_constant{256};
};

struct VerifyResult {
  std::vector<RuleVerdict> rules;
  bool has_stop{false};         ///< the script declares a STOP action
  bool stop_reachable{false};
  std::optional<Witness> stop_witness;
  std::size_t states_explored{0};
  bool complete{true};          ///< false: state cap hit
  /// fsl-verify-* findings, sorted like lint output.
  std::vector<Diagnostic> diagnostics;

  /// Machine-readable report (schema "fsl_verify" v1): verdicts, bounds
  /// and witness traces keyed by rule source location.
  std::string to_json(const core::TableSet& tables) const;
};

/// Model-checks one compiled scenario.  The tables must come from a clean
/// compile (verify relies on the rule-id ↔ condition-entry correspondence
/// and the v3 provenance fields for source locations).
VerifyResult verify_tables(const core::TableSet& tables,
                           const VerifyOptions& opts = {});

}  // namespace vwire::fsl::mc
