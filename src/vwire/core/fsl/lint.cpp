#include "vwire/core/fsl/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace vwire::fsl {

namespace {

using core::ActionEntry;
using core::ActionKind;
using core::CondInstr;
using core::CounterEntry;
using core::CounterId;
using core::kInvalidId;
using core::NodeId;
using core::TableSet;

// --- filter shape analysis -------------------------------------------------

/// Per-byte constraint accumulated over a filter's concrete tuples:
/// "byte & mask == value" (value stored pre-masked).
struct ByteCon {
  u8 mask{0};
  u8 value{0};
};

/// A filter's match set abstracted to per-byte constraints.  Variable
/// tuples only further restrict the match set, so ignoring their bytes
/// keeps subset/overlap reasoning sound in one direction each: a shape can
/// soundly be proven a SUBSET only against a var-free shape, and two shapes
/// whose concrete constraints conflict are definitely disjoint.
struct FilterShape {
  std::map<u16, ByteCon> bytes;
  bool has_var{false};
  bool unsat{false};
};

FilterShape shape_of(const core::FilterEntry& f) {
  FilterShape s;
  for (const core::FilterTuple& tp : f.tuples) {
    if (tp.is_var()) {
      s.has_var = true;
      continue;
    }
    for (u16 b = 0; b < tp.length; ++b) {
      int shift = 8 * (tp.length - 1 - b);
      u8 mb = static_cast<u8>(tp.mask >> shift);
      u8 vb = static_cast<u8>((tp.pattern & tp.mask) >> shift);
      if (mb == 0) continue;
      ByteCon& c = s.bytes[static_cast<u16>(tp.offset + b)];
      if ((c.mask & mb & (c.value ^ vb)) != 0) s.unsat = true;
      c.mask |= mb;
      c.value |= static_cast<u8>(vb & mb);
    }
  }
  return s;
}

/// Every packet matching `later` also matches `earlier`?  Sound only when
/// `earlier` is var-free: `later`'s concrete constraints over-approximate
/// its match set, so if they already force `earlier`'s constraints, the
/// true match set (possibly shrunk further by vars) is still contained.
bool shadows(const FilterShape& earlier, const FilterShape& later) {
  if (earlier.has_var || earlier.unsat || later.unsat) return false;
  for (const auto& [off, ce] : earlier.bytes) {
    auto it = later.bytes.find(off);
    if (it == later.bytes.end()) return false;
    const ByteCon& cl = it->second;
    if ((cl.mask & ce.mask) != ce.mask) return false;
    if (((cl.value ^ ce.value) & ce.mask) != 0) return false;
  }
  return true;
}

/// Can some packet satisfy both shapes' concrete constraints?
bool may_overlap(const FilterShape& a, const FilterShape& b) {
  if (a.unsat || b.unsat) return false;
  for (const auto& [off, ca] : a.bytes) {
    auto it = b.bytes.find(off);
    if (it == b.bytes.end()) continue;
    const ByteCon& cb = it->second;
    if ((ca.mask & cb.mask & (ca.value ^ cb.value)) != 0) return false;
  }
  return true;
}

void check_filters(const AstScript& script, const TableSet& t,
                   std::vector<Diagnostic>& out) {
  const auto& entries = t.filters.entries;
  if (entries.size() != script.filters.size()) return;
  std::vector<FilterShape> shapes;
  shapes.reserve(entries.size());
  for (const auto& e : entries) shapes.push_back(shape_of(e));

  for (std::size_t j = 0; j < entries.size(); ++j) {
    if (shapes[j].unsat) {
      out.push_back({script.filters[j].loc,
                     "filter '" + entries[j].name +
                         "' can never match: its tuples demand conflicting "
                         "values for the same bits",
                     Severity::kError, "unsatisfiable-filter"});
      continue;
    }
    for (std::size_t i = 0; i < j; ++i) {
      if (shadows(shapes[i], shapes[j])) {
        out.push_back({script.filters[j].loc,
                       "filter '" + entries[j].name +
                           "' is unreachable: every packet it matches is "
                           "classified first as '" + entries[i].name +
                           "' (filters match in declaration order)",
                       Severity::kError, "shadowed-filter"});
        break;  // one shadowing witness is enough
      }
      if (may_overlap(shapes[i], shapes[j])) {
        out.push_back({script.filters[j].loc,
                       "filters '" + entries[i].name + "' and '" +
                           entries[j].name +
                           "' can match the same packet; classification "
                           "follows declaration order",
                       Severity::kWarning, "overlapping-filters"});
      }
    }
  }
}

// --- symbol liveness -------------------------------------------------------

void check_vars(const AstScript& script, const TableSet& t,
                std::vector<Diagnostic>& out) {
  for (std::size_t v = 0; v < t.filters.var_names.size(); ++v) {
    bool used = false;
    for (const auto& f : t.filters.entries) {
      for (const auto& tp : f.tuples) {
        if (tp.is_var() && tp.var == v) used = true;
      }
    }
    if (!used) {
      out.push_back({SourceLoc{1, 1},
                     "VAR '" + t.filters.var_names[v] +
                         "' is never used by any filter",
                     Severity::kWarning, "unbound-variable"});
    }
  }
  (void)script;
}

void check_dead_symbols(const AstScript& script, const AstScenario* sc,
                        const TableSet& t, std::vector<Diagnostic>& out) {
  // Filters: referenced by an event counter or a packet fault.
  if (t.filters.entries.size() == script.filters.size()) {
    for (std::size_t f = 0; f < t.filters.entries.size(); ++f) {
      bool used = false;
      for (const auto& c : t.counters.entries) {
        if (c.kind == core::CounterKind::kEvent && c.filter == f) used = true;
      }
      for (const auto& a : t.actions.entries) {
        if (core::is_packet_fault(a.kind) && a.filter == f) used = true;
      }
      if (!used) {
        out.push_back({script.filters[f].loc,
                       "filter '" + t.filters.entries[f].name +
                           "' is never referenced by a counter or fault "
                           "action",
                       Severity::kWarning, "dead-symbol"});
      }
    }
  }
  // Nodes: referenced by a counter endpoint/home or an action target.
  if (t.nodes.entries.size() == script.nodes.size()) {
    for (std::size_t n = 0; n < t.nodes.entries.size(); ++n) {
      bool used = false;
      for (const auto& c : t.counters.entries) {
        if (c.kind == core::CounterKind::kEvent) {
          if (c.src_node == n || c.dst_node == n) used = true;
        } else if (c.home == n) {
          used = true;
        }
      }
      for (const auto& a : t.actions.entries) {
        if (core::is_packet_fault(a.kind) &&
            (a.src_node == n || a.dst_node == n)) {
          used = true;
        }
        if (a.kind == ActionKind::kFail && a.fail_node == n) used = true;
      }
      if (!used) {
        out.push_back({script.nodes[n].loc,
                       "node '" + t.nodes.entries[n].name +
                           "' is never referenced by a counter or action",
                       Severity::kWarning, "dead-symbol"});
      }
    }
  }
  // Counters: a counter nobody reads can affect nothing.
  if (sc != nullptr && t.counters.entries.size() == sc->counters.size()) {
    for (std::size_t c = 0; c < t.counters.entries.size(); ++c) {
      if (t.counters.entries[c].terms.empty()) {
        out.push_back({sc->counters[c].loc,
                       "counter '" + t.counters.entries[c].name +
                           "' is never read by any condition",
                       Severity::kWarning, "dead-symbol"});
      }
    }
  }
}

// --- condition satisfiability ---------------------------------------------

Interval operand_interval(const TableSet& t, const core::Operand& o) {
  if (o.is_counter) return counter_value_interval(t, o.counter);
  return {o.constant, o.constant};
}

Truth truth_not(Truth x) {
  if (x == Truth::kTrue) return Truth::kFalse;
  if (x == Truth::kFalse) return Truth::kTrue;
  return Truth::kUnknown;
}

Truth truth_and(Truth a, Truth b) {
  if (a == Truth::kFalse || b == Truth::kFalse) return Truth::kFalse;
  if (a == Truth::kTrue && b == Truth::kTrue) return Truth::kTrue;
  return Truth::kUnknown;
}

Truth truth_or(Truth a, Truth b) {
  if (a == Truth::kTrue || b == Truth::kTrue) return Truth::kTrue;
  if (a == Truth::kFalse && b == Truth::kFalse) return Truth::kFalse;
  return Truth::kUnknown;
}

void check_conditions(const AstScenario* sc, const TableSet& t,
                      std::vector<Diagnostic>& out) {
  if (sc == nullptr || t.conditions.entries.size() != sc->rules.size()) return;
  for (std::size_t c = 0; c < t.conditions.entries.size(); ++c) {
    const core::CondEntry& cond = t.conditions.entries[c];
    bool has_term = false;
    for (const CondInstr& in : cond.postfix) {
      if (in.op == core::BoolOp::kTerm) has_term = true;
    }
    Truth truth =
        eval_condition_interval(t, static_cast<core::CondId>(c));
    if (truth == Truth::kFalse) {
      out.push_back({sc->rules[c].loc,
                     "condition can never be true: no reachable counter "
                     "values satisfy it, so its actions never fire",
                     Severity::kError, "unsatisfiable-condition"});
    } else if (truth == Truth::kTrue && has_term) {
      out.push_back({sc->rules[c].loc,
                     "condition is always true; write (TRUE) if that is "
                     "intended",
                     Severity::kWarning, "always-true-condition"});
    }
  }
  // Event counters read by a condition must be enabled somewhere, or they
  // stay at zero forever (the engine only counts while enabled).
  if (t.counters.entries.size() == sc->counters.size()) {
    for (std::size_t c = 0; c < t.counters.entries.size(); ++c) {
      const CounterEntry& cnt = t.counters.entries[c];
      if (cnt.kind != core::CounterKind::kEvent || cnt.terms.empty()) {
        continue;
      }
      bool enabled = false;
      for (const ActionEntry& a : t.actions.entries) {
        if (a.counter == c && (a.kind == ActionKind::kEnableCntr ||
                               a.kind == ActionKind::kAssignCntr)) {
          enabled = true;
        }
      }
      if (!enabled) {
        out.push_back({sc->counters[c].loc,
                       "event counter '" + cnt.name +
                           "' is read by a condition but never enabled "
                           "(ENABLE_CNTR/ASSIGN_CNTR); it will stay 0",
                       Severity::kWarning, "never-enabled-counter"});
      }
    }
  }
}

// --- conflicting actions ---------------------------------------------------

void check_conflicting_actions(const AstScenario* sc, const TableSet& t,
                               std::vector<Diagnostic>& out) {
  if (sc == nullptr || t.conditions.entries.size() != sc->rules.size()) return;
  for (std::size_t c = 0; c < t.conditions.entries.size(); ++c) {
    const auto& actions = t.conditions.entries[c].actions;
    for (std::size_t j = 0; j < actions.size(); ++j) {
      const ActionEntry& later = t.actions.entries[actions[j]];
      if (!core::is_packet_fault(later.kind)) continue;
      for (std::size_t i = 0; i < j; ++i) {
        const ActionEntry& first = t.actions.entries[actions[i]];
        if (!core::is_packet_fault(first.kind)) continue;
        bool same_flow = first.filter == later.filter &&
                         first.src_node == later.src_node &&
                         first.dst_node == later.dst_node &&
                         first.dir == later.dir;
        bool one_drops = (first.kind == ActionKind::kDrop) !=
                         (later.kind == ActionKind::kDrop);
        if (same_flow && one_drops) {
          SourceLoc loc = sc->rules[c].loc;
          if (j < sc->rules[c].actions.size()) {
            loc = sc->rules[c].actions[j].loc;
          }
          out.push_back({loc,
                         std::string(core::to_string(first.kind)) + " and " +
                             core::to_string(later.kind) +
                             " target the same packets in one rule; dropped "
                             "packets cannot also be " +
                             (later.kind == ActionKind::kDrop ? "dropped"
                                                              : "faulted"),
                         Severity::kError, "conflicting-actions"});
        }
      }
    }
  }
}

// --- fault modifiers ---------------------------------------------------------

/// RATE(0)/RATE(1)/PROB(1.0) pass every matching packet through, exactly
/// like the unmodified action — almost certainly a misunderstanding of the
/// modifier (e.g. expecting RATE(1) to mean "once").
void check_modifiers(const AstScenario* sc, std::vector<Diagnostic>& out) {
  if (sc == nullptr) return;
  for (const AstRule& r : sc->rules) {
    for (const AstAction& a : r.actions) {
      if (a.mod == AstAction::ModKind::kRate && a.mod_rate <= 1) {
        out.push_back({a.mod_loc,
                       "RATE(" + std::to_string(a.mod_rate) +
                           ") is a no-op: the fault still fires on every "
                           "matching packet; use RATE(2) or higher, or drop "
                           "the modifier",
                       Severity::kWarning, "modifier-no-op"});
      } else if (a.mod == AstAction::ModKind::kProb && a.mod_prob >= 1.0) {
        out.push_back({a.mod_loc,
                       "PROB(1.0) is a no-op: the fault still fires on "
                           "every matching packet; use a probability below "
                           "1, or drop the modifier",
                       Severity::kWarning, "modifier-no-op"});
      }
    }
  }
}

// --- cross-node counter cycles ---------------------------------------------

/// Counters read by a condition's postfix program.
std::set<CounterId> cond_reads(const TableSet& t, const core::CondEntry& c) {
  std::set<CounterId> reads;
  for (const CondInstr& in : c.postfix) {
    if (in.op != core::BoolOp::kTerm) continue;
    const core::TermEntry& term = t.terms.entries[in.term];
    if (term.lhs.is_counter) reads.insert(term.lhs.counter);
    if (term.rhs.is_counter) reads.insert(term.rhs.counter);
  }
  return reads;
}

void check_cross_node_cycles(const AstScenario* sc, const TableSet& t,
                             std::vector<Diagnostic>& out) {
  if (sc == nullptr) return;
  const std::size_t n = t.counters.entries.size();
  if (n == 0 || n != sc->counters.size()) return;
  // counter -> counters its value can influence (read triggers write).
  std::vector<std::set<CounterId>> adj(n);
  for (const core::CondEntry& cond : t.conditions.entries) {
    std::set<CounterId> reads = cond_reads(t, cond);
    for (core::ActionId aid : cond.actions) {
      const ActionEntry& a = t.actions.entries[aid];
      if (a.counter == kInvalidId) continue;
      for (CounterId r : reads) adj[r].insert(a.counter);
    }
  }
  // Iterative reachability: cycle(i) iff i reaches itself through >=1 edge.
  // Tiny tables make the O(n^2) closure plenty fast.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (CounterId j : adj[i]) reach[i][j] = true;
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  // Group mutually-reachable counters (SCCs with a cycle) and warn when one
  // spans more than one home node.
  std::vector<bool> reported(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (reported[i] || !reach[i][i]) continue;
    std::vector<CounterId> scc;
    std::set<NodeId> homes;
    for (std::size_t j = 0; j < n; ++j) {
      if (reach[i][j] && reach[j][i] && reach[j][j]) {
        scc.push_back(static_cast<CounterId>(j));
        reported[j] = true;
        homes.insert(t.counters.entries[j].home);
      }
    }
    if (scc.size() < 2 || homes.size() < 2) continue;
    std::string names;
    for (CounterId id : scc) {
      if (!names.empty()) names += ", ";
      names += t.counters.entries[id].name;
    }
    out.push_back({sc->counters[scc.front()].loc,
                   "counters " + names +
                       " form a feedback cycle spanning " +
                       std::to_string(homes.size()) +
                       " nodes; distributed evaluation of this loop is "
                       "subject to notification latency and may race",
                   Severity::kWarning, "cross-node-cycle"});
  }
}

// --- termination -----------------------------------------------------------

void check_termination(const AstScenario* sc, const TableSet& t,
                       std::vector<Diagnostic>& out) {
  if (sc == nullptr) return;
  if (t.inactivity_timeout.ns > 0) return;
  for (const ActionEntry& a : t.actions.entries) {
    if (a.kind == ActionKind::kStop || a.kind == ActionKind::kFail) return;
  }
  out.push_back({sc->loc,
                 "scenario '" + t.scenario_name +
                     "' has no STOP or FAIL action and no timeout; the run "
                     "can only end externally",
                 Severity::kWarning, "no-stop"});
}

}  // namespace

// --- interval domain -------------------------------------------------------

i64 interval_sat_add(i64 a, i64 b) {
  // Sentinels absorb: ±inf plus any finite delta stays ±inf.  Without this
  // (and the overflow clamp below) widening a bound that sits at a sentinel
  // would wrap, and a wrapped bound inverts the interval — the abstraction
  // silently stops being an over-approximation.
  if (a == kIntervalPosInf || a == kIntervalNegInf) return a;
  if (b == kIntervalPosInf || b == kIntervalNegInf) return b;
  i64 out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return b > 0 ? kIntervalPosInf : kIntervalNegInf;
  }
  return out;
}

Interval interval_offset(Interval iv, i64 delta) {
  return Interval{interval_sat_add(iv.lo, delta),
                  interval_sat_add(iv.hi, delta)};
}

Truth eval_rel_interval(core::RelOp op, Interval a, Interval b) {
  switch (op) {
    case core::RelOp::kGt:
      if (a.lo > b.hi) return Truth::kTrue;
      if (a.hi <= b.lo) return Truth::kFalse;
      return Truth::kUnknown;
    case core::RelOp::kLt:
      if (a.hi < b.lo) return Truth::kTrue;
      if (a.lo >= b.hi) return Truth::kFalse;
      return Truth::kUnknown;
    case core::RelOp::kGe:
      if (a.lo >= b.hi) return Truth::kTrue;
      if (a.hi < b.lo) return Truth::kFalse;
      return Truth::kUnknown;
    case core::RelOp::kLe:
      if (a.hi <= b.lo) return Truth::kTrue;
      if (a.lo > b.hi) return Truth::kFalse;
      return Truth::kUnknown;
    case core::RelOp::kEq:
      if (a.lo == a.hi && b.lo == b.hi && a.lo == b.lo) return Truth::kTrue;
      if (a.hi < b.lo || b.hi < a.lo) return Truth::kFalse;
      return Truth::kUnknown;
    case core::RelOp::kNe:
      return truth_not(eval_rel_interval(core::RelOp::kEq, a, b));
  }
  return Truth::kUnknown;
}

Interval counter_value_interval(const core::TableSet& tables,
                                core::CounterId id) {
  Interval iv{0, 0};
  if (id >= tables.counters.entries.size()) return iv;
  if (tables.counters.entries[id].kind == core::CounterKind::kEvent) {
    // Counts every matching packet while enabled — unbounded above.
    iv.hi = kIntervalPosInf;
  }
  for (const core::ActionEntry& a : tables.actions.entries) {
    if (a.counter != id) continue;
    switch (a.kind) {
      case core::ActionKind::kAssignCntr:
        iv.lo = std::min(iv.lo, a.value);
        iv.hi = std::max(iv.hi, a.value);
        break;
      case core::ActionKind::kIncrCntr:
        iv.hi = kIntervalPosInf;
        break;
      case core::ActionKind::kDecrCntr:
        iv.lo = kIntervalNegInf;
        break;
      case core::ActionKind::kSetCurtime:
      case core::ActionKind::kElapsedTime:
        iv.hi = kIntervalPosInf;  // monotone clock values, >= 0
        break;
      default:
        break;  // RESET lands on 0 (already in range); ENABLE/DISABLE
                // gate counting without writing a value
    }
  }
  return iv;
}

Truth eval_condition_interval(const core::TableSet& tables,
                              core::CondId id) {
  if (id >= tables.conditions.entries.size()) return Truth::kUnknown;
  std::vector<Truth> stack;
  for (const core::CondInstr& in : tables.conditions.entries[id].postfix) {
    switch (in.op) {
      case core::BoolOp::kTrue:
        stack.push_back(Truth::kTrue);
        break;
      case core::BoolOp::kTerm: {
        if (in.term >= tables.terms.entries.size()) return Truth::kUnknown;
        const core::TermEntry& term = tables.terms.entries[in.term];
        stack.push_back(eval_rel_interval(
            term.op, operand_interval(tables, term.lhs),
            operand_interval(tables, term.rhs)));
        break;
      }
      case core::BoolOp::kNot: {
        if (stack.empty()) return Truth::kUnknown;
        stack.back() = truth_not(stack.back());
        break;
      }
      case core::BoolOp::kAnd:
      case core::BoolOp::kOr: {
        if (stack.size() < 2) return Truth::kUnknown;
        Truth b = stack.back();
        stack.pop_back();
        Truth a = stack.back();
        stack.back() =
            in.op == core::BoolOp::kAnd ? truth_and(a, b) : truth_or(a, b);
        break;
      }
    }
  }
  return stack.size() == 1 ? stack.back() : Truth::kUnknown;
}

// --- entry points ----------------------------------------------------------

std::vector<Diagnostic> lint_script(const AstScript& script,
                                    const core::TableSet& tables) {
  std::vector<Diagnostic> out;
  const AstScenario* sc = nullptr;
  for (const AstScenario& s : script.scenarios) {
    if (s.name == tables.scenario_name) {
      sc = &s;
      break;
    }
  }
  check_filters(script, tables, out);
  check_vars(script, tables, out);
  check_dead_symbols(script, sc, tables, out);
  check_conditions(sc, tables, out);
  check_conflicting_actions(sc, tables, out);
  check_modifiers(sc, out);
  check_cross_node_cycles(sc, tables, out);
  check_termination(sc, tables, out);
  sort_diagnostics(out);
  return out;
}

std::vector<Diagnostic> lint_tables(const core::TableSet& tables) {
  std::vector<Diagnostic> out;
  auto dup_check = [&](const std::string& what, const std::string& name,
                       std::set<std::string>& seen) {
    if (!seen.insert(name).second) {
      out.push_back({SourceLoc{0, 0},
                     "duplicate " + what + " '" + name +
                         "' in table set: lookups silently resolve to the "
                         "first entry",
                     Severity::kError, "duplicate-name"});
    }
  };
  std::set<std::string> filters, nodes, counters;
  for (const auto& e : tables.filters.entries) {
    dup_check("packet type", e.name, filters);
  }
  for (const auto& e : tables.nodes.entries) dup_check("node", e.name, nodes);
  for (const auto& e : tables.counters.entries) {
    dup_check("counter", e.name, counters);
  }
  std::set<std::string> macs;
  for (const auto& e : tables.nodes.entries) {
    if (!macs.insert(e.mac.to_string()).second) {
      out.push_back({SourceLoc{0, 0},
                     "nodes share MAC address " + e.mac.to_string() +
                         "; packet attribution is ambiguous",
                     Severity::kWarning, "duplicate-name"});
    }
  }
  return out;
}

}  // namespace vwire::fsl
