// FSL compiler: AST → the six run-time tables.
//
// Resolves every name, normalizes terms (counter on the left), deduplicates
// shared terms, chooses the node that owns each counter/term/action, and
// precomputes the dependency fan-out the engines chase at run time
// (paper §5.1, Fig 3).
#pragma once

#include "vwire/core/fsl/ast.hpp"

namespace vwire::fsl {

struct CompileOptions {
  /// Scenario to compile; empty = the script's first scenario.
  std::string scenario;
  /// Run the static-analysis (lint) passes after a clean compile and
  /// append their findings to the diagnostics.  Only honoured by the
  /// checked entry points; `compile`/`compile_script` ignore it.
  bool lint{false};
};

/// Outcome of a checked compile: the tables (complete when `ok()`, partial
/// best-effort otherwise) plus every diagnostic, sorted by source location.
struct CompileResult {
  core::TableSet tables;
  std::vector<Diagnostic> diagnostics;
  bool ok() const { return !has_errors(diagnostics); }
};

/// Compiles a parsed script; throws ParseError on semantic errors.
core::TableSet compile(const AstScript& script, const CompileOptions& = {});

/// Convenience: parse + compile in one step.
core::TableSet compile_script(std::string_view source,
                              const CompileOptions& = {});

/// Accumulating form: never throws.  Records every semantic error with
/// per-declaration recovery, and (with `opts.lint`) runs the lint passes
/// when compilation produced no errors.
CompileResult compile_checked(const AstScript& script,
                              const CompileOptions& = {});

/// Parse + compile + (optionally) lint in one step; never throws.  All
/// syntax, semantic and lint diagnostics land in the result.
CompileResult check_script(std::string_view source,
                           const CompileOptions& = {});

}  // namespace vwire::fsl
