// FSL compiler: AST → the six run-time tables.
//
// Resolves every name, normalizes terms (counter on the left), deduplicates
// shared terms, chooses the node that owns each counter/term/action, and
// precomputes the dependency fan-out the engines chase at run time
// (paper §5.1, Fig 3).
#pragma once

#include "vwire/core/fsl/ast.hpp"

namespace vwire::fsl {

struct CompileOptions {
  /// Scenario to compile; empty = the script's first scenario.
  std::string scenario;
};

/// Compiles a parsed script; throws ParseError on semantic errors.
core::TableSet compile(const AstScript& script, const CompileOptions& = {});

/// Convenience: parse + compile in one step.
core::TableSet compile_script(std::string_view source,
                              const CompileOptions& = {});

}  // namespace vwire::fsl
