// FSL recursive-descent parser.
#pragma once

#include "vwire/core/fsl/ast.hpp"
#include "vwire/core/fsl/lexer.hpp"

namespace vwire::fsl {

/// Parses a complete script; throws ParseError on the first syntax error.
AstScript parse_script(std::string_view source);

/// Accumulating form: lexes and parses with panic-mode error recovery
/// (synchronizing on ';', section boundaries and END), recording every
/// syntax error in `diags` instead of throwing.  The returned AST contains
/// every construct that parsed cleanly; erroneous entries are dropped.
AstScript parse_script(std::string_view source,
                       std::vector<Diagnostic>& diags);

}  // namespace vwire::fsl
