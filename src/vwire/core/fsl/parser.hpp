// FSL recursive-descent parser.
#pragma once

#include "vwire/core/fsl/ast.hpp"
#include "vwire/core/fsl/lexer.hpp"

namespace vwire::fsl {

/// Parses a complete script; throws ParseError on the first syntax error.
AstScript parse_script(std::string_view source);

}  // namespace vwire::fsl
