// AST pretty-printing, used by diagnostics and parser tests.
#include "vwire/core/fsl/ast.hpp"

#include <sstream>

namespace vwire::fsl {

namespace {

void dump_cond(const AstCond& c, std::ostream& os) {
  switch (c.kind) {
    case AstCond::Kind::kTrue:
      os << "TRUE";
      return;
    case AstCond::Kind::kTerm:
      if (c.term.lhs.is_int) {
        os << c.term.lhs.value;
      } else {
        os << c.term.lhs.name;
      }
      os << ' ' << core::to_string(c.term.op) << ' ';
      if (c.term.rhs.is_int) {
        os << c.term.rhs.value;
      } else {
        os << c.term.rhs.name;
      }
      return;
    case AstCond::Kind::kAnd:
      os << '(';
      dump_cond(*c.a, os);
      os << ") && (";
      dump_cond(*c.b, os);
      os << ')';
      return;
    case AstCond::Kind::kOr:
      os << '(';
      dump_cond(*c.a, os);
      os << ") || (";
      dump_cond(*c.b, os);
      os << ')';
      return;
    case AstCond::Kind::kNot:
      os << "!(";
      dump_cond(*c.a, os);
      os << ')';
      return;
  }
}

}  // namespace

std::string dump(const AstCond& cond) {
  std::ostringstream os;
  dump_cond(cond, os);
  return os.str();
}

std::string dump(const AstScript& script) {
  std::ostringstream os;
  os << "vars: " << script.vars.size() << ", filters: "
     << script.filters.size() << ", nodes: " << script.nodes.size()
     << ", scenarios: " << script.scenarios.size() << '\n';
  for (const auto& sc : script.scenarios) {
    os << "scenario " << sc.name << ": " << sc.counters.size()
       << " counters, " << sc.rules.size() << " rules\n";
    for (const auto& r : sc.rules) {
      os << "  (";
      dump_cond(r.cond, os);
      os << ") >> ";
      for (std::size_t i = 0; i < r.actions.size(); ++i) {
        if (i) os << "; ";
        os << r.actions[i].name << "/" << r.actions[i].args.size();
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace vwire::fsl
