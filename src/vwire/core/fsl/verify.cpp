// fsl::mc — explicit-state model checker over the compiled tables
// (header: verify.hpp, design: DESIGN.md §13).
//
// Structure: `Checker` explores the product automaton breadth-first.  One
// transition simulates one packet event end to end exactly in the engine's
// order (classify/count with eligibility snapshotted before the bump,
// cascade rising edges, then the level-triggered fault phase — SEND side
// at the source, RECV side at the destination unless a DROP consumed the
// packet).  Nondeterminism (PROB draws, comparisons the value domain
// cannot decide) is enumerated by re-running the simulation under every
// choice prefix, so the simulation itself stays straight-line code.
#include "vwire/core/fsl/verify.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "vwire/core/fsl/lint.hpp"
#include "vwire/obs/json.hpp"

namespace vwire::fsl::mc {

namespace {

using core::ActionEntry;
using core::ActionId;
using core::ActionKind;
using core::CondId;
using core::CounterId;
using core::FilterId;
using core::NodeId;
using core::RelOp;
using core::TableSet;
using core::kInvalidId;

constexpr u32 kRoot = 0xffffffffu;
constexpr u16 kNoFlow = 0xffff;

/// One physical packet the checker can inject: every (filter, src, dst)
/// triple some event counter or packet-fault action cares about.
struct Flow {
  FilterId filter{kInvalidId};
  NodeId src{kInvalidId};
  NodeId dst{kInvalidId};

  bool operator==(const Flow& o) const {
    return filter == o.filter && src == o.src && dst == o.dst;
  }
};

/// One executed action on a transition: a rising-edge firing (fault ==
/// false) or a level-triggered fault application (fault == true).
struct Label {
  CondId cond{kInvalidId};
  ActionId action{kInvalidId};
  bool fault{false};
};

struct AbsState {
  std::vector<i32> val;        ///< per counter, encoded (see Checker)
  std::vector<u8> enabled;     ///< per counter
  std::vector<u8> cond_true;   ///< per condition, last evaluated truth
  std::vector<u16> rate_phase; ///< per RATE-modified action
  std::vector<u8> failed;      ///< per node
  u8 stopped{0};

  std::string key() const {
    std::string k;
    k.reserve(val.size() * 4 + enabled.size() + cond_true.size() +
              rate_phase.size() * 2 + failed.size() + 1);
    for (i32 v : val) {
      const auto u = static_cast<u32>(v);
      k.push_back(static_cast<char>(u & 0xff));
      k.push_back(static_cast<char>((u >> 8) & 0xff));
      k.push_back(static_cast<char>((u >> 16) & 0xff));
      k.push_back(static_cast<char>((u >> 24) & 0xff));
    }
    k.append(enabled.begin(), enabled.end());
    k.append(cond_true.begin(), cond_true.end());
    for (u16 p : rate_phase) {
      k.push_back(static_cast<char>(p & 0xff));
      k.push_back(static_cast<char>((p >> 8) & 0xff));
    }
    k.append(failed.begin(), failed.end());
    k.push_back(static_cast<char>(stopped));
    return k;
  }
};

struct Edge {
  u32 from{kRoot};
  u32 to{0};
  u16 flow{kNoFlow};  ///< index into Checker::flows_; kNoFlow = init sweep
  bool nondet{false};
  std::vector<Label> labels;
};

/// Consumes pre-recorded nondeterministic choices; flags when the
/// simulation needs more than the prefix provides.
struct Chooser {
  const std::vector<u8>* seq{nullptr};
  std::size_t idx{0};
  bool overflow{false};
  bool used{false};

  bool choose() {
    used = true;
    if (idx < seq->size()) return (*seq)[idx++] != 0;
    overflow = true;
    return false;
  }
};

Truth truth_not(Truth t) {
  if (t == Truth::kUnknown) return Truth::kUnknown;
  return t == Truth::kTrue ? Truth::kFalse : Truth::kTrue;
}

Truth truth_and(Truth a, Truth b) {
  if (a == Truth::kFalse || b == Truth::kFalse) return Truth::kFalse;
  if (a == Truth::kTrue && b == Truth::kTrue) return Truth::kTrue;
  return Truth::kUnknown;
}

Truth truth_or(Truth a, Truth b) {
  if (a == Truth::kTrue || b == Truth::kTrue) return Truth::kTrue;
  if (a == Truth::kFalse && b == Truth::kFalse) return Truth::kFalse;
  return Truth::kUnknown;
}

RelOp flip(RelOp op) {
  switch (op) {
    case RelOp::kGt: return RelOp::kLt;
    case RelOp::kLt: return RelOp::kGt;
    case RelOp::kGe: return RelOp::kLe;
    case RelOp::kLe: return RelOp::kGe;
    case RelOp::kEq:
    case RelOp::kNe: return op;
  }
  return op;
}

/// Truth of `op` given that the left side is definitely greater.
Truth rel_given_gt(RelOp op) {
  switch (op) {
    case RelOp::kGt:
    case RelOp::kGe:
    case RelOp::kNe: return Truth::kTrue;
    default: return Truth::kFalse;
  }
}

/// Truth of `op` given that the left side is definitely smaller.
Truth rel_given_lt(RelOp op) {
  switch (op) {
    case RelOp::kLt:
    case RelOp::kLe:
    case RelOp::kNe: return Truth::kTrue;
    default: return Truth::kFalse;
  }
}

class Checker {
 public:
  Checker(const TableSet& t, const VerifyOptions& opts) : t_(t), opts_(opts) {
    prepare();
  }

  VerifyResult run();

 private:
  struct Succ {
    AbsState st;
    std::vector<Label> labels;
    bool nondet{false};
  };

  // --- value domain --------------------------------------------------------
  // Concrete values live in [-bound_, bound_]; top_/bot_ encode "above" /
  // "below"; any_ encodes clock-valued counters (SET_CURTIME/ELAPSED_TIME)
  // whose magnitude the abstraction does not track at all.

  bool concrete(i32 v) const { return v >= -bound_ && v <= bound_; }

  i32 abs_const(i64 c) const {
    if (c > bound_) return top_;
    if (c < -bound_) return bot_;
    return static_cast<i32>(c);
  }

  i32 abs_add(i32 v, i64 d) const {
    if (v == any_) return any_;
    if (v == top_) return d >= 0 ? top_ : any_;
    if (v == bot_) return d <= 0 ? bot_ : any_;
    return abs_const(interval_sat_add(v, d));
  }

  Truth cmp_const(i32 a, RelOp op, i64 c) const {
    if (a == any_) return Truth::kUnknown;
    if (a == top_) {
      return c <= bound_ ? rel_given_gt(op) : Truth::kUnknown;
    }
    if (a == bot_) {
      return c >= -bound_ ? rel_given_lt(op) : Truth::kUnknown;
    }
    return core::eval_rel(op, a, c) ? Truth::kTrue : Truth::kFalse;
  }

  Truth cmp_abs(i32 a, RelOp op, i32 b) const {
    if (concrete(a) && concrete(b)) {
      return core::eval_rel(op, a, b) ? Truth::kTrue : Truth::kFalse;
    }
    if (concrete(b)) return cmp_const(a, op, b);
    if (concrete(a)) return cmp_const(b, flip(op), a);
    if (a == any_ || b == any_) return Truth::kUnknown;
    if (a == top_ && b == bot_) return rel_given_gt(op);
    if (a == bot_ && b == top_) return rel_given_lt(op);
    return Truth::kUnknown;  // TOP vs TOP / BOT vs BOT
  }

  // --- setup ---------------------------------------------------------------

  void prepare() {
    const std::size_t nc = t_.counters.entries.size();
    const std::size_t nconds = t_.conditions.entries.size();

    // Small-constant bound K: every constant a term compares against (or an
    // action writes) stays concrete, capped by max_constant so a pathological
    // script cannot force a huge explicit range.
    i64 k = 4;
    const i64 cap =
        std::min<i64>(std::max<i64>(opts_.max_constant, 4), 1 << 20);
    auto widen = [&k, cap](i64 c) {
      if (c < 0) c = c == std::numeric_limits<i64>::min() ? cap : -c;
      k = std::max(k, std::min(interval_sat_add(c, 1), cap));
    };
    for (const auto& te : t_.terms.entries) {
      if (!te.lhs.is_counter) widen(te.lhs.constant);
      if (!te.rhs.is_counter) widen(te.rhs.constant);
    }
    for (const auto& a : t_.actions.entries) {
      if (a.kind == ActionKind::kAssignCntr ||
          a.kind == ActionKind::kIncrCntr ||
          a.kind == ActionKind::kDecrCntr) {
        widen(a.value);
      }
    }
    bound_ = static_cast<i32>(k + 1);
    top_ = bound_ + 1;
    bot_ = -(bound_ + 1);
    any_ = bound_ + 2;

    // Counter → dependent conditions, for the resolved-truth cache.
    cond_reads_.assign(nconds, {});
    counter_conds_.assign(nc, {});
    for (std::size_t c = 0; c < nconds; ++c) {
      for (const core::CondInstr& in : t_.conditions.entries[c].postfix) {
        if (in.op != core::BoolOp::kTerm ||
            in.term >= t_.terms.entries.size()) {
          continue;
        }
        const core::TermEntry& te = t_.terms.entries[in.term];
        for (const core::Operand* o : {&te.lhs, &te.rhs}) {
          if (o->is_counter && o->counter < nc) {
            cond_reads_[c].push_back(o->counter);
            counter_conds_[o->counter].push_back(static_cast<CondId>(c));
          }
        }
      }
    }

    owning_.resize(t_.actions.entries.size());
    for (std::size_t a = 0; a < t_.actions.entries.size(); ++a) {
      owning_[a] = t_.owning_cond(static_cast<ActionId>(a));
    }

    rate_index_.assign(t_.actions.entries.size(), kInvalidId);
    u16 nrate = 0;
    for (std::size_t a = 0; a < t_.actions.entries.size(); ++a) {
      if (t_.actions.entries[a].rate_n >= 2) rate_index_[a] = nrate++;
    }
    nrate_ = nrate;

    auto add_flow = [this](FilterId f, NodeId s, NodeId d) {
      if (f == kInvalidId || s == kInvalidId || d == kInvalidId) return;
      Flow fl{f, s, d};
      if (std::find(flows_.begin(), flows_.end(), fl) == flows_.end()) {
        flows_.push_back(fl);
      }
    };
    for (const auto& ce : t_.counters.entries) {
      if (ce.kind == core::CounterKind::kEvent) {
        add_flow(ce.filter, ce.src_node, ce.dst_node);
      }
    }
    for (const auto& a : t_.actions.entries) {
      if (core::is_packet_fault(a.kind)) {
        add_flow(a.filter, a.src_node, a.dst_node);
      }
    }
  }

  AbsState zero_state() const {
    AbsState s;
    s.val.assign(t_.counters.entries.size(), 0);
    s.enabled.assign(t_.counters.entries.size(), 0);
    for (std::size_t c = 0; c < t_.counters.entries.size(); ++c) {
      // Local counters have no enable gate; event counters start disabled
      // until ENABLE_CNTR/ASSIGN_CNTR arms them.
      if (t_.counters.entries[c].kind == core::CounterKind::kLocal) {
        s.enabled[c] = 1;
      }
    }
    s.cond_true.assign(t_.conditions.entries.size(), 0);
    s.rate_phase.assign(nrate_, 0);
    s.failed.assign(t_.nodes.entries.size(), 0);
    return s;
  }

  // --- one-event simulation ------------------------------------------------

  void write_val(AbsState& st, CounterId c, i32 v) {
    st.val[c] = v;
    for (CondId d : counter_conds_[c]) resolved_[d] = -1;
  }

  Truth eval_cond(const AbsState& st, CondId id) const {
    std::vector<Truth> stack;
    for (const core::CondInstr& in : t_.conditions.entries[id].postfix) {
      switch (in.op) {
        case core::BoolOp::kTrue:
          stack.push_back(Truth::kTrue);
          break;
        case core::BoolOp::kTerm: {
          if (in.term >= t_.terms.entries.size()) return Truth::kUnknown;
          const core::TermEntry& te = t_.terms.entries[in.term];
          Truth t = Truth::kUnknown;
          if (te.lhs.is_counter && te.rhs.is_counter) {
            t = cmp_abs(st.val[te.lhs.counter], te.op,
                        st.val[te.rhs.counter]);
          } else if (te.lhs.is_counter) {
            t = cmp_const(st.val[te.lhs.counter], te.op, te.rhs.constant);
          } else if (te.rhs.is_counter) {
            t = cmp_const(st.val[te.rhs.counter], flip(te.op),
                          te.lhs.constant);
          } else {
            t = core::eval_rel(te.op, te.lhs.constant, te.rhs.constant)
                    ? Truth::kTrue
                    : Truth::kFalse;
          }
          stack.push_back(t);
          break;
        }
        case core::BoolOp::kNot:
          if (stack.empty()) return Truth::kUnknown;
          stack.back() = truth_not(stack.back());
          break;
        case core::BoolOp::kAnd:
        case core::BoolOp::kOr: {
          if (stack.size() < 2) return Truth::kUnknown;
          Truth b = stack.back();
          stack.pop_back();
          stack.back() = in.op == core::BoolOp::kAnd
                             ? truth_and(stack.back(), b)
                             : truth_or(stack.back(), b);
          break;
        }
      }
    }
    return stack.size() == 1 ? stack.back() : Truth::kUnknown;
  }

  bool cond_truth(const AbsState& st, CondId id, Chooser& ch) {
    Truth t = eval_cond(st, id);
    if (t != Truth::kUnknown) return t == Truth::kTrue;
    // The domain cannot decide: fork, but resolve each condition at most
    // once per event (until a dependency is written) so re-evaluation
    // inside the cascade loop does not flip-flop.
    if (resolved_[id] < 0) resolved_[id] = ch.choose() ? 1 : 0;
    return resolved_[id] == 1;
  }

  void fire(AbsState& st, CondId c, std::vector<Label>& labels) {
    for (ActionId a : t_.conditions.entries[c].actions) {
      const ActionEntry& e = t_.actions.entries[a];
      if (core::is_packet_fault(e.kind)) continue;  // level-triggered
      if (e.exec_node != kInvalidId && e.exec_node < st.failed.size() &&
          st.failed[e.exec_node] != 0) {
        continue;  // the engine that would execute this action is dead
      }
      labels.push_back({c, a, false});
      switch (e.kind) {
        case ActionKind::kAssignCntr:
          st.enabled[e.counter] = 1;  // ASSIGN arms event counters too
          write_val(st, e.counter, abs_const(e.value));
          break;
        case ActionKind::kEnableCntr:
          st.enabled[e.counter] = 1;
          break;
        case ActionKind::kDisableCntr:
          st.enabled[e.counter] = 0;
          break;
        case ActionKind::kIncrCntr:
          write_val(st, e.counter, abs_add(st.val[e.counter], e.value));
          break;
        case ActionKind::kDecrCntr:
          write_val(st, e.counter,
                    abs_add(st.val[e.counter],
                            e.value == std::numeric_limits<i64>::min()
                                ? std::numeric_limits<i64>::max()
                                : -e.value));
          break;
        case ActionKind::kResetCntr:
          write_val(st, e.counter, 0);
          break;
        case ActionKind::kSetCurtime:
        case ActionKind::kElapsedTime:
          write_val(st, e.counter, any_);  // clock-valued: untracked
          break;
        case ActionKind::kFail:
          if (e.fail_node < st.failed.size()) st.failed[e.fail_node] = 1;
          break;
        case ActionKind::kStop:
          st.stopped = 1;
          break;
        default:
          break;  // FLAG_ERROR: label only
      }
    }
  }

  void cascade(AbsState& st, std::vector<Label>& labels, Chooser& ch) {
    // Evaluate all conditions, fire rising edges, repeat until quiescent —
    // the same fixpoint the engine's dependency-driven cascade reaches,
    // with the same depth cap.
    for (int depth = 0; depth < 64; ++depth) {
      bool rose = false;
      for (CondId c = 0; c < t_.conditions.entries.size(); ++c) {
        const bool now = cond_truth(st, c, ch);
        if (now && st.cond_true[c] == 0) {
          st.cond_true[c] = 1;
          fire(st, c, labels);
          rose = true;
        } else {
          st.cond_true[c] = now ? 1 : 0;
        }
      }
      if (!rose) return;
    }
  }

  void count_side(AbsState& st, const Flow& f, net::Direction dir) {
    // Eligibility is snapshot before any bump: a counter enabled by this
    // same packet's cascade must not count it (engine rule).
    std::vector<CounterId> bump;
    for (std::size_t c = 0; c < t_.counters.entries.size(); ++c) {
      const core::CounterEntry& e = t_.counters.entries[c];
      if (e.kind != core::CounterKind::kEvent) continue;
      if (st.enabled[c] == 0) continue;
      if (e.filter != f.filter || e.src_node != f.src || e.dst_node != f.dst) {
        continue;
      }
      if (e.dir != dir) continue;
      if (e.home != kInvalidId && e.home < st.failed.size() &&
          st.failed[e.home] != 0) {
        continue;
      }
      bump.push_back(static_cast<CounterId>(c));
    }
    for (CounterId c : bump) write_val(st, c, abs_add(st.val[c], 1));
  }

  /// Level-triggered fault phase at one engine; at most one fault applies
  /// per packet per engine, in script order.
  void fault_phase(AbsState& st, const Flow& f, net::Direction dir,
                   std::vector<Label>& labels, Chooser& ch, bool* consumed,
                   int* copies, bool* nondet_prob) {
    for (std::size_t a = 0; a < t_.actions.entries.size(); ++a) {
      const ActionEntry& e = t_.actions.entries[a];
      if (!core::is_packet_fault(e.kind)) continue;
      if (e.filter != f.filter || e.src_node != f.src ||
          e.dst_node != f.dst || e.dir != dir) {
        continue;
      }
      if (e.exec_node != kInvalidId && e.exec_node < st.failed.size() &&
          st.failed[e.exec_node] != 0) {
        continue;
      }
      const CondId owner = owning_[a];
      if (owner == kInvalidId || st.cond_true[owner] == 0) continue;
      if (e.rate_n >= 2) {
        const u16 ri = rate_index_[a];
        const u16 phase =
            static_cast<u16>((st.rate_phase[ri] + 1) % e.rate_n);
        st.rate_phase[ri] = phase;
        if (phase != 0) continue;  // not the Nth match yet
      } else if (e.prob < 1.0) {
        *nondet_prob = true;
        if (!ch.choose()) continue;
      }
      labels.push_back({owner, static_cast<ActionId>(a), true});
      if (dir == net::Direction::kSend) {
        if (e.kind == ActionKind::kDrop) *consumed = true;
        if (e.kind == ActionKind::kDup) *copies = 2;
      }
      return;  // one fault per packet per engine
    }
  }

  /// Simulates one event under a fixed choice prefix.  flow_idx < 0 is the
  /// arming sweep (conditions evaluated once from the all-false state).
  /// Returns false when the event cannot happen (crashed source).
  bool simulate(const AbsState& in, int flow_idx, Chooser& ch, Succ* out) {
    out->st = in;
    out->labels.clear();
    AbsState& st = out->st;
    resolved_.assign(t_.conditions.entries.size(), -1);

    if (flow_idx < 0) {
      cascade(st, out->labels, ch);
    } else {
      const Flow& f = flows_[flow_idx];
      if (f.src < st.failed.size() && st.failed[f.src] != 0) return false;
      bool consumed = false;
      int copies = 1;
      bool prob = false;
      count_side(st, f, net::Direction::kSend);
      cascade(st, out->labels, ch);
      fault_phase(st, f, net::Direction::kSend, out->labels, ch, &consumed,
                  &copies, &prob);
      if (!consumed && !(f.dst < st.failed.size() && st.failed[f.dst] != 0)) {
        // A SEND-side DUP put a twin on the wire: the destination counts
        // (and runs its fault phase for) each copy.
        for (int i = 0; i < copies; ++i) {
          bool sink_consumed = false;
          int sink_copies = 1;
          count_side(st, f, net::Direction::kRecv);
          cascade(st, out->labels, ch);
          fault_phase(st, f, net::Direction::kRecv, out->labels, ch,
                      &sink_consumed, &sink_copies, &prob);
        }
      }
      (void)prob;
    }
    out->nondet = ch.used;
    return true;
  }

  /// All successors of `in` under event `flow_idx`, enumerating every
  /// nondeterministic choice (PROB draws, undecidable comparisons).
  std::vector<Succ> successors(const AbsState& in, int flow_idx) {
    std::vector<Succ> out;
    std::vector<std::vector<u8>> prefixes;
    prefixes.push_back({});
    std::size_t runs = 0;
    while (!prefixes.empty()) {
      if (++runs > 128) {
        truncated_ = true;
        break;
      }
      std::vector<u8> seq = std::move(prefixes.back());
      prefixes.pop_back();
      Chooser ch;
      ch.seq = &seq;
      Succ s;
      const bool ok = simulate(in, flow_idx, ch, &s);
      if (ch.overflow) {
        if (seq.size() >= 8) {
          truncated_ = true;  // too many choice points in one event
          continue;
        }
        std::vector<u8> a = seq;
        a.push_back(0);
        seq.push_back(1);
        prefixes.push_back(std::move(a));
        prefixes.push_back(std::move(seq));
        continue;
      }
      if (ok) out.push_back(std::move(s));
    }
    return out;
  }

  // --- exploration + analyses (definitions below) --------------------------

  const TableSet& t_;
  VerifyOptions opts_;

  i32 bound_{0};
  i32 top_{0};
  i32 bot_{0};
  i32 any_{0};

  std::vector<Flow> flows_;
  std::vector<std::vector<CounterId>> cond_reads_;
  std::vector<std::vector<CondId>> counter_conds_;
  std::vector<CondId> owning_;
  std::vector<u16> rate_index_;
  u16 nrate_{0};

  std::vector<signed char> resolved_;  ///< per-event cache: -1 unresolved
  bool truncated_{false};

  std::vector<AbsState> states_;
  std::vector<Edge> edges_;
  std::vector<u32> parent_edge_;  ///< edge that first discovered a state

  Witness make_witness(u32 edge_idx, const Label& label) const;
  void fire_bounds_and_cycles(VerifyResult* res) const;
};

Witness Checker::make_witness(u32 edge_idx, const Label& label) const {
  Witness w;
  w.rule = label.cond;
  w.action = label.action;
  std::vector<u16> ev_flows;
  bool nondet = false;
  {
    const Edge& e = edges_[edge_idx];
    nondet = e.nondet;
    if (e.flow != kNoFlow) ev_flows.push_back(e.flow);
    u32 s = e.from;
    while (s != kRoot) {
      const Edge& pe = edges_[parent_edge_[s]];
      if (pe.flow != kNoFlow) ev_flows.push_back(pe.flow);
      nondet = nondet || pe.nondet;
      s = pe.from;
    }
  }
  std::reverse(ev_flows.begin(), ev_flows.end());
  w.probabilistic = nondet;
  for (u16 fi : ev_flows) {
    const Flow& f = flows_[fi];
    if (!w.events.empty() && w.events.back().filter == f.filter &&
        w.events.back().src == f.src && w.events.back().dst == f.dst) {
      ++w.events.back().count;
    } else {
      w.events.push_back({f.filter, f.src, f.dst, 1});
    }
  }
  return w;
}

void Checker::fire_bounds_and_cycles(VerifyResult* res) const {
  const std::size_t n = states_.size();
  // Adjacency over real states (init edges hang off the virtual root and
  // cannot be part of a cycle).
  std::vector<std::vector<u32>> out_edges(n);
  for (u32 e = 0; e < edges_.size(); ++e) {
    if (edges_[e].from != kRoot) out_edges[edges_[e].from].push_back(e);
  }

  // Iterative Tarjan SCC.
  std::vector<u32> comp(n, kRoot), low(n, 0), num(n, 0);
  std::vector<u8> on_stack(n, 0);
  std::vector<u32> stack;
  u32 counter = 1, ncomp = 0;
  struct Frame {
    u32 v;
    std::size_t next_edge;
  };
  for (u32 root = 0; root < n; ++root) {
    if (num[root] != 0) continue;
    std::vector<Frame> call;
    call.push_back({root, 0});
    num[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!call.empty()) {
      Frame& fr = call.back();
      if (fr.next_edge < out_edges[fr.v].size()) {
        const u32 w = edges_[out_edges[fr.v][fr.next_edge++]].to;
        if (num[w] == 0) {
          num[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = 1;
          call.push_back({w, 0});
        } else if (on_stack[w] != 0) {
          low[fr.v] = std::min(low[fr.v], num[w]);
        }
      } else {
        const u32 v = fr.v;
        call.pop_back();
        if (!call.empty()) {
          low[call.back().v] = std::min(low[call.back().v], low[v]);
        }
        if (low[v] == num[v]) {
          while (true) {
            const u32 w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            comp[w] = ncomp;
            if (w == v) break;
          }
          ++ncomp;
        }
      }
    }
  }

  // Cycle census: which rules fire on an edge inside an SCC cycle
  // (including self-loops), and — for the livelock check — which rising
  // edges recur per component.
  std::vector<u8> rule_unbounded(t_.conditions.entries.size(), 0);
  std::vector<std::vector<CondId>> comp_rising(ncomp);
  for (const Edge& e : edges_) {
    if (e.from == kRoot || comp[e.from] != comp[e.to]) continue;
    for (const Label& l : e.labels) {
      rule_unbounded[l.cond] = 1;
      if (!l.fault) comp_rising[comp[e.from]].push_back(l.cond);
    }
  }

  // Fire bounds: longest path over the condensation DAG, per rule, with
  // edge weight = number of that rule's labels on the edge.  Tarjan emits
  // components in reverse topological order, so component ids ascending is
  // a valid processing order for edges comp[to] < comp[from]... not in
  // general; do a simple Kahn sort instead.
  std::vector<std::vector<u32>> comp_out(ncomp);
  std::vector<u32> indeg(ncomp, 0);
  for (u32 e = 0; e < edges_.size(); ++e) {
    if (edges_[e].from == kRoot) continue;
    const u32 a = comp[edges_[e].from], b = comp[edges_[e].to];
    if (a == b) continue;
    comp_out[a].push_back(e);
    ++indeg[b];
  }
  std::vector<u32> topo;
  topo.reserve(ncomp);
  for (u32 c = 0; c < ncomp; ++c) {
    if (indeg[c] == 0) topo.push_back(c);
  }
  for (std::size_t i = 0; i < topo.size(); ++i) {
    for (u32 e : comp_out[topo[i]]) {
      const u32 b = comp[edges_[e].to];
      if (--indeg[b] == 0) topo.push_back(b);
    }
  }

  for (RuleVerdict& rv : res->rules) {
    if (!rv.reachable()) {
      rv.fire_bound = 0;
      continue;
    }
    if (rule_unbounded[rv.rule] != 0) {
      rv.fire_bound = kUnbounded;
      continue;
    }
    // Base: labels on init edges land in the target's component.
    std::vector<u64> best(ncomp, 0);
    auto weight = [&](const Edge& e) {
      u64 w = 0;
      for (const Label& l : e.labels) {
        if (l.cond == rv.rule) ++w;
      }
      return w;
    };
    for (const Edge& e : edges_) {
      if (e.from == kRoot) {
        best[comp[e.to]] = std::max(best[comp[e.to]], weight(e));
      }
    }
    for (u32 c : topo) {
      for (u32 ei : comp_out[c]) {
        const Edge& e = edges_[ei];
        const u32 b = comp[e.to];
        best[b] = std::max(best[b], best[c] + weight(e));
      }
    }
    u64 bound = 0;
    for (u32 c = 0; c < ncomp; ++c) bound = std::max(bound, best[c]);
    rv.fire_bound = bound;
  }

  // Livelock: a reachable cycle on which rising edges of two or more
  // distinct rules recur, and the involved rules span two or more nodes —
  // the distributed generalization of lint's cross-node-cycle warning.
  int reported = 0;
  for (u32 c = 0; c < ncomp && reported < 4; ++c) {
    std::vector<CondId> rules = comp_rising[c];
    std::sort(rules.begin(), rules.end());
    rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
    if (rules.size() < 2) continue;
    std::vector<NodeId> nodes;
    for (CondId r : rules) {
      for (NodeId nd : t_.conditions.entries[r].eval_nodes) {
        if (std::find(nodes.begin(), nodes.end(), nd) == nodes.end()) {
          nodes.push_back(nd);
        }
      }
    }
    if (nodes.size() < 2) continue;
    const core::CondEntry& first = t_.conditions.entries[rules[0]];
    std::string msg = "rules at ";
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const core::CondEntry& ce = t_.conditions.entries[rules[i]];
      if (i != 0) msg += ", ";
      msg += "line " + std::to_string(ce.src_line);
    }
    msg += " re-fire each other in a reachable cycle across " +
           std::to_string(nodes.size()) +
           " nodes; distributed evaluation can livelock";
    res->diagnostics.push_back(Diagnostic{SourceLoc{first.src_line,
                                                    first.src_col},
                                          std::move(msg), Severity::kWarning,
                                          "fsl-verify-livelock"});
    ++reported;
  }
}

VerifyResult Checker::run() {
  VerifyResult res;
  const std::size_t nconds = t_.conditions.entries.size();

  std::unordered_map<std::string, u32> index;
  std::vector<u32> queue;
  std::size_t head = 0;
  bool capped = false;

  auto intern = [&](Succ&& s, u32 from, u16 flow) {
    const std::string k = s.st.key();
    auto it = index.find(k);
    u32 id;
    if (it == index.end()) {
      id = static_cast<u32>(states_.size());
      index.emplace(k, id);
      states_.push_back(std::move(s.st));
      parent_edge_.push_back(static_cast<u32>(edges_.size()));
      queue.push_back(id);
    } else {
      id = it->second;
    }
    edges_.push_back(Edge{from, id, flow, s.nondet, std::move(s.labels)});
  };

  for (Succ& s : successors(zero_state(), -1)) {
    intern(std::move(s), kRoot, kNoFlow);
  }
  while (head < queue.size()) {
    const u32 sid = queue[head++];
    if (states_[sid].stopped != 0) continue;  // terminal
    if (states_.size() >= opts_.max_states) {
      capped = true;
      break;
    }
    const AbsState cur = states_[sid];  // copy: states_ may reallocate
    for (u16 fi = 0; fi < flows_.size(); ++fi) {
      for (Succ& s : successors(cur, fi)) {
        intern(std::move(s), sid, fi);
      }
    }
  }

  res.states_explored = states_.size();
  res.complete = !capped && !truncated_;

  // Per-rule verdicts from edge labels.
  res.rules.resize(nconds);
  for (CondId c = 0; c < nconds; ++c) {
    RuleVerdict& rv = res.rules[c];
    rv.rule = c;
    rv.src_line = t_.conditions.entries[c].src_line;
    rv.src_col = t_.conditions.entries[c].src_col;
    rv.action_reachable.assign(t_.conditions.entries[c].actions.size(),
                               false);
  }
  for (const auto& a : t_.actions.entries) {
    if (a.kind == ActionKind::kStop) res.has_stop = true;
  }
  for (u32 e = 0; e < edges_.size(); ++e) {
    for (const Label& l : edges_[e].labels) {
      RuleVerdict& rv = res.rules[l.cond];
      const auto& acts = t_.conditions.entries[l.cond].actions;
      for (std::size_t i = 0; i < acts.size(); ++i) {
        if (acts[i] == l.action) rv.action_reachable[i] = true;
      }
      if (!rv.witness) rv.witness = make_witness(e, l);
      if (t_.actions.entries[l.action].kind == ActionKind::kStop &&
          !res.stop_reachable) {
        res.stop_reachable = true;
        res.stop_witness = make_witness(e, l);
      }
    }
  }

  fire_bounds_and_cycles(&res);

  // Diagnostics.  Unreachability verdicts are only sound when exploration
  // was exhaustive.
  if (res.complete) {
    // A rule can be dead two ways: its condition never becomes true, or the
    // condition does rise but every matching packet is claimed by an
    // earlier fault first (the engine applies one fault per packet per
    // engine, in script order) — distinguish them in the message.
    std::vector<u8> rose(nconds, 0);
    for (const AbsState& st : states_) {
      for (CondId c = 0; c < nconds; ++c) {
        if (st.cond_true[c] != 0) rose[c] = 1;
      }
    }
    for (const RuleVerdict& rv : res.rules) {
      if (rv.reachable()) continue;
      const bool shadowed = rose[rv.rule] != 0;
      res.diagnostics.push_back(Diagnostic{
          SourceLoc{rv.src_line, rv.src_col},
          shadowed
              ? "rule can never fire: its condition becomes true, but an "
                "earlier rule's fault always claims the matching packet "
                "first (one fault per packet per engine; " +
                    std::to_string(res.states_explored) + " states explored)"
              : "rule can never fire: no reachable state rises its "
                "condition (" +
                    std::to_string(res.states_explored) + " states explored)",
          Severity::kError, "fsl-verify-dead-rule"});
    }
    if (res.has_stop && !res.stop_reachable) {
      SourceLoc loc{};
      for (const auto& a : t_.actions.entries) {
        if (a.kind == ActionKind::kStop) {
          loc = SourceLoc{a.src_line, a.src_col};
          break;
        }
      }
      res.diagnostics.push_back(Diagnostic{
          loc,
          "scenario declares STOP but no event sequence reaches one: the "
          "run can only end by timeout",
          Severity::kWarning, "fsl-verify-no-stop-path"});
    }
    // Feasibility of syntactic action conflicts: lint flags DROP plus
    // another packet fault on one (filter, src, dst, dir) in the same rule;
    // if the shared trigger is unreachable the conflict cannot manifest.
    for (CondId c = 0; c < nconds; ++c) {
      const core::CondEntry& ce = t_.conditions.entries[c];
      for (std::size_t i = 0; i < ce.actions.size(); ++i) {
        const ActionEntry& ai = t_.actions.entries[ce.actions[i]];
        if (ai.kind != ActionKind::kDrop) continue;
        for (std::size_t j = 0; j < ce.actions.size(); ++j) {
          if (j == i) continue;
          const ActionEntry& aj = t_.actions.entries[ce.actions[j]];
          if (!core::is_packet_fault(aj.kind) ||
              aj.kind == ActionKind::kDrop) {
            continue;
          }
          if (ai.filter != aj.filter || ai.src_node != aj.src_node ||
              ai.dst_node != aj.dst_node || ai.dir != aj.dir) {
            continue;
          }
          if (!res.rules[c].reachable()) {
            res.diagnostics.push_back(Diagnostic{
                SourceLoc{aj.src_line, aj.src_col},
                "conflicting actions can never trigger: their rule is "
                "unreachable, so the DROP/" +
                    std::string(core::to_string(aj.kind)) +
                    " conflict cannot manifest",
                Severity::kNote, "fsl-verify-infeasible-conflict"});
          }
        }
      }
    }
  } else {
    res.diagnostics.push_back(Diagnostic{
        SourceLoc{0, 0},
        "state-space exploration capped at " +
            std::to_string(res.states_explored) +
            " states; unreachability verdicts suppressed",
        Severity::kNote, "fsl-verify-state-cap"});
  }

  sort_diagnostics(res.diagnostics);
  return res;
}

std::string name_of_filter(const TableSet& t, FilterId id) {
  return id < t.filters.entries.size() ? t.filters.entries[id].name
                                       : std::string("?");
}

std::string name_of_node(const TableSet& t, NodeId id) {
  return id < t.nodes.entries.size() ? t.nodes.entries[id].name
                                     : std::string("?");
}

}  // namespace

std::string Witness::to_json(const TableSet& tables) const {
  std::string out = "{\"v\":1,\"type\":\"verify_witness\",\"rule\":";
  out += std::to_string(rule);
  out += ",\"action\":";
  out += std::to_string(action);
  if (action < tables.actions.entries.size()) {
    out += ",\"kind\":\"";
    out += core::to_string(tables.actions.entries[action].kind);
    out += "\"";
  }
  out += ",\"probabilistic\":";
  out += probabilistic ? "true" : "false";
  out += ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const WitnessEvent& e = events[i];
    if (i != 0) out += ',';
    out += "\n {\"filter\":\"";
    out += obs::json_escape(name_of_filter(tables, e.filter));
    out += "\",\"src\":\"";
    out += obs::json_escape(name_of_node(tables, e.src));
    out += "\",\"dst\":\"";
    out += obs::json_escape(name_of_node(tables, e.dst));
    out += "\",\"count\":";
    out += std::to_string(e.count);
    out += "}";
  }
  out += "\n]}";
  return out;
}

Witness Witness::from_json(std::string_view text, const TableSet& tables) {
  const obs::JsonValue v = obs::JsonValue::parse(text);
  if (v.str("type") != "verify_witness") {
    throw std::runtime_error("not a verify_witness document");
  }
  Witness w;
  w.rule = static_cast<core::CondId>(v.uint("rule", kInvalidId));
  w.action = static_cast<core::ActionId>(v.uint("action", kInvalidId));
  w.probabilistic = v.boolean("probabilistic");
  for (const obs::JsonValue& ev : v.at("events").as_array()) {
    WitnessEvent e;
    e.filter = tables.filters.find(ev.str("filter"));
    e.src = tables.nodes.find(ev.str("src"));
    e.dst = tables.nodes.find(ev.str("dst"));
    e.count = static_cast<u32>(ev.uint("count", 1));
    if (e.filter == kInvalidId || e.src == kInvalidId ||
        e.dst == kInvalidId) {
      throw std::runtime_error("witness names unknown filter or node");
    }
    w.events.push_back(e);
  }
  return w;
}

std::string VerifyResult::to_json(const TableSet& tables) const {
  std::string out = "{\"v\":1,\"type\":\"fsl_verify\",\"complete\":";
  out += complete ? "true" : "false";
  out += ",\"states\":";
  out += std::to_string(states_explored);
  out += ",\"stop\":{\"declared\":";
  out += has_stop ? "true" : "false";
  out += ",\"reachable\":";
  out += stop_reachable ? "true" : "false";
  out += "},\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleVerdict& rv = rules[i];
    if (i != 0) out += ',';
    out += "\n {\"rule\":";
    out += std::to_string(rv.rule);
    out += ",\"line\":";
    out += std::to_string(rv.src_line);
    out += ",\"col\":";
    out += std::to_string(rv.src_col);
    out += ",\"reachable\":";
    out += rv.reachable() ? "true" : "false";
    out += ",\"fire_bound\":";
    out += rv.fire_bound == kUnbounded ? std::string("\"unbounded\"")
                                       : std::to_string(rv.fire_bound);
    out += ",\"witness\":";
    out += rv.witness ? rv.witness->to_json(tables) : std::string("null");
    out += "}";
  }
  out += "\n],\"diagnostics\":";
  out += diagnostics_to_json(diagnostics);
  out += "}";
  return out;
}

VerifyResult verify_tables(const TableSet& tables, const VerifyOptions& opts) {
  return Checker(tables, opts).run();
}

}  // namespace vwire::fsl::mc
