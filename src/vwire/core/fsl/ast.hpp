// FSL abstract syntax tree.
//
// The parser produces this name-based representation; the compiler resolves
// names and emits the six run-time tables.  Keeping the stages separate
// gives tests direct access to both and makes diagnostics precise.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vwire/core/fsl/diagnostics.hpp"
#include "vwire/core/tables/tables.hpp"

namespace vwire::fsl {

struct AstFilterTuple {
  SourceLoc loc;
  u16 offset{0};
  u16 length{0};
  std::optional<u64> mask;     ///< absent in the 3-element form
  std::optional<u64> pattern;  ///< absent when `var` names a VAR
  std::string var;
};

struct AstFilter {
  SourceLoc loc;
  std::string name;
  std::vector<AstFilterTuple> tuples;
};

struct AstNodeDef {
  SourceLoc loc;
  std::string name;
  std::string mac;
  std::string ip;
};

struct AstCounterDecl {
  SourceLoc loc;
  std::string name;
  bool is_local{false};
  // Event form: (pkt_type, src, dst, SEND|RECV).
  std::string pkt_type;
  std::string src_node;
  std::string dst_node;
  net::Direction dir{net::Direction::kRecv};
  // Local form: (node).
  std::string node;
};

struct AstOperand {
  SourceLoc loc;
  bool is_int{false};
  i64 value{0};
  std::string name;  ///< counter name when !is_int
};

struct AstTerm {
  AstOperand lhs;
  core::RelOp op{core::RelOp::kEq};
  AstOperand rhs;
};

/// Condition expression tree.
struct AstCond {
  enum class Kind : u8 { kTrue, kTerm, kAnd, kOr, kNot };
  Kind kind{Kind::kTrue};
  SourceLoc loc;
  AstTerm term;  ///< kTerm
  std::unique_ptr<AstCond> a, b;
};

/// A generic action argument; the compiler type-checks per action.
struct AstArg {
  enum class Kind : u8 { kIdent, kInt, kDuration, kTuple };
  Kind kind{Kind::kIdent};
  SourceLoc loc;
  std::string ident;
  i64 value{0};
  Duration duration{};
  std::vector<u64> tuple;  ///< "(off len [mask] value)" for MODIFY
};

struct AstAction {
  /// Optional trailing fault modifier: `DROP ... RATE(3)` fires on every
  /// 3rd matching packet, `DELAY ... PROB(0.25)` on each match with
  /// probability 0.25.  At most one modifier per action.
  enum class ModKind : u8 { kNone, kRate, kProb };

  SourceLoc loc;
  std::string name;
  std::vector<AstArg> args;
  ModKind mod{ModKind::kNone};
  SourceLoc mod_loc;   ///< location of the modifier keyword
  u32 mod_rate{0};     ///< kRate: N as written (compiler validates)
  double mod_prob{1.0};  ///< kProb: p as written (compiler validates)
};

struct AstRule {
  SourceLoc loc;
  AstCond cond;
  std::vector<AstAction> actions;
};

struct AstScenario {
  SourceLoc loc;
  std::string name;
  std::optional<Duration> timeout;
  std::vector<AstCounterDecl> counters;
  std::vector<AstRule> rules;
};

struct AstScript {
  std::vector<std::string> vars;
  std::vector<AstFilter> filters;
  std::vector<AstNodeDef> nodes;
  std::vector<AstScenario> scenarios;
};

/// Debug renderings used by tests and error reports.
std::string dump(const AstCond& cond);
std::string dump(const AstScript& script);

}  // namespace vwire::fsl
