// FSL lexer.
//
// Tokenizes the declarative scripting language of paper §4: identifiers,
// decimal and hex integers, real numbers (0.25, used by PROB modifiers),
// MAC literals (aa:bb:cc:dd:ee:ff), dotted-quad IP literals, duration
// literals (1sec, 500ms), the rule arrow `>>`, relational and boolean
// operators, and C-style comments.
#pragma once

#include <string_view>
#include <vector>

#include "vwire/core/fsl/diagnostics.hpp"

namespace vwire::fsl {

enum class TokKind : u8 {
  kIdent,
  kInt,       ///< decimal or 0x-hex; value in `value`
  kFloat,     ///< digits '.' digits (one dot only); value in `real`
  kMac,       ///< text form kept in `text`
  kIp,        ///< text form kept in `text`
  kDuration,  ///< value in `duration`
  kLParen,
  kRParen,
  kComma,
  kSemi,
  kColon,
  kArrow,  ///< >>
  kAndAnd,
  kOrOr,
  kNot,
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,  ///< = (FSL uses single '=' for equality; '==' also accepted)
  kNe,  ///< !=
  kEof,
};

const char* to_string(TokKind k);

struct Token {
  TokKind kind{TokKind::kEof};
  std::string text;  ///< identifier / literal spelling
  u64 value{0};      ///< kInt
  double real{0.0};  ///< kFloat
  bool is_hex{false};  ///< kInt written as 0x...
  Duration duration{};
  SourceLoc loc;
};

/// Tokenizes a full script; throws ParseError on bad characters/literals.
std::vector<Token> tokenize(std::string_view source);

/// Accumulating form: records bad characters/literals in `diags` (severity
/// kError, rule "syntax") and keeps scanning with best-effort recovery —
/// stray characters are skipped, malformed literals become zero-valued
/// tokens — so the parser always receives a full token stream.
std::vector<Token> tokenize(std::string_view source,
                            std::vector<Diagnostic>& diags);

}  // namespace vwire::fsl
