// FSL static analysis (lint).
//
// Checks a parsed script together with its compiled six-table form for
// problems the compiler's name resolution cannot see: unreachable filters,
// dead symbols, conditions that can never (or always) fire, conflicting
// actions on one trigger, cross-node counter feedback cycles, and scenarios
// with no termination path.
//
// Rule catalogue (severity in parentheses):
//   shadowed-filter         (error)   later filter fully subsumed by an
//                                     earlier one — first match wins, so it
//                                     can never classify a packet
//   unsatisfiable-filter    (error)   a filter whose own tuples demand
//                                     conflicting values for the same bits
//   overlapping-filters     (warning) two filters can match the same packet;
//                                     classification depends on order
//   unbound-variable        (warning) VAR declared but never used by a
//                                     filter (the unknown-VAR case is a
//                                     compile error with the same rule id)
//   dead-symbol             (warning) filter / node / counter that feeds no
//                                     counter, condition or action
//   unsatisfiable-condition (error)   condition provably false under
//                                     interval abstraction of counter values
//   always-true-condition   (warning) condition with at least one term that
//                                     is provably always true ((TRUE) is
//                                     exempt — it is idiomatic setup)
//   never-enabled-counter   (warning) event counter read by a condition but
//                                     never ENABLE_CNTR/ASSIGN_CNTR'd — it
//                                     can never count
//   conflicting-actions     (error)   DROP plus another packet fault on the
//                                     same (filter, src, dst, direction) in
//                                     one rule
//   cross-node-cycle        (warning) counter feedback cycle whose counters
//                                     live on more than one node —
//                                     distributed evaluation may race
//   no-stop                 (warning) no STOP/FAIL action and no scenario
//                                     timeout: the run cannot end by itself
//   duplicate-name          (error)   duplicate names inside a deserialized
//                                     table set (lint_tables)
#pragma once

#include <limits>

#include "vwire/core/fsl/ast.hpp"

namespace vwire::fsl {

// --- interval abstract domain (exposed for tests) --------------------------

/// Closed integer interval; i64 min/max act as -inf/+inf sentinels.
struct Interval {
  i64 lo{0};
  i64 hi{0};
};

inline constexpr i64 kIntervalNegInf = std::numeric_limits<i64>::min();
inline constexpr i64 kIntervalPosInf = std::numeric_limits<i64>::max();

/// Saturating interval addition: clamps at the ±inf sentinels instead of
/// wrapping.  Widening a bound by a script constant (INCR_CNTR with a value
/// near i64 max, or repeated widening steps in the verifier) must never
/// overflow past a sentinel — signed wrap is UB and would flip an interval's
/// order, turning an over-approximation into an under-approximation.
i64 interval_sat_add(i64 a, i64 b);

/// Both bounds shifted by `delta` with saturation; ±inf absorb.
Interval interval_offset(Interval iv, i64 delta);

/// Three-valued truth for abstract evaluation.
enum class Truth : u8 { kFalse, kTrue, kUnknown };

/// Abstract comparison: definitely-true / definitely-false over all
/// concrete value pairs drawn from the intervals, else unknown.
Truth eval_rel_interval(core::RelOp op, Interval a, Interval b);

/// Over-approximation of every value counter `id` can take at run time:
/// event counters count arbitrarily high; local counters only move through
/// the ASSIGN/INCR/DECR/RESET/SET_CURTIME/ELAPSED_TIME actions that target
/// them.
Interval counter_value_interval(const core::TableSet& tables,
                                core::CounterId id);

/// Abstract truth of condition `id` under counter_value_interval.
Truth eval_condition_interval(const core::TableSet& tables, core::CondId id);

// --- entry points ----------------------------------------------------------

/// Runs every lint pass over a script and its compiled tables.  The tables
/// must come from a clean compile of `script` (the passes rely on the 1:1
/// declaration-order correspondence between AST nodes and table entries for
/// source locations).  Returned diagnostics are sorted by location.
std::vector<Diagnostic> lint_script(const AstScript& script,
                                    const core::TableSet& tables);

/// Structural checks for a table set alone (e.g. deserialized from the
/// wire, where no AST exists): duplicate filter/node/counter names resolve
/// to the first entry and silently hide the rest.
std::vector<Diagnostic> lint_tables(const core::TableSet& tables);

}  // namespace vwire::fsl
