#include "vwire/core/api/testbed.hpp"

#include <algorithm>
#include <iterator>

#include "vwire/util/assert.hpp"

namespace vwire {

Testbed::Testbed(TestbedConfig config) : config_(config) {
  // Packet uids feed firing provenance; restarting the stream here makes a
  // run's telemetry a pure function of the testbed, so chaos replays can be
  // compared byte-for-byte.
  net::Packet::reset_uid_counter();
  if (config_.medium == TestbedConfig::MediumKind::kSwitchedLan) {
    medium_ = std::make_unique<phy::SwitchedLan>(sim_, config_.link,
                                                 config_.seed);
  } else {
    medium_ = std::make_unique<phy::SharedBus>(sim_, config_.link,
                                               config_.seed);
  }
  trace_ = trace::TraceBuffer(config_.trace_capacity);
  if (config_.telemetry) medium_->bind_metrics(metrics_, "phy.medium");
}

host::Node& Testbed::add_node(const std::string& name) {
  u32 idx = static_cast<u32>(entries_.size());
  return add_node(name, net::MacAddress::from_index(idx),
                  net::Ipv4Address(0x0a000001u + idx));  // 10.0.0.1+
}

host::Node& Testbed::add_node(const std::string& name, net::MacAddress mac,
                              net::Ipv4Address ip) {
  host::NodeParams params;
  params.name = name;
  params.mac = mac;
  params.ip = ip;
  params.rx_stack_cost = config_.rx_stack_cost;
  params.tx_stack_cost = config_.tx_stack_cost;

  auto node = std::make_unique<host::Node>(sim_, *medium_, params);
  NodeHandles h;
  h.node = node.get();
  if (config_.telemetry) node->set_metrics(&metrics_);
  {
    auto flight = std::make_unique<obs::FlightRecorder>();
    if (config_.telemetry && config_.flight_capacity > 0) {
      flight->reset(config_.flight_capacity, config_.trace_sample_rate);
    }
    node->set_flight_recorder(flight.get());
    flights_.push_back(std::move(flight));
  }

  if (config_.install_rll) {
    auto rll = std::make_unique<rll::RllLayer>(sim_, config_.rll);
    h.rll = static_cast<rll::RllLayer*>(&node->add_layer(std::move(rll)));
    if (config_.telemetry) h.rll->bind_metrics(metrics_, "rll." + name);
    h.rll->set_link_listener(
        [this, name](const net::MacAddress& peer, bool up) {
          if (config_.install_trace) {
            trace_.annotate(sim_.now(), name,
                            std::string(up ? "rll link-up peer "
                                           : "rll link-down peer ") +
                                peer.to_string());
          }
          if (link_hook_) link_hook_(name, peer, up);
        });
  }
  if (config_.install_trace) {
    auto tap = std::make_unique<trace::TapLayer>(trace_);
    h.tap = static_cast<trace::TapLayer*>(&node->add_layer(std::move(tap)));
  }
  {
    auto agent = std::make_unique<control::ControlAgent>();
    h.agent =
        static_cast<control::ControlAgent*>(&node->add_layer(std::move(agent)));
    if (config_.telemetry) {
      obs::expose_stats(metrics_, "agent." + name, h.agent->stats());
    }
  }
  if (config_.install_engine) {
    core::EngineParams ep = config_.engine;
    ep.seed = config_.engine.seed ^ (static_cast<u64>(entries_.size()) << 32);
    if (!config_.telemetry) ep.provenance_capacity = 0;
    auto engine = std::make_unique<core::EngineLayer>(sim_, ep);
    h.engine =
        static_cast<core::EngineLayer*>(&node->add_layer(std::move(engine)));
    h.engine->set_control(h.agent);
    if (config_.telemetry) h.engine->bind_metrics(metrics_, "engine." + name);
  }

  // Full-mesh static ARP.
  for (auto& [other_name, other] : entries_) {
    other.node->add_neighbor(ip, mac);
    node->add_neighbor(other.node->ip(), other.node->mac());
  }

  host::Node& ref = *node;
  entries_.emplace_back(name, h);
  nodes_.push_back(std::move(node));
  return ref;
}

host::Node& Testbed::node(std::string_view name) {
  return *handles(name).node;
}

NodeHandles& Testbed::handles(std::string_view name) {
  for (auto& [n, h] : entries_) {
    if (n == name) return h;
  }
  VWIRE_ASSERT(false, "unknown testbed node");
  __builtin_unreachable();
}

std::vector<std::string> Testbed::node_names() const {
  std::vector<std::string> out;
  for (const auto& [n, h] : entries_) out.push_back(n);
  return out;
}

std::string Testbed::node_table_fsl() const {
  std::string out = "NODE_TABLE\n";
  for (const auto& [name, h] : entries_) {
    out += "  " + name + " " + h.node->mac().to_string() + " " +
           h.node->ip().to_string() + "\n";
  }
  out += "END\n";
  return out;
}

std::vector<obs::SpanEvent> Testbed::collect_timeline() const {
  std::vector<obs::SpanEvent> out;
  for (std::size_t i = 0; i < flights_.size(); ++i) {
    std::vector<obs::SpanEvent> part = flights_[i]->collect();
    for (obs::SpanEvent& e : part) e.node = entries_[i].first;
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  // Stable: same-tick events keep each recorder's claim order, and nodes
  // stay grouped in add_node order within a tick.
  std::stable_sort(out.begin(), out.end(),
                   [](const obs::SpanEvent& a, const obs::SpanEvent& b) {
                     return a.at_ns < b.at_ns;
                   });
  return out;
}

u64 Testbed::timeline_dropped() const {
  u64 total = 0;
  for (const auto& f : flights_) total += f->dropped();
  return total;
}

std::vector<control::ManagedNode> Testbed::managed_nodes() {
  std::vector<control::ManagedNode> out;
  for (auto& [name, h] : entries_) {
    VWIRE_ASSERT(h.engine != nullptr,
                 "managed_nodes requires install_engine=true");
    control::ManagedNode m;
    m.name = name;
    m.mac = h.node->mac();
    m.engine = h.engine;
    m.agent = h.agent;
    out.push_back(m);
  }
  return out;
}

}  // namespace vwire
