#include "vwire/core/api/scenario_runner.hpp"

namespace vwire {

ScenarioRunner::ScenarioRunner(Testbed& testbed) : testbed_(testbed) {}

void ScenarioRunner::validate_nodes(const core::TableSet& tables) {
  for (const core::NodeEntry& e : tables.nodes.entries) {
    bool found = false;
    for (const std::string& name : testbed_.node_names()) {
      host::Node& n = testbed_.node(name);
      if (n.name() != e.name) continue;
      found = true;
      if (!(n.mac() == e.mac) || !(n.ip() == e.ip)) {
        throw fsl::ParseError(
            {0, 0}, "NODE_TABLE entry '" + e.name +
                        "' does not match the testbed node (script says " +
                        e.mac.to_string() + "/" + e.ip.to_string() +
                        ", testbed has " + n.mac().to_string() + "/" +
                        n.ip().to_string() + ")");
      }
    }
    if (!found) {
      throw fsl::ParseError(
          {0, 0}, "NODE_TABLE entry '" + e.name + "' is not a testbed node");
    }
  }
}

control::ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec) {
  fsl::CompileOptions copts;
  copts.scenario = spec.scenario;
  core::TableSet tables = fsl::compile_script(spec.script, copts);
  validate_nodes(tables);

  std::string control = spec.control_node.empty()
                            ? testbed_.node_names().front()
                            : spec.control_node;
  controller_ = std::make_unique<control::Controller>(
      testbed_.simulator(), testbed_.managed_nodes(), control);
  controller_->arm(tables);
  if (spec.workload) spec.workload();
  return controller_->run(spec.options);
}

}  // namespace vwire
