#include "vwire/core/api/scenario_runner.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "vwire/core/fsl/verify.hpp"
#include "vwire/util/logging.hpp"

namespace vwire {

ScenarioRunner::ScenarioRunner(Testbed& testbed) : testbed_(testbed) {}

obs::ScenarioReport make_report(Testbed& testbed,
                                const control::ScenarioResult* result) {
  obs::ScenarioReport report;
  report.meta.nodes = testbed.node_names();
  report.metrics = testbed.metrics().snapshot();
  for (const trace::TraceAnnotation& a : testbed.trace().annotations()) {
    report.annotations.push_back({a.at, a.node, a.text});
  }
  if (result == nullptr) {
    report.meta.ended_at = testbed.simulator().now();
    return report;
  }
  report.meta.scenario = result->scenario;
  report.meta.seed = result->effective_seed;
  report.meta.ended_at = result->ended_at;
  report.meta.passed = result->passed();
  report.firings = result->firings;
  report.firings_dropped = result->firings_dropped;
  report.counter_names = result->counter_names;
  for (const control::LinkFaultEvent& e : result->link_events) {
    report.link_events.push_back({e.at, e.node, e.description});
  }
  for (const core::ScenarioError& e : result->errors) {
    std::string node = e.node < result->node_names.size()
                           ? result->node_names[e.node]
                           : std::string();
    report.errors.push_back({e.at, std::move(node), e.cond});
  }
  return report;
}

void ScenarioRunner::validate_nodes(const core::TableSet& tables) {
  for (const core::NodeEntry& e : tables.nodes.entries) {
    bool found = false;
    for (const std::string& name : testbed_.node_names()) {
      host::Node& n = testbed_.node(name);
      if (n.name() != e.name) continue;
      found = true;
      if (!(n.mac() == e.mac) || !(n.ip() == e.ip)) {
        throw fsl::ParseError(
            {0, 0}, "NODE_TABLE entry '" + e.name +
                        "' does not match the testbed node (script says " +
                        e.mac.to_string() + "/" + e.ip.to_string() +
                        ", testbed has " + n.mac().to_string() + "/" +
                        n.ip().to_string() + ")");
      }
    }
    if (!found) {
      throw fsl::ParseError(
          {0, 0}, "NODE_TABLE entry '" + e.name + "' is not a testbed node");
    }
  }
}

void ScenarioRunner::validate_link_faults(
    const std::vector<LinkFaultSpec>& faults) {
  const std::vector<std::string>& names = testbed_.node_names();
  for (const LinkFaultSpec& f : faults) {
    auto fail = [&](const std::string& why) {
      throw std::invalid_argument("ScenarioSpec::link_faults on node '" +
                                  f.node + "': " + why);
    };
    if (std::find(names.begin(), names.end(), f.node) == names.end()) {
      fail("not a testbed node");
    }
    // The node exists — but its NIC port must also resolve on the bound
    // medium (a node constructed against a different medium, or one that
    // never attached, would otherwise only blow up mid-run when the
    // scheduled fault fires).
    phy::PortId port = testbed_.node(f.node).nic().port();
    if (port == phy::kInvalidPort || port >= testbed_.medium().port_count()) {
      fail("NIC port " + std::to_string(port) +
           " is not a port of the testbed's medium");
    }
    if (f.at.ns < 0) fail("fault time `at` is negative");
    if (f.until.ns < 0) fail("fault end `until` is negative");
    if (f.loss_tx < 0.0 || f.loss_tx > 1.0 || f.loss_rx < 0.0 ||
        f.loss_rx > 1.0) {
      fail("loss rates must be within [0, 1]");
    }
    if (f.extra_latency.ns < 0) fail("extra_latency is negative");
    if (f.jitter.ns < 0) fail("jitter is negative");
    if (f.bandwidth_bps < 0.0) fail("bandwidth_bps is negative");
    switch (f.kind) {
      case LinkFaultSpec::Kind::kCut:
        break;
      case LinkFaultSpec::Kind::kFlap:
        if (f.flap_up.ns <= 0 || f.flap_down.ns <= 0) {
          fail("flap_up and flap_down must both be positive");
        }
        break;
      case LinkFaultSpec::Kind::kDegrade:
        if (f.loss_tx == 0.0 && f.loss_rx == 0.0 && f.extra_latency.ns <= 0 &&
            f.jitter.ns <= 0 && f.bandwidth_bps <= 0.0) {
          fail("degrade fault has no effect (all knobs zero)");
        }
        break;
    }
  }
}

namespace {

/// Translates a schedule entry into the phy layer's per-port fault state.
phy::LinkFaultState to_fault_state(const LinkFaultSpec& f, TimePoint applied) {
  phy::LinkFaultState st;
  switch (f.kind) {
    case LinkFaultSpec::Kind::kCut:
      st.tx.cut = true;
      st.rx.cut = true;
      break;
    case LinkFaultSpec::Kind::kFlap:
      st.flap.up = f.flap_up;
      st.flap.down = f.flap_down;
      st.flap.origin = applied;
      break;
    case LinkFaultSpec::Kind::kDegrade:
      st.tx.loss_rate = f.loss_tx;
      st.rx.loss_rate = f.loss_rx;
      st.rx.extra_latency = f.extra_latency;
      st.rx.jitter = f.jitter;
      st.bandwidth_bps = f.bandwidth_bps;
      break;
  }
  return st;
}

std::string describe(const LinkFaultSpec& f) {
  std::ostringstream os;
  switch (f.kind) {
    case LinkFaultSpec::Kind::kCut:
      os << "link cut";
      break;
    case LinkFaultSpec::Kind::kFlap:
      os << "link flap (up=" << f.flap_up.millis_f()
         << "ms, down=" << f.flap_down.millis_f() << "ms)";
      break;
    case LinkFaultSpec::Kind::kDegrade:
      os << "link degrade (";
      bool first = true;
      auto knob = [&](const char* name, const std::string& v) {
        if (!first) os << ", ";
        os << name << "=" << v;
        first = false;
      };
      if (f.loss_tx > 0) knob("loss_tx", std::to_string(f.loss_tx));
      if (f.loss_rx > 0) knob("loss_rx", std::to_string(f.loss_rx));
      if (f.extra_latency.ns > 0) {
        knob("latency", std::to_string(f.extra_latency.millis_f()) + "ms");
      }
      if (f.jitter.ns > 0) {
        knob("jitter", std::to_string(f.jitter.millis_f()) + "ms");
      }
      if (f.bandwidth_bps > 0) {
        knob("bw", std::to_string(f.bandwidth_bps) + "bps");
      }
      os << ")";
      break;
  }
  return os.str();
}

}  // namespace

control::ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec) {
  fsl::CompileOptions copts;
  copts.scenario = spec.scenario;
  copts.lint = true;
  fsl::CompileResult checked = fsl::check_script(spec.script, copts);
  for (const fsl::Diagnostic& d : checked.diagnostics) {
    if (d.severity != fsl::Severity::kError) {
      std::string line = "fsl lint: " + fsl::format_diagnostic(d);
      VWIRE_INFO() << line;
      testbed_.trace().annotate(testbed_.simulator().now(), "", line);
    }
  }
  if (!checked.ok()) {
    // Refuse to arm: surface the first error with the familiar
    // "line:col:" throw semantics.
    for (const fsl::Diagnostic& d : checked.diagnostics) {
      if (d.severity == fsl::Severity::kError) throw fsl::ParseError(d);
    }
  }
  core::TableSet tables = std::move(checked.tables);
  if (spec.verify) {
    // Static gate beyond lint: prove per-scenario properties over the
    // compiled tables.  Errors (a provably dead rule) refuse to arm with
    // the same throw semantics as lint errors.
    const fsl::mc::VerifyResult vr = fsl::mc::verify_tables(tables);
    for (const fsl::Diagnostic& d : vr.diagnostics) {
      if (d.severity != fsl::Severity::kError) {
        std::string line = "fsl verify: " + fsl::format_diagnostic(d);
        VWIRE_INFO() << line;
        testbed_.trace().annotate(testbed_.simulator().now(), "", line);
      }
    }
    for (const fsl::Diagnostic& d : vr.diagnostics) {
      if (d.severity == fsl::Severity::kError) throw fsl::ParseError(d);
    }
  }
  validate_nodes(tables);
  for (const NodeCrash& c : spec.crashes) {
    const std::vector<std::string>& names = testbed_.node_names();
    if (std::find(names.begin(), names.end(), c.node) == names.end()) {
      throw std::invalid_argument("ScenarioSpec::crashes names unknown node '" +
                                  c.node + "'");
    }
  }
  validate_link_faults(spec.link_faults);
  for (const TimedAction& a : spec.actions) {
    if (!a.fn) {
      throw std::invalid_argument("ScenarioSpec::actions entry has no fn");
    }
    if (a.at.ns < 0) {
      throw std::invalid_argument("ScenarioSpec::actions time is negative");
    }
  }
  if (spec.probe_period.ns < 0) {
    throw std::invalid_argument("ScenarioSpec::probe_period is negative");
  }

  // One seed drives every medium RNG stream for the run (satellite of the
  // link-fault work: replaying a failure needs the exact same draw
  // sequence).  spec.seed == 0 keeps the testbed's ongoing streams.
  sim::Simulator& sim = testbed_.simulator();
  phy::Medium& medium = testbed_.medium();
  if (spec.seed != 0) medium.reseed(spec.seed);
  const u64 effective_seed = spec.seed != 0 ? spec.seed : medium.seed();
  // RATE/PROB fault-modifier streams derive from the same effective seed,
  // so a replay under the same (spec, seed) draws identically.  Seeded
  // before arm(): load() builds the per-action streams from this value.
  for (const std::string& n : testbed_.node_names()) {
    if (core::EngineLayer* engine = testbed_.handles(n).engine) {
      engine->set_modifier_seed(effective_seed);
    }
  }

  std::string control = spec.control_node.empty()
                            ? testbed_.node_names().front()
                            : spec.control_node;
  const bool probing = spec.probe && spec.probe_period.ns > 0;
  control::RunOptions options = spec.options;
  if (probing) ++options.extra_background_events;
  controller_ = std::make_unique<control::Controller>(
      sim, testbed_.managed_nodes(), control);
  controller_->arm(tables, options);

  // Per-run robustness accounting works on deltas: a long-lived testbed
  // accumulates stats across runs, so snapshot now, subtract later.
  const phy::MediumStats medium_before = medium.stats();
  rll::RllStats rll_before;
  auto sum_rll = [this] {
    rll::RllStats sum;
    for (const std::string& n : testbed_.node_names()) {
      rll::RllLayer* rll = testbed_.handles(n).rll;
      if (!rll) continue;
      sum.peers_aborted += rll->stats().peers_aborted;
      sum.peers_recovered += rll->stats().peers_recovered;
      sum.retransmits += rll->stats().retransmits;
      sum.fast_retransmits += rll->stats().fast_retransmits;
    }
    return sum;
  };
  rll_before = sum_rll();

  // Collect link events (scheduled faults and RLL transitions) as they
  // happen; shared_ptr because the scheduled lambdas may outlive this frame
  // if the run ends before a clear fires.
  auto events = std::make_shared<std::vector<control::LinkFaultEvent>>();
  testbed_.set_link_event_hook(
      [events, &sim](const std::string& node, const net::MacAddress& peer,
                     bool up) {
        events->push_back({sim.now(), node,
                           std::string(up ? "rll link-up peer "
                                          : "rll link-down peer ") +
                               peer.to_string()});
      });

  // Schedule whole-node faults relative to the (post-arm) start of the run.
  for (const NodeCrash& c : spec.crashes) {
    host::Node* n = &testbed_.node(c.node);
    sim.at(sim.now() + c.at, [n] { n->crash(); });
    if (c.recover_at > c.at) {
      sim.at(sim.now() + c.recover_at, [n] { n->recover(); });
    }
  }
  // And the link faults.  Later entries targeting the same node overwrite
  // earlier ones while active; a clear removes whatever is installed.
  for (const LinkFaultSpec& f : spec.link_faults) {
    phy::PortId port = testbed_.node(f.node).nic().port();
    std::string node_name = f.node;
    std::string desc = describe(f);
    LinkFaultSpec fault = f;
    phy::Medium* med = &medium;
    sim.at(sim.now() + f.at, [med, port, fault, node_name, desc, events,
                              &sim] {
      med->set_link_fault(port, to_fault_state(fault, sim.now()));
      events->push_back({sim.now(), node_name, desc + " applied"});
    });
    if (f.until > f.at) {
      sim.at(sim.now() + f.until, [med, port, node_name, desc, events,
                                   &sim] {
        med->clear_link_fault(port);
        events->push_back({sim.now(), node_name, desc + " cleared"});
      });
    }
  }

  // Arbitrary scheduled callbacks (chaos knobs), same time base as faults.
  for (const TimedAction& a : spec.actions) {
    sim.at(sim.now() + a.at, a.fn);
  }

  // Self-rearming invariant probe.  The shared flag outlives this frame so
  // the armed tick left in the queue at run end does nothing if some later
  // caller advances the simulator further.
  auto probe_live = std::make_shared<bool>(probing);
  if (probing) {
    struct ProbeTick {
      std::shared_ptr<bool> live;
      std::function<void()> probe;
      Duration period;
      sim::Simulator* sim;
      void operator()() const {
        if (!*live) return;
        probe();
        sim->after(period, *this);  // each event owns its own copy: no cycle
      }
    };
    sim.after(spec.probe_period,
              ProbeTick{probe_live, spec.probe, spec.probe_period, &sim});
  }

  if (spec.workload) spec.workload();
  control::ScenarioResult result = controller_->run(options);
  *probe_live = false;
  testbed_.set_link_event_hook({});

  result.effective_seed = effective_seed;
  result.link_events = std::move(*events);
  const phy::MediumStats& m = medium.stats();
  rll::RllStats rll_after = sum_rll();
  result.robustness.rll_link_down =
      rll_after.peers_aborted - rll_before.peers_aborted;
  result.robustness.rll_link_up =
      rll_after.peers_recovered - rll_before.peers_recovered;
  result.robustness.rll_retransmits =
      rll_after.retransmits - rll_before.retransmits;
  result.robustness.rll_fast_retransmits =
      rll_after.fast_retransmits - rll_before.fast_retransmits;
  result.robustness.medium_dropped_down =
      m.frames_dropped_down - medium_before.frames_dropped_down;
  result.robustness.medium_dropped_queue =
      m.frames_dropped_queue - medium_before.frames_dropped_queue;
  result.robustness.medium_dropped_cut =
      m.frames_dropped_cut - medium_before.frames_dropped_cut;
  result.robustness.medium_dropped_flap =
      m.frames_dropped_flap - medium_before.frames_dropped_flap;
  result.robustness.medium_dropped_loss =
      m.frames_dropped_loss - medium_before.frames_dropped_loss;

  if (!spec.telemetry.jsonl_path.empty() || !spec.telemetry.csv_path.empty()) {
    obs::ScenarioReport report = make_report(testbed_, &result);
    if (!spec.telemetry.jsonl_path.empty()) {
      report.write_jsonl(spec.telemetry.jsonl_path);
    }
    if (!spec.telemetry.csv_path.empty()) {
      report.write_csv(spec.telemetry.csv_path);
    }
  }
  return result;
}

}  // namespace vwire
