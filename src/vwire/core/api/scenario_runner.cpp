#include "vwire/core/api/scenario_runner.hpp"

#include <algorithm>
#include <stdexcept>

namespace vwire {

ScenarioRunner::ScenarioRunner(Testbed& testbed) : testbed_(testbed) {}

void ScenarioRunner::validate_nodes(const core::TableSet& tables) {
  for (const core::NodeEntry& e : tables.nodes.entries) {
    bool found = false;
    for (const std::string& name : testbed_.node_names()) {
      host::Node& n = testbed_.node(name);
      if (n.name() != e.name) continue;
      found = true;
      if (!(n.mac() == e.mac) || !(n.ip() == e.ip)) {
        throw fsl::ParseError(
            {0, 0}, "NODE_TABLE entry '" + e.name +
                        "' does not match the testbed node (script says " +
                        e.mac.to_string() + "/" + e.ip.to_string() +
                        ", testbed has " + n.mac().to_string() + "/" +
                        n.ip().to_string() + ")");
      }
    }
    if (!found) {
      throw fsl::ParseError(
          {0, 0}, "NODE_TABLE entry '" + e.name + "' is not a testbed node");
    }
  }
}

control::ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec) {
  fsl::CompileOptions copts;
  copts.scenario = spec.scenario;
  core::TableSet tables = fsl::compile_script(spec.script, copts);
  validate_nodes(tables);
  for (const NodeCrash& c : spec.crashes) {
    const std::vector<std::string>& names = testbed_.node_names();
    if (std::find(names.begin(), names.end(), c.node) == names.end()) {
      throw std::invalid_argument("ScenarioSpec::crashes names unknown node '" +
                                  c.node + "'");
    }
  }

  std::string control = spec.control_node.empty()
                            ? testbed_.node_names().front()
                            : spec.control_node;
  controller_ = std::make_unique<control::Controller>(
      testbed_.simulator(), testbed_.managed_nodes(), control);
  controller_->arm(tables, spec.options);

  // Schedule whole-node faults relative to the (post-arm) start of the run.
  sim::Simulator& sim = testbed_.simulator();
  for (const NodeCrash& c : spec.crashes) {
    host::Node* n = &testbed_.node(c.node);
    sim.at(sim.now() + c.at, [n] { n->crash(); });
    if (c.recover_at > c.at) {
      sim.at(sim.now() + c.recover_at, [n] { n->recover(); });
    }
  }

  if (spec.workload) spec.workload();
  return controller_->run(spec.options);
}

}  // namespace vwire
