// ScenarioRunner — one-call façade: compile an FSL script, distribute it,
// launch the workload, supervise the run, return the verdict.
//
// This is the experience the paper promises: "10 to 20 lines of script is
// sufficient to specify the test scenario" — everything else is automated.
#pragma once

#include <functional>

#include "vwire/core/api/testbed.hpp"
#include "vwire/core/fsl/compiler.hpp"
#include "vwire/obs/report.hpp"

namespace vwire {

/// A scheduled whole-node fault: at simulated time `at` (measured from the
/// start of supervision) the node crashes — NIC silenced, queued traffic in
/// every layer dropped.  If `recover_at` is later than `at`, the node comes
/// back then and rejoins (RLL links resynchronize via the kReset announce;
/// heartbeats resume).  With `recover_at <= at` the node stays down.
struct NodeCrash {
  std::string node;
  Duration at{};
  Duration recover_at{};
};

/// A scheduled fault on one node's *link* (the node itself stays healthy).
/// Applied at `at` (measured from the start of supervision) and cleared at
/// `until`; with `until <= at` the fault lasts for the rest of the run.
///
///  - kCut:     hard partition — every frame in both directions is dropped.
///  - kFlap:    square-wave partition: `flap_up` of connectivity, then
///              `flap_down` of outage, repeating while the fault is active.
///  - kDegrade: the link stays up but misbehaves — asymmetric random loss
///              (`loss_tx` host→wire, `loss_rx` wire→host), added one-way
///              latency and uniform jitter, and/or a bandwidth throttle.
struct LinkFaultSpec {
  enum class Kind : u8 { kCut, kFlap, kDegrade };
  Kind kind{Kind::kCut};
  std::string node;  ///< whose link (NIC port) the fault applies to
  Duration at{};
  Duration until{};

  // kFlap: both must be > 0.
  Duration flap_up{};
  Duration flap_down{};

  // kDegrade: at least one knob must take effect.
  double loss_tx{0.0};       ///< P(drop) for frames the node transmits
  double loss_rx{0.0};       ///< P(drop) for frames the node receives
  Duration extra_latency{};  ///< added to every delivery toward the node
  Duration jitter{};         ///< uniform extra delay in [0, jitter) (rx side)
  double bandwidth_bps{0.0};  ///< throttle the port below the link rate
};

/// An arbitrary scheduled callback, applied like crashes/link_faults at
/// `at` measured from the start of supervision.  Chaos campaigns use these
/// to arm/disarm test-only fault knobs mid-run.
struct TimedAction {
  Duration at{};
  std::function<void()> fn;
};

struct ScenarioSpec {
  /// FSL source (FILTER_TABLE / NODE_TABLE / SCENARIO sections).
  std::string script;
  /// Scenario to run; empty = the script's first.
  std::string scenario;
  /// Node hosting the programming front-end; empty = the first node.
  std::string control_node;
  /// Started after the engines are armed, before supervision begins —
  /// connect TCP flows, start token rings, launch echo clients here.
  std::function<void()> workload;
  /// Whole-node crash/recover faults to inject during the run.
  std::vector<NodeCrash> crashes;
  /// Link faults (partition / flap / degrade) to schedule during the run.
  std::vector<LinkFaultSpec> link_faults;
  /// Extra scheduled callbacks (test-only fault knobs and the like).
  std::vector<TimedAction> actions;
  /// Invoked every `probe_period` of simulated time while the run is
  /// supervised — chaos campaigns sample cross-layer invariants here.
  /// Zero period disables.  The probe is accounted as a background event
  /// so it does not defeat the controller's quiescence detection.
  std::function<void()> probe;
  Duration probe_period{};
  /// Opt-in verification gate: model-check the compiled scenario
  /// (fsl::mc::verify_tables) after lint and refuse to arm on any
  /// fsl-verify-* error (e.g. a provably dead rule).  Warnings and notes
  /// are logged and annotated onto the trace like lint findings.
  bool verify{false};
  /// Deterministic seed for the run's media RNGs; 0 keeps the testbed's
  /// configured seed.  The seed actually used is echoed in
  /// ScenarioResult::effective_seed.
  u64 seed{0};
  control::RunOptions options{};

  /// Structured export of the run (DESIGN.md §7); empty paths skip the
  /// corresponding file.  Requires TestbedConfig::telemetry for metric and
  /// firing content — with it off the files still round-trip but carry only
  /// the run's meta/link_event/error lines.
  struct TelemetrySpec {
    std::string jsonl_path;  ///< schema-versioned JSONL event stream
    std::string csv_path;    ///< per-node metric matrix
  };
  TelemetrySpec telemetry{};
};

/// Assembles the offline report for the testbed's current state: every
/// registry metric, plus — when `result` is non-null — the run's firing
/// provenance, link events and errors.  Benches pass result=nullptr to
/// export metrics outside a scripted scenario.
obs::ScenarioReport make_report(Testbed& testbed,
                                const control::ScenarioResult* result);

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Testbed& testbed);

  /// Compiles and validates the script against the testbed (every script
  /// node must exist with matching MAC and IP), then runs it end-to-end.
  /// Throws fsl::ParseError on script errors.
  control::ScenarioResult run(const ScenarioSpec& spec);

  /// The controller from the most recent run (valid until the next run).
  control::Controller* controller() { return controller_.get(); }

 private:
  void validate_nodes(const core::TableSet& tables);
  /// Rejects malformed fault schedules (unknown node, non-positive flap
  /// phases, loss rates outside [0,1], no-op degrade…) with
  /// std::invalid_argument before the run starts.
  void validate_link_faults(const std::vector<LinkFaultSpec>& faults);

  Testbed& testbed_;
  std::unique_ptr<control::Controller> controller_;
};

}  // namespace vwire
