// ScenarioRunner — one-call façade: compile an FSL script, distribute it,
// launch the workload, supervise the run, return the verdict.
//
// This is the experience the paper promises: "10 to 20 lines of script is
// sufficient to specify the test scenario" — everything else is automated.
#pragma once

#include <functional>

#include "vwire/core/api/testbed.hpp"
#include "vwire/core/fsl/compiler.hpp"

namespace vwire {

/// A scheduled whole-node fault: at simulated time `at` (measured from the
/// start of supervision) the node crashes — NIC silenced, queued traffic in
/// every layer dropped.  If `recover_at` is later than `at`, the node comes
/// back then and rejoins (RLL links resynchronize via the kReset announce;
/// heartbeats resume).  With `recover_at <= at` the node stays down.
struct NodeCrash {
  std::string node;
  Duration at{};
  Duration recover_at{};
};

struct ScenarioSpec {
  /// FSL source (FILTER_TABLE / NODE_TABLE / SCENARIO sections).
  std::string script;
  /// Scenario to run; empty = the script's first.
  std::string scenario;
  /// Node hosting the programming front-end; empty = the first node.
  std::string control_node;
  /// Started after the engines are armed, before supervision begins —
  /// connect TCP flows, start token rings, launch echo clients here.
  std::function<void()> workload;
  /// Whole-node crash/recover faults to inject during the run.
  std::vector<NodeCrash> crashes;
  control::RunOptions options{};
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Testbed& testbed);

  /// Compiles and validates the script against the testbed (every script
  /// node must exist with matching MAC and IP), then runs it end-to-end.
  /// Throws fsl::ParseError on script errors.
  control::ScenarioResult run(const ScenarioSpec& spec);

  /// The controller from the most recent run (valid until the next run).
  control::Controller* controller() { return controller_.get(); }

 private:
  void validate_nodes(const core::TableSet& tables);

  Testbed& testbed_;
  std::unique_ptr<control::Controller> controller_;
};

}  // namespace vwire
