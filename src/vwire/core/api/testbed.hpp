// Testbed — the top-level fixture users assemble (paper §3.1).
//
// A Testbed owns the simulator, a medium (switched LAN or shared bus), and
// the nodes.  Every node gets the full VirtualWire stack by default,
// mirroring Fig 4(a):
//
//      IP demux                      (host::IpLayer)
//      [protocol under test]         (added by the user, e.g. Rether)
//      FIE/FAE engine                (core::EngineLayer)
//      control agent                 (control::ControlAgent)
//      packet tap                    (trace::TapLayer)
//      Reliable Link Layer           (rll::RllLayer)
//      NIC / driver                  (host::Nic)
//
// Transport protocols (TCP/UDP) and applications attach on top via the
// node's IP layer, exactly like userspace sockets above a kernel stack.
#pragma once

#include "vwire/core/control/controller.hpp"
#include "vwire/obs/flight.hpp"
#include "vwire/phy/shared_bus.hpp"
#include "vwire/phy/switched_lan.hpp"
#include "vwire/rll/rll_layer.hpp"
#include "vwire/trace/trace.hpp"

namespace vwire {

struct TestbedConfig {
  enum class MediumKind { kSwitchedLan, kSharedBus };
  MediumKind medium{MediumKind::kSwitchedLan};
  phy::LinkParams link{};

  bool install_rll{true};
  rll::RllParams rll{};

  bool install_engine{true};
  core::EngineParams engine{};

  bool install_trace{true};
  std::size_t trace_capacity{1'000'000};

  /// Binds every component (medium, engines, agents, RLL, TCP) into the
  /// testbed's MetricsRegistry and keeps per-node rule-firing provenance.
  /// Off: no registry entries and provenance_capacity is forced to 0, so
  /// the hot paths skip all recording (the overhead baseline).
  bool telemetry{true};

  /// Per-node causal flight recorder (DESIGN.md §12).  Each node keeps a
  /// bounded lock-free ring of span events (NIC tx/rx, link drops/delays,
  /// fault firings, ARQ retransmits, crash/recover); collect_timeline()
  /// merges them into one causal timeline.  0 disables recording entirely;
  /// telemetry=false also forces it off (the overhead baseline).  The
  /// default (2048 slots = 96 KiB/node) keeps the ring cache-resident so
  /// steady-state recording stays inside the 2% overhead budget; raise it
  /// when a repro needs deeper pre-violation history.
  std::size_t flight_capacity{2048};

  /// Fraction of spans recorded, [0,1].  Sampling is deterministic per span
  /// id, so a sampled span keeps *all* its events (and its children's — a
  /// child span hashes independently but the origin is what matters for
  /// repro timelines).  1.0 records everything.
  double trace_sample_rate{1.0};

  /// Per-node kernel-stack processing charged above the chain.
  Duration rx_stack_cost{micros(28)};
  Duration tx_stack_cost{micros(17)};

  u64 seed{42};
};

struct NodeHandles {
  host::Node* node{nullptr};
  rll::RllLayer* rll{nullptr};
  trace::TapLayer* tap{nullptr};
  control::ControlAgent* agent{nullptr};
  core::EngineLayer* engine{nullptr};
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Adds a node with an auto-assigned MAC (02:00:00::idx) and IP
  /// (10.0.0.idx+1).  All pairwise neighbor entries are maintained.
  host::Node& add_node(const std::string& name);

  /// Adds a node with explicit addresses (to match a script's NODE_TABLE).
  host::Node& add_node(const std::string& name, net::MacAddress mac,
                       net::Ipv4Address ip);

  host::Node& node(std::string_view name);
  NodeHandles& handles(std::string_view name);
  std::size_t node_count() const { return entries_.size(); }
  std::vector<std::string> node_names() const;

  sim::Simulator& simulator() { return sim_; }
  phy::Medium& medium() { return *medium_; }
  trace::TraceBuffer& trace() { return trace_; }
  const TestbedConfig& config() const { return config_; }

  /// Central metrics registry ("layer.node.metric" naming, DESIGN.md §7).
  /// Empty when config.telemetry is false.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Merged causal timeline across every node's flight recorder: each event
  /// stamped with its node name, sorted by timestamp (stable, so same-tick
  /// events keep per-node recording order).  Empty when tracing is off.
  std::vector<obs::SpanEvent> collect_timeline() const;

  /// Total span events evicted (drop-oldest) across all recorders.
  u64 timeline_dropped() const;

  /// Emits an FSL NODE_TABLE section matching this testbed, so scripts can
  /// be generated rather than hand-synchronized.
  std::string node_table_fsl() const;

  /// Builds the controller view (engine+agent per node) for Controller.
  std::vector<control::ManagedNode> managed_nodes();

  /// Observer of RLL link-down/link-up transitions on any node (peer
  /// quarantined / healed).  Transitions are always annotated into the
  /// trace; the hook is for whoever supervises the run (ScenarioRunner
  /// collects them into ScenarioResult::link_events).
  using LinkEventHook = std::function<void(
      const std::string& node, const net::MacAddress& peer, bool up)>;
  void set_link_event_hook(LinkEventHook hook) { link_hook_ = std::move(hook); }

 private:
  TestbedConfig config_;
  sim::Simulator sim_;
  /// Declared before the medium and nodes: components hold registry-owned
  /// histogram pointers, so the registry must be destroyed last.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<phy::Medium> medium_;
  trace::TraceBuffer trace_;
  std::vector<std::pair<std::string, NodeHandles>> entries_;
  std::vector<std::unique_ptr<host::Node>> nodes_;
  /// One recorder per node, same index as nodes_.  unique_ptr: recorders
  /// hold atomics (not movable) and nodes keep raw pointers into them.
  std::vector<std::unique_ptr<obs::FlightRecorder>> flights_;
  LinkEventHook link_hook_;
};

}  // namespace vwire
