#include "vwire/core/gen/script_gen.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

namespace vwire::gen {

namespace {

const char* dir_name(net::Direction d) {
  return d == net::Direction::kSend ? "SEND" : "RECV";
}

std::string sanitize(std::string_view s) {
  std::string out;
  for (char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

std::string state_counter(const std::string& state) {
  return "ST_" + sanitize(state);
}

/// Distinct events in first-appearance order, with per-event counter names.
std::vector<PacketEvent> distinct_events(const ProtocolSpec& spec) {
  std::vector<PacketEvent> out;
  for (const Transition& t : spec.transitions) {
    if (std::find(out.begin(), out.end(), t.event) == out.end()) {
      out.push_back(t.event);
    }
  }
  return out;
}

std::string event_counter(const std::vector<PacketEvent>& events,
                          const PacketEvent& e) {
  auto it = std::find(events.begin(), events.end(), e);
  return "EV_" + std::to_string(it - events.begin()) + "_" +
         sanitize(e.packet_type);
}

std::string duration_literal(Duration d) {
  if (d.ns % seconds(1).ns == 0) {
    return std::to_string(d.ns / seconds(1).ns) + "sec";
  }
  return std::to_string(d.ns / millis(1).ns) + "ms";
}

/// Emits the shared FSM-tracking body (counters, init, transitions,
/// violations, accept) into `os`.
void emit_fsm(const ProtocolSpec& spec,
              const std::vector<PacketEvent>& events, std::ostringstream& os) {
  // Counter declarations.
  for (const PacketEvent& e : events) {
    os << "  " << event_counter(events, e) << ": (" << e.packet_type << ", "
       << e.src << ", " << e.dst << ", " << dir_name(e.dir) << ")\n";
  }
  for (const std::string& s : spec.states) {
    os << "  " << state_counter(s) << ": (" << spec.monitor_node << ")\n";
  }
  os << "  VISITS: (" << spec.monitor_node << ")\n";

  // Initialization.
  os << "  (TRUE) >>";
  for (const PacketEvent& e : events) {
    os << " ENABLE_CNTR(" << event_counter(events, e) << ");";
  }
  for (const std::string& s : spec.states) {
    os << " ASSIGN_CNTR(" << state_counter(s) << ", "
       << (s == spec.initial_state ? 1 : 0) << ");";
  }
  os << " ENABLE_CNTR(VISITS);\n";

  // Transition rules.
  for (const Transition& t : spec.transitions) {
    const std::string ev = event_counter(events, t.event);
    os << "  ((" << state_counter(t.from) << " = 1) && (" << ev
       << " = 1)) >> RESET_CNTR(" << ev << ");";
    if (t.from != t.to) {
      os << " ASSIGN_CNTR(" << state_counter(t.from) << ", 0);"
         << " ASSIGN_CNTR(" << state_counter(t.to) << ", 1);";
    } else {
      os << " ASSIGN_CNTR(" << state_counter(t.to) << ", 1);";
    }
    if (t.to == spec.accept_state) {
      os << " INCR_CNTR(VISITS, 1);";
    }
    os << "\n";
  }

  // Violation rules: every (state, event) pair with no matching transition.
  for (const std::string& s : spec.states) {
    for (const PacketEvent& e : events) {
      bool allowed = std::any_of(
          spec.transitions.begin(), spec.transitions.end(),
          [&](const Transition& t) { return t.from == s && t.event == e; });
      if (allowed) continue;
      const std::string ev = event_counter(events, e);
      os << "  ((" << state_counter(s) << " = 1) && (" << ev
         << " = 1)) >> RESET_CNTR(" << ev << "); FLAG_ERROR;\n";
    }
  }

  // Liveness.
  os << "  ((VISITS = " << spec.accept_visits << ")) >> STOP;\n";
}

}  // namespace

std::string validate(const ProtocolSpec& spec) {
  if (spec.name.empty()) return "spec needs a name";
  if (spec.monitor_node.empty()) return "spec needs a monitor node";
  if (spec.states.empty()) return "spec needs at least one state";
  auto known = [&](const std::string& s) {
    return std::find(spec.states.begin(), spec.states.end(), s) !=
           spec.states.end();
  };
  if (!known(spec.initial_state)) return "initial state not in state list";
  if (!known(spec.accept_state)) return "accept state not in state list";
  if (spec.accept_visits < 1) return "accept_visits must be >= 1";
  if (spec.transitions.empty()) return "spec needs at least one transition";
  for (const Transition& t : spec.transitions) {
    if (!known(t.from)) return "transition from unknown state '" + t.from + "'";
    if (!known(t.to)) return "transition to unknown state '" + t.to + "'";
    if (t.event.packet_type.empty()) return "transition event needs a packet type";
    // Race-freedom requirement: the event must be observable on the
    // monitor node, so every generated counter is homed there.
    const std::string& observer = t.event.dir == net::Direction::kRecv
                                      ? t.event.dst
                                      : t.event.src;
    if (observer != spec.monitor_node) {
      return "event '" + t.event.packet_type +
             "' is not observable at the monitor node '" +
             spec.monitor_node + "' (observed at '" + observer +
             "'); flip its direction or move the monitor";
    }
  }
  std::set<std::string> uniq(spec.states.begin(), spec.states.end());
  if (uniq.size() != spec.states.size()) return "duplicate state names";
  if (spec.deadline.ns <= 0) return "deadline must be positive";
  return {};
}

std::string generate_analysis_scenario(const ProtocolSpec& spec) {
  std::ostringstream os;
  os << "SCENARIO " << sanitize(spec.name) << "_analysis "
     << duration_literal(spec.deadline) << "\n";
  auto events = distinct_events(spec);
  emit_fsm(spec, events, os);
  os << "END\n";
  return os.str();
}

std::vector<GeneratedScenario> generate_drop_campaign(
    const ProtocolSpec& spec) {
  std::vector<GeneratedScenario> out;
  auto events = distinct_events(spec);
  for (std::size_t i = 0; i < spec.transitions.size(); ++i) {
    const Transition& t = spec.transitions[i];
    const PacketEvent& e = t.event;
    // Inject the drop on the side OPPOSITE the event's observation point,
    // so the conformance counters never see the destroyed packet and the
    // tracked FSM stays consistent with the protocol's real view.
    net::Direction drop_dir = e.dir == net::Direction::kRecv
                                  ? net::Direction::kSend
                                  : net::Direction::kRecv;
    std::ostringstream os;
    std::string name = sanitize(spec.name) + "_drop" + std::to_string(i) +
                       "_" + sanitize(e.packet_type);
    os << "SCENARIO " << name << " " << duration_literal(spec.deadline)
       << "\n";
    os << "  INJ: (" << e.packet_type << ", " << e.src << ", " << e.dst
       << ", " << dir_name(drop_dir) << ")\n";
    emit_fsm(spec, events, os);
    os << "  /* fault: destroy this transition's first packet in flight */\n";
    os << "  (TRUE) >> ENABLE_CNTR(INJ);\n";
    os << "  ((INJ = 1)) >> DROP(" << e.packet_type << ", " << e.src << ", "
       << e.dst << ", " << dir_name(drop_dir) << ");\n";
    os << "END\n";
    out.push_back({name, os.str(), i});
  }
  return out;
}

}  // namespace vwire::gen
