// Script generation from protocol specifications — the paper's stated
// long-term goal (§8): "it will be interesting to investigate the
// possibility of generating the fault injection and packet trace analysis
// scripts directly from the protocol specification.  This will truly make
// the testing process completely automated."
//
// A ProtocolSpec is a finite state machine over wire-observable packet
// events.  From it we generate:
//
//  * an ANALYSIS scenario — counters track the FSM purely from the wire;
//    any event that is not permitted in the current state FLAG_ERRORs, and
//    reaching the accept state the requested number of times STOPs; and
//  * a FAULT CAMPAIGN — one scenario per transition, each dropping that
//    transition's packet the first time it appears.  A robust protocol
//    (one that retransmits / recovers) still reaches accept before the
//    scenario deadline; a brittle one times out, which the runner reports
//    as a failure.
//
// State counters are one-hot and live on a designated monitor node.  Every
// spec event must be OBSERVABLE AT THE MONITOR NODE (its RECV destination
// or SEND source is the monitor) — validate() enforces this.  With all
// counters homed on one node the generated FSM needs no cross-node
// mirroring and is therefore free of control-plane races; the paper makes
// the same observation (§3.1): "the network activity can be monitored
// completely either on the sender or the receiver node".
#pragma once

#include <string>
#include <vector>

#include "vwire/net/packet.hpp"

namespace vwire::gen {

/// A wire-observable protocol event: packets of `packet_type` flowing
/// src → dst, observed on `dir`'s side.
struct PacketEvent {
  std::string packet_type;
  std::string src;
  std::string dst;
  net::Direction dir{net::Direction::kRecv};

  friend bool operator==(const PacketEvent&, const PacketEvent&) = default;
};

struct Transition {
  std::string from;
  std::string to;  ///< may equal `from` (self-loop, e.g. retransmission)
  PacketEvent event;
};

struct ProtocolSpec {
  std::string name;
  std::string monitor_node;  ///< hosts the FSM state counters
  std::vector<std::string> states;
  std::string initial_state;
  std::vector<Transition> transitions;

  /// Liveness: STOP after the FSM enters `accept_state` `accept_visits`
  /// times.  Required — every generated scenario must terminate.
  std::string accept_state;
  int accept_visits{1};

  /// Completion deadline stamped into each generated scenario.
  Duration deadline{seconds(5)};
};

/// Validates the spec; returns a human-readable error, or empty when ok.
std::string validate(const ProtocolSpec& spec);

/// The conformance-analysis scenario (SCENARIO block only; concatenate
/// with FILTER_TABLE / NODE_TABLE sections).
std::string generate_analysis_scenario(const ProtocolSpec& spec);

struct GeneratedScenario {
  std::string name;
  std::string fsl;  ///< SCENARIO block
  std::size_t transition_index;
};

/// One drop-fault scenario per transition: conformance analysis plus a
/// single injected drop of that transition's packet.
std::vector<GeneratedScenario> generate_drop_campaign(
    const ProtocolSpec& spec);

}  // namespace vwire::gen
