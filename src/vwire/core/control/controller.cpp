#include "vwire/core/control/controller.hpp"

#include <algorithm>
#include <sstream>

#include "vwire/obs/format.hpp"
#include "vwire/util/assert.hpp"
#include "vwire/util/logging.hpp"

namespace vwire::control {

std::vector<obs::FiringRecord> ScenarioResult::explain(u16 rule_id) const {
  std::vector<obs::FiringRecord> out;
  for (const obs::FiringRecord& r : firings) {
    if (r.rule == rule_id) out.push_back(r);
  }
  return out;
}

std::string ScenarioResult::summary() const {
  std::ostringstream os;
  os << "scenario '" << scenario << "': "
     << (passed() ? "PASS" : "FAIL")
     << (stopped ? " (STOP)"
         : aborted_by_watchdog  ? " (watchdog)"
         : aborted_on_node_loss ? " (node loss)"
         : timed_out            ? " (inactivity timeout)"
         : deadline_reached     ? " (deadline)"
                                : "")
     << ", " << errors.size() << " error(s), ended at " << ended_at.seconds()
     << "s";
  if (!dead_nodes.empty()) {
    os << ", dead:";
    for (const std::string& n : dead_nodes) os << " " << n;
  }
  if (effective_seed != 0) os << ", seed " << effective_seed;
  if (!link_events.empty()) os << ", " << link_events.size() << " link event(s)";
  if (robustness.any()) {
    std::vector<obs::Row> rows;
    for_each_field(robustness, [&](const char* name, u64 v) {
      if (v != 0) rows.emplace_back(name, std::to_string(v));
    });
    os << ", shed[" << obs::format_kv(rows) << "]";
  }
  if (!firings.empty()) {
    os << ", " << firings.size() << " firing(s)";
    if (firings_dropped > 0) os << " (+" << firings_dropped << " dropped)";
  }
  return os.str();
}

Controller::Controller(sim::Simulator& sim, std::vector<ManagedNode> nodes,
                       std::string_view control_node)
    : sim_(sim), nodes_(std::move(nodes)) {
  bool found = false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == control_node) {
      control_index_ = i;
      found = true;
    }
  }
  VWIRE_ASSERT(found, "control node not among managed nodes");
}

Controller::~Controller() {
  // Only unhook engines that still point at *this* context — a newer
  // Controller re-arming the same testbed has already replaced it.
  for (ManagedNode& n : nodes_) {
    if (n.engine != nullptr && n.engine->context() == &context_) {
      n.engine->set_context(nullptr);
    }
  }
}

void Controller::wire_dispatch() {
  for (ManagedNode& n : nodes_) {
    VWIRE_ASSERT(n.agent != nullptr, "managed node lacks a control agent");
    n.agent->set_handler(
        [this, &n](const net::MacAddress& from, BytesView payload) {
          on_control(n, from, payload);
        });
  }
}

std::size_t Controller::index_by_mac(const net::MacAddress& mac) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].mac == mac) return i;
  }
  return nodes_.size();
}

void Controller::on_control(ManagedNode& node, const net::MacAddress& from,
                            BytesView payload) {
  auto msg = decode(payload);
  if (!msg) return;
  const bool at_control = &node == &nodes_[control_index_];
  switch (msg->type) {
    case MsgType::kInit: {
      const auto& m = std::get<InitMsg>(msg->body);
      // The INIT establishes this node's scenario epoch: the agent starts
      // fencing stale cross-scenario traffic, the engine stamps outbound
      // mirror updates.
      node.agent->set_epoch(msg->epoch);
      node.engine->set_epoch(msg->epoch);
      bool ok = true;
      try {
        node.engine->load(core::deserialize_tables(m.tables));
      } catch (const std::exception& e) {
        ok = false;
        VWIRE_ERROR() << node.name << ": bad INIT tables: " << e.what();
      }
      if (!at_control) {
        ControlMessage ack = make_init_ack(node.id, ok);
        ack.epoch = msg->epoch;
        ack.seq = node.agent->next_seq();
        node.agent->send_to(from, encode(ack));
      }
      return;
    }
    case MsgType::kStart: {
      const auto& m = std::get<StartMsg>(msg->body);
      node.engine->start(m.controller_node);
      if (!at_control) {
        if (m.heartbeat_period_ns > 0) {
          node.agent->start_heartbeats(from, node.id,
                                       Duration{m.heartbeat_period_ns});
        }
        ControlMessage ack = make_start_ack(node.id);
        ack.epoch = msg->epoch;
        ack.seq = node.agent->next_seq();
        node.agent->send_to(from, encode(ack));
      }
      return;
    }
    case MsgType::kCounterUpdate:
    case MsgType::kTermStatus:
      node.engine->handle_control(from, payload);
      return;
    case MsgType::kStopped:
      if (at_control) ++stop_reports_;
      return;
    case MsgType::kError:
      if (at_control) ++error_reports_;
      return;
    case MsgType::kInitAck: {
      if (!at_control) return;
      std::size_t i = index_by_mac(from);
      if (i >= nodes_.size()) return;
      if (std::get<InitAckMsg>(msg->body).ok) {
        rt_[i].init_acked = true;
      } else if (!rt_[i].dead) {
        // The tables themselves were rejected — retrying the same bytes
        // cannot help.
        rt_[i].dead = true;
        report_.failed_nodes.push_back(nodes_[i].name);
      }
      return;
    }
    case MsgType::kStartAck: {
      if (!at_control) return;
      std::size_t i = index_by_mac(from);
      if (i < nodes_.size()) rt_[i].start_acked = true;
      return;
    }
    case MsgType::kHeartbeat: {
      if (!at_control) return;
      std::size_t i = index_by_mac(from);
      if (i < nodes_.size()) rt_[i].last_heartbeat = sim_.now();
      return;
    }
  }
}

bool Controller::await_acks(bool start_phase, const RunOptions& opts) {
  ControlAgent* my_agent = nodes_[control_index_].agent;
  const core::NodeId controller_id = nodes_[control_index_].id;
  auto acked = [&](std::size_t i) {
    return start_phase ? rt_[i].start_acked : rt_[i].init_acked;
  };
  auto all_done = [&] {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (i == control_index_ || rt_[i].dead) continue;
      if (!acked(i)) return false;
    }
    return true;
  };

  Duration backoff = opts.arm_retry_base;
  for (u32 attempt = 0;; ++attempt) {
    if (all_done()) return true;
    if (attempt >= opts.arm_max_attempts) break;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (i == control_index_ || rt_[i].dead || acked(i)) continue;
      ControlMessage msg =
          start_phase ? make_start(controller_id, opts.heartbeat_period)
                      : make_init(tables_);
      msg.epoch = epoch_;
      msg.seq = my_agent->next_seq();
      my_agent->send_to(nodes_[i].mac, encode(msg));
      if (attempt > 0) {
        ++(start_phase ? report_.start_retries : report_.init_retries);
      }
    }
    TimePoint wait_until = sim_.now() + backoff;
    while (sim_.now() < wait_until && !all_done()) {
      sim_.run_until(std::min(wait_until, sim_.now() + opts.poll));
    }
    backoff = backoff * 2;
  }
  if (all_done()) return true;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i == control_index_ || rt_[i].dead || acked(i)) continue;
    rt_[i].dead = true;
    report_.failed_nodes.push_back(nodes_[i].name);
    VWIRE_WARN() << "node " << nodes_[i].name << " never acknowledged "
                 << (start_phase ? "START" : "INIT") << " ("
                 << opts.arm_max_attempts << " attempts)";
  }
  return false;
}

ArmReport Controller::arm(const core::TableSet& tables,
                          const RunOptions& opts) {
  tables_ = tables;
  context_.reset();
  wire_dispatch();
  armed_opts_ = opts;
  report_ = {};
  rt_.assign(nodes_.size(), {});

  // Identify each managed node in the script's node table and hand engines
  // their context.
  for (ManagedNode& n : nodes_) {
    n.id = tables_.nodes.find_mac(n.mac);
    n.engine->set_context(&context_);
  }

  // Enter a fresh scenario generation.  The agent's epoch survives this
  // Controller object, so back-to-back scenarios on one testbed always get
  // distinct epochs and late messages from a previous run are fenced off.
  epoch_ = nodes_[control_index_].agent->epoch() + 1;

  // Distribute the tables, then the start signal, over the control plane
  // ("For simplicity, all FIEs and FAEs are sent the entire set of tables",
  // paper §5.1).  The control node initializes itself without a wire hop;
  // remote nodes are retried until they acknowledge.
  ManagedNode& self = nodes_[control_index_];
  {
    ControlMessage init = make_init(tables_);
    init.epoch = epoch_;
    on_control(self, self.mac, encode(init));
    rt_[control_index_].init_acked = true;
  }
  await_acks(/*start_phase=*/false, opts);
  {
    ControlMessage start = make_start(self.id, opts.heartbeat_period);
    start.epoch = epoch_;
    on_control(self, self.mac, encode(start));
    rt_[control_index_].start_acked = true;
  }
  await_acks(/*start_phase=*/true, opts);

  report_.ok = report_.failed_nodes.empty();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (rt_[i].dead) continue;
    VWIRE_ASSERT(nodes_[i].engine->running(),
                 "acked engine failed to start (handshake bug?)");
  }
  context_.note_activity(sim_.now());  // the run starts "active"
  armed_ = true;
  return report_;
}

std::size_t Controller::background_events() const {
  std::size_t n = armed_opts_.extra_background_events;
  for (const ManagedNode& m : nodes_) {
    if (m.agent->heartbeating()) ++n;
  }
  return n;
}

ScenarioResult Controller::run(const RunOptions& opts) {
  VWIRE_ASSERT(armed_, "run() before arm()");
  ScenarioResult result;
  result.scenario = tables_.scenario_name;

  // Nodes that never armed are dead from the start.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (rt_[i].dead) result.dead_nodes.push_back(nodes_[i].name);
  }
  const Duration hb = armed_opts_.heartbeat_period;
  const Duration hb_budget = hb * static_cast<i64>(
      std::max<u32>(1, armed_opts_.heartbeat_miss_budget));
  for (NodeRt& rt : rt_) rt.last_heartbeat = sim_.now();

  // The scenario's declared timeout ("SCENARIO name 1sec") is a completion
  // deadline: the scripted sequence must reach STOP within the window
  // (paper §6.2 — "the fault detection and recovery should complete within
  // 1 sec, an error is flagged if the scenario is terminated due to
  // inactivity").
  const Duration timeout = tables_.inactivity_timeout;
  const TimePoint scenario_deadline =
      timeout.ns > 0 ? sim_.now() + timeout : TimePoint{};
  const TimePoint deadline = sim_.now() + opts.deadline;

  bool abort_on_loss =
      opts.on_node_loss == NodeLossPolicy::kAbort && !result.dead_nodes.empty();
  while (!abort_on_loss) {
    sim_.run_until(sim_.now() + opts.poll);
    // The watchdog outranks every other verdict: a wedged trial must end
    // the moment the supervisor regains control, before any more
    // simulation is attempted.
    if (opts.should_abort && opts.should_abort()) {
      result.aborted_by_watchdog = true;
      break;
    }
    // Liveness: a node whose beacons stopped arriving is dead.
    if (hb.ns > 0) {
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (i == control_index_ || rt_[i].dead) continue;
        if (sim_.now() - rt_[i].last_heartbeat > hb_budget) {
          rt_[i].dead = true;
          result.dead_nodes.push_back(nodes_[i].name);
          VWIRE_WARN() << "node " << nodes_[i].name << " declared dead (no "
                       << "heartbeat for " << hb_budget.millis_f() << "ms)";
          if (opts.on_node_loss == NodeLossPolicy::kAbort) {
            abort_on_loss = true;
          }
        }
      }
      if (abort_on_loss) break;
    }
    if (context_.stopped()) {
      result.stopped = true;
      break;
    }
    if (opts.stop_on_first_error && !context_.errors().empty()) break;
    if (timeout.ns > 0 && sim_.now() >= scenario_deadline) {
      result.timed_out = true;
      break;
    }
    if (sim_.now() >= deadline) {
      result.deadline_reached = true;
      break;
    }
    if (sim_.pending_events() <= background_events()) {
      // Nothing left to simulate but liveness beacons ticking over.  Don't
      // call it the natural end while any live node is suspect — its beat
      // is overdue, or its beacon stopped emitting altogether (the agent
      // check is harness bookkeeping like pending_events(), not something
      // a real distributed controller could see) — the run must stay open
      // until the miss budget renders the verdict.
      bool suspect = false;
      if (hb.ns > 0) {
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          if (i == control_index_ || rt_[i].dead) continue;
          if (!nodes_[i].agent->heartbeating() ||
              sim_.now() - rt_[i].last_heartbeat > hb) {
            suspect = true;
          }
        }
      }
      if (!suspect) {
        if (timeout.ns > 0) result.timed_out = true;
        break;
      }
    }
  }
  result.aborted_on_node_loss = abort_on_loss;
  result.ended_at = sim_.now();
  result.errors = context_.errors();

  // The paper (§6.2): termination by the inactivity timer without a STOP
  // is itself a verification failure.
  if (result.timed_out && !result.stopped) {
    result.errors.push_back({sim_.now(), core::kInvalidId, core::kInvalidId});
  }

  // Final counter values from their home engines (the FAE report).  A
  // counter homed on a dead node is last-known, not authoritative.
  for (std::size_t c = 0; c < tables_.counters.entries.size(); ++c) {
    const core::CounterEntry& e = tables_.counters.entries[c];
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].id != e.home) continue;
      // A node that never armed has no engine state to report from.
      if (nodes_[i].engine->loaded()) {
        result.counters[e.name] =
            nodes_[i].engine->counter_value(static_cast<core::CounterId>(c));
      }
      if (rt_[i].dead) result.degraded_counters.push_back(e.name);
    }
  }
  // Rule-firing provenance: drain each engine's ring (in-process — the
  // records never travel the wire; they are debug state the harness owns)
  // and stitch the per-node streams into one simulated-time order.
  for (const core::NodeEntry& e : tables_.nodes.entries) {
    result.node_names.push_back(e.name);
  }
  for (const core::CounterEntry& e : tables_.counters.entries) {
    result.counter_names.push_back(e.name);
  }
  for (ManagedNode& n : nodes_) {
    if (!n.engine->loaded()) continue;
    const obs::ProvenanceRing& ring = n.engine->provenance();
    for (obs::FiringRecord& r : ring.collect()) {
      r.node_name = n.name;
      result.firings.push_back(std::move(r));
    }
    result.firings_dropped += ring.dropped();
  }
  std::stable_sort(result.firings.begin(), result.firings.end(),
                   [](const obs::FiringRecord& a, const obs::FiringRecord& b) {
                     return a.at < b.at;
                   });

  // Tear down the liveness plane; the next arm() restarts it.
  for (ManagedNode& n : nodes_) n.agent->stop_heartbeats();
  armed_ = false;
  return result;
}

}  // namespace vwire::control
