#include "vwire/core/control/controller.hpp"

#include <sstream>

#include "vwire/util/assert.hpp"
#include "vwire/util/logging.hpp"

namespace vwire::control {

std::string ScenarioResult::summary() const {
  std::ostringstream os;
  os << "scenario '" << scenario << "': "
     << (passed() ? "PASS" : "FAIL")
     << (stopped ? " (STOP)" : timed_out ? " (inactivity timeout)"
                  : deadline_reached     ? " (deadline)"
                                         : "")
     << ", " << errors.size() << " error(s), ended at " << ended_at.seconds()
     << "s";
  return os.str();
}

Controller::Controller(sim::Simulator& sim, std::vector<ManagedNode> nodes,
                       std::string_view control_node)
    : sim_(sim), nodes_(std::move(nodes)) {
  bool found = false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == control_node) {
      control_index_ = i;
      found = true;
    }
  }
  VWIRE_ASSERT(found, "control node not among managed nodes");
}

void Controller::wire_dispatch() {
  for (ManagedNode& n : nodes_) {
    VWIRE_ASSERT(n.agent != nullptr, "managed node lacks a control agent");
    n.agent->set_handler(
        [this, &n](const net::MacAddress& from, BytesView payload) {
          on_control(n, from, payload);
        });
  }
}

void Controller::on_control(ManagedNode& node, const net::MacAddress& from,
                            BytesView payload) {
  auto msg = decode(payload);
  if (!msg) return;
  switch (msg->type) {
    case MsgType::kInit: {
      const auto& m = std::get<InitMsg>(msg->body);
      try {
        node.engine->load(core::deserialize_tables(m.tables));
      } catch (const std::exception& e) {
        VWIRE_ERROR() << node.name << ": bad INIT tables: " << e.what();
      }
      return;
    }
    case MsgType::kStart: {
      const auto& m = std::get<StartMsg>(msg->body);
      node.engine->start(m.controller_node);
      return;
    }
    case MsgType::kCounterUpdate:
    case MsgType::kTermStatus:
      node.engine->handle_control(from, payload);
      return;
    case MsgType::kStopped:
      if (&node == &nodes_[control_index_]) ++stop_reports_;
      return;
    case MsgType::kError:
      if (&node == &nodes_[control_index_]) ++error_reports_;
      return;
  }
}

void Controller::arm(const core::TableSet& tables) {
  tables_ = tables;
  context_.reset();
  wire_dispatch();

  // Identify each managed node in the script's node table and hand engines
  // their context.
  core::NodeId controller_id = core::kInvalidId;
  for (ManagedNode& n : nodes_) {
    n.id = tables_.nodes.find_mac(n.mac);
    n.engine->set_context(&context_);
  }
  controller_id = nodes_[control_index_].id;

  // Distribute the tables, then the start signal, over the control plane
  // ("For simplicity, all FIEs and FAEs are sent the entire set of tables",
  // paper §5.1).  The control node initializes itself without a wire hop.
  ControlAgent* my_agent = nodes_[control_index_].agent;
  Bytes init = encode(make_init(tables_));
  Bytes start = encode(make_start(controller_id));
  for (ManagedNode& n : nodes_) {
    if (&n == &nodes_[control_index_]) {
      on_control(n, n.mac, init);
    } else {
      my_agent->send_to(n.mac, init);
    }
  }
  for (ManagedNode& n : nodes_) {
    if (&n == &nodes_[control_index_]) {
      on_control(n, n.mac, start);
    } else {
      my_agent->send_to(n.mac, start);
    }
  }

  // Let distribution drain: run until every engine reports running, capped
  // at a generous bound.
  TimePoint give_up = sim_.now() + seconds(5);
  while (sim_.now() < give_up) {
    bool all = true;
    for (const ManagedNode& n : nodes_) all = all && n.engine->running();
    if (all) break;
    sim_.run_until(sim_.now() + millis(1));
  }
  for (const ManagedNode& n : nodes_) {
    VWIRE_ASSERT(n.engine->running(), "engine failed to start (INIT lost?)");
  }
  context_.note_activity(sim_.now());  // the run starts "active"
  armed_ = true;
}

ScenarioResult Controller::run(const RunOptions& opts) {
  VWIRE_ASSERT(armed_, "run() before arm()");
  ScenarioResult result;
  result.scenario = tables_.scenario_name;

  // The scenario's declared timeout ("SCENARIO name 1sec") is a completion
  // deadline: the scripted sequence must reach STOP within the window
  // (paper §6.2 — "the fault detection and recovery should complete within
  // 1 sec, an error is flagged if the scenario is terminated due to
  // inactivity").
  const Duration timeout = tables_.inactivity_timeout;
  const TimePoint scenario_deadline =
      timeout.ns > 0 ? sim_.now() + timeout : TimePoint{};
  const TimePoint deadline = sim_.now() + opts.deadline;

  for (;;) {
    sim_.run_until(sim_.now() + opts.poll);
    if (context_.stopped()) {
      result.stopped = true;
      break;
    }
    if (opts.stop_on_first_error && !context_.errors().empty()) break;
    if (timeout.ns > 0 && sim_.now() >= scenario_deadline) {
      result.timed_out = true;
      break;
    }
    if (sim_.now() >= deadline) {
      result.deadline_reached = true;
      break;
    }
    if (sim_.pending_events() == 0) {
      // Nothing left to simulate: without a declared timeout this is the
      // natural end of the run.
      if (timeout.ns > 0) result.timed_out = true;
      break;
    }
  }
  result.ended_at = sim_.now();
  result.errors = context_.errors();

  // The paper (§6.2): termination by the inactivity timer without a STOP
  // is itself a verification failure.
  if (result.timed_out && !result.stopped) {
    result.errors.push_back({sim_.now(), core::kInvalidId, core::kInvalidId});
  }

  // Final counter values from their home engines (the FAE report).
  for (std::size_t c = 0; c < tables_.counters.entries.size(); ++c) {
    const core::CounterEntry& e = tables_.counters.entries[c];
    for (const ManagedNode& n : nodes_) {
      if (n.id == e.home) {
        result.counters[e.name] =
            n.engine->counter_value(static_cast<core::CounterId>(c));
      }
    }
  }
  armed_ = false;
  return result;
}

}  // namespace vwire::control
