#include "vwire/core/control/agent.hpp"

namespace vwire::control {

void ControlAgent::send_to(const net::MacAddress& dst, BytesView payload) {
  ++stats_.tx_messages;
  pass_down(net::Packet(net::make_frame(
      dst, node_->mac(), static_cast<u16>(net::EtherType::kVwControl),
      payload)));
}

void ControlAgent::receive_up(net::Packet pkt) {
  if (pkt.ethertype() != static_cast<u16>(net::EtherType::kVwControl)) {
    pass_up(std::move(pkt));
    return;
  }
  auto eth = pkt.ethernet();
  if (!eth || (!(eth->dst == node_->mac()) && !eth->dst.is_broadcast())) {
    return;  // not for us
  }
  BytesView payload = pkt.l3_payload();
  if (fencing_) {
    auto env = peek(payload);
    if (!env) {
      ++stats_.rx_malformed;
      return;
    }
    if (is_epoch_fenced(env->type)) {
      if (env->epoch != epoch_) {
        ++stats_.rx_dropped_stale;
        return;
      }
      u32& last = last_seq_[eth->src];
      if (env->seq <= last) {
        ++stats_.rx_dropped_dup;
        return;
      }
      last = env->seq;
    }
  }
  ++stats_.rx_messages;
  if (handler_) handler_(eth->src, payload);
}

void ControlAgent::set_epoch(u32 epoch) {
  fencing_ = true;
  if (epoch != epoch_) {
    epoch_ = epoch;
    last_seq_.clear();
  }
}

void ControlAgent::start_heartbeats(const net::MacAddress& to,
                                    core::NodeId self_id, Duration period) {
  if (period.ns <= 0 || node_ == nullptr) return;
  hb_target_ = to;
  hb_self_ = self_id;
  hb_period_ = period;
  hb_configured_ = true;
  if (!hb_timer_) {
    hb_timer_.emplace(node_->simulator(), [this] { send_heartbeat(); });
  }
  send_heartbeat();
}

void ControlAgent::send_heartbeat() {
  ControlMessage msg = make_heartbeat(hb_self_);
  msg.epoch = epoch_;
  msg.seq = next_seq();
  ++stats_.heartbeats_tx;
  send_to(hb_target_, encode(msg));
  hb_timer_->start(hb_period_);
}

void ControlAgent::stop_heartbeats() {
  hb_configured_ = false;
  if (hb_timer_) hb_timer_->cancel();
}

void ControlAgent::on_node_crash() {
  if (hb_timer_) hb_timer_->cancel();
}

void ControlAgent::on_node_recover() {
  if (hb_configured_ && hb_timer_ && !hb_timer_->armed()) send_heartbeat();
}

}  // namespace vwire::control
