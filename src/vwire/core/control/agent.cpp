#include "vwire/core/control/agent.hpp"

namespace vwire::control {

void ControlAgent::send_to(const net::MacAddress& dst, BytesView payload) {
  ++stats_.tx_messages;
  pass_down(net::Packet(net::make_frame(
      dst, node_->mac(), static_cast<u16>(net::EtherType::kVwControl),
      payload)));
}

void ControlAgent::receive_up(net::Packet pkt) {
  if (pkt.ethertype() != static_cast<u16>(net::EtherType::kVwControl)) {
    pass_up(std::move(pkt));
    return;
  }
  auto eth = pkt.ethernet();
  if (!eth || (!(eth->dst == node_->mac()) && !eth->dst.is_broadcast())) {
    return;  // not for us
  }
  ++stats_.rx_messages;
  if (handler_) handler_(eth->src, pkt.l3_payload());
}

}  // namespace vwire::control
