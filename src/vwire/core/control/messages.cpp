#include "vwire/core/control/messages.hpp"

namespace vwire::control {

Bytes encode(const ControlMessage& msg) {
  ByteWriter w;
  w.u8v(static_cast<u8>(msg.type));
  switch (msg.type) {
    case MsgType::kInit: {
      const auto& m = std::get<InitMsg>(msg.body);
      w.u32v(static_cast<u32>(m.tables.size()));
      w.raw(m.tables);
      break;
    }
    case MsgType::kStart:
      w.u16v(std::get<StartMsg>(msg.body).controller_node);
      break;
    case MsgType::kCounterUpdate: {
      const auto& m = std::get<CounterUpdateMsg>(msg.body);
      w.u16v(m.counter);
      w.u64v(static_cast<u64>(m.value));
      break;
    }
    case MsgType::kTermStatus: {
      const auto& m = std::get<TermStatusMsg>(msg.body);
      w.u16v(m.term);
      w.u8v(m.state ? 1 : 0);
      break;
    }
    case MsgType::kStopped:
      w.u16v(std::get<StoppedMsg>(msg.body).node);
      break;
    case MsgType::kError: {
      const auto& m = std::get<ErrorMsg>(msg.body);
      w.u16v(m.node);
      w.u64v(static_cast<u64>(m.time_ns));
      w.u16v(m.cond);
      break;
    }
  }
  return w.take();
}

std::optional<ControlMessage> decode(BytesView payload) {
  try {
    ByteReader r(payload);
    ControlMessage msg;
    u8 t = r.u8v();
    switch (static_cast<MsgType>(t)) {
      case MsgType::kInit: {
        msg.type = MsgType::kInit;
        u32 n = r.u32v();
        msg.body = InitMsg{r.raw(n)};
        return msg;
      }
      case MsgType::kStart:
        msg.type = MsgType::kStart;
        msg.body = StartMsg{r.u16v()};
        return msg;
      case MsgType::kCounterUpdate: {
        msg.type = MsgType::kCounterUpdate;
        CounterUpdateMsg m;
        m.counter = r.u16v();
        m.value = static_cast<i64>(r.u64v());
        msg.body = m;
        return msg;
      }
      case MsgType::kTermStatus: {
        msg.type = MsgType::kTermStatus;
        TermStatusMsg m;
        m.term = r.u16v();
        m.state = r.u8v() != 0;
        msg.body = m;
        return msg;
      }
      case MsgType::kStopped:
        msg.type = MsgType::kStopped;
        msg.body = StoppedMsg{r.u16v()};
        return msg;
      case MsgType::kError: {
        msg.type = MsgType::kError;
        ErrorMsg m;
        m.node = r.u16v();
        m.time_ns = static_cast<i64>(r.u64v());
        m.cond = r.u16v();
        msg.body = m;
        return msg;
      }
      default:
        return std::nullopt;
    }
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

ControlMessage make_init(const core::TableSet& tables) {
  return {MsgType::kInit, InitMsg{core::serialize(tables)}};
}
ControlMessage make_start(core::NodeId controller) {
  return {MsgType::kStart, StartMsg{controller}};
}
ControlMessage make_counter_update(core::CounterId c, i64 v) {
  return {MsgType::kCounterUpdate, CounterUpdateMsg{c, v}};
}
ControlMessage make_term_status(core::TermId t, bool s) {
  return {MsgType::kTermStatus, TermStatusMsg{t, s}};
}
ControlMessage make_stopped(core::NodeId n) {
  return {MsgType::kStopped, StoppedMsg{n}};
}
ControlMessage make_error(core::NodeId n, TimePoint at, core::CondId cond) {
  return {MsgType::kError, ErrorMsg{n, at.ns, cond}};
}

}  // namespace vwire::control
