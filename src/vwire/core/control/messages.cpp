#include "vwire/core/control/messages.hpp"

#include "vwire/util/checksum.hpp"

namespace vwire::control {

namespace {

/// Full envelope: checksum(2) + length(4) + type(1) + epoch(4) + seq(4).
constexpr std::size_t kEnvelopeSize = 15;

/// Checks the structural envelope: minimum size, the declared total length,
/// and the RFC 1071 checksum over everything after the checksum field.
bool envelope_ok(BytesView payload) {
  if (payload.size() < kEnvelopeSize) return false;
  if (read_u32(payload, 2) != payload.size()) return false;
  return internet_checksum(payload.subspan(2)) == read_u16(payload, 0);
}

}  // namespace

Bytes encode(const ControlMessage& msg) {
  ByteWriter w;
  w.u8v(static_cast<u8>(msg.type));
  w.u32v(msg.epoch);
  w.u32v(msg.seq);
  switch (msg.type) {
    case MsgType::kInit: {
      const auto& m = std::get<InitMsg>(msg.body);
      w.u32v(static_cast<u32>(m.tables.size()));
      w.raw(m.tables);
      break;
    }
    case MsgType::kStart: {
      const auto& m = std::get<StartMsg>(msg.body);
      w.u16v(m.controller_node);
      w.u64v(static_cast<u64>(m.heartbeat_period_ns));
      break;
    }
    case MsgType::kCounterUpdate: {
      const auto& m = std::get<CounterUpdateMsg>(msg.body);
      w.u16v(m.counter);
      w.u64v(static_cast<u64>(m.value));
      break;
    }
    case MsgType::kTermStatus: {
      const auto& m = std::get<TermStatusMsg>(msg.body);
      w.u16v(m.term);
      w.u8v(m.state ? 1 : 0);
      break;
    }
    case MsgType::kStopped:
      w.u16v(std::get<StoppedMsg>(msg.body).node);
      break;
    case MsgType::kError: {
      const auto& m = std::get<ErrorMsg>(msg.body);
      w.u16v(m.node);
      w.u64v(static_cast<u64>(m.time_ns));
      w.u16v(m.cond);
      break;
    }
    case MsgType::kInitAck: {
      const auto& m = std::get<InitAckMsg>(msg.body);
      w.u16v(m.node);
      w.u8v(m.ok ? 1 : 0);
      break;
    }
    case MsgType::kStartAck:
      w.u16v(std::get<StartAckMsg>(msg.body).node);
      break;
    case MsgType::kHeartbeat:
      w.u16v(std::get<HeartbeatMsg>(msg.body).node);
      break;
  }
  Bytes rest = w.take();
  ByteWriter tail;
  tail.u32v(static_cast<u32>(rest.size() + 6));  // total: sum(2)+len(4)+rest
  tail.raw(rest);
  Bytes summed = tail.take();
  ByteWriter out;
  out.u16v(internet_checksum(summed));
  out.raw(summed);
  return out.take();
}

std::optional<Envelope> peek(BytesView payload) {
  if (!envelope_ok(payload)) return std::nullopt;
  u8 t = read_u8(payload, 6);
  if (t < static_cast<u8>(MsgType::kInit) ||
      t > static_cast<u8>(MsgType::kHeartbeat)) {
    return std::nullopt;
  }
  return Envelope{static_cast<MsgType>(t), read_u32(payload, 7),
                  read_u32(payload, 11)};
}

std::optional<ControlMessage> decode(BytesView payload) {
  if (!envelope_ok(payload)) return std::nullopt;
  try {
    ByteReader r(payload);
    r.u16v();  // checksum, verified above
    r.u32v();  // length, verified above
    ControlMessage msg;
    u8 t = r.u8v();
    msg.epoch = r.u32v();
    msg.seq = r.u32v();
    switch (static_cast<MsgType>(t)) {
      case MsgType::kInit: {
        msg.type = MsgType::kInit;
        u32 n = r.u32v();
        msg.body = InitMsg{r.raw(n)};
        break;
      }
      case MsgType::kStart: {
        msg.type = MsgType::kStart;
        StartMsg m;
        m.controller_node = r.u16v();
        m.heartbeat_period_ns = static_cast<i64>(r.u64v());
        msg.body = m;
        break;
      }
      case MsgType::kCounterUpdate: {
        msg.type = MsgType::kCounterUpdate;
        CounterUpdateMsg m;
        m.counter = r.u16v();
        m.value = static_cast<i64>(r.u64v());
        msg.body = m;
        break;
      }
      case MsgType::kTermStatus: {
        msg.type = MsgType::kTermStatus;
        TermStatusMsg m;
        m.term = r.u16v();
        m.state = r.u8v() != 0;
        msg.body = m;
        break;
      }
      case MsgType::kStopped:
        msg.type = MsgType::kStopped;
        msg.body = StoppedMsg{r.u16v()};
        break;
      case MsgType::kError: {
        msg.type = MsgType::kError;
        ErrorMsg m;
        m.node = r.u16v();
        m.time_ns = static_cast<i64>(r.u64v());
        m.cond = r.u16v();
        msg.body = m;
        break;
      }
      case MsgType::kInitAck: {
        msg.type = MsgType::kInitAck;
        InitAckMsg m;
        m.node = r.u16v();
        m.ok = r.u8v() != 0;
        msg.body = m;
        break;
      }
      case MsgType::kStartAck:
        msg.type = MsgType::kStartAck;
        msg.body = StartAckMsg{r.u16v()};
        break;
      case MsgType::kHeartbeat:
        msg.type = MsgType::kHeartbeat;
        msg.body = HeartbeatMsg{r.u16v()};
        break;
      default:
        return std::nullopt;
    }
    // Trailing bytes mean the payload is not what the sender encoded —
    // a truncated longer message must not pass as a shorter one.
    if (!r.done()) return std::nullopt;
    return msg;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

ControlMessage make_init(const core::TableSet& tables) {
  return {MsgType::kInit, 0, 0, InitMsg{core::serialize(tables)}};
}
ControlMessage make_start(core::NodeId controller, Duration heartbeat_period) {
  return {MsgType::kStart, 0, 0, StartMsg{controller, heartbeat_period.ns}};
}
ControlMessage make_counter_update(core::CounterId c, i64 v) {
  return {MsgType::kCounterUpdate, 0, 0, CounterUpdateMsg{c, v}};
}
ControlMessage make_term_status(core::TermId t, bool s) {
  return {MsgType::kTermStatus, 0, 0, TermStatusMsg{t, s}};
}
ControlMessage make_stopped(core::NodeId n) {
  return {MsgType::kStopped, 0, 0, StoppedMsg{n}};
}
ControlMessage make_error(core::NodeId n, TimePoint at, core::CondId cond) {
  return {MsgType::kError, 0, 0, ErrorMsg{n, at.ns, cond}};
}
ControlMessage make_init_ack(core::NodeId n, bool ok) {
  return {MsgType::kInitAck, 0, 0, InitAckMsg{n, ok}};
}
ControlMessage make_start_ack(core::NodeId n) {
  return {MsgType::kStartAck, 0, 0, StartAckMsg{n}};
}
ControlMessage make_heartbeat(core::NodeId n) {
  return {MsgType::kHeartbeat, 0, 0, HeartbeatMsg{n}};
}

}  // namespace vwire::control
