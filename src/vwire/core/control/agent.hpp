// Per-node control agent: transports control-plane payloads in raw
// Ethernet frames (ethertype 0x88B5), below the FIE/FAE so engines never
// classify VirtualWire's own traffic, above the RLL so control messages are
// delivered reliably (paper §3.3, §5.2).
#pragma once

#include <functional>

#include "vwire/host/node.hpp"

namespace vwire::control {

struct AgentStats {
  u64 tx_messages{0};
  u64 rx_messages{0};
  u64 rx_malformed{0};
};

class ControlAgent final : public host::Layer {
 public:
  using Handler =
      std::function<void(const net::MacAddress& from, BytesView payload)>;

  std::string_view name() const override { return "vwctl"; }

  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Sends a payload to the node owning `dst`.
  void send_to(const net::MacAddress& dst, BytesView payload);

  /// Consumes inbound control frames addressed to this node.
  void receive_up(net::Packet pkt) override;

  const AgentStats& stats() const { return stats_; }

 private:
  Handler handler_;
  AgentStats stats_;
};

}  // namespace vwire::control
