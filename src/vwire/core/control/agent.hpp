// Per-node control agent: transports control-plane payloads in raw
// Ethernet frames (ethertype 0x88B5), below the FIE/FAE so engines never
// classify VirtualWire's own traffic, above the RLL so control messages are
// delivered reliably (paper §3.3, §5.2).
//
// Beyond transport, the agent is the node's control-plane gatekeeper:
//  * epoch fencing — once an epoch is set (by the scenario's INIT), inbound
//    state-mirroring messages from another scenario generation are dropped
//    instead of corrupting mirrored counters/terms;
//  * duplicate suppression — per-source sequence numbers drop replays;
//  * liveness — the agent emits periodic kHeartbeat beacons toward the
//    controller so a crashed node is detected by a miss budget.
#pragma once

#include <functional>
#include <optional>

#include "vwire/core/control/messages.hpp"
#include "vwire/host/node.hpp"
#include "vwire/sim/timer.hpp"

namespace vwire::control {

struct AgentStats {
  u64 tx_messages{0};
  u64 rx_messages{0};
  u64 rx_malformed{0};        ///< undecodable envelope (fencing enabled)
  u64 rx_dropped_stale{0};    ///< fenced message from another epoch
  u64 rx_dropped_dup{0};      ///< fenced message with a replayed sequence
  u64 heartbeats_tx{0};
};

/// Single source of field names for formatting and registry exposure.
template <class Fn>
void for_each_field(const AgentStats& s, Fn&& fn) {
  fn("tx_messages", s.tx_messages);
  fn("rx_messages", s.rx_messages);
  fn("rx_malformed", s.rx_malformed);
  fn("rx_dropped_stale", s.rx_dropped_stale);
  fn("rx_dropped_dup", s.rx_dropped_dup);
  fn("heartbeats_tx", s.heartbeats_tx);
}

class ControlAgent final : public host::Layer {
 public:
  using Handler =
      std::function<void(const net::MacAddress& from, BytesView payload)>;

  std::string_view name() const override { return "vwctl"; }

  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Sends a payload to the node owning `dst`.
  void send_to(const net::MacAddress& dst, BytesView payload);

  /// Consumes inbound control frames addressed to this node.
  void receive_up(net::Packet pkt) override;

  // --- epoch fencing ----------------------------------------------------
  /// Enters `epoch` and enables envelope fencing on the receive path.
  /// A new epoch resets the per-source duplicate-detection state.
  void set_epoch(u32 epoch);
  u32 epoch() const { return epoch_; }
  /// Fresh sequence number for an outbound fenced message.  One monotone
  /// stream per node (controller and engine share it), so receivers can
  /// dedup by source MAC alone.
  u32 next_seq() { return ++tx_seq_; }

  // --- liveness ---------------------------------------------------------
  /// Starts (or re-targets) the periodic heartbeat toward `to`.  The first
  /// beat is sent immediately.  A period <= 0 is ignored.
  void start_heartbeats(const net::MacAddress& to, core::NodeId self_id,
                        Duration period);
  void stop_heartbeats();
  bool heartbeating() const { return hb_timer_ && hb_timer_->armed(); }

  /// Crash silences the beacon; recover resumes it if it was configured.
  void on_node_crash() override;
  void on_node_recover() override;

  const AgentStats& stats() const { return stats_; }

 private:
  void send_heartbeat();

  Handler handler_;
  AgentStats stats_;

  bool fencing_{false};
  u32 epoch_{0};
  u32 tx_seq_{0};
  std::unordered_map<net::MacAddress, u32> last_seq_;  ///< per-source rx seq

  std::optional<sim::Timer> hb_timer_;
  net::MacAddress hb_target_;
  core::NodeId hb_self_{core::kInvalidId};
  Duration hb_period_{};
  bool hb_configured_{false};
};

}  // namespace vwire::control
