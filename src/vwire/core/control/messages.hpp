// Control plane message codec (paper §5.2).
//
// "The control plane messages are implemented as payloads of raw Ethernet
//  frames.  Control messages are exchanged to communicate changes in
//  counter values and term state to the appropriate nodes."
//
// Message payload: [type:1][body...], carried in ethertype-0x88B5 frames
// and made reliable by the RLL underneath.
#pragma once

#include <variant>

#include "vwire/core/tables/tables.hpp"

namespace vwire::control {

enum class MsgType : u8 {
  kInit = 1,           ///< controller → node: the serialized six tables
  kStart = 2,          ///< controller → node: begin the scenario
  kCounterUpdate = 3,  ///< counter home → mirroring nodes
  kTermStatus = 4,     ///< term home → condition-evaluating nodes
  kStopped = 5,        ///< node → controller: a STOP action fired
  kError = 6,          ///< node → controller: a FLAG_ERROR fired
};

struct InitMsg {
  Bytes tables;  ///< serialized core::TableSet
};

struct StartMsg {
  core::NodeId controller_node{0};
};

struct CounterUpdateMsg {
  core::CounterId counter{0};
  i64 value{0};
};

struct TermStatusMsg {
  core::TermId term{0};
  bool state{false};
};

struct StoppedMsg {
  core::NodeId node{0};
};

struct ErrorMsg {
  core::NodeId node{0};
  i64 time_ns{0};
  core::CondId cond{0};
};

struct ControlMessage {
  MsgType type{MsgType::kStart};
  std::variant<InitMsg, StartMsg, CounterUpdateMsg, TermStatusMsg, StoppedMsg,
               ErrorMsg>
      body;
};

Bytes encode(const ControlMessage& msg);

/// Decodes a payload; nullopt on malformed/truncated input (a corrupted
/// control frame must not crash the engine).
std::optional<ControlMessage> decode(BytesView payload);

// Convenience constructors.
ControlMessage make_init(const core::TableSet& tables);
ControlMessage make_start(core::NodeId controller);
ControlMessage make_counter_update(core::CounterId c, i64 v);
ControlMessage make_term_status(core::TermId t, bool s);
ControlMessage make_stopped(core::NodeId n);
ControlMessage make_error(core::NodeId n, TimePoint at, core::CondId cond);

}  // namespace vwire::control
