// Control plane message codec (paper §5.2).
//
// "The control plane messages are implemented as payloads of raw Ethernet
//  frames.  Control messages are exchanged to communicate changes in
//  counter values and term state to the appropriate nodes."
//
// Message payload, carried in ethertype-0x88B5 frames and made reliable by
// the RLL underneath:
//
//   [checksum:2][length:4][type:1][epoch:4][seq:4][body...]
//
// The envelope is the control plane's reliability contract:
//  * checksum — RFC 1071 sum over everything after it; a corrupted control
//    frame decodes to nullopt instead of poisoning mirrored state.
//  * length — total payload size.  The ones-complement sum cannot see a
//    truncated run of zero bytes; the explicit length can, so any cut or
//    padded payload is rejected structurally.
//  * epoch — the scenario generation, bumped by the controller at every
//    arm().  State-mirroring messages from a previous scenario that are
//    still in flight (or replayed) are fenced off by the receiving agent.
//  * seq — per-sending-node monotone sequence, used by receivers to drop
//    duplicate state updates.  INIT/START are exempt from fencing: they
//    *establish* the epoch and are deliberately retransmitted until acked.
#pragma once

#include <variant>

#include "vwire/core/tables/tables.hpp"

namespace vwire::control {

enum class MsgType : u8 {
  kInit = 1,           ///< controller → node: the serialized six tables
  kStart = 2,          ///< controller → node: begin the scenario
  kCounterUpdate = 3,  ///< counter home → mirroring nodes
  kTermStatus = 4,     ///< term home → condition-evaluating nodes
  kStopped = 5,        ///< node → controller: a STOP action fired
  kError = 6,          ///< node → controller: a FLAG_ERROR fired
  kInitAck = 7,        ///< node → controller: tables loaded (or rejected)
  kStartAck = 8,       ///< node → controller: engine running
  kHeartbeat = 9,      ///< node → controller: periodic liveness beacon
};

/// Messages that must match the receiver's current epoch.  INIT/START are
/// exempt — they carry the new epoch and are retried until acknowledged.
constexpr bool is_epoch_fenced(MsgType t) {
  return t != MsgType::kInit && t != MsgType::kStart;
}

struct InitMsg {
  Bytes tables;  ///< serialized core::TableSet
};

struct StartMsg {
  core::NodeId controller_node{0};
  i64 heartbeat_period_ns{0};  ///< 0 = liveness disabled for this run
};

struct CounterUpdateMsg {
  core::CounterId counter{0};
  i64 value{0};
};

struct TermStatusMsg {
  core::TermId term{0};
  bool state{false};
};

struct StoppedMsg {
  core::NodeId node{0};
};

struct ErrorMsg {
  core::NodeId node{0};
  i64 time_ns{0};
  core::CondId cond{0};
};

struct InitAckMsg {
  core::NodeId node{0};
  bool ok{true};  ///< false: the tables failed to deserialize
};

struct StartAckMsg {
  core::NodeId node{0};
};

struct HeartbeatMsg {
  core::NodeId node{0};
};

struct ControlMessage {
  MsgType type{MsgType::kStart};
  u32 epoch{0};  ///< scenario generation (0 = unfenced/local)
  u32 seq{0};    ///< per-sender monotone sequence number
  std::variant<InitMsg, StartMsg, CounterUpdateMsg, TermStatusMsg, StoppedMsg,
               ErrorMsg, InitAckMsg, StartAckMsg, HeartbeatMsg>
      body;
};

Bytes encode(const ControlMessage& msg);

/// Decodes a payload; nullopt on malformed, truncated, corrupted (checksum
/// mismatch) or trailing-garbage input — a damaged control frame must never
/// crash the engine or decode as a different message.
std::optional<ControlMessage> decode(BytesView payload);

/// The envelope alone, without parsing the body.  Verifies the checksum;
/// used by the agent's epoch/duplicate fencing on the receive path.
struct Envelope {
  MsgType type{MsgType::kStart};
  u32 epoch{0};
  u32 seq{0};
};
std::optional<Envelope> peek(BytesView payload);

// Convenience constructors (epoch/seq are stamped by the sender).
ControlMessage make_init(const core::TableSet& tables);
ControlMessage make_start(core::NodeId controller,
                          Duration heartbeat_period = {});
ControlMessage make_counter_update(core::CounterId c, i64 v);
ControlMessage make_term_status(core::TermId t, bool s);
ControlMessage make_stopped(core::NodeId n);
ControlMessage make_error(core::NodeId n, TimePoint at, core::CondId cond);
ControlMessage make_init_ack(core::NodeId n, bool ok);
ControlMessage make_start_ack(core::NodeId n);
ControlMessage make_heartbeat(core::NodeId n);

}  // namespace vwire::control
