// The programming front-end (paper §3.2, §5.1).
//
// "A central node interprets the script and initializes the test nodes with
//  the relevant data structures."  The Controller lives on the control
//  node: it serializes the compiled six-table bundle, distributes it to
//  every testbed node as INIT control messages over the (simulated) wire,
//  starts the engines with START, then supervises the run — collecting
//  STOP/FLAG_ERROR reports and enforcing the scenario's inactivity timeout
//  and the harness deadline.
#pragma once

#include <unordered_map>

#include "vwire/core/engine/engine.hpp"

namespace vwire::control {

struct RunOptions {
  /// Hard stop in simulated time, measured from run() entry.
  Duration deadline{seconds(30)};
  /// Supervision granularity.
  Duration poll{millis(1)};
  /// Stop the whole run at the first FLAG_ERROR.
  bool stop_on_first_error{false};
};

struct ScenarioResult {
  std::string scenario;
  bool stopped{false};        ///< a STOP action ended the run
  bool timed_out{false};      ///< the script's inactivity timeout expired
  bool deadline_reached{false};
  TimePoint ended_at{};
  std::vector<core::ScenarioError> errors;
  std::unordered_map<std::string, i64> counters;  ///< final home values

  /// The paper's pass criterion: no FLAG_ERROR fired, and if the scenario
  /// declared an inactivity timeout, it ended via STOP rather than silence.
  bool passed() const { return errors.empty(); }

  std::string summary() const;
};

/// A node under the controller's management.
struct ManagedNode {
  core::NodeId id{core::kInvalidId};
  net::MacAddress mac;
  std::string name;
  core::EngineLayer* engine{nullptr};
  ControlAgent* agent{nullptr};
};

class Controller {
 public:
  /// `self` identifies the control node among `nodes` (by name).
  Controller(sim::Simulator& sim, std::vector<ManagedNode> nodes,
             std::string_view control_node);

  /// Compiled-scenario setup: wires agent dispatch, distributes INIT and
  /// START over the control plane, and advances the simulation until every
  /// engine is running.  Call before starting the workload.
  void arm(const core::TableSet& tables);

  /// Supervises the armed scenario to completion.
  ScenarioResult run(const RunOptions& opts = {});

  core::ScenarioContext& context() { return context_; }

  u64 stop_reports() const { return stop_reports_; }
  u64 error_reports() const { return error_reports_; }

 private:
  void wire_dispatch();
  void on_control(ManagedNode& node, const net::MacAddress& from,
                  BytesView payload);

  sim::Simulator& sim_;
  std::vector<ManagedNode> nodes_;
  std::size_t control_index_{0};
  core::ScenarioContext context_;
  core::TableSet tables_;
  bool armed_{false};

  // Wire-delivered reports (the context is the in-process authority; these
  // counters prove the control plane actually carried the news).
  u64 stop_reports_{0};
  u64 error_reports_{0};
};

}  // namespace vwire::control
