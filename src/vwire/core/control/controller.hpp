// The programming front-end (paper §3.2, §5.1).
//
// "A central node interprets the script and initializes the test nodes with
//  the relevant data structures."  The Controller lives on the control
//  node: it serializes the compiled six-table bundle, distributes it to
//  every testbed node as INIT control messages over the (simulated) wire,
//  starts the engines with START, then supervises the run — collecting
//  STOP/FLAG_ERROR reports and enforcing the scenario's inactivity timeout
//  and the harness deadline.
//
// Reliability model (see DESIGN.md, "Control-plane reliability model"):
// INIT/START are acknowledged and retried with exponential backoff, so
// arm() returns a definitive armed/failed verdict per node; every armed
// scenario runs under a fresh epoch that fences off stale cross-scenario
// control traffic; agents heartbeat the controller, and a node that misses
// its budget is declared dead and either quarantined or aborts the run.
#pragma once

#include <functional>
#include <unordered_map>

#include "vwire/core/engine/engine.hpp"
#include "vwire/obs/provenance.hpp"

namespace vwire::control {

/// What the controller does when a node stops heartbeating mid-run (or
/// never arms): carry on without it, or end the run immediately.
enum class NodeLossPolicy : u8 {
  kQuarantine,  ///< finish the scenario, report the node dead
  kAbort,       ///< end the run as soon as the loss is detected
};

struct RunOptions {
  /// Hard stop in simulated time, measured from run() entry.
  Duration deadline{seconds(30)};
  /// Supervision granularity.
  Duration poll{millis(1)};
  /// Stop the whole run at the first FLAG_ERROR.
  bool stop_on_first_error{false};

  /// Reaction to a node that never arms or stops heartbeating.
  NodeLossPolicy on_node_loss{NodeLossPolicy::kQuarantine};
  /// Liveness beacon period for non-control nodes; 0 disables liveness.
  Duration heartbeat_period{millis(20)};
  /// Consecutive missed beats before a node is declared dead.
  u32 heartbeat_miss_budget{5};

  /// INIT/START handshake: first retry after this much silence, doubling
  /// each attempt (exponential backoff), up to `arm_max_attempts` sends.
  Duration arm_retry_base{millis(20)};
  u32 arm_max_attempts{5};

  /// Pending events (beyond heartbeats) the supervisor should treat as
  /// background when detecting the natural end of a run — the harness's
  /// own self-rearming timers (ScenarioRunner's invariant probe).
  std::size_t extra_background_events{0};

  /// External abort hook, polled once per supervision tick (every `poll`
  /// of simulated time).  Returning true ends the run immediately with
  /// ScenarioResult::aborted_by_watchdog set.  This is how a wall-clock
  /// watchdog bounds a trial whose *simulated* workload never quiesces:
  /// the check is cooperative — it cannot interrupt a single event
  /// callback, but it fires between supervision windows no matter how
  /// dense the event storm inside them is.
  std::function<bool()> should_abort;
};

/// Per-node verdict of the INIT/START distribution handshake.
struct ArmReport {
  bool ok{true};                         ///< every node armed
  u32 init_retries{0};                   ///< INIT frames beyond the first
  u32 start_retries{0};                  ///< START frames beyond the first
  std::vector<std::string> failed_nodes; ///< never acked / rejected tables
};

/// One link-fault lifecycle event observed during a run: a scheduled fault
/// being applied/cleared, or an RLL peer link-down/link-up transition.
struct LinkFaultEvent {
  TimePoint at{};
  std::string node;
  std::string description;
};

/// Fault-shed accounting for one run (deltas over the run, not testbed
/// lifetime totals): how much traffic the scheduled link faults discarded
/// and how often the RLL's self-healing state machine transitioned.
struct RobustnessReport {
  u64 rll_link_down{0};      ///< peers quarantined by retry exhaustion
  u64 rll_link_up{0};        ///< quarantined peers healed
  u64 rll_fast_retransmits{0};
  u64 rll_retransmits{0};
  u64 medium_dropped_down{0};   ///< frames lost to down ports
  u64 medium_dropped_queue{0};  ///< frames lost to full queues
  u64 medium_dropped_cut{0};    ///< frames lost to scheduled cuts
  u64 medium_dropped_flap{0};   ///< frames lost to flap down-phases
  u64 medium_dropped_loss{0};   ///< frames lost to scheduled loss rates
  bool any() const {
    return rll_link_down || rll_link_up || rll_fast_retransmits ||
           rll_retransmits || medium_dropped_down || medium_dropped_queue ||
           medium_dropped_cut || medium_dropped_flap || medium_dropped_loss;
  }
};

/// Short names match the summary()'s shed[...] vocabulary.
template <class Fn>
void for_each_field(const RobustnessReport& r, Fn&& fn) {
  fn("link_down", r.rll_link_down);
  fn("link_up", r.rll_link_up);
  fn("retx", r.rll_retransmits);
  fn("fast_retx", r.rll_fast_retransmits);
  fn("drop_down", r.medium_dropped_down);
  fn("drop_queue", r.medium_dropped_queue);
  fn("drop_cut", r.medium_dropped_cut);
  fn("drop_flap", r.medium_dropped_flap);
  fn("drop_loss", r.medium_dropped_loss);
}

struct ScenarioResult {
  std::string scenario;
  bool stopped{false};        ///< a STOP action ended the run
  bool timed_out{false};      ///< the script's inactivity timeout expired
  bool deadline_reached{false};
  bool aborted_on_node_loss{false};  ///< kAbort policy ended the run
  bool aborted_by_watchdog{false};   ///< RunOptions::should_abort ended it
  TimePoint ended_at{};
  std::vector<core::ScenarioError> errors;
  std::unordered_map<std::string, i64> counters;  ///< final home values
  /// Nodes that never armed or stopped heartbeating, in detection order.
  std::vector<std::string> dead_nodes;
  /// Counters whose home node died — their final value is last-known, not
  /// authoritative.
  std::vector<std::string> degraded_counters;
  /// The RNG seed the run's media actually used (echoed for replay).
  u64 effective_seed{0};
  /// Scheduled link faults applied/cleared and RLL link transitions, in
  /// simulated-time order.
  std::vector<LinkFaultEvent> link_events;
  /// Per-run fault-shed counters (see RobustnessReport).
  RobustnessReport robustness;

  /// Rule-firing provenance collected from every node's engine at run end,
  /// in simulated-time order (node_name stamped at collection).
  std::vector<obs::FiringRecord> firings;
  /// FiringRecords lost to ring overwrite across all nodes (0 = the record
  /// above is complete).
  u64 firings_dropped{0};
  /// Script node-table names indexed by NodeId, for resolving ids in
  /// errors/firings offline.
  std::vector<std::string> node_names;
  /// Script counter names indexed by CounterId, for readable firing
  /// snapshots in the exported report.
  std::vector<std::string> counter_names;

  /// Every FiringRecord of rule (condition) `rule_id`, oldest first —
  /// "why did this rule fire, and with what state?".
  std::vector<obs::FiringRecord> explain(u16 rule_id) const;

  /// The paper's pass criterion: no FLAG_ERROR fired, and if the scenario
  /// declared an inactivity timeout, it ended via STOP rather than silence.
  /// A run the controller had to abort on node loss cannot pass; under the
  /// quarantine policy dead nodes degrade the result but do not fail it.
  bool passed() const {
    return errors.empty() && !(timed_out && !stopped) &&
           !aborted_on_node_loss && !aborted_by_watchdog;
  }

  std::string summary() const;
};

/// A node under the controller's management.
struct ManagedNode {
  core::NodeId id{core::kInvalidId};
  net::MacAddress mac;
  std::string name;
  core::EngineLayer* engine{nullptr};
  ControlAgent* agent{nullptr};
};

class Controller {
 public:
  /// `self` identifies the control node among `nodes` (by name).
  Controller(sim::Simulator& sim, std::vector<ManagedNode> nodes,
             std::string_view control_node);

  /// Detaches every engine still pointing at this Controller's
  /// ScenarioContext.  Armed engines hold a raw pointer into the
  /// Controller, and an arm-and-go caller (the benches) may let the
  /// Controller die while the scenario keeps running.
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Compiled-scenario setup: wires agent dispatch, enters a fresh epoch,
  /// and distributes INIT then START over the control plane with per-node
  /// acknowledgement and retry.  A node that never acks (or rejects the
  /// tables) is reported failed and treated as dead for the run.  Call
  /// before starting the workload.
  ArmReport arm(const core::TableSet& tables, const RunOptions& opts = {});

  /// Supervises the armed scenario to completion.
  ScenarioResult run(const RunOptions& opts = {});

  core::ScenarioContext& context() { return context_; }
  const ArmReport& arm_report() const { return report_; }
  u32 epoch() const { return epoch_; }

  u64 stop_reports() const { return stop_reports_; }
  u64 error_reports() const { return error_reports_; }

 private:
  /// Per-node handshake/liveness state for the current scenario.
  struct NodeRt {
    bool init_acked{false};
    bool start_acked{false};
    bool dead{false};
    TimePoint last_heartbeat{};
  };

  void wire_dispatch();
  void on_control(ManagedNode& node, const net::MacAddress& from,
                  BytesView payload);
  /// Retries `msg_for` to every unacked node until acked or the attempt
  /// budget runs out; marks survivors dead.  Returns true if all acked.
  bool await_acks(bool start_phase, const RunOptions& opts);
  std::size_t index_by_mac(const net::MacAddress& mac) const;
  /// Pending events that are just liveness beacons ticking over — used to
  /// recognize the natural end of a run (the queue never fully drains
  /// while heartbeat timers rearm themselves).
  std::size_t background_events() const;

  sim::Simulator& sim_;
  std::vector<ManagedNode> nodes_;
  std::size_t control_index_{0};
  core::ScenarioContext context_;
  core::TableSet tables_;
  bool armed_{false};
  u32 epoch_{0};
  std::vector<NodeRt> rt_;
  ArmReport report_;
  RunOptions armed_opts_;

  // Wire-delivered reports (the context is the in-process authority; these
  // counters prove the control plane actually carried the news).
  u64 stop_reports_{0};
  u64 error_reports_{0};
};

}  // namespace vwire::control
