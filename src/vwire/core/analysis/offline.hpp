// Offline trace analysis: run an FSL analysis script over a recorded
// packet trace, after the fact.
//
// The paper's motivation (§1) is replacing the manual inspection of
// collected tcpdump traces; the FAE does this live.  OfflineAnalyzer closes
// the loop for post-mortem work: the same compiled six tables are replayed
// against a TraceBuffer, with the same counter/term/condition semantics.
//
// Differences from the live engines, by construction:
//  * evaluation is globally ordered and instantaneous — there is no
//    control-plane propagation delay, so distributed rules behave as if
//    every node shared one clock (the "ideal observer" view);
//  * fault actions cannot be applied to the past; they are tallied as
//    `would_have_fired` instead.
#pragma once

#include <unordered_map>

#include "vwire/core/engine/classifier.hpp"
#include "vwire/trace/trace.hpp"

namespace vwire::core {

struct OfflineError {
  std::size_t record_index;
  TimePoint at;
  CondId cond;
};

struct OfflineResult {
  std::vector<OfflineError> errors;
  bool stopped{false};
  std::size_t stop_index{0};          ///< record that triggered STOP
  std::size_t records_processed{0};
  u64 would_have_fired_faults{0};     ///< DROP/DELAY/… activations observed
  std::unordered_map<std::string, i64> counters;

  bool passed() const { return errors.empty(); }
};

class OfflineAnalyzer {
 public:
  explicit OfflineAnalyzer(TableSet tables);

  /// Replays `trace` in record order; stops early at a STOP action.
  OfflineResult analyze(const trace::TraceBuffer& trace);

 private:
  struct CounterState {
    i64 value{0};
    bool enabled{false};
  };

  void initial_sweep();
  void process_record(const trace::TraceRecord& rec, std::size_t index);
  void set_counter(CounterId id, i64 value);
  void eval_term(TermId id);
  void eval_condition(CondId id);
  void drain_fired(std::size_t record_index);
  void exec_action(ActionId id, CondId cond, std::size_t record_index);

  TableSet tables_;
  Classifier classifier_;
  VarStore vars_;

  std::vector<CounterState> counters_;
  std::vector<char> term_state_;
  std::vector<char> cond_state_;
  std::vector<CondId> fired_;

  TimePoint now_{};
  OfflineResult result_;
  bool done_{false};
};

}  // namespace vwire::core
