#include "vwire/core/analysis/offline.hpp"

#include "vwire/util/logging.hpp"

namespace vwire::core {

OfflineAnalyzer::OfflineAnalyzer(TableSet tables)
    : tables_(std::move(tables)),
      classifier_(tables_.filters),
      vars_(tables_.filters.var_names.size()) {}

OfflineResult OfflineAnalyzer::analyze(const trace::TraceBuffer& trace) {
  counters_.assign(tables_.counters.entries.size(), {});
  term_state_.assign(tables_.terms.entries.size(), 0);
  cond_state_.assign(tables_.conditions.entries.size(), 0);
  vars_.reset();
  fired_.clear();
  result_ = {};
  done_ = false;

  initial_sweep();
  const auto& records = trace.records();
  for (std::size_t i = 0; i < records.size() && !done_; ++i) {
    process_record(records[i], i);
    ++result_.records_processed;
  }
  for (std::size_t c = 0; c < tables_.counters.entries.size(); ++c) {
    result_.counters[tables_.counters.entries[c].name] = counters_[c].value;
  }
  return std::move(result_);
}

void OfflineAnalyzer::initial_sweep() {
  for (std::size_t c = 0; c < tables_.conditions.entries.size(); ++c) {
    eval_condition(static_cast<CondId>(c));
  }
  drain_fired(0);
}

void OfflineAnalyzer::process_record(const trace::TraceRecord& rec,
                                     std::size_t index) {
  now_ = rec.at;
  ClassifyResult cls = classifier_.classify(rec.frame, vars_);
  if (cls.filter == kInvalidId) return;

  auto eth = net::EthernetHeader::read(rec.frame);
  if (!eth) return;
  NodeId src = tables_.nodes.find_mac(eth->src);
  NodeId dst = tables_.nodes.find_mac(eth->dst);
  NodeId here = tables_.nodes.find(rec.node);

  // Snapshot eligibility, as the live engine does.
  std::vector<CounterId> eligible;
  for (std::size_t c = 0; c < tables_.counters.entries.size(); ++c) {
    const CounterEntry& e = tables_.counters.entries[c];
    if (e.kind != CounterKind::kEvent || !counters_[c].enabled) continue;
    if (e.filter != cls.filter || e.dir != rec.dir) continue;
    if (e.src_node != src || e.dst_node != dst) continue;
    // Each packet appears in the trace once per capturing node; count it
    // only at the counter's home so tallies match the live run.
    if (e.home != here) continue;
    eligible.push_back(static_cast<CounterId>(c));
  }
  for (CounterId c : eligible) set_counter(c, counters_[c].value + 1);
  drain_fired(index);

  // Tally packet-fault activations the live FIE would have applied here.
  for (std::size_t a = 0; a < tables_.actions.entries.size(); ++a) {
    const ActionEntry& e = tables_.actions.entries[a];
    if (!is_packet_fault(e.kind)) continue;
    if (e.filter != cls.filter || e.dir != rec.dir) continue;
    if (e.src_node != src || e.dst_node != dst || e.exec_node != here) {
      continue;
    }
    for (std::size_t c = 0; c < tables_.conditions.entries.size(); ++c) {
      const CondEntry& cond = tables_.conditions.entries[c];
      for (ActionId id : cond.actions) {
        if (id == a && cond_state_[c] != 0) {
          ++result_.would_have_fired_faults;
        }
      }
    }
  }
}

void OfflineAnalyzer::set_counter(CounterId id, i64 value) {
  counters_[id].value = value;
  for (TermId t : tables_.counters.entries[id].terms) eval_term(t);
}

void OfflineAnalyzer::eval_term(TermId id) {
  const TermEntry& e = tables_.terms.entries[id];
  auto value = [this](const Operand& o) {
    return o.is_counter ? counters_[o.counter].value : o.constant;
  };
  bool s = eval_rel(e.op, value(e.lhs), value(e.rhs));
  if (static_cast<bool>(term_state_[id]) == s) return;
  term_state_[id] = s ? 1 : 0;
  for (CondId c : e.conds) eval_condition(c);
}

void OfflineAnalyzer::eval_condition(CondId id) {
  const CondEntry& e = tables_.conditions.entries[id];
  bool stack[32];
  int sp = 0;
  for (const CondInstr& in : e.postfix) {
    switch (in.op) {
      case BoolOp::kTrue: stack[sp++] = true; break;
      case BoolOp::kTerm: stack[sp++] = term_state_[in.term] != 0; break;
      case BoolOp::kNot: stack[sp - 1] = !stack[sp - 1]; break;
      case BoolOp::kAnd: --sp; stack[sp - 1] = stack[sp - 1] && stack[sp]; break;
      case BoolOp::kOr: --sp; stack[sp - 1] = stack[sp - 1] || stack[sp]; break;
    }
  }
  bool now = sp > 0 && stack[0];
  bool before = cond_state_[id] != 0;
  cond_state_[id] = now ? 1 : 0;
  if (now && !before) fired_.push_back(id);
}

void OfflineAnalyzer::drain_fired(std::size_t record_index) {
  std::size_t rounds = 0;
  while (!fired_.empty() && !done_) {
    if (++rounds > 1024) {
      VWIRE_ERROR() << "offline analysis rule loop; aborting";
      fired_.clear();
      return;
    }
    CondId c = fired_.front();
    fired_.erase(fired_.begin());
    for (ActionId a : tables_.conditions.entries[c].actions) {
      exec_action(a, c, record_index);
      if (done_) return;
    }
  }
}

void OfflineAnalyzer::exec_action(ActionId id, CondId cond,
                                  std::size_t record_index) {
  const ActionEntry& e = tables_.actions.entries[id];
  switch (e.kind) {
    case ActionKind::kAssignCntr:
      counters_[e.counter].enabled = true;
      set_counter(e.counter, e.value);
      return;
    case ActionKind::kEnableCntr:
      counters_[e.counter].enabled = true;
      return;
    case ActionKind::kDisableCntr:
      counters_[e.counter].enabled = false;
      return;
    case ActionKind::kIncrCntr:
      set_counter(e.counter, counters_[e.counter].value + e.value);
      return;
    case ActionKind::kDecrCntr:
      set_counter(e.counter, counters_[e.counter].value - e.value);
      return;
    case ActionKind::kResetCntr:
      set_counter(e.counter, 0);
      return;
    case ActionKind::kSetCurtime:
      set_counter(e.counter, now_.ns / 1'000'000);
      return;
    case ActionKind::kElapsedTime:
      set_counter(e.counter, now_.ns / 1'000'000 - counters_[e.counter].value);
      return;
    case ActionKind::kStop:
      done_ = true;
      result_.stopped = true;
      result_.stop_index = record_index;
      return;
    case ActionKind::kFlagError:
      result_.errors.push_back({record_index, now_, cond});
      return;
    default:
      return;  // faults cannot be injected into a recorded past
  }
}

}  // namespace vwire::core
