// Witness replay: dynamic confirmation of fsl::mc verdicts (DESIGN.md §13).
//
// The model checker's "reachable" verdicts come with a witness trace — a
// concrete packet sequence predicted to make one (rule, action) pair
// execute.  This harness closes the loop: it builds a fresh Testbed from
// the script's NODE_TABLE, crafts real frames that classify as each
// witness event's filter, injects them through the source node's engine
// (so they traverse the full engine → RLL → medium → RLL → engine chain),
// and checks the predicted firing shows up in the run's provenance.
//
// Replay is run twice in two independent testbeds; the firing-provenance
// digests must be byte-identical, which pins down both the verdict and
// the determinism of the engine path the witness exercises.
#pragma once

#include "vwire/core/fsl/verify.hpp"
#include "vwire/util/bytes.hpp"

namespace vwire::core {

struct ReplayOutcome {
  /// The predicted (rule, action) pair appeared in the run's firings.
  bool fired{false};
  /// Both replay runs produced byte-identical firing digests.
  bool deterministic{false};
  /// Canonical digest of run 1's firing provenance (one line per record).
  std::string digest;
  /// Times the predicted pair fired in run 1.
  u32 observed_firings{0};
  /// Non-empty: the harness itself failed (compile error, bad witness ids)
  /// before any verdict could be taken.
  std::string error;

  bool ok() const { return error.empty() && fired && deterministic; }
};

/// Crafts a frame that classifies as `filter` from `src` to `dst` under
/// `tables`: ≥64 zeroed bytes, destination/source MACs from the node table
/// at offsets 0/6, the filter's concrete tuple constraints applied on top
/// (big-endian, masked — filter constraints win over the MACs), then a
/// best-effort byte flip to dodge any higher-priority filter that would
/// otherwise steal the classification.  Exposed for tests.
Bytes craft_witness_frame(const TableSet& tables, FilterId filter,
                          NodeId src, NodeId dst);

/// Replays `witness` against `script`/`scenario` twice and reports whether
/// the predicted firing occurred and reproduced byte-identically.  Never
/// throws; harness-level failures land in ReplayOutcome::error.
ReplayOutcome replay_witness(const std::string& script,
                             const std::string& scenario,
                             const fsl::mc::Witness& witness);

}  // namespace vwire::core
