#include "vwire/core/analysis/verify_replay.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "vwire/core/api/scenario_runner.hpp"
#include "vwire/core/fsl/compiler.hpp"
#include "vwire/net/packet.hpp"

namespace vwire::core {
namespace {

u64 extract_be(const Bytes& f, u16 offset, u16 length) {
  u64 v = 0;
  for (u16 i = 0; i < length; ++i) {
    v = (v << 8) | f[static_cast<std::size_t>(offset) + i];
  }
  return v;
}

bool tuple_matches(const Bytes& f, const FilterTuple& t) {
  if (t.is_var()) return true;  // a run-time variable can bind anything
  if (static_cast<std::size_t>(t.offset) + t.length > f.size()) return false;
  return (extract_be(f, t.offset, t.length) & t.mask) == (t.pattern & t.mask);
}

bool filter_matches(const Bytes& f, const FilterEntry& e) {
  for (const FilterTuple& t : e.tuples) {
    if (!tuple_matches(f, t)) return false;
  }
  return true;
}

void apply_tuple(Bytes& f, const FilterTuple& t) {
  for (u16 b = 0; b < t.length; ++b) {
    const int shift = 8 * (t.length - 1 - b);
    const u8 mask = static_cast<u8>((t.mask >> shift) & 0xff);
    const u8 pat = static_cast<u8>((t.pattern >> shift) & 0xff);
    const std::size_t off = static_cast<std::size_t>(t.offset) + b;
    f[off] = static_cast<u8>((f[off] & ~mask) | (pat & mask));
  }
}

struct RunOutput {
  bool fired{false};
  u32 count{0};
  std::string digest;
  std::string error;
};

/// One replay run in a fresh Testbed.  Packet uids are reset first so the
/// provenance digest (which includes them) is comparable across runs.
RunOutput run_once(const std::string& script, const std::string& scenario,
                   const fsl::mc::Witness& w) {
  RunOutput out;
  fsl::CompileOptions copts;
  copts.scenario = scenario;
  TableSet tables;
  try {
    tables = fsl::compile_script(script, copts);
  } catch (const std::exception& e) {
    out.error = std::string("compile failed: ") + e.what();
    return out;
  }
  if (w.rule >= tables.conditions.entries.size() ||
      w.action >= tables.actions.entries.size()) {
    out.error = "witness references a rule or action outside the tables";
    return out;
  }

  net::Packet::reset_uid_counter();
  Testbed tb;
  for (const NodeEntry& n : tables.nodes.entries) {
    tb.add_node(n.name, n.mac, n.ip);
  }

  ScenarioSpec spec;
  spec.script = script;
  spec.scenario = scenario;

  // Space injections out far enough for the control plane to settle the
  // counter mirrors between events — the checker's product automaton
  // assumes each packet's cascade completes before the next event.
  std::size_t slot = 0;
  for (const fsl::mc::WitnessEvent& ev : w.events) {
    if (ev.filter >= tables.filters.entries.size() ||
        ev.src >= tables.nodes.entries.size() ||
        ev.dst >= tables.nodes.entries.size()) {
      out.error = "witness event references an unknown filter or node";
      return out;
    }
    const Bytes frame = craft_witness_frame(tables, ev.filter, ev.src, ev.dst);
    const std::string src_name = tables.nodes.entries[ev.src].name;
    for (u32 c = 0; c < ev.count; ++c) {
      spec.actions.push_back(TimedAction{
          millis(50 + 10 * static_cast<i64>(slot)), [&tb, src_name, frame] {
            tb.handles(src_name).engine->send_down(net::Packet(frame));
          }});
      ++slot;
    }
  }
  spec.options.deadline = millis(50 + 10 * static_cast<i64>(slot + 1) + 500);

  control::ScenarioResult res;
  try {
    ScenarioRunner runner(tb);
    res = runner.run(spec);
  } catch (const std::exception& e) {
    out.error = std::string("replay run failed: ") + e.what();
    return out;
  }

  for (const obs::FiringRecord& r : res.firings) {
    if (r.rule == w.rule && r.action == w.action) {
      out.fired = true;
      ++out.count;
    }
    out.digest += std::to_string(r.at.ns);
    out.digest += ':';
    out.digest += std::to_string(r.node);
    out.digest += ':';
    out.digest += std::to_string(r.rule);
    out.digest += ':';
    out.digest += std::to_string(r.action);
    out.digest += ':';
    out.digest += std::to_string(r.filter);
    out.digest += ':';
    out.digest += std::to_string(static_cast<int>(r.kind));
    out.digest += ':';
    out.digest += std::to_string(r.cascade_depth);
    out.digest += ':';
    out.digest += std::to_string(r.packet_uid);
    out.digest += ':';
    out.digest += std::to_string(r.value);
    out.digest += ':';
    out.digest += std::to_string(r.value2);
    for (u8 k = 0; k < r.n_counters; ++k) {
      out.digest += ",c";
      out.digest += std::to_string(r.counters[k].id);
      out.digest += '=';
      out.digest += std::to_string(r.counters[k].value);
    }
    out.digest += '\n';
  }
  return out;
}

}  // namespace

Bytes craft_witness_frame(const TableSet& tables, FilterId filter,
                          NodeId src, NodeId dst) {
  std::size_t len = 64;
  for (const FilterEntry& e : tables.filters.entries) {
    for (const FilterTuple& t : e.tuples) {
      len = std::max(len, static_cast<std::size_t>(t.offset) + t.length);
    }
  }
  Bytes f(len, 0);
  if (dst < tables.nodes.entries.size()) {
    const auto& b = tables.nodes.entries[dst].mac.bytes();
    std::copy(b.begin(), b.end(), f.begin());
  }
  if (src < tables.nodes.entries.size()) {
    const auto& b = tables.nodes.entries[src].mac.bytes();
    std::copy(b.begin(), b.end(), f.begin() + 6);
  }
  if (filter >= tables.filters.entries.size()) return f;

  const FilterEntry& target = tables.filters.entries[filter];
  for (const FilterTuple& t : target.tuples) {
    if (!t.is_var()) apply_tuple(f, t);
  }

  // Bytes the dodge pass below must not disturb: the MACs (the RLL routes
  // on them) and every byte the target filter itself constrains.
  std::vector<u8> pinned(len, 0);
  for (std::size_t i = 0; i < 12 && i < len; ++i) pinned[i] = 0xff;
  for (const FilterTuple& t : target.tuples) {
    if (t.is_var()) continue;
    for (u16 b = 0; b < t.length; ++b) {
      const int shift = 8 * (t.length - 1 - b);
      const std::size_t off = static_cast<std::size_t>(t.offset) + b;
      if (off < len) pinned[off] |= static_cast<u8>((t.mask >> shift) & 0xff);
    }
  }

  // Classification is first-match-wins: flip one unpinned constrained byte
  // of each higher-priority filter that would otherwise steal the frame.
  // Best-effort — when every such byte is pinned the filters genuinely
  // overlap and the earlier one wins at run time too.
  for (FilterId e = 0; e < filter; ++e) {
    const FilterEntry& earlier = tables.filters.entries[e];
    if (!filter_matches(f, earlier)) continue;
    bool flipped = false;
    for (const FilterTuple& t : earlier.tuples) {
      if (t.is_var()) continue;
      for (u16 b = 0; b < t.length && !flipped; ++b) {
        const int shift = 8 * (t.length - 1 - b);
        const u8 mask = static_cast<u8>((t.mask >> shift) & 0xff);
        const std::size_t off = static_cast<std::size_t>(t.offset) + b;
        if (mask == 0 || off >= len || (pinned[off] & mask) != 0) continue;
        f[off] = static_cast<u8>(f[off] ^ mask);
        flipped = true;
      }
      if (flipped) break;
    }
  }
  return f;
}

ReplayOutcome replay_witness(const std::string& script,
                             const std::string& scenario,
                             const fsl::mc::Witness& witness) {
  ReplayOutcome out;
  const RunOutput first = run_once(script, scenario, witness);
  if (!first.error.empty()) {
    out.error = first.error;
    return out;
  }
  const RunOutput second = run_once(script, scenario, witness);
  if (!second.error.empty()) {
    out.error = second.error;
    return out;
  }
  out.fired = first.fired && second.fired;
  out.observed_firings = first.count;
  out.digest = first.digest;
  out.deterministic = first.digest == second.digest;
  return out;
}

}  // namespace vwire::core
