// NIC: the bottom of a node's layer chain and its attachment to the medium.
#pragma once

#include "vwire/host/layer.hpp"
#include "vwire/phy/medium.hpp"

namespace vwire::host {

struct NicStats {
  u64 tx_frames{0};
  u64 rx_frames{0};
  u64 tx_bytes{0};
  u64 rx_bytes{0};
  u64 dropped_down{0};
};

class Nic final : public Layer, public phy::MediumClient {
 public:
  Nic(sim::Simulator& sim, phy::Medium& medium, net::MacAddress mac);

  std::string_view name() const override { return "nic"; }

  /// Chain-bottom: transmit onto the medium.
  void send_down(net::Packet pkt) override;

  /// MediumClient: frame arrived from the wire; push it up the chain.
  void medium_deliver(net::Packet pkt) override;
  net::MacAddress medium_mac() const override { return mac_; }

  /// Administrative state; a down NIC neither sends nor receives (the
  /// observable effect of the FAIL fault primitive).
  void set_up(bool up);
  bool up() const { return up_; }

  const NicStats& stats() const { return stats_; }
  const net::MacAddress& mac() const { return mac_; }

  /// The medium port this NIC is attached to (link-fault scheduling key).
  phy::PortId port() const { return port_; }

  /// Attaches the owning node's flight recorder: every frame crossing this
  /// NIC leaves a kNicTx/kNicRx span event, and the medium attributes
  /// drops on this port to the same recorder.
  void set_flight(obs::FlightRecorder* flight) {
    flight_ = flight;
    medium_.set_port_flight(port_, flight);
  }

 private:
  sim::Simulator& sim_;
  phy::Medium& medium_;
  phy::PortId port_;
  net::MacAddress mac_;
  bool up_{true};
  NicStats stats_;
  obs::FlightRecorder* flight_{nullptr};
};

}  // namespace vwire::host
