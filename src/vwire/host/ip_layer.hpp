// IPv4 layer: top of the chain; builds frames going down, verifies and
// demultiplexes going up.
//
// Transport protocols (TCP, UDP) register per-protocol handlers rather than
// being chain layers — they exchange L4 segments, not frames, exactly like
// the kernel stack above the paper's Netfilter hook.
#pragma once

#include <functional>
#include <unordered_map>

#include "vwire/host/layer.hpp"
#include "vwire/net/decode.hpp"

namespace vwire::host {

struct IpStats {
  u64 tx_packets{0};
  u64 rx_packets{0};
  u64 rx_bad_checksum{0};   ///< IP header checksum failures (MODIFY faults)
  u64 rx_no_handler{0};
  u64 rx_not_mine{0};
  u64 tx_no_route{0};
};

class IpLayer final : public Layer {
 public:
  /// Handler receives the validated IP header and the L4 bytes (header +
  /// payload).  Transport checksum verification is the handler's job.
  using ProtoHandler =
      std::function<void(const net::Ipv4Header&, BytesView l4)>;

  std::string_view name() const override { return "ip"; }

  void register_protocol(net::IpProto proto, ProtoHandler handler);

  /// Builds Ethernet+IPv4 framing around `l4_bytes` and sends it down the
  /// chain.  Destination MAC comes from the node's neighbor table.
  void send(net::Ipv4Address dst, net::IpProto proto, Bytes l4_bytes);

  /// Chain-top: parse, verify, demux.  Never calls pass_up.
  void receive_up(net::Packet pkt) override;

  const IpStats& stats() const { return stats_; }

 private:
  std::unordered_map<u8, ProtoHandler> handlers_;
  IpStats stats_;
  u16 next_ip_id_{1};
};

}  // namespace vwire::host
