#include "vwire/host/ip_layer.hpp"

#include "vwire/host/node.hpp"
#include "vwire/util/logging.hpp"

namespace vwire::host {

void IpLayer::register_protocol(net::IpProto proto, ProtoHandler handler) {
  handlers_[static_cast<u8>(proto)] = std::move(handler);
}

void IpLayer::send(net::Ipv4Address dst, net::IpProto proto,
                   Bytes l4_bytes) {
  auto dst_mac = node_->resolve(dst);
  if (!dst_mac) {
    ++stats_.tx_no_route;
    VWIRE_WARN() << node_->name() << ": no route to " << dst.to_string();
    return;
  }
  Bytes frame(net::EthernetHeader::kSize + net::Ipv4Header::kSize +
                   l4_bytes.size());
  net::EthernetHeader{*dst_mac, node_->mac(),
                      static_cast<u16>(net::EtherType::kIpv4)}
      .write(frame);
  net::Ipv4Header ip;
  ip.total_length =
      static_cast<u16>(net::Ipv4Header::kSize + l4_bytes.size());
  ip.identification = next_ip_id_++;
  ip.protocol = static_cast<u8>(proto);
  ip.src = node_->ip();
  ip.dst = dst;
  ip.write(frame, net::EthernetHeader::kSize);
  std::copy(l4_bytes.begin(), l4_bytes.end(),
            frame.begin() + net::EthernetHeader::kSize + net::Ipv4Header::kSize);

  ++stats_.tx_packets;
  net::Packet pkt(std::move(frame));
  // Charge the sender-side kernel processing as latency before the frame
  // reaches the chain below.
  auto shared = std::make_shared<net::Packet>(std::move(pkt));
  node_->simulator().after(node_->params().tx_stack_cost, [this, shared] {
    pass_down(std::move(*shared));
  });
}

void IpLayer::receive_up(net::Packet pkt) {
  auto eth = pkt.ethernet();
  if (!eth || eth->ethertype != static_cast<u16>(net::EtherType::kIpv4)) {
    return;  // not ours; a layer below should have consumed it
  }
  // Frames addressed to another MAC can still reach us on a shared bus in
  // promiscuous situations; a normal stack ignores them.
  if (!eth->dst.is_broadcast() && !(eth->dst == node_->mac())) {
    ++stats_.rx_not_mine;
    return;
  }
  constexpr std::size_t ip_off = net::EthernetHeader::kSize;
  auto ip = net::Ipv4Header::read(pkt.view(), ip_off);
  if (!ip || !net::Ipv4Header::verify_checksum(pkt.view(), ip_off)) {
    ++stats_.rx_bad_checksum;
    return;
  }
  if (!(ip->dst == node_->ip())) {
    ++stats_.rx_not_mine;
    return;
  }
  if (pkt.size() < ip_off + ip->total_length ||
      ip->total_length < net::Ipv4Header::kSize) {
    ++stats_.rx_bad_checksum;  // malformed length counts as corrupt
    return;
  }
  auto it = handlers_.find(ip->protocol);
  if (it == handlers_.end()) {
    ++stats_.rx_no_handler;
    return;
  }
  ++stats_.rx_packets;

  const std::size_t l4_len = ip->total_length - net::Ipv4Header::kSize;
  auto shared = std::make_shared<net::Packet>(std::move(pkt));
  net::Ipv4Header hdr = *ip;
  u8 proto = ip->protocol;
  node_->simulator().after(
      node_->params().rx_stack_cost, [this, shared, hdr, proto, l4_len] {
        auto handler_it = handlers_.find(proto);
        if (handler_it == handlers_.end()) return;
        handler_it->second(
            hdr, shared->view().subspan(
                     net::EthernetHeader::kSize + net::Ipv4Header::kSize,
                     l4_len));
      });
}

}  // namespace vwire::host
