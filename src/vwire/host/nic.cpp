#include "vwire/host/nic.hpp"

namespace vwire::host {

Nic::Nic(sim::Simulator& sim, phy::Medium& medium, net::MacAddress mac)
    : sim_(sim), medium_(medium), mac_(mac) {
  port_ = medium_.attach(this);
}

void Nic::send_down(net::Packet pkt) {
  if (!up_) {
    ++stats_.dropped_down;
    return;
  }
  ++stats_.tx_frames;
  stats_.tx_bytes += pkt.size();
  if (pkt.created_at.ns == 0) pkt.created_at = sim_.now();
  if (flight_ != nullptr) {
    flight_->record(sim_.now().ns, pkt.span(), pkt.parent_span(),
                    obs::SpanEventKind::kNicTx, 0xffff, 0,
                    static_cast<i64>(pkt.size()));
  }
  medium_.transmit(port_, std::move(pkt));
}

void Nic::medium_deliver(net::Packet pkt) {
  if (!up_) {
    ++stats_.dropped_down;
    return;
  }
  ++stats_.rx_frames;
  stats_.rx_bytes += pkt.size();
  if (flight_ != nullptr) {
    flight_->record(sim_.now().ns, pkt.span(), pkt.parent_span(),
                    obs::SpanEventKind::kNicRx, 0xffff, 0,
                    static_cast<i64>(pkt.size()));
  }
  pass_up(std::move(pkt));
}

void Nic::set_up(bool up) {
  up_ = up;
  medium_.set_port_up(port_, up);
}

}  // namespace vwire::host
