// Node: one testbed host — a NIC, a stack of insertable layers, an IP
// layer, and a static neighbor table.
//
// Layers are added bottom-up between NIC and IP, reproducing the paper's
// stack (Fig 4a): driver / RLL / VirtualWire FIE+FAE / (Rether) / IP.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "vwire/host/ip_layer.hpp"
#include "vwire/host/nic.hpp"

namespace vwire::obs {
class MetricsRegistry;
}

namespace vwire::host {

struct NodeParams {
  std::string name;
  net::MacAddress mac;
  net::Ipv4Address ip;
  /// Kernel-stack processing charged per packet above the chain (one-way),
  /// standing in for the paper's Pentium-4 protocol processing time.
  Duration rx_stack_cost{micros(28)};
  Duration tx_stack_cost{micros(17)};
};

class Node {
 public:
  Node(sim::Simulator& sim, phy::Medium& medium, NodeParams params);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Inserts `layer` directly below the IP layer (i.e., above all layers
  /// added before it).  Call before traffic flows.
  Layer& add_layer(std::unique_ptr<Layer> layer);

  /// Finds an added layer by name; nullptr if absent.
  Layer* find_layer(std::string_view name);

  /// Fails the node: NIC down, apps see failed().  The observable
  /// behaviour of the FAIL fault primitive — total silence on the wire.
  void fail();
  /// Hard-crashes the node: everything fail() does, plus every layer drops
  /// its queued traffic and silences its timers (a crashed host loses its
  /// buffers).  The node-loss primitive scenario scripts schedule.
  void crash();
  /// Restores a failed/crashed node; layers may re-announce themselves to
  /// peers (the RLL raises its kReset flag so sequence spaces realign).
  void recover();
  bool failed() const { return failed_; }

  const std::string& name() const { return params_.name; }
  const net::MacAddress& mac() const { return params_.mac; }
  const net::Ipv4Address& ip() const { return params_.ip; }
  const NodeParams& params() const { return params_; }

  sim::Simulator& simulator() { return sim_; }
  Nic& nic() { return nic_; }
  IpLayer& ip_layer() { return ip_; }

  /// Telemetry registry for layers created after node construction (e.g.
  /// TCP connections); null when the testbed runs with telemetry off.
  void set_metrics(obs::MetricsRegistry* reg) { metrics_ = reg; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attaches this node's flight recorder (DESIGN.md §12): the NIC stamps
  /// tx/rx span events, the medium attributes this port's drops to it,
  /// crash/recover leave control-plane marks, and layers installed later
  /// (RLL, engine) find it here.  Null when tracing is off.
  void set_flight_recorder(obs::FlightRecorder* flight);
  obs::FlightRecorder* flight_recorder() const { return flight_; }

  /// Static ARP: maps a peer IP to its MAC.
  void add_neighbor(net::Ipv4Address ip, net::MacAddress mac);
  std::optional<net::MacAddress> resolve(net::Ipv4Address ip) const;

 private:
  void relink();

  sim::Simulator& sim_;
  NodeParams params_;
  Nic nic_;
  IpLayer ip_;
  std::vector<std::unique_ptr<Layer>> middle_;  // bottom-to-top
  std::unordered_map<net::Ipv4Address, net::MacAddress> neighbors_;
  obs::MetricsRegistry* metrics_{nullptr};
  obs::FlightRecorder* flight_{nullptr};
  bool failed_{false};
};

}  // namespace vwire::host
