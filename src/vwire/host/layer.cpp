#include "vwire/host/layer.hpp"

namespace vwire::host {

// Out-of-line key function anchors the vtable in this translation unit.
Layer::~Layer() = default;

}  // namespace vwire::host
