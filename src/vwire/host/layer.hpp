// The protocol-layer chain of a host network stack.
//
// The paper inserts the FIE/FAE "between the network interface card's device
// driver and the IP protocol stack" via Netfilter hooks (§3.3, §5.2) without
// modifying either side.  Layer reproduces that contract: a chain of layers
// between the NIC (bottom) and the IP demux (top), where any layer can
// observe, consume, delay, reorder or rewrite packets flowing in both
// directions while being completely transparent to its neighbours.
#pragma once

#include <string_view>

#include "vwire/net/packet.hpp"

namespace vwire::host {

class Node;

class Layer {
 public:
  virtual ~Layer();

  virtual std::string_view name() const = 0;

  /// A packet moving toward the wire.  Default behaviour: transparent.
  virtual void send_down(net::Packet pkt) { pass_down(std::move(pkt)); }

  /// A packet moving up from the wire.  Default behaviour: transparent.
  virtual void receive_up(net::Packet pkt) { pass_up(std::move(pkt)); }

  /// Called once the node's chain is linked, before traffic flows.
  virtual void attached(Node& node) { node_ = &node; }

  /// Node-level fault hooks (Node::crash / Node::recover).  A crash must
  /// leave no queued traffic or armed timers behind — a crashed host loses
  /// its buffers; recover() lets a layer re-announce itself to peers.
  virtual void on_node_crash() {}
  virtual void on_node_recover() {}

  void set_lower(Layer* l) { lower_ = l; }
  void set_upper(Layer* u) { upper_ = u; }
  Layer* lower() const { return lower_; }
  Layer* upper() const { return upper_; }

 protected:
  /// Forwards toward the wire; silently drops at the chain's end (a NIC
  /// always terminates the chain in a well-formed node).
  void pass_down(net::Packet pkt) {
    if (lower_ != nullptr) lower_->send_down(std::move(pkt));
  }

  /// Forwards toward the IP stack.
  void pass_up(net::Packet pkt) {
    if (upper_ != nullptr) upper_->receive_up(std::move(pkt));
  }

  Node* node_{nullptr};

 private:
  Layer* lower_{nullptr};
  Layer* upper_{nullptr};
};

}  // namespace vwire::host
