#include "vwire/host/node.hpp"

namespace vwire::host {

Node::Node(sim::Simulator& sim, phy::Medium& medium, NodeParams params)
    : sim_(sim), params_(std::move(params)), nic_(sim, medium, params_.mac) {
  relink();
  nic_.attached(*this);
  ip_.attached(*this);
}

Layer& Node::add_layer(std::unique_ptr<Layer> layer) {
  Layer& ref = *layer;
  middle_.push_back(std::move(layer));
  relink();
  ref.attached(*this);
  return ref;
}

Layer* Node::find_layer(std::string_view name) {
  for (auto& l : middle_) {
    if (l->name() == name) return l.get();
  }
  return nullptr;
}

void Node::relink() {
  // Chain: nic_ <-> middle_[0] <-> ... <-> middle_[n-1] <-> ip_
  Layer* below = &nic_;
  for (auto& l : middle_) {
    below->set_upper(l.get());
    l->set_lower(below);
    below = l.get();
  }
  below->set_upper(&ip_);
  ip_.set_lower(below);
}

void Node::set_flight_recorder(obs::FlightRecorder* flight) {
  flight_ = flight;
  nic_.set_flight(flight);
}

void Node::fail() {
  failed_ = true;
  nic_.set_up(false);
}

void Node::crash() {
  fail();
  if (flight_ != nullptr) {
    flight_->record(sim_.now().ns, 0, 0, obs::SpanEventKind::kCrash);
  }
  for (auto& l : middle_) l->on_node_crash();
}

void Node::recover() {
  failed_ = false;
  nic_.set_up(true);
  if (flight_ != nullptr) {
    flight_->record(sim_.now().ns, 0, 0, obs::SpanEventKind::kRecover);
  }
  for (auto& l : middle_) l->on_node_recover();
}

void Node::add_neighbor(net::Ipv4Address ip, net::MacAddress mac) {
  neighbors_[ip] = mac;
}

std::optional<net::MacAddress> Node::resolve(net::Ipv4Address ip) const {
  auto it = neighbors_.find(ip);
  if (it == neighbors_.end()) return std::nullopt;
  return it->second;
}

}  // namespace vwire::host
