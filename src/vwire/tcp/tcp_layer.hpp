// Per-node TCP: connection demultiplexing, listen/accept, segment I/O.
#pragma once

#include <unordered_map>

#include "vwire/host/node.hpp"
#include "vwire/tcp/tcp_connection.hpp"

namespace vwire::tcp {

struct TcpLayerStats {
  u64 rx_segments{0};
  u64 rx_bad_checksum{0};
  u64 rx_no_connection{0};
  u64 resets_sent{0};
};

class TcpLayer {
 public:
  explicit TcpLayer(host::Node& node, TcpParams defaults = {});

  using AcceptFn = std::function<void(std::shared_ptr<TcpConnection>)>;

  /// Accepts incoming connections on `port`; `on_accept` runs as soon as
  /// the connection object exists (state SYN_RCVD) so callers can hook
  /// callbacks before it establishes.
  void listen(u16 port, AcceptFn on_accept);
  void stop_listening(u16 port);

  /// Active open.  `src_port` 0 picks an ephemeral port.
  std::shared_ptr<TcpConnection> connect(net::Ipv4Address dst, u16 dst_port,
                                         u16 src_port = 0);
  /// Active open with per-connection parameter overrides.
  std::shared_ptr<TcpConnection> connect(net::Ipv4Address dst, u16 dst_port,
                                         u16 src_port, TcpParams params);

  std::shared_ptr<TcpConnection> find(const ConnKey& key) const;
  std::size_t connection_count() const { return conns_.size(); }

  /// Visits every live connection (invariant checkers sample congestion
  /// state through here).  Do not open/close connections from `fn`.
  template <class Fn>
  void for_each_connection(Fn&& fn) const {
    for (const auto& [key, conn] : conns_) fn(*conn);
  }

  /// Mutable visitor for Byzantine fault injection (chaos kStateFault):
  /// lets state-corruption hooks reach live connections.  Do not
  /// open/close connections from `fn`; never use outside fault injection.
  template <class Fn>
  void for_each_connection_mut(Fn&& fn) {
    for (auto& [key, conn] : conns_) fn(*conn);
  }
  const TcpLayerStats& stats() const { return stats_; }
  host::Node& node() { return node_; }
  const TcpParams& defaults() const { return defaults_; }

 private:
  void on_ip(const net::Ipv4Header& ip, BytesView l4);
  void send_reset(net::Ipv4Address dst, const net::TcpHeader& cause);
  std::shared_ptr<TcpConnection> make_connection(const ConnKey& key,
                                                 const TcpParams& params);

  host::Node& node_;
  TcpParams defaults_;
  TcpLayerStats stats_;
  std::unordered_map<ConnKey, std::shared_ptr<TcpConnection>> conns_;
  std::unordered_map<u16, AcceptFn> listeners_;
  u16 next_ephemeral_{49152};
};

}  // namespace vwire::tcp
