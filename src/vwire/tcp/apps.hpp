// TCP workload applications used by the paper's experiments.
//
//  * BulkSink     — accepting side; counts delivered bytes (Fig 5/6/7).
//  * BulkSender   — sends a fixed number of bytes as fast as the window
//                   allows, or paced at an "offered data pumping rate"
//                   (the x-axis of Fig 7).
#pragma once

#include "vwire/sim/timer.hpp"
#include "vwire/tcp/tcp_layer.hpp"

namespace vwire::tcp {

class BulkSink {
 public:
  BulkSink(TcpLayer& tcp, u16 port);

  u64 bytes_received() const { return bytes_; }
  u64 connections_accepted() const { return accepted_; }
  u64 connections_closed() const { return closed_; }
  /// Time the first/last payload byte arrived (throughput windows).
  TimePoint first_byte_at() const { return first_byte_at_; }
  TimePoint last_byte_at() const { return last_byte_at_; }

 private:
  TcpLayer& tcp_;
  u64 bytes_{0};
  u64 accepted_{0};
  u64 closed_{0};
  TimePoint first_byte_at_{};
  TimePoint last_byte_at_{};
};

class BulkSender {
 public:
  struct Params {
    net::Ipv4Address dst_ip;
    u16 dst_port{0};
    u16 src_port{0};          ///< 0 = ephemeral
    u64 total_bytes{1 << 20};  ///< 0 = run until stopped
    double offered_rate_bps{0.0};  ///< 0 = window-limited (as fast as possible)
    std::size_t chunk{8 * 1024};
    bool close_when_done{true};
    std::optional<TcpParams> tcp_params;  ///< per-connection overrides
  };

  BulkSender(TcpLayer& tcp, Params params);

  void start();
  void stop();  ///< stops offering data; closes if close_when_done

  bool finished() const { return finished_; }
  u64 offered_bytes() const { return offered_; }
  std::shared_ptr<TcpConnection> connection() { return conn_; }

  std::function<void()> on_complete;

 private:
  void pump();       // window-limited filling
  void paced_tick();  // rate-limited offering

  TcpLayer& tcp_;
  Params params_;
  std::shared_ptr<TcpConnection> conn_;
  sim::Timer pace_timer_;
  Duration pace_interval_{};
  u64 offered_{0};
  bool finished_{false};
  bool stopped_{false};
};

}  // namespace vwire::tcp
