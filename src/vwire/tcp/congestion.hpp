// TCP congestion control — slow start and congestion avoidance as described
// in RFC 2581 / Stevens (the paper's reference [19]) and as modelled by the
// paper's Fig 5 analysis script.
//
// The paper's wording (§6.1) is Tahoe-style: "If there is retransmission of
// any packet, then cwnd is reset to 1, and ssthresh drops to half the size
// of cwnd but not less than 2 MSS."  That includes the SYN retransmission
// the Fig 5 scenario forces (dropping a SYNACK), which is what lands the
// connection at ssthresh = 2, cwnd = 1.
//
// cwnd and ssthresh are counted in segments, matching the script's
// packet-counting view of the window:
//   slow start           (cwnd <= ssthresh): cwnd += 1 per new ack
//   congestion avoidance (cwnd >  ssthresh): cwnd += 1 on the (cwnd+1)-th
//     new ack (Linux 2.4's check-then-increment; the script's CCNT > CWND)
#pragma once

#include "vwire/util/types.hpp"

namespace vwire::tcp {

enum class CongestionFlavor {
  kTahoe,  ///< loss ⇒ cwnd = 1 (paper's description of Linux 2.4.17)
  kReno,   ///< fast retransmit ⇒ cwnd = ssthresh (fast recovery, simplified)
};

struct CongestionParams {
  u32 initial_cwnd{1};       ///< RFC allows 1, 2 or 4 segments (paper §6.1)
  u32 initial_ssthresh{44};  ///< 64 KB / 1460 B MSS, the paper's default
  u32 min_ssthresh{2};       ///< "not less than 2 MSS"
  CongestionFlavor flavor{CongestionFlavor::kTahoe};
};

class CongestionControl {
 public:
  explicit CongestionControl(CongestionParams params = {});

  u32 cwnd() const { return cwnd_; }
  u32 ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ <= ssthresh_; }
  const CongestionParams& params() const { return params_; }

  /// A new cumulative acknowledgement advanced snd_una by `acked_segments`.
  void on_new_ack(u32 acked_segments = 1);

  /// Retransmission timeout fired (any packet, including SYN).
  void on_timeout();

  /// Fast retransmit triggered by 3 duplicate acks.
  void on_fast_retransmit();

  /// Counters the analysis side observes (the Fig 5 script mirrors these).
  u32 ca_ack_count() const { return ca_acks_; }

  /// Byzantine fault-injection hooks (chaos kStateFault, DESIGN.md §10):
  /// overwrite window state directly, modelling soft-state memory
  /// corruption rather than any RFC event.  The next real congestion event
  /// operates on the corrupted values.  Never call outside fault injection.
  void inject_cwnd(u32 segments) { cwnd_ = segments; }
  void inject_ssthresh(u32 segments) { ssthresh_ = segments; }

 private:
  void collapse();

  CongestionParams params_;
  u32 cwnd_;
  u32 ssthresh_;
  u32 ca_acks_{0};  ///< acks accumulated toward the next CA increment
};

}  // namespace vwire::tcp
