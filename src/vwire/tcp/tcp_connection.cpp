#include "vwire/tcp/tcp_connection.hpp"

#include <algorithm>

#include "vwire/util/assert.hpp"
#include "vwire/util/logging.hpp"

namespace vwire::tcp {

using namespace net::tcp_flags;

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(sim::Simulator& sim, ConnKey key,
                             net::Ipv4Address local_ip, TcpParams params,
                             Output output, Reaper reaper)
    : sim_(sim),
      key_(key),
      local_ip_(local_ip),
      params_(params),
      output_(std::move(output)),
      reaper_(std::move(reaper)),
      cc_(params.congestion),
      rto_timer_(sim, [this] { on_rto(); }),
      ack_timer_(sim, [this] { on_delayed_ack(); }),
      time_wait_timer_(sim, [this] { on_time_wait_done(); }) {
  // Deterministic ISS derived from the four-tuple: replays are identical.
  u64 tuple = (static_cast<u64>(local_ip.value()) << 32) ^
              (static_cast<u64>(key.remote_ip.value()) << 8) ^
              (static_cast<u64>(key.local_port) << 16) ^ key.remote_port;
  iss_ = static_cast<u32>(derive_seed(tuple, "tcp.iss") | 1);
}

// ---------------------------------------------------------------------------
// Emission

void TcpConnection::emit(u8 flags, u32 seq, BytesView payload) {
  net::TcpHeader h;
  h.src_port = key_.local_port;
  h.dst_port = key_.remote_port;
  h.seq = seq;
  h.ack = (flags & kAck) ? rcv_nxt_ : 0;
  h.flags = flags;
  h.window = params_.advertised_window;
  ++stats_.segments_sent;
  output_(h, payload);
}

void TcpConnection::send_syn(bool with_ack) {
  last_syn_sent_ = sim_.now();
  emit(with_ack ? static_cast<u8>(kSyn | kAck) : kSyn, iss_, {});
}

void TcpConnection::send_ack_now() {
  delayed_ack_count_ = 0;
  ack_timer_.cancel();
  emit(kAck, snd_nxt_, {});
}

void TcpConnection::connect() {
  VWIRE_ASSERT(state_ == TcpState::kClosed, "connect on non-closed conn");
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN occupies one sequence number
  state_ = TcpState::kSynSent;
  send_syn(/*with_ack=*/false);
  rto_timer_.start(params_.syn_rto);
}

void TcpConnection::accept(const net::TcpHeader& syn) {
  VWIRE_ASSERT(state_ == TcpState::kClosed, "accept on non-closed conn");
  irs_ = syn.seq;
  rcv_nxt_ = syn.seq + 1;
  snd_wnd_ = syn.window;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  state_ = TcpState::kSynRcvd;
  send_syn(/*with_ack=*/true);
  rto_timer_.start(params_.syn_rto);
}

std::size_t TcpConnection::send(BytesView data) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kSynSent &&
      state_ != TcpState::kSynRcvd && state_ != TcpState::kCloseWait) {
    return 0;
  }
  if (fin_pending_ || fin_sent_) return 0;
  std::size_t room = params_.send_buffer_limit > send_buf_.size()
                         ? params_.send_buffer_limit - send_buf_.size()
                         : 0;
  std::size_t accepted = std::min(room, data.size());
  send_buf_.insert(send_buf_.end(), data.begin(), data.begin() + accepted);
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    maybe_send_data();
  }
  return accepted;
}

void TcpConnection::close() {
  switch (state_) {
    case TcpState::kClosed:
      return;
    case TcpState::kSynSent:
      become_closed();
      return;
    case TcpState::kSynRcvd:
    case TcpState::kEstablished:
    case TcpState::kCloseWait:
      fin_pending_ = true;
      maybe_send_data();
      return;
    default:
      return;  // close already in progress
  }
}

void TcpConnection::inject_congestion_state(std::optional<u32> cwnd,
                                            std::optional<u32> ssthresh) {
  if (cwnd) cc_.inject_cwnd(*cwnd);
  if (ssthresh) cc_.inject_ssthresh(*ssthresh);
  // A corrupted-larger window may unblock buffered data right away; a
  // corrupted-smaller one simply gates future transmissions.
  if (cwnd) maybe_send_data();
}

void TcpConnection::maybe_send_data() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  const u32 mss = params_.mss;
  const u32 wnd = std::min<u32>(cc_.cwnd() * mss, snd_wnd_);
  for (;;) {
    u32 in_flight = snd_nxt_ - snd_una_;
    std::size_t unsent = send_buf_.size() - in_flight;
    if (unsent == 0 || in_flight >= wnd) break;
    u32 len = static_cast<u32>(
        std::min<std::size_t>({mss, unsent, wnd - in_flight}));
    Bytes chunk(send_buf_.begin() + in_flight,
                send_buf_.begin() + in_flight + len);
    u8 flags = kAck;
    if (len == unsent) flags |= kPsh;
    if (!rtt_sampling_) {
      rtt_sampling_ = true;
      rtt_seq_ = snd_nxt_ + len;
      rtt_sent_at_ = sim_.now();
    }
    emit(flags, snd_nxt_, chunk);
    snd_nxt_ += len;
    if (!rto_timer_.armed()) rto_timer_.start(current_rto());
  }
  // FIN goes out only once everything buffered has been sent.
  if (fin_pending_ && !fin_sent_ &&
      send_buf_.size() == static_cast<std::size_t>(snd_nxt_ - snd_una_)) {
    emit(static_cast<u8>(kFin | kAck), snd_nxt_, {});
    snd_nxt_ += 1;  // FIN occupies one sequence number
    fin_sent_ = true;
    fin_pending_ = false;
    state_ = state_ == TcpState::kCloseWait ? TcpState::kLastAck
                                            : TcpState::kFinWait1;
    if (!rto_timer_.armed()) rto_timer_.start(current_rto());
  }
}

void TcpConnection::retransmit_one() {
  u32 outstanding = snd_nxt_ - snd_una_;
  if (outstanding == 0) return;
  if (!send_buf_.empty()) {
    u32 len = static_cast<u32>(
        std::min<std::size_t>(params_.mss, send_buf_.size()));
    Bytes chunk(send_buf_.begin(), send_buf_.begin() + len);
    emit(kAck, snd_una_, chunk);
  } else if (fin_sent_) {
    emit(static_cast<u8>(kFin | kAck), snd_una_, {});
  }
  rtt_sampling_ = false;  // Karn: never sample a retransmitted sequence
}

// ---------------------------------------------------------------------------
// Timers

Duration TcpConnection::current_rto() const {
  Duration base;
  if (!srtt_valid_) {
    base = params_.syn_rto;
  } else {
    base = srtt_ + Duration{std::max<i64>(4 * rttvar_.ns, millis(10).ns)};
  }
  base = Duration{base.ns * rto_backoff_};
  return std::clamp(base, params_.min_rto, params_.max_rto);
}

void TcpConnection::sample_rtt(Duration rtt) {
  if (!srtt_valid_) {
    srtt_ = rtt;
    rttvar_ = {rtt.ns / 2};
    srtt_valid_ = true;
  } else {
    i64 err = rtt.ns - srtt_.ns;
    rttvar_ = {(3 * rttvar_.ns + std::abs(err)) / 4};
    srtt_ = {srtt_.ns + err / 8};
  }
  if (rtt_hist_ != nullptr) rtt_hist_->record(static_cast<u64>(rtt.ns / 1000));
  if (rto_hist_ != nullptr) {
    rto_hist_->record(static_cast<u64>(current_rto().ns / 1000));
  }
}

void TcpConnection::on_rto() {
  switch (state_) {
    case TcpState::kSynSent:
      if (++syn_tries_ > params_.max_syn_retries) {
        become_closed();
        return;
      }
      ++stats_.syn_retransmits;
      // The paper (§6.1): a SYN retransmission collapses the congestion
      // state — this is exactly how the Fig 5 scenario gets ssthresh = 2.
      cc_.on_timeout();
      send_syn(false);
      rto_timer_.start(Duration{params_.syn_rto.ns << std::min(syn_tries_, 4u)});
      return;
    case TcpState::kSynRcvd:
      if (++syn_tries_ > params_.max_syn_retries) {
        become_closed();
        return;
      }
      ++stats_.syn_retransmits;
      send_syn(true);
      rto_timer_.start(Duration{params_.syn_rto.ns << std::min(syn_tries_, 4u)});
      return;
    default:
      break;
  }
  if (snd_nxt_ == snd_una_) return;  // nothing outstanding
  ++stats_.rto_retransmits;
  cc_.on_timeout();
  rto_backoff_ = std::min(rto_backoff_ * 2, 64u);
  dup_acks_ = 0;
  retransmit_one();
  rto_timer_.start(current_rto());
}

void TcpConnection::on_delayed_ack() {
  if (delayed_ack_count_ > 0) send_ack_now();
}

void TcpConnection::on_time_wait_done() { become_closed(); }

void TcpConnection::enter_time_wait() {
  state_ = TcpState::kTimeWait;
  rto_timer_.cancel();
  time_wait_timer_.start(params_.time_wait);
}

void TcpConnection::become_closed() {
  if (state_ == TcpState::kClosed) return;
  state_ = TcpState::kClosed;
  rto_timer_.cancel();
  ack_timer_.cancel();
  time_wait_timer_.cancel();
  if (on_closed) on_closed();
  if (reaper_) reaper_(key_);
}

// ---------------------------------------------------------------------------
// Input

void TcpConnection::on_segment(const net::TcpHeader& h, BytesView payload) {
  ++stats_.segments_received;
  if (h.flags & kRst) {
    become_closed();
    return;
  }

  switch (state_) {
    case TcpState::kClosed:
      return;
    case TcpState::kSynSent: {
      if ((h.flags & kSyn) && (h.flags & kAck) && h.ack == iss_ + 1) {
        irs_ = h.seq;
        rcv_nxt_ = h.seq + 1;
        snd_una_ = h.ack;
        snd_wnd_ = h.window;
        state_ = TcpState::kEstablished;
        rto_timer_.cancel();
        rto_backoff_ = 1;
        send_ack_now();  // completes the handshake
        if (on_established) on_established();
        maybe_send_data();
      }
      return;
    }
    case TcpState::kSynRcvd: {
      if (h.flags & kSyn) {
        // Duplicate SYN: our SYNACK was lost (the Fig 5 fault).  Resend it,
        // but rate-limited — if our own retransmission timer just fired we
        // must not answer with a second SYNACK (the peer would ack both,
        // and the spurious pure ACK is indistinguishable from data to
        // byte-offset filters).
        if (sim_.now() - last_syn_sent_ >= params_.min_rto) {
          send_syn(true);
        }
        return;
      }
      if ((h.flags & kAck) && h.ack == snd_nxt_) {
        snd_una_ = h.ack;
        snd_wnd_ = h.window;
        state_ = TcpState::kEstablished;
        rto_timer_.cancel();
        rto_backoff_ = 1;
        if (on_established) on_established();
        if (!payload.empty() || (h.flags & kFin)) {
          process_payload(h, payload);
        }
        maybe_send_data();
      }
      return;
    }
    default:
      break;
  }

  // Synchronized states.
  if (h.flags & kSyn) {
    // Stale duplicate SYN of this connection; re-ack our current state.
    send_ack_now();
    return;
  }
  process_ack(h);
  if (state_ == TcpState::kClosed) return;
  process_payload(h, payload);
}

void TcpConnection::process_ack(const net::TcpHeader& h) {
  if (!(h.flags & kAck)) return;
  snd_wnd_ = h.window;
  const u32 ack = h.ack;

  if (seq_gt(ack, snd_nxt_)) return;  // acks data we never sent; ignore

  if (seq_gt(ack, snd_una_)) {
    const u32 acked = ack - snd_una_;
    // Split the acked span into payload bytes (from the buffer) and at most
    // one FIN sequence number.
    u32 data_acked = static_cast<u32>(
        std::min<std::size_t>(acked, send_buf_.size()));
    send_buf_.erase(send_buf_.begin(), send_buf_.begin() + data_acked);
    stats_.bytes_sent += data_acked;
    bool fin_acked = fin_sent_ && ack == snd_nxt_;

    if (data_acked > 0) {
      u32 segs = (data_acked + params_.mss - 1) / params_.mss;
      cc_.on_new_ack(segs);
    }
    snd_una_ = ack;
    dup_acks_ = 0;
    rto_backoff_ = 1;

    if (rtt_sampling_ && seq_ge(ack, rtt_seq_)) {
      sample_rtt(sim_.now() - rtt_sent_at_);
      rtt_sampling_ = false;
    }
    if (snd_una_ == snd_nxt_) {
      rto_timer_.cancel();
    } else {
      rto_timer_.start(current_rto());
    }

    if (fin_acked) {
      if (state_ == TcpState::kFinWait1) {
        state_ = TcpState::kFinWait2;
      } else if (state_ == TcpState::kClosing) {
        enter_time_wait();
      } else if (state_ == TcpState::kLastAck) {
        become_closed();
        return;
      }
    }
    maybe_send_data();
    if (on_send_space && send_buf_.size() < params_.send_buffer_limit) {
      on_send_space();
    }
    return;
  }

  // Not an advance: a pure duplicate ack signals loss after 3 repeats.
  if (ack == snd_una_ && snd_nxt_ != snd_una_) {
    ++dup_acks_;
    ++stats_.dup_acks_received;
    if (dup_acks_ == 3) {
      ++stats_.fast_retransmits;
      cc_.on_fast_retransmit();
      retransmit_one();
      rto_timer_.start(current_rto());
    }
  }
}

void TcpConnection::process_payload(const net::TcpHeader& h,
                                    BytesView payload) {
  bool advanced = false;

  if (!payload.empty()) {
    if (h.seq == rcv_nxt_) {
      stats_.bytes_received += payload.size();
      rcv_nxt_ += static_cast<u32>(payload.size());
      advanced = true;
      if (on_data) on_data(payload);
      // Drain any buffered out-of-order successors.
      for (auto it = reassembly_.find(rcv_nxt_); it != reassembly_.end();
           it = reassembly_.find(rcv_nxt_)) {
        stats_.bytes_received += it->second.size();
        rcv_nxt_ += static_cast<u32>(it->second.size());
        if (on_data) on_data(it->second);
        reassembly_.erase(it);
      }
    } else if (seq_gt(h.seq, rcv_nxt_)) {
      ++stats_.out_of_order;
      reassembly_.emplace(h.seq, Bytes(payload.begin(), payload.end()));
      send_ack_now();  // duplicate ack: tells the sender what we expect
      return;
    } else {
      // Entirely old data (a retransmission we already have): re-ack.
      send_ack_now();
      return;
    }
  }

  if (h.flags & kFin) {
    u32 fin_seq = h.seq + static_cast<u32>(payload.size());
    if (fin_seq == rcv_nxt_) {
      rcv_nxt_ += 1;
      switch (state_) {
        case TcpState::kEstablished:
          state_ = TcpState::kCloseWait;
          break;
        case TcpState::kFinWait1:
          state_ = TcpState::kClosing;
          break;
        case TcpState::kFinWait2:
          enter_time_wait();
          break;
        default:
          break;
      }
      send_ack_now();
      if (on_peer_closed) on_peer_closed();
      return;
    }
    if (seq_lt(fin_seq, rcv_nxt_)) {
      send_ack_now();  // duplicate FIN (e.g. in TIME_WAIT)
      return;
    }
  }

  if (advanced) schedule_ack();
}

void TcpConnection::schedule_ack() {
  if (!params_.delayed_ack) {
    send_ack_now();
    return;
  }
  if (++delayed_ack_count_ >= 2) {
    send_ack_now();
  } else if (!ack_timer_.armed()) {
    ack_timer_.start(params_.delayed_ack_timeout);
  }
}

}  // namespace vwire::tcp
