#include "vwire/tcp/congestion.hpp"

#include <algorithm>

namespace vwire::tcp {

CongestionControl::CongestionControl(CongestionParams params)
    : params_(params),
      cwnd_(params.initial_cwnd),
      ssthresh_(params.initial_ssthresh) {}

void CongestionControl::on_new_ack(u32 acked_segments) {
  for (u32 i = 0; i < acked_segments; ++i) {
    if (in_slow_start()) {
      ++cwnd_;
    } else {
      // Linux 2.4 tcp_cong_avoid: grow when the counter has already
      // reached cwnd, i.e. on the (cwnd+1)-th ack — the paper's script
      // checks exactly this as `CCNT > CWND`.
      if (ca_acks_ >= cwnd_) {
        ca_acks_ = 0;
        ++cwnd_;
      } else {
        ++ca_acks_;
      }
    }
  }
}

void CongestionControl::collapse() {
  ssthresh_ = std::max(cwnd_ / 2, params_.min_ssthresh);
  ca_acks_ = 0;
}

void CongestionControl::on_timeout() {
  collapse();
  cwnd_ = 1;
}

void CongestionControl::on_fast_retransmit() {
  collapse();
  cwnd_ = params_.flavor == CongestionFlavor::kTahoe ? 1 : ssthresh_;
}

}  // namespace vwire::tcp
