#include "vwire/tcp/apps.hpp"

namespace vwire::tcp {

BulkSink::BulkSink(TcpLayer& tcp, u16 port) : tcp_(tcp) {
  tcp_.listen(port, [this](std::shared_ptr<TcpConnection> conn) {
    ++accepted_;
    conn->on_closed = [this] { ++closed_; };
    conn->on_data = [this](BytesView data) {
      TimePoint now = tcp_.node().simulator().now();
      if (bytes_ == 0) first_byte_at_ = now;
      bytes_ += data.size();
      last_byte_at_ = now;
    };
    // Echo the peer's close so the connection tears down fully.
    auto weak = std::weak_ptr<TcpConnection>(conn);
    conn->on_peer_closed = [weak] {
      if (auto c = weak.lock()) c->close();
    };
  });
}

BulkSender::BulkSender(TcpLayer& tcp, Params params)
    : tcp_(tcp),
      params_(params),
      pace_timer_(tcp.node().simulator(), [this] { paced_tick(); }) {
  if (params_.offered_rate_bps > 0.0) {
    double secs_per_chunk =
        static_cast<double>(params_.chunk) * 8.0 / params_.offered_rate_bps;
    pace_interval_ = seconds_f(secs_per_chunk);
  }
}

void BulkSender::start() {
  conn_ = params_.tcp_params
              ? tcp_.connect(params_.dst_ip, params_.dst_port,
                             params_.src_port, *params_.tcp_params)
              : tcp_.connect(params_.dst_ip, params_.dst_port,
                             params_.src_port);
  conn_->on_established = [this] {
    if (params_.offered_rate_bps > 0.0) {
      paced_tick();
    } else {
      pump();
    }
  };
  conn_->on_send_space = [this] {
    if (params_.offered_rate_bps <= 0.0) pump();
  };
}

void BulkSender::stop() {
  stopped_ = true;
  pace_timer_.cancel();
  if (conn_ && params_.close_when_done) conn_->close();
}

void BulkSender::pump() {
  if (finished_ || stopped_ || !conn_) return;
  static const Bytes block(8 * 1024, 0xAB);
  while (true) {
    u64 remaining = params_.total_bytes == 0
                        ? block.size()
                        : params_.total_bytes - offered_;
    if (params_.total_bytes != 0 && remaining == 0) break;
    std::size_t want = static_cast<std::size_t>(
        std::min<u64>({remaining, params_.chunk, block.size()}));
    std::size_t accepted = conn_->send(BytesView(block).subspan(0, want));
    offered_ += accepted;
    if (accepted < want) return;  // buffer full; on_send_space resumes us
    if (params_.total_bytes == 0) return;  // unlimited: refill on demand
  }
  finished_ = true;
  if (params_.close_when_done) conn_->close();
  if (on_complete) on_complete();
}

void BulkSender::paced_tick() {
  if (finished_ || stopped_ || !conn_) return;
  static const Bytes block(64 * 1024, 0xCD);
  u64 remaining =
      params_.total_bytes == 0 ? params_.chunk : params_.total_bytes - offered_;
  std::size_t want = static_cast<std::size_t>(
      std::min<u64>({remaining, params_.chunk, block.size()}));
  if (want > 0) {
    // What the buffer refuses is simply lost offered load, like an app
    // whose write() would block at this pumping rate.
    offered_ += conn_->send(BytesView(block).subspan(0, want));
  }
  if (params_.total_bytes != 0 && offered_ >= params_.total_bytes) {
    finished_ = true;
    if (params_.close_when_done) conn_->close();
    if (on_complete) on_complete();
    return;
  }
  pace_timer_.start(pace_interval_);
}

}  // namespace vwire::tcp
