// TCP connection state machine.
//
// A from-scratch TCP sufficient to stand in for the Linux 2.4.17 stack the
// paper tests: three-way handshake with SYN retransmission, MSS
// segmentation, cumulative acknowledgements, RTT-estimated retransmission
// timeout with exponential backoff, fast retransmit on three duplicate
// acks, receive-side reassembly, flow control from the advertised window,
// and the congestion control in congestion.hpp.  No options (fixed MSS, no
// SACK/timestamps) — the paper's filters assume 20-byte TCP headers.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "vwire/net/tcp_header.hpp"
#include "vwire/obs/metrics.hpp"
#include "vwire/sim/timer.hpp"
#include "vwire/tcp/congestion.hpp"
#include "vwire/util/rng.hpp"

namespace vwire::tcp {

enum class TcpState {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
};

const char* to_string(TcpState s);

struct TcpParams {
  u16 mss{1460};
  std::size_t send_buffer_limit{256 * 1024};
  u16 advertised_window{0xffff};  ///< 64 KB - 1, the classic default
  Duration syn_rto{seconds(1)};
  u32 max_syn_retries{5};
  Duration min_rto{millis(200)};
  Duration max_rto{seconds(16)};
  Duration time_wait{seconds(1)};  ///< shortened 2MSL, sim-friendly
  bool delayed_ack{false};         ///< off: ack every data segment (§6.1)
  Duration delayed_ack_timeout{millis(40)};
  CongestionParams congestion{};
};

struct TcpStats {
  u64 segments_sent{0};
  u64 segments_received{0};
  u64 bytes_sent{0};      ///< payload bytes accepted from the app and acked
  u64 bytes_received{0};  ///< payload bytes delivered to the app
  u64 rto_retransmits{0};
  u64 fast_retransmits{0};
  u64 syn_retransmits{0};
  u64 dup_acks_received{0};
  u64 bad_checksum{0};
  u64 out_of_order{0};
};

/// Single source of field names for formatting and registry exposure.
template <class Fn>
void for_each_field(const TcpStats& s, Fn&& fn) {
  fn("segments_sent", s.segments_sent);
  fn("segments_received", s.segments_received);
  fn("bytes_sent", s.bytes_sent);
  fn("bytes_received", s.bytes_received);
  fn("rto_retransmits", s.rto_retransmits);
  fn("fast_retransmits", s.fast_retransmits);
  fn("syn_retransmits", s.syn_retransmits);
  fn("dup_acks_received", s.dup_acks_received);
  fn("bad_checksum", s.bad_checksum);
  fn("out_of_order", s.out_of_order);
}

/// Four-tuple identifying a connection on a node.
struct ConnKey {
  net::Ipv4Address remote_ip;
  u16 remote_port{0};
  u16 local_port{0};
  friend bool operator==(const ConnKey&, const ConnKey&) = default;
};

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  /// Sends a finished segment toward the peer (provided by TcpLayer).
  using Output = std::function<void(const net::TcpHeader&, BytesView payload)>;
  /// Tells the owning layer this connection is gone.
  using Reaper = std::function<void(const ConnKey&)>;

  TcpConnection(sim::Simulator& sim, ConnKey key, net::Ipv4Address local_ip,
                TcpParams params, Output output, Reaper reaper);

  // --- application interface -------------------------------------------
  std::function<void()> on_established;
  std::function<void(BytesView)> on_data;
  std::function<void()> on_send_space;  ///< send buffer dipped below limit
  std::function<void()> on_peer_closed;  ///< peer's FIN arrived (EOF)
  std::function<void()> on_closed;

  /// Active open: emits the SYN.
  void connect();
  /// Passive open: adopts an incoming SYN (called by TcpLayer).
  void accept(const net::TcpHeader& syn);

  /// Appends to the send buffer; returns the bytes accepted (0 when full).
  std::size_t send(BytesView data);
  /// Graceful close (FIN after pending data drains).
  void close();

  // --- introspection -----------------------------------------------------
  TcpState state() const { return state_; }
  const CongestionControl& congestion() const { return cc_; }
  const TcpStats& stats() const { return stats_; }
  const ConnKey& key() const { return key_; }
  std::size_t send_buffer_bytes() const { return send_buf_.size(); }
  std::size_t unacked_bytes() const { return snd_nxt_ - snd_una_; }

  /// Segment arrival from TcpLayer; checksum already verified.
  void on_segment(const net::TcpHeader& h, BytesView payload);

  /// Byzantine fault-injection hook (chaos kStateFault, DESIGN.md §10):
  /// forces congestion state through CongestionControl's injection hooks.
  /// A raised cwnd immediately re-opens the send window; a lowered one
  /// gates future sends.  Never call outside fault injection.
  void inject_congestion_state(std::optional<u32> cwnd,
                               std::optional<u32> ssthresh);

  /// Telemetry sinks for accepted RTT samples and the resulting effective
  /// RTO (both µs); registry-owned, set by TcpLayer at connection creation.
  void set_rtt_histograms(obs::Histogram* rtt_us, obs::Histogram* rto_us) {
    rtt_hist_ = rtt_us;
    rto_hist_ = rto_us;
  }

 private:
  // Sending machinery.
  void emit(u8 flags, u32 seq, BytesView payload);
  void send_syn(bool with_ack);
  void send_ack_now();
  void maybe_send_data();
  void retransmit_one();
  void enter_time_wait();
  void become_closed();

  // Timer callbacks.
  void on_rto();
  void on_delayed_ack();
  void on_time_wait_done();

  // Segment processing helpers.
  void process_ack(const net::TcpHeader& h);
  void process_payload(const net::TcpHeader& h, BytesView payload);
  void schedule_ack();

  Duration current_rto() const;
  void sample_rtt(Duration rtt);

  sim::Simulator& sim_;
  ConnKey key_;
  net::Ipv4Address local_ip_;
  TcpParams params_;
  Output output_;
  Reaper reaper_;

  TcpState state_{TcpState::kClosed};
  CongestionControl cc_;
  TcpStats stats_;

  // Send sequence space (RFC 793 names).
  u32 iss_{0};
  u32 snd_una_{0};
  u32 snd_nxt_{0};
  u32 snd_wnd_{0xffff};
  std::deque<u8> send_buf_;  ///< unacked + unsent payload, base seq snd_una_
  bool fin_pending_{false};
  bool fin_sent_{false};

  // Receive sequence space.
  u32 irs_{0};
  u32 rcv_nxt_{0};
  std::map<u32, Bytes> reassembly_;
  u32 delayed_ack_count_{0};

  // Loss detection.
  sim::Timer rto_timer_;
  sim::Timer ack_timer_;
  sim::Timer time_wait_timer_;
  u32 dup_acks_{0};
  u32 syn_tries_{0};
  u32 rto_backoff_{1};
  TimePoint last_syn_sent_{.ns = -1'000'000'000};  ///< SYNACK rate limiting

  // RTT estimation (Jacobson/Karels); Karn's rule: no samples from
  // retransmitted sequences.
  bool srtt_valid_{false};
  Duration srtt_{};
  Duration rttvar_{};
  u32 rtt_seq_{0};        ///< sequence whose ack will be sampled
  TimePoint rtt_sent_at_{};
  bool rtt_sampling_{false};

  obs::Histogram* rtt_hist_{nullptr};  ///< accepted RTT samples (µs)
  obs::Histogram* rto_hist_{nullptr};  ///< effective RTO after each sample (µs)
};

/// 32-bit sequence-space comparison helpers.
inline bool seq_lt(u32 a, u32 b) { return static_cast<i32>(a - b) < 0; }
inline bool seq_le(u32 a, u32 b) { return static_cast<i32>(a - b) <= 0; }
inline bool seq_gt(u32 a, u32 b) { return static_cast<i32>(a - b) > 0; }
inline bool seq_ge(u32 a, u32 b) { return static_cast<i32>(a - b) >= 0; }

}  // namespace vwire::tcp

namespace std {
template <>
struct hash<vwire::tcp::ConnKey> {
  size_t operator()(const vwire::tcp::ConnKey& k) const {
    vwire::u64 v = (static_cast<vwire::u64>(k.remote_ip.value()) << 32) |
                   (static_cast<vwire::u64>(k.remote_port) << 16) |
                   k.local_port;
    return static_cast<size_t>(vwire::mix64(v));
  }
};
}  // namespace std
