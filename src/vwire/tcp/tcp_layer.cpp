#include "vwire/tcp/tcp_layer.hpp"

#include "vwire/util/logging.hpp"

namespace vwire::tcp {

TcpLayer::TcpLayer(host::Node& node, TcpParams defaults)
    : node_(node), defaults_(defaults) {
  node_.ip_layer().register_protocol(
      net::IpProto::kTcp,
      [this](const net::Ipv4Header& ip, BytesView l4) { on_ip(ip, l4); });
}

void TcpLayer::listen(u16 port, AcceptFn on_accept) {
  listeners_[port] = std::move(on_accept);
}

void TcpLayer::stop_listening(u16 port) { listeners_.erase(port); }

std::shared_ptr<TcpConnection> TcpLayer::make_connection(
    const ConnKey& key, const TcpParams& params) {
  auto output = [this, key](const net::TcpHeader& h, BytesView payload) {
    Bytes l4(net::TcpHeader::kSize + payload.size());
    std::copy(payload.begin(), payload.end(),
              l4.begin() + net::TcpHeader::kSize);
    net::TcpHeader hdr = h;
    hdr.write(l4, 0, payload, node_.ip(), key.remote_ip);
    node_.ip_layer().send(key.remote_ip, net::IpProto::kTcp, std::move(l4));
  };
  auto reaper = [this](const ConnKey& k) {
    // Deferred: the connection may be deep in its own call stack.
    node_.simulator().after({0}, [this, k] { conns_.erase(k); });
  };
  auto conn = std::make_shared<TcpConnection>(node_.simulator(), key,
                                              node_.ip(), params,
                                              std::move(output),
                                              std::move(reaper));
  if (obs::MetricsRegistry* reg = node_.metrics()) {
    // All of a node's connections share one histogram pair — the registry
    // slot outlives the connection.
    const std::string prefix = "tcp." + node_.name();
    conn->set_rtt_histograms(&reg->histogram(prefix + ".rtt_us"),
                             &reg->histogram(prefix + ".rto_us"));
  }
  conns_[key] = conn;
  return conn;
}

std::shared_ptr<TcpConnection> TcpLayer::connect(net::Ipv4Address dst,
                                                 u16 dst_port, u16 src_port) {
  return connect(dst, dst_port, src_port, defaults_);
}

std::shared_ptr<TcpConnection> TcpLayer::connect(net::Ipv4Address dst,
                                                 u16 dst_port, u16 src_port,
                                                 TcpParams params) {
  if (src_port == 0) src_port = next_ephemeral_++;
  ConnKey key{dst, dst_port, src_port};
  auto conn = make_connection(key, params);
  conn->connect();
  return conn;
}

std::shared_ptr<TcpConnection> TcpLayer::find(const ConnKey& key) const {
  auto it = conns_.find(key);
  return it == conns_.end() ? nullptr : it->second;
}

void TcpLayer::send_reset(net::Ipv4Address dst, const net::TcpHeader& cause) {
  ++stats_.resets_sent;
  net::TcpHeader rst;
  rst.src_port = cause.dst_port;
  rst.dst_port = cause.src_port;
  rst.seq = (cause.flags & net::tcp_flags::kAck) ? cause.ack : 0;
  rst.ack = cause.seq + 1;
  rst.flags = net::tcp_flags::kRst | net::tcp_flags::kAck;
  Bytes l4(net::TcpHeader::kSize);
  rst.write(l4, 0, {}, node_.ip(), dst);
  node_.ip_layer().send(dst, net::IpProto::kTcp, std::move(l4));
}

void TcpLayer::on_ip(const net::Ipv4Header& ip, BytesView l4) {
  ++stats_.rx_segments;
  auto h = net::TcpHeader::read(l4);
  if (!h) {
    ++stats_.rx_bad_checksum;
    return;
  }
  if (!net::TcpHeader::verify_checksum(l4, 0, l4.size(), ip.src, ip.dst)) {
    // MODIFY faults that corrupt TCP bytes without fixing the checksum are
    // discarded here, just as a real stack would.
    ++stats_.rx_bad_checksum;
    return;
  }
  BytesView payload = l4.subspan(net::TcpHeader::kSize);

  ConnKey key{ip.src, h->src_port, h->dst_port};
  if (auto conn = find(key)) {
    // Hold a local ref: processing may close and reap the connection.
    auto alive = conn;
    alive->on_segment(*h, payload);
    return;
  }

  // No connection: a SYN for a listening port performs a passive open.
  if ((h->flags & net::tcp_flags::kSyn) && !(h->flags & net::tcp_flags::kAck)) {
    auto lit = listeners_.find(h->dst_port);
    if (lit != listeners_.end()) {
      auto conn = make_connection(key, defaults_);
      lit->second(conn);  // caller wires callbacks before the SYNACK
      conn->accept(*h);
      return;
    }
  }
  ++stats_.rx_no_connection;
  if (!(h->flags & net::tcp_flags::kRst)) {
    send_reset(ip.src, *h);
  }
}

}  // namespace vwire::tcp
