// Reliable Link Layer — the paper's sliding-window ARQ (§3.3).
//
// "VirtualWire implements a Reliable Link Layer (RLL) to prevent MAC layer
//  bit errors from causing a packet drop when the FIE/FAE is unaware of the
//  packet loss.  The RLL guarantees reliable delivery of packets handed
//  over to it by the VirtualWire layer, and is based on a simple sliding
//  window protocol."
//
// Implementation notes:
//  * Per-peer (per remote MAC) sender and receiver state.
//  * Cumulative acknowledgements, piggybacked on reverse data when
//    possible; a standalone ack goes out after `ack_every` unacked data
//    frames or when the delayed-ack timer fires — this is the extra
//    traffic responsible for the Fig 7 throughput dip.
//  * Go-back-N retransmission on timeout; duplicates are discarded and
//    frames are delivered upward strictly in sequence order.
//  * Broadcast frames cannot be ARQ'd to a single peer and bypass RLL
//    untouched.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>

#include "vwire/host/node.hpp"
#include "vwire/rll/rll_header.hpp"
#include "vwire/sim/timer.hpp"

namespace vwire::rll {

struct RllParams {
  std::size_t window{32};          ///< max in-flight data frames per peer
  Duration rto{millis(20)};        ///< retransmission timeout
  std::size_t ack_every{2};        ///< standalone-ack threshold
  Duration delayed_ack{millis(5)};
  /// When true, an outgoing data frame's cumulative ack satisfies the
  /// peer's ack expectation and suppresses the standalone ack.  The
  /// paper's 2003-era RLL had no such optimization — its ack-per-frame
  /// behaviour is what degrades throughput at high load (Fig 7) — so the
  /// Fig 7/8 benches run with piggyback=false, ack_every=1.
  bool piggyback{true};
  std::size_t tx_queue_limit{1024};  ///< frames awaiting a window slot
  /// Consecutive timeout rounds before the peer is declared unreachable
  /// and its outstanding traffic is discarded (a crashed node must not
  /// keep the link retransmitting forever).
  u32 max_retry_rounds{8};
};

struct RllStats {
  u64 data_tx{0};
  u64 data_rx{0};
  u64 acks_tx{0};        ///< standalone ack frames
  u64 acks_rx{0};
  u64 retransmits{0};
  u64 duplicates_rx{0};
  u64 out_of_order_rx{0};
  u64 delivered{0};
  u64 dropped_queue_full{0};
  u64 passthrough{0};    ///< broadcast frames not encapsulated
  u64 peers_aborted{0};  ///< peers declared unreachable after max retries
  u64 crash_purged{0};   ///< frames dropped by a node crash
};

class RllLayer final : public host::Layer {
 public:
  explicit RllLayer(sim::Simulator& sim, RllParams params = {});

  std::string_view name() const override { return "rll"; }

  void send_down(net::Packet pkt) override;
  void receive_up(net::Packet pkt) override;

  /// A crashed host loses its ARQ buffers: drop in-flight and queued
  /// frames, silence the timers, and mark every peer for a kReset announce
  /// so sequence spaces realign when the node rejoins.
  void on_node_crash() override;

  const RllStats& stats() const { return stats_; }
  const RllParams& params() const { return params_; }

  /// Frames currently held for retransmission across all peers (test hook).
  std::size_t unacked_frames() const;

 private:
  struct PeerState {
    explicit PeerState(sim::Simulator& sim, RllLayer* self,
                       net::MacAddress peer);

    net::MacAddress peer_mac;

    // --- sender side ---
    u32 next_seq{1};       ///< sequence for the next fresh data frame
    u32 send_una{1};       ///< oldest unacknowledged sequence
    std::deque<net::Packet> inflight;  ///< encapsulated, seq send_una..next_seq-1
    std::deque<net::Packet> pending;   ///< raw frames awaiting window space
    sim::Timer rto_timer;
    u32 retry_rounds{0};  ///< consecutive timeouts without progress
    bool announce_reset{false};  ///< next data frame carries kReset

    // --- receiver side ---
    u32 recv_next{1};  ///< next in-order sequence expected
    std::map<u32, net::Packet> reorder;  ///< OOO frames keyed by seq
    std::size_t unacked_rx{0};           ///< data since last ack we sent
    sim::Timer ack_timer;
  };

  PeerState& peer(const net::MacAddress& mac);

  void send_data_frame(PeerState& p, const net::Packet& raw);
  void transmit_window(PeerState& p);
  void handle_ack(PeerState& p, u32 ack);
  void on_rto(PeerState& p);
  void send_standalone_ack(PeerState& p);
  /// Current cumulative ack value for piggybacking onto reverse data.
  u32 ack_value(PeerState& p) const { return p.recv_next; }

  sim::Simulator& sim_;
  RllParams params_;
  RllStats stats_;
  std::unordered_map<net::MacAddress, std::unique_ptr<PeerState>> peers_;
};

}  // namespace vwire::rll
