// Reliable Link Layer — the paper's sliding-window ARQ (§3.3), upgraded to
// an adaptive, self-healing ARQ.
//
// "VirtualWire implements a Reliable Link Layer (RLL) to prevent MAC layer
//  bit errors from causing a packet drop when the FIE/FAE is unaware of the
//  packet loss.  The RLL guarantees reliable delivery of packets handed
//  over to it by the VirtualWire layer, and is based on a simple sliding
//  window protocol."
//
// Implementation notes:
//  * Per-peer (per remote MAC) sender and receiver state.
//  * Cumulative acknowledgements, piggybacked on reverse data when
//    possible; a standalone ack goes out after `ack_every` unacked data
//    frames or when the delayed-ack timer fires — this is the extra
//    traffic responsible for the Fig 7 throughput dip.
//  * Go-back-N retransmission on timeout; duplicates are discarded and
//    frames are delivered upward strictly in sequence order.
//  * Adaptive RTO: Jacobson SRTT/RTTVAR estimation with Karn's rule
//    (retransmitted frames never produce samples), exponential timeout
//    backoff capped at `max_rto`, and duplicate-ack fast retransmit (an
//    out-of-order arrival triggers an immediate duplicate ack; the sender
//    resends the window head after `fast_retx_dupacks` of them).
//  * Link-down state machine: a peer that exhausts `max_retry_rounds`
//    consecutive timeout rounds is *quarantined* — outstanding traffic is
//    purged (counted, reported), the link listener is notified, and
//    kProbe frames (bounded exponential backoff) watch for the link to
//    heal.  Any frame from the peer revives the link; the first data
//    frame after revival carries kReset so sequence spaces realign and no
//    frame is ever delivered twice or out of order across a flap.
//  * Broadcast frames cannot be ARQ'd to a single peer and bypass RLL
//    untouched.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

#include "vwire/host/node.hpp"
#include "vwire/obs/metrics.hpp"
#include "vwire/rll/rll_header.hpp"
#include "vwire/sim/timer.hpp"

namespace vwire::rll {

struct RllParams {
  std::size_t window{32};          ///< max in-flight data frames per peer
  /// Initial retransmission timeout, used until the first RTT sample.
  Duration rto{millis(20)};
  std::size_t ack_every{2};        ///< standalone-ack threshold
  Duration delayed_ack{millis(5)};
  /// When true, an outgoing data frame's cumulative ack satisfies the
  /// peer's ack expectation and suppresses the standalone ack.  The
  /// paper's 2003-era RLL had no such optimization — its ack-per-frame
  /// behaviour is what degrades throughput at high load (Fig 7) — so the
  /// Fig 7/8 benches run with piggyback=false, ack_every=1.
  bool piggyback{true};
  std::size_t tx_queue_limit{1024};  ///< frames awaiting a window slot
  /// Consecutive timeout rounds before the peer is declared link-down and
  /// quarantined (a crashed node must not keep the link retransmitting
  /// forever).
  u32 max_retry_rounds{8};

  // --- adaptive ARQ ---
  /// RTO clamp floor.  Must exceed the peer's worst-case ack delay
  /// (delayed_ack) or every tail frame spuriously retransmits.
  Duration min_rto{millis(10)};
  /// RTO backoff cap: consecutive timeouts double the timeout up to here.
  Duration max_rto{seconds(1)};
  /// Duplicate (standalone) acks that trigger a fast retransmit of the
  /// window head; 0 disables fast retransmit.
  u32 fast_retx_dupacks{3};
  /// First link-liveness probe interval after quarantine; doubles per
  /// probe, capped at max_rto.
  Duration probe_interval{millis(40)};
  /// Probes per quarantine episode before giving up (fresh outbound
  /// traffic to the quarantined peer restarts a probe cycle).
  u32 max_probe_rounds{10};
};

struct RllStats {
  u64 data_tx{0};
  u64 data_rx{0};
  u64 acks_tx{0};        ///< standalone ack frames
  u64 acks_rx{0};
  u64 retransmits{0};
  u64 fast_retransmits{0};  ///< subset of retransmits from dup-ack recovery
  u64 duplicates_rx{0};
  u64 out_of_order_rx{0};
  u64 delivered{0};
  u64 dropped_queue_full{0};
  u64 passthrough{0};    ///< broadcast frames not encapsulated
  u64 peers_aborted{0};  ///< link-down transitions (peer quarantined)
  u64 peers_recovered{0};  ///< link-up transitions (quarantined peer healed)
  u64 down_purged{0};    ///< frames purged when a peer was quarantined
  u64 crash_purged{0};   ///< frames dropped by a node crash
  u64 rtt_samples{0};    ///< RTT measurements accepted (Karn-filtered)
  u64 probes_tx{0};
  u64 probes_rx{0};
  /// Delivery audit: frames handed upward whose sequence did not strictly
  /// advance the peer's delivered stream — a duplicate or regressed
  /// delivery.  Always 0 unless the ARQ is broken; the chaos exactly-once
  /// invariant checker reads this.
  u64 deliver_misorder{0};
};

/// Single source of field names for formatting and registry exposure.
template <class Fn>
void for_each_field(const RllStats& s, Fn&& fn) {
  fn("data_tx", s.data_tx);
  fn("data_rx", s.data_rx);
  fn("acks_tx", s.acks_tx);
  fn("acks_rx", s.acks_rx);
  fn("retransmits", s.retransmits);
  fn("fast_retransmits", s.fast_retransmits);
  fn("duplicates_rx", s.duplicates_rx);
  fn("out_of_order_rx", s.out_of_order_rx);
  fn("delivered", s.delivered);
  fn("dropped_queue_full", s.dropped_queue_full);
  fn("passthrough", s.passthrough);
  fn("peers_aborted", s.peers_aborted);
  fn("peers_recovered", s.peers_recovered);
  fn("down_purged", s.down_purged);
  fn("crash_purged", s.crash_purged);
  fn("rtt_samples", s.rtt_samples);
  fn("probes_tx", s.probes_tx);
  fn("probes_rx", s.probes_rx);
  fn("deliver_misorder", s.deliver_misorder);
}

class RllLayer final : public host::Layer {
 public:
  explicit RllLayer(sim::Simulator& sim, RllParams params = {});

  std::string_view name() const override { return "rll"; }

  void send_down(net::Packet pkt) override;
  void receive_up(net::Packet pkt) override;

  /// A crashed host loses its ARQ buffers: drop in-flight and queued
  /// frames, silence the timers, and mark every peer for a kReset announce
  /// so sequence spaces realign when the node rejoins.
  void on_node_crash() override;

  /// A recovered node probes every quarantined peer immediately so links
  /// heal as fast as the wire allows.
  void on_node_recover() override;

  /// Invoked on every per-peer link transition: up=false when the peer is
  /// quarantined after exhausting its retry budget, up=true when a frame
  /// from the peer (usually a probe's ack) revives the link.
  using LinkEventFn = std::function<void(const net::MacAddress& peer, bool up)>;
  void set_link_listener(LinkEventFn fn) { link_listener_ = std::move(fn); }

  const RllStats& stats() const { return stats_; }
  const RllParams& params() const { return params_; }

  /// Registers this layer's stats (counter views) plus RTT-sample and
  /// effective-RTO histograms (both in µs) under `prefix` (convention:
  /// "rll.<node>").
  void bind_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    obs::expose_stats(reg, prefix, stats_);
    rtt_hist_ = &reg.histogram(prefix + ".rtt_us");
    rto_hist_ = &reg.histogram(prefix + ".rto_us");
  }

  /// Frames currently held for retransmission across all peers (test hook).
  std::size_t unacked_frames() const;

  /// Test-only fault knob: while on, every in-order data frame is handed
  /// upward twice.  Exists so chaos campaigns can plant a known-bad
  /// duplicate-delivery fault and prove the exactly-once invariant checker
  /// catches it; never enable outside tests.
  void set_test_duplicate_delivery(bool on) { test_dup_deliver_ = on; }

  /// Byzantine fault-injection hook (chaos kStateFault, DESIGN.md §10):
  /// regresses every known peer's in-order receive cursor (recv_next) by
  /// up to `frames`, as if the window state were corrupted in memory.
  /// Already-delivered sequences re-enter the window, so a retransmission
  /// landing on the regressed cursor is handed upward a second time — the
  /// delivery audit (deliver_misorder) catches exactly that.  Never call
  /// outside fault injection.
  void corrupt_recv_window(u32 frames);

  /// Introspection of one peer's ARQ state (test hook).
  struct PeerInfo {
    bool known{false};
    bool up{true};
    Duration srtt{};
    Duration rttvar{};
    Duration rto{};  ///< effective timeout, including current backoff
    u32 retry_rounds{0};
    std::size_t inflight{0};
    std::size_t pending{0};
  };
  PeerInfo peer_info(const net::MacAddress& mac) const;

 private:
  enum class LinkState : u8 { kUp, kDown };

  struct PeerState {
    explicit PeerState(sim::Simulator& sim, RllLayer* self,
                       net::MacAddress peer);

    net::MacAddress peer_mac;

    // --- sender side ---
    u32 next_seq{1};       ///< sequence for the next fresh data frame
    u32 send_una{1};       ///< oldest unacknowledged sequence
    std::deque<net::Packet> inflight;  ///< encapsulated, seq send_una..next_seq-1
    std::deque<net::Packet> pending;   ///< raw frames awaiting window space
    sim::Timer rto_timer;
    u32 retry_rounds{0};  ///< consecutive timeouts without progress
    bool announce_reset{false};  ///< next data frame carries kReset

    // RTT estimation (Jacobson); sample tracking implements Karn's rule.
    bool srtt_valid{false};
    Duration srtt{};
    Duration rttvar{};
    bool sample_armed{false};
    u32 sample_seq{0};
    TimePoint sample_sent{};

    // Duplicate-ack fast retransmit.
    u32 dup_acks{0};

    // Link-down quarantine state.
    LinkState link{LinkState::kUp};
    sim::Timer probe_timer;
    u32 probe_rounds{0};

    // --- receiver side ---
    u32 recv_next{1};  ///< next in-order sequence expected
    std::map<u32, net::Packet> reorder;  ///< OOO frames keyed by seq
    std::size_t unacked_rx{0};           ///< data since last ack we sent
    sim::Timer ack_timer;

    // Delivery audit (stats_.deliver_misorder): the last sequence handed
    // upward.  Deliberately NOT reset by crash/kReset — the delivered
    // stream must advance strictly across the peer's whole lifetime.
    bool audit_any{false};
    u32 audit_last{0};
  };

  PeerState& peer(const net::MacAddress& mac);

  /// The owning node's flight recorder, or null (tracing off / detached).
  obs::FlightRecorder* flight() const {
    return node_ != nullptr ? node_->flight_recorder() : nullptr;
  }

  void send_data_frame(PeerState& p, const net::Packet& raw);
  void transmit_window(PeerState& p);
  void handle_ack(PeerState& p, u32 ack, bool standalone);
  void on_rto(PeerState& p);
  void on_probe_timer(PeerState& p);
  void send_standalone_ack(PeerState& p);
  /// Current cumulative ack value for piggybacking onto reverse data.
  u32 ack_value(PeerState& p) const { return p.recv_next; }

  /// Effective retransmission timeout for the peer: the Jacobson estimate
  /// (or the configured initial value before the first sample), doubled
  /// per consecutive timeout round, clamped to [min_rto, max_rto].
  Duration rto_for(const PeerState& p) const;
  void take_rtt_sample(PeerState& p, Duration rtt);

  /// Records one upward delivery of `seq` in the peer's audit trail.
  void audit_delivery(PeerState& p, u32 seq);

  /// Quarantines the peer: purge traffic, notify, start probing.
  void link_down(PeerState& p);
  /// Revives a quarantined peer and flushes traffic queued while down.
  void link_up(PeerState& p);

  sim::Simulator& sim_;
  RllParams params_;
  RllStats stats_;
  obs::Histogram* rtt_hist_{nullptr};  ///< accepted RTT samples (µs)
  obs::Histogram* rto_hist_{nullptr};  ///< effective RTO after each sample (µs)
  LinkEventFn link_listener_;
  bool test_dup_deliver_{false};
  std::unordered_map<net::MacAddress, std::unique_ptr<PeerState>> peers_;
};

}  // namespace vwire::rll
