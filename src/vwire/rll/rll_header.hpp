// Reliable Link Layer wire format.
//
// RLL encapsulation keeps the Ethernet MAC header in place and replaces the
// ethertype with kRll; a 12-byte RLL header (carrying the original
// ethertype) follows, then the original payload.  Decapsulation therefore
// restores the frame byte-for-byte, which is what keeps the FSL filter
// offsets valid above this layer.
//
//   0               1               2               3
//   +------+--------+---------------+-------------------------------+
//   | type | flags  |   original ethertype          |
//   +------+--------+-------------------------------+
//   |                sequence number (u32)          |
//   +-----------------------------------------------+
//   |                acknowledgement (u32)          |
//   +-----------------------------------------------+
#pragma once

#include "vwire/net/packet.hpp"

namespace vwire::rll {

enum class RllType : u8 {
  kData = 1,   ///< carries an encapsulated frame
  kAck = 2,    ///< standalone cumulative acknowledgement
  kProbe = 3,  ///< link-liveness probe to a quarantined peer (elicits an ack)
};

namespace rll_flags {
inline constexpr u8 kAckValid = 0x01;  ///< the ack field is meaningful
/// First frame of a new sender epoch: the receiver realigns its expected
/// sequence to this frame's seq (used after a peer was declared dead and
/// its outstanding traffic discarded, so a recovered node resynchronizes).
inline constexpr u8 kReset = 0x02;
}

struct RllHeader {
  static constexpr std::size_t kSize = 12;
  /// Offset of the RLL header within an encapsulated frame.
  static constexpr std::size_t kOffset = net::EthernetHeader::kSize;

  RllType type{RllType::kData};
  u8 flags{0};
  u16 orig_ethertype{0};
  u32 seq{0};  ///< cumulative: sequence of this data frame
  u32 ack{0};  ///< next sequence expected from the peer

  void write(BytesSpan out, std::size_t off) const;
  static std::optional<RllHeader> read(BytesView in, std::size_t off);
};

/// True if a < b in 32-bit sequence space (RFC 1982 style).
bool seq_less(u32 a, u32 b);

/// Wraps `frame` (a full Ethernet frame) into an RLL data frame.
net::Packet encapsulate(const net::Packet& frame, u32 seq, u32 ack, u8 flags);

/// Reverses encapsulate(); nullopt if `pkt` is not a well-formed RLL data
/// frame.  The restored frame keeps the original ethertype and payload.
std::optional<net::Packet> decapsulate(const net::Packet& pkt);

/// Builds a standalone ack frame from `src` to `dst`.
net::Packet make_ack(const net::MacAddress& dst, const net::MacAddress& src,
                     u32 ack);

/// Builds a link-liveness probe from `src` to `dst`; the receiver answers
/// any probe with an immediate standalone ack, which is how a sender that
/// quarantined the peer learns the link healed.
net::Packet make_probe(const net::MacAddress& dst, const net::MacAddress& src,
                       u32 ack);

}  // namespace vwire::rll
