#include "vwire/rll/rll_layer.hpp"

#include "vwire/util/logging.hpp"

namespace vwire::rll {

RllLayer::RllLayer(sim::Simulator& sim, RllParams params)
    : sim_(sim), params_(params) {}

RllLayer::PeerState::PeerState(sim::Simulator& sim, RllLayer* self,
                               net::MacAddress peer)
    : peer_mac(peer),
      rto_timer(sim, [self, this] { self->on_rto(*this); }),
      ack_timer(sim, [self, this] { self->send_standalone_ack(*this); }) {}

RllLayer::PeerState& RllLayer::peer(const net::MacAddress& mac) {
  auto it = peers_.find(mac);
  if (it == peers_.end()) {
    it = peers_.emplace(mac, std::make_unique<PeerState>(sim_, this, mac))
             .first;
  }
  return *it->second;
}

void RllLayer::on_node_crash() {
  for (auto& [mac, p] : peers_) {
    stats_.crash_purged += p->inflight.size() + p->pending.size();
    p->rto_timer.cancel();
    p->ack_timer.cancel();
    p->inflight.clear();
    p->pending.clear();
    p->reorder.clear();
    // Sequence counters advance as if acked (no seq reuse on rejoin); the
    // kReset announce realigns the peer's receive window.
    p->send_una = p->next_seq;
    p->retry_rounds = 0;
    p->unacked_rx = 0;
    p->announce_reset = true;
  }
}

std::size_t RllLayer::unacked_frames() const {
  std::size_t n = 0;
  for (const auto& [mac, p] : peers_) n += p->inflight.size();
  return n;
}

void RllLayer::send_down(net::Packet pkt) {
  auto eth = pkt.ethernet();
  if (!eth || eth->dst.is_broadcast()) {
    // No single retransmission peer exists for broadcast; let it through.
    ++stats_.passthrough;
    pass_down(std::move(pkt));
    return;
  }
  PeerState& p = peer(eth->dst);
  if (p.inflight.size() >= params_.window) {
    if (p.pending.size() >= params_.tx_queue_limit) {
      ++stats_.dropped_queue_full;
      return;
    }
    p.pending.push_back(std::move(pkt));
    return;
  }
  send_data_frame(p, pkt);
}

void RllLayer::send_data_frame(PeerState& p, const net::Packet& raw) {
  // Encapsulate with a fresh sequence and a piggybacked cumulative ack.
  u8 flags = rll_flags::kAckValid;
  if (p.announce_reset) {
    flags |= rll_flags::kReset;
    p.announce_reset = false;
  }
  net::Packet data = encapsulate(raw, p.next_seq, ack_value(p), flags);
  ++p.next_seq;
  p.inflight.push_back(data.clone());
  ++stats_.data_tx;
  if (params_.piggyback) {
    // The piggybacked ack supersedes any pending standalone one.
    p.unacked_rx = 0;
    p.ack_timer.cancel();
  }
  if (!p.rto_timer.armed()) p.rto_timer.start(params_.rto);
  pass_down(std::move(data));
}

void RllLayer::transmit_window(PeerState& p) {
  while (p.inflight.size() < params_.window && !p.pending.empty()) {
    net::Packet raw = std::move(p.pending.front());
    p.pending.pop_front();
    send_data_frame(p, raw);
  }
}

void RllLayer::handle_ack(PeerState& p, u32 ack) {
  bool advanced = false;
  while (!p.inflight.empty() && seq_less(p.send_una, ack)) {
    p.inflight.pop_front();
    ++p.send_una;
    advanced = true;
  }
  if (!advanced) return;
  p.retry_rounds = 0;
  if (p.inflight.empty()) {
    p.rto_timer.cancel();
  } else {
    p.rto_timer.start(params_.rto);
  }
  transmit_window(p);
}

void RllLayer::on_rto(PeerState& p) {
  if (p.inflight.empty()) return;
  if (++p.retry_rounds > params_.max_retry_rounds) {
    // Peer is unreachable (crashed or FAIL'ed): stop retransmitting so the
    // rest of the testbed can make progress.  Sequence counters advance as
    // if acked so the peer resynchronizes if it ever returns.
    ++stats_.peers_aborted;
    p.send_una = p.next_seq;
    p.inflight.clear();
    p.pending.clear();
    p.retry_rounds = 0;
    p.announce_reset = true;  // realign the peer if it ever comes back
    return;
  }
  // Go-back-N: resend everything outstanding.
  stats_.retransmits += p.inflight.size();
  for (const net::Packet& frame : p.inflight) {
    pass_down(frame.clone());
  }
  p.rto_timer.start(params_.rto);
}

void RllLayer::send_standalone_ack(PeerState& p) {
  ++stats_.acks_tx;
  p.unacked_rx = 0;
  p.ack_timer.cancel();
  pass_down(make_ack(p.peer_mac, node_->mac(), p.recv_next));
}

void RllLayer::receive_up(net::Packet pkt) {
  if (pkt.ethertype() != static_cast<u16>(net::EtherType::kRll)) {
    pass_up(std::move(pkt));  // unencapsulated (e.g. broadcast passthrough)
    return;
  }
  auto eth = pkt.ethernet();
  auto h = RllHeader::read(pkt.view(), RllHeader::kOffset);
  if (!eth || !h) return;  // malformed; a real NIC would have FCS-dropped it
  PeerState& p = peer(eth->src);

  if (h->flags & rll_flags::kAckValid) handle_ack(p, h->ack);
  if (h->type == RllType::kAck) {
    ++stats_.acks_rx;
    return;
  }

  ++stats_.data_rx;
  if (h->flags & rll_flags::kReset) {
    // Sender started a new epoch (it gave up on us while we were down):
    // realign and drop any stale reorder state.
    p.recv_next = h->seq;
    p.reorder.clear();
  }
  if (seq_less(h->seq, p.recv_next)) {
    // Duplicate of something we already delivered: our ack was lost, so
    // re-ack immediately to stop the retransmissions.
    ++stats_.duplicates_rx;
    send_standalone_ack(p);
    return;
  }
  if (h->seq != p.recv_next) {
    ++stats_.out_of_order_rx;
    p.reorder.emplace(h->seq, std::move(pkt));
    return;
  }

  // In-order: deliver, then drain any buffered successors.
  auto deliver = [this, &p](const net::Packet& data) {
    if (auto restored = decapsulate(data)) {
      ++stats_.delivered;
      ++p.unacked_rx;
      pass_up(std::move(*restored));
    }
  };
  deliver(pkt);
  ++p.recv_next;
  for (auto it = p.reorder.find(p.recv_next); it != p.reorder.end();
       it = p.reorder.find(p.recv_next)) {
    deliver(it->second);
    p.reorder.erase(it);
    ++p.recv_next;
  }

  if (p.unacked_rx >= params_.ack_every) {
    send_standalone_ack(p);
  } else if (!p.ack_timer.armed()) {
    p.ack_timer.start(params_.delayed_ack);
  }
}

}  // namespace vwire::rll
