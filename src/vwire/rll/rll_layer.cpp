#include "vwire/rll/rll_layer.hpp"

#include <algorithm>

#include "vwire/util/logging.hpp"

namespace vwire::rll {

RllLayer::RllLayer(sim::Simulator& sim, RllParams params)
    : sim_(sim), params_(params) {}

RllLayer::PeerState::PeerState(sim::Simulator& sim, RllLayer* self,
                               net::MacAddress peer)
    : peer_mac(peer),
      rto_timer(sim, [self, this] { self->on_rto(*this); }),
      probe_timer(sim, [self, this] { self->on_probe_timer(*this); }),
      ack_timer(sim, [self, this] { self->send_standalone_ack(*this); }) {}

RllLayer::PeerState& RllLayer::peer(const net::MacAddress& mac) {
  auto it = peers_.find(mac);
  if (it == peers_.end()) {
    it = peers_.emplace(mac, std::make_unique<PeerState>(sim_, this, mac))
             .first;
  }
  return *it->second;
}

void RllLayer::on_node_crash() {
  for (auto& [mac, p] : peers_) {
    stats_.crash_purged += p->inflight.size() + p->pending.size();
    p->rto_timer.cancel();
    p->ack_timer.cancel();
    p->probe_timer.cancel();
    p->inflight.clear();
    p->pending.clear();
    p->reorder.clear();
    // Sequence counters advance as if acked (no seq reuse on rejoin); the
    // kReset announce realigns the peer's receive window.
    p->send_una = p->next_seq;
    p->retry_rounds = 0;
    p->unacked_rx = 0;
    p->announce_reset = true;
    // A crashed host loses its ARQ soft state entirely.
    p->link = LinkState::kUp;
    p->probe_rounds = 0;
    p->dup_acks = 0;
    p->sample_armed = false;
    p->srtt_valid = false;
  }
}

void RllLayer::on_node_recover() {
  // Probe quarantined peers right away: the outage may have been ours.
  for (auto& [mac, p] : peers_) {
    if (p->link != LinkState::kDown) continue;
    p->probe_rounds = 0;
    p->probe_timer.cancel();
    on_probe_timer(*p);
  }
}

std::size_t RllLayer::unacked_frames() const {
  std::size_t n = 0;
  for (const auto& [mac, p] : peers_) n += p->inflight.size();
  return n;
}

RllLayer::PeerInfo RllLayer::peer_info(const net::MacAddress& mac) const {
  PeerInfo info;
  auto it = peers_.find(mac);
  if (it == peers_.end()) return info;
  const PeerState& p = *it->second;
  info.known = true;
  info.up = p.link == LinkState::kUp;
  info.srtt = p.srtt;
  info.rttvar = p.rttvar;
  info.rto = rto_for(p);
  info.retry_rounds = p.retry_rounds;
  info.inflight = p.inflight.size();
  info.pending = p.pending.size();
  return info;
}

Duration RllLayer::rto_for(const PeerState& p) const {
  Duration base = params_.rto;
  if (p.srtt_valid) base = p.srtt + p.rttvar * 4;
  base = std::clamp(base, params_.min_rto, params_.max_rto);
  // Exponential backoff per consecutive timeout round, capped.
  for (u32 i = 0; i < p.retry_rounds && base < params_.max_rto; ++i) {
    base = base * 2;
  }
  return std::min(base, params_.max_rto);
}

void RllLayer::take_rtt_sample(PeerState& p, Duration rtt) {
  if (rtt.ns < 0) return;
  if (!p.srtt_valid) {
    p.srtt = rtt;
    p.rttvar = rtt / 2;
    p.srtt_valid = true;
  } else {
    // Jacobson/Karels: rttvar = 3/4·rttvar + 1/4·|srtt − rtt|,
    //                  srtt   = 7/8·srtt   + 1/8·rtt.
    Duration err = rtt - p.srtt;
    if (err.ns < 0) err.ns = -err.ns;
    p.rttvar = (p.rttvar * 3 + err) / 4;
    p.srtt = (p.srtt * 7 + rtt) / 8;
  }
  ++stats_.rtt_samples;
  if (rtt_hist_ != nullptr) rtt_hist_->record(static_cast<u64>(rtt.ns / 1000));
  if (rto_hist_ != nullptr) {
    rto_hist_->record(static_cast<u64>(rto_for(p).ns / 1000));
  }
}

void RllLayer::send_down(net::Packet pkt) {
  auto eth = pkt.ethernet();
  if (!eth || eth->dst.is_broadcast()) {
    // No single retransmission peer exists for broadcast; let it through.
    ++stats_.passthrough;
    pass_down(std::move(pkt));
    return;
  }
  PeerState& p = peer(eth->dst);
  if (p.link == LinkState::kDown) {
    // Quarantined peer: hold traffic (bounded) until the link heals, and
    // make sure a probe cycle is watching for it.
    if (p.pending.size() >= params_.tx_queue_limit) {
      ++stats_.dropped_queue_full;
      return;
    }
    p.pending.push_back(std::move(pkt));
    if (!p.probe_timer.armed()) {
      p.probe_rounds = 0;  // fresh interest in the peer: new probe budget
      p.probe_timer.start(params_.probe_interval);
    }
    return;
  }
  if (p.inflight.size() >= params_.window) {
    if (p.pending.size() >= params_.tx_queue_limit) {
      ++stats_.dropped_queue_full;
      return;
    }
    p.pending.push_back(std::move(pkt));
    return;
  }
  send_data_frame(p, pkt);
}

void RllLayer::send_data_frame(PeerState& p, const net::Packet& raw) {
  // Encapsulate with a fresh sequence and a piggybacked cumulative ack.
  u8 flags = rll_flags::kAckValid;
  if (p.announce_reset) {
    flags |= rll_flags::kReset;
    p.announce_reset = false;
  }
  net::Packet data = encapsulate(raw, p.next_seq, ack_value(p), flags);
  // Karn's rule: only a frame transmitted exactly once may produce an RTT
  // sample; arm the measurement on the first untimed fresh transmission.
  if (!p.sample_armed) {
    p.sample_armed = true;
    p.sample_seq = p.next_seq;
    p.sample_sent = sim_.now();
  }
  ++p.next_seq;
  // wire_copy, not clone: the ARQ buffer holds the *same* transmission, so
  // a later retransmission's clone() parents on the original tx span
  // instead of on a phantom never-transmitted span.
  p.inflight.push_back(data.wire_copy());
  ++stats_.data_tx;
  if (params_.piggyback) {
    // The piggybacked ack supersedes any pending standalone one.
    p.unacked_rx = 0;
    p.ack_timer.cancel();
  }
  if (!p.rto_timer.armed()) p.rto_timer.start(rto_for(p));
  pass_down(std::move(data));
}

void RllLayer::transmit_window(PeerState& p) {
  if (p.link == LinkState::kDown) return;
  while (p.inflight.size() < params_.window && !p.pending.empty()) {
    net::Packet raw = std::move(p.pending.front());
    p.pending.pop_front();
    send_data_frame(p, raw);
  }
}

void RllLayer::handle_ack(PeerState& p, u32 ack, bool standalone) {
  bool advanced = false;
  while (!p.inflight.empty() && seq_less(p.send_una, ack)) {
    p.inflight.pop_front();
    ++p.send_una;
    advanced = true;
  }
  if (!advanced) {
    // Only standalone acks are credible duplicate signals: piggybacked acks
    // on reverse data repeat the ack value as a matter of course.
    if (standalone && params_.fast_retx_dupacks > 0 && !p.inflight.empty() &&
        ack == p.send_una) {
      if (++p.dup_acks >= params_.fast_retx_dupacks) {
        p.dup_acks = 0;
        p.sample_armed = false;  // Karn: the resent frame must not be timed
        ++stats_.retransmits;
        ++stats_.fast_retransmits;
        net::Packet resend = p.inflight.front().clone();
        if (obs::FlightRecorder* f = flight()) {
          // The clone's parent span is the original transmission, so the
          // timeline chains the recovery to the frame it resurrects.
          f->record(sim_.now().ns, resend.span(), resend.parent_span(),
                    obs::SpanEventKind::kRllRetx, 0xffff, 1 /* fast */);
        }
        pass_down(std::move(resend));
      }
    }
    return;
  }
  p.dup_acks = 0;
  p.retry_rounds = 0;
  if (p.sample_armed && seq_less(p.sample_seq, ack)) {
    take_rtt_sample(p, sim_.now() - p.sample_sent);
    p.sample_armed = false;
  }
  if (p.inflight.empty()) {
    p.rto_timer.cancel();
  } else {
    p.rto_timer.start(rto_for(p));
  }
  transmit_window(p);
}

void RllLayer::on_rto(PeerState& p) {
  if (p.inflight.empty()) return;
  if (++p.retry_rounds > params_.max_retry_rounds) {
    link_down(p);
    return;
  }
  // Karn's rule: anything acked from here on may be a retransmission echo,
  // so the armed sample (if any) is void.
  p.sample_armed = false;
  p.dup_acks = 0;
  // Go-back-N: resend everything outstanding.
  stats_.retransmits += p.inflight.size();
  for (const net::Packet& frame : p.inflight) {
    net::Packet resend = frame.clone();
    if (obs::FlightRecorder* f = flight()) {
      f->record(sim_.now().ns, resend.span(), resend.parent_span(),
                obs::SpanEventKind::kRllRetx, 0xffff, 0 /* rto */);
    }
    pass_down(std::move(resend));
  }
  p.rto_timer.start(rto_for(p));  // backed off by retry_rounds, capped
}

void RllLayer::link_down(PeerState& p) {
  // Peer is unreachable (crashed, FAIL'ed, or partitioned): quarantine it
  // so the rest of the testbed can make progress.  Sequence counters
  // advance as if acked so the peer resynchronizes when it returns.
  ++stats_.peers_aborted;
  stats_.down_purged += p.inflight.size() + p.pending.size();
  p.link = LinkState::kDown;
  p.send_una = p.next_seq;
  p.inflight.clear();
  p.pending.clear();
  p.retry_rounds = 0;
  p.dup_acks = 0;
  p.sample_armed = false;
  p.srtt_valid = false;  // the healed link may have different latency
  p.announce_reset = true;  // realign the peer when it comes back
  p.rto_timer.cancel();
  p.probe_rounds = 0;
  p.probe_timer.start(params_.probe_interval);
  VWIRE_DEBUG() << "rll: peer quarantined (link-down)";
  if (link_listener_) link_listener_(p.peer_mac, false);
}

void RllLayer::link_up(PeerState& p) {
  ++stats_.peers_recovered;
  p.link = LinkState::kUp;
  p.probe_timer.cancel();
  p.probe_rounds = 0;
  p.retry_rounds = 0;
  p.dup_acks = 0;
  VWIRE_DEBUG() << "rll: quarantined peer healed (link-up)";
  if (link_listener_) link_listener_(p.peer_mac, true);
  transmit_window(p);  // flush traffic queued while down (kReset leads)
}

void RllLayer::on_probe_timer(PeerState& p) {
  if (p.link != LinkState::kDown) return;
  if (p.probe_rounds >= params_.max_probe_rounds) return;  // budget spent
  ++p.probe_rounds;
  ++stats_.probes_tx;
  pass_down(make_probe(p.peer_mac, node_->mac(), p.recv_next));
  // Back off: probe_interval doubled per round, capped at max_rto.
  Duration next = params_.probe_interval;
  for (u32 i = 0; i < p.probe_rounds && next < params_.max_rto; ++i) {
    next = next * 2;
  }
  p.probe_timer.start(std::min(next, params_.max_rto));
}

void RllLayer::send_standalone_ack(PeerState& p) {
  ++stats_.acks_tx;
  p.unacked_rx = 0;
  p.ack_timer.cancel();
  pass_down(make_ack(p.peer_mac, node_->mac(), p.recv_next));
}

void RllLayer::corrupt_recv_window(u32 frames) {
  if (frames == 0) return;
  for (auto& [mac, p] : peers_) {
    // Sequence space starts at 1; only cursors with delivery history can
    // regress (recv_next - 1 frames have been handed upward).
    const u32 delivered = p->recv_next - 1;
    const u32 back = std::min(frames, delivered);
    p->recv_next -= back;
  }
}

void RllLayer::audit_delivery(PeerState& p, u32 seq) {
  if (p.audit_any && !seq_less(p.audit_last, seq)) ++stats_.deliver_misorder;
  p.audit_any = true;
  p.audit_last = seq;
}

void RllLayer::receive_up(net::Packet pkt) {
  if (pkt.ethertype() != static_cast<u16>(net::EtherType::kRll)) {
    pass_up(std::move(pkt));  // unencapsulated (e.g. broadcast passthrough)
    return;
  }
  auto eth = pkt.ethernet();
  auto h = RllHeader::read(pkt.view(), RllHeader::kOffset);
  if (!eth || !h) return;  // malformed; a real NIC would have FCS-dropped it
  PeerState& p = peer(eth->src);

  // Hearing anything from a quarantined peer means the link healed.
  if (p.link == LinkState::kDown) link_up(p);

  if (h->flags & rll_flags::kAckValid) {
    handle_ack(p, h->ack, h->type == RllType::kAck);
  }
  if (h->type == RllType::kAck) {
    ++stats_.acks_rx;
    return;
  }
  if (h->type == RllType::kProbe) {
    // Answer immediately: the ack is what tells the prober we are back.
    ++stats_.probes_rx;
    send_standalone_ack(p);
    return;
  }

  ++stats_.data_rx;
  if (h->flags & rll_flags::kReset) {
    // Sender started a new epoch (it gave up on us while we were down).
    // Only realign forward: a stale kReset frame delayed by jitter must not
    // rewind recv_next, or already-delivered frames would repeat.
    if (!seq_less(h->seq, p.recv_next)) {
      p.recv_next = h->seq;
      p.reorder.clear();
    }
  }
  if (seq_less(h->seq, p.recv_next)) {
    // Duplicate of something we already delivered: our ack was lost, so
    // re-ack immediately to stop the retransmissions.
    ++stats_.duplicates_rx;
    if (obs::FlightRecorder* f = flight()) {
      f->record(sim_.now().ns, pkt.span(), pkt.parent_span(),
                obs::SpanEventKind::kRllDupRx, 0xffff, 0,
                static_cast<i64>(h->seq));
    }
    send_standalone_ack(p);
    return;
  }
  if (h->seq != p.recv_next) {
    ++stats_.out_of_order_rx;
    p.reorder.emplace(h->seq, std::move(pkt));
    // Duplicate-ack the gap immediately so the sender's fast retransmit
    // can fire without waiting out a full RTO.
    send_standalone_ack(p);
    return;
  }

  // In-order: deliver, then drain any buffered successors.
  auto deliver = [this, &p](const net::Packet& data, u32 seq) {
    if (auto restored = decapsulate(data)) {
      audit_delivery(p, seq);
      ++stats_.delivered;
      ++p.unacked_rx;
      pass_up(std::move(*restored));
    }
    if (test_dup_deliver_) {
      // Planted fault: hand the same frame up a second time.  The audit
      // sees the repeated sequence and counts the violation.
      if (auto again = decapsulate(data)) {
        audit_delivery(p, seq);
        ++stats_.delivered;
        pass_up(std::move(*again));
      }
    }
  };
  deliver(pkt, p.recv_next);
  ++p.recv_next;
  for (auto it = p.reorder.find(p.recv_next); it != p.reorder.end();
       it = p.reorder.find(p.recv_next)) {
    deliver(it->second, p.recv_next);
    p.reorder.erase(it);
    ++p.recv_next;
  }

  if (p.unacked_rx >= params_.ack_every) {
    send_standalone_ack(p);
  } else if (!p.ack_timer.armed()) {
    p.ack_timer.start(params_.delayed_ack);
  }
}

}  // namespace vwire::rll
