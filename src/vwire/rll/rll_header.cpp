#include "vwire/rll/rll_header.hpp"

#include <algorithm>

namespace vwire::rll {

void RllHeader::write(BytesSpan out, std::size_t off) const {
  write_u8(out, off + 0, static_cast<u8>(type));
  write_u8(out, off + 1, flags);
  write_u16(out, off + 2, orig_ethertype);
  write_u32(out, off + 4, seq);
  write_u32(out, off + 8, ack);
}

std::optional<RllHeader> RllHeader::read(BytesView in, std::size_t off) {
  if (in.size() < off + kSize) return std::nullopt;
  RllHeader h;
  u8 t = read_u8(in, off + 0);
  if (t != static_cast<u8>(RllType::kData) &&
      t != static_cast<u8>(RllType::kAck) &&
      t != static_cast<u8>(RllType::kProbe)) {
    return std::nullopt;
  }
  h.type = static_cast<RllType>(t);
  h.flags = read_u8(in, off + 1);
  h.orig_ethertype = read_u16(in, off + 2);
  h.seq = read_u32(in, off + 4);
  h.ack = read_u32(in, off + 8);
  return h;
}

bool seq_less(u32 a, u32 b) {
  return a != b && (b - a) < 0x80000000u;
}

net::Packet encapsulate(const net::Packet& frame, u32 seq, u32 ack, u8 flags) {
  const Bytes& in = frame.bytes();
  Bytes out(in.size() + RllHeader::kSize);
  // MAC addresses stay; ethertype becomes kRll.
  std::copy_n(in.begin(), 12, out.begin());
  write_u16(out, 12, static_cast<u16>(net::EtherType::kRll));
  RllHeader h;
  h.type = RllType::kData;
  h.flags = flags;
  h.orig_ethertype = net::frame_ethertype(in);
  h.seq = seq;
  h.ack = ack;
  h.write(out, RllHeader::kOffset);
  std::copy(in.begin() + net::EthernetHeader::kSize, in.end(),
            out.begin() + net::EthernetHeader::kSize + RllHeader::kSize);
  net::Packet pkt(std::move(out));
  pkt.created_at = frame.created_at;
  pkt.derive_from(frame);  // causal link: same intent, new bytes
  return pkt;
}

std::optional<net::Packet> decapsulate(const net::Packet& pkt) {
  auto h = RllHeader::read(pkt.view(), RllHeader::kOffset);
  if (!h || h->type != RllType::kData) return std::nullopt;
  const Bytes& in = pkt.bytes();
  Bytes out(in.size() - RllHeader::kSize);
  std::copy_n(in.begin(), 12, out.begin());
  write_u16(out, 12, h->orig_ethertype);
  std::copy(in.begin() + net::EthernetHeader::kSize + RllHeader::kSize,
            in.end(), out.begin() + net::EthernetHeader::kSize);
  net::Packet restored(std::move(out));
  restored.created_at = pkt.created_at;
  restored.derive_from(pkt);  // causal link back to the wire frame
  return restored;
}

net::Packet make_ack(const net::MacAddress& dst, const net::MacAddress& src,
                     u32 ack) {
  Bytes out(net::EthernetHeader::kSize + RllHeader::kSize);
  net::EthernetHeader{dst, src, static_cast<u16>(net::EtherType::kRll)}.write(
      out);
  RllHeader h;
  h.type = RllType::kAck;
  h.flags = rll_flags::kAckValid;
  h.ack = ack;
  h.write(out, RllHeader::kOffset);
  return net::Packet(std::move(out));
}

net::Packet make_probe(const net::MacAddress& dst, const net::MacAddress& src,
                       u32 ack) {
  Bytes out(net::EthernetHeader::kSize + RllHeader::kSize);
  net::EthernetHeader{dst, src, static_cast<u16>(net::EtherType::kRll)}.write(
      out);
  RllHeader h;
  h.type = RllType::kProbe;
  h.flags = rll_flags::kAckValid;
  h.ack = ack;
  h.write(out, RllHeader::kOffset);
  return net::Packet(std::move(out));
}

}  // namespace vwire::rll
