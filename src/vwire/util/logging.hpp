// Minimal leveled logger.
//
// The engines log rule firings and fault injections at Debug; examples turn
// this up to show the FIE/FAE at work, tests and benches keep it at Warn so
// output stays parseable.  A single global sink keeps hot paths to one
// branch when logging is off.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace vwire {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are dropped before formatting.
LogLevel log_level();
void set_log_level(LogLevel lvl);

/// Replaces the sink (default: stderr).  Used by tests to capture output.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);
void reset_log_sink();

void log_message(LogLevel lvl, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { log_message(lvl_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};

}  // namespace detail

#define VWIRE_LOG(lvl)                                   \
  if (::vwire::log_level() <= (lvl)) ::vwire::detail::LogLine(lvl)
#define VWIRE_TRACE() VWIRE_LOG(::vwire::LogLevel::kTrace)
#define VWIRE_DEBUG() VWIRE_LOG(::vwire::LogLevel::kDebug)
#define VWIRE_INFO() VWIRE_LOG(::vwire::LogLevel::kInfo)
#define VWIRE_WARN() VWIRE_LOG(::vwire::LogLevel::kWarn)
#define VWIRE_ERROR() VWIRE_LOG(::vwire::LogLevel::kError)

}  // namespace vwire
