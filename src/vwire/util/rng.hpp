// Deterministic random number generation.
//
// Every stochastic component (bit-error model, MODIFY's random byte
// perturbation, workload generators) draws from its own seeded Rng so that
// a scenario replays identically given the same seeds — the property the
// paper calls a "truly controlled environment" (§3.3).
//
// The generator is xoshiro256**, seeded through SplitMix64 per Blackman &
// Vigna's recommendation.
#pragma once

#include <string_view>

#include "vwire/util/types.hpp"

namespace vwire {

/// SplitMix64 step; used standalone for hashing and for seeding.
u64 splitmix64(u64& state);

/// Stateless 64-bit finalizer (one SplitMix64 step) for hash functors that
/// need avalanche behaviour over a packed key.
u64 mix64(u64 v);

/// Named child-stream derivation: a deterministic seed for the stream
/// `label[index]` under `parent`.  Every module that needs its own RNG
/// stream derives it through here — the (label, index) pair is a node in
/// the seed-derivation tree (DESIGN.md §8), so reordering one module's
/// draws, or adding a new stream, can never shift another module's stream.
/// Distinct labels and distinct indices give independent streams.
u64 derive_seed(u64 parent, std::string_view label, u64 index = 0);

class Rng {
 public:
  explicit Rng(u64 seed);

  /// Uniform over the full 64-bit range.
  u64 next();

  /// Uniform in [0, bound) with rejection to avoid modulo bias.
  u64 below(u64 bound);

  /// Uniform in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Bernoulli trial.
  bool chance(double p);

  /// A fresh generator whose stream is independent of this one.
  Rng fork();

  /// A generator on the named child stream of `parent` (derive_seed).
  static Rng derive(u64 parent, std::string_view label, u64 index = 0);

 private:
  u64 s_[4];
};

}  // namespace vwire
