#include "vwire/util/rng.hpp"

namespace vwire {

u64 splitmix64(u64& state) {
  u64 z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

u64 mix64(u64 v) { return splitmix64(v); }

u64 derive_seed(u64 parent, std::string_view label, u64 index) {
  // Absorb the label byte by byte, then the index, each through a full
  // SplitMix64 step, so "a"/"b" and ("x",1)/("x",2) land in unrelated
  // streams and a long common prefix still avalanches.
  u64 h = parent;
  for (unsigned char c : label) {
    u64 s = h + c;
    h = splitmix64(s);
  }
  u64 s = h ^ index;
  return splitmix64(s);
}

namespace {

inline u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(u64 seed) {
  u64 sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::below(u64 bound) {
  if (bound <= 1) return 0;
  // Rejection sampling: discard the biased tail of the 64-bit range.
  const u64 threshold = (0 - bound) % bound;
  for (;;) {
    u64 r = next();
    if (r >= threshold) return r % bound;
  }
}

i64 Rng::range(i64 lo, i64 hi) {
  return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1)));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() { return Rng(next()); }

Rng Rng::derive(u64 parent, std::string_view label, u64 index) {
  return Rng(derive_seed(parent, label, index));
}

}  // namespace vwire
