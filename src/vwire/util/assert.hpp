// Invariant checking that is always on.  Simulation correctness depends on
// internal invariants (event ordering, sequence-number accounting); silently
// corrupting them in release builds would produce wrong experiment results,
// so violations abort with a location message in every build type.
#pragma once

#include <cstdio>
#include <cstdlib>

#define VWIRE_ASSERT(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "VWIRE_ASSERT failed at %s:%d: %s — %s\n",    \
                   __FILE__, __LINE__, #cond, msg);                      \
      std::abort();                                                      \
    }                                                                    \
  } while (0)
