#include "vwire/util/hex.hpp"

#include <cctype>

namespace vwire {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<u64> parse_hex(std::string_view s) {
  if (s.starts_with("0x") || s.starts_with("0X")) {
    s.remove_prefix(2);
  }
  if (s.empty() || s.size() > 16) return std::nullopt;
  u64 v = 0;
  for (char c : s) {
    int d = hex_digit(c);
    if (d < 0) return std::nullopt;
    v = (v << 4) | static_cast<u64>(d);
  }
  return v;
}

std::optional<u64> parse_dec(std::string_view s) {
  if (s.empty()) return std::nullopt;
  u64 v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    u64 next = v * 10 + static_cast<u64>(c - '0');
    if (next < v) return std::nullopt;  // overflow
    v = next;
  }
  return v;
}

std::string to_hex(u64 v, int width) {
  static const char* digits = "0123456789abcdef";
  std::string body;
  do {
    body.push_back(digits[v & 0xf]);
    v >>= 4;
  } while (v != 0);
  while (static_cast<int>(body.size()) < width) body.push_back('0');
  std::string out = "0x";
  out.append(body.rbegin(), body.rend());
  return out;
}

std::string hex_bytes(BytesView b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 3);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i) out.push_back(' ');
    out.push_back(digits[b[i] >> 4]);
    out.push_back(digits[b[i] & 0xf]);
  }
  return out;
}

std::string hexdump(BytesView b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t off = 0; off < b.size(); off += 16) {
    out += to_hex(off, 4).substr(2);
    out += "  ";
    std::string ascii;
    for (std::size_t i = 0; i < 16; ++i) {
      if (off + i < b.size()) {
        u8 c = b[off + i];
        out.push_back(digits[c >> 4]);
        out.push_back(digits[c & 0xf]);
        out.push_back(' ');
        ascii.push_back(std::isprint(c) ? static_cast<char>(c) : '.');
      } else {
        out += "   ";
      }
    }
    out += " |" + ascii + "|\n";
  }
  return out;
}

}  // namespace vwire
