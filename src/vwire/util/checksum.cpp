#include "vwire/util/checksum.hpp"

#include <array>

namespace vwire {

u32 checksum_partial(BytesView data, u32 acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<u32>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    acc += static_cast<u32>(data[i] << 8);
  }
  return acc;
}

u16 checksum_finish(u32 acc) {
  while (acc >> 16) {
    acc = (acc & 0xffff) + (acc >> 16);
  }
  return static_cast<u16>(~acc & 0xffff);
}

u16 internet_checksum(BytesView data, u32 seed) {
  return checksum_finish(checksum_partial(data, seed));
}

namespace {

std::array<u32, 256> make_crc_table() {
  std::array<u32, 256> t{};
  for (u32 n = 0; n < 256; ++n) {
    u32 c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[n] = c;
  }
  return t;
}

}  // namespace

u32 crc32(BytesView data) {
  static const std::array<u32, 256> table = make_crc_table();
  u32 c = 0xffffffffu;
  for (u8 b : data) {
    c = table[(c ^ b) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace vwire
