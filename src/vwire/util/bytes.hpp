// Big-endian (network order) byte-buffer readers and writers.
//
// All wire formats in VirtualWire — Ethernet, IPv4, TCP, UDP, the RLL header,
// the control-plane messages, and the Rether frames — are serialized through
// these helpers so endianness handling lives in exactly one place.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "vwire/util/types.hpp"

namespace vwire {

using Bytes = std::vector<u8>;
using BytesView = std::span<const u8>;
using BytesSpan = std::span<u8>;

/// Reads big-endian scalars out of a fixed buffer.  Bounds are the caller's
/// responsibility (checked by VWIRE_ASSERT in debug-critical paths).
u8 read_u8(BytesView b, std::size_t off);
u16 read_u16(BytesView b, std::size_t off);
u32 read_u32(BytesView b, std::size_t off);
u64 read_u64(BytesView b, std::size_t off);

void write_u8(BytesSpan b, std::size_t off, u8 v);
void write_u16(BytesSpan b, std::size_t off, u16 v);
void write_u32(BytesSpan b, std::size_t off, u32 v);
void write_u64(BytesSpan b, std::size_t off, u64 v);

/// Append-style writer used by the control-plane codec.
class ByteWriter {
 public:
  void u8v(u8 v) { buf_.push_back(v); }
  void u16v(u16 v);
  void u32v(u32 v);
  void u64v(u64 v);
  void raw(BytesView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }
  void str(const std::string& s);  ///< u16 length prefix + bytes

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Cursor-style reader matching ByteWriter.  Throws std::out_of_range on
/// truncated input — control messages come off the (simulated) wire and a
/// malformed one must not crash the engine.
class ByteReader {
 public:
  explicit ByteReader(BytesView b) : buf_(b) {}

  u8 u8v();
  u16 u16v();
  u32 u32v();
  u64 u64v();
  Bytes raw(std::size_t n);
  std::string str();

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool done() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n) const;
  BytesView buf_;
  std::size_t pos_{0};
};

}  // namespace vwire
