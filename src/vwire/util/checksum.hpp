// Checksums used on the simulated wire.
//
//  * internet_checksum — RFC 1071 ones-complement sum for IPv4/TCP/UDP
//    headers.  The MODIFY fault primitive deliberately produces frames whose
//    checksum no longer matches, and the receiving stack must detect that,
//    so these are computed and verified for real.
//  * crc32 — IEEE 802.3 FCS polynomial, used by the PHY bit-error model to
//    decide whether a corrupted frame would have been discarded by a real
//    NIC (which is what makes the Reliable Link Layer necessary).
#pragma once

#include "vwire/util/bytes.hpp"

namespace vwire {

/// RFC 1071 internet checksum over `data`, with an optional seed for
/// pseudo-header folding.  Returns the final complemented 16-bit value.
u16 internet_checksum(BytesView data, u32 seed = 0);

/// Partial (uncomplemented) sum, for composing pseudo-header + payload.
u32 checksum_partial(BytesView data, u32 acc = 0);

/// Folds a 32-bit partial sum and complements it.
u16 checksum_finish(u32 acc);

/// IEEE 802.3 CRC-32 (reflected, poly 0xEDB88320).
u32 crc32(BytesView data);

}  // namespace vwire
