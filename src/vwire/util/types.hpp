// Fundamental scalar and time types shared by every VirtualWire module.
//
// Simulated time is a signed 64-bit count of nanoseconds since the start of
// the simulation.  Using a strong typedef (rather than std::chrono) keeps the
// hot-path arithmetic trivial while the helper constructors below keep call
// sites readable (`millis(10)`, `micros(50)`).
#pragma once

#include <cstdint>
#include <compare>

namespace vwire {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// A span of simulated time, in nanoseconds.
struct Duration {
  i64 ns{0};

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return {ns + o.ns}; }
  constexpr Duration operator-(Duration o) const { return {ns - o.ns}; }
  constexpr Duration operator*(i64 k) const { return {ns * k}; }
  constexpr Duration operator/(i64 k) const { return {ns / k}; }
  constexpr Duration& operator+=(Duration o) { ns += o.ns; return *this; }
  constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
  constexpr double millis_f() const { return static_cast<double>(ns) * 1e-6; }
  constexpr double micros_f() const { return static_cast<double>(ns) * 1e-3; }
};

/// An instant of simulated time (nanoseconds since simulation start).
struct TimePoint {
  i64 ns{0};

  constexpr auto operator<=>(const TimePoint&) const = default;
  constexpr TimePoint operator+(Duration d) const { return {ns + d.ns}; }
  constexpr Duration operator-(TimePoint o) const { return {ns - o.ns}; }
  constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
};

constexpr Duration nanos(i64 v) { return {v}; }
constexpr Duration micros(i64 v) { return {v * 1'000}; }
constexpr Duration millis(i64 v) { return {v * 1'000'000}; }
constexpr Duration seconds(i64 v) { return {v * 1'000'000'000}; }
constexpr Duration seconds_f(double v) {
  return {static_cast<i64>(v * 1e9)};
}

}  // namespace vwire
