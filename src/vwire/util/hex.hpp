// Hex parsing and formatting.
//
// FSL filter tuples carry patterns and masks as hex literals ("0x6000");
// trace summaries and diagnostics print byte ranges as hex.  Parsing is
// strict — the FSL compiler reports bad literals with source locations.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "vwire/util/bytes.hpp"

namespace vwire {

/// Parses "0x..." or bare hex digits into a value; nullopt on any bad char
/// or overflow past 64 bits.
std::optional<u64> parse_hex(std::string_view s);

/// Parses a decimal unsigned integer; nullopt on bad char/overflow.
std::optional<u64> parse_dec(std::string_view s);

/// Formats `v` as a 0x-prefixed, zero-padded hex string of `width` nibbles
/// (width 0 = minimal).
std::string to_hex(u64 v, int width = 0);

/// Hex string of a byte range, e.g. "de ad be ef".
std::string hex_bytes(BytesView b);

/// Classic 16-bytes-per-line hexdump with offsets, for trace debugging.
std::string hexdump(BytesView b);

}  // namespace vwire
