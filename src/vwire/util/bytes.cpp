#include "vwire/util/bytes.hpp"

#include <stdexcept>

#include "vwire/util/assert.hpp"

namespace vwire {

u8 read_u8(BytesView b, std::size_t off) {
  VWIRE_ASSERT(off + 1 <= b.size(), "read_u8 out of range");
  return b[off];
}

u16 read_u16(BytesView b, std::size_t off) {
  VWIRE_ASSERT(off + 2 <= b.size(), "read_u16 out of range");
  return static_cast<u16>((b[off] << 8) | b[off + 1]);
}

u32 read_u32(BytesView b, std::size_t off) {
  VWIRE_ASSERT(off + 4 <= b.size(), "read_u32 out of range");
  return (static_cast<u32>(b[off]) << 24) | (static_cast<u32>(b[off + 1]) << 16) |
         (static_cast<u32>(b[off + 2]) << 8) | static_cast<u32>(b[off + 3]);
}

u64 read_u64(BytesView b, std::size_t off) {
  u64 hi = read_u32(b, off);
  u64 lo = read_u32(b, off + 4);
  return (hi << 32) | lo;
}

void write_u8(BytesSpan b, std::size_t off, u8 v) {
  VWIRE_ASSERT(off + 1 <= b.size(), "write_u8 out of range");
  b[off] = v;
}

void write_u16(BytesSpan b, std::size_t off, u16 v) {
  VWIRE_ASSERT(off + 2 <= b.size(), "write_u16 out of range");
  b[off] = static_cast<u8>(v >> 8);
  b[off + 1] = static_cast<u8>(v);
}

void write_u32(BytesSpan b, std::size_t off, u32 v) {
  VWIRE_ASSERT(off + 4 <= b.size(), "write_u32 out of range");
  b[off] = static_cast<u8>(v >> 24);
  b[off + 1] = static_cast<u8>(v >> 16);
  b[off + 2] = static_cast<u8>(v >> 8);
  b[off + 3] = static_cast<u8>(v);
}

void write_u64(BytesSpan b, std::size_t off, u64 v) {
  write_u32(b, off, static_cast<u32>(v >> 32));
  write_u32(b, off + 4, static_cast<u32>(v));
}

void ByteWriter::u16v(u16 v) {
  buf_.push_back(static_cast<u8>(v >> 8));
  buf_.push_back(static_cast<u8>(v));
}

void ByteWriter::u32v(u32 v) {
  u16v(static_cast<u16>(v >> 16));
  u16v(static_cast<u16>(v));
}

void ByteWriter::u64v(u64 v) {
  u32v(static_cast<u32>(v >> 32));
  u32v(static_cast<u32>(v));
}

void ByteWriter::str(const std::string& s) {
  VWIRE_ASSERT(s.size() <= 0xffff, "string too long for wire format");
  u16v(static_cast<u16>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > buf_.size()) {
    throw std::out_of_range("ByteReader: truncated message");
  }
}

u8 ByteReader::u8v() {
  need(1);
  return buf_[pos_++];
}

u16 ByteReader::u16v() {
  need(2);
  u16 v = static_cast<u16>((buf_[pos_] << 8) | buf_[pos_ + 1]);
  pos_ += 2;
  return v;
}

u32 ByteReader::u32v() {
  u32 hi = u16v();
  u32 lo = u16v();
  return (hi << 16) | lo;
}

u64 ByteReader::u64v() {
  u64 hi = u32v();
  u64 lo = u32v();
  return (hi << 32) | lo;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  u16 n = u16v();
  need(n);
  std::string out(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return out;
}

}  // namespace vwire
