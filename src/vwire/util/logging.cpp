#include "vwire/util/logging.hpp"

#include <cstdio>

namespace vwire {

namespace {

LogLevel g_level = LogLevel::kWarn;
LogSink g_sink;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lvl) { g_level = lvl; }

void set_log_sink(LogSink sink) { g_sink = std::move(sink); }
void reset_log_sink() { g_sink = nullptr; }

void log_message(LogLevel lvl, const std::string& msg) {
  if (lvl < g_level) return;
  if (g_sink) {
    g_sink(lvl, msg);
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
  }
}

}  // namespace vwire
