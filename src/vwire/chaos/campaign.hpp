// Chaos campaign engine (DESIGN.md §8): randomized fault-schedule
// exploration with cross-layer invariant checking, deterministic replay,
// and failing-schedule minimization.
//
// A campaign is N independent trials over one fixture.  Trial i's fault
// schedule, medium seed and workload are all derived from the single
// campaign seed through util/rng's named child streams, and every trial
// runs in a freshly-built Testbed — so any trial replays bit-identically
// from (campaign_seed, trial_index) alone, verified byte-for-byte against
// the run's telemetry JSONL.  When a trial violates an invariant, ddmin
// shrinks its schedule to a minimal still-failing event set and the result
// is packaged as a self-contained repro artifact.
#pragma once

#include <atomic>

#include "vwire/chaos/fixtures.hpp"
#include "vwire/obs/flight.hpp"

namespace vwire::chaos {

struct TrialResult {
  u64 trial_index{0};
  FaultSchedule schedule;
  bool ran{false};             ///< the scenario armed and supervised
  bool scenario_passed{false}; ///< ScenarioResult::passed() (informational)
  u64 effective_seed{0};
  std::vector<Violation> violations;
  /// Per-trial provenance rollup (from the scenario result).
  u64 firings{0};
  u64 link_events{0};
  /// The run's full telemetry report (JSONL text) — the replay-comparison
  /// artifact.  Campaign::run() drops it unless keep_telemetry is set.
  std::string telemetry;
  /// Causal flight-recorder timeline (merged across nodes), captured only
  /// when the trial violated an invariant — the "what led up to it" record
  /// that ships inside the repro artifact.
  std::vector<obs::SpanEvent> timeline;
  /// Span events the recorders evicted before the snapshot (ring overflow).
  u64 timeline_dropped{0};

  bool ok() const { return ran && violations.empty(); }
};

struct CampaignConfig {
  std::string fixture{"fig7"};
  u64 seed{1};
  std::size_t trials{25};
  /// Worker threads; 1 = serial.  Results are identical either way (each
  /// trial is self-contained), only wall-clock changes.
  std::size_t workers{1};
  /// Retain each TrialResult::telemetry in the summary (memory-heavy).
  bool keep_telemetry{false};
  /// Run ddmin on the first failing trial and attach a repro artifact.
  bool minimize{true};
  /// Stop launching new trials after the first violation.
  bool stop_on_violation{false};
  /// Let the generator draw Byzantine soft-state corruptions (kStateFault)
  /// from the fixture's state_fault_kinds().  Off by default so existing
  /// campaigns keep their draw sequences bit-identical.
  bool state_faults{false};
  /// Post-run drain budget for the packet-conservation check.
  Duration drain_grace{millis(200)};
  /// Invariant-probe period during supervision.
  Duration probe_period{millis(5)};

  // --- long-running-service robustness (DESIGN.md §11) -------------------

  /// Per-trial wall-clock watchdog, in real milliseconds (0 = off).  A
  /// trial that exceeds the deadline is aborted cooperatively (between
  /// supervision ticks) and quarantined as a structured "trial-timeout"
  /// violation instead of wedging its worker forever.  The same deadline
  /// bounds every ddmin probe run, so minimization of a hung trial stays
  /// bounded too.
  i64 trial_timeout_ms{0};
  /// Transient-infrastructure retry: a trial that *throws* (as opposed to
  /// violating an invariant) is re-run up to this many extra times, with
  /// retry_backoff_ms, 2x, 4x… waits between attempts, before the
  /// exception is recorded as a "trial-exception" violation.  Determinism
  /// makes retry safe: a deterministic throw simply re-throws and the
  /// budget bounds the waste.
  u32 trial_retries{0};
  i64 retry_backoff_ms{50};
  /// Wall-clock budget for ddmin minimization (0 = unbounded).  When the
  /// budget runs out mid-search the best (smallest) still-failing
  /// schedule found so far is returned.
  i64 minimize_budget_ms{0};
  /// Lifecycle hook: invoked as each trial completes, serialized under an
  /// internal mutex (so the callee may append to a journal or update
  /// progress counters without its own locking).  Called before the
  /// summary drops telemetry, with the trial's full result.
  std::function<void(const TrialResult&)> on_trial;
  /// Cooperative cancellation (graceful drain): when set and it becomes
  /// true, workers finish their in-flight trial and stop claiming new
  /// ones.  Combined with `on_trial` journaling, a cancelled campaign
  /// resumes later via run_from() with nothing lost and nothing re-run.
  const std::atomic<bool>* cancel{nullptr};
};

/// Self-contained failing-trial package: enough to reproduce the violation
/// anywhere (schedule carries its own seed provenance) plus the generated
/// FSL for human inspection.
struct ReproArtifact {
  std::string fixture;
  FaultSchedule schedule;           ///< minimized (or original) schedule
  std::size_t original_events{0};   ///< event count before minimization
  std::vector<Violation> violations;
  std::string fsl;                  ///< FSL rules the schedule generates
  /// Flight-recorder causal timeline from the (minimized, if available)
  /// failing run — render with `vwire-trace`.
  std::vector<obs::SpanEvent> timeline;
  u64 timeline_dropped{0};          ///< ring evictions before the snapshot

  std::string to_json() const;
  static ReproArtifact from_json(std::string_view text);  // throws
  /// Same loader over an already-parsed value (e.g. the "repro" member of
  /// a campaign summary document).
  static ReproArtifact from_value(const obs::JsonValue& v);  // throws
};

struct CampaignSummary {
  std::string fixture;
  u64 seed{0};
  std::size_t trials_requested{0};
  std::size_t trials_run{0};
  std::vector<u64> failing_trials;
  u64 total_firings{0};
  u64 total_link_events{0};
  std::vector<TrialResult> results;  ///< indexed by trial order
  /// Present when a trial failed and minimization ran.
  std::optional<ReproArtifact> repro;

  bool ok() const { return failing_trials.empty(); }
  /// Campaign summary export: per-trial provenance (schedule sizes,
  /// violations, firing counts) under a versioned "chaos_campaign" schema.
  std::string to_json() const;
  std::string summary_line() const;
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig cfg);

  /// Runs the whole campaign (serially or on cfg.workers threads).
  CampaignSummary run();

  /// Resume: like run(), but trials present in `completed` (matched by
  /// trial_index) are taken as-is instead of re-executed.  Because every
  /// trial is a pure function of (seed, trial_index), the merged summary
  /// is byte-identical to an uninterrupted run's — this is what makes a
  /// checkpoint journal (chaos/checkpoint.hpp) sufficient to survive a
  /// crash or a graceful drain.  Entries with out-of-range indices are
  /// ignored.
  CampaignSummary run_from(std::vector<TrialResult> completed);

  /// One trial, from scratch, deterministically: generates the schedule
  /// for (cfg.seed, index) and executes it in a fresh harness.  Calling
  /// this twice with the same index yields byte-identical telemetry.
  TrialResult run_trial(u64 index) const;

  /// The deterministic schedule trial `index` would run — regeneration is
  /// cheap (RNG draws only), which is how checkpoint resume rebuilds the
  /// schedules of journaled trials without re-executing them.
  FaultSchedule schedule_for(u64 index) const;

  /// Executes an explicit schedule (a ddmin candidate or a loaded repro)
  /// under the schedule's own seed provenance.
  TrialResult run_schedule(const FaultSchedule& schedule) const;

  const CampaignConfig& config() const { return cfg_; }

 private:
  CampaignConfig cfg_;
};

/// Delta-debugging (ddmin) minimization: the smallest subsequence of
/// `failing.events` for which `still_fails` holds.  `still_fails(failing)`
/// must be true on entry; the predicate is re-evaluated on real runs, so
/// minimization only trusts violations that actually reproduce.
/// `wall_budget_ms` > 0 bounds the search in real time: when it runs out
/// the best still-failing schedule found so far is returned (minimization
/// is best-effort; the unminimized schedule is still a valid repro).
FaultSchedule minimize_schedule(
    const FaultSchedule& failing,
    const std::function<bool(const FaultSchedule&)>& still_fails,
    i64 wall_budget_ms = 0);

}  // namespace vwire::chaos
