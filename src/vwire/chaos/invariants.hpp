// Cross-layer invariant checking (DESIGN.md §8).
//
// Each invariant has a *pure core* — a free function from plain observable
// state to an optional violation message — so tests can prove a checker
// fires by handing it deliberately-broken data, no simulation required.
// The live side (InvariantSet) is a registry of named closures that sample
// real layers and delegate to the cores; campaigns run the probe checks on
// a timer during supervision and the final checks after the run drains.
//
// The invariants (ISSUE 4):
//  * RLL exactly-once, in-order delivery        (check_rll_exactly_once)
//  * TCP cwnd/ssthresh sanity                   (check_tcp_window_sanity)
//  * TCP end-to-end data integrity              (check_tcp_integrity)
//  * Rether single-token uniqueness             (check_token_holders)
//  * Rether ring reconstruction liveness        (check_rether_liveness)
//  * control-plane epoch monotonicity           (check_epoch_advanced)
//  * packet conservation on the medium          (check_conservation)
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "vwire/phy/medium.hpp"
#include "vwire/rll/rll_layer.hpp"
#include "vwire/tcp/congestion.hpp"

namespace vwire::chaos {

struct Violation {
  std::string invariant;  ///< registry name of the check that fired
  std::string detail;     ///< first observed failure message
  TimePoint first_at{};   ///< simulated time of the first observation
  u64 count{1};           ///< total observations (probes re-fire)
};

// --- pure cores ---------------------------------------------------------

/// Exactly-once / in-order: the RLL's always-on delivery audit counts
/// every upward hand-off whose sequence failed to strictly advance.
std::optional<std::string> check_rll_exactly_once(const rll::RllStats& s);

/// cwnd must stay ≥ 1 segment and ssthresh must respect the configured
/// floor ("not less than 2 MSS") no matter what faults did to the flow.
std::optional<std::string> check_tcp_window_sanity(
    u32 cwnd, u32 ssthresh, const tcp::CongestionParams& p);

/// No corrupted byte may survive to the application (`pattern_errors` is
/// the receiving workload's count of bytes that mismatched its generator).
std::optional<std::string> check_tcp_integrity(u64 pattern_errors);

/// At most one ring member may hold the token at any instant.
std::optional<std::string> check_token_holders(std::size_t holders);

/// The ring must have made progress: a live ring with members passes the
/// token; `tokens_received` is the all-member sum over the run.
std::optional<std::string> check_rether_liveness(u64 tokens_received,
                                                 std::size_t ring_members);

/// Every armed scenario runs under a strictly newer epoch.
std::optional<std::string> check_epoch_advanced(u32 before, u32 after);

/// Conservation on the wire: every frame offered to the medium is either
/// delivered or dropped with an attributed cause.  Only meaningful at a
/// quiescent instant (no frame in flight) — campaigns drain first.
std::optional<std::string> check_conservation(const phy::MediumStats& m);

// --- live registry ------------------------------------------------------

class InvariantSet {
 public:
  /// A check returns a violation message, or nullopt when the invariant
  /// holds right now.
  using CheckFn = std::function<std::optional<std::string>()>;

  /// Sampled on the campaign's probe timer during the run.
  void add_probe(std::string name, CheckFn fn);
  /// Evaluated once after the run (and the post-run drain) completes.
  void add_final(std::string name, CheckFn fn);

  void run_probes(TimePoint now);
  void run_final(TimePoint now);

  /// One entry per distinct invariant that fired, in first-fired order;
  /// re-fires bump `count` instead of flooding the list.
  const std::vector<Violation>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  std::size_t probe_count() const { return probes_.size(); }
  std::size_t final_count() const { return finals_.size(); }

 private:
  struct Named {
    std::string name;
    CheckFn fn;
  };
  void record(const std::string& name, std::string detail, TimePoint now);

  std::vector<Named> probes_;
  std::vector<Named> finals_;
  std::vector<Violation> violations_;
};

}  // namespace vwire::chaos
