#include "vwire/chaos/invariants.hpp"

namespace vwire::chaos {

std::optional<std::string> check_rll_exactly_once(const rll::RllStats& s) {
  if (s.deliver_misorder == 0) return std::nullopt;
  return "RLL delivered " + std::to_string(s.deliver_misorder) +
         " frame(s) whose sequence did not strictly advance "
         "(duplicate or out-of-order delivery)";
}

std::optional<std::string> check_tcp_window_sanity(
    u32 cwnd, u32 ssthresh, const tcp::CongestionParams& p) {
  if (cwnd < 1) {
    return "TCP cwnd collapsed to " + std::to_string(cwnd) +
           " segments (must stay >= 1)";
  }
  if (ssthresh < p.min_ssthresh) {
    return "TCP ssthresh " + std::to_string(ssthresh) +
           " fell below the configured floor of " +
           std::to_string(p.min_ssthresh);
  }
  return std::nullopt;
}

std::optional<std::string> check_tcp_integrity(u64 pattern_errors) {
  if (pattern_errors == 0) return std::nullopt;
  return "TCP stream delivered " + std::to_string(pattern_errors) +
         " corrupted byte(s) to the application";
}

std::optional<std::string> check_token_holders(std::size_t holders) {
  if (holders <= 1) return std::nullopt;
  return "Rether single-token invariant broken: " + std::to_string(holders) +
         " ring members hold a token simultaneously";
}

std::optional<std::string> check_rether_liveness(u64 tokens_received,
                                                 std::size_t ring_members) {
  if (ring_members == 0) return std::nullopt;  // everyone dead: vacuous
  if (tokens_received >= ring_members) return std::nullopt;
  return "Rether ring made no full circulation (" +
         std::to_string(tokens_received) + " token receptions across " +
         std::to_string(ring_members) + " members)";
}

std::optional<std::string> check_epoch_advanced(u32 before, u32 after) {
  if (after > before) return std::nullopt;
  return "control epoch did not advance (before=" + std::to_string(before) +
         ", after=" + std::to_string(after) + ")";
}

std::optional<std::string> check_conservation(const phy::MediumStats& m) {
  const u64 accounted = m.frames_delivered + m.frames_dropped_error +
                        m.frames_dropped_queue + m.frames_dropped_down +
                        m.frames_dropped_cut + m.frames_dropped_flap +
                        m.frames_dropped_loss;
  if (accounted == m.frames_offered) return std::nullopt;
  return "packet conservation broken: offered=" +
         std::to_string(m.frames_offered) + " but delivered+dropped=" +
         std::to_string(accounted);
}

void InvariantSet::add_probe(std::string name, CheckFn fn) {
  probes_.push_back({std::move(name), std::move(fn)});
}

void InvariantSet::add_final(std::string name, CheckFn fn) {
  finals_.push_back({std::move(name), std::move(fn)});
}

void InvariantSet::record(const std::string& name, std::string detail,
                          TimePoint now) {
  for (Violation& v : violations_) {
    if (v.invariant == name) {
      ++v.count;
      return;
    }
  }
  violations_.push_back({name, std::move(detail), now, 1});
}

void InvariantSet::run_probes(TimePoint now) {
  for (const Named& n : probes_) {
    if (std::optional<std::string> msg = n.fn()) {
      record(n.name, std::move(*msg), now);
    }
  }
}

void InvariantSet::run_final(TimePoint now) {
  for (const Named& n : finals_) {
    if (std::optional<std::string> msg = n.fn()) {
      record(n.name, std::move(*msg), now);
    }
  }
}

}  // namespace vwire::chaos
