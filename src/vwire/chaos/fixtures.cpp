#include "vwire/chaos/fixtures.hpp"

#include <algorithm>
#include <stdexcept>

#include "vwire/rether/rether_layer.hpp"
#include "vwire/tcp/tcp_layer.hpp"
#include "vwire/udp/echo.hpp"

namespace vwire::chaos {

namespace {

/// Position-dependent payload byte: catches corruption, duplication and
/// reordering of delivered stream bytes, not just byte loss.
u8 pattern_byte(u64 offset) {
  return static_cast<u8>((offset * 131 + 7) & 0xff);
}

/// Window-limited TCP sender whose payload encodes each byte's stream
/// offset (BulkSender sends constant filler, which a corruption-to-filler
/// fault would slip past).
class PatternSender {
 public:
  PatternSender(tcp::TcpLayer& tcp, net::Ipv4Address dst, u16 dst_port,
                u16 src_port, u64 total)
      : tcp_(tcp), dst_(dst), dst_port_(dst_port), src_port_(src_port),
        total_(total) {}

  void start() {
    conn_ = tcp_.connect(dst_, dst_port_, src_port_);
    conn_->on_established = [this] { pump(); };
    conn_->on_send_space = [this] { pump(); };
  }

  u64 offered() const { return offered_; }

 private:
  void pump() {
    if (!conn_ || closed_) return;
    while (offered_ < total_) {
      const std::size_t want =
          static_cast<std::size_t>(std::min<u64>(total_ - offered_, 4096));
      Bytes chunk(want);
      for (std::size_t i = 0; i < want; ++i) {
        chunk[i] = pattern_byte(offered_ + i);
      }
      const std::size_t accepted = conn_->send(BytesView(chunk));
      offered_ += accepted;
      if (accepted < want) return;  // buffer full; on_send_space resumes
    }
    closed_ = true;
    conn_->close();
  }

  tcp::TcpLayer& tcp_;
  net::Ipv4Address dst_;
  u16 dst_port_;
  u16 src_port_;
  u64 total_;
  std::shared_ptr<tcp::TcpConnection> conn_;
  u64 offered_{0};
  bool closed_{false};
};

/// Accepting side: verifies every delivered byte against the pattern.
class PatternSink {
 public:
  PatternSink(tcp::TcpLayer& tcp, u16 port) {
    tcp.listen(port, [this](std::shared_ptr<tcp::TcpConnection> conn) {
      conn->on_data = [this](BytesView data) {
        for (u8 b : data) {
          if (b != pattern_byte(received_)) ++pattern_errors_;
          ++received_;
        }
      };
      auto weak = std::weak_ptr<tcp::TcpConnection>(conn);
      conn->on_peer_closed = [weak] {
        if (auto c = weak.lock()) c->close();
      };
    });
  }

  u64 received() const { return received_; }
  u64 pattern_errors() const { return pattern_errors_; }

 private:
  u64 received_{0};
  u64 pattern_errors_{0};
};

// --- fig7: TCP bulk transfer on the paper's Fig 7 topology ---------------

constexpr const char* kTcpFilters =
    "FILTER_TABLE\n"
    "  TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)\n"
    "  TCP_ack:  (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)\n"
    "END\n";

class Fig7Harness final : public TrialHarness {
 public:
  Fig7Harness() {
    tb_.add_node("ctl");
    tb_.add_node("node1");
    tb_.add_node("node2");
    tcp1_ = std::make_unique<tcp::TcpLayer>(tb_.node("node1"));
    tcp2_ = std::make_unique<tcp::TcpLayer>(tb_.node("node2"));
    sink_ = std::make_unique<PatternSink>(*tcp2_, 16384);
    sender_ = std::make_unique<PatternSender>(
        *tcp1_, tb_.node("node2").ip(), 16384, 24576, /*total=*/120'000);
  }

  Testbed& testbed() override { return tb_; }

  ScenarioSpec make_spec(const std::string& fault_rules) override {
    ScenarioSpec spec;
    spec.script = std::string(kTcpFilters) + tb_.node_table_fsl() +
                  "SCENARIO chaos_tcp\n"
                  "  CHAOS: (TCP_data, node1, node2, RECV)\n"
                  "  (TRUE) >> ENABLE_CNTR(CHAOS);\n" +
                  fault_rules + "END\n";
    spec.control_node = "ctl";
    spec.workload = [this] { sender_->start(); };
    spec.options.deadline = seconds(3);
    return spec;
  }

  FslSite fsl_site() const override {
    return {"TCP_data", "node1", "node2", "CHAOS"};
  }

  const ScheduleTemplate& schedule_template() const override {
    static const ScheduleTemplate t = [] {
      ScheduleTemplate t;
      t.allowed = {FaultKind::kCrash,    FaultKind::kLinkCut,
                   FaultKind::kLinkFlap, FaultKind::kLinkDegrade,
                   FaultKind::kFslDrop,  FaultKind::kFslDelay,
                   FaultKind::kFslDup,   FaultKind::kFslModify};
      t.targets = {"node1", "node2"};
      t.horizon = millis(250);
      t.max_packet_index = 80;  // ~83 MSS segments in the 120 kB transfer
      return t;
    }();
    return t;
  }

  void register_invariants(InvariantSet& inv) override {
    auto window_sanity = [this]() -> std::optional<std::string> {
      std::optional<std::string> first;
      auto visit = [&](const tcp::TcpConnection& c) {
        if (first) return;
        first = check_tcp_window_sanity(c.congestion().cwnd(),
                                        c.congestion().ssthresh(),
                                        c.congestion().params());
      };
      tcp1_->for_each_connection(visit);
      tcp2_->for_each_connection(visit);
      return first;
    };
    inv.add_probe("tcp-window-sanity", window_sanity);
    inv.add_final("tcp-window-sanity", window_sanity);
    inv.add_final("tcp-integrity", [this] {
      return check_tcp_integrity(sink_->pattern_errors());
    });
  }

  std::vector<StateFaultKind> state_fault_kinds() const override {
    // Only the recoverable corruptions: the hooks below clamp injected
    // values into the window-sanity envelope, so byzantine campaigns stay
    // violation-free (the invariant watches the *protocol* driving state
    // out of bounds afterwards).  kRllWindowCorrupt is materializable too
    // but only via directed schedules — it exists to break exactly-once.
    return {StateFaultKind::kTcpCwndForce, StateFaultKind::kTcpCwndFlip,
            StateFaultKind::kTcpSsthreshForce};
  }

  bool schedule_state_fault(const FaultEvent& e, ScenarioSpec& spec) override {
    if (e.state == StateFaultKind::kRllWindowCorrupt) {
      rll::RllLayer* rll = tb_.handles(e.node).rll;
      if (rll == nullptr) return false;
      spec.actions.push_back(
          {e.at, [rll, v = e.state_value] { rll->corrupt_recv_window(v); }});
      return true;
    }
    tcp::TcpLayer* tcp = e.node == "node1"   ? tcp1_.get()
                         : e.node == "node2" ? tcp2_.get()
                                             : nullptr;
    if (tcp == nullptr) return false;
    const StateFaultKind kind = e.state;
    const u32 v = e.state_value;
    switch (kind) {
      case StateFaultKind::kTcpCwndForce:
      case StateFaultKind::kTcpCwndFlip:
      case StateFaultKind::kTcpSsthreshForce:
        break;
      default:
        return false;
    }
    spec.actions.push_back({e.at, [tcp, kind, v] {
      tcp->for_each_connection_mut([kind, v](tcp::TcpConnection& c) {
        const tcp::CongestionParams& p = c.congestion().params();
        switch (kind) {
          case StateFaultKind::kTcpCwndForce:
            c.inject_congestion_state(std::max<u32>(v, 1), std::nullopt);
            break;
          case StateFaultKind::kTcpCwndFlip:
            c.inject_congestion_state(
                std::max<u32>(c.congestion().cwnd() ^ (1u << (v & 15)), 1),
                std::nullopt);
            break;
          case StateFaultKind::kTcpSsthreshForce:
            c.inject_congestion_state(std::nullopt,
                                      std::max(v, p.min_ssthresh));
            break;
          default:
            break;
        }
      });
    }});
    return true;
  }

 private:
  Testbed tb_;
  std::unique_ptr<tcp::TcpLayer> tcp1_, tcp2_;
  std::unique_ptr<PatternSink> sink_;
  std::unique_ptr<PatternSender> sender_;
};

// --- udp: echo request/response under fire -------------------------------

constexpr const char* kUdpFilters =
    "FILTER_TABLE\n"
    "  udp_req: (12 2 0x0800), (23 1 0x11), (34 2 0x9c40), (36 2 0x0007)\n"
    "END\n";

class UdpHarness : public TrialHarness {
 public:
  UdpHarness() {
    tb_.add_node("ctl");
    tb_.add_node("client");
    tb_.add_node("server");
    cu_ = std::make_unique<udp::UdpLayer>(tb_.node("client"));
    su_ = std::make_unique<udp::UdpLayer>(tb_.node("server"));
    server_ = std::make_unique<udp::EchoServer>(*su_, 7);
    udp::EchoClient::Params cp;
    cp.server_ip = tb_.node("server").ip();
    cp.server_port = 7;
    cp.local_port = 40000;  // 0x9c40: what the udp_req filter matches
    cp.count = 60;
    cp.interval = millis(5);
    client_ = std::make_unique<udp::EchoClient>(*cu_, cp);
  }

  Testbed& testbed() override { return tb_; }

  ScenarioSpec make_spec(const std::string& fault_rules) override {
    ScenarioSpec spec;
    spec.script = std::string(kUdpFilters) + tb_.node_table_fsl() +
                  "SCENARIO chaos_udp\n"
                  "  CHAOS: (udp_req, client, server, RECV)\n"
                  "  (TRUE) >> ENABLE_CNTR(CHAOS);\n" +
                  fault_rules + "END\n";
    spec.control_node = "ctl";
    spec.workload = [this] { client_->start(); };
    spec.options.deadline = seconds(2);
    return spec;
  }

  FslSite fsl_site() const override {
    return {"udp_req", "client", "server", "CHAOS"};
  }

  const ScheduleTemplate& schedule_template() const override {
    static const ScheduleTemplate t = [] {
      ScheduleTemplate t;
      t.allowed = {FaultKind::kCrash,    FaultKind::kLinkCut,
                   FaultKind::kLinkFlap, FaultKind::kLinkDegrade,
                   FaultKind::kFslDrop,  FaultKind::kFslDelay,
                   FaultKind::kFslDup};
      t.targets = {"client", "server"};
      t.horizon = millis(250);
      t.max_packet_index = 50;  // the client sends 60 probes
      return t;
    }();
    return t;
  }

  void register_invariants(InvariantSet&) override {
    // Echo offers no fixture invariant beyond the campaign-level set: a
    // DUP fault can legitimately hand the client more replies than probes.
  }

 private:
  Testbed tb_;
  std::unique_ptr<udp::UdpLayer> cu_, su_;
  std::unique_ptr<udp::EchoServer> server_;
  std::unique_ptr<udp::EchoClient> client_;
};

// --- deadsite: a broken-generator stand-in for pre-flight tests ----------
//
// Identical to UdpHarness except the scenario never enables the CHAOS
// counter, so every windowed provoking rule ((CHAOS >= a) && ...) with
// a >= 1 is provably unreachable — exactly the generator bug the
// verification pre-flight (campaign.cpp) exists to catch.  Deliberately
// absent from harness_names(): it is not a fixture anyone should sweep,
// only a test fixture for the pre-flight itself.
class DeadsiteHarness final : public UdpHarness {
 public:
  ScenarioSpec make_spec(const std::string& fault_rules) override {
    ScenarioSpec spec = UdpHarness::make_spec(fault_rules);
    const std::string enable = "  (TRUE) >> ENABLE_CNTR(CHAOS);\n";
    const std::size_t pos = spec.script.find(enable);
    if (pos != std::string::npos) spec.script.erase(pos, enable.size());
    return spec;
  }
};

// --- rether: token ring under crashes and token loss ---------------------

constexpr const char* kRetherFilters =
    "FILTER_TABLE\n"
    "  tr_token: (12 2 0x9900), (14 2 0x0001)\n"
    "END\n";

class RetherHarness final : public TrialHarness {
 public:
  RetherHarness() {
    tb_.add_node("ctl");
    const char* members[] = {"r1", "r2", "r3"};
    for (const char* n : members) tb_.add_node(n);
    std::vector<net::MacAddress> ring;
    for (const char* n : members) ring.push_back(tb_.node(n).mac());
    rether::RetherParams rp;
    rp.regen_timeout = millis(150);  // regenerate within the short trial
    for (const char* n : members) {
      auto layer =
          std::make_unique<rether::RetherLayer>(tb_.simulator(), rp, ring);
      layers_.push_back(static_cast<rether::RetherLayer*>(
          &tb_.node(n).add_layer(std::move(layer))));
      nodes_.push_back(&tb_.node(n));
    }
  }

  Testbed& testbed() override { return tb_; }

  ScenarioSpec make_spec(const std::string& fault_rules) override {
    ScenarioSpec spec;
    spec.script = std::string(kRetherFilters) + tb_.node_table_fsl() +
                  "SCENARIO chaos_rether\n"
                  "  CHAOS: (tr_token, r1, r2, RECV)\n"
                  "  (TRUE) >> ENABLE_CNTR(CHAOS);\n" +
                  fault_rules + "END\n";
    spec.control_node = "ctl";
    spec.workload = [this] {
      for (std::size_t i = 0; i < layers_.size(); ++i) {
        layers_[i]->start(/*with_token=*/i == 0);
      }
    };
    // The token circulates forever; the deadline is the trial length.
    spec.options.deadline = millis(800);
    return spec;
  }

  FslSite fsl_site() const override {
    return {"tr_token", "r1", "r2", "CHAOS"};
  }

  const ScheduleTemplate& schedule_template() const override {
    static const ScheduleTemplate t = [] {
      ScheduleTemplate t;
      t.allowed = {FaultKind::kCrash, FaultKind::kLinkCut,
                   FaultKind::kLinkFlap, FaultKind::kFslDrop};
      t.targets = {"r2", "r3"};
      t.horizon = millis(400);
      // Every fault heals: a permanently-dead majority would leave a
      // single-member ring, which is vacuous rather than interesting.
      t.permanent_chance = 0.0;
      t.max_packet_index = 200;
      return t;
    }();
    return t;
  }

  void register_invariants(InvariantSet& inv) override {
    inv.add_probe("rether-single-token", [this] {
      // Uniqueness is about the *operational* token.  A crashed node, or a
      // falsely-evicted member clutching a stale token, still has
      // holding_token() set — but its sends are dropped unacknowledged by
      // everyone (stale sequence), so it cannot duplicate ring traffic.
      // Count live holders of the maximum sequence only.
      u32 max_seq = 0;
      for (std::size_t i = 0; i < layers_.size(); ++i) {
        if (nodes_[i]->failed() || !layers_[i]->holding_token()) continue;
        max_seq = std::max(max_seq, layers_[i]->token_seq());
      }
      std::size_t holders = 0;
      for (std::size_t i = 0; i < layers_.size(); ++i) {
        if (nodes_[i]->failed() || !layers_[i]->holding_token()) continue;
        if (layers_[i]->token_seq() == max_seq) ++holders;
      }
      return check_token_holders(holders);
    });
    inv.add_final("rether-liveness", [this] {
      u64 received = 0;
      for (const rether::RetherLayer* l : layers_) {
        received += l->stats().tokens_received;
      }
      return check_rether_liveness(received, layers_.size());
    });
  }

  void quiesce() override {
    for (rether::RetherLayer* l : layers_) l->stop();
  }

  // Token forgery exists to *provoke* the single-token violation, so it is
  // never in the generated space (state_fault_kinds stays empty) — only
  // directed schedules (regression repros, invariant tests) reach it.
  bool schedule_state_fault(const FaultEvent& e, ScenarioSpec& spec) override {
    if (e.state != StateFaultKind::kForgeTokenSeq &&
        e.state != StateFaultKind::kDupTokenSeq) {
      return false;
    }
    rether::RetherLayer* layer = nullptr;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      if (nodes_[i]->name() == e.node) layer = layers_[i];
    }
    if (layer == nullptr) return false;
    const u32 ahead =
        e.state == StateFaultKind::kDupTokenSeq ? 0 : e.state_value;
    spec.actions.push_back(
        {e.at, [layer, ahead] { layer->inject_forged_token(ahead); }});
    return true;
  }

 private:
  Testbed tb_;
  std::vector<rether::RetherLayer*> layers_;
  std::vector<host::Node*> nodes_;
};

// --- hang: a trial that never finishes (watchdog test fixture) -----------

constexpr const char* kHangFilters =
    "FILTER_TABLE\n"
    "  hang_f: (12 2 0x0800), (23 1 0x11)\n"
    "END\n";

/// A workload that wedges the run in *wall-clock* terms: a self-rearming
/// 100ns timer floods the event queue (10k events per 1ms supervision
/// window), the scenario's simulated deadline is minutes away, and
/// quiescence detection never triggers because the timer always has an
/// event pending.  Only the per-trial watchdog (CampaignConfig::
/// trial_timeout_ms) — or ctest's own timeout — ends such a trial.  Exists
/// for the watchdog/service tests; harmless but pointless elsewhere.
class HangHarness final : public TrialHarness {
 public:
  HangHarness() {
    tb_.add_node("ctl");
    tb_.add_node("a");
    tb_.add_node("b");
  }

  Testbed& testbed() override { return tb_; }

  ScenarioSpec make_spec(const std::string& fault_rules) override {
    ScenarioSpec spec;
    spec.script = std::string(kHangFilters) + tb_.node_table_fsl() +
                  "SCENARIO chaos_hang\n"
                  "  CHAOS: (hang_f, a, b, RECV)\n"
                  "  (TRUE) >> ENABLE_CNTR(CHAOS);\n" +
                  fault_rules + "END\n";
    spec.control_node = "ctl";
    spec.workload = [this] {
      sim::Simulator& sim = tb_.simulator();
      sim.after(nanos(100), HangTick{live_, ticks_, &sim});
    };
    // Minutes of simulated time at 10M events per simulated second: hours
    // of wall clock if nothing cuts the trial short.
    spec.options.deadline = seconds(120);
    return spec;
  }

  FslSite fsl_site() const override { return {"hang_f", "a", "b", "CHAOS"}; }

  const ScheduleTemplate& schedule_template() const override {
    static const ScheduleTemplate t = [] {
      ScheduleTemplate t;
      t.allowed = {};  // the hang is the workload's doing, not a fault's
      t.targets = {"a", "b"};
      return t;
    }();
    return t;
  }

  void register_invariants(InvariantSet&) override {}

  void quiesce() override { *live_ = false; }

 private:
  struct HangTick {
    std::shared_ptr<bool> live;
    std::shared_ptr<u64> ticks;
    sim::Simulator* sim;
    void operator()() const {
      if (!*live) return;
      ++*ticks;
      sim->after(nanos(100), *this);
    }
  };

  Testbed tb_;
  std::shared_ptr<bool> live_{std::make_shared<bool>(true)};
  std::shared_ptr<u64> ticks_{std::make_shared<u64>(0)};
};

}  // namespace

std::unique_ptr<TrialHarness> make_harness(std::string_view name,
                                           u64 /*trial_seed*/) {
  if (name == "fig7") return std::make_unique<Fig7Harness>();
  if (name == "udp") return std::make_unique<UdpHarness>();
  if (name == "rether") return std::make_unique<RetherHarness>();
  if (name == "hang") return std::make_unique<HangHarness>();
  // Test-only: a deliberately broken generator site for the verification
  // pre-flight.  Not listed in harness_names() so sweeps skip it.
  if (name == "deadsite") return std::make_unique<DeadsiteHarness>();
  throw std::invalid_argument("chaos: unknown fixture '" + std::string(name) +
                              "' (have: fig7, udp, rether, hang, deadsite)");
}

std::vector<std::string> harness_names() {
  return {"fig7", "udp", "rether", "hang"};
}

}  // namespace vwire::chaos
