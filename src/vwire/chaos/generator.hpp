// Randomized — but seed-deterministic — fault-schedule generation.
//
// Every draw for trial `i` of a campaign comes from the single RNG stream
// `Rng::derive(campaign_seed, "trial", i)` (util/rng's named child-stream
// derivation), so a schedule is a pure function of (campaign_seed,
// trial_index, template): regenerating it anywhere, any time, on any
// worker thread, yields the identical event list.  That property is what
// makes replay and delta-debugging sound.
#pragma once

#include "vwire/chaos/schedule.hpp"

namespace vwire::chaos {

/// The space a campaign explores.  Fixtures provide one tuned to their
/// topology and workload; tests shrink it for speed.
struct ScheduleTemplate {
  std::size_t min_events{1};
  std::size_t max_events{5};

  /// Faults start uniformly within [0, horizon).
  Duration horizon{millis(300)};
  /// Active length drawn uniformly from [min_len, max_len].
  Duration min_len{millis(10)};
  Duration max_len{millis(120)};
  /// P(a crash never recovers / a link fault never clears).
  double permanent_chance{0.15};

  // kLinkFlap phase bounds (both phases drawn from [flap_min, flap_max]).
  Duration flap_min{millis(5)};
  Duration flap_max{millis(30)};

  // kLinkDegrade bounds.
  double max_loss{0.3};
  Duration max_extra_latency{millis(5)};

  // FSL window bounds: pkt_lo in [1, max_packet_index], width in
  // [1, max_window].
  u32 max_packet_index{120};
  u32 max_window{6};
  Duration max_delay{millis(10)};  ///< kFslDelay bound (ms granularity)
  // kFslModify byte offset range (frame-relative; pick payload bytes).
  u16 mod_offset_lo{60};
  u16 mod_offset_hi{90};

  /// Kinds the generator may draw (empty = no events ever).
  std::vector<FaultKind> allowed;
  /// Nodes crash/link faults may target (the control node must not be
  /// here: killing the supervisor tests nothing).
  std::vector<std::string> targets;

  // kStateFault space (ISSUE 6).  Which soft-state corruptions to draw
  // from — empty disables kStateFault even if it appears in `allowed`, so
  // existing fixture templates keep their draw sequences bit-identical.
  std::vector<StateFaultKind> state_kinds;
  /// Upper bound for forced cwnd/ssthresh values (segments).
  u32 state_value_max{32};
};

/// The deterministic schedule for trial `trial_index` of the campaign.
FaultSchedule generate_schedule(u64 campaign_seed, u64 trial_index,
                                const ScheduleTemplate& tmpl);

}  // namespace vwire::chaos
