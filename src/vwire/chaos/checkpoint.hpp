// Campaign checkpoints (DESIGN.md §11): a completed-trial journal that
// makes a long campaign restartable.
//
// The journal is line-delimited JSON: a header line identifying the
// campaign — (fixture, seed, trials, state_faults) is the campaign's full
// identity, because every trial is a pure function of it — followed by one
// line per completed trial, appended and flushed as trials finish.  A
// crash (or SIGKILL, or graceful drain) loses at most the line being
// written; resume re-runs only the trials the journal does not cover, and
// determinism guarantees the merged summary is byte-identical to an
// uninterrupted run's.
//
// Trial lines store the exact rollup CampaignSummary::to_json() needs
// (violations with their timestamps, firing counts, the effective seed) —
// not the schedule, which is regenerated from (seed, trial_index) at
// restore time and cross-checked against the journaled event count.
// 64-bit seeds are journaled as JSON strings: the obs JSON model stores
// numbers as doubles, and a seed above 2^53 must survive the round-trip
// losslessly or byte-identity breaks.
#pragma once

#include <cstdio>
#include <map>

#include "vwire/chaos/campaign.hpp"

namespace vwire::chaos {

struct CheckpointHeader {
  std::string fixture;
  u64 seed{0};
  std::size_t trials{0};
  bool state_faults{false};
  /// Free-form provenance the service layer threads through (tenant, job
  /// id).  Restore ignores it; resume-from-directory reads it back.
  std::map<std::string, std::string> meta;
};

/// Journal-fidelity rollup of one completed trial.
struct TrialRecord {
  u64 trial_index{0};
  std::size_t events{0};  ///< schedule size (cross-checked on restore)
  bool ran{false};
  bool scenario_passed{false};
  u64 effective_seed{0};
  u64 firings{0};
  u64 link_events{0};
  std::vector<Violation> violations;
};

TrialRecord to_record(const TrialResult& r);

/// One-line JSON (no trailing newline) for a journal entry / header.
std::string record_to_json(const TrialRecord& r);
std::string header_to_json(const CheckpointHeader& h);

CheckpointHeader make_header(const CampaignConfig& cfg,
                             std::map<std::string, std::string> meta = {});

struct Checkpoint {
  CheckpointHeader header;
  std::vector<TrialRecord> records;
};

/// Parses a journal.  Throws std::runtime_error when the header line is
/// missing or malformed.  Trial lines are read until the first damaged one
/// (a SIGKILL mid-append truncates the tail); everything after it is
/// discarded — those trials simply re-run on resume.
Checkpoint parse_checkpoint(std::string_view text);

/// parse_checkpoint over a file; additionally throws when the file cannot
/// be read.
Checkpoint load_checkpoint(const std::string& path);

/// Rebuilds full TrialResults from a journal for Campaign::run_from().
/// Validates campaign identity (fixture/seed/trials/state_faults must
/// match the journal header) and regenerates each trial's schedule,
/// cross-checking its event count against the journaled one; throws
/// std::runtime_error on any mismatch — resuming someone else's journal
/// must fail loudly, not corrupt a summary silently.  Duplicate or
/// out-of-range indices throw too.
std::vector<TrialResult> restore_results(const Campaign& campaign,
                                         const Checkpoint& ck);

/// Appends completed trials to a journal as a campaign progresses — wire
/// it to CampaignConfig::on_trial.  Every append is flushed.
class CheckpointWriter {
 public:
  /// `resume` false: create/truncate `path` and write the header line.
  /// `resume` true: open for append, keeping the existing content (the
  /// caller has already validated the header via load_checkpoint).
  CheckpointWriter(const std::string& path, const CheckpointHeader& header,
                   bool resume = false);

  /// False when the file could not be opened (or a write failed) — the
  /// campaign should keep running; it just loses restartability.
  bool ok() const { return ok_; }

  void append(const TrialResult& r);

 private:
  FILE* out_{nullptr};
  bool ok_{false};

 public:
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;
};

}  // namespace vwire::chaos
