// Chaos fault schedules — the unit of randomized exploration (DESIGN.md §8).
//
// A FaultSchedule is a flat list of timed fault events over one trial:
// whole-node crashes, phy-layer link cuts/flaps/degradations, FSL-injected
// packet faults (DROP/DELAY/DUP/MODIFY over a counter window), and the
// test-only RLL duplicate-delivery knob.  Schedules are plain data — they
// round-trip through JSON byte-for-byte (the repro artifact format) and
// materialize into the pieces ScenarioRunner already understands:
// ScenarioSpec::crashes / link_faults / actions plus generated FSL rules.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "vwire/util/types.hpp"

namespace vwire::obs {
class JsonValue;
}

namespace vwire::chaos {

enum class FaultKind : u8 {
  kCrash,        ///< whole-node crash at `at`, recover at `until` (if later)
  kLinkCut,      ///< hard partition of the node's link over [at, until)
  kLinkFlap,     ///< square-wave partition (flap_up / flap_down phases)
  kLinkDegrade,  ///< loss / latency degradation while active
  kFslDrop,      ///< DROP matched packets with counter in [pkt_lo, pkt_hi]
  kFslDelay,     ///< DELAY those packets by `delay`
  kFslDup,       ///< DUP those packets
  kFslModify,    ///< MODIFY one byte of packet pkt_lo (offset/value below)
  kRllDupDeliver,  ///< test-only: arm RllLayer duplicate delivery over
                   ///< [at, until) — plants a known-bad exactly-once bug
  kStateFault,     ///< Byzantine soft-state corruption inside a protocol
                   ///< stack at `at` (see StateFaultKind / DESIGN.md §10)
};

/// What a kStateFault event corrupts.  Unlike the wire-level kinds these
/// reach *inside* the system under test: the paper's fault model stops at
/// the medium, so these model the software-fault-injection gap (ROADMAP
/// item 5).  Every random choice a state fault needs is pre-drawn into the
/// FaultEvent at generation time — materialization consumes no randomness,
/// which is what keeps replay byte-identical.
enum class StateFaultKind : u8 {
  kTcpCwndForce,      ///< force cwnd to `state_value` segments
  kTcpCwndFlip,       ///< XOR bit `state_value` (0..15) into cwnd
  kTcpSsthreshForce,  ///< force ssthresh to `state_value` segments
  kForgeTokenSeq,     ///< forge a live Rether token `state_value` ahead of
                      ///< the ring's current sequence on the target node
  kDupTokenSeq,       ///< duplicate the live token: target node starts
                      ///< holding at the current max sequence (split brain)
  kRllWindowCorrupt,  ///< regress the RLL receive window (recv_next) by
                      ///< `state_value` frames on every known peer
};

const char* to_string(FaultKind k);
std::optional<FaultKind> fault_kind_from(std::string_view name);

const char* to_string(StateFaultKind k);
std::optional<StateFaultKind> state_fault_kind_from(std::string_view name);

/// True for the kinds that materialize as generated FSL rules (and thus
/// need no node target — they act on the fixture's filter site).
bool is_fsl_kind(FaultKind k);

struct FaultEvent {
  FaultKind kind{FaultKind::kLinkCut};
  /// Target node for crash/link/RLL kinds; unused by FSL kinds.
  std::string node;
  Duration at{};
  Duration until{};

  // kLinkFlap
  Duration flap_up{};
  Duration flap_down{};

  // kLinkDegrade
  double loss_tx{0.0};
  double loss_rx{0.0};
  Duration extra_latency{};

  // FSL kinds: fire while the site counter is within [pkt_lo, pkt_hi].
  u32 pkt_lo{0};
  u32 pkt_hi{0};
  Duration delay{};   ///< kFslDelay amount (whole milliseconds on the wire)
  u16 mod_offset{0};  ///< kFslModify frame byte offset
  u8 mod_value{0};    ///< kFslModify replacement byte

  // kStateFault: which soft state to corrupt and the pre-drawn operand
  // (forced value / bit index / sequence offset / window regression).
  StateFaultKind state{StateFaultKind::kTcpCwndForce};
  u32 state_value{0};

  bool operator==(const FaultEvent&) const = default;
};

struct FaultSchedule {
  /// Provenance: the (campaign seed, trial index) pair this schedule was
  /// generated from — also the root of every RNG stream the trial uses, so
  /// carrying them makes the schedule a self-contained replay artifact.
  u64 campaign_seed{0};
  u64 trial_index{0};
  std::vector<FaultEvent> events;

  bool operator==(const FaultSchedule&) const = default;

  /// One-line-per-event JSON document (schema "chaos_schedule" v2; v2
  /// added the kStateFault fields).
  std::string to_json() const;
  /// Inverse of to_json(); throws std::runtime_error on malformed input,
  /// unknown kinds or a wrong schema version.  Accepts v1 documents too —
  /// pre-state-fault artifacts must keep loading (they simply contain no
  /// "state" members).
  static FaultSchedule from_json(std::string_view text);
};

/// Parses a schedule out of an already-parsed JSON document (e.g. the
/// nested "schedule" member of a repro artifact).  Same validation and
/// exceptions as FaultSchedule::from_json.
FaultSchedule schedule_from_value(const obs::JsonValue& v);

/// Where generated FSL fault rules attach: a filter (declared by the
/// fixture's FILTER_TABLE), the observed direction, and the counter the
/// rules window over.  The fixture's SCENARIO must declare the counter as
/// `counter: (filter, src, dst, RECV)` and ENABLE_CNTR it.
struct FslSite {
  std::string filter;
  std::string src;
  std::string dst;
  std::string counter;
};

/// FSL rule text (one `... >> ACTION(...);` line per FSL event, indented
/// for a SCENARIO body) materializing the schedule's FSL-layer events at
/// `site`.  Non-FSL events contribute nothing here.
std::string fsl_rules(const FaultSchedule& schedule, const FslSite& site);

}  // namespace vwire::chaos
