#include "vwire/chaos/schedule.hpp"

#include <cinttypes>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "vwire/obs/json.hpp"

namespace vwire::chaos {

namespace {

// v1: wire/link/crash faults only.  v2 (ISSUE 6) adds kStateFault and its
// "state"/"state_value" members; the loader still accepts v1 documents.
constexpr int kScheduleVersion = 2;
constexpr int kOldestLoadableVersion = 1;

// Saturating double → integer conversions (the loader accepts hand-edited
// JSON; an out-of-range static_cast would be UB).  `!(v >= lo)` doubles as
// the NaN check.
i64 load_i64(double v) {
  if (!(v >= -9223372036854775808.0)) return std::numeric_limits<i64>::min();
  if (v >= 9223372036854775808.0) return std::numeric_limits<i64>::max();
  return static_cast<i64>(v);
}

u64 load_u64(double v) {
  if (!(v >= 0.0)) return 0;
  if (v >= 18446744073709551616.0) return std::numeric_limits<u64>::max();
  return static_cast<u64>(v);
}

u32 load_u32(double v) {
  const u64 wide = load_u64(v);
  return wide > 0xffffffffu ? 0xffffffffu : static_cast<u32>(wide);
}

void append_u64(std::string& out, const char* key, u64 v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64, key, v);
  out += buf;
}

void append_i64(std::string& out, const char* key, i64 v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRId64, key, v);
  out += buf;
}

void append_f(std::string& out, const char* key, double v) {
  char buf[64];
  // %.17g is exact for IEEE doubles — loss rates must round-trip losslessly
  // or a reloaded repro is not the schedule that failed.
  std::snprintf(buf, sizeof buf, "\"%s\":%.17g", key, v);
  out += buf;
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash:         return "crash";
    case FaultKind::kLinkCut:       return "link_cut";
    case FaultKind::kLinkFlap:      return "link_flap";
    case FaultKind::kLinkDegrade:   return "link_degrade";
    case FaultKind::kFslDrop:       return "fsl_drop";
    case FaultKind::kFslDelay:      return "fsl_delay";
    case FaultKind::kFslDup:        return "fsl_dup";
    case FaultKind::kFslModify:     return "fsl_modify";
    case FaultKind::kRllDupDeliver: return "rll_dup_deliver";
    case FaultKind::kStateFault:    return "state_fault";
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from(std::string_view name) {
  for (FaultKind k :
       {FaultKind::kCrash, FaultKind::kLinkCut, FaultKind::kLinkFlap,
        FaultKind::kLinkDegrade, FaultKind::kFslDrop, FaultKind::kFslDelay,
        FaultKind::kFslDup, FaultKind::kFslModify, FaultKind::kRllDupDeliver,
        FaultKind::kStateFault}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

const char* to_string(StateFaultKind k) {
  switch (k) {
    case StateFaultKind::kTcpCwndForce:     return "tcp_cwnd_force";
    case StateFaultKind::kTcpCwndFlip:      return "tcp_cwnd_flip";
    case StateFaultKind::kTcpSsthreshForce: return "tcp_ssthresh_force";
    case StateFaultKind::kForgeTokenSeq:    return "forge_token_seq";
    case StateFaultKind::kDupTokenSeq:      return "dup_token_seq";
    case StateFaultKind::kRllWindowCorrupt: return "rll_window_corrupt";
  }
  return "?";
}

std::optional<StateFaultKind> state_fault_kind_from(std::string_view name) {
  for (StateFaultKind k :
       {StateFaultKind::kTcpCwndForce, StateFaultKind::kTcpCwndFlip,
        StateFaultKind::kTcpSsthreshForce, StateFaultKind::kForgeTokenSeq,
        StateFaultKind::kDupTokenSeq, StateFaultKind::kRllWindowCorrupt}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

bool is_fsl_kind(FaultKind k) {
  return k == FaultKind::kFslDrop || k == FaultKind::kFslDelay ||
         k == FaultKind::kFslDup || k == FaultKind::kFslModify;
}

std::string FaultSchedule::to_json() const {
  std::string out = "{\"v\":2,\"type\":\"chaos_schedule\",";
  append_u64(out, "campaign_seed", campaign_seed);
  out += ',';
  append_u64(out, "trial_index", trial_index);
  out += ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (i) out += ',';
    out += "\n  {\"kind\":\"";
    out += to_string(e.kind);
    out += "\",\"node\":\"";
    out += obs::json_escape(e.node);
    out += "\",";
    append_i64(out, "at_ns", e.at.ns);
    out += ',';
    append_i64(out, "until_ns", e.until.ns);
    out += ',';
    append_i64(out, "flap_up_ns", e.flap_up.ns);
    out += ',';
    append_i64(out, "flap_down_ns", e.flap_down.ns);
    out += ',';
    append_f(out, "loss_tx", e.loss_tx);
    out += ',';
    append_f(out, "loss_rx", e.loss_rx);
    out += ',';
    append_i64(out, "extra_latency_ns", e.extra_latency.ns);
    out += ',';
    append_u64(out, "pkt_lo", e.pkt_lo);
    out += ',';
    append_u64(out, "pkt_hi", e.pkt_hi);
    out += ',';
    append_i64(out, "delay_ns", e.delay.ns);
    out += ',';
    append_u64(out, "mod_offset", e.mod_offset);
    out += ',';
    append_u64(out, "mod_value", e.mod_value);
    out += ",\"state\":\"";
    out += to_string(e.state);
    out += "\",";
    append_u64(out, "state_value", e.state_value);
    out += '}';
  }
  out += "\n]}";
  return out;
}

FaultSchedule FaultSchedule::from_json(std::string_view text) {
  return schedule_from_value(obs::JsonValue::parse(text));  // throws on syntax
}

FaultSchedule schedule_from_value(const obs::JsonValue& v) {
  const i64 version = load_i64(v.num("v", -1));
  if (version < kOldestLoadableVersion || version > kScheduleVersion) {
    throw std::runtime_error("chaos schedule: unsupported version");
  }
  if (v.str("type") != "chaos_schedule") {
    throw std::runtime_error("chaos schedule: wrong document type '" +
                             v.str("type") + "'");
  }
  FaultSchedule s;
  // uint() reads the raw token, so seeds above 2^53 replay byte-identically
  // instead of landing on the nearest representable double.
  s.campaign_seed = v.uint("campaign_seed");
  s.trial_index = v.uint("trial_index");
  if (!v.has("events")) return s;
  for (const obs::JsonValue& ev : v.at("events").as_array()) {
    FaultEvent e;
    const std::string kind = ev.str("kind");
    std::optional<FaultKind> k = fault_kind_from(kind);
    if (!k) {
      throw std::runtime_error("chaos schedule: unknown fault kind '" + kind +
                               "'");
    }
    e.kind = *k;
    e.node = ev.str("node");
    e.at = {load_i64(ev.num("at_ns"))};
    e.until = {load_i64(ev.num("until_ns"))};
    e.flap_up = {load_i64(ev.num("flap_up_ns"))};
    e.flap_down = {load_i64(ev.num("flap_down_ns"))};
    e.loss_tx = ev.num("loss_tx");
    e.loss_rx = ev.num("loss_rx");
    e.extra_latency = {load_i64(ev.num("extra_latency_ns"))};
    e.pkt_lo = load_u32(ev.num("pkt_lo"));
    e.pkt_hi = load_u32(ev.num("pkt_hi"));
    e.delay = {load_i64(ev.num("delay_ns"))};
    const u64 off = load_u64(ev.num("mod_offset"));
    e.mod_offset = off > 0xffffu ? 0xffff : static_cast<u16>(off);
    const u64 val = load_u64(ev.num("mod_value"));
    e.mod_value = val > 0xffu ? 0xff : static_cast<u8>(val);
    if (ev.has("state")) {  // absent in v1 documents
      const std::string state = ev.str("state");
      std::optional<StateFaultKind> sk = state_fault_kind_from(state);
      if (!sk) {
        throw std::runtime_error("chaos schedule: unknown state fault '" +
                                 state + "'");
      }
      e.state = *sk;
      e.state_value = load_u32(ev.num("state_value"));
    } else if (e.kind == FaultKind::kStateFault) {
      throw std::runtime_error(
          "chaos schedule: state_fault event without a 'state' member");
    }
    s.events.push_back(std::move(e));
  }
  return s;
}

std::string fsl_rules(const FaultSchedule& schedule, const FslSite& site) {
  std::string out;
  char buf[256];
  const char* f = site.filter.c_str();
  const char* src = site.src.c_str();
  const char* dst = site.dst.c_str();
  const char* c = site.counter.c_str();
  for (const FaultEvent& e : schedule.events) {
    switch (e.kind) {
      case FaultKind::kFslDrop:
        std::snprintf(buf, sizeof buf,
                      "  ((%s >= %u) && (%s <= %u)) >> DROP(%s, %s, %s, "
                      "RECV);\n",
                      c, e.pkt_lo, c, e.pkt_hi, f, src, dst);
        out += buf;
        break;
      case FaultKind::kFslDelay:
        std::snprintf(buf, sizeof buf,
                      "  ((%s >= %u) && (%s <= %u)) >> DELAY(%s, %s, %s, "
                      "RECV, %" PRId64 "ms);\n",
                      c, e.pkt_lo, c, e.pkt_hi, f, src, dst,
                      e.delay.ns / 1'000'000);
        out += buf;
        break;
      case FaultKind::kFslDup:
        std::snprintf(buf, sizeof buf,
                      "  ((%s >= %u) && (%s <= %u)) >> DUP(%s, %s, %s, "
                      "RECV);\n",
                      c, e.pkt_lo, c, e.pkt_hi, f, src, dst);
        out += buf;
        break;
      case FaultKind::kFslModify:
        // A single packet: corrupting a window of segments stalls TCP for
        // the full window of RTOs without testing anything new.
        std::snprintf(buf, sizeof buf,
                      "  ((%s = %u)) >> MODIFY(%s, %s, %s, RECV, "
                      "(%u 1 0x%02x));\n",
                      c, e.pkt_lo, f, src, dst, e.mod_offset, e.mod_value);
        out += buf;
        break;
      case FaultKind::kCrash:
      case FaultKind::kLinkCut:
      case FaultKind::kLinkFlap:
      case FaultKind::kLinkDegrade:
      case FaultKind::kRllDupDeliver:
      case FaultKind::kStateFault:
        break;  // materialized through ScenarioSpec, not FSL
    }
  }
  return out;
}

}  // namespace vwire::chaos
