#include "vwire/chaos/checkpoint.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "vwire/obs/json.hpp"

namespace vwire::chaos {

namespace {

void append_u64(std::string& out, const char* key, u64 v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64, key, v);
  out += buf;
}

/// Seeds are journaled as strings: JsonValue stores numbers as doubles and
/// a derived 64-bit seed routinely exceeds 2^53.
void append_u64_str(std::string& out, const char* key, u64 v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":\"%" PRIu64 "\"", key, v);
  out += buf;
}

u64 parse_u64_str(const obs::JsonValue& v, const std::string& key) {
  if (!v.has(key)) {
    throw std::runtime_error("chaos checkpoint: missing '" + key + "'");
  }
  const obs::JsonValue& f = v.at(key);
  if (f.type() == obs::JsonValue::Type::kNumber) {
    const double d = f.as_number();
    if (d < 0 || d != d || d > 9.007199254740992e15) {
      throw std::runtime_error("chaos checkpoint: '" + key +
                               "' out of lossless range");
    }
    return static_cast<u64>(d);
  }
  if (f.type() != obs::JsonValue::Type::kString) {
    throw std::runtime_error("chaos checkpoint: '" + key +
                             "' must be a string or integer");
  }
  const std::string& s = f.as_string();
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error("chaos checkpoint: '" + key +
                             "' is not an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    throw std::runtime_error("chaos checkpoint: '" + key +
                             "' does not fit in 64 bits");
  }
  return static_cast<u64>(parsed);
}

std::string violations_json(const std::vector<Violation>& vs) {
  std::string out = "[";
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i) out += ',';
    out += "{\"invariant\":\"";
    out += obs::json_escape(vs[i].invariant);
    out += "\",\"detail\":\"";
    out += obs::json_escape(vs[i].detail);
    out += "\",";
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"first_at_ns\":%" PRId64 ",",
                  vs[i].first_at.ns);
    out += buf;
    append_u64(out, "count", vs[i].count);
    out += '}';
  }
  out += ']';
  return out;
}

/// Range-checked double→u64 for journal fields.  A corrupted line that
/// still parses as JSON must throw (the caller treats it as damage), not
/// hit undefined behavior in the cast.
u64 num_u64(const obs::JsonValue& v, const std::string& key,
            double fallback = 0) {
  const double d = v.num(key, fallback);
  if (d < 0 || d != d || d > 9.007199254740992e15) {
    throw std::runtime_error("chaos checkpoint: '" + key + "' out of range");
  }
  return static_cast<u64>(d);
}

i64 num_i64(const obs::JsonValue& v, const std::string& key) {
  const double d = v.num(key);
  if (d != d || d > 9.007199254740992e15 || d < -9.007199254740992e15) {
    throw std::runtime_error("chaos checkpoint: '" + key + "' out of range");
  }
  return static_cast<i64>(d);
}

std::vector<Violation> violations_from(const obs::JsonValue& v) {
  std::vector<Violation> out;
  if (!v.has("violations")) return out;
  for (const obs::JsonValue& vv : v.at("violations").as_array()) {
    Violation viol;
    viol.invariant = vv.str("invariant");
    viol.detail = vv.str("detail");
    viol.first_at = {num_i64(vv, "first_at_ns")};
    viol.count = num_u64(vv, "count", 1);
    out.push_back(std::move(viol));
  }
  return out;
}

}  // namespace

TrialRecord to_record(const TrialResult& r) {
  TrialRecord rec;
  rec.trial_index = r.trial_index;
  rec.events = r.schedule.events.size();
  rec.ran = r.ran;
  rec.scenario_passed = r.scenario_passed;
  rec.effective_seed = r.effective_seed;
  rec.firings = r.firings;
  rec.link_events = r.link_events;
  rec.violations = r.violations;
  return rec;
}

std::string record_to_json(const TrialRecord& r) {
  std::string out = "{\"type\":\"trial\",";
  append_u64(out, "index", r.trial_index);
  out += ',';
  append_u64(out, "events", r.events);
  out += ",\"ran\":";
  out += r.ran ? "true" : "false";
  out += ",\"scenario_passed\":";
  out += r.scenario_passed ? "true" : "false";
  out += ',';
  append_u64_str(out, "effective_seed", r.effective_seed);
  out += ',';
  append_u64(out, "firings", r.firings);
  out += ',';
  append_u64(out, "link_events", r.link_events);
  out += ",\"violations\":";
  out += violations_json(r.violations);
  out += '}';
  return out;
}

std::string header_to_json(const CheckpointHeader& h) {
  std::string out = "{\"v\":1,\"type\":\"chaos_checkpoint\",\"fixture\":\"";
  out += obs::json_escape(h.fixture);
  out += "\",";
  append_u64_str(out, "seed", h.seed);
  out += ',';
  append_u64(out, "trials", h.trials);
  out += ",\"state_faults\":";
  out += h.state_faults ? "true" : "false";
  out += ",\"meta\":{";
  bool first = true;
  for (const auto& [k, v] : h.meta) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += obs::json_escape(k);
    out += "\":\"";
    out += obs::json_escape(v);
    out += '"';
  }
  out += "}}";
  return out;
}

CheckpointHeader make_header(const CampaignConfig& cfg,
                             std::map<std::string, std::string> meta) {
  CheckpointHeader h;
  h.fixture = cfg.fixture;
  h.seed = cfg.seed;
  h.trials = cfg.trials;
  h.state_faults = cfg.state_faults;
  h.meta = std::move(meta);
  return h;
}

Checkpoint parse_checkpoint(std::string_view text) {
  Checkpoint ck;
  std::size_t pos = 0;
  auto next_line = [&]() -> std::optional<std::string_view> {
    if (pos >= text.size()) return std::nullopt;
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
    return line;
  };

  const std::optional<std::string_view> header_line = next_line();
  if (!header_line || header_line->empty()) {
    throw std::runtime_error("chaos checkpoint: empty journal");
  }
  obs::JsonValue hv;
  try {
    hv = obs::JsonValue::parse(*header_line);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("chaos checkpoint: bad header: ") +
                             e.what());
  }
  if (hv.str("type") != "chaos_checkpoint" || hv.num("v") != 1) {
    throw std::runtime_error(
        "chaos checkpoint: header is not a chaos_checkpoint v1 document");
  }
  ck.header.fixture = hv.str("fixture");
  ck.header.seed = parse_u64_str(hv, "seed");
  ck.header.trials = static_cast<std::size_t>(num_u64(hv, "trials"));
  ck.header.state_faults = hv.boolean("state_faults");
  if (hv.has("meta")) {
    for (const auto& [k, v] : hv.at("meta").as_object()) {
      if (v.type() == obs::JsonValue::Type::kString) {
        ck.header.meta[k] = v.as_string();
      }
    }
  }

  // Trial lines: stop (don't throw) at the first damaged line — a truncated
  // tail is the expected crash signature, and every uncovered trial simply
  // re-runs on resume.
  while (std::optional<std::string_view> line = next_line()) {
    if (line->empty()) continue;
    TrialRecord rec;
    try {
      const obs::JsonValue v = obs::JsonValue::parse(*line);
      if (v.str("type") != "trial") break;
      rec.trial_index = num_u64(v, "index");
      rec.events = static_cast<std::size_t>(num_u64(v, "events"));
      rec.ran = v.boolean("ran");
      rec.scenario_passed = v.boolean("scenario_passed");
      rec.effective_seed = parse_u64_str(v, "effective_seed");
      rec.firings = num_u64(v, "firings");
      rec.link_events = num_u64(v, "link_events");
      rec.violations = violations_from(v);
    } catch (const std::exception&) {
      break;
    }
    ck.records.push_back(std::move(rec));
  }
  return ck;
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("chaos checkpoint: cannot read '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_checkpoint(buf.str());
}

std::vector<TrialResult> restore_results(const Campaign& campaign,
                                         const Checkpoint& ck) {
  const CampaignConfig& cfg = campaign.config();
  auto mismatch = [](const std::string& what) {
    throw std::runtime_error(
        "chaos checkpoint: journal does not belong to this campaign (" +
        what + " differs)");
  };
  if (ck.header.fixture != cfg.fixture) mismatch("fixture");
  if (ck.header.seed != cfg.seed) mismatch("seed");
  if (ck.header.trials != cfg.trials) mismatch("trials");
  if (ck.header.state_faults != cfg.state_faults) mismatch("state_faults");

  std::vector<bool> seen(cfg.trials, false);
  std::vector<TrialResult> out;
  out.reserve(ck.records.size());
  for (const TrialRecord& rec : ck.records) {
    if (rec.trial_index >= cfg.trials) {
      throw std::runtime_error("chaos checkpoint: trial index " +
                               std::to_string(rec.trial_index) +
                               " out of range");
    }
    if (seen[rec.trial_index]) {
      throw std::runtime_error("chaos checkpoint: duplicate trial index " +
                               std::to_string(rec.trial_index));
    }
    seen[rec.trial_index] = true;

    TrialResult r;
    r.trial_index = rec.trial_index;
    r.schedule = campaign.schedule_for(rec.trial_index);
    if (r.schedule.events.size() != rec.events) {
      throw std::runtime_error(
          "chaos checkpoint: trial " + std::to_string(rec.trial_index) +
          " journaled " + std::to_string(rec.events) +
          " events but the campaign generates " +
          std::to_string(r.schedule.events.size()) +
          " — wrong seed or fixture version");
    }
    r.ran = rec.ran;
    r.scenario_passed = rec.scenario_passed;
    r.effective_seed = rec.effective_seed;
    r.firings = rec.firings;
    r.link_events = rec.link_events;
    r.violations = rec.violations;
    out.push_back(std::move(r));
  }
  return out;
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   const CheckpointHeader& header,
                                   bool resume) {
  out_ = std::fopen(path.c_str(), resume ? "ab" : "wb");
  if (out_ == nullptr) return;
  ok_ = true;
  if (!resume) {
    const std::string line = header_to_json(header) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), out_) != line.size() ||
        std::fflush(out_) != 0) {
      ok_ = false;
    }
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (out_ != nullptr) std::fclose(out_);
}

void CheckpointWriter::append(const TrialResult& r) {
  if (!ok_) return;
  const std::string line = record_to_json(to_record(r)) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), out_) != line.size() ||
      std::fflush(out_) != 0) {
    ok_ = false;
  }
}

}  // namespace vwire::chaos
