// Chaos fixtures — one fresh, fully-assembled trial environment per call.
//
// Trial isolation is structural: a TrialHarness owns its own Testbed and
// workload applications, built from scratch for every trial (and for every
// replay and every ddmin probe), so no state can leak between trials and a
// schedule's outcome is a pure function of (campaign_seed, trial_index).
#pragma once

#include <memory>

#include "vwire/chaos/generator.hpp"
#include "vwire/chaos/invariants.hpp"
#include "vwire/core/api/scenario_runner.hpp"

namespace vwire::chaos {

class TrialHarness {
 public:
  virtual ~TrialHarness() = default;

  virtual Testbed& testbed() = 0;

  /// The ScenarioSpec for one trial, with `fault_rules` (generated FSL
  /// rule lines, possibly empty) spliced into the SCENARIO body.  The
  /// caller still fills in crashes/link_faults/actions/probe/seed.
  virtual ScenarioSpec make_spec(const std::string& fault_rules) = 0;

  /// Where generated FSL rules attach (filter/counter the script declares).
  virtual FslSite fsl_site() const = 0;

  /// The fault space this fixture explores.
  virtual const ScheduleTemplate& schedule_template() const = 0;

  /// Registers fixture-specific invariants (workload integrity, protocol
  /// state sanity).  Campaign-level invariants — conservation, RLL
  /// exactly-once, epoch monotonicity — are added by the campaign itself.
  virtual void register_invariants(InvariantSet& inv) = 0;

  /// Called after supervision ends, before the conservation drain: stop
  /// perpetual traffic sources (token rings) so the wire can go quiet.
  virtual void quiesce() {}

  /// State-fault corruptions the *generator* may draw for this fixture
  /// when a campaign enables them (CampaignConfig::state_faults).  Only
  /// corruptions the fixture's invariants tolerate belong here; primitives
  /// meant to provoke violations (forged tokens, window regression) stay
  /// out of the generated space and are used through directed schedules.
  virtual std::vector<StateFaultKind> state_fault_kinds() const { return {}; }

  /// Materializes one kStateFault event into `spec.actions` (a TimedAction
  /// corrupting live protocol state at e.at).  Returns false when this
  /// fixture cannot apply `e.state` to `e.node` — the campaign rejects the
  /// schedule, mirroring the kRllDupDeliver validation.
  virtual bool schedule_state_fault(const FaultEvent& e, ScenarioSpec& spec) {
    (void)e;
    (void)spec;
    return false;
  }
};

/// Fixture registry.  `name` ∈ harness_names(); throws std::invalid_argument
/// otherwise.  `trial_seed` parameterizes any workload randomness the
/// fixture wants (current fixtures are fully deterministic and ignore it).
std::unique_ptr<TrialHarness> make_harness(std::string_view name,
                                           u64 trial_seed);
std::vector<std::string> harness_names();

}  // namespace vwire::chaos
