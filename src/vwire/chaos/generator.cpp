#include "vwire/chaos/generator.hpp"

#include <algorithm>

#include "vwire/util/rng.hpp"

namespace vwire::chaos {

namespace {

Duration draw_duration(Rng& rng, Duration lo, Duration hi) {
  if (hi.ns <= lo.ns) return lo;
  return {lo.ns + static_cast<i64>(rng.below(static_cast<u64>(hi.ns - lo.ns) +
                                             1))};
}

}  // namespace

FaultSchedule generate_schedule(u64 campaign_seed, u64 trial_index,
                                const ScheduleTemplate& tmpl) {
  FaultSchedule s;
  s.campaign_seed = campaign_seed;
  s.trial_index = trial_index;
  // kStateFault is gated twice: it must be in `allowed` AND the template
  // must offer concrete state kinds.  Filtering here (not erroring) lets a
  // campaign hand every fixture the same allowed list.
  std::vector<FaultKind> pool = tmpl.allowed;
  if (tmpl.state_kinds.empty()) {
    pool.erase(std::remove(pool.begin(), pool.end(), FaultKind::kStateFault),
               pool.end());
  }
  if (pool.empty()) return s;

  Rng rng = Rng::derive(campaign_seed, "trial", trial_index);
  const std::size_t span = tmpl.max_events >= tmpl.min_events
                               ? tmpl.max_events - tmpl.min_events
                               : 0;
  const std::size_t n = tmpl.min_events + rng.below(span + 1);
  for (std::size_t i = 0; i < n; ++i) {
    FaultEvent e;
    e.kind = pool[rng.below(pool.size())];
    e.at = {static_cast<i64>(rng.below(
        tmpl.horizon.ns > 0 ? static_cast<u64>(tmpl.horizon.ns) : 1))};
    const Duration len = draw_duration(rng, tmpl.min_len, tmpl.max_len);
    const bool permanent = rng.chance(tmpl.permanent_chance);
    e.until = permanent ? e.at : e.at + len;

    if (!is_fsl_kind(e.kind) && !tmpl.targets.empty()) {
      e.node = tmpl.targets[rng.below(tmpl.targets.size())];
    }
    switch (e.kind) {
      case FaultKind::kLinkFlap:
        e.flap_up = draw_duration(rng, tmpl.flap_min, tmpl.flap_max);
        e.flap_down = draw_duration(rng, tmpl.flap_min, tmpl.flap_max);
        // A flap that never clears would partition forever; always clear.
        if (e.until <= e.at) e.until = e.at + len;
        break;
      case FaultKind::kLinkDegrade: {
        e.loss_tx = rng.uniform() * tmpl.max_loss;
        e.loss_rx = rng.uniform() * tmpl.max_loss;
        e.extra_latency = draw_duration(rng, {}, tmpl.max_extra_latency);
        // At least one knob must bite or the runner rejects the spec.
        if (e.loss_tx == 0.0 && e.loss_rx == 0.0 &&
            e.extra_latency.ns == 0) {
          e.loss_rx = tmpl.max_loss > 0 ? tmpl.max_loss : 0.1;
        }
        break;
      }
      case FaultKind::kFslDrop:
      case FaultKind::kFslDelay:
      case FaultKind::kFslDup:
      case FaultKind::kFslModify: {
        const u32 max_lo = tmpl.max_packet_index > 0 ? tmpl.max_packet_index
                                                     : 1;
        e.pkt_lo = 1 + static_cast<u32>(rng.below(max_lo));
        const u32 width =
            1 + static_cast<u32>(rng.below(tmpl.max_window > 0
                                               ? tmpl.max_window
                                               : 1));
        e.pkt_hi = e.pkt_lo + width - 1;
        if (e.kind == FaultKind::kFslDelay) {
          // Whole milliseconds ≥ 1: the FSL grammar's unit granularity.
          const i64 max_ms = std::max<i64>(tmpl.max_delay.ns / 1'000'000, 1);
          e.delay = millis(1 + static_cast<i64>(rng.below(
                               static_cast<u64>(max_ms))));
        }
        if (e.kind == FaultKind::kFslModify) {
          const u16 lo = tmpl.mod_offset_lo;
          const u16 hi = std::max(tmpl.mod_offset_hi, lo);
          e.mod_offset =
              static_cast<u16>(lo + rng.below(static_cast<u64>(hi - lo) + 1));
          e.mod_value = static_cast<u8>(1 + rng.below(255));  // never 0x00
        }
        break;
      }
      case FaultKind::kStateFault: {
        // Pre-draw every random choice the fault needs; materialization is
        // then deterministic, so ddmin subsets and replays never shift the
        // stream (the same contract the FSL kinds follow).
        e.state = tmpl.state_kinds[rng.below(tmpl.state_kinds.size())];
        const u32 vmax = tmpl.state_value_max > 0 ? tmpl.state_value_max : 1;
        switch (e.state) {
          case StateFaultKind::kTcpCwndForce:
            e.state_value = static_cast<u32>(rng.below(vmax + 1));
            break;
          case StateFaultKind::kTcpCwndFlip:
            e.state_value = static_cast<u32>(rng.below(16));
            break;
          case StateFaultKind::kTcpSsthreshForce:
            e.state_value = 1 + static_cast<u32>(rng.below(vmax));
            break;
          case StateFaultKind::kForgeTokenSeq:
          case StateFaultKind::kRllWindowCorrupt:
            e.state_value = 1 + static_cast<u32>(rng.below(8));
            break;
          case StateFaultKind::kDupTokenSeq:
            e.state_value = 0;
            break;
        }
        break;
      }
      case FaultKind::kCrash:
      case FaultKind::kLinkCut:
      case FaultKind::kRllDupDeliver:
        break;
    }
    s.events.push_back(std::move(e));
  }

  // Deterministic chronological order: readable artifacts, and ddmin
  // subsets inherit a stable ordering.
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });

  // All FSL events for one trial share a site flow, and the engine applies
  // at most one fault per packet in script order (= this chronological
  // order) — a window fully covered by earlier windows would be provably
  // dead, and the campaign pre-flight would abort the trial as a generator
  // bug (fsl-verify-dead-rule).  Relocate such a window past every earlier
  // one, preserving its width.  Partial overlaps still fire on their
  // uncovered indices and are left alone, so most schedules are identical
  // to what older seeds produced.  Runs after the sort because script order
  // is what the engine's one-fault-per-packet rule follows; dropping events
  // (ddmin subsets) can only unshadow, never shadow, so minimized
  // schedules stay clean without re-running this pass.
  std::vector<std::pair<u32, u32>> windows;
  for (FaultEvent& e : s.events) {
    if (!is_fsl_kind(e.kind)) continue;
    // MODIFY fires on the single packet pkt_lo; the window kinds claim the
    // whole [pkt_lo, pkt_hi] range while active.
    const auto eff = [&e](u32 lo) {
      return std::pair<u32, u32>{
          lo, e.kind == FaultKind::kFslModify
                  ? lo
                  : lo + (e.pkt_hi - e.pkt_lo)};
    };
    auto w = eff(e.pkt_lo);
    bool shadowed = true;
    for (u32 v = w.first; v <= w.second && shadowed; ++v) {
      bool hit = false;
      for (const auto& p : windows) {
        if (v >= p.first && v <= p.second) {
          hit = true;
          break;
        }
      }
      shadowed = hit;
    }
    if (shadowed) {
      u32 past = 0;
      for (const auto& p : windows) past = std::max(past, p.second);
      const u32 width = e.pkt_hi - e.pkt_lo;
      e.pkt_lo = past + 1;
      e.pkt_hi = e.pkt_lo + width;
      w = eff(e.pkt_lo);
    }
    windows.push_back(w);
  }
  return s;
}

}  // namespace vwire::chaos
